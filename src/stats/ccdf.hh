#ifndef PUFFER_STATS_CCDF_HH
#define PUFFER_STATS_CCDF_HH

#include <span>
#include <vector>

namespace puffer::stats {

/// One point of an empirical distribution curve.
struct DistributionPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Empirical CCDF P(X > x) evaluated at sorted sample values, downsampled
/// to at most `max_points` strided entries plus one final point at the
/// sample maximum (so the result holds at most max_points + 1 points).
/// Throws RequirementError on an empty sample or max_points < 2. Used for
/// Figure 10 (time-on-player CCDF) and Figure 11's throughput
/// distributions.
std::vector<DistributionPoint> empirical_ccdf(std::span<const double> values,
                                              int max_points = 60);

/// Empirical CDF P(X <= x).
std::vector<DistributionPoint> empirical_cdf(std::span<const double> values,
                                             int max_points = 60);

}  // namespace puffer::stats

#endif  // PUFFER_STATS_CCDF_HH
