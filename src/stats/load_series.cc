#include "stats/load_series.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::stats {

void LoadSeries::add(const double time_s, const int delta) {
  deltas_.emplace_back(time_s, delta);
  finalized_ = false;
}

void LoadSeries::finalize() {
  if (finalized_) {
    return;
  }
  std::vector<std::pair<double, int>> sorted = deltas_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  points_.clear();
  int level = 0;
  for (size_t i = 0; i < sorted.size();) {
    const double t = sorted[i].first;
    while (i < sorted.size() && sorted[i].first == t) {
      level += sorted[i].second;
      i++;
    }
    const int previous = points_.empty() ? 0 : points_.back().level;
    if (level == previous) {
      continue;  // merged deltas cancelled out; the step did not move
    }
    points_.push_back({t, level});
  }
  finalized_ = true;
}

const std::vector<LoadSeries::Point>& LoadSeries::points() const {
  require(finalized_ || deltas_.empty(), "LoadSeries: finalize() first");
  return points_;
}

int LoadSeries::peak() const {
  int peak_level = 0;
  for (const Point& p : points()) {
    peak_level = std::max(peak_level, p.level);
  }
  return peak_level;
}

double LoadSeries::time_weighted_mean() const {
  const std::vector<Point>& pts = points();
  if (pts.size() < 2) {
    return 0.0;
  }
  const double span = pts.back().time_s - pts.front().time_s;
  if (span <= 0.0) {
    return 0.0;
  }
  double integral = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); i++) {
    integral += static_cast<double>(pts[i].level) *
                (pts[i + 1].time_s - pts[i].time_s);
  }
  return integral / span;
}

int LoadSeries::level_at(const double time_s) const {
  const std::vector<Point>& pts = points();
  const auto after = std::upper_bound(
      pts.begin(), pts.end(), time_s,
      [](const double t, const Point& p) { return t < p.time_s; });
  if (after == pts.begin()) {
    return 0;
  }
  return std::prev(after)->level;
}

}  // namespace puffer::stats
