#include "stats/load_series.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::stats {

void LoadSeries::add(const double time_s, const int delta) {
  deltas_.emplace_back(time_s, delta);
  finalized_ = false;
}

void LoadSeries::merge_from(const LoadSeries& other) {
  require(&other != this, "LoadSeries: cannot merge a series into itself");
  deltas_.reserve(deltas_.size() + other.points_.size() +
                  other.deltas_.size());
  // A folded point list is itself a delta encoding (each point changes the
  // level from its predecessor's), so a finalized shard merges losslessly.
  int previous = 0;
  for (const Point& p : other.points_) {
    deltas_.emplace_back(p.time_s, p.level - previous);
    previous = p.level;
  }
  deltas_.insert(deltas_.end(), other.deltas_.begin(), other.deltas_.end());
  finalized_ = false;
}

void LoadSeries::finalize() {
  if (finalized_) {
    return;
  }
  // Sort only the new deltas (pairs order by time, then delta — a
  // deterministic total order, though equal-time entries merge by sum and
  // their relative order cannot matter); already-folded points stay sorted
  // and are decoded back into deltas on the fly during the merge sweep.
  std::sort(deltas_.begin(), deltas_.end());

  std::vector<Point> folded;
  folded.reserve(points_.size() + deltas_.size());
  peak_ = 0;
  integral_ = 0.0;
  size_t pi = 0;  // cursor into points_ (old folded step function)
  size_t di = 0;  // cursor into deltas_ (sorted pending events)
  int old_level = 0;  // running level of the old points stream
  int level = 0;      // running level of the merged series
  while (pi < points_.size() || di < deltas_.size()) {
    double t;
    if (pi < points_.size() &&
        (di >= deltas_.size() || points_[pi].time_s <= deltas_[di].first)) {
      t = points_[pi].time_s;
    } else {
      t = deltas_[di].first;
    }
    // Fold every event at time t, from both streams, into one level move.
    if (pi < points_.size() && points_[pi].time_s == t) {
      level += points_[pi].level - old_level;
      old_level = points_[pi].level;
      pi++;
    }
    while (di < deltas_.size() && deltas_[di].first == t) {
      level += deltas_[di].second;
      di++;
    }
    const int previous = folded.empty() ? 0 : folded.back().level;
    if (level == previous) {
      continue;  // merged deltas cancelled out; the step did not move
    }
    // Single-pass aggregation: peak and the level integral accumulate as
    // the step function is built, so the queries below stay O(1) however
    // large the fleet run was.
    if (!folded.empty()) {
      integral_ += static_cast<double>(folded.back().level) *
                   (t - folded.back().time_s);
    }
    folded.push_back({t, level});
    peak_ = std::max(peak_, level);
  }
  points_ = std::move(folded);
  deltas_.clear();
  deltas_.shrink_to_fit();
  finalized_ = true;
}

const std::vector<LoadSeries::Point>& LoadSeries::points() const {
  require(finalized_ || empty(), "LoadSeries: finalize() first");
  return points_;
}

int LoadSeries::peak() const {
  static_cast<void>(points());  // enforce the finalized-series contract
  return peak_;
}

double LoadSeries::time_weighted_mean() const {
  const std::vector<Point>& pts = points();
  if (pts.empty()) {
    return 0.0;
  }
  const double span = pts.back().time_s - pts.front().time_s;
  if (span <= 0.0) {
    // Degenerate span (a single point: same-time deltas always merge):
    // the step function is the constant it ends at, which is its own mean.
    return static_cast<double>(pts.back().level);
  }
  return integral_ / span;
}

int LoadSeries::level_at(const double time_s) const {
  const std::vector<Point>& pts = points();
  const auto after = std::upper_bound(
      pts.begin(), pts.end(), time_s,
      [](const double t, const Point& p) { return t < p.time_s; });
  if (after == pts.begin()) {
    return 0;  // pinned: no session exists before the first recorded event
  }
  return std::prev(after)->level;
}

}  // namespace puffer::stats
