#ifndef PUFFER_STATS_SUMMARY_HH
#define PUFFER_STATS_SUMMARY_HH

#include <span>

#include "stats/bootstrap.hh"

namespace puffer::stats {

/// The per-stream figures the paper computes for its primary analysis
/// (section 3.4): watch time, stall time, duration-weighted SSIM, and
/// chunk-to-chunk SSIM variation.
struct StreamFigures {
  double watch_time_s = 0.0;     ///< total time between first/last played
  double stall_time_s = 0.0;     ///< total rebuffering time
  double startup_delay_s = 0.0;
  double ssim_mean_db = 0.0;     ///< mean SSIM of played chunks
  double ssim_variation_db = 0.0;///< mean |SSIM_i - SSIM_{i-1}|
  double first_chunk_ssim_db = 0.0;
  double mean_bitrate_mbps = 0.0;
  double mean_delivery_rate_mbps = 0.0;  ///< for slow-path classification
};

/// Scheme-level aggregation with the paper's uncertainty quantification:
/// stall ratio gets a bootstrap CI over streams; SSIM gets a
/// duration-weighted mean with weighted standard error.
struct SchemeSummary {
  int num_streams = 0;
  double total_watch_time_s = 0.0;
  ConfidenceInterval stall_ratio;         ///< fraction of time stalled
  double ssim_mean_db = 0.0;
  double ssim_mean_se_db = 0.0;           ///< weighted standard error
  double ssim_variation_db = 0.0;         ///< duration-weighted mean
  double mean_bitrate_mbps = 0.0;
  double startup_delay_s = 0.0;
  double first_chunk_ssim_db = 0.0;
};

SchemeSummary summarize_scheme(std::span<const StreamFigures> streams, Rng& rng,
                               int bootstrap_replicates = 1000);

}  // namespace puffer::stats

#endif  // PUFFER_STATS_SUMMARY_HH
