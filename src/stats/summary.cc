#include "stats/summary.hh"

#include <vector>

#include "util/require.hh"
#include "util/running_stats.hh"

namespace puffer::stats {

SchemeSummary summarize_scheme(const std::span<const StreamFigures> streams,
                               Rng& rng, const int bootstrap_replicates) {
  require(!streams.empty(), "summarize_scheme: no streams");

  SchemeSummary summary;
  summary.num_streams = static_cast<int>(streams.size());

  std::vector<RatioObservation> stall_obs;
  stall_obs.reserve(streams.size());
  RunningStats ssim, variation, bitrate, startup, first_chunk;
  for (const auto& s : streams) {
    summary.total_watch_time_s += s.watch_time_s;
    stall_obs.push_back({s.stall_time_s, s.watch_time_s});
    ssim.add(s.ssim_mean_db, s.watch_time_s);
    variation.add(s.ssim_variation_db, s.watch_time_s);
    bitrate.add(s.mean_bitrate_mbps, s.watch_time_s);
    startup.add(s.startup_delay_s);
    first_chunk.add(s.first_chunk_ssim_db);
  }

  summary.stall_ratio =
      bootstrap_ratio_ci(stall_obs, rng, bootstrap_replicates);
  summary.ssim_mean_db = ssim.mean();
  summary.ssim_mean_se_db = ssim.standard_error();
  summary.ssim_variation_db = variation.mean();
  summary.mean_bitrate_mbps = bitrate.mean();
  summary.startup_delay_s = startup.mean();
  summary.first_chunk_ssim_db = first_chunk.mean();
  return summary;
}

}  // namespace puffer::stats
