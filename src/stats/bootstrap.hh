#ifndef PUFFER_STATS_BOOTSTRAP_HH
#define PUFFER_STATS_BOOTSTRAP_HH

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hh"

namespace puffer::stats {

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;

  /// Half-width relative to the point estimate (the paper quotes CI widths
  /// as a percentage of the mean, e.g. "±10% to ±17%"). A zero/near-zero
  /// point estimate is handled deliberately: 0 when the interval is
  /// degenerate (no width around nothing), +infinity otherwise.
  [[nodiscard]] double relative_half_width() const;

  /// Do two intervals overlap? (Used for "statistically indistinguishable".)
  [[nodiscard]] bool overlaps(const ConfidenceInterval& other) const;
};

/// Per-stream observation for ratio statistics: the paper's rebuffering
/// (stall) ratio is total stalled time over total watch time across streams.
struct RatioObservation {
  double numerator = 0.0;    ///< e.g. seconds stalled in this stream
  double denominator = 0.0;  ///< e.g. seconds watched in this stream
};

/// Percentile-bootstrap confidence interval for a ratio-of-sums statistic
/// (sum of numerators / sum of denominators), resampling whole streams with
/// replacement — the paper's method for stall-ratio uncertainty
/// ("simulating streams drawn empirically from each scheme's observed
/// distribution", section 3.4).
ConfidenceInterval bootstrap_ratio_ci(std::span<const RatioObservation> streams,
                                      Rng& rng, int replicates = 1000,
                                      double confidence = 0.95);

/// Percentile-bootstrap CI for an arbitrary statistic of a sample of doubles.
ConfidenceInterval bootstrap_statistic_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int replicates = 1000, double confidence = 0.95);

/// Simple mean CI via bootstrap (convenience).
ConfidenceInterval bootstrap_mean_ci(std::span<const double> values, Rng& rng,
                                     int replicates = 1000,
                                     double confidence = 0.95);

/// Quantile of a sample (linear interpolation); q in [0, 1].
double quantile(std::vector<double> values, double q);

}  // namespace puffer::stats

#endif  // PUFFER_STATS_BOOTSTRAP_HH
