#include "stats/bootstrap.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hh"

namespace puffer::stats {

double ConfidenceInterval::relative_half_width() const {
  const double half_width = (upper - lower) / 2.0;
  // A zero / near-zero point estimate (e.g. a scheme that never stalled)
  // makes "width as a fraction of the point" ill-defined: report 0 for a
  // degenerate interval and infinity otherwise, rather than dividing into
  // a denormal and returning an astronomically large finite ratio.
  if (std::abs(point) < 1e-12) {
    return half_width == 0.0 ? 0.0
                             : std::numeric_limits<double>::infinity();
  }
  return half_width / std::abs(point);
}

bool ConfidenceInterval::overlaps(const ConfidenceInterval& other) const {
  return lower <= other.upper && other.lower <= upper;
}

double quantile(std::vector<double> values, const double q) {
  require(!values.empty(), "quantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto low = static_cast<size_t>(std::floor(position));
  const auto high = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(low);
  return values[low] + fraction * (values[high] - values[low]);
}

ConfidenceInterval bootstrap_ratio_ci(
    const std::span<const RatioObservation> streams, Rng& rng,
    const int replicates, const double confidence) {
  require(!streams.empty(), "bootstrap_ratio_ci: empty sample");
  require(replicates >= 10, "bootstrap_ratio_ci: too few replicates");

  double num = 0.0, den = 0.0;
  for (const auto& s : streams) {
    num += s.numerator;
    den += s.denominator;
  }
  require(den > 0.0, "bootstrap_ratio_ci: zero total denominator");

  std::vector<double> replicate_values(static_cast<size_t>(replicates));
  const size_t n = streams.size();
  for (auto& value : replicate_values) {
    double rnum = 0.0, rden = 0.0;
    for (size_t i = 0; i < n; i++) {
      const auto pick = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(n) - 1));
      rnum += streams[pick].numerator;
      rden += streams[pick].denominator;
    }
    value = rden > 0.0 ? rnum / rden : 0.0;
  }

  const double alpha = (1.0 - confidence) / 2.0;
  ConfidenceInterval ci;
  ci.point = num / den;
  ci.lower = quantile(replicate_values, alpha);
  ci.upper = quantile(replicate_values, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_statistic_ci(
    const std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    const int replicates, const double confidence) {
  require(!values.empty(), "bootstrap_statistic_ci: empty sample");

  std::vector<double> resample(values.size());
  std::vector<double> replicate_values(static_cast<size_t>(replicates));
  for (auto& value : replicate_values) {
    for (auto& x : resample) {
      const auto pick = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(values.size()) - 1));
      x = values[pick];
    }
    value = statistic(resample);
  }

  const double alpha = (1.0 - confidence) / 2.0;
  ConfidenceInterval ci;
  ci.point = statistic(values);
  ci.lower = quantile(replicate_values, alpha);
  ci.upper = quantile(replicate_values, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(const std::span<const double> values,
                                     Rng& rng, const int replicates,
                                     const double confidence) {
  return bootstrap_statistic_ci(
      values,
      [](const std::span<const double> sample) {
        double total = 0.0;
        for (const double v : sample) {
          total += v;
        }
        return total / static_cast<double>(sample.size());
      },
      rng, replicates, confidence);
}

}  // namespace puffer::stats
