#ifndef PUFFER_STATS_LOAD_SERIES_HH
#define PUFFER_STATS_LOAD_SERIES_HH

#include <vector>

namespace puffer::stats {

/// Step-function time series of a concurrency level, built from +1/-1
/// events. The fleet engine records one +1 per session arrival and one -1
/// per session completion, so the finalized series is the simulated
/// counterpart of Figure 2's concurrent-streams-by-hour plot.
///
/// Deltas may be added out of time order (the fleet engine discovers
/// completion times as sessions finish); finalize() stable-sorts them by
/// time, so the finalized series is a deterministic function of the delta
/// multiset regardless of insertion order of distinct times.
class LoadSeries {
 public:
  struct Point {
    double time_s = 0.0;
    int level = 0;  ///< concurrency from this time until the next point
  };

  /// Record a level change of `delta` at `time_s`.
  void add(double time_s, int delta);

  /// Sort pending deltas and fold them into the step function; deltas at
  /// the same time merge into one point (a session that arrives and
  /// completes at the same instant leaves no trace). Queries below require
  /// a finalized series; adding after finalize() and re-finalizing is fine.
  void finalize();

  [[nodiscard]] bool empty() const { return deltas_.empty(); }
  [[nodiscard]] const std::vector<Point>& points() const;

  /// Maximum level ever held (0 for an empty series).
  [[nodiscard]] int peak() const;
  /// Level integrated over [first event, last event] divided by that span
  /// (0 for an empty or instantaneous series).
  [[nodiscard]] double time_weighted_mean() const;
  /// Level in force at `time_s` (0 before the first event).
  [[nodiscard]] int level_at(double time_s) const;

 private:
  std::vector<std::pair<double, int>> deltas_;
  std::vector<Point> points_;
  bool finalized_ = false;
};

}  // namespace puffer::stats

#endif  // PUFFER_STATS_LOAD_SERIES_HH
