#ifndef PUFFER_STATS_LOAD_SERIES_HH
#define PUFFER_STATS_LOAD_SERIES_HH

#include <vector>

namespace puffer::stats {

/// Step-function time series of a concurrency level, built from +1/-1
/// events. The fleet engine records one +1 per session arrival and one -1
/// per session completion, so the finalized series is the simulated
/// counterpart of Figure 2's concurrent-streams-by-hour plot.
///
/// Deltas may be added out of time order (the fleet engine discovers
/// completion times as sessions finish) and from any number of shards
/// (merge_from): finalize() folds them by time, so the finalized series is
/// a deterministic function of the delta *multiset* regardless of insertion
/// order, shard count, or how runs were partitioned.
///
/// Aggregation is single-pass: finalize() computes peak, the level
/// integral, and the event-time span in the same sweep that builds the step
/// function, so peak() / time_weighted_mean() are O(1) and a series can be
/// queried millions of times (per-decision telemetry) without re-walking
/// its points. Pending deltas are folded into the existing points rather
/// than re-sorted wholesale, so repeated add()+finalize() cycles cost one
/// sort of the *new* deltas plus a linear merge.
///
/// Boundary semantics (pinned by tests/test_fleet.cc):
///   * level_at(t) for t before the first point — and on an empty series —
///     is 0: no session exists before the first recorded event.
///   * time_weighted_mean() of an empty series is 0.0.
///   * time_weighted_mean() of a single-point or zero-span series is the
///     level of the last point: over a degenerate span the step function is
///     the constant it ends at, and that constant is its own mean (the
///     sharded merge hits this whenever a shard saw one instantaneous
///     burst). No division by the zero-length span happens.
class LoadSeries {
 public:
  struct Point {
    double time_s = 0.0;
    int level = 0;  ///< concurrency from this time until the next point
  };

  /// Record a level change of `delta` at `time_s`.
  void add(double time_s, int delta);

  /// Absorb every event of `other` (finalized or not) into this series, as
  /// if each of other's deltas had been add()ed here. Used by the sharded
  /// fleet engine to merge per-shard series: because the finalized series
  /// depends only on the delta multiset, merging shards in any order
  /// reproduces the single-queue series exactly.
  void merge_from(const LoadSeries& other);

  /// Fold pending deltas into the step function; deltas at the same time
  /// merge into one point (a session that arrives and completes at the same
  /// instant leaves no trace). Queries below require a finalized series;
  /// adding (or merging) after finalize() and re-finalizing is fine.
  void finalize();

  [[nodiscard]] bool empty() const {
    return deltas_.empty() && points_.empty();
  }
  [[nodiscard]] const std::vector<Point>& points() const;

  /// points(), finalizing first if any deltas are pending — for exporters
  /// (e.g. the trace counter lane) that should not care whether the series
  /// they were handed was already folded.
  [[nodiscard]] const std::vector<Point>& export_points() {
    finalize();
    return points();
  }

  /// Maximum level ever held (0 for an empty series). O(1).
  [[nodiscard]] int peak() const;
  /// Level integrated over [first event, last event] divided by that span.
  /// 0 for an empty series; the last level for a degenerate (single-point
  /// or zero-span) series — see the boundary semantics above. O(1).
  [[nodiscard]] double time_weighted_mean() const;
  /// Level in force at `time_s` (0 before the first event and on an empty
  /// series).
  [[nodiscard]] int level_at(double time_s) const;

 private:
  std::vector<std::pair<double, int>> deltas_;  ///< pending, unsorted
  std::vector<Point> points_;                   ///< folded step function
  bool finalized_ = false;

  // Aggregates computed during the finalize() sweep.
  int peak_ = 0;
  double integral_ = 0.0;  ///< level integrated between first/last event
};

}  // namespace puffer::stats

#endif  // PUFFER_STATS_LOAD_SERIES_HH
