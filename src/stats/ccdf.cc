#include "stats/ccdf.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::stats {

namespace {

std::vector<DistributionPoint> curve(const std::span<const double> values,
                                     const int max_points, const bool ccdf) {
  require(!values.empty(), "empirical distribution: empty sample");
  require(max_points >= 2, "empirical distribution: need >= 2 points");

  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());

  const size_t n = sorted.size();
  // Round the stride up so the strided sweep emits at most max_points
  // entries (the old floor-division stride could overshoot by a factor of
  // nearly two for n just above max_points^2/(max_points+1)).
  const size_t stride = std::max<size_t>(
      1, (n + static_cast<size_t>(max_points) - 1) /
             static_cast<size_t>(max_points));

  std::vector<DistributionPoint> points;
  for (size_t i = 0; i < n; i += stride) {
    const double fraction_leq = static_cast<double>(i + 1) / static_cast<double>(n);
    points.push_back({sorted[i], ccdf ? 1.0 - fraction_leq : fraction_leq});
  }
  // Always include the max.
  const double fraction_max = 1.0;
  points.push_back({sorted[n - 1], ccdf ? 0.0 : fraction_max});
  return points;
}

}  // namespace

std::vector<DistributionPoint> empirical_ccdf(const std::span<const double> values,
                                              const int max_points) {
  return curve(values, max_points, /*ccdf=*/true);
}

std::vector<DistributionPoint> empirical_cdf(const std::span<const double> values,
                                             const int max_points) {
  return curve(values, max_points, /*ccdf=*/false);
}

}  // namespace puffer::stats
