#include "exp/open_data.hh"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "media/ladder.hh"
#include "media/ssim.hh"
#include "util/require.hh"
#include "util/running_stats.hh"

namespace puffer::exp {

void OpenDataWriter::Recorder::on_video_sent(const double time_s,
                                             const abr::ChunkRecord& record,
                                             const double /*buffer_s*/) {
  VideoSentRow row;
  row.time = time_s;
  row.stream_id = stream_id_;
  row.expt_id = expt_id_;
  row.size = record.size_bytes;
  row.ssim_index = media::db_to_ssim(record.ssim_db);
  row.cwnd = record.tcp_at_send.cwnd_pkts;
  row.in_flight = record.tcp_at_send.in_flight_pkts;
  row.min_rtt = record.tcp_at_send.min_rtt_s;
  row.rtt = record.tcp_at_send.srtt_s;
  row.delivery_rate = record.tcp_at_send.delivery_rate_bps;
  writer_->video_sent_.push_back(row);
}

void OpenDataWriter::Recorder::on_video_acked(const double time_s,
                                              const int64_t chunk_index) {
  writer_->video_acked_.push_back(
      VideoAckedRow{time_s, stream_id_, expt_id_, chunk_index});
}

void OpenDataWriter::Recorder::on_client_buffer(const double time_s,
                                                const char* event,
                                                const double buffer_s,
                                                const double cum_rebuffer_s) {
  ClientBufferRow row;
  row.time = time_s;
  row.stream_id = stream_id_;
  row.expt_id = expt_id_;
  row.event = event;
  row.buffer = buffer_s;
  row.cum_rebuf = cum_rebuffer_s;
  writer_->client_buffer_.push_back(std::move(row));
}

std::string OpenDataWriter::video_sent_csv() const {
  std::ostringstream out;
  out << "time,stream_id,expt_id,size,ssim_index,cwnd,in_flight,min_rtt,"
         "rtt,delivery_rate\n";
  for (const auto& r : video_sent_) {
    out << r.time << ',' << r.stream_id << ',' << r.expt_id << ',' << r.size
        << ',' << r.ssim_index << ',' << r.cwnd << ',' << r.in_flight << ','
        << r.min_rtt << ',' << r.rtt << ',' << r.delivery_rate << '\n';
  }
  return out.str();
}

std::string OpenDataWriter::video_acked_csv() const {
  std::ostringstream out;
  out << "time,stream_id,expt_id,chunk_index\n";
  for (const auto& r : video_acked_) {
    out << r.time << ',' << r.stream_id << ',' << r.expt_id << ','
        << r.chunk_index << '\n';
  }
  return out.str();
}

std::string OpenDataWriter::client_buffer_csv() const {
  std::ostringstream out;
  out << "time,stream_id,expt_id,event,buffer,cum_rebuf\n";
  for (const auto& r : client_buffer_) {
    out << r.time << ',' << r.stream_id << ',' << r.expt_id << ',' << r.event
        << ',' << r.buffer << ',' << r.cum_rebuf << '\n';
  }
  return out.str();
}

std::vector<AnalyzedStream> analyze_open_data(
    const std::vector<VideoSentRow>& video_sent,
    const std::vector<VideoAckedRow>& video_acked,
    const std::vector<ClientBufferRow>& client_buffer) {
  require(video_sent.size() == video_acked.size(),
          "analyze_open_data: every sent chunk needs a matching ack "
          "(simulated streams never lose contact)");

  // Group row indices by stream id (rows are time-ordered per stream).
  std::map<int64_t, AnalyzedStream> streams;
  std::map<int64_t, std::vector<size_t>> sent_rows;
  for (size_t i = 0; i < video_sent.size(); i++) {
    sent_rows[video_sent[i].stream_id].push_back(i);
  }

  for (const auto& [stream_id, rows] : sent_rows) {
    AnalyzedStream analyzed;
    analyzed.stream_id = stream_id;
    analyzed.expt_id = video_sent[rows.front()].expt_id;
    analyzed.chunks = static_cast<int>(rows.size());

    double prev_ssim_db = -1.0;
    RunningStats ssim, variation, tx_time, throughput;
    for (const size_t i : rows) {
      const VideoSentRow& sent = video_sent[i];
      const VideoAckedRow& acked = video_acked[i];
      require(acked.stream_id == sent.stream_id,
              "analyze_open_data: sent/acked row misalignment");
      const double tx = acked.time - sent.time;
      require(tx > 0.0, "analyze_open_data: non-positive transmission time");
      tx_time.add(tx);
      throughput.add(static_cast<double>(sent.size) * 8.0 / 1e6 / tx);
      const double ssim_db = media::ssim_to_db(sent.ssim_index);
      ssim.add(ssim_db);
      if (prev_ssim_db >= 0.0) {
        variation.add(std::abs(ssim_db - prev_ssim_db));
      }
      prev_ssim_db = ssim_db;
    }
    analyzed.ssim_mean_db = ssim.mean();
    analyzed.ssim_variation_db = variation.mean();
    analyzed.mean_tx_time_s = tx_time.mean();
    analyzed.mean_throughput_mbps = throughput.mean();
    streams[stream_id] = analyzed;
  }

  // Fold in the client_buffer events.
  for (const auto& row : client_buffer) {
    const auto found = streams.find(row.stream_id);
    if (found == streams.end()) {
      continue;  // stream with buffer events but no sent chunks
    }
    AnalyzedStream& analyzed = found->second;
    analyzed.stall_time_s = std::max(analyzed.stall_time_s, row.cum_rebuf);
    if (row.event == std::string_view{"startup"} &&
        !sent_rows[row.stream_id].empty()) {
      analyzed.startup_delay_s =
          row.time - video_sent[sent_rows[row.stream_id].front()].time;
    }
  }
  // Watch time: content between first and last play reports, plus stalls.
  for (auto& [stream_id, analyzed] : streams) {
    analyzed.watch_time_s =
        analyzed.chunks * media::kChunkDurationS + analyzed.stall_time_s;
  }

  std::vector<AnalyzedStream> result;
  result.reserve(streams.size());
  for (auto& [stream_id, analyzed] : streams) {
    result.push_back(analyzed);
  }
  return result;
}

void OpenDataWriter::write_all(const std::string& directory,
                               const std::string& prefix) const {
  auto write_file = [&](const std::string& name, const std::string& body) {
    const std::string path = directory + "/" + prefix + "_" + name + ".csv";
    std::ofstream out{path};
    require(out.is_open(), "OpenDataWriter: cannot open " + path);
    out << body;
  };
  write_file("video_sent", video_sent_csv());
  write_file("video_acked", video_acked_csv());
  write_file("client_buffer", client_buffer_csv());
}

}  // namespace puffer::exp
