#ifndef PUFFER_EXP_CAMPAIGN_HH
#define PUFFER_EXP_CAMPAIGN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/resilience.hh"
#include "exp/trial.hh"
#include "fugu/dataset.hh"
#include "fugu/ttp_trainer.hh"
#include "obs/metrics.hh"

namespace puffer::obs {
class TraceWriter;
}  // namespace puffer::obs

namespace puffer::exp {

/// One arm of a continual-learning campaign: a scheme from the experiment
/// registry, optionally paired with a TTP that is retrained every night on
/// the telemetry window and redeployed the next morning — the paper's
/// Figure 6 loop. An arm whose scheme needs an in-situ TTP ("Fugu",
/// "Fugu-point-estimate") streams with the nightly model; an arm whose
/// scheme ignores it (e.g. "BBA") may still set `retrain` to shadow-train a
/// predictor on the campaign's traffic and report its accuracy.
struct CampaignArm {
  std::string name;            ///< unique id used in reports and checkpoints
  std::string scheme = "BBA";  ///< exp scheme-registry name
  /// Retrain a TTP at the end of every day on the arm's training window.
  bool retrain = false;
  /// Warm-start each nightly retrain from the previous day's weights — the
  /// paper's deployment behaviour (section 4.3). false = cold restart every
  /// night, the contrast that isolates what warm starts buy (Figure 9).
  bool warm_start = true;
  fugu::TtpConfig ttp;
  fugu::TtpTrainConfig train;
};

/// A contiguous run of days over one scenario. Concatenated phases model
/// mid-campaign workload shifts (e.g. 3 days of "puffer" then 3 days of
/// "cellular"): learners must adapt to the new world from live telemetry.
struct CampaignPhase {
  net::ScenarioSpec scenario;
  int days = 1;
};

struct CampaignConfig {
  std::vector<CampaignArm> arms;
  std::vector<CampaignPhase> phases{CampaignPhase{}};
  /// Sessions of deployment traffic collected per day (classical schemes,
  /// shared by every learner's nightly retrain — Figure 6's aggregation box).
  int telemetry_sessions_per_day = 48;
  /// Sessions each arm streams per day with its deployed scheme/model. Arms
  /// share the day's session plans (same seed), so they are paired.
  int eval_sessions_per_day = 24;
  /// Fresh held-out sessions per day for evaluate_ttp (TTP cross-entropy).
  int holdout_sessions_per_day = 8;
  uint64_t seed = 1;
  /// Worker threads for every inner session loop (0 = all cores). Results
  /// are bit-identical at any value — the campaign inherits the parallel
  /// trial runner's merge discipline.
  int num_threads = 0;
  /// Directory for the resumable checkpoint + per-day reports. Empty: the
  /// campaign runs in memory only.
  std::string checkpoint_dir;
  /// Per-stream knobs for every session the campaign simulates (telemetry,
  /// holdout, and arm trials alike). Multi-day workloads usually set
  /// stream.max_stream_chunks so one Pareto-tail viewer cannot dominate a
  /// day's compute.
  sim::StreamRunConfig stream;
  /// Fault-injection plan (disabled by default): retrain crashes, telemetry
  /// loss/duplication, checkpoint/model load failures, plus the per-session
  /// families forwarded into every arm trial. Draws are keyed on
  /// (day, arm, attempt, stream index), so a resumed campaign replays the
  /// remaining days' faults exactly.
  sim::FaultPlan faults;
  /// Graceful-degradation responses to the injected faults (retry budgets,
  /// virtual-time backoff, predictor hysteresis).
  ResiliencePolicy resilience;

  [[nodiscard]] int total_days() const;
  [[nodiscard]] const net::ScenarioSpec& scenario_for_day(int day) const;
  /// Hash of every knob that defines the campaign's identity (arms, phases,
  /// session counts, seed). num_threads and checkpoint_dir are excluded: a
  /// checkpoint may be resumed on a different machine or thread count.
  [[nodiscard]] uint64_t fingerprint() const;
};

/// Per-arm figures for one campaign day. Doubles are exact simulation
/// outputs (no bootstrap), so bit-identical runs compare equal with ==.
struct ArmDayStats {
  std::string arm;
  std::string scheme;
  int64_t sessions = 0;
  int64_t considered = 0;
  double ssim_mean_db = 0.0;      ///< watch-time-weighted mean
  double stall_ratio = 0.0;       ///< total stall time / total watch time
  double startup_delay_s = 0.0;   ///< mean over considered streams
  /// TTP metrics from evaluate_ttp on the day's held-out telemetry; -1 when
  /// the arm deploys no model or the holdout produced no usable examples.
  bool has_model = false;
  double cross_entropy = -1.0;
  double top1_accuracy = -1.0;
  uint64_t holdout_examples = 0;
  /// Fault-plane accounting: injected retrain crashes this night, the
  /// virtual-time backoff they cost, and whether the retrain ultimately
  /// failed (degraded: the arm keeps serving yesterday's deployed model).
  int64_t retrain_crashes = 0;
  double retrain_backoff_s = 0.0;
  bool degraded = false;

  friend bool operator==(const ArmDayStats&, const ArmDayStats&) = default;
};

struct DayStats {
  int day = 0;
  std::string scenario;  ///< ScenarioSpec::key() of the day's phase
  uint64_t telemetry_streams = 0;
  uint64_t telemetry_chunks = 0;
  /// Fault-plane accounting: telemetry streams lost / delivered twice on
  /// their way into the aggregator, and whether any arm degraded today.
  uint64_t telemetry_lost = 0;
  uint64_t telemetry_duplicated = 0;
  bool degraded = false;
  std::vector<ArmDayStats> arms;  ///< config.arms order

  friend bool operator==(const DayStats&, const DayStats&) = default;
};

struct CampaignResult {
  std::vector<DayStats> days;  ///< full history, checkpoint-restored included
  /// Days restored from the on-disk checkpoint when the campaign object
  /// first initialized; 0 for a fresh or in-memory campaign. Days carried
  /// across run() calls on the same object are not counted — they were
  /// computed, not restored.
  int restored_days = 0;
  /// Injected checkpoint-load failures exhausted their retry budget, so
  /// the campaign degraded to a flagged fresh start instead of aborting.
  bool fresh_start_degraded = false;
};

/// Per-day CSV (one row per arm-day) / JSON renderings of campaign history.
std::string campaign_report_csv(const std::vector<DayStats>& days);
std::string campaign_report_json(const std::vector<DayStats>& days);

/// The daily in-situ loop as a first-class engine. Each day it
///   1. collects deployment telemetry over the day's scenario,
///   2. streams one day of sessions per arm with the deployed models,
///   3. evaluates each deployed TTP on fresh held-out telemetry,
///   4. retrains every `retrain` arm on its window (warm-started) and
///      redeploys the result for the next day,
/// then checkpoints the full campaign state (telemetry window, models,
/// per-day stats) atomically to checkpoint_dir. A killed campaign resumes
/// at the first incomplete day and produces bit-identical per-day stats to
/// an uninterrupted run, at any thread count: every source of randomness is
/// derived fresh from (seed, day, arm), never carried across days except
/// through the serialized state.
class Campaign {
 public:
  /// Validates the configuration and, when checkpoint_dir holds a
  /// checkpoint of this campaign, restores it — so completed_days() and
  /// deployed_model() reflect the on-disk state from construction. Throws
  /// RequirementError for invalid configs, corrupt checkpoints, or a
  /// directory written by a differently-configured campaign.
  explicit Campaign(CampaignConfig config);

  /// Run at most `max_days` further days (< 0: run to completion). Returns
  /// the full per-day history. With a checkpoint_dir, state is persisted
  /// after every day.
  CampaignResult run(int max_days = -1);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }
  [[nodiscard]] int completed_days() const {
    return static_cast<int>(days_.size());
  }
  [[nodiscard]] int total_days() const { return config_.total_days(); }

  /// The currently deployed TTP of an arm: the model trained through the
  /// last completed day (checkpoint-restored days included), or the cold
  /// initial model before any day ran. nullptr for arms without a model.
  [[nodiscard]] const fugu::TtpModel* deployed_model(
      const std::string& arm_name) const;

  /// Sim-plane counters of the work this object performed (days run,
  /// telemetry volume, retrains, checkpoint writes). Deterministic for a
  /// given sequence of run() calls; checkpoint-restored days contribute
  /// nothing (they were not run here).
  [[nodiscard]] obs::MetricSnapshot metrics() const {
    return metrics_.snapshot();
  }

  /// Emit the completed days as virtual-time spans on the sim lane
  /// (ts = day * 86400 s): one "campaign.day" span per day with its
  /// scenario and telemetry volume, plus an instant per nightly retrain.
  /// Deterministic: derived from days_ alone.
  void export_trace(obs::TraceWriter& trace) const;

 private:
  void initialize_from_checkpoint_dir();
  void run_one_day(int day);
  void save_checkpoint() const;
  bool try_restore_checkpoint();
  void write_reports() const;
  [[nodiscard]] std::string checkpoint_path() const;

  CampaignConfig config_;
  int max_window_days_ = 1;  ///< widest training window over retrain arms
  int restored_days_ = 0;
  obs::MetricRegistry metrics_;
  obs::MetricRegistry::Id days_run_metric_ = 0;
  obs::MetricRegistry::Id telemetry_streams_metric_ = 0;
  obs::MetricRegistry::Id telemetry_chunks_metric_ = 0;
  obs::MetricRegistry::Id eval_sessions_metric_ = 0;
  obs::MetricRegistry::Id retrains_metric_ = 0;
  obs::MetricRegistry::Id checkpoint_writes_metric_ = 0;
  obs::MetricRegistry::Id faults_retrain_crashes_metric_ = 0;
  obs::MetricRegistry::Id faults_retrain_backoff_ms_metric_ = 0;
  obs::MetricRegistry::Id faults_telemetry_lost_metric_ = 0;
  obs::MetricRegistry::Id faults_telemetry_dup_metric_ = 0;
  obs::MetricRegistry::Id faults_checkpoint_failures_metric_ = 0;
  obs::MetricRegistry::Id faults_fresh_starts_metric_ = 0;
  obs::MetricRegistry::Id faults_model_load_metric_ = 0;
  obs::MetricRegistry::Id faults_degraded_days_metric_ = 0;
  bool fresh_start_degraded_ = false;
  fugu::DataAggregator telemetry_;
  /// Deployed model per arm, config.arms order; null for model-free arms.
  /// Immutable between nightly retrains, so trials alias it instead of
  /// copying weights.
  std::vector<std::shared_ptr<const fugu::TtpModel>> deployed_;
  std::vector<DayStats> days_;
};

}  // namespace puffer::exp

#endif  // PUFFER_EXP_CAMPAIGN_HH
