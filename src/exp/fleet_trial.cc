#include "exp/fleet_trial.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "exp/parallel_trial.hh"
#include "exp/session_task.hh"
#include "net/scenario.hh"
#include "util/object_pool.hh"
#include "util/require.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace puffer::exp {

namespace {

/// Session tasks churn at fleet scale (one per arrival, up to 10^6 per
/// run), so allocation is routed through a BlockArena that turns that churn
/// into free-list recycling: heap traffic is bounded by peak concurrency.
/// The arena is per *shard* (not per worker thread): a worker drains one
/// shard at a time and every task is allocated and freed while its shard is
/// being driven, so shard ownership still makes the arena single-threaded —
/// and unlike a per-worker arena, its created/recycled counts no longer
/// depend on which shards the pool happened to co-locate on a worker, which
/// is what lets the arena metrics join the sim-plane determinism contract.
/// The factory installs the owning shard's arena here before constructing
/// each task.
BlockArena*& current_task_arena() {
  thread_local BlockArena* arena = nullptr;
  return arena;
}

/// Trial-layer sim-plane metrics, one set per shard (identical schema →
/// positional merge in ascending shard order, like the engine's).
struct TrialMetrics {
  obs::MetricRegistry registry;
  obs::MetricRegistry::Id tasks_created;
  obs::MetricRegistry::Id algo_pool_hits;
  obs::MetricRegistry::Id algo_pool_misses;
  obs::MetricRegistry::Id plan_cache_hits;
  obs::MetricRegistry::Id plan_cache_misses;
  obs::MetricRegistry::Id arena_blocks_created;
  obs::MetricRegistry::Id arena_recycled_tasks;
  obs::MetricRegistry::Id contention_groups;
  obs::MetricRegistry::Id contention_offered_bytes;
  obs::MetricRegistry::Id contention_delivered_bytes;
  obs::MetricRegistry::Id contention_lost_bytes;
  obs::MetricRegistry::Id contention_fairness;
  obs::MetricRegistry::Id faults_ttp_decisions;
  obs::MetricRegistry::Id faults_ttp_failures;
  obs::MetricRegistry::Id faults_ttp_fallback_decisions;
  obs::MetricRegistry::Id faults_ttp_engagements;
  obs::MetricRegistry::Id faults_degraded_sessions;
  obs::MetricRegistry::Id faults_session_aborts;
  obs::MetricRegistry::Id faults_link_outages;
  obs::MetricRegistry::Id faults_max_session_fallbacks;

  TrialMetrics() {
    const obs::MetricOptions local{.shard_local = true};
    tasks_created = registry.counter("trial.tasks_created");
    // Pool/arena reuse depends on how the shard partition groups sessions,
    // exactly like the engine's batching counters.
    algo_pool_hits = registry.counter("trial.algo_pool_hits", local);
    algo_pool_misses = registry.counter("trial.algo_pool_misses", local);
    // Paired plans are colocated by shard_group, so cache behavior is a
    // per-plan property: 1 miss + (schemes-1) hits at any shard count.
    plan_cache_hits = registry.counter("trial.plan_cache_hits");
    plan_cache_misses = registry.counter("trial.plan_cache_misses");
    arena_blocks_created = registry.counter("trial.arena_blocks_created",
                                            local);
    arena_recycled_tasks = registry.counter("trial.arena_recycled_tasks",
                                            local);
    // Per-group byte totals and fairness are properties of the groups
    // themselves — sums and multisets are partition-invariant.
    contention_groups = registry.counter("contention.groups");
    contention_offered_bytes = registry.counter("contention.offered_bytes");
    contention_delivered_bytes =
        registry.counter("contention.delivered_bytes");
    contention_lost_bytes = registry.counter("contention.lost_bytes");
    contention_fairness = registry.histogram(
        "contention.fairness", {0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0});
    // Fault-plane counters and degradation-state gauges. Every value is a
    // pure per-session (or per-group) function of the fault plan's seed —
    // partition-invariant sums and maxima, determinism class plain.
    faults_ttp_decisions = registry.counter("faults.ttp_decisions");
    faults_ttp_failures = registry.counter("faults.ttp_failures");
    faults_ttp_fallback_decisions =
        registry.counter("faults.ttp_fallback_decisions");
    faults_ttp_engagements = registry.counter("faults.ttp_engagements");
    faults_degraded_sessions = registry.counter("faults.degraded_sessions");
    faults_session_aborts = registry.counter("faults.session_aborts");
    faults_link_outages = registry.counter("faults.link_outages");
    faults_max_session_fallbacks =
        registry.gauge("faults.max_session_fallbacks");
  }
};

/// A SessionTask plus algorithm-instance pooling: sessions overlap in fleet
/// time, so each active session needs its own algorithm instance; returning
/// the instance to a per-scheme free list on completion keeps the number of
/// live instances at the peak concurrency instead of the session count.
/// (SessionTask resets the algorithm at session start, exactly like the
/// sequential loop's reuse, so pooling cannot change results.)
class PooledSessionTask final : public sim::FleetTask {
 public:
  // Route the per-arrival task churn through the owning shard's arena (the
  // factory installs it; tasks are freed while their shard is still being
  // driven, so the same arena is installed at delete time).
  static void* operator new(const std::size_t size) {
    require(current_task_arena() != nullptr,
            "PooledSessionTask: no shard arena installed");
    return current_task_arena()->allocate(size);
  }
  static void operator delete(void* const ptr, const std::size_t size) {
    current_task_arena()->deallocate(ptr, size);
  }

  PooledSessionTask(std::shared_ptr<const SessionPlan> plan,
                    std::unique_ptr<abr::AbrAlgorithm> algo,
                    const TrialConfig& config, SchemeResult& result,
                    std::vector<std::unique_ptr<abr::AbrAlgorithm>>& pool,
                    TrialMetrics* const metrics)
      : plan_(std::move(plan)),
        algo_(std::move(algo)),
        pool_(pool),
        metrics_(metrics),
        task_(*plan_, *algo_, config, result) {}

  ~PooledSessionTask() override {
    // Harvest the session's fault/degradation accounting before the
    // algorithm instance (and its wrapper state) returns to the pool. The
    // destructor runs on the owning shard's worker, so the shard registry
    // is exclusively ours here.
    if (metrics_ != nullptr) {
      obs::MetricRegistry& reg = metrics_->registry;
      if (const fugu::ResilientPredictor* res = task_.resilient()) {
        const fugu::SessionFaultStats& s = res->session_stats();
        reg.add(metrics_->faults_ttp_decisions, s.decisions);
        reg.add(metrics_->faults_ttp_failures, s.failures);
        reg.add(metrics_->faults_ttp_fallback_decisions, s.fallback_decisions);
        reg.add(metrics_->faults_ttp_engagements, s.engagements);
        if (s.degraded) {
          reg.add(metrics_->faults_degraded_sessions);
        }
        reg.set_max(metrics_->faults_max_session_fallbacks,
                    s.fallback_decisions);
      }
      reg.add(metrics_->faults_session_aborts, task_.aborted_streams());
    }
    pool_.push_back(std::move(algo_));
  }

  Step prepare() override { return task_.prepare(); }
  bool stage(fugu::TtpInferenceBatch& batch) override {
    return task_.stage(batch);
  }
  void finish_chunk() override { task_.finish_chunk(); }
  [[nodiscard]] double elapsed_s() const override { return task_.elapsed_s(); }
  void drain_fault_events(std::vector<FaultEvent>& out) override {
    task_.drain_fault_events(out);
  }

 private:
  // Keeps alive what the non-owning SessionTask points at. Paired-mode
  // tasks of one plan share a single immutable SessionPlan (the sampled
  // path trace can be ~1 MB; copying it per scheme at fleet concurrency
  // would multiply that by the whole overlapping fleet).
  std::shared_ptr<const SessionPlan> plan_;
  std::unique_ptr<abr::AbrAlgorithm> algo_;
  std::vector<std::unique_ptr<abr::AbrAlgorithm>>& pool_;
  TrialMetrics* metrics_;
  SessionTask task_;
};

/// A ContentionGroupTask plus the same algorithm-instance pooling, for every
/// member, and the capture of the group's fairness index into its
/// pre-indexed result slot. The engine destroys the task on the shard's own
/// worker, so the slot write and pool pushes are shard-confined; the engine
/// join publishes them to the caller.
class PooledContentionTask final : public sim::FleetTask {
 public:
  PooledContentionTask(
      std::vector<ContentionGroupTask::Member> members,
      const ContentionSpec& spec, net::NetworkPath shared_sample,
      const TrialConfig& config,
      std::vector<std::vector<std::unique_ptr<abr::AbrAlgorithm>>>& pools,
      std::vector<size_t> member_schemes, double* const fairness_slot,
      TrialMetrics* const metrics)
      : pools_(pools),
        member_schemes_(std::move(member_schemes)),
        fairness_slot_(fairness_slot),
        metrics_(metrics),
        task_(std::move(members), spec, std::move(shared_sample), config) {}

  ~PooledContentionTask() override {
    const double fairness = task_.fairness_index();
    *fairness_slot_ = fairness;
    // The destructor runs on the owning shard's worker, so the shard's
    // metric registry is exclusively ours here.
    obs::MetricRegistry& reg = metrics_->registry;
    reg.add(metrics_->contention_groups);
    reg.add(metrics_->contention_offered_bytes,
            std::llround(task_.shared_offered_bytes()));
    reg.add(metrics_->contention_delivered_bytes,
            std::llround(task_.shared_delivered_bytes()));
    reg.add(metrics_->contention_lost_bytes,
            std::llround(task_.shared_lost_bytes()));
    reg.observe(metrics_->contention_fairness, fairness);
    for (size_t i = 0; i < member_schemes_.size(); i++) {
      auto algo = task_.take_algorithm(i);
      if (algo != nullptr) {
        pools_[member_schemes_[i]].push_back(std::move(algo));
      }
    }
  }

  Step prepare() override { return task_.prepare(); }
  bool stage(fugu::TtpInferenceBatch& batch) override {
    return task_.stage(batch);
  }
  void finish_chunk() override { task_.finish_chunk(); }
  [[nodiscard]] double elapsed_s() const override { return task_.elapsed_s(); }
  [[nodiscard]] int64_t session_count() const override {
    return task_.session_count();
  }
  void record_load(stats::LoadSeries& load, const double arrival_s,
                   const double end_s) const override {
    task_.record_load(load, arrival_s, end_s);
  }

 private:
  std::vector<std::vector<std::unique_ptr<abr::AbrAlgorithm>>>& pools_;
  std::vector<size_t> member_schemes_;
  double* fairness_slot_;
  TrialMetrics* metrics_;
  ContentionGroupTask task_;
};

/// Mutable state a shard's worker owns exclusively: its schemes' algorithm
/// free lists and the paired-mode plan cache. shard_group colocates a
/// plan's per-scheme task copies on one shard, so the cache keeps its
/// back-to-back hit pattern under sharding.
struct ShardState {
  std::vector<std::vector<std::unique_ptr<abr::AbrAlgorithm>>> pools;
  int64_t cached_plan_index = -1;
  std::shared_ptr<const SessionPlan> cached_plan;
  BlockArena arena;  ///< PooledSessionTask storage; see current_task_arena()
  TrialMetrics metrics;
};

/// Streaming ascending-order merge: shards complete sessions out of global
/// order, but partials must fold into the TrialResult in session-index
/// order to stay bit-identical to the sequential loop. The frontier tracks
/// which sessions have completed and folds+frees every partial up to the
/// first incomplete one, so unmerged partials are bounded by the frontier
/// lag (≈ peak concurrency), not the session count.
struct MergeFrontier {
  Mutex mutex GUARDS(completed, next_to_merge, unmerged, unmerged_high_water);
  std::vector<char> completed GUARDED_BY(mutex);
  int64_t next_to_merge GUARDED_BY(mutex) = 0;
  /// Completed-but-unmerged partials right now / at the worst moment. The
  /// high-water depends on which shard raced ahead — it is the run's one
  /// scheduling-dependent metric, exported as such.
  int64_t unmerged GUARDED_BY(mutex) = 0;
  int64_t unmerged_high_water GUARDED_BY(mutex) = 0;
};

}  // namespace

FleetTrialResult run_fleet_trial(const FleetTrialConfig& config,
                                 const SchemeArtifacts& artifacts) {
  // Wire an enabled fault plan into scheme assembly (resilient Fugu), as
  // run_trial does — the two paths must build identical schemes.
  SchemeArtifacts wired = artifacts;
  if (config.trial.faults.enabled && wired.faults == nullptr) {
    wired.faults = &config.trial.faults;
  }
  return run_fleet_trial(config, [wired](const std::string& name) {
    return make_scheme(name, wired);
  });
}

FleetTrialResult run_fleet_trial(const FleetTrialConfig& config,
                                 const SchemeFactory& factory) {
  const TrialConfig& trial_config = config.trial;
  require(!trial_config.schemes.empty(),
          "run_fleet_trial: need at least one scheme");
  const auto num_schemes =
      static_cast<int64_t>(trial_config.schemes.size());
  const int64_t num_plans = detail::num_session_plans(trial_config);
  // Paired mode replays each plan once per scheme — each replay is its own
  // fleet session, arriving at the plan's arrival time.
  const int64_t num_tasks =
      trial_config.paired_paths ? num_plans * num_schemes : num_plans;

  // Shared-bottleneck grouping: each run of group_size consecutive plans
  // becomes ONE engine task (a ContentionGroupTask co-simulating its
  // members), so tasks stay mutually independent and the bitwise
  // shard/thread-invariance contract is untouched.
  const ContentionSpec& contention = config.contention;
  require(contention.group_size >= 1,
          "run_fleet_trial: contention.group_size must be >= 1");
  const auto group_size = static_cast<int64_t>(contention.group_size);
  const bool grouped = group_size > 1;
  if (grouped) {
    require(!trial_config.paired_paths,
            "run_fleet_trial: contention groups require an unpaired (RCT) "
            "trial");
  }
  const int64_t num_groups =
      grouped ? (num_plans + group_size - 1) / group_size : 0;

  const std::unique_ptr<net::PathGenerator> paths =
      net::make_path_generator(trial_config.scenario);
  const sim::UserModel users{trial_config.seed};
  const Rng master{trial_config.seed};

  // One arrival per plan, on the virtual timeline, from a dedicated RNG
  // split (so the arrival schedule does not perturb any session's plan).
  const std::unique_ptr<sim::ArrivalProcess> arrival_process =
      sim::make_arrival_process(config.arrivals);
  Rng arrival_rng = master.split("fleet-arrivals");
  const std::vector<double> plan_arrivals =
      sim::sample_arrivals(*arrival_process, arrival_rng, num_plans);
  std::vector<double> task_arrivals;
  if (grouped) {
    // One engine arrival per group, at its first member's arrival; members
    // joining later enter the group world at their arrival offsets.
    task_arrivals.reserve(static_cast<size_t>(num_groups));
    for (int64_t g = 0; g < num_groups; g++) {
      task_arrivals.push_back(
          plan_arrivals[static_cast<size_t>(g * group_size)]);
    }
  } else {
    task_arrivals.reserve(static_cast<size_t>(num_tasks));
    for (int64_t plan = 0; plan < num_plans; plan++) {
      const int64_t copies = trial_config.paired_paths ? num_schemes : 1;
      for (int64_t c = 0; c < copies; c++) {
        task_arrivals.push_back(plan_arrivals[static_cast<size_t>(plan)]);
      }
    }
  }

  sim::FleetConfig engine_config;
  engine_config.num_threads =
      ParallelTrialRunner::resolve_num_threads(trial_config.num_threads);
  engine_config.num_shards = config.num_shards;
  // Colocate a paired plan's per-scheme task copies on one shard: they
  // share an immutable plan, and the cache hit needs them back-to-back.
  engine_config.shard_group = trial_config.paired_paths ? num_schemes : 1;
  engine_config.coalesce_inference = config.coalesce_inference;
  engine_config.max_coalesced_sessions = config.max_coalesced_sessions;
  engine_config.coalesce_window_s = config.coalesce_window_s;
  engine_config.trace = config.trace;
  const sim::FleetEngine engine{engine_config};
  const int num_shards = engine.resolved_num_shards();

  // Per-task partial results, folded into the TrialResult in ascending
  // task order by the streaming frontier below — the same merge order that
  // makes the parallel runner bit-identical to the serial loop. scheme_of
  // and each partial are written by the owning shard's worker before it
  // reports the completion under the frontier mutex, which is what makes
  // them safe to read on whichever worker advances the frontier past them.
  std::vector<std::unique_ptr<SchemeResult>> partials(
      static_cast<size_t>(num_tasks));
  std::vector<size_t> scheme_of(static_cast<size_t>(num_tasks), 0);
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  for (ShardState& shard : shards) {
    shard.pools.resize(trial_config.schemes.size());
  }

  FleetTrialResult result;
  result.trial.schemes = detail::empty_scheme_results(trial_config);
  if (grouped) {
    // Pre-indexed per-group slots; each group's destructor (on its owning
    // shard worker) writes exactly one.
    result.group_fairness.assign(static_cast<size_t>(num_groups), 1.0);
  }

  const auto task_factory =
      [&](const int64_t task_index,
          const int shard_index) -> std::unique_ptr<sim::FleetTask> {
    ShardState& shard = shards[static_cast<size_t>(shard_index)];
    const int64_t plan_index = trial_config.paired_paths
                                   ? task_index / num_schemes
                                   : task_index;
    Rng session_rng = master.split(static_cast<uint64_t>(plan_index));
    std::shared_ptr<const SessionPlan> plan;
    size_t scheme;
    if (trial_config.paired_paths) {
      if (plan_index != shard.cached_plan_index) {
        shard.cached_plan = std::make_shared<const SessionPlan>(
            make_session_plan(session_rng, users, *paths));
        shard.cached_plan_index = plan_index;
        shard.metrics.registry.add(shard.metrics.plan_cache_misses);
      } else {
        shard.metrics.registry.add(shard.metrics.plan_cache_hits);
      }
      plan = shard.cached_plan;
      scheme = static_cast<size_t>(task_index % num_schemes);
    } else {
      plan = std::make_shared<const SessionPlan>(
          make_session_plan(session_rng, users, *paths));
      // RCT: blinded random assignment, drawn exactly as the serial loop
      // draws it (same RNG, same position in the stream).
      scheme = static_cast<size_t>(
          session_rng.uniform_int(0, num_schemes - 1));
    }
    scheme_of[static_cast<size_t>(task_index)] = scheme;

    std::unique_ptr<abr::AbrAlgorithm> algo;
    auto& pool = shard.pools[scheme];
    if (!pool.empty()) {
      algo = std::move(pool.back());
      pool.pop_back();
      shard.metrics.registry.add(shard.metrics.algo_pool_hits);
    } else {
      algo = factory(trial_config.schemes[scheme]);
      require(algo != nullptr, "run_fleet_trial: factory returned null for '" +
                                   trial_config.schemes[scheme] + "'");
      shard.metrics.registry.add(shard.metrics.algo_pool_misses);
    }
    auto& partial = partials[static_cast<size_t>(task_index)];
    partial = std::make_unique<SchemeResult>();
    shard.metrics.registry.add(shard.metrics.tasks_created);
    current_task_arena() = &shard.arena;
    const int64_t blocks_before = shard.arena.blocks_created();
    auto task = std::make_unique<PooledSessionTask>(
        std::move(plan), std::move(algo), trial_config, *partial, pool,
        &shard.metrics);
    const int64_t blocks_after = shard.arena.blocks_created();
    if (blocks_after > blocks_before) {
      shard.metrics.registry.add(shard.metrics.arena_blocks_created,
                                 blocks_after - blocks_before);
    } else {
      shard.metrics.registry.add(shard.metrics.arena_recycled_tasks);
    }
    return task;
  };

  // Contention factory: builds group `group_index` from its member plans.
  // Every member's plan and RCT scheme draw come from the same RNG splits,
  // at the same positions, as the private-path factory above — grouping
  // changes the world the sessions run in, never which sessions exist.
  const auto contention_factory =
      [&](const int64_t group_index,
          const int shard_index) -> std::unique_ptr<sim::FleetTask> {
    ShardState& shard = shards[static_cast<size_t>(shard_index)];
    const int64_t begin = group_index * group_size;
    const int64_t end = std::min(num_plans, begin + group_size);
    std::vector<ContentionGroupTask::Member> members;
    std::vector<size_t> member_schemes;
    members.reserve(static_cast<size_t>(end - begin));
    member_schemes.reserve(static_cast<size_t>(end - begin));
    double max_trace_s = 0.0;
    for (int64_t p = begin; p < end; p++) {
      Rng session_rng = master.split(static_cast<uint64_t>(p));
      auto plan = std::make_shared<const SessionPlan>(
          make_session_plan(session_rng, users, *paths));
      const auto scheme =
          static_cast<size_t>(session_rng.uniform_int(0, num_schemes - 1));
      scheme_of[static_cast<size_t>(p)] = scheme;
      member_schemes.push_back(scheme);
      std::unique_ptr<abr::AbrAlgorithm> algo;
      auto& pool = shard.pools[scheme];
      if (!pool.empty()) {
        algo = std::move(pool.back());
        pool.pop_back();
        shard.metrics.registry.add(shard.metrics.algo_pool_hits);
      } else {
        algo = factory(trial_config.schemes[scheme]);
        require(algo != nullptr,
                "run_fleet_trial: factory returned null for '" +
                    trial_config.schemes[scheme] + "'");
        shard.metrics.registry.add(shard.metrics.algo_pool_misses);
      }
      auto& partial = partials[static_cast<size_t>(p)];
      partial = std::make_unique<SchemeResult>();
      max_trace_s = std::max(max_trace_s, plan->path->trace.duration());
      ContentionGroupTask::Member member;
      member.plan = std::move(plan);
      member.algo = std::move(algo);
      member.result = partial.get();
      member.arrival_offset_s = plan_arrivals[static_cast<size_t>(p)] -
                                plan_arrivals[static_cast<size_t>(begin)];
      member.use_cubic =
          contention.cc == "cubic" || (contention.cc == "mixed" && p % 2 == 1);
      members.push_back(std::move(member));
    }
    // One extra access-path sample from the scenario becomes the shared
    // bottleneck; a dedicated split keeps it from perturbing member plans.
    Rng link_rng = master.split("contention-link")
                       .split(static_cast<uint64_t>(group_index));
    net::NetworkPath shared_sample = paths->sample_path(link_rng, max_trace_s);
    // Link-outage fault: the shared bottleneck goes dark for a drawn
    // window. Keyed on the group index alone, so the outage schedule is a
    // pure per-group function of the fault seed (shard/thread-invariant).
    // The final trace segment is never zeroed: capacity_at() extends it to
    // the end of time, and an everlasting outage would strand the group.
    const double outage_p =
        trial_config.faults.probability(sim::kFaultLinkOutage);
    if (outage_p > 0.0) {
      Rng outage_rng = trial_config.faults.rng(sim::kFaultLinkOutage)
                           .split(static_cast<uint64_t>(group_index));
      if (outage_rng.bernoulli(outage_p)) {
        std::vector<double> rates = shared_sample.trace.rates();
        const double seg_s = shared_sample.trace.segment_duration();
        const double total_s =
            static_cast<double>(rates.size() - 1) * seg_s;  // last seg exempt
        double window_s = trial_config.faults.duration_s(sim::kFaultLinkOutage);
        if (window_s <= 0.0) {
          window_s = 30.0;
        }
        window_s = std::min(window_s, 0.25 * total_s);
        const double start_s =
            outage_rng.uniform(0.0, std::max(0.0, total_s - window_s));
        for (size_t k = 0; k + 1 < rates.size(); k++) {
          const double t_s = static_cast<double>(k) * seg_s;
          if (t_s >= start_s && t_s < start_s + window_s) {
            rates[k] = 0.0;
          }
        }
        shared_sample.trace = net::ThroughputTrace{std::move(rates), seg_s};
        shard.metrics.registry.add(shard.metrics.faults_link_outages);
      }
    }
    shard.metrics.registry.add(shard.metrics.tasks_created);
    return std::make_unique<PooledContentionTask>(
        std::move(members), contention, std::move(shared_sample), trial_config,
        shard.pools, std::move(member_schemes),
        &result.group_fairness[static_cast<size_t>(group_index)],
        &shard.metrics);
  };

  MergeFrontier frontier;
  {
    const MutexLock lock{frontier.mutex};
    frontier.completed.assign(static_cast<size_t>(num_tasks), 0);
  }
  const auto on_complete = [&](const int64_t task_index, const int /*shard*/) {
    const MutexLock lock{frontier.mutex};
    if (grouped) {
      // One engine task covers a contiguous plan range.
      const int64_t begin = task_index * group_size;
      const int64_t end = std::min(num_tasks, begin + group_size);
      for (int64_t p = begin; p < end; p++) {
        frontier.completed[static_cast<size_t>(p)] = 1;
      }
      frontier.unmerged += end - begin;
    } else {
      frontier.completed[static_cast<size_t>(task_index)] = 1;
      frontier.unmerged++;
    }
    frontier.unmerged_high_water =
        std::max(frontier.unmerged_high_water, frontier.unmerged);
    while (frontier.next_to_merge < num_tasks &&
           frontier.completed[static_cast<size_t>(frontier.next_to_merge)] !=
               0) {
      const auto t = static_cast<size_t>(frontier.next_to_merge);
      detail::append_scheme_result(result.trial.schemes[scheme_of[t]],
                                   *partials[t]);
      partials[t].reset();  // frees the partial at the frontier
      frontier.next_to_merge++;
      frontier.unmerged--;
    }
  };

  result.fleet = engine.run(
      task_arrivals,
      grouped ? sim::FleetEngine::TaskFactory{contention_factory}
              : sim::FleetEngine::TaskFactory{task_factory},
      on_complete);
  int64_t frontier_high_water = 0;
  {
    const MutexLock lock{frontier.mutex};
    require(frontier.next_to_merge == num_tasks,
            "run_fleet_trial: merge frontier did not drain");
    frontier_high_water = frontier.unmerged_high_water;
  }

  // Combined sim-plane snapshot: engine block, then trial block (per-shard
  // registries merged in ascending shard order — same discipline as the
  // engine's own merge), then the run-level block.
  result.metrics = result.fleet.metrics;
  obs::MetricSnapshot trial_merged;
  for (const ShardState& shard : shards) {
    trial_merged.merge_from(shard.metrics.registry.snapshot());
  }
  result.metrics.append_from(trial_merged);
  obs::MetricRegistry run_registry;
  const auto frontier_gauge =
      run_registry.gauge("trial.merge_frontier_high_water",
                         {.scheduling_dependent = true});
  run_registry.set(frontier_gauge, frontier_high_water);
  result.metrics.append_from(run_registry.snapshot());
  return result;
}

}  // namespace puffer::exp
