#ifndef PUFFER_EXP_SESSION_TASK_HH
#define PUFFER_EXP_SESSION_TASK_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "exp/trial.hh"
#include "fugu/batch_ttp.hh"
#include "fugu/resilient.hh"
#include "net/tcp_sender.hh"
#include "sim/fleet.hh"
#include "sim/session.hh"

namespace puffer::exp {

/// Everything that defines a session independent of the assigned scheme —
/// sampled up front so that paired (emulation-style) runs can replay the
/// exact same conditions for every scheme, and so the fleet engine can
/// create a session's task at its arrival time.
struct SessionPlan {
  sim::SessionBehavior session;
  std::vector<sim::UserBehavior> stream_behaviors;
  std::vector<int> channels;
  std::vector<uint64_t> video_seeds;
  std::optional<net::NetworkPath> path;
  uint64_t run_seed = 0;
};

SessionPlan make_session_plan(Rng& rng, const sim::UserModel& users,
                              const net::PathGenerator& paths);

namespace detail {

/// CONSORT bucketing + telemetry folding for one finished stream — shared by
/// SessionTask (private paths) and ContentionGroupTask members so the two
/// drivers cannot drift. Draws the 1.1% loss-of-contact bernoulli from
/// `run_rng` at exactly the position the serial loop draws it.
void fold_stream_outcome(const sim::StreamOutcome& outcome, Rng& run_rng,
                         const TrialConfig& config, SchemeResult& result,
                         double& session_duration_s, bool& any_considered);

}  // namespace detail

/// One trial session as a resumable task: the session loop the serial trial
/// path used to run in one call (streams, CONSORT accounting, telemetry
/// logs), cut at its ABR decision points so the fleet engine can interleave
/// thousands of sessions on one virtual timeline. The sequential path
/// drives a task straight to completion (run_session below), so both paths
/// share one implementation and stay bit-identical by construction.
///
/// Non-owning throughout: the plan, algorithm, config and result
/// accumulator must all outlive the task (the serial driver completes
/// within the caller's scope; the fleet wrapper owns the plan alongside
/// the task).
class SessionTask final : public sim::FleetTask {
 public:
  SessionTask(const SessionPlan& plan, abr::AbrAlgorithm& algo,
              const TrialConfig& config, SchemeResult& result);

  Step prepare() override;
  bool stage(fugu::TtpInferenceBatch& batch) override;
  void finish_chunk() override;
  [[nodiscard]] double elapsed_s() const override;
  void drain_fault_events(std::vector<FaultEvent>& out) override;

  /// Streams the fault plane cut short via the user model this session.
  [[nodiscard]] int64_t aborted_streams() const { return aborted_streams_; }
  /// The resilient TTP wrapper, when this session's scheme carries one
  /// (for faults.* metric harvesting); nullptr otherwise.
  [[nodiscard]] fugu::ResilientPredictor* resilient() const {
    return resilient_;
  }

 private:
  void finish_stream();

  const SessionPlan& plan_;
  abr::AbrAlgorithm& algo_;
  const TrialConfig& config_;
  SchemeResult& result_;

  // Set when the algorithm is an MpcAbr driven by a BatchTtpPredictor —
  // the combination whose decisions the fleet engine can coalesce. A
  // ResilientPredictor wrapper hides the batch predictor, so faulted Fugu
  // decisions run inline (bit-identical to staged by construction).
  fugu::BatchTtpPredictor* batch_predictor_ = nullptr;
  fugu::ResilientPredictor* resilient_ = nullptr;
  int mpc_horizon_ = 0;

  // Session-abort fault stream: seeded from (fault seed, family, run seed)
  // at session start and drawn once per decision — a pure per-session
  // schedule, invariant to fleet interleaving.
  std::optional<Rng> abort_rng_;
  double abort_probability_ = 0.0;
  int64_t aborted_streams_ = 0;
  int64_t seen_ttp_failures_ = 0;
  std::vector<FaultEvent> pending_fault_events_;

  Rng run_rng_{0};
  std::optional<net::TcpSender> sender_;
  std::optional<media::VbrVideoSource> video_;
  std::optional<sim::StreamSession> stream_;
  int stream_index_ = 0;
  double session_duration_s_ = 0.0;
  bool any_considered_ = false;
  bool started_ = false;
  bool finished_ = false;
};

/// Drive one session to completion — the serial trial path.
void run_session(const SessionPlan& plan, abr::AbrAlgorithm& algo,
                 const TrialConfig& config, SchemeResult& result);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_SESSION_TASK_HH
