#ifndef PUFFER_EXP_INSITU_HH
#define PUFFER_EXP_INSITU_HH

#include <optional>
#include <string>

#include "exp/trial.hh"
#include "fugu/ttp_trainer.hh"

namespace puffer::exp {

/// Serialize a full TTP (all horizon networks) for caching/warm starts.
void save_ttp(const fugu::TtpModel& model, const std::string& path);
/// Load a TTP if the file exists and matches `config`; nullopt otherwise.
std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           const std::string& path);

/// Serialize a raw telemetry dataset (Appendix B-style chunk logs).
void save_dataset(const fugu::TtpDataset& dataset, const std::string& path);
std::optional<fugu::TtpDataset> try_load_dataset(const std::string& path);

/// Collect one day of telemetry by streaming sessions with the deployed
/// classical schemes (BBA, MPC-HM, RobustMPC-HM) over the given scenario.
/// This is the paper's "Data Aggregation" box (Figure 6): Fugu learns from
/// whatever traffic the deployment carries.
fugu::TtpDataset collect_telemetry(const net::ScenarioSpec& scenario,
                                   int num_sessions, int day, uint64_t seed);

/// Collect `days` days of telemetry and train a TTP on the window ending at
/// the last day — "learning in situ" when the scenario is the deployment
/// world ("puffer"), and the "Emulation-trained Fugu" arm when it is
/// "fcc-emulation". Any registered scenario family works: this is how a TTP
/// is specialized to a new workload.
fugu::TtpModel train_ttp_on_scenario(const net::ScenarioSpec& scenario,
                                     const fugu::TtpConfig& config,
                                     const fugu::TtpTrainConfig& train_config,
                                     int days, int sessions_per_day,
                                     uint64_t seed,
                                     fugu::TtpTrainReport* report = nullptr);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_INSITU_HH
