#ifndef PUFFER_EXP_INSITU_HH
#define PUFFER_EXP_INSITU_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "exp/trial.hh"
#include "fugu/ttp_trainer.hh"

namespace puffer::exp {

/// Serialize a full TTP (all horizon networks) for caching/warm starts. The
/// stream overloads exist so larger containers (the campaign checkpoint) can
/// embed a model inside their own files.
void save_ttp(const fugu::TtpModel& model, std::ostream& out);
void save_ttp(const fugu::TtpModel& model, const std::string& path);

/// Load a TTP if the input exists, parses, and matches `config`; nullopt
/// otherwise. A truncated or corrupt input yields nullopt, never a crash or
/// an exception — callers treat any failure as "retrain from scratch".
std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           std::istream& in);
std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           const std::string& path);

/// Serialize a raw telemetry dataset (Appendix B-style chunk logs). Loading
/// follows the same contract as try_load_ttp: any malformed input is
/// rejected with nullopt.
void save_dataset(const fugu::TtpDataset& dataset, std::ostream& out);
void save_dataset(const fugu::TtpDataset& dataset, const std::string& path);
std::optional<fugu::TtpDataset> try_load_dataset(std::istream& in);
std::optional<fugu::TtpDataset> try_load_dataset(const std::string& path);

/// Collect one day of telemetry by streaming sessions with the deployed
/// classical schemes (BBA, MPC-HM, RobustMPC-HM) over the given scenario.
/// This is the paper's "Data Aggregation" box (Figure 6): Fugu learns from
/// whatever traffic the deployment carries. `num_threads` shards the session
/// loop like any trial (0 = all cores); the dataset is bit-identical at any
/// value. `stream` forwards per-stream knobs (buffer size, simulation
/// budget) to the session loop.
fugu::TtpDataset collect_telemetry(const net::ScenarioSpec& scenario,
                                   int num_sessions, int day, uint64_t seed,
                                   int num_threads = 0,
                                   sim::StreamRunConfig stream = {});

/// Collect `days` days of telemetry and train a TTP on the window ending at
/// the last day — "learning in situ" when the scenario is the deployment
/// world ("puffer"), and the "Emulation-trained Fugu" arm when it is
/// "fcc-emulation". Any registered scenario family works: this is how a TTP
/// is specialized to a new workload. For the full day-after-day loop with
/// warm starts, checkpoints, and multiple arms, see exp::Campaign.
fugu::TtpModel train_ttp_on_scenario(const net::ScenarioSpec& scenario,
                                     const fugu::TtpConfig& config,
                                     const fugu::TtpTrainConfig& train_config,
                                     int days, int sessions_per_day,
                                     uint64_t seed,
                                     fugu::TtpTrainReport* report = nullptr);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_INSITU_HH
