#ifndef PUFFER_EXP_MODELS_HH
#define PUFFER_EXP_MODELS_HH

#include <memory>
#include <string>

#include "exp/registry.hh"
#include "exp/trial.hh"

namespace puffer::exp {

/// Where trained artifacts are cached between bench/example runs. Training
/// is deterministic given the seed, so the cache is purely a time saver; any
/// binary can be run standalone and will train what it needs.
std::string model_cache_dir();

/// The in-situ TTP (trained on telemetry from the deployment-like paths).
std::shared_ptr<const fugu::TtpModel> get_insitu_ttp(uint64_t seed = 42);

/// The emulation-trained TTP (telemetry from FCC-trace emulation only).
std::shared_ptr<const fugu::TtpModel> get_emulation_ttp(uint64_t seed = 42);

/// The Pensieve actor trained with RL in the chunk-level emulator.
std::shared_ptr<const nn::Mlp> get_pensieve_actor(uint64_t seed = 42);

/// Everything the five-scheme primary experiment needs.
SchemeArtifacts default_artifacts(uint64_t seed = 42);

/// The telemetry dataset used for TTP ablation studies (cached).
fugu::TtpDataset get_insitu_dataset(uint64_t seed = 42);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_MODELS_HH
