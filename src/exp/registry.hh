#ifndef PUFFER_EXP_REGISTRY_HH
#define PUFFER_EXP_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "abr/abr.hh"
#include "fugu/resilient.hh"
#include "fugu/ttp.hh"
#include "nn/mlp.hh"

namespace puffer::exp {

/// Descriptive metadata for the Figure 5 table.
struct SchemeInfo {
  std::string name;
  std::string control;
  std::string predictor;
  std::string objective;
  std::string training;
};

/// The Figure 5 rows, verbatim structure.
const std::vector<SchemeInfo>& scheme_table();

/// Shared trained artifacts the factory draws on. Schemes that do not need a
/// model (BBA, MPC-HM, RobustMPC-HM) ignore them.
struct SchemeArtifacts {
  std::shared_ptr<const fugu::TtpModel> ttp_insitu;
  std::shared_ptr<const fugu::TtpModel> ttp_emulation;
  std::shared_ptr<const nn::Mlp> pensieve_actor;
  /// When set to an ENABLED fault plan, Fugu variants are assembled with
  /// their TTP wrapped in a fugu::ResilientPredictor (harmonic-mean
  /// fallback on injected inference failures, `resilience` hysteresis).
  /// Null or disabled leaves every assembly byte-identical to pre-fault
  /// builds. Non-owning; must outlive the schemes built from it.
  const sim::FaultPlan* faults = nullptr;
  fugu::ResilienceConfig resilience;
};

/// Instantiate a scheme by name. Valid names: "Fugu", "MPC-HM",
/// "RobustMPC-HM", "BBA", "Pensieve", "Emulation-trained Fugu",
/// "Fugu-point-estimate". Throws RequirementError for unknown names or
/// missing artifacts.
std::unique_ptr<abr::AbrAlgorithm> make_scheme(const std::string& name,
                                               const SchemeArtifacts& artifacts);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_REGISTRY_HH
