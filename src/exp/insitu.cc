#include "exp/insitu.hh"

#include <fstream>

#include "nn/serialize.hh"
#include "util/require.hh"

namespace puffer::exp {

namespace {

constexpr uint32_t kTtpMagic = 0x50545450;   // "PTTP"
constexpr uint32_t kDataMagic = 0x50444154;  // "PDAT"

void write_u64(std::ostream& out, const uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint64_t read_u64(std::istream& in) {
  uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  require(bool(in), "read_u64: truncated stream");
  return value;
}

void write_f64(std::ostream& out, const double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

double read_f64(std::istream& in) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  require(bool(in), "read_f64: truncated stream");
  return value;
}

}  // namespace

void save_ttp(const fugu::TtpModel& model, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_ttp: cannot open " + path);
  write_u64(out, kTtpMagic);
  write_u64(out, static_cast<uint64_t>(model.networks().size()));
  for (const auto& net : model.networks()) {
    nn::save_mlp(net, out);
  }
}

std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return std::nullopt;
  }
  if (read_u64(in) != kTtpMagic) {
    return std::nullopt;
  }
  const uint64_t count = read_u64(in);
  if (count != static_cast<uint64_t>(config.horizon)) {
    return std::nullopt;
  }
  fugu::TtpModel model{config, /*seed=*/0};
  for (uint64_t k = 0; k < count; k++) {
    nn::Mlp net = nn::load_mlp(in);
    if (net.layer_sizes() != model.networks()[k].layer_sizes()) {
      return std::nullopt;  // architecture mismatch with requested config
    }
    model.networks()[k] = std::move(net);
  }
  return model;
}

void save_dataset(const fugu::TtpDataset& dataset, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_dataset: cannot open " + path);
  write_u64(out, kDataMagic);
  write_u64(out, dataset.size());
  for (const auto& stream : dataset) {
    write_u64(out, static_cast<uint64_t>(stream.day));
    write_u64(out, stream.chunks.size());
    for (const auto& chunk : stream.chunks) {
      write_f64(out, chunk.size_mb);
      write_f64(out, chunk.tx_time_s);
      write_f64(out, chunk.tcp_at_send.cwnd_pkts);
      write_f64(out, chunk.tcp_at_send.in_flight_pkts);
      write_f64(out, chunk.tcp_at_send.min_rtt_s);
      write_f64(out, chunk.tcp_at_send.srtt_s);
      write_f64(out, chunk.tcp_at_send.delivery_rate_bps);
    }
  }
}

std::optional<fugu::TtpDataset> try_load_dataset(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return std::nullopt;
  }
  if (read_u64(in) != kDataMagic) {
    return std::nullopt;
  }
  fugu::TtpDataset dataset;
  const uint64_t num_streams = read_u64(in);
  dataset.reserve(num_streams);
  for (uint64_t s = 0; s < num_streams; s++) {
    fugu::StreamLog stream;
    stream.day = static_cast<int>(read_u64(in));
    const uint64_t num_chunks = read_u64(in);
    stream.chunks.reserve(num_chunks);
    for (uint64_t c = 0; c < num_chunks; c++) {
      fugu::ChunkLog chunk;
      chunk.size_mb = read_f64(in);
      chunk.tx_time_s = read_f64(in);
      chunk.tcp_at_send.cwnd_pkts = read_f64(in);
      chunk.tcp_at_send.in_flight_pkts = read_f64(in);
      chunk.tcp_at_send.min_rtt_s = read_f64(in);
      chunk.tcp_at_send.srtt_s = read_f64(in);
      chunk.tcp_at_send.delivery_rate_bps = read_f64(in);
      stream.chunks.push_back(chunk);
    }
    dataset.push_back(std::move(stream));
  }
  return dataset;
}

fugu::TtpDataset collect_telemetry(const net::ScenarioSpec& scenario,
                                   const int num_sessions, const int day,
                                   const uint64_t seed) {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM", "RobustMPC-HM"};
  config.sessions_per_scheme =
      std::max(1, num_sessions / static_cast<int>(config.schemes.size()));
  config.scenario = scenario;
  config.seed = seed + static_cast<uint64_t>(day) * 7919;
  config.collect_logs = true;
  config.day = day;

  const SchemeArtifacts no_models;
  TrialResult trial = run_trial(config, no_models);

  fugu::TtpDataset dataset;
  for (auto& scheme : trial.schemes) {
    for (auto& log : scheme.logs) {
      dataset.push_back(std::move(log));
    }
  }
  return dataset;
}

fugu::TtpModel train_ttp_on_scenario(const net::ScenarioSpec& scenario,
                                     const fugu::TtpConfig& config,
                                     const fugu::TtpTrainConfig& train_config,
                                     const int days, const int sessions_per_day,
                                     const uint64_t seed,
                                     fugu::TtpTrainReport* report) {
  fugu::TtpDataset dataset;
  for (int day = 0; day < days; day++) {
    fugu::TtpDataset daily =
        collect_telemetry(scenario, sessions_per_day, day, seed);
    for (auto& stream : daily) {
      dataset.push_back(std::move(stream));
    }
  }
  Rng rng = Rng{seed}.split("ttp-train");
  return fugu::train_ttp(config, dataset, /*current_day=*/days - 1,
                         train_config, rng, /*warm_start=*/nullptr, report);
}

}  // namespace puffer::exp
