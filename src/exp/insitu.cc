#include "exp/insitu.hh"

#include <algorithm>
#include <fstream>
#include <new>
#include <stdexcept>

#include "nn/serialize.hh"
#include "util/binary_io.hh"
#include "util/require.hh"

namespace puffer::exp {

namespace {

constexpr uint32_t kTtpMagic = 0x50545450;   // "PTTP"
constexpr uint32_t kDataMagic = 0x50444154;  // "PDAT"
constexpr std::string_view kIoContext = "insitu";

uint64_t read_u64(std::istream& in) {
  return puffer::read_u64(in, kIoContext);
}

double read_f64(std::istream& in) {
  return puffer::read_f64(in, kIoContext);
}

}  // namespace

void save_ttp(const fugu::TtpModel& model, std::ostream& out) {
  write_u64(out, kTtpMagic);
  write_u64(out, static_cast<uint64_t>(model.networks().size()));
  for (const auto& net : model.networks()) {
    nn::save_mlp(net, out);
  }
}

void save_ttp(const fugu::TtpModel& model, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_ttp: cannot open " + path);
  save_ttp(model, out);
  out.flush();
  require(bool(out), "save_ttp: write failed for " + path);
}

std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           std::istream& in) {
  // Any structural failure while parsing (bad magic, truncation, implausible
  // sizes — load_mlp and the read helpers raise RequirementError; a corrupt
  // header that slips past the plausibility checks can still surface as an
  // allocation failure) means "no usable model here": report nullopt rather
  // than crashing the caller.
  try {
    if (read_u64(in) != kTtpMagic) {
      return std::nullopt;
    }
    const uint64_t count = read_u64(in);
    if (count != static_cast<uint64_t>(config.horizon)) {
      return std::nullopt;
    }
    fugu::TtpModel model{config, /*seed=*/0};
    for (uint64_t k = 0; k < count; k++) {
      nn::Mlp net = nn::load_mlp(in);
      if (net.layer_sizes() != model.networks()[k].layer_sizes()) {
        return std::nullopt;  // architecture mismatch with requested config
      }
      model.networks()[k] = std::move(net);
    }
    return model;
  } catch (const RequirementError&) {
    return std::nullopt;
  } catch (const std::bad_alloc&) {
    return std::nullopt;
  } catch (const std::length_error&) {
    return std::nullopt;
  }
}

std::optional<fugu::TtpModel> try_load_ttp(const fugu::TtpConfig& config,
                                           const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return std::nullopt;
  }
  return try_load_ttp(config, in);
}

void save_dataset(const fugu::TtpDataset& dataset, std::ostream& out) {
  write_u64(out, kDataMagic);
  write_u64(out, dataset.size());
  for (const auto& stream : dataset) {
    write_u64(out, static_cast<uint64_t>(stream.day));
    write_u64(out, stream.chunks.size());
    for (const auto& chunk : stream.chunks) {
      write_f64(out, chunk.size_mb);
      write_f64(out, chunk.tx_time_s);
      write_f64(out, chunk.tcp_at_send.cwnd_pkts);
      write_f64(out, chunk.tcp_at_send.in_flight_pkts);
      write_f64(out, chunk.tcp_at_send.min_rtt_s);
      write_f64(out, chunk.tcp_at_send.srtt_s);
      write_f64(out, chunk.tcp_at_send.delivery_rate_bps);
    }
  }
}

void save_dataset(const fugu::TtpDataset& dataset, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_dataset: cannot open " + path);
  save_dataset(dataset, out);
  out.flush();
  require(bool(out), "save_dataset: write failed for " + path);
}

std::optional<fugu::TtpDataset> try_load_dataset(std::istream& in) {
  try {
    if (read_u64(in) != kDataMagic) {
      return std::nullopt;
    }
    fugu::TtpDataset dataset;
    const uint64_t num_streams = read_u64(in);
    // Reservations are capped: a corrupt header must not be able to request
    // terabytes before the (truncated) payload reads fail.
    dataset.reserve(std::min<uint64_t>(num_streams, 1u << 16));
    for (uint64_t s = 0; s < num_streams; s++) {
      fugu::StreamLog stream;
      stream.day = static_cast<int>(read_u64(in));
      const uint64_t num_chunks = read_u64(in);
      stream.chunks.reserve(std::min<uint64_t>(num_chunks, 1u << 16));
      for (uint64_t c = 0; c < num_chunks; c++) {
        fugu::ChunkLog chunk;
        chunk.size_mb = read_f64(in);
        chunk.tx_time_s = read_f64(in);
        chunk.tcp_at_send.cwnd_pkts = read_f64(in);
        chunk.tcp_at_send.in_flight_pkts = read_f64(in);
        chunk.tcp_at_send.min_rtt_s = read_f64(in);
        chunk.tcp_at_send.srtt_s = read_f64(in);
        chunk.tcp_at_send.delivery_rate_bps = read_f64(in);
        stream.chunks.push_back(chunk);
      }
      dataset.push_back(std::move(stream));
    }
    return dataset;
  } catch (const RequirementError&) {
    return std::nullopt;
  } catch (const std::bad_alloc&) {
    return std::nullopt;
  } catch (const std::length_error&) {
    return std::nullopt;
  }
}

std::optional<fugu::TtpDataset> try_load_dataset(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return std::nullopt;
  }
  return try_load_dataset(in);
}

fugu::TtpDataset collect_telemetry(const net::ScenarioSpec& scenario,
                                   const int num_sessions, const int day,
                                   const uint64_t seed,
                                   const int num_threads,
                                   const sim::StreamRunConfig stream) {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM", "RobustMPC-HM"};
  config.sessions_per_scheme =
      std::max(1, num_sessions / static_cast<int>(config.schemes.size()));
  config.scenario = scenario;
  config.seed = seed + static_cast<uint64_t>(day) * 7919;
  config.collect_logs = true;
  config.day = day;
  config.num_threads = num_threads;
  config.stream = stream;

  const SchemeArtifacts no_models;
  TrialResult trial = run_trial(config, no_models);

  fugu::TtpDataset dataset;
  for (auto& scheme : trial.schemes) {
    for (auto& log : scheme.logs) {
      dataset.push_back(std::move(log));
    }
  }
  return dataset;
}

fugu::TtpModel train_ttp_on_scenario(const net::ScenarioSpec& scenario,
                                     const fugu::TtpConfig& config,
                                     const fugu::TtpTrainConfig& train_config,
                                     const int days, const int sessions_per_day,
                                     const uint64_t seed,
                                     fugu::TtpTrainReport* report) {
  fugu::TtpDataset dataset;
  for (int day = 0; day < days; day++) {
    fugu::TtpDataset daily =
        collect_telemetry(scenario, sessions_per_day, day, seed);
    for (auto& stream : daily) {
      dataset.push_back(std::move(stream));
    }
  }
  Rng rng = Rng{seed}.split("ttp-train");
  return fugu::train_ttp(config, dataset, /*current_day=*/days - 1,
                         train_config, rng, /*warm_start=*/nullptr, report);
}

}  // namespace puffer::exp
