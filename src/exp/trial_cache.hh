#ifndef PUFFER_EXP_TRIAL_CACHE_HH
#define PUFFER_EXP_TRIAL_CACHE_HH

#include <optional>
#include <string>

#include "exp/trial.hh"

namespace puffer::exp {

/// Serialize a TrialResult (scheme figures, session durations, CONSORT
/// counts — not the raw chunk logs) so that the five figure benches that
/// analyze the same primary experiment share one simulation run.
void save_trial(const TrialResult& trial, const std::string& path);
std::optional<TrialResult> try_load_trial(const std::string& path);

/// Run `config` (via the standard registry and `artifacts`) or load the
/// cached result from a prior identical run. The cache key hashes the
/// configuration, so changing the config re-runs the simulation.
TrialResult run_trial_cached(const TrialConfig& config,
                             const SchemeArtifacts& artifacts,
                             const std::string& label);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_TRIAL_CACHE_HH
