#ifndef PUFFER_EXP_FLEET_TRIAL_HH
#define PUFFER_EXP_FLEET_TRIAL_HH

#include <vector>

#include "exp/contention.hh"
#include "exp/trial.hh"
#include "sim/arrivals.hh"
#include "sim/fleet.hh"

namespace puffer::exp {

/// A randomized trial executed as a fleet: the same schemes, scenario, RCT
/// assignment and session plans as run_trial(config.trial), but with
/// sessions arriving per `arrivals` and interleaved concurrently on one
/// virtual timeline by sim::FleetEngine.
///
/// Determinism contract: sessions are mutually independent (each has its
/// own path, TCP connection, viewer and per-session RNG), so the fleet's
/// interleaving cannot change any session's results — the merged
/// TrialResult is bit-identical to the session-sequential run_trial at any
/// thread count AND any shard count, with or without coalesced inference.
/// Partial results are appended to the merged TrialResult in ascending
/// session-index order as a streaming frontier (a completed session's
/// partial is folded in and freed as soon as every earlier session has
/// finished), so the resident footprint tracks peak concurrency, not
/// session count. What the fleet adds is the load dimension: a concurrency
/// time series and fused-GEMM batched inference across
/// concurrently-deciding sessions.
struct FleetTrialConfig {
  TrialConfig trial;           ///< trial.num_threads drives the engine too
  sim::ArrivalSpec arrivals;   ///< session-arrival process on virtual time
  /// Event-queue shards (0 = one per worker thread). Per-session results
  /// and the merged trial are bit-identical at any value; only the
  /// batching counters (per-shard coalescing windows) vary with it.
  int num_shards = 0;
  bool coalesce_inference = true;
  int max_coalesced_sessions = 64;
  double coalesce_window_s = 0.25;
  /// Shared-bottleneck grouping. group_size == 1 (default) keeps the
  /// historical private-path fleet. group_size > 1 co-simulates each run of
  /// `group_size` consecutive sessions behind one shared link as a single
  /// fleet task, so the bitwise shard/thread-invariance contract holds
  /// unchanged; requires an unpaired (RCT) trial.
  ContentionSpec contention;
  /// Optional virtual-time trace sink, forwarded to the engine (see
  /// sim::FleetConfig::trace). Does not perturb results.
  obs::TraceWriter* trace = nullptr;
};

struct FleetTrialResult {
  TrialResult trial;        ///< same shape as run_trial — directly comparable
  sim::FleetRunStats fleet;  ///< load series + batching counters
  /// With contention.group_size > 1: Jain fairness of delivered bytes per
  /// contention group, indexed by group. Empty otherwise.
  std::vector<double> group_fairness;
  /// Combined sim-plane snapshot: the engine's merged metrics, then the
  /// trial layer's (task pooling, arenas, contention bytes/fairness), then
  /// run-level gauges (merge-frontier high-water — the one
  /// scheduling-dependent entry, excluded from determinism comparisons).
  obs::MetricSnapshot metrics;
};

FleetTrialResult run_fleet_trial(const FleetTrialConfig& config,
                                 const SchemeArtifacts& artifacts);
FleetTrialResult run_fleet_trial(const FleetTrialConfig& config,
                                 const SchemeFactory& factory);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_FLEET_TRIAL_HH
