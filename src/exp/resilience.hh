#ifndef PUFFER_EXP_RESILIENCE_HH
#define PUFFER_EXP_RESILIENCE_HH

#include "fugu/resilient.hh"

namespace puffer::exp {

/// Campaign-layer graceful-degradation policy: how many times to retry each
/// faulted operation, and how much (bounded, exponential) virtual-time
/// backoff each retrain retry costs, before degrading instead of aborting.
struct ResiliencePolicy {
  /// Retry attempts after a crashed nightly retrain (total attempts =
  /// 1 + retrain_retries). On exhaustion the arm keeps yesterday's
  /// deployed model and the day is flagged degraded.
  int retrain_retries = 2;
  /// Virtual-time backoff before retry k is base * factor^(k-1), capped.
  double retrain_backoff_base_s = 900.0;
  double retrain_backoff_factor = 2.0;
  double retrain_backoff_max_s = 7200.0;
  /// Retry attempts after a failed checkpoint load; on exhaustion the
  /// campaign degrades to a flagged fresh start instead of aborting.
  int checkpoint_retries = 2;
  /// Predictor-level hysteresis (see fugu::ResilientPredictor).
  fugu::ResilienceConfig predictor;

  bool operator==(const ResiliencePolicy&) const = default;
};

/// Backoff charged before retry `attempt` (1-based): bounded exponential.
[[nodiscard]] double retrain_backoff_s(const ResiliencePolicy& policy,
                                       int attempt);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_RESILIENCE_HH
