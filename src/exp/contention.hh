#ifndef PUFFER_EXP_CONTENTION_HH
#define PUFFER_EXP_CONTENTION_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/session_task.hh"
#include "exp/trial.hh"
#include "net/shared_link.hh"
#include "sim/fleet.hh"

namespace puffer::exp {

/// How a fleet trial groups sessions behind shared bottlenecks. The default
/// (group_size == 1) is the historical private-path fleet; group_size > 1
/// co-simulates that many consecutive sessions over one SharedLinkSimulator
/// per group.
struct ContentionSpec {
  /// Sessions per shared bottleneck. 1 = private links (historical path).
  int group_size = 1;
  /// Which shared-bottleneck topology the spec models; purely descriptive
  /// (the knobs below carry the semantics), recorded for bench output.
  std::string topology = "edge";
  /// Fair-queue (max-min) scheduling at the bottleneck instead of one FIFO.
  bool fair_queue = false;
  /// Shared-link capacity = capacity_scale * group_size * (one sampled
  /// access-path trace). Below 1.0 the bottleneck is oversubscribed — the
  /// group genuinely contends instead of each member seeing a private path.
  double capacity_scale = 0.7;
  /// Shared buffer, in bandwidth-delay products at the scaled mean rate and
  /// the group's mean propagation RTT (floored at 64 kB).
  double queue_bdp = 2.0;
  /// Congestion control of the members: "bbr", "cubic", or "mixed"
  /// (odd-indexed sessions run CUBIC, even-indexed BBR).
  std::string cc = "bbr";
};

/// Topology presets used by the contention scenario families and the
/// fleet_scale --contention bench: "edge" (CDN edge, FIFO, mild
/// oversubscription), "tower" (cell tower, FIFO, heavier oversubscription,
/// mixed CC), "wifi" (home AP, per-flow fair queuing).
ContentionSpec make_contention_spec(const std::string& topology,
                                    int group_size);

/// One contention group as a single fleet task: `g` member sessions whose
/// TCP connections share one SharedLinkSimulator, advanced in lockstep on a
/// group-local virtual clock. Packaging the whole group as ONE FleetTask
/// keeps the engine's tasks mutually independent — the fleet == sequential
/// bitwise contract therefore survives any shard or thread count without the
/// engine knowing contention exists, and colocation of a group is automatic.
///
/// Each member runs the exact SessionTask life cycle (CONSORT accounting,
/// preamble, streams, telemetry) against an externally-driven TcpSender; the
/// group loop advances every live connection by the same dt and feeds the
/// shared link's per-flow step results back. Members park at ABR decisions;
/// prepare() surfaces the lowest-indexed parked member to the engine, so
/// batched TTP staging and finish_chunk() route to one member at a time and
/// the engine's prepare/stage/finish protocol is unchanged.
class ContentionGroupTask final : public sim::FleetTask {
 public:
  /// What the trial layer supplies per member session. `arrival_offset_s` is
  /// the member's fleet arrival relative to the group's (= first member's)
  /// arrival; offsets are ascending with member index.
  struct Member {
    std::shared_ptr<const SessionPlan> plan;
    std::unique_ptr<abr::AbrAlgorithm> algo;
    SchemeResult* result = nullptr;
    double arrival_offset_s = 0.0;
    bool use_cubic = false;
  };

  /// `shared_sample` is one access-path sample from the scenario generator;
  /// its trace is rescaled by capacity_scale * group_size to become the
  /// shared bottleneck. `config` and each member's result must outlive the
  /// task.
  ContentionGroupTask(std::vector<Member> members, const ContentionSpec& spec,
                      net::NetworkPath shared_sample,
                      const TrialConfig& config);

  Step prepare() override;
  bool stage(fugu::TtpInferenceBatch& batch) override;
  void finish_chunk() override;
  [[nodiscard]] double elapsed_s() const override { return world_s_; }
  [[nodiscard]] int64_t session_count() const override {
    return static_cast<int64_t>(states_.size());
  }
  void record_load(stats::LoadSeries& load, double arrival_s,
                   double end_s) const override;

  [[nodiscard]] size_t member_count() const { return states_.size(); }
  /// Reclaim member `i`'s algorithm instance (for per-scheme pooling);
  /// leaves the member unusable. Call only after the task completed.
  std::unique_ptr<abr::AbrAlgorithm> take_algorithm(size_t i);

  /// Jain fairness index over the members' delivered bytes on the shared
  /// link (members that never opened a connection are excluded). 1.0 when
  /// fewer than two members transferred anything.
  [[nodiscard]] double fairness_index() const;

  /// Bytes the shared link delivered across all members — exposed for the
  /// induced-stall/bench accounting.
  [[nodiscard]] double shared_delivered_bytes() const;
  /// Bytes all members offered to the shared link, and bytes its queue
  /// dropped — with delivered, the link's exact conservation triple,
  /// surfaced per group for the sim-plane contention metrics.
  [[nodiscard]] double shared_offered_bytes() const;
  [[nodiscard]] double shared_lost_bytes() const;

 private:
  enum class Phase {
    kUnarrived,   ///< before the member's arrival offset
    kPreamble,    ///< warming the fresh connection (send_preamble bytes)
    kChunk,       ///< one chunk transfer in flight
    kIdleWait,    ///< connection idle until wake_at_w (buffer full)
    kAtDecision,  ///< parked at an ABR decision; engine completes it
    kDone,        ///< member's session over
  };

  struct MemberState {
    Member m;
    Phase phase = Phase::kUnarrived;
    int flow = -1;
    Rng run_rng{0};
    std::optional<net::TcpSender> sender;
    std::optional<media::VbrVideoSource> video;
    std::optional<sim::StreamSession> stream;
    int stream_index = 0;
    double session_duration_s = 0.0;
    bool any_considered = false;
    double wake_at_w = 0.0;  ///< kIdleWait: world time to resume
    double end_w = 0.0;      ///< world time the member finished
    fugu::BatchTtpPredictor* batch_predictor = nullptr;
    int mpc_horizon = 0;
  };

  void arrive(MemberState& s);
  void advance_stream(MemberState& s);
  void finish_member_stream(MemberState& s);
  void on_transfer_done(MemberState& s);
  /// One lockstep world round: process due arrivals/wakes, else pick dt,
  /// step every live connection through the shared link, collect transfer
  /// completions. Returns true while any member is not kDone.
  bool advance_world();

  ContentionSpec spec_;
  const TrialConfig& config_;
  net::ThroughputTrace shared_trace_;
  std::optional<net::SharedLinkSimulator> link_;
  std::vector<MemberState> states_;

  double world_s_ = 0.0;  ///< group-local virtual clock
  size_t current_ = 0;    ///< member the pending kDecision belongs to

  // Step scratch.
  std::vector<double> offered_;
  std::vector<net::LinkStepResult> results_;
};

}  // namespace puffer::exp

#endif  // PUFFER_EXP_CONTENTION_HH
