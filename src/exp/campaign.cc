#include "exp/campaign.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>

#include "exp/insitu.hh"
#include "exp/registry.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "util/binary_io.hh"
#include "util/require.hh"

namespace puffer::exp {

namespace {

constexpr uint64_t kCampaignMagic = 0x50434d50;  // "PCMP"
// v2: day-level telemetry_lost/telemetry_duplicated/degraded and arm-level
// retrain_crashes/retrain_backoff_s/degraded fault accounting.
constexpr uint64_t kCampaignVersion = 2;

// --- binary checkpoint primitives -----------------------------------------

constexpr std::string_view kIoContext = "campaign checkpoint";

uint64_t read_u64(std::istream& in) {
  return puffer::read_u64(in, kIoContext);
}

double read_f64(std::istream& in) {
  return puffer::read_f64(in, kIoContext);
}

// Strings in a checkpoint (arm names, scheme names, scenario keys) must
// stay below this bound or the file could be written but never read back.
// The writer enforces it (and the Campaign constructor validates the inputs
// up front), the reader treats a violation as corruption.
constexpr size_t kMaxCheckpointString = (1u << 12) - 1;

void write_string(std::ostream& out, const std::string& text) {
  require(text.size() <= kMaxCheckpointString,
          "campaign checkpoint: string too long to round-trip: " + text);
  puffer::write_string(out, text);
}

std::string read_string(std::istream& in) {
  return puffer::read_string(in, kIoContext, kMaxCheckpointString);
}

void write_day_stats(std::ostream& out, const DayStats& day) {
  write_u64(out, static_cast<uint64_t>(day.day));
  write_string(out, day.scenario);
  write_u64(out, day.telemetry_streams);
  write_u64(out, day.telemetry_chunks);
  write_u64(out, day.telemetry_lost);
  write_u64(out, day.telemetry_duplicated);
  write_u64(out, day.degraded ? 1 : 0);
  write_u64(out, day.arms.size());
  for (const auto& arm : day.arms) {
    write_string(out, arm.arm);
    write_string(out, arm.scheme);
    write_u64(out, static_cast<uint64_t>(arm.sessions));
    write_u64(out, static_cast<uint64_t>(arm.considered));
    write_f64(out, arm.ssim_mean_db);
    write_f64(out, arm.stall_ratio);
    write_f64(out, arm.startup_delay_s);
    write_u64(out, arm.has_model ? 1 : 0);
    write_f64(out, arm.cross_entropy);
    write_f64(out, arm.top1_accuracy);
    write_u64(out, arm.holdout_examples);
    write_u64(out, static_cast<uint64_t>(arm.retrain_crashes));
    write_f64(out, arm.retrain_backoff_s);
    write_u64(out, arm.degraded ? 1 : 0);
  }
}

DayStats read_day_stats(std::istream& in) {
  DayStats day;
  day.day = static_cast<int>(read_u64(in));
  day.scenario = read_string(in);
  day.telemetry_streams = read_u64(in);
  day.telemetry_chunks = read_u64(in);
  day.telemetry_lost = read_u64(in);
  day.telemetry_duplicated = read_u64(in);
  day.degraded = read_u64(in) != 0;
  const uint64_t num_arms = read_u64(in);
  require(num_arms < (1u << 10), "campaign checkpoint: implausible arm count");
  day.arms.reserve(num_arms);
  for (uint64_t a = 0; a < num_arms; a++) {
    ArmDayStats arm;
    arm.arm = read_string(in);
    arm.scheme = read_string(in);
    arm.sessions = static_cast<int64_t>(read_u64(in));
    arm.considered = static_cast<int64_t>(read_u64(in));
    arm.ssim_mean_db = read_f64(in);
    arm.stall_ratio = read_f64(in);
    arm.startup_delay_s = read_f64(in);
    arm.has_model = read_u64(in) != 0;
    arm.cross_entropy = read_f64(in);
    arm.top1_accuracy = read_f64(in);
    arm.holdout_examples = read_u64(in);
    arm.retrain_crashes = static_cast<int64_t>(read_u64(in));
    arm.retrain_backoff_s = read_f64(in);
    arm.degraded = read_u64(in) != 0;
    day.arms.push_back(std::move(arm));
  }
  return day;
}

/// Flush a file's (or directory's) data to stable storage. The checkpoint
/// treats corruption as a hard error rather than a restart, so the commit
/// protocol must survive power loss, not just SIGKILL: fsync the temp file
/// before the rename and the directory after it.
void fsync_path(const std::string& path, const bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  require(fd >= 0, "campaign checkpoint: cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  require(rc == 0, "campaign checkpoint: fsync failed for " + path);
}

// --- seed derivation -------------------------------------------------------
// Every stochastic step draws from a seed derived fresh from
// (config.seed, purpose, day[, arm]) so that a resumed campaign replays the
// remaining days exactly: no generator state survives a day boundary.

uint64_t purpose_seed(const uint64_t seed, const std::string& purpose) {
  return mix64(seed ^ stable_hash(purpose));
}

// --- report helpers --------------------------------------------------------

std::string format_double(const double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

/// RFC-4180 quoting for fields that may contain commas or quotes (scenario
/// keys embed arbitrary trace paths); fields without such characters stay
/// unquoted, so the common case is clean.
std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    return text;
  }
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
      escaped.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      escaped += buffer;
    } else {
      escaped.push_back(c);
    }
  }
  return escaped;
}

}  // namespace

// --- CampaignConfig --------------------------------------------------------

int CampaignConfig::total_days() const {
  int total = 0;
  for (const auto& phase : phases) {
    total += phase.days;
  }
  return total;
}

const net::ScenarioSpec& CampaignConfig::scenario_for_day(const int day) const {
  require(day >= 0, "CampaignConfig: negative day");
  int remaining = day;
  for (const auto& phase : phases) {
    if (remaining < phase.days) {
      return phase.scenario;
    }
    remaining -= phase.days;
  }
  throw RequirementError("CampaignConfig: day " + std::to_string(day) +
                         " beyond the campaign's " +
                         std::to_string(total_days()) + " days");
}

uint64_t CampaignConfig::fingerprint() const {
  std::ostringstream canon;
  canon << std::setprecision(17);
  // Free-form fields (trace paths, arm names) are length-prefixed so the
  // canonical form is injective: no crafted string can make two different
  // configs serialize identically and adopt each other's checkpoints.
  const auto field = [&canon](const std::string& text) {
    canon << text.size() << ":" << text;
  };
  canon << "campaign-v1;seed=" << seed
        << ";telemetry=" << telemetry_sessions_per_day
        << ";eval=" << eval_sessions_per_day
        << ";holdout=" << holdout_sessions_per_day
        << ";stream=" << stream.max_buffer_s << "," << stream.lookahead_chunks
        << "," << stream.player_init_delay_s << ","
        << stream.max_stream_chunks;
  for (const auto& phase : phases) {
    canon << ";phase=";
    field(phase.scenario.key());
    canon << "x" << phase.days;
  }
  for (const auto& arm : arms) {
    canon << ";arm=";
    field(arm.name);
    canon << "|";
    field(arm.scheme);
    canon << "|" << arm.retrain << "|" << arm.warm_start
          << "|ttp:" << arm.ttp.history << "," << arm.ttp.use_tcp_info << ","
          << static_cast<int>(arm.ttp.target) << "," << arm.ttp.horizon;
    for (const size_t h : arm.ttp.hidden_layers) {
      canon << "," << h;
    }
    canon << "|train:" << arm.train.epochs << "," << arm.train.batch_size
          << "," << arm.train.learning_rate << "," << arm.train.window_days
          << "," << arm.train.recency_decay << ","
          << arm.train.max_examples_per_step;
  }
  // The fault plane joins the identity only when enabled, so every
  // pre-existing zero-fault checkpoint keeps its fingerprint byte-for-byte.
  if (faults.enabled) {
    canon << ";faults=";
    field(faults.fingerprint_key());
    canon << ";resilience=" << resilience.retrain_retries << ","
          << resilience.retrain_backoff_base_s << ","
          << resilience.retrain_backoff_factor << ","
          << resilience.retrain_backoff_max_s << ","
          << resilience.checkpoint_retries << ","
          << resilience.predictor.engage_after_failures << ","
          << resilience.predictor.repromote_after_successes;
  }
  return stable_hash(canon.str());
}

// --- reports ---------------------------------------------------------------

std::string campaign_report_csv(const std::vector<DayStats>& days) {
  std::string csv =
      "day,scenario,arm,scheme,sessions,considered,ssim_db,stall_ratio,"
      "startup_s,has_model,cross_entropy,top1_accuracy,holdout_examples,"
      "degraded,retrain_crashes,retrain_backoff_s\n";
  for (const auto& day : days) {
    for (const auto& arm : day.arms) {
      csv += std::to_string(day.day) + "," + csv_field(day.scenario) + "," +
             csv_field(arm.arm) + "," + csv_field(arm.scheme) + "," +
             std::to_string(arm.sessions) + "," +
             std::to_string(arm.considered) + "," +
             format_double(arm.ssim_mean_db) + "," +
             format_double(arm.stall_ratio) + "," +
             format_double(arm.startup_delay_s) + "," +
             (arm.has_model ? "1" : "0") + "," +
             format_double(arm.cross_entropy) + "," +
             format_double(arm.top1_accuracy) + "," +
             std::to_string(arm.holdout_examples) + "," +
             (arm.degraded ? "1" : "0") + "," +
             std::to_string(arm.retrain_crashes) + "," +
             format_double(arm.retrain_backoff_s) + "\n";
    }
  }
  return csv;
}

std::string campaign_report_json(const std::vector<DayStats>& days) {
  std::string json = "{\"days\":[";
  for (size_t d = 0; d < days.size(); d++) {
    const DayStats& day = days[d];
    json += (d == 0 ? "" : ",");
    json += "{\"day\":" + std::to_string(day.day) + ",\"scenario\":\"" +
            json_escape(day.scenario) +
            "\",\"telemetry_streams\":" + std::to_string(day.telemetry_streams) +
            ",\"telemetry_chunks\":" + std::to_string(day.telemetry_chunks) +
            ",\"telemetry_lost\":" + std::to_string(day.telemetry_lost) +
            ",\"telemetry_duplicated\":" +
            std::to_string(day.telemetry_duplicated) +
            ",\"degraded\":" + (day.degraded ? "true" : "false") +
            ",\"arms\":[";
    for (size_t a = 0; a < day.arms.size(); a++) {
      const ArmDayStats& arm = day.arms[a];
      json += (a == 0 ? "" : ",");
      json += "{\"arm\":\"" + json_escape(arm.arm) + "\",\"scheme\":\"" +
              json_escape(arm.scheme) +
              "\",\"sessions\":" + std::to_string(arm.sessions) +
              ",\"considered\":" + std::to_string(arm.considered) +
              ",\"ssim_db\":" + format_double(arm.ssim_mean_db) +
              ",\"stall_ratio\":" + format_double(arm.stall_ratio) +
              ",\"startup_s\":" + format_double(arm.startup_delay_s) +
              ",\"has_model\":" + (arm.has_model ? "true" : "false") +
              ",\"cross_entropy\":" + format_double(arm.cross_entropy) +
              ",\"top1_accuracy\":" + format_double(arm.top1_accuracy) +
              ",\"holdout_examples\":" + std::to_string(arm.holdout_examples) +
              ",\"degraded\":" + (arm.degraded ? "true" : "false") +
              ",\"retrain_crashes\":" + std::to_string(arm.retrain_crashes) +
              ",\"retrain_backoff_s\":" + format_double(arm.retrain_backoff_s) +
              "}";
    }
    json += "]}";
  }
  json += "]}";
  return json;
}

// --- Campaign --------------------------------------------------------------

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
  days_run_metric_ = metrics_.counter("campaign.days_run");
  telemetry_streams_metric_ = metrics_.counter("campaign.telemetry_streams");
  telemetry_chunks_metric_ = metrics_.counter("campaign.telemetry_chunks");
  eval_sessions_metric_ = metrics_.counter("campaign.eval_sessions");
  retrains_metric_ = metrics_.counter("campaign.retrains");
  checkpoint_writes_metric_ = metrics_.counter("campaign.checkpoint_writes");
  // Fault-plane accounting. Every fault draw is a pure function of
  // (plan seed, family, day/arm/attempt keys), so these counters are
  // deterministic for a given config at any thread count (class: plain).
  faults_retrain_crashes_metric_ = metrics_.counter("faults.retrain_crashes");
  faults_retrain_backoff_ms_metric_ =
      metrics_.counter("faults.retrain_backoff_ms");
  faults_telemetry_lost_metric_ = metrics_.counter("faults.telemetry_lost");
  faults_telemetry_dup_metric_ =
      metrics_.counter("faults.telemetry_duplicated");
  faults_checkpoint_failures_metric_ =
      metrics_.counter("faults.checkpoint_load_failures");
  faults_fresh_starts_metric_ =
      metrics_.counter("faults.checkpoint_fresh_starts");
  faults_model_load_metric_ = metrics_.counter("faults.model_load_failures");
  faults_degraded_days_metric_ = metrics_.counter("faults.degraded_days");

  require(config_.resilience.retrain_retries >= 0 &&
              config_.resilience.checkpoint_retries >= 0,
          "Campaign: resilience retry budgets must be non-negative");
  require(!config_.arms.empty(), "Campaign: need at least one arm");
  require(!config_.phases.empty(), "Campaign: need at least one phase");
  for (const auto& phase : config_.phases) {
    require(phase.days > 0, "Campaign: every phase needs days > 0");
    require(net::scenario_registry().contains(phase.scenario.family),
            "Campaign: unknown scenario family '" + phase.scenario.family +
                "'");
    require(phase.scenario.key().size() <= kMaxCheckpointString,
            "Campaign: scenario key too long to checkpoint: " +
                phase.scenario.key());
  }
  require(config_.telemetry_sessions_per_day > 0 &&
              config_.eval_sessions_per_day > 0 &&
              config_.holdout_sessions_per_day > 0,
          "Campaign: session counts must be positive");

  std::set<std::string> names;
  deployed_.resize(config_.arms.size());
  for (size_t i = 0; i < config_.arms.size(); i++) {
    const CampaignArm& arm = config_.arms[i];
    require(!arm.name.empty(), "Campaign: arm name must be non-empty");
    require(arm.name.find(',') == std::string::npos &&
                arm.name.find('\n') == std::string::npos,
            "Campaign: arm name must not contain ',' or newline");
    require(arm.name.size() <= kMaxCheckpointString,
            "Campaign: arm name too long to checkpoint");
    require(names.insert(arm.name).second,
            "Campaign: duplicate arm name '" + arm.name + "'");

    SchemeArtifacts artifacts;
    if (arm.retrain) {
      // The cold model the arm deploys on day 0, before any telemetry
      // exists: fresh random initialization, deterministic in the seed.
      deployed_[i] = std::make_shared<const fugu::TtpModel>(
          arm.ttp, purpose_seed(config_.seed, "campaign/init/" + arm.name));
      artifacts.ttp_insitu = deployed_[i];
      max_window_days_ = std::max(max_window_days_, arm.train.window_days);
    }
    // Fail now, with the arm's name, rather than mid-campaign: the scheme
    // must be constructible from what the arm will have at runtime.
    try {
      static_cast<void>(make_scheme(arm.scheme, artifacts));
    } catch (const RequirementError& error) {
      throw RequirementError("Campaign: arm '" + arm.name + "': " +
                             error.what());
    }
  }

  initialize_from_checkpoint_dir();
}

const fugu::TtpModel* Campaign::deployed_model(
    const std::string& arm_name) const {
  for (size_t i = 0; i < config_.arms.size(); i++) {
    if (config_.arms[i].name == arm_name) {
      return deployed_[i].get();
    }
  }
  throw RequirementError("Campaign: no arm named '" + arm_name + "'");
}

std::string Campaign::checkpoint_path() const {
  return config_.checkpoint_dir + "/campaign.ckpt";
}

void Campaign::initialize_from_checkpoint_dir() {
  if (config_.checkpoint_dir.empty()) {
    return;
  }
  std::filesystem::create_directories(config_.checkpoint_dir);
  // Injected checkpoint-load failures (the file exists but the load "fails"):
  // retry up to the policy budget, then degrade to a FLAGGED fresh start
  // instead of aborting the campaign. Real corruption still throws below —
  // only the injected fault family takes the degradation path.
  if (config_.faults.probability(sim::kFaultCheckpointLoad) > 0.0 &&
      std::filesystem::exists(checkpoint_path())) {
    int attempt = 0;
    while (config_.faults.draw(sim::kFaultCheckpointLoad,
                               {static_cast<uint64_t>(attempt)})) {
      metrics_.add(faults_checkpoint_failures_metric_);
      attempt++;
      if (attempt > config_.resilience.checkpoint_retries) {
        fresh_start_degraded_ = true;
        metrics_.add(faults_fresh_starts_metric_);
        return;  // keep the cold day-0 models; the checkpoint stays on disk
      }
    }
  }
  if (try_restore_checkpoint()) {
    restored_days_ = completed_days();
  }
}

bool Campaign::try_restore_checkpoint() {
  std::ifstream in{checkpoint_path(), std::ios::binary};
  if (!in.is_open()) {
    return false;  // fresh campaign
  }
  // From here on, failures are errors, not "start over": silently discarding
  // a corrupt checkpoint could throw away days of compute, and a fingerprint
  // mismatch means the directory belongs to a different campaign.
  require(read_u64(in) == kCampaignMagic,
          "campaign checkpoint: bad magic in " + checkpoint_path() +
              " (corrupt file? clear the checkpoint directory to restart)");
  require(read_u64(in) == kCampaignVersion,
          "campaign checkpoint: unsupported version in " + checkpoint_path());
  require(read_u64(in) == config_.fingerprint(),
          "campaign checkpoint: " + checkpoint_path() +
              " was written by a campaign with a different configuration; "
              "use a fresh checkpoint_dir or clear this one");

  const uint64_t completed = read_u64(in);
  require(completed <= static_cast<uint64_t>(config_.total_days()),
          "campaign checkpoint: more completed days than the campaign has");
  days_.clear();
  days_.reserve(completed);
  for (uint64_t d = 0; d < completed; d++) {
    days_.push_back(read_day_stats(in));
    require(days_.back().day == static_cast<int>(d),
            "campaign checkpoint: day stats out of order");
  }

  std::optional<fugu::TtpDataset> dataset = try_load_dataset(in);
  require(dataset.has_value(), "campaign checkpoint: telemetry block corrupt");
  telemetry_ = fugu::DataAggregator{};
  for (auto& stream : *dataset) {
    telemetry_.add_stream(std::move(stream));
  }

  const uint64_t num_models = read_u64(in);
  require(num_models <= config_.arms.size(),
          "campaign checkpoint: more models than arms");
  for (uint64_t m = 0; m < num_models; m++) {
    const uint64_t index = read_u64(in);
    require(index < config_.arms.size() &&
                config_.arms[static_cast<size_t>(index)].retrain,
            "campaign checkpoint: model for a non-retrain arm");
    std::optional<fugu::TtpModel> model =
        try_load_ttp(config_.arms[static_cast<size_t>(index)].ttp, in);
    require(model.has_value(), "campaign checkpoint: model block corrupt");
    if (config_.faults.draw(sim::kFaultModelLoad, {index})) {
      // Injected model corruption: the bytes were consumed above so the
      // stream stays aligned; degrade this arm to a fresh cold init (the
      // same weights it deployed on day 0) instead of aborting.
      metrics_.add(faults_model_load_metric_);
      deployed_[static_cast<size_t>(index)] =
          std::make_shared<const fugu::TtpModel>(
              config_.arms[static_cast<size_t>(index)].ttp,
              purpose_seed(config_.seed,
                           "campaign/init/" +
                               config_.arms[static_cast<size_t>(index)].name));
      continue;
    }
    deployed_[static_cast<size_t>(index)] =
        std::make_shared<const fugu::TtpModel>(std::move(*model));
  }
  return true;
}

void Campaign::save_checkpoint() const {
  const obs::ProfScope checkpoint_scope{"campaign.checkpoint"};
  const std::string final_path = checkpoint_path();
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out{tmp_path, std::ios::binary | std::ios::trunc};
    require(out.is_open(), "campaign checkpoint: cannot open " + tmp_path);
    write_u64(out, kCampaignMagic);
    write_u64(out, kCampaignVersion);
    write_u64(out, config_.fingerprint());
    write_u64(out, days_.size());
    for (const auto& day : days_) {
      write_day_stats(out, day);
    }
    save_dataset(telemetry_.all(), out);
    uint64_t num_models = 0;
    for (const auto& model : deployed_) {
      num_models += model != nullptr ? 1 : 0;
    }
    write_u64(out, num_models);
    for (size_t i = 0; i < deployed_.size(); i++) {
      if (deployed_[i]) {
        write_u64(out, i);
        save_ttp(*deployed_[i], out);
      }
    }
    // Flush before validating: the destructor's implicit flush reports
    // nothing, and committing a short write via the rename would wedge
    // every future resume.
    out.flush();
    require(bool(out), "campaign checkpoint: write failed for " + tmp_path);
  }
  // The rename is the commit point: a kill at any earlier moment leaves the
  // previous checkpoint intact, so resume restarts the interrupted day from
  // its beginning with exactly the prior day's state. The fsyncs extend the
  // guarantee to power loss — the rename must never become durable before
  // the bytes it names.
  fsync_path(tmp_path, /*directory=*/false);
  std::filesystem::rename(tmp_path, final_path);
  fsync_path(config_.checkpoint_dir, /*directory=*/true);
}

void Campaign::write_reports() const {
  const std::string csv_path = config_.checkpoint_dir + "/report.csv";
  std::ofstream csv{csv_path, std::ios::trunc};
  require(csv.is_open(), "campaign reports: cannot open " + csv_path);
  csv << campaign_report_csv(days_);
  require(bool(csv), "campaign reports: write failed for " + csv_path);
  const std::string json_path = config_.checkpoint_dir + "/report.json";
  std::ofstream json{json_path, std::ios::trunc};
  require(json.is_open(), "campaign reports: cannot open " + json_path);
  json << campaign_report_json(days_);
  require(bool(json), "campaign reports: write failed for " + json_path);
}

void Campaign::run_one_day(const int day) {
  const obs::ProfScope day_scope{"campaign.day"};
  const net::ScenarioSpec& scenario = config_.scenario_for_day(day);
  DayStats stats;
  stats.day = day;
  stats.scenario = scenario.key();

  // 1. Deployment telemetry: one day of live traffic from the classical
  // schemes, shared by every learner (Figure 6's data-aggregation box).
  fugu::TtpDataset daily = collect_telemetry(
      scenario, config_.telemetry_sessions_per_day, day,
      purpose_seed(config_.seed, "campaign/telemetry"), config_.num_threads,
      config_.stream);
  stats.telemetry_streams = daily.size();
  for (const auto& stream : daily) {
    stats.telemetry_chunks += stream.chunks.size();
  }
  metrics_.add(telemetry_streams_metric_,
               static_cast<int64_t>(stats.telemetry_streams));
  metrics_.add(telemetry_chunks_metric_,
               static_cast<int64_t>(stats.telemetry_chunks));
  // Telemetry-plane faults on the way into the aggregator: a lost stream
  // never reaches training; a duplicated one is ingested twice (double
  // weight). Draws are keyed on (day, stream index) so a resumed campaign
  // replays them exactly.
  for (uint64_t j = 0; j < daily.size(); j++) {
    auto& stream = daily[j];
    if (config_.faults.draw(sim::kFaultTelemetryLoss,
                            {static_cast<uint64_t>(day), j})) {
      stats.telemetry_lost++;
      metrics_.add(faults_telemetry_lost_metric_);
      continue;
    }
    if (config_.faults.draw(sim::kFaultTelemetryDup,
                            {static_cast<uint64_t>(day), j})) {
      stats.telemetry_duplicated++;
      metrics_.add(faults_telemetry_dup_metric_);
      telemetry_.add_stream(fugu::StreamLog{stream});
    }
    telemetry_.add_stream(std::move(stream));
  }

  // 2. Fresh held-out telemetry for TTP evaluation (never trained on).
  fugu::TtpDataset holdout;
  const bool any_model = std::any_of(deployed_.begin(), deployed_.end(),
                                     [](const auto& m) { return bool(m); });
  if (any_model) {
    holdout = collect_telemetry(
        scenario, config_.holdout_sessions_per_day, day,
        purpose_seed(config_.seed, "campaign/holdout"), config_.num_threads,
        config_.stream);
  }

  // 3. One day of sessions per arm with the deployed scheme/model. All arms
  // share the day's seed, so they stream paired session plans.
  const uint64_t trial_seed =
      mix64(purpose_seed(config_.seed, "campaign/trial") +
            static_cast<uint64_t>(day) * 7919);
  for (size_t i = 0; i < config_.arms.size(); i++) {
    const CampaignArm& arm = config_.arms[i];
    TrialConfig trial_config;
    trial_config.schemes = {arm.scheme};
    trial_config.sessions_per_scheme = config_.eval_sessions_per_day;
    trial_config.scenario = scenario;
    trial_config.seed = trial_seed;
    trial_config.day = day;
    trial_config.num_threads = config_.num_threads;
    trial_config.stream = config_.stream;
    // Forward the per-session fault families (TTP inference failures,
    // session aborts) into the arm's day of sessions.
    trial_config.faults = config_.faults;

    SchemeArtifacts artifacts;
    artifacts.ttp_insitu = deployed_[i];  // aliased, not copied: immutable
    artifacts.resilience = config_.resilience.predictor;
    const TrialResult trial = run_trial(trial_config, artifacts);
    const SchemeResult& result = trial.schemes.front();

    ArmDayStats arm_stats;
    arm_stats.arm = arm.name;
    arm_stats.scheme = arm.scheme;
    arm_stats.sessions = result.consort.sessions;
    arm_stats.considered = result.consort.considered;
    metrics_.add(eval_sessions_metric_, result.consort.sessions);
    double watch_s = 0.0, stall_s = 0.0, ssim_weighted = 0.0, startup_s = 0.0;
    for (const auto& figures : result.considered) {
      watch_s += figures.watch_time_s;
      stall_s += figures.stall_time_s;
      ssim_weighted += figures.ssim_mean_db * figures.watch_time_s;
      startup_s += figures.startup_delay_s;
    }
    if (!result.considered.empty() && watch_s > 0.0) {
      arm_stats.ssim_mean_db = ssim_weighted / watch_s;
      arm_stats.stall_ratio = stall_s / watch_s;
      arm_stats.startup_delay_s =
          startup_s / static_cast<double>(result.considered.size());
    }

    if (deployed_[i]) {
      arm_stats.has_model = true;
      if (!holdout.empty()) {
        const fugu::TtpEvaluation eval = evaluate_ttp(*deployed_[i], holdout);
        arm_stats.cross_entropy = eval.cross_entropy;
        arm_stats.top1_accuracy = eval.top1_accuracy;
        arm_stats.holdout_examples = eval.examples;
      }
    }
    stats.arms.push_back(std::move(arm_stats));
  }

  // 4. Nightly retrain: each learning arm trains on its window over the
  // shared telemetry, warm-started from the model it streamed with today,
  // and deploys the result tomorrow (paper section 4.3).
  for (size_t i = 0; i < config_.arms.size(); i++) {
    const CampaignArm& arm = config_.arms[i];
    if (!arm.retrain) {
      continue;
    }
    const fugu::TtpDataset window =
        telemetry_.window(day, arm.train.window_days);
    const Rng train_base = Rng{config_.seed}
                               .split("campaign/train")
                               .split(static_cast<uint64_t>(i))
                               .split(static_cast<uint64_t>(day));
    const fugu::TtpModel* warm = arm.warm_start ? deployed_[i].get() : nullptr;
    // Injected retrain crashes: retry with bounded virtual-time backoff, and
    // on an exhausted budget keep serving yesterday's deployed model (the
    // degraded path the paper's deployment would take). Attempt 0 draws from
    // the unmodified train stream so zero-fault campaigns stay byte-identical
    // to pre-fault builds; retries split a dedicated "retry" branch.
    ArmDayStats& arm_stats = stats.arms[i];
    bool trained = false;
    const int max_attempts = 1 + config_.resilience.retrain_retries;
    for (int attempt = 0; attempt < max_attempts; attempt++) {
      if (config_.faults.draw(sim::kFaultRetrainCrash,
                              {static_cast<uint64_t>(day),
                               static_cast<uint64_t>(i),
                               static_cast<uint64_t>(attempt)})) {
        arm_stats.retrain_crashes++;
        metrics_.add(faults_retrain_crashes_metric_);
        const double backoff =
            retrain_backoff_s(config_.resilience, attempt + 1);
        arm_stats.retrain_backoff_s += backoff;
        metrics_.add(faults_retrain_backoff_ms_metric_,
                     static_cast<int64_t>(backoff * 1000.0));
        continue;
      }
      Rng train_rng =
          attempt == 0
              ? train_base
              : train_base.split("retry").split(static_cast<uint64_t>(attempt));
      deployed_[i] = std::make_shared<const fugu::TtpModel>(
          fugu::train_ttp(arm.ttp, window, day, arm.train, train_rng, warm));
      metrics_.add(retrains_metric_);
      trained = true;
      break;
    }
    if (!trained) {
      arm_stats.degraded = true;  // tomorrow serves today's model unchanged
      stats.degraded = true;
    }
  }
  if (stats.degraded) {
    metrics_.add(faults_degraded_days_metric_);
  }

  // Keep the in-memory dataset (and therefore the checkpoint) bounded by
  // the widest training window: tomorrow trains at current_day = day + 1.
  telemetry_.prune_before(day + 2 - max_window_days_);

  days_.push_back(std::move(stats));
  metrics_.add(days_run_metric_);
  if (!config_.checkpoint_dir.empty()) {
    save_checkpoint();
    metrics_.add(checkpoint_writes_metric_);
    write_reports();
  }
}

void Campaign::export_trace(obs::TraceWriter& trace) const {
  constexpr double kDayUs = 86400.0 * 1e6;  // virtual day on the sim lane
  trace.process_name(obs::kSimTracePid, "virtual time (sim)");
  trace.thread_name(obs::kSimTracePid, 0, "campaign days");
  for (const DayStats& day : days_) {
    const double start_us = static_cast<double>(day.day) * kDayUs;
    obs::TraceArgs args;
    args.add("scenario", day.scenario);
    args.add("telemetry_streams", static_cast<int64_t>(day.telemetry_streams));
    args.add("telemetry_chunks", static_cast<int64_t>(day.telemetry_chunks));
    trace.complete(obs::kSimTracePid, 0, "campaign.day", start_us, kDayUs,
                   args.str());
    for (const ArmDayStats& arm : day.arms) {
      if (arm.retrain_crashes > 0) {
        // Injected retrain crashes happened during the night's train loop.
        obs::TraceArgs fault_args;
        fault_args.add("family", sim::kFaultRetrainCrash);
        fault_args.add("arm", arm.arm);
        fault_args.add("crashes", arm.retrain_crashes);
        fault_args.add("degraded", static_cast<int64_t>(arm.degraded ? 1 : 0));
        trace.instant(obs::kSimTracePid, 0, "fault", start_us + kDayUs,
                      fault_args.str());
      }
      if (!arm.has_model) {
        continue;
      }
      // The nightly retrain deploys at the end of the day.
      obs::TraceArgs retrain_args;
      retrain_args.add("arm", arm.arm);
      trace.instant(obs::kSimTracePid, 0, "retrain", start_us + kDayUs,
                    retrain_args.str());
    }
  }
}

CampaignResult Campaign::run(const int max_days) {
  const int total = config_.total_days();
  int limit = total;
  if (max_days >= 0) {
    limit = std::min(total, completed_days() + max_days);
  }
  const int already_completed = completed_days();
  while (completed_days() < limit) {
    run_one_day(completed_days());
  }
  if (!config_.checkpoint_dir.empty() && !days_.empty() &&
      completed_days() == already_completed) {
    // Restore-only call (no new day wrote them): a kill between the final
    // checkpoint rename and the report write must not leave the reports
    // permanently one day behind the checkpoint.
    write_reports();
  }
  CampaignResult result;
  result.restored_days = restored_days_;
  result.fresh_start_degraded = fresh_start_degraded_;
  result.days = days_;
  return result;
}

}  // namespace puffer::exp
