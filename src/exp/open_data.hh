#ifndef PUFFER_EXP_OPEN_DATA_HH
#define PUFFER_EXP_OPEN_DATA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/session.hh"

namespace puffer::exp {

/// A `video_sent` measurement datapoint (paper Appendix B): recorded every
/// time the server sends a video chunk to a client.
struct VideoSentRow {
  double time = 0.0;          ///< epoch-style timestamp (simulation seconds)
  int64_t stream_id = 0;      ///< unique stream identifier
  int expt_id = 0;            ///< experimental group (scheme) identifier
  int64_t size = 0;           ///< chunk size in bytes
  double ssim_index = 0.0;    ///< raw SSIM in [0, 1)
  double cwnd = 0.0;          ///< tcpi_snd_cwnd (packets)
  double in_flight = 0.0;     ///< unacked - sacked - lost + retrans
  double min_rtt = 0.0;       ///< tcpi_min_rtt (seconds)
  double rtt = 0.0;           ///< tcpi_rtt, smoothed (seconds)
  double delivery_rate = 0.0; ///< tcpi_delivery_rate (bytes/second)
};

/// A `video_acked` datapoint: one per chunk acknowledgement; matched with
/// video_sent to compute the chunk's transmission time.
struct VideoAckedRow {
  double time = 0.0;
  int64_t stream_id = 0;
  int expt_id = 0;
  int64_t chunk_index = 0;
};

/// A `client_buffer` datapoint: buffer level and cumulative rebuffer time on
/// playback events and periodic reports.
struct ClientBufferRow {
  double time = 0.0;
  int64_t stream_id = 0;
  int expt_id = 0;
  std::string event;        ///< "startup" | "play" | "rebuffer" | "timer"
  double buffer = 0.0;      ///< playback buffer (seconds)
  double cum_rebuf = 0.0;   ///< cumulative rebuffer time in this stream
};

/// Collects the three measurement tables from instrumented streams and
/// writes them in the open-data CSV layout. One writer per export; attach
/// `observer_for(stream_id, expt_id)` to each sim::run_stream call.
class OpenDataWriter {
 public:
  /// A StreamObserver bound to one (stream_id, expt_id); the returned object
  /// borrows this writer and must not outlive it.
  class Recorder final : public sim::StreamObserver {
   public:
    Recorder(OpenDataWriter& writer, int64_t stream_id, int expt_id)
        : writer_(&writer), stream_id_(stream_id), expt_id_(expt_id) {}

    void on_video_sent(double time_s, const abr::ChunkRecord& record,
                       double buffer_s) override;
    void on_video_acked(double time_s, int64_t chunk_index) override;
    void on_client_buffer(double time_s, const char* event, double buffer_s,
                          double cum_rebuffer_s) override;

   private:
    OpenDataWriter* writer_;
    int64_t stream_id_;
    int expt_id_;
  };

  [[nodiscard]] Recorder observer_for(int64_t stream_id, int expt_id) {
    return Recorder{*this, stream_id, expt_id};
  }

  [[nodiscard]] const std::vector<VideoSentRow>& video_sent() const {
    return video_sent_;
  }
  [[nodiscard]] const std::vector<VideoAckedRow>& video_acked() const {
    return video_acked_;
  }
  [[nodiscard]] const std::vector<ClientBufferRow>& client_buffer() const {
    return client_buffer_;
  }

  /// CSV renderings with the Appendix-B field names.
  [[nodiscard]] std::string video_sent_csv() const;
  [[nodiscard]] std::string video_acked_csv() const;
  [[nodiscard]] std::string client_buffer_csv() const;

  /// Write all three tables to `<directory>/<prefix>_{video_sent,
  /// video_acked, client_buffer}.csv`.
  void write_all(const std::string& directory,
                 const std::string& prefix = "puffer") const;

 private:
  std::vector<VideoSentRow> video_sent_;
  std::vector<VideoAckedRow> video_acked_;
  std::vector<ClientBufferRow> client_buffer_;
};

/// Per-stream figures recomputed *from the measurement tables alone* — the
/// analysis a researcher performs on Puffer's public archive: transmission
/// times by matching video_acked to video_sent, stall time from the
/// cum_rebuf counters, quality from the ssim_index of sent chunks.
struct AnalyzedStream {
  int64_t stream_id = 0;
  int expt_id = 0;
  int chunks = 0;
  double watch_time_s = 0.0;      ///< first to last played content
  double stall_time_s = 0.0;      ///< final cum_rebuf
  double startup_delay_s = 0.0;   ///< first send to first startup event
  double ssim_mean_db = 0.0;
  double ssim_variation_db = 0.0; ///< mean |dSSIM| between consecutive chunks
  double mean_tx_time_s = 0.0;
  double mean_throughput_mbps = 0.0;
};

/// Reconstruct per-stream figures from the three measurement tables.
/// Streams appear in ascending stream_id order.
std::vector<AnalyzedStream> analyze_open_data(
    const std::vector<VideoSentRow>& video_sent,
    const std::vector<VideoAckedRow>& video_acked,
    const std::vector<ClientBufferRow>& client_buffer);

}  // namespace puffer::exp

#endif  // PUFFER_EXP_OPEN_DATA_HH
