#include "exp/resilience.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::exp {

double retrain_backoff_s(const ResiliencePolicy& policy, const int attempt) {
  require(attempt >= 1, "retrain_backoff_s: attempt is 1-based");
  const double backoff =
      policy.retrain_backoff_base_s *
      std::pow(policy.retrain_backoff_factor, static_cast<double>(attempt - 1));
  return std::min(backoff, policy.retrain_backoff_max_s);
}

}  // namespace puffer::exp
