#ifndef PUFFER_EXP_TRIAL_HH
#define PUFFER_EXP_TRIAL_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "exp/registry.hh"
#include "fugu/dataset.hh"
#include "net/scenario.hh"
#include "sim/faults.hh"
#include "sim/session.hh"
#include "stats/summary.hh"
#include "util/rng.hh"

namespace puffer::exp {

struct TrialConfig {
  std::vector<std::string> schemes = {"Fugu", "MPC-HM", "RobustMPC-HM",
                                      "Pensieve", "BBA"};
  int sessions_per_scheme = 400;
  /// Which world sessions stream over, resolved through the scenario
  /// registry (net::scenario_registry()). The default is the deployment-like
  /// heavy-tailed world; "fcc-emulation" gives Figure 11's mahimahi-style
  /// contrast, "trace-replay" + trace_path replays a recorded trace.
  net::ScenarioSpec scenario;
  uint64_t seed = 1;
  /// Paired mode: every scheme sees the same sequence of sessions (paths,
  /// users, videos). This is what emulators allow and real RCTs cannot do
  /// (section 5.3) — used for the Figure 11 emulation panel.
  bool paired_paths = false;
  /// Collect per-chunk transfer logs for TTP training.
  bool collect_logs = false;
  int day = 0;  ///< day tag for collected logs
  sim::StreamRunConfig stream;
  double min_watch_time_s = 4.0;  ///< exclusion threshold (Figure A1)
  /// Worker threads for the session loop. 0 means "use all hardware
  /// threads"; 1 forces the serial path. Any value yields bit-identical
  /// TrialResult contents: sessions are independent given their plan
  /// (each derives from master.split(session_index) and every scheme fully
  /// resets per session), and partial results are merged in session-index
  /// order.
  int num_threads = 0;
  /// Fault-injection plan (disabled by default — the zero-fault contract:
  /// a disabled plan leaves every result byte identical to pre-fault
  /// builds). Draws are keyed on per-session run seeds, so they are
  /// invariant to thread and shard count.
  sim::FaultPlan faults;
};

/// Figure A1-style accounting.
struct ConsortCounts {
  int64_t sessions = 0;
  int64_t streams = 0;
  int64_t never_began = 0;
  int64_t under_min_watch = 0;
  int64_t decoder_failure = 0;
  int64_t truncated = 0;  ///< loss of contact (still considered)
  int64_t considered = 0;
};

struct SchemeResult {
  std::string scheme;
  std::vector<stats::StreamFigures> considered;
  std::vector<double> session_durations_s;  ///< total time on player, per session
  ConsortCounts consort;
  fugu::TtpDataset logs;  ///< non-empty when collect_logs

  /// Subset of considered streams on slow paths (mean delivery rate below
  /// `threshold_mbps`, Figure 8 right panel).
  [[nodiscard]] std::vector<stats::StreamFigures> slow_paths(
      double threshold_mbps = 6.0) const;
};

struct TrialResult {
  std::vector<SchemeResult> schemes;

  [[nodiscard]] const SchemeResult& result_for(const std::string& name) const;
};

/// Run a randomized controlled trial: sessions are blindly assigned to
/// schemes, streamed over sampled paths with sampled viewer behaviour, and
/// accounted per Figure A1.
TrialResult run_trial(const TrialConfig& config,
                      const SchemeArtifacts& artifacts);

/// Same, with a custom scheme factory (for experiment arms outside the
/// standard registry, e.g. stale-TTP Fugu variants in the staleness study).
using SchemeFactory =
    std::function<std::unique_ptr<abr::AbrAlgorithm>(const std::string&)>;
TrialResult run_trial(const TrialConfig& config, const SchemeFactory& factory);

namespace detail {

/// Internal plumbing shared between the serial path, ParallelTrialRunner
/// and the fleet trial runner.

/// Number of session plans the trial draws (paired mode replays each plan
/// for every scheme; RCT mode assigns each plan to exactly one scheme).
[[nodiscard]] int64_t num_session_plans(const TrialConfig& config);

/// Fresh per-scheme accumulators in config.schemes order.
[[nodiscard]] std::vector<SchemeResult> empty_scheme_results(
    const TrialConfig& config);

/// One algorithm instance per scheme, in config.schemes order; throws if the
/// factory returns null. Both the serial path and each parallel worker build
/// their scheme set through this.
[[nodiscard]] std::vector<std::unique_ptr<abr::AbrAlgorithm>> make_algorithms(
    const TrialConfig& config, const SchemeFactory& factory);

/// Run session plans [begin, end), appending into `results` (one entry per
/// scheme, config.schemes order). Pure function of (config, paths, master,
/// users, begin, end) provided every algorithm honours reset_session(): the
/// serial path is one call over [0, N) and the parallel runner stitches
/// together consecutive ranges. `paths` is the generator resolved from
/// config.scenario — built once per trial and shared across workers
/// (PathGenerator implementations are stateless).
void run_session_range(
    const TrialConfig& config, const net::PathGenerator& paths,
    const Rng& master, const sim::UserModel& users,
    std::span<const std::unique_ptr<abr::AbrAlgorithm>> algorithms,
    int64_t begin, int64_t end, std::vector<SchemeResult>& results);

/// Merge one partial per-scheme accumulator into `into`, preserving the
/// order of `from`'s entries. Partial-result runners (parallel chunks,
/// fleet sessions) merge in ascending session order so the combined result
/// is bit-identical to the serial loop.
void append_scheme_result(SchemeResult& into, SchemeResult& from);

}  // namespace detail

}  // namespace puffer::exp

#endif  // PUFFER_EXP_TRIAL_HH
