#include "exp/contention.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "abr/mpc_abr.hh"
#include "fugu/batch_ttp.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/cubic.hh"
#include "util/require.hh"

namespace puffer::exp {

namespace {

/// Boundary tolerance for the world clock: dt is clipped to the next
/// arrival/wake boundary, so W lands on boundaries only up to one rounding
/// error; treating anything this close as "due" keeps the loop from taking
/// denormal-sized steps. Deterministic — purely a function of the FP values.
constexpr double kBoundaryEpsS = 1e-9;

/// Same preamble the private-path sessions send (sim::send_preamble).
constexpr double kPreambleBytes = 192.0 * 1024.0;

std::unique_ptr<net::CongestionControl> make_cc(const bool use_cubic) {
  if (use_cubic) {
    return std::make_unique<net::CubicModel>();
  }
  return std::make_unique<net::BbrModel>();
}

net::ThroughputTrace scale_trace(const net::ThroughputTrace& trace,
                                 const double scale) {
  std::vector<double> rates = trace.rates();
  for (double& r : rates) {
    r *= scale;
  }
  return net::ThroughputTrace{std::move(rates), trace.segment_duration()};
}

}  // namespace

ContentionSpec make_contention_spec(const std::string& topology,
                                    const int group_size) {
  ContentionSpec spec;
  spec.group_size = group_size;
  spec.topology = topology;
  if (topology == "edge") {
    // CDN edge uplink: big FIFO, mild oversubscription, BBR everywhere.
    spec.fair_queue = false;
    spec.capacity_scale = 0.7;
    spec.queue_bdp = 2.0;
    spec.cc = "bbr";
  } else if (topology == "tower") {
    // Cell tower: heavier oversubscription, deeper buffer, mixed CC — the
    // regime where FIFO crowd-out between CUBIC and BBR shows up.
    spec.fair_queue = false;
    spec.capacity_scale = 0.55;
    spec.queue_bdp = 3.0;
    spec.cc = "mixed";
  } else if (topology == "wifi") {
    // Home AP with per-flow fair queuing (fq_codel-style scheduling).
    spec.fair_queue = true;
    spec.capacity_scale = 0.8;
    spec.queue_bdp = 1.5;
    spec.cc = "bbr";
  } else {
    require(false, "make_contention_spec: unknown topology '" + topology +
                       "' (want edge|tower|wifi)");
  }
  return spec;
}

ContentionGroupTask::ContentionGroupTask(std::vector<Member> members,
                                         const ContentionSpec& spec,
                                         net::NetworkPath shared_sample,
                                         const TrialConfig& config)
    : spec_(spec),
      config_(config),
      shared_trace_(scale_trace(
          shared_sample.trace,
          spec.capacity_scale * static_cast<double>(members.size()))) {
  require(!members.empty(), "ContentionGroupTask: empty group");
  require(spec.cc == "bbr" || spec.cc == "cubic" || spec.cc == "mixed",
          "ContentionGroupTask: cc must be bbr|cubic|mixed");

  // Shared drop-tail buffer: queue_bdp bandwidth-delay products at the
  // scaled mean rate and the group's mean propagation RTT.
  double mean_rtt_s = 0.0;
  for (const Member& m : members) {
    require(m.plan != nullptr && m.plan->path.has_value(),
            "ContentionGroupTask: member without a path");
    require(m.result != nullptr, "ContentionGroupTask: member without result");
    mean_rtt_s += m.plan->path->min_rtt_s;
  }
  mean_rtt_s /= static_cast<double>(members.size());
  net::SharedLinkConfig link_config;
  link_config.mode = spec.fair_queue ? net::ShareMode::kFairQueue
                                     : net::ShareMode::kFifo;
  link_config.queue_capacity_bytes = std::max(
      spec.queue_bdp * shared_trace_.mean_rate() * mean_rtt_s, 64.0 * 1024.0);
  link_.emplace(shared_trace_, link_config);

  states_.reserve(members.size());
  double prev_offset = 0.0;
  for (Member& m : members) {
    require(m.arrival_offset_s >= prev_offset,
            "ContentionGroupTask: member offsets must ascend");
    prev_offset = m.arrival_offset_s;
    MemberState s;
    s.m = std::move(m);
    s.flow = link_->add_flow();
    if (auto* mpc = dynamic_cast<abr::MpcAbr*>(s.m.algo.get())) {
      if (auto* batched =
              dynamic_cast<fugu::BatchTtpPredictor*>(&mpc->predictor())) {
        s.batch_predictor = batched;
        s.mpc_horizon = mpc->controller().config().horizon;
      }
    }
    states_.push_back(std::move(s));
  }
  offered_.assign(states_.size(), 0.0);
  results_.assign(states_.size(), net::LinkStepResult{});
}

ContentionGroupTask::Step ContentionGroupTask::prepare() {
  for (;;) {
    for (size_t i = 0; i < states_.size(); i++) {
      if (states_[i].phase == Phase::kAtDecision) {
        current_ = i;
        return Step::kDecision;
      }
    }
    if (!advance_world()) {
      return Step::kDone;
    }
  }
}

bool ContentionGroupTask::stage(fugu::TtpInferenceBatch& batch) {
  MemberState& s = states_[current_];
  require(s.phase == Phase::kAtDecision, "ContentionGroupTask: no decision");
  if (s.batch_predictor == nullptr) {
    return false;
  }
  s.batch_predictor->stage(s.stream->observation(), s.stream->lookahead(),
                           s.mpc_horizon, batch);
  return true;
}

void ContentionGroupTask::finish_chunk() {
  MemberState& s = states_[current_];
  require(s.phase == Phase::kAtDecision, "ContentionGroupTask: no decision");
  const double bytes = s.stream->begin_chunk();
  s.sender->start_transfer(bytes);
  s.phase = Phase::kChunk;
  if (!s.sender->transfer_in_flight()) {
    // Pre-satisfied by the fluid slack — same immediate-completion path the
    // private sender takes.
    on_transfer_done(s);
  }
}

void ContentionGroupTask::arrive(MemberState& s) {
  s.m.result->consort.sessions++;
  if (s.m.plan->session.incompatible_or_bounce) {
    // Page loaded but video never played (incompatible browser / bounce).
    s.m.result->consort.streams++;
    s.m.result->consort.never_began++;
    s.phase = Phase::kDone;
    s.end_w = world_s_;
    return;
  }
  s.run_rng = Rng{s.m.plan->run_seed};
  s.m.algo->reset_session();
  s.sender.emplace(s.m.plan->path->min_rtt_s, make_cc(s.m.use_cubic));
  s.sender->start_transfer(kPreambleBytes);
  s.phase = Phase::kPreamble;
}

void ContentionGroupTask::advance_stream(MemberState& s) {
  const SessionPlan& plan = *s.m.plan;
  for (;;) {
    if (s.stream_index >= plan.session.num_streams) {
      if (s.any_considered) {
        s.m.result->session_durations_s.push_back(s.session_duration_s);
      }
      s.phase = Phase::kDone;
      s.end_w = world_s_;
      return;
    }
    if (!s.stream) {
      s.video.emplace(
          media::default_channels()[static_cast<size_t>(
              plan.channels[static_cast<size_t>(s.stream_index)])],
          plan.video_seeds[static_cast<size_t>(s.stream_index)]);
      s.stream.emplace(
          *s.sender, *s.m.algo, *s.video, /*first_chunk=*/0,
          plan.stream_behaviors[static_cast<size_t>(s.stream_index)],
          s.run_rng, config_.stream, nullptr);
    }
    double wait_s = 0.0;
    switch (s.stream->prepare_chunk_async(wait_s)) {
      case sim::StreamSession::PrepareStep::kDecision:
        s.phase = Phase::kAtDecision;
        return;
      case sim::StreamSession::PrepareStep::kWait:
        s.wake_at_w = world_s_ + wait_s;
        s.phase = Phase::kIdleWait;
        return;
      case sim::StreamSession::PrepareStep::kDone:
        finish_member_stream(s);
        break;  // next stream (or session end) on the next loop pass
    }
  }
}

void ContentionGroupTask::finish_member_stream(MemberState& s) {
  const sim::StreamOutcome outcome = s.stream->take_outcome();
  detail::fold_stream_outcome(outcome, s.run_rng, config_, *s.m.result,
                              s.session_duration_s, s.any_considered);
  s.stream.reset();
  s.video.reset();
  s.stream_index++;
}

void ContentionGroupTask::on_transfer_done(MemberState& s) {
  const net::TransferResult transfer = s.sender->take_completion();
  if (s.phase == Phase::kChunk) {
    s.stream->complete_chunk(transfer);
  }
  // Preamble done, or chunk accounted: park at the next decision point.
  advance_stream(s);
}

bool ContentionGroupTask::advance_world() {
  // Phase 1: process everything due *now* (arrivals, wake-ups), in member
  // order; if anything fired, let prepare() re-scan for parked decisions.
  bool activity = false;
  for (MemberState& s : states_) {
    if (s.phase == Phase::kUnarrived &&
        s.m.arrival_offset_s <= world_s_ + kBoundaryEpsS) {
      arrive(s);
      if (s.phase == Phase::kPreamble && !s.sender->transfer_in_flight()) {
        on_transfer_done(s);
      }
      activity = true;
    } else if (s.phase == Phase::kIdleWait &&
               s.wake_at_w <= world_s_ + kBoundaryEpsS) {
      switch (s.stream->finish_wait()) {
        case sim::StreamSession::PrepareStep::kDecision:
          s.phase = Phase::kAtDecision;
          break;
        case sim::StreamSession::PrepareStep::kDone:
          finish_member_stream(s);
          advance_stream(s);
          break;
        case sim::StreamSession::PrepareStep::kWait:
          require(false, "ContentionGroupTask: finish_wait returned kWait");
      }
      activity = true;
    }
  }
  if (activity) {
    return true;
  }
  bool any_live = false;
  for (const MemberState& s : states_) {
    if (s.phase != Phase::kDone) {
      any_live = true;
    }
  }
  if (!any_live) {
    return false;
  }

  // Phase 2: pick the lockstep dt — the finest transferring connection's
  // preferred step, clipped to the next arrival/wake boundary; with no
  // transfer in flight, idle toward the boundary in <= 100 ms hops (the
  // private path's idle_until cadence).
  double boundary = std::numeric_limits<double>::infinity();
  double dt = std::numeric_limits<double>::infinity();
  bool any_transfer = false;
  for (const MemberState& s : states_) {
    if (s.phase == Phase::kUnarrived) {
      boundary = std::min(boundary, s.m.arrival_offset_s);
    } else if (s.phase == Phase::kIdleWait) {
      boundary = std::min(boundary, s.wake_at_w);
    }
    if (s.phase == Phase::kPreamble || s.phase == Phase::kChunk) {
      any_transfer = true;
      dt = std::min(dt, s.sender->preferred_dt());
    }
  }
  if (!any_transfer) {
    require(boundary < std::numeric_limits<double>::infinity(),
            "ContentionGroupTask: live members but nothing to wait for");
    dt = 0.1;
  }
  if (boundary < std::numeric_limits<double>::infinity()) {
    dt = std::min(dt, boundary - world_s_);
  }
  require(dt > 0.0, "ContentionGroupTask: non-positive world step");

  // Phase 3: lockstep fluid step — every open connection offers bytes, the
  // shared link splits the capacity, every connection absorbs its share.
  // Ascending member order throughout (the conservation/determinism
  // contract); members without a connection yet (or already done) offer 0,
  // and a done member's residual queue keeps draining.
  std::fill(offered_.begin(), offered_.end(), 0.0);
  for (MemberState& s : states_) {
    if (s.sender.has_value() && s.phase != Phase::kDone) {
      offered_[static_cast<size_t>(s.flow)] = s.sender->offered_step(dt);
    }
  }
  link_->step(world_s_, dt, offered_, results_);
  for (MemberState& s : states_) {
    if (s.sender.has_value() && s.phase != Phase::kDone) {
      s.sender->absorb_step(dt, results_[static_cast<size_t>(s.flow)]);
    }
  }
  world_s_ += dt;

  // Phase 4: collect transfer completions, in member order.
  for (MemberState& s : states_) {
    if ((s.phase == Phase::kPreamble || s.phase == Phase::kChunk) &&
        !s.sender->transfer_in_flight()) {
      on_transfer_done(s);
    }
  }
  return true;
}

void ContentionGroupTask::record_load(stats::LoadSeries& load,
                                      const double arrival_s,
                                      const double /*end_s*/) const {
  for (const MemberState& s : states_) {
    load.add(arrival_s + s.m.arrival_offset_s, +1);
    load.add(arrival_s + s.end_w, -1);
  }
}

std::unique_ptr<abr::AbrAlgorithm> ContentionGroupTask::take_algorithm(
    const size_t i) {
  return std::move(states_[i].m.algo);
}

double ContentionGroupTask::fairness_index() const {
  std::vector<double> delivered;
  delivered.reserve(states_.size());
  for (const MemberState& s : states_) {
    if (s.sender.has_value()) {
      delivered.push_back(link_->delivered_total(s.flow));
    }
  }
  if (delivered.size() < 2) {
    return 1.0;
  }
  return net::jain_fairness_index(delivered);
}

double ContentionGroupTask::shared_delivered_bytes() const {
  double total = 0.0;
  for (int flow = 0; flow < link_->num_flows(); flow++) {
    total += link_->delivered_total(flow);
  }
  return total;
}

double ContentionGroupTask::shared_offered_bytes() const {
  double total = 0.0;
  for (int flow = 0; flow < link_->num_flows(); flow++) {
    total += link_->offered_total(flow);
  }
  return total;
}

double ContentionGroupTask::shared_lost_bytes() const {
  double total = 0.0;
  for (int flow = 0; flow < link_->num_flows(); flow++) {
    total += link_->lost_total(flow);
  }
  return total;
}

}  // namespace puffer::exp
