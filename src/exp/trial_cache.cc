#include "exp/trial_cache.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/models.hh"
#include "util/binary_io.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::exp {

namespace {

constexpr uint32_t kTrialMagic = 0x5054524c;  // "PTRL"
constexpr std::string_view kIoContext = "trial cache";

uint64_t read_u64(std::istream& in) {
  return puffer::read_u64(in, kIoContext);
}

double read_f64(std::istream& in) {
  return puffer::read_f64(in, kIoContext);
}

void write_string(std::ostream& out, const std::string& s) {
  puffer::write_string(out, s);
}

std::string read_string(std::istream& in) {
  return puffer::read_string(in, kIoContext, (1u << 20) - 1);
}

void write_figures(std::ostream& out, const stats::StreamFigures& f) {
  write_f64(out, f.watch_time_s);
  write_f64(out, f.stall_time_s);
  write_f64(out, f.startup_delay_s);
  write_f64(out, f.ssim_mean_db);
  write_f64(out, f.ssim_variation_db);
  write_f64(out, f.first_chunk_ssim_db);
  write_f64(out, f.mean_bitrate_mbps);
  write_f64(out, f.mean_delivery_rate_mbps);
}

stats::StreamFigures read_figures(std::istream& in) {
  stats::StreamFigures f;
  f.watch_time_s = read_f64(in);
  f.stall_time_s = read_f64(in);
  f.startup_delay_s = read_f64(in);
  f.ssim_mean_db = read_f64(in);
  f.ssim_variation_db = read_f64(in);
  f.first_chunk_ssim_db = read_f64(in);
  f.mean_bitrate_mbps = read_f64(in);
  f.mean_delivery_rate_mbps = read_f64(in);
  return f;
}

/// For file-driven scenarios the cache must key on what the trace file
/// *contains*, not just its path: regenerating a trace in place must miss.
uint64_t scenario_fingerprint(const net::ScenarioSpec& scenario) {
  uint64_t fingerprint = stable_hash(scenario.key());
  if (!scenario.trace_path.empty()) {
    std::ifstream in{scenario.trace_path, std::ios::binary};
    std::ostringstream contents;
    contents << in.rdbuf();
    fingerprint = mix64(fingerprint ^ stable_hash(contents.str()));
  }
  return fingerprint;
}

uint64_t config_fingerprint(const TrialConfig& config) {
  std::ostringstream key;
  for (const auto& scheme : config.schemes) {
    key << scheme << '|';
  }
  key << config.sessions_per_scheme << '|'
      << scenario_fingerprint(config.scenario) << '|' << config.seed << '|'
      << config.paired_paths << '|' << config.min_watch_time_s << '|'
      << config.stream.max_buffer_s << '|' << config.stream.lookahead_chunks
      << '|' << config.stream.player_init_delay_s << '|'
      << config.stream.max_stream_chunks;
  // The fault plane joins the key only when enabled: pre-existing zero-fault
  // cache entries keep their filenames, and a faulted run can never be
  // served a fault-free result (or vice versa).
  if (config.faults.enabled) {
    key << '|' << config.faults.fingerprint_key();
  }
  return stable_hash(key.str());
}

}  // namespace

void save_trial(const TrialResult& trial, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_trial: cannot open " + path);
  write_u64(out, kTrialMagic);
  write_u64(out, trial.schemes.size());
  for (const auto& scheme : trial.schemes) {
    write_string(out, scheme.scheme);
    write_u64(out, scheme.considered.size());
    for (const auto& figures : scheme.considered) {
      write_figures(out, figures);
    }
    write_u64(out, scheme.session_durations_s.size());
    for (const double d : scheme.session_durations_s) {
      write_f64(out, d);
    }
    const auto& c = scheme.consort;
    write_u64(out, static_cast<uint64_t>(c.sessions));
    write_u64(out, static_cast<uint64_t>(c.streams));
    write_u64(out, static_cast<uint64_t>(c.never_began));
    write_u64(out, static_cast<uint64_t>(c.under_min_watch));
    write_u64(out, static_cast<uint64_t>(c.decoder_failure));
    write_u64(out, static_cast<uint64_t>(c.truncated));
    write_u64(out, static_cast<uint64_t>(c.considered));
  }
}

std::optional<TrialResult> try_load_trial(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return std::nullopt;
  }
  // A cache entry is disposable, so every flavour of corruption (bad magic,
  // truncation, garbled counts) is a miss, never an error: the caller
  // recomputes. Contrast with the campaign checkpoint, where corruption
  // throws because the data cannot be regenerated cheaply.
  try {
    if (read_u64(in) != kTrialMagic) {
      return std::nullopt;
    }
    constexpr uint64_t kMaxPlausible = 1u << 24;
    TrialResult trial;
    const uint64_t num_schemes = read_u64(in);
    if (num_schemes > kMaxPlausible) {
      return std::nullopt;
    }
    for (uint64_t s = 0; s < num_schemes; s++) {
      SchemeResult result;
      result.scheme = read_string(in);
      const uint64_t num_figures = read_u64(in);
      if (num_figures > kMaxPlausible) {
        return std::nullopt;
      }
      result.considered.reserve(num_figures);
      for (uint64_t i = 0; i < num_figures; i++) {
        result.considered.push_back(read_figures(in));
      }
      const uint64_t num_durations = read_u64(in);
      if (num_durations > kMaxPlausible) {
        return std::nullopt;
      }
      result.session_durations_s.reserve(num_durations);
      for (uint64_t i = 0; i < num_durations; i++) {
        result.session_durations_s.push_back(read_f64(in));
      }
      auto& c = result.consort;
      c.sessions = static_cast<int64_t>(read_u64(in));
      c.streams = static_cast<int64_t>(read_u64(in));
      c.never_began = static_cast<int64_t>(read_u64(in));
      c.under_min_watch = static_cast<int64_t>(read_u64(in));
      c.decoder_failure = static_cast<int64_t>(read_u64(in));
      c.truncated = static_cast<int64_t>(read_u64(in));
      c.considered = static_cast<int64_t>(read_u64(in));
      trial.schemes.push_back(std::move(result));
    }
    return trial;
  } catch (const RequirementError&) {
    return std::nullopt;  // truncated or garbled entry
  }
}

TrialResult run_trial_cached(const TrialConfig& config,
                             const SchemeArtifacts& artifacts,
                             const std::string& label) {
  const std::string path = model_cache_dir() + "/trial_" + label + "_" +
                           std::to_string(config_fingerprint(config)) + ".bin";
  if (auto cached = try_load_trial(path)) {
    return std::move(*cached);
  }
  // Either no entry or a corrupt one: evict it so a failing save below
  // cannot leave stale bytes behind, then recompute and re-save.
  std::remove(path.c_str());
  TrialResult trial = run_trial(config, artifacts);
  save_trial(trial, path);
  return trial;
}

}  // namespace puffer::exp
