#include "exp/parallel_trial.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iterator>
#include <memory>
#include <utility>

#include "util/require.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"
#include "util/thread_pool.hh"

namespace puffer::exp {

namespace {

/// Sessions per scheduling chunk: small enough that heavy-tailed session
/// costs balance across workers (several chunks per worker), large enough
/// that chunk bookkeeping is negligible next to ~100 ms of simulation per
/// session.
int64_t chunk_size_for(const int64_t total_sessions, const int num_threads) {
  const int64_t target_chunks = 8 * static_cast<int64_t>(num_threads);
  return std::clamp<int64_t>(total_sessions / target_chunks, 1, 64);
}

/// The only state a trial's workers share (besides the read-only config/
/// generator and their disjoint result slots). Campaign day trials and the
/// fleet engine's scheme pools all funnel through this dispatcher, so its
/// members carry the thread-safety protocol explicitly.
struct ChunkDispatch {
  /// Work-stealing cursor. The fetch_add order decides only WHICH worker
  /// simulates a chunk, never the result: chunk c always covers sessions
  /// [c*size, (c+1)*size) and lands in partials[c], merged in index order.
  std::atomic<int64_t> next_chunk ATOMIC_SAFE(
      "claim order affects scheduling only; results are slot-addressed") =
      0;
  /// Advisory early-out after a failure; workers may race past it and
  /// finish their chunk, which is harmless (results are discarded on
  /// rethrow).
  std::atomic<bool> failed ATOMIC_SAFE("advisory cancellation flag") = false;
  Mutex error_mutex GUARDS(first_error);
  std::exception_ptr first_error GUARDED_BY(error_mutex);
};

}  // namespace

ParallelTrialRunner::ParallelTrialRunner(const int num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {}

int ParallelTrialRunner::resolve_num_threads(const int requested) {
  return requested <= 0 ? ThreadPool::hardware_threads() : requested;
}

TrialResult ParallelTrialRunner::run(const TrialConfig& config,
                                     const SchemeArtifacts& artifacts) const {
  return run(config, [&artifacts](const std::string& name) {
    return make_scheme(name, artifacts);
  });
}

TrialResult ParallelTrialRunner::run(const TrialConfig& config,
                                     const SchemeFactory& factory) const {
  require(!config.schemes.empty(),
          "ParallelTrialRunner: need at least one scheme");

  const int64_t total = detail::num_session_plans(config);
  const int workers = static_cast<int>(std::clamp<int64_t>(
      num_threads_, 1, std::max<int64_t>(total, 1)));

  // Per-worker algorithm instances: schemes are stateful within a session,
  // so concurrent workers must never share one. Constructed here, serially,
  // so custom factories need no locking.
  std::vector<std::vector<std::unique_ptr<abr::AbrAlgorithm>>> worker_algos;
  worker_algos.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; w++) {
    worker_algos.push_back(detail::make_algorithms(config, factory));
  }

  // One generator for the whole trial, shared read-only by every worker
  // (PathGenerator implementations are stateless; randomness comes from the
  // per-session Rng). Trace-backed scenarios thus load their file once.
  const std::unique_ptr<net::PathGenerator> paths =
      net::make_path_generator(config.scenario);
  const sim::UserModel users{config.seed};
  const Rng master{config.seed};

  const int64_t chunk_size = chunk_size_for(total, workers);
  const int64_t num_chunks = (total + chunk_size - 1) / chunk_size;

  // One partial result set per chunk, merged in chunk order below so the
  // output ordering matches the serial session-index order exactly.
  std::vector<std::vector<SchemeResult>> partials(
      static_cast<size_t>(num_chunks));
  ChunkDispatch dispatch;

  {
    ThreadPool pool{workers};
    for (int w = 0; w < workers; w++) {
      pool.submit([&, w] {
        try {
          for (;;) {
            const int64_t c = dispatch.next_chunk.fetch_add(1);
            if (c >= num_chunks || dispatch.failed.load()) {
              return;
            }
            const int64_t begin = c * chunk_size;
            const int64_t end = std::min(total, begin + chunk_size);
            auto& partial = partials[static_cast<size_t>(c)];
            partial = detail::empty_scheme_results(config);
            detail::run_session_range(config, *paths, master, users,
                                      worker_algos[static_cast<size_t>(w)],
                                      begin, end, partial);
          }
        } catch (...) {
          const MutexLock lock{dispatch.error_mutex};
          if (!dispatch.first_error) {
            dispatch.first_error = std::current_exception();
          }
          dispatch.failed.store(true);
        }
      });
    }
    pool.wait();
  }
  {
    const MutexLock lock{dispatch.error_mutex};
    if (dispatch.first_error) {
      std::rethrow_exception(dispatch.first_error);
    }
  }

  TrialResult trial;
  trial.schemes = detail::empty_scheme_results(config);
  for (auto& partial : partials) {
    for (size_t a = 0; a < trial.schemes.size(); a++) {
      detail::append_scheme_result(trial.schemes[a], partial[a]);
    }
  }
  return trial;
}

}  // namespace puffer::exp
