#include "exp/models.hh"

#include <cstdlib>
#include <filesystem>

#include "abr/pensieve_trainer.hh"
#include "exp/insitu.hh"
#include "nn/serialize.hh"

namespace puffer::exp {

namespace {

// Training budgets for cached artifacts: small enough to train in about a
// minute each, large enough for stable behaviour. Deterministic in the seed.
constexpr int kTtpDays = 4;
constexpr int kTtpSessionsPerDay = 160;

}  // namespace

std::string model_cache_dir() {
  // DETLINT-OK(nondet-source): cache-location knob only — the artifacts in
  // the directory are seed-addressed, so the path never affects results
  const char* env = std::getenv("PUFFER_CACHE_DIR");
  const std::string dir = env != nullptr ? env : ".puffer_model_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

std::shared_ptr<const fugu::TtpModel> get_insitu_ttp(const uint64_t seed) {
  const fugu::TtpConfig config;
  const std::string path =
      model_cache_dir() + "/ttp_insitu_v3_" + std::to_string(seed) + ".bin";
  if (auto cached = try_load_ttp(config, path)) {
    return std::make_shared<const fugu::TtpModel>(std::move(*cached));
  }
  fugu::TtpTrainConfig train_config;
  train_config.epochs = 8;
  train_config.max_examples_per_step = 60000;
  fugu::TtpModel model = train_ttp_on_scenario(
      net::ScenarioSpec{"puffer"}, config, train_config, kTtpDays,
      kTtpSessionsPerDay, seed);
  save_ttp(model, path);
  return std::make_shared<const fugu::TtpModel>(std::move(model));
}

std::shared_ptr<const fugu::TtpModel> get_emulation_ttp(const uint64_t seed) {
  const fugu::TtpConfig config;
  const std::string path =
      model_cache_dir() + "/ttp_emulation_v3_" + std::to_string(seed) + ".bin";
  if (auto cached = try_load_ttp(config, path)) {
    return std::make_shared<const fugu::TtpModel>(std::move(*cached));
  }
  fugu::TtpTrainConfig train_config;
  train_config.epochs = 8;
  train_config.max_examples_per_step = 60000;
  fugu::TtpModel model = train_ttp_on_scenario(
      net::ScenarioSpec{"fcc-emulation"}, config, train_config,
      kTtpDays, kTtpSessionsPerDay, seed);
  save_ttp(model, path);
  return std::make_shared<const fugu::TtpModel>(std::move(model));
}

std::shared_ptr<const nn::Mlp> get_pensieve_actor(const uint64_t seed) {
  const std::string path =
      model_cache_dir() + "/pensieve_actor_" + std::to_string(seed) + ".bin";
  if (std::filesystem::exists(path)) {
    return std::make_shared<const nn::Mlp>(nn::load_mlp_file(path));
  }
  nn::Mlp actor = abr::train_pensieve(abr::PensieveTrainConfig{}, seed);
  nn::save_mlp_file(actor, path);
  return std::make_shared<const nn::Mlp>(std::move(actor));
}

SchemeArtifacts default_artifacts(const uint64_t seed) {
  SchemeArtifacts artifacts;
  artifacts.ttp_insitu = get_insitu_ttp(seed);
  artifacts.ttp_emulation = get_emulation_ttp(seed);
  artifacts.pensieve_actor = get_pensieve_actor(seed);
  return artifacts;
}

fugu::TtpDataset get_insitu_dataset(const uint64_t seed) {
  const std::string path =
      model_cache_dir() + "/dataset_insitu_" + std::to_string(seed) + ".bin";
  if (auto cached = try_load_dataset(path)) {
    return std::move(*cached);
  }
  fugu::TtpDataset dataset;
  for (int day = 0; day < 2; day++) {
    fugu::TtpDataset daily = collect_telemetry(
        net::ScenarioSpec{"puffer"}, 120, day, seed + 1000);
    for (auto& stream : daily) {
      dataset.push_back(std::move(stream));
    }
  }
  save_dataset(dataset, path);
  return dataset;
}

}  // namespace puffer::exp
