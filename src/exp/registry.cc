#include "exp/registry.hh"

#include "abr/bba.hh"
#include "abr/mpc_abr.hh"
#include "abr/pensieve.hh"
#include "abr/throughput_predictors.hh"
#include "fugu/fugu.hh"
#include "fugu/resilient.hh"
#include "util/require.hh"

namespace puffer::exp {

const std::vector<SchemeInfo>& scheme_table() {
  static const std::vector<SchemeInfo> table = {
      {"BBA", "classical (prop. control)", "n/a",
       "+SSIM s.t. bitrate < limit", "n/a"},
      {"MPC-HM", "classical (MPC)", "classical (HM)",
       "+SSIM, -stalls, -dSSIM", "n/a"},
      {"RobustMPC-HM", "classical (robust MPC)", "classical (HM)",
       "+SSIM, -stalls, -dSSIM", "n/a"},
      {"Pensieve", "learned (DNN)", "n/a",
       "+bitrate, -stalls, -dbitrate", "reinforcement learning in simulation"},
      {"Emulation-trained Fugu", "classical (MPC)", "learned (DNN)",
       "+SSIM, -stalls, -dSSIM", "supervised learning in emulation"},
      {"Fugu", "classical (MPC)", "learned (DNN)",
       "+SSIM, -stalls, -dSSIM", "supervised learning in situ"},
  };
  return table;
}

std::unique_ptr<abr::AbrAlgorithm> make_scheme(const std::string& name,
                                               const SchemeArtifacts& artifacts) {
  if (name == "BBA") {
    return std::make_unique<abr::Bba>();
  }
  if (name == "MPC-HM") {
    return std::make_unique<abr::MpcAbr>(
        name, std::make_unique<abr::HarmonicMeanPredictor>());
  }
  if (name == "RobustMPC-HM") {
    return std::make_unique<abr::MpcAbr>(
        name, std::make_unique<abr::RobustThroughputPredictor>());
  }
  if (name == "Pensieve") {
    require(artifacts.pensieve_actor != nullptr,
            "make_scheme: Pensieve requires a trained actor");
    return std::make_unique<abr::PensieveAbr>(*artifacts.pensieve_actor, name);
  }
  // Fugu variants: with an enabled fault plan on the artifacts, the TTP is
  // wrapped in a ResilientPredictor (make_resilient_fugu degenerates to the
  // byte-identical plain assembly when the plan is null or disabled).
  const auto fugu_faults = [&artifacts]() -> sim::FaultPlan {
    return artifacts.faults != nullptr ? *artifacts.faults : sim::FaultPlan{};
  };
  if (name == "Fugu") {
    require(artifacts.ttp_insitu != nullptr,
            "make_scheme: Fugu requires an in-situ TTP");
    return fugu::make_resilient_fugu(artifacts.ttp_insitu, fugu_faults(),
                                     artifacts.resilience, name);
  }
  if (name == "Emulation-trained Fugu") {
    require(artifacts.ttp_emulation != nullptr,
            "make_scheme: needs an emulation-trained TTP");
    return fugu::make_resilient_fugu(artifacts.ttp_emulation, fugu_faults(),
                                     artifacts.resilience, name);
  }
  if (name == "Fugu-point-estimate") {
    require(artifacts.ttp_insitu != nullptr,
            "make_scheme: point-estimate Fugu requires an in-situ TTP");
    return fugu::make_resilient_fugu(artifacts.ttp_insitu, fugu_faults(),
                                     artifacts.resilience, name,
                                     /*point_estimate=*/true);
  }
  require(false, "make_scheme: unknown scheme '" + name + "'");
  return nullptr;  // unreachable
}

}  // namespace puffer::exp
