#ifndef PUFFER_EXP_PARALLEL_TRIAL_HH
#define PUFFER_EXP_PARALLEL_TRIAL_HH

#include "exp/trial.hh"

namespace puffer::exp {

/// Runs the trial session loop on a worker pool. The loop is embarrassingly
/// parallel — every session plan derives from master.split(session_index)
/// and every scheme fully resets per session — so sessions are sharded into
/// small contiguous chunks, each chunk accumulates into its own per-scheme
/// partials (simulated by whichever worker grabs it, on that worker's own
/// algorithm instances), and the partials are merged in ascending chunk
/// order. The merged TrialResult is therefore bit-identical to the serial
/// run_trial for any thread count.
class ParallelTrialRunner {
 public:
  /// `num_threads` <= 0 means "use all hardware threads".
  explicit ParallelTrialRunner(int num_threads = 0);

  /// Run the trial with the standard scheme registry.
  [[nodiscard]] TrialResult run(const TrialConfig& config,
                                const SchemeArtifacts& artifacts) const;

  /// Run the trial with a custom scheme factory. The factory itself is only
  /// invoked from the calling thread (once per worker per scheme), so it
  /// needs no internal synchronization; the algorithms it returns are each
  /// driven by a single worker.
  [[nodiscard]] TrialResult run(const TrialConfig& config,
                                const SchemeFactory& factory) const;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Maps a TrialConfig::num_threads value to an actual worker count:
  /// 0 (or negative) selects std::thread::hardware_concurrency.
  [[nodiscard]] static int resolve_num_threads(int requested);

 private:
  int num_threads_;
};

}  // namespace puffer::exp

#endif  // PUFFER_EXP_PARALLEL_TRIAL_HH
