#include "exp/trial.hh"

#include <algorithm>
#include <iterator>

#include "exp/parallel_trial.hh"
#include "exp/session_task.hh"
#include "net/scenario.hh"
#include "util/require.hh"

namespace puffer::exp {

std::vector<stats::StreamFigures> SchemeResult::slow_paths(
    const double threshold_mbps) const {
  std::vector<stats::StreamFigures> slow;
  for (const auto& figures : considered) {
    if (figures.mean_delivery_rate_mbps < threshold_mbps &&
        figures.mean_delivery_rate_mbps > 0.0) {
      slow.push_back(figures);
    }
  }
  return slow;
}

const SchemeResult& TrialResult::result_for(const std::string& name) const {
  for (const auto& scheme : schemes) {
    if (scheme.scheme == name) {
      return scheme;
    }
  }
  throw RequirementError("TrialResult: no scheme named '" + name + "'");
}

namespace detail {

int64_t num_session_plans(const TrialConfig& config) {
  // Clamped so a negative sessions_per_scheme yields an empty trial on the
  // serial and parallel paths alike (unclamped, the parallel runner would
  // compute a negative chunk count).
  return std::max<int64_t>(0, config.sessions_per_scheme) *
         (config.paired_paths ? 1
                              : static_cast<int64_t>(config.schemes.size()));
}

// Tripwire for the field-by-field merge in append_scheme_result: if
// ConsortCounts grows a field, this forces whoever adds it to extend the
// merge (a missed field would silently zero it on partial-result runs only,
// breaking the bit-identity guarantee). SchemeResult's container members
// have platform-dependent sizes, so keep its member list in sync by hand:
// scheme, considered, session_durations_s, consort, logs.
static_assert(sizeof(ConsortCounts) == 7 * sizeof(int64_t),
              "ConsortCounts changed: update append_scheme_result and "
              "tests/test_parallel_trial.cc accordingly");

std::vector<SchemeResult> empty_scheme_results(const TrialConfig& config) {
  std::vector<SchemeResult> results;
  results.reserve(config.schemes.size());
  for (const auto& name : config.schemes) {
    results.push_back(SchemeResult{});
    results.back().scheme = name;
  }
  return results;
}

std::vector<std::unique_ptr<abr::AbrAlgorithm>> make_algorithms(
    const TrialConfig& config, const SchemeFactory& factory) {
  std::vector<std::unique_ptr<abr::AbrAlgorithm>> algorithms;
  algorithms.reserve(config.schemes.size());
  for (const auto& name : config.schemes) {
    algorithms.push_back(factory(name));
    require(algorithms.back() != nullptr,
            "run_trial: factory returned null for '" + name + "'");
  }
  return algorithms;
}

void run_session_range(
    const TrialConfig& config, const net::PathGenerator& paths,
    const Rng& master, const sim::UserModel& users,
    const std::span<const std::unique_ptr<abr::AbrAlgorithm>> algorithms,
    const int64_t begin, const int64_t end,
    std::vector<SchemeResult>& results) {
  const auto num_schemes = config.schemes.size();
  require(algorithms.size() == num_schemes && results.size() == num_schemes,
          "run_session_range: algorithms/results must match config.schemes");

  for (int64_t s = begin; s < end; s++) {
    Rng session_rng = master.split(static_cast<uint64_t>(s));
    SessionPlan plan = make_session_plan(session_rng, users, paths);

    if (config.paired_paths) {
      // Emulation-style: every scheme experiences the identical session.
      for (size_t a = 0; a < num_schemes; a++) {
        run_session(plan, *algorithms[a], config, results[a]);
      }
    } else {
      // RCT: blinded random assignment of the session to one scheme.
      const auto a = static_cast<size_t>(session_rng.uniform_int(
          0, static_cast<int64_t>(num_schemes) - 1));
      run_session(plan, *algorithms[a], config, results[a]);
    }
  }
}

void append_scheme_result(SchemeResult& into, SchemeResult& from) {
  into.considered.insert(into.considered.end(),
                         std::make_move_iterator(from.considered.begin()),
                         std::make_move_iterator(from.considered.end()));
  into.session_durations_s.insert(into.session_durations_s.end(),
                                  from.session_durations_s.begin(),
                                  from.session_durations_s.end());
  into.logs.insert(into.logs.end(), std::make_move_iterator(from.logs.begin()),
                   std::make_move_iterator(from.logs.end()));
  into.consort.sessions += from.consort.sessions;
  into.consort.streams += from.consort.streams;
  into.consort.never_began += from.consort.never_began;
  into.consort.under_min_watch += from.consort.under_min_watch;
  into.consort.decoder_failure += from.consort.decoder_failure;
  into.consort.truncated += from.consort.truncated;
  into.consort.considered += from.consort.considered;
}

}  // namespace detail

TrialResult run_trial(const TrialConfig& config,
                      const SchemeArtifacts& artifacts) {
  // Wire an enabled fault plan into scheme assembly (resilient Fugu). The
  // copied artifacts keep the plan pointer valid for the factory's life.
  SchemeArtifacts wired = artifacts;
  if (config.faults.enabled && wired.faults == nullptr) {
    wired.faults = &config.faults;
  }
  return run_trial(config, [wired](const std::string& name) {
    return make_scheme(name, wired);
  });
}

TrialResult run_trial(const TrialConfig& config, const SchemeFactory& factory) {
  require(!config.schemes.empty(), "run_trial: need at least one scheme");

  const int num_threads =
      ParallelTrialRunner::resolve_num_threads(config.num_threads);
  if (num_threads > 1) {
    return ParallelTrialRunner{num_threads}.run(config, factory);
  }

  const std::vector<std::unique_ptr<abr::AbrAlgorithm>> algorithms =
      detail::make_algorithms(config, factory);

  const std::unique_ptr<net::PathGenerator> paths =
      net::make_path_generator(config.scenario);
  const sim::UserModel users{config.seed};
  const Rng master{config.seed};

  TrialResult trial;
  trial.schemes = detail::empty_scheme_results(config);
  detail::run_session_range(config, *paths, master, users, algorithms, 0,
                            detail::num_session_plans(config), trial.schemes);
  return trial;
}

}  // namespace puffer::exp
