#include "exp/trial.hh"

#include <algorithm>
#include <optional>

#include "exp/parallel_trial.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/scenario.hh"
#include "util/require.hh"

namespace puffer::exp {

namespace {

/// Everything that defines a session independent of the assigned scheme —
/// sampled up front so that paired (emulation-style) runs can replay the
/// exact same conditions for every scheme.
struct SessionPlan {
  sim::SessionBehavior session;
  std::vector<sim::UserBehavior> stream_behaviors;
  std::vector<int> channels;
  std::vector<uint64_t> video_seeds;
  std::optional<net::NetworkPath> path;
  uint64_t run_seed = 0;
};

SessionPlan make_plan(Rng& rng, const sim::UserModel& users,
                      const net::PathGenerator& paths) {
  SessionPlan plan;
  plan.session = users.sample_session(rng);
  double total_intent_s = 0.0;
  for (int k = 0; k < plan.session.num_streams; k++) {
    plan.stream_behaviors.push_back(users.sample_stream_behavior(rng));
    total_intent_s += plan.stream_behaviors.back().watch_intent_s;
    plan.channels.push_back(static_cast<int>(
        rng.uniform_int(0, media::kNumChannels - 1)));
    plan.video_seeds.push_back(rng.engine()());
  }
  const double trace_duration_s =
      std::min(1.25 * total_intent_s + 900.0, 18.0 * 3600.0);

  Rng path_rng = rng.split("path");
  plan.path = paths.sample_path(path_rng, trace_duration_s);
  plan.run_seed = rng.engine()();
  return plan;
}

/// Run one session with one scheme; appends results.
void run_session(const SessionPlan& plan, abr::AbrAlgorithm& algo,
                 SchemeResult& result, const TrialConfig& config) {
  result.consort.sessions++;

  if (plan.session.incompatible_or_bounce) {
    // Page loaded but video never played (incompatible browser / bounce).
    result.consort.streams++;
    result.consort.never_began++;
    return;
  }

  Rng run_rng{plan.run_seed};
  algo.reset_session();
  net::TcpSender sender{*plan.path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(*plan.path)};
  sim::send_preamble(sender);

  double session_duration_s = 0.0;
  bool any_considered = false;

  for (int k = 0; k < plan.session.num_streams; k++) {
    media::VbrVideoSource video{
        media::default_channels()[static_cast<size_t>(
            plan.channels[static_cast<size_t>(k)])],
        plan.video_seeds[static_cast<size_t>(k)]};

    const sim::StreamOutcome outcome = sim::run_stream(
        sender, algo, video, /*first_chunk=*/0,
        plan.stream_behaviors[static_cast<size_t>(k)], run_rng, config.stream);

    result.consort.streams++;
    session_duration_s += outcome.wall_time_s;

    if (outcome.decoder_failure) {
      result.consort.decoder_failure++;
    } else if (!outcome.began_playing) {
      result.consort.never_began++;
    } else if (outcome.figures.watch_time_s < config.min_watch_time_s) {
      result.consort.under_min_watch++;
    } else {
      result.consort.considered++;
      if (run_rng.bernoulli(0.011)) {
        result.consort.truncated++;  // loss of contact; still considered
      }
      result.considered.push_back(outcome.figures);
      any_considered = true;
    }

    if (config.collect_logs && outcome.transfer_log.size() >= 2) {
      fugu::StreamLog log;
      log.day = config.day;
      log.chunks.reserve(outcome.transfer_log.size());
      for (const auto& entry : outcome.transfer_log) {
        log.chunks.push_back({entry.size_mb, entry.tx_time_s, entry.tcp_at_send});
      }
      result.logs.push_back(std::move(log));
    }
  }

  if (any_considered) {
    result.session_durations_s.push_back(session_duration_s);
  }
}

}  // namespace

std::vector<stats::StreamFigures> SchemeResult::slow_paths(
    const double threshold_mbps) const {
  std::vector<stats::StreamFigures> slow;
  for (const auto& figures : considered) {
    if (figures.mean_delivery_rate_mbps < threshold_mbps &&
        figures.mean_delivery_rate_mbps > 0.0) {
      slow.push_back(figures);
    }
  }
  return slow;
}

const SchemeResult& TrialResult::result_for(const std::string& name) const {
  for (const auto& scheme : schemes) {
    if (scheme.scheme == name) {
      return scheme;
    }
  }
  throw RequirementError("TrialResult: no scheme named '" + name + "'");
}

namespace detail {

int64_t num_session_plans(const TrialConfig& config) {
  // Clamped so a negative sessions_per_scheme yields an empty trial on the
  // serial and parallel paths alike (unclamped, the parallel runner would
  // compute a negative chunk count).
  return std::max<int64_t>(0, config.sessions_per_scheme) *
         (config.paired_paths ? 1
                              : static_cast<int64_t>(config.schemes.size()));
}

std::vector<SchemeResult> empty_scheme_results(const TrialConfig& config) {
  std::vector<SchemeResult> results;
  results.reserve(config.schemes.size());
  for (const auto& name : config.schemes) {
    results.push_back(SchemeResult{});
    results.back().scheme = name;
  }
  return results;
}

std::vector<std::unique_ptr<abr::AbrAlgorithm>> make_algorithms(
    const TrialConfig& config, const SchemeFactory& factory) {
  std::vector<std::unique_ptr<abr::AbrAlgorithm>> algorithms;
  algorithms.reserve(config.schemes.size());
  for (const auto& name : config.schemes) {
    algorithms.push_back(factory(name));
    require(algorithms.back() != nullptr,
            "run_trial: factory returned null for '" + name + "'");
  }
  return algorithms;
}

void run_session_range(
    const TrialConfig& config, const net::PathGenerator& paths,
    const Rng& master, const sim::UserModel& users,
    const std::span<const std::unique_ptr<abr::AbrAlgorithm>> algorithms,
    const int64_t begin, const int64_t end,
    std::vector<SchemeResult>& results) {
  const auto num_schemes = config.schemes.size();
  require(algorithms.size() == num_schemes && results.size() == num_schemes,
          "run_session_range: algorithms/results must match config.schemes");

  for (int64_t s = begin; s < end; s++) {
    Rng session_rng = master.split(static_cast<uint64_t>(s));
    SessionPlan plan = make_plan(session_rng, users, paths);

    if (config.paired_paths) {
      // Emulation-style: every scheme experiences the identical session.
      for (size_t a = 0; a < num_schemes; a++) {
        run_session(plan, *algorithms[a], results[a], config);
      }
    } else {
      // RCT: blinded random assignment of the session to one scheme.
      const auto a = static_cast<size_t>(session_rng.uniform_int(
          0, static_cast<int64_t>(num_schemes) - 1));
      run_session(plan, *algorithms[a], results[a], config);
    }
  }
}

}  // namespace detail

TrialResult run_trial(const TrialConfig& config,
                      const SchemeArtifacts& artifacts) {
  return run_trial(config, [&artifacts](const std::string& name) {
    return make_scheme(name, artifacts);
  });
}

TrialResult run_trial(const TrialConfig& config, const SchemeFactory& factory) {
  require(!config.schemes.empty(), "run_trial: need at least one scheme");

  const int num_threads =
      ParallelTrialRunner::resolve_num_threads(config.num_threads);
  if (num_threads > 1) {
    return ParallelTrialRunner{num_threads}.run(config, factory);
  }

  const std::vector<std::unique_ptr<abr::AbrAlgorithm>> algorithms =
      detail::make_algorithms(config, factory);

  const std::unique_ptr<net::PathGenerator> paths =
      net::make_path_generator(config.scenario);
  const sim::UserModel users{config.seed};
  const Rng master{config.seed};

  TrialResult trial;
  trial.schemes = detail::empty_scheme_results(config);
  detail::run_session_range(config, *paths, master, users, algorithms, 0,
                            detail::num_session_plans(config), trial.schemes);
  return trial;
}

}  // namespace puffer::exp
