#include "exp/session_task.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "abr/mpc_abr.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "util/require.hh"

namespace puffer::exp {

SessionPlan make_session_plan(Rng& rng, const sim::UserModel& users,
                              const net::PathGenerator& paths) {
  SessionPlan plan;
  plan.session = users.sample_session(rng);
  double total_intent_s = 0.0;
  for (int k = 0; k < plan.session.num_streams; k++) {
    plan.stream_behaviors.push_back(users.sample_stream_behavior(rng));
    total_intent_s += plan.stream_behaviors.back().watch_intent_s;
    plan.channels.push_back(static_cast<int>(
        rng.uniform_int(0, media::kNumChannels - 1)));
    plan.video_seeds.push_back(rng.engine()());
  }
  const double trace_duration_s =
      std::min(1.25 * total_intent_s + 900.0, 18.0 * 3600.0);

  Rng path_rng = rng.split("path");
  plan.path = paths.sample_path(path_rng, trace_duration_s);
  plan.run_seed = rng.engine()();
  return plan;
}

SessionTask::SessionTask(const SessionPlan& plan, abr::AbrAlgorithm& algo,
                         const TrialConfig& config, SchemeResult& result)
    : plan_(plan), algo_(algo), config_(config), result_(result) {
  if (auto* mpc = dynamic_cast<abr::MpcAbr*>(&algo_)) {
    if (auto* batched =
            dynamic_cast<fugu::BatchTtpPredictor*>(&mpc->predictor())) {
      batch_predictor_ = batched;
      mpc_horizon_ = mpc->controller().config().horizon;
    }
    resilient_ = dynamic_cast<fugu::ResilientPredictor*>(&mpc->predictor());
  }
}

SessionTask::Step SessionTask::prepare() {
  if (finished_) {
    return Step::kDone;
  }
  if (!started_) {
    started_ = true;
    result_.consort.sessions++;
    if (plan_.session.incompatible_or_bounce) {
      // Page loaded but video never played (incompatible browser / bounce).
      result_.consort.streams++;
      result_.consort.never_began++;
      finished_ = true;
      return Step::kDone;
    }
    run_rng_ = Rng{plan_.run_seed};
    algo_.reset_session();
    if (resilient_ != nullptr) {
      resilient_->begin_session(plan_.run_seed);
      seen_ttp_failures_ = 0;
    }
    abort_probability_ = config_.faults.probability(sim::kFaultSessionAbort);
    if (abort_probability_ > 0.0) {
      abort_rng_ = config_.faults.rng(sim::kFaultSessionAbort)
                       .split(plan_.run_seed);
    }
    sender_.emplace(*plan_.path, std::make_unique<net::BbrModel>(),
                    net::TcpSender::default_queue_capacity(*plan_.path));
    sim::send_preamble(*sender_);
  }
  for (;;) {
    if (stream_index_ >= plan_.session.num_streams) {
      if (any_considered_) {
        result_.session_durations_s.push_back(session_duration_s_);
      }
      finished_ = true;
      return Step::kDone;
    }
    if (!stream_) {
      video_.emplace(
          media::default_channels()[static_cast<size_t>(
              plan_.channels[static_cast<size_t>(stream_index_)])],
          plan_.video_seeds[static_cast<size_t>(stream_index_)]);
      stream_.emplace(*sender_, algo_, *video_, /*first_chunk=*/0,
                      plan_.stream_behaviors[static_cast<size_t>(stream_index_)],
                      run_rng_, config_.stream, nullptr);
    }
    if (stream_->prepare_chunk()) {
      return Step::kDecision;
    }
    finish_stream();
  }
}

bool SessionTask::stage(fugu::TtpInferenceBatch& batch) {
  if (batch_predictor_ == nullptr) {
    return false;
  }
  require(stream_.has_value(), "SessionTask: no decision pending");
  batch_predictor_->stage(stream_->observation(), stream_->lookahead(),
                          mpc_horizon_, batch);
  return true;
}

void SessionTask::finish_chunk() {
  require(stream_.has_value(), "SessionTask: no decision pending");
  stream_->finish_chunk();
  if (resilient_ != nullptr) {
    const int64_t failures = resilient_->session_stats().failures;
    for (; seen_ttp_failures_ < failures; seen_ttp_failures_++) {
      pending_fault_events_.push_back(
          FaultEvent{elapsed_s(), sim::kFaultTtpInference});
    }
  }
  if (abort_rng_.has_value() && !stream_->done() &&
      abort_rng_->bernoulli(abort_probability_)) {
    stream_->abort_stream();
    aborted_streams_ += 1;
    pending_fault_events_.push_back(
        FaultEvent{elapsed_s(), sim::kFaultSessionAbort});
  }
}

double SessionTask::elapsed_s() const {
  return sender_.has_value() ? sender_->now() : 0.0;
}

void SessionTask::drain_fault_events(std::vector<FaultEvent>& out) {
  out.insert(out.end(), pending_fault_events_.begin(),
             pending_fault_events_.end());
  pending_fault_events_.clear();
}

void SessionTask::finish_stream() {
  const sim::StreamOutcome outcome = stream_->take_outcome();
  detail::fold_stream_outcome(outcome, run_rng_, config_, result_,
                              session_duration_s_, any_considered_);
  stream_.reset();
  video_.reset();
  stream_index_++;
}

namespace detail {

void fold_stream_outcome(const sim::StreamOutcome& outcome, Rng& run_rng,
                         const TrialConfig& config, SchemeResult& result,
                         double& session_duration_s, bool& any_considered) {
  result.consort.streams++;
  session_duration_s += outcome.wall_time_s;

  if (outcome.decoder_failure) {
    result.consort.decoder_failure++;
  } else if (!outcome.began_playing) {
    result.consort.never_began++;
  } else if (outcome.figures.watch_time_s < config.min_watch_time_s) {
    result.consort.under_min_watch++;
  } else {
    result.consort.considered++;
    if (run_rng.bernoulli(0.011)) {
      result.consort.truncated++;  // loss of contact; still considered
    }
    result.considered.push_back(outcome.figures);
    any_considered = true;
  }

  if (config.collect_logs && outcome.transfer_log.size() >= 2) {
    fugu::StreamLog log;
    log.day = config.day;
    log.chunks.reserve(outcome.transfer_log.size());
    for (const auto& entry : outcome.transfer_log) {
      log.chunks.push_back({entry.size_mb, entry.tx_time_s, entry.tcp_at_send});
    }
    result.logs.push_back(std::move(log));
  }
}

}  // namespace detail

void run_session(const SessionPlan& plan, abr::AbrAlgorithm& algo,
                 const TrialConfig& config, SchemeResult& result) {
  SessionTask task{plan, algo, config, result};
  while (task.prepare() == sim::FleetTask::Step::kDecision) {
    task.finish_chunk();
  }
}

}  // namespace puffer::exp
