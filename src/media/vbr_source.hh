#ifndef PUFFER_MEDIA_VBR_SOURCE_HH
#define PUFFER_MEDIA_VBR_SOURCE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "media/channel.hh"
#include "media/ladder.hh"
#include "util/rng.hh"

namespace puffer::media {

/// One encoded version of one chunk.
struct ChunkVersion {
  int rung = 0;
  int64_t size_bytes = 0;
  double ssim_db = 0.0;
};

/// All ten encoded versions of one chunk — the "menu" an ABR scheme picks
/// from at each chunk boundary.
struct ChunkOptions {
  int64_t chunk_index = 0;
  std::array<ChunkVersion, kNumRungs> versions;

  [[nodiscard]] const ChunkVersion& version(const int rung) const {
    return versions[static_cast<size_t>(rung)];
  }
};

/// Synthetic VBR video source for one channel.
///
/// Substitutes for Puffer's live ATSC decode + libx264 encode + ffmpeg SSIM
/// pipeline. A scene-complexity process (AR(1) in log space with occasional
/// scene cuts) drives, for every chunk, the compressed size and SSIM of each
/// ladder rung. This reproduces the within-stream variability of Figure 3:
/// chunk sizes on the top rung span roughly 0.3-6 MB and SSIM spans several
/// dB, while the rate-quality curve stays concave (Figure 4's premise).
///
/// Chunks are generated lazily and memoized, so a source behaves as an
/// unbounded live stream; the same (profile, seed) always yields the same
/// stream.
class VbrVideoSource {
 public:
  VbrVideoSource(const ChannelProfile& profile, uint64_t seed);

  /// The menu of versions for chunk `index` (extends the stream on demand).
  const ChunkOptions& chunk_options(int64_t index);

  [[nodiscard]] const ChannelProfile& profile() const { return profile_; }
  [[nodiscard]] double chunk_duration() const { return kChunkDurationS; }

  /// Scene complexity of chunk `index` (exposed for tests / Figure 3).
  double complexity(int64_t index);

 private:
  void extend_to(int64_t index);

  ChannelProfile profile_;
  Rng rng_;
  std::vector<double> log_complexity_;
  std::vector<ChunkOptions> chunks_;
};

}  // namespace puffer::media

#endif  // PUFFER_MEDIA_VBR_SOURCE_HH
