#ifndef PUFFER_MEDIA_CHANNEL_HH
#define PUFFER_MEDIA_CHANNEL_HH

#include <array>
#include <string>

namespace puffer::media {

/// Content profile of one simulated over-the-air TV channel. Puffer streams
/// six channels (section 3); they differ in how demanding the content is
/// (sports vs. news vs. sitcoms), which drives the VBR complexity process.
struct ChannelProfile {
  std::string name;
  double mean_log_complexity;   ///< mean of the log-complexity process
  double complexity_volatility; ///< innovation stddev of the AR(1) process
  double scene_cut_rate;        ///< probability of a scene cut per chunk
  double scene_cut_spread;      ///< stddev of log-complexity after a cut
};

inline constexpr int kNumChannels = 6;

/// The six simulated channels.
const std::array<ChannelProfile, kNumChannels>& default_channels();

}  // namespace puffer::media

#endif  // PUFFER_MEDIA_CHANNEL_HH
