#ifndef PUFFER_MEDIA_LADDER_HH
#define PUFFER_MEDIA_LADDER_HH

#include <array>
#include <cstdint>
#include <string>

namespace puffer::media {

/// Number of encoded versions ("rungs") per chunk. Puffer encodes each video
/// chunk in ten H.264 versions (paper section 3.1).
inline constexpr int kNumRungs = 10;

/// Video chunks are 2.002 seconds long (NTSC 1/1001 factor, section 3.1).
inline constexpr double kChunkDurationS = 2.002;

/// One rung of the encoding ladder.
struct Rung {
  int index;                   ///< 0 = lowest quality, kNumRungs-1 = highest
  int height;                  ///< vertical resolution, e.g. 240 .. 1080
  int crf;                     ///< x264 constant rate factor
  double nominal_bitrate_mbps; ///< long-run average bitrate of this rung
  std::string name;            ///< e.g. "1080p60-crf20"
};

/// The Puffer-like ladder: 240p60/CRF26 (~200 kbps) ... 1080p60/CRF20
/// (~5500 kbps), section 3.1.
const std::array<Rung, kNumRungs>& default_ladder();

/// Average compressed chunk size in bytes for a rung at complexity 1.
int64_t nominal_chunk_bytes(const Rung& rung);

}  // namespace puffer::media

#endif  // PUFFER_MEDIA_LADDER_HH
