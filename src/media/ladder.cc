#include "media/ladder.hh"

#include <cmath>

namespace puffer::media {

const std::array<Rung, kNumRungs>& default_ladder() {
  static const std::array<Rung, kNumRungs> ladder = {{
      {0, 240, 26, 0.20, "240p60-crf26"},
      {1, 360, 26, 0.40, "360p60-crf26"},
      {2, 480, 26, 0.70, "480p60-crf26"},
      {3, 480, 22, 1.10, "480p60-crf22"},
      {4, 720, 26, 1.60, "720p60-crf26"},
      {5, 720, 24, 2.30, "720p60-crf24"},
      {6, 720, 22, 3.00, "720p60-crf22"},
      {7, 1080, 26, 3.80, "1080p60-crf26"},
      {8, 1080, 23, 4.70, "1080p60-crf23"},
      {9, 1080, 20, 5.50, "1080p60-crf20"},
  }};
  return ladder;
}

int64_t nominal_chunk_bytes(const Rung& rung) {
  return static_cast<int64_t>(
      std::llround(rung.nominal_bitrate_mbps * 1e6 / 8.0 * kChunkDurationS));
}

}  // namespace puffer::media
