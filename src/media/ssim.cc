#include "media/ssim.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::media {

double ssim_to_db(const double ssim_index) {
  require(ssim_index >= 0.0 && ssim_index < 1.0, "ssim_to_db: index in [0,1)");
  return -10.0 * std::log10(1.0 - ssim_index);
}

double db_to_ssim(const double ssim_db) {
  return 1.0 - std::pow(10.0, -ssim_db / 10.0);
}

double rate_quality_db(const double bitrate_mbps, const double complexity) {
  require(bitrate_mbps > 0.0, "rate_quality_db: bitrate must be positive");
  require(complexity > 0.0, "rate_quality_db: complexity must be positive");
  // SSIM dB grows roughly logarithmically with bitrate; complexity shifts
  // the curve down with exponent > 1: a CRF encoder spends extra bits on
  // complex scenes (size scales ~linearly with complexity) yet SSIM still
  // ends up somewhat lower there — the imperfect compensation behind the
  // quality spread of Figure 3b.
  const double effective_rate = bitrate_mbps / std::pow(complexity, 1.45);
  const double quality = 12.9 + 2.41 * std::log(effective_rate);
  return std::clamp(quality, 3.0, 25.0);
}

}  // namespace puffer::media
