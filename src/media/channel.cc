#include "media/channel.hh"

namespace puffer::media {

const std::array<ChannelProfile, kNumChannels>& default_channels() {
  // Log-complexity means are centered near zero (complexity 1.0) with
  // per-channel character: sports cut often and run hot; news is static.
  static const std::array<ChannelProfile, kNumChannels> channels = {{
      {"nbc-sports", 0.18, 0.22, 0.10, 0.55},
      {"cbs-drama", -0.08, 0.15, 0.05, 0.45},
      {"abc-news", -0.42, 0.10, 0.03, 0.35},
      {"fox-sitcom", -0.24, 0.14, 0.05, 0.40},
      {"pbs-documentary", -0.18, 0.12, 0.04, 0.40},
      {"cw-movies", 0.02, 0.18, 0.06, 0.50},
  }};
  return channels;
}

}  // namespace puffer::media
