#include "media/vbr_source.hh"

#include <algorithm>
#include <cmath>

#include "media/ssim.hh"
#include "util/require.hh"

namespace puffer::media {

namespace {

/// AR(1) persistence of log-complexity between scene cuts: content complexity
/// is strongly correlated chunk-to-chunk within a scene.
constexpr double kComplexityPersistence = 0.90;

/// Per-rung encoder noise: x264's rate control is not exact, so size and
/// quality jitter a little around the model even at fixed complexity.
constexpr double kSizeNoiseSigma = 0.10;
constexpr double kQualityNoiseSigmaDb = 0.40;

}  // namespace

VbrVideoSource::VbrVideoSource(const ChannelProfile& profile, const uint64_t seed)
    : profile_(profile), rng_(Rng{seed}.split("vbr-source")) {}

void VbrVideoSource::extend_to(const int64_t index) {
  require(index >= 0, "VbrVideoSource: chunk index must be non-negative");
  while (static_cast<int64_t>(chunks_.size()) <= index) {
    // Advance the scene-complexity process.
    double log_c;
    if (log_complexity_.empty()) {
      log_c = rng_.normal(profile_.mean_log_complexity, profile_.scene_cut_spread);
    } else if (rng_.bernoulli(profile_.scene_cut_rate)) {
      // Scene cut: complexity re-drawn around the channel mean.
      log_c = rng_.normal(profile_.mean_log_complexity, profile_.scene_cut_spread);
    } else {
      const double prev = log_complexity_.back();
      log_c = profile_.mean_log_complexity +
              kComplexityPersistence * (prev - profile_.mean_log_complexity) +
              rng_.normal(0.0, profile_.complexity_volatility);
    }
    log_complexity_.push_back(log_c);
    const double complexity = std::exp(log_c);

    ChunkOptions options;
    options.chunk_index = static_cast<int64_t>(chunks_.size());
    for (int r = 0; r < kNumRungs; r++) {
      const Rung& rung = default_ladder()[static_cast<size_t>(r)];
      // Compressed size scales with complexity (more detail/motion -> more
      // bits at fixed CRF), with multiplicative encoder noise.
      const double size_noise = std::exp(rng_.normal(0.0, kSizeNoiseSigma));
      const double size =
          static_cast<double>(nominal_chunk_bytes(rung)) * complexity * size_noise;
      const double actual_bitrate_mbps =
          size * 8.0 / 1e6 / kChunkDurationS;

      ChunkVersion version;
      version.rung = r;
      version.size_bytes = std::max<int64_t>(static_cast<int64_t>(size), 2000);
      version.ssim_db =
          std::clamp(rate_quality_db(actual_bitrate_mbps, complexity) +
                         rng_.normal(0.0, kQualityNoiseSigmaDb),
                     3.0, 25.0);
      options.versions[static_cast<size_t>(r)] = version;
    }
    chunks_.push_back(options);
  }
}

const ChunkOptions& VbrVideoSource::chunk_options(const int64_t index) {
  extend_to(index);
  return chunks_[static_cast<size_t>(index)];
}

double VbrVideoSource::complexity(const int64_t index) {
  extend_to(index);
  return std::exp(log_complexity_[static_cast<size_t>(index)]);
}

}  // namespace puffer::media
