#ifndef PUFFER_MEDIA_SSIM_HH
#define PUFFER_MEDIA_SSIM_HH

namespace puffer::media {

/// Convert a raw SSIM index in [0, 1) to decibels: -10 * log10(1 - ssim).
/// The paper reports all quality numbers in SSIM dB.
double ssim_to_db(double ssim_index);

/// Inverse of ssim_to_db.
double db_to_ssim(double ssim_db);

/// Rate-quality model: expected SSIM dB of a chunk encoded at `bitrate_mbps`
/// for content with scene complexity `complexity` (1.0 = typical). Quality is
/// concave in log-bitrate and decreases with complexity — harder content needs
/// more bits for the same quality. Calibrated so the ladder spans ~6-18 dB and
/// a full-ladder mean around 16-17 dB, matching Figures 3b and 1.
double rate_quality_db(double bitrate_mbps, double complexity);

}  // namespace puffer::media

#endif  // PUFFER_MEDIA_SSIM_HH
