#ifndef PUFFER_FUGU_RESILIENT_HH
#define PUFFER_FUGU_RESILIENT_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "fugu/ttp.hh"
#include "sim/faults.hh"
#include "util/rng.hh"

namespace puffer::fugu {

/// Hysteresis knobs for ResilientPredictor's degradation ladder.
struct ResilienceConfig {
  /// Consecutive inference failures before the wrapper enters degraded mode
  /// (the per-decision fallback still serves every failed decision
  /// immediately — this gates the sticky state, not the first response).
  int engage_after_failures = 2;
  /// Consecutive healthy decisions in degraded mode before the primary is
  /// re-promoted.
  int repromote_after_successes = 8;

  bool operator==(const ResilienceConfig&) const = default;
};

/// Per-session fault/degradation accounting, harvested into faults.*
/// metrics by the trial layer. Pure per-session counts: partition- and
/// interleaving-invariant (determinism class plain).
struct SessionFaultStats {
  int64_t decisions = 0;
  int64_t failures = 0;            ///< injected inference failures
  int64_t fallback_decisions = 0;  ///< decisions served by the HM fallback
  int64_t engagements = 0;         ///< entries into degraded mode
  bool degraded = false;           ///< degraded at end of session
};

/// Graceful-degradation wrapper around a TTP predictor: when TTP inference
/// fails (injected per-decision by a sim::FaultPlan), the decision is served
/// by the classical harmonic-mean throughput predictor instead; sustained
/// failure latches degraded mode, and a healthy streak re-promotes the
/// primary (hysteresis, so the scheme does not flap between predictors).
///
/// Determinism: the failure schedule is a per-session stream seeded from
/// (fault seed, family, session run seed) — installed by begin_session(),
/// drawn sequentially within the session — so it is a pure function of the
/// session regardless of pooling order, thread count, or shard count.
/// Until begin_session() is called (or after reset_session()) the wrapper
/// is a transparent pass-through.
class ResilientPredictor final : public abr::TxTimePredictor {
 public:
  ResilientPredictor(std::unique_ptr<abr::TxTimePredictor> primary,
                     ResilienceConfig config, double failure_probability,
                     uint64_t fault_seed);

  /// Install this session's fault stream. Call after reset_session(), with
  /// the session plan's run seed.
  void begin_session(uint64_t run_seed);

  void begin_decision(const abr::AbrObservation& obs) override;
  abr::TxTimeDistribution predict(int step, int64_t size_bytes) override;
  void predict_batch(std::span<const abr::TxTimeQuery> queries,
                     std::vector<abr::TxTimeDistribution>& out) override;
  void on_chunk_complete(const abr::ChunkRecord& record) override;
  void reset_session() override;

  [[nodiscard]] const SessionFaultStats& session_stats() const {
    return stats_;
  }
  [[nodiscard]] bool degraded() const { return stats_.degraded; }
  [[nodiscard]] abr::TxTimePredictor& primary() { return *primary_; }

 private:
  [[nodiscard]] abr::TxTimePredictor& active();

  std::unique_ptr<abr::TxTimePredictor> primary_;
  abr::HarmonicMeanPredictor fallback_;
  ResilienceConfig config_;
  double failure_probability_;
  uint64_t fault_seed_;

  std::optional<Rng> session_stream_;
  bool current_failed_ = false;
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
  SessionFaultStats stats_;
};

/// Assemble Fugu with its TTP wrapped in a ResilientPredictor when `faults`
/// enables the ttp-inference family; byte-for-byte the plain make_fugu
/// assembly otherwise (the zero-fault contract).
std::unique_ptr<abr::MpcAbr> make_resilient_fugu(
    std::shared_ptr<const TtpModel> model, const sim::FaultPlan& faults,
    ResilienceConfig resilience = {}, std::string name = "Fugu",
    bool point_estimate = false, abr::MpcConfig mpc_config = {});

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_RESILIENT_HH
