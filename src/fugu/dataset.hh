#ifndef PUFFER_FUGU_DATASET_HH
#define PUFFER_FUGU_DATASET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/tcp_info.hh"

namespace puffer::fugu {

/// One chunk transfer as logged by the video server — the raw telemetry from
/// which TTP training examples are built (paper section 4.3 and Appendix B's
/// video_sent / video_acked measurements).
struct ChunkLog {
  double size_mb = 0.0;
  double tx_time_s = 0.0;
  net::TcpInfo tcp_at_send;
};

/// Chunk logs of one stream, in order, tagged with the (simulated) day they
/// were collected — the trainer's 14-day sliding window and recency
/// weighting key off this.
struct StreamLog {
  int day = 0;
  std::vector<ChunkLog> chunks;
};

using TtpDataset = std::vector<StreamLog>;

/// Collects stream logs as they are produced and serves windowed views:
/// Puffer retrains the TTP every day on the prior 14 days of data
/// (section 4.3).
class DataAggregator {
 public:
  void add_stream(StreamLog log);

  /// Streams with day in (current_day - window_days, current_day].
  [[nodiscard]] TtpDataset window(int current_day, int window_days = 14) const;

  /// Drop streams older than `min_day` (day < min_day). Long-running
  /// campaigns call this after each nightly retrain so the in-memory state
  /// and its checkpoints stay bounded by the training window instead of
  /// growing with campaign length. Relative order of survivors is preserved.
  void prune_before(int min_day);

  [[nodiscard]] size_t num_streams() const { return streams_.size(); }
  [[nodiscard]] size_t num_chunks() const;
  [[nodiscard]] const TtpDataset& all() const { return streams_; }

 private:
  TtpDataset streams_;
};

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_DATASET_HH
