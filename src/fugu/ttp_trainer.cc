#include "fugu/ttp_trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "util/require.hh"

namespace puffer::fugu {

namespace {

/// Expected and max-likelihood transmission times implied by a bin
/// distribution, honoring the model's target type.
std::pair<double, double> implied_tx_times(const TtpConfig& config,
                                           const std::vector<float>& probs,
                                           const double size_mb) {
  double expected = 0.0;
  int argmax = 0;
  for (int bin = 0; bin < kTtpBins; bin++) {
    double time_s;
    if (config.target == TtpTarget::kTransmissionTime) {
      time_s = ttp_bin_midpoint(bin);
    } else {
      time_s = std::clamp(size_mb * 1e6 / throughput_bin_midpoint_bps(bin),
                          1e-3, 60.0);
    }
    expected += static_cast<double>(probs[static_cast<size_t>(bin)]) * time_s;
    if (probs[static_cast<size_t>(bin)] > probs[static_cast<size_t>(argmax)]) {
      argmax = bin;
    }
  }
  double point;
  if (config.target == TtpTarget::kTransmissionTime) {
    point = ttp_bin_midpoint(argmax);
  } else {
    point = std::clamp(size_mb * 1e6 / throughput_bin_midpoint_bps(argmax),
                       1e-3, 60.0);
  }
  return {expected, point};
}

}  // namespace

std::vector<TtpExample> build_examples(const TtpConfig& config,
                                       const TtpDataset& dataset,
                                       const int step, const int current_day,
                                       const double recency_decay) {
  std::vector<TtpExample> examples;
  TtpHistory history;
  for (const auto& stream : dataset) {
    history.clear();
    const float weight = static_cast<float>(
        std::pow(recency_decay, std::max(0, current_day - stream.day)));
    const auto n = static_cast<int64_t>(stream.chunks.size());
    for (int64_t i = 0; i + step < n; i++) {
      const ChunkLog& decision_chunk = stream.chunks[static_cast<size_t>(i)];
      const ChunkLog& target_chunk =
          stream.chunks[static_cast<size_t>(i + step)];

      // At this point `history` holds chunks 0..i-1 — exactly what the
      // server knew when it decided chunk i.
      TtpExample example;
      example.features = ttp_featurize(
          config, history, decision_chunk.tcp_at_send,
          static_cast<int64_t>(target_chunk.size_mb * 1e6));
      example.label =
          ttp_label_of(config, target_chunk.tx_time_s, target_chunk.size_mb);
      example.weight = weight;
      example.true_tx_time_s = target_chunk.tx_time_s;
      example.size_mb = target_chunk.size_mb;
      examples.push_back(std::move(example));

      history.record(decision_chunk.size_mb, decision_chunk.tx_time_s,
                     config.history);
    }
  }
  return examples;
}

TtpModel train_ttp(const TtpConfig& config, const TtpDataset& dataset,
                   const int current_day, const TtpTrainConfig& train_config,
                   Rng& rng, const TtpModel* warm_start,
                   TtpTrainReport* report) {
  TtpModel model{config, rng.engine()()};
  if (warm_start != nullptr) {
    require(warm_start->config().horizon == config.horizon,
            "train_ttp: warm start must share the horizon");
    for (int k = 0; k < config.horizon; k++) {
      require(warm_start->networks()[static_cast<size_t>(k)].layer_sizes() ==
                  model.networks()[static_cast<size_t>(k)].layer_sizes(),
              "train_ttp: warm start must share the architecture");
    }
    model.networks() = warm_start->networks();
  }

  const TtpDataset window = [&] {
    TtpDataset filtered;
    for (const auto& stream : dataset) {
      if (stream.day > current_day - train_config.window_days &&
          stream.day <= current_day) {
        filtered.push_back(stream);
      }
    }
    return filtered;
  }();
  require(!window.empty(), "train_ttp: no data in training window");

  if (report != nullptr) {
    report->loss_per_epoch.assign(static_cast<size_t>(train_config.epochs),
                                  0.0);
  }

  for (int step = 0; step < config.horizon; step++) {
    std::vector<TtpExample> examples = build_examples(
        config, window, step, current_day, train_config.recency_decay);
    require(!examples.empty(), "train_ttp: no examples for step");

    // Subsample if oversized, then shuffle (section 4.3).
    std::shuffle(examples.begin(), examples.end(), rng.engine());
    if (examples.size() > train_config.max_examples_per_step) {
      examples.resize(train_config.max_examples_per_step);
    }
    if (report != nullptr) {
      report->examples_per_step = examples.size();
    }

    nn::Mlp& net = model.networks()[static_cast<size_t>(step)];
    nn::AdamOptimizer optimizer{train_config.learning_rate};

    // Minibatch buffers hoisted out of the inner loop: the tape, gradients
    // and staging matrices resize in place, so the steady-state training
    // step allocates nothing.
    nn::Matrix inputs;
    nn::Matrix dlogits;
    nn::Tape tape;
    nn::Gradients grads = net.make_gradients();
    std::vector<int> labels;
    std::vector<float> weights;

    const size_t batch = static_cast<size_t>(train_config.batch_size);
    for (int epoch = 0; epoch < train_config.epochs; epoch++) {
      std::shuffle(examples.begin(), examples.end(), rng.engine());
      double epoch_loss = 0.0;
      size_t batches = 0;
      for (size_t begin = 0; begin < examples.size(); begin += batch) {
        const size_t end = std::min(begin + batch, examples.size());
        const size_t rows = end - begin;
        inputs.resize_no_zero(rows, static_cast<size_t>(config.input_dim()));
        labels.resize(rows);
        weights.resize(rows);
        for (size_t r = 0; r < rows; r++) {
          const TtpExample& ex = examples[begin + r];
          std::copy(ex.features.begin(), ex.features.end(),
                    inputs.data() + r * inputs.cols());
          labels[r] = ex.label;
          weights[r] = ex.weight;
        }
        net.forward_tape(inputs, tape);
        const double loss = nn::softmax_cross_entropy(
            tape.activations.back(), labels, weights, dlogits);
        grads.zero();
        net.backward(tape, dlogits, grads);
        optimizer.step(net, grads);
        epoch_loss += loss;
        batches++;
      }
      if (report != nullptr && batches > 0) {
        report->loss_per_epoch[static_cast<size_t>(epoch)] +=
            epoch_loss / static_cast<double>(batches) / config.horizon;
      }
    }
  }
  return model;
}

TtpEvaluation evaluate_ttp(const TtpModel& model, const TtpDataset& dataset) {
  const TtpConfig& config = model.config();
  std::vector<TtpExample> examples =
      build_examples(config, dataset, /*step=*/0, /*current_day=*/0,
                     /*recency_decay=*/1.0);
  require(!examples.empty(), "evaluate_ttp: empty dataset");

  TtpEvaluation eval;
  double se_expected = 0.0;
  double se_point = 0.0;
  for (const auto& example : examples) {
    const std::vector<float> probs = model.predict_bins(0, example.features);
    const int label =
        model.label_of(example.true_tx_time_s, example.size_mb);
    const double p_true =
        std::max<double>(probs[static_cast<size_t>(label)], 1e-12);
    eval.cross_entropy += -std::log(p_true);

    int argmax = 0;
    for (int bin = 1; bin < kTtpBins; bin++) {
      if (probs[static_cast<size_t>(bin)] > probs[static_cast<size_t>(argmax)]) {
        argmax = bin;
      }
    }
    if (argmax == label) {
      eval.top1_accuracy += 1.0;
    }

    const auto [expected, point] =
        implied_tx_times(config, probs, example.size_mb);
    se_expected += (expected - example.true_tx_time_s) *
                   (expected - example.true_tx_time_s);
    se_point += (point - example.true_tx_time_s) *
                (point - example.true_tx_time_s);
  }
  const double n = static_cast<double>(examples.size());
  eval.cross_entropy /= n;
  eval.top1_accuracy /= n;
  eval.rmse_expected_s = std::sqrt(se_expected / n);
  eval.rmse_point_s = std::sqrt(se_point / n);
  eval.examples = examples.size();
  return eval;
}

}  // namespace puffer::fugu
