#ifndef PUFFER_FUGU_FUGU_HH
#define PUFFER_FUGU_FUGU_HH

#include <memory>
#include <string>

#include "abr/mpc_abr.hh"
#include "fugu/ttp.hh"

namespace puffer::fugu {

/// Assemble the Fugu ABR scheme (paper Figure 6): the stochastic MPC
/// controller driven by a trained Transmission Time Predictor. Variants of
/// the same assembly produce the ablation arms:
///  * point_estimate=true  -> "Point Estimate Fugu" (section 4.6)
///  * a model trained with TtpTarget::kThroughput -> throughput ablation
///  * a model with empty hidden_layers -> linear ablation
///  * a model trained on emulation data -> "Emulation-trained Fugu" (Fig 11)
std::unique_ptr<abr::MpcAbr> make_fugu(std::shared_ptr<const TtpModel> model,
                                       std::string name = "Fugu",
                                       bool point_estimate = false,
                                       abr::MpcConfig mpc_config = {});

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_FUGU_HH
