#include "fugu/dataset.hh"

namespace puffer::fugu {

void DataAggregator::add_stream(StreamLog log) {
  streams_.push_back(std::move(log));
}

TtpDataset DataAggregator::window(const int current_day,
                                  const int window_days) const {
  TtpDataset result;
  for (const auto& stream : streams_) {
    if (stream.day > current_day - window_days && stream.day <= current_day) {
      result.push_back(stream);
    }
  }
  return result;
}

void DataAggregator::prune_before(const int min_day) {
  std::erase_if(streams_,
                [min_day](const StreamLog& s) { return s.day < min_day; });
}

size_t DataAggregator::num_chunks() const {
  size_t total = 0;
  for (const auto& stream : streams_) {
    total += stream.chunks.size();
  }
  return total;
}

}  // namespace puffer::fugu
