#ifndef PUFFER_FUGU_BATCH_TTP_HH
#define PUFFER_FUGU_BATCH_TTP_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "abr/predictor.hh"
#include "fugu/ttp.hh"
#include "media/vbr_source.hh"

namespace puffer::fugu {

/// Coalesces TTP forward passes. Feature rows are gathered into one matrix
/// per step-network — within one ABR decision and, in the fleet engine,
/// across many concurrently-deciding sessions — and each group then runs a
/// single Mlp::forward (one GEMM) instead of one matrix-vector pass per
/// row. Row results are bit-identical to forward_one: the fused matmul
/// accumulates every output row in the same order regardless of how many
/// rows share the batch.
class TtpInferenceBatch {
 public:
  /// Where an enqueued row's answer will appear after run().
  struct Slot {
    size_t group = 0;
    size_t row = 0;
  };

  /// Resolve the row group of (model, step) — step clamped to the model's
  /// horizon exactly as TtpModel::predict_bins clamps it. One lookup per
  /// (decision, step); enqueue_row() then appends without it.
  size_t group_for(const TtpModel& model, int step);

  /// Append one feature row to a resolved group (the per-row hot path).
  Slot enqueue_row(size_t group, std::span<const float> features);

  /// Convenience: group_for + enqueue_row.
  Slot enqueue(const TtpModel& model, int step,
               std::span<const float> features);

  /// Run one fused forward pass per non-empty group, then softmax each row.
  void run();

  /// Post-softmax bin probabilities of an enqueued row; valid until the
  /// next clear(). Read-only, so concurrent readers are safe.
  [[nodiscard]] std::span<const float> probs(const Slot& slot) const;

  /// Drop all rows, keeping group buffers warm for the next batch.
  void clear();

  [[nodiscard]] int64_t rows_pending() const { return rows_pending_; }
  /// Distinct (model, step) row groups resolved so far. Group buffers stay
  /// warm across clear(), so this is also the batch's steady-state buffer
  /// footprint — each fleet shard owns one batch and reports it.
  [[nodiscard]] size_t num_groups() const { return groups_.size(); }
  /// Cumulative counters (survive clear()) for bench/fleet statistics.
  [[nodiscard]] int64_t total_rows() const { return total_rows_; }
  [[nodiscard]] int64_t total_forward_calls() const { return total_forwards_; }
  /// Largest row count any single forward pass ran with (survives clear());
  /// how full the coalescing actually got, reported per fleet shard.
  [[nodiscard]] int64_t max_forward_rows() const { return max_forward_rows_; }

 private:
  struct Group {
    const nn::Mlp* network = nullptr;
    size_t input_dim = 0;
    size_t rows_used = 0;
    std::vector<float> staging;  ///< row-major feature rows
    nn::Matrix input;
    nn::Matrix logits;
    nn::Matrix scratch;
  };

  /// Insertion order (deterministic). Resolution is a linear scan by
  /// network identity — a pointer-keyed std::map would order by allocation
  /// address (detlint R3), and with one group per step-network the scan is
  /// at most a handful of compares, cheaper than a tree walk.
  std::vector<Group> groups_;
  int64_t rows_pending_ = 0;
  int64_t total_rows_ = 0;
  int64_t total_forwards_ = 0;
  int64_t max_forward_rows_ = 0;
};

/// Drop-in replacement for TtpPredictor whose per-decision queries run as
/// fused matrix-matrix passes instead of per-(step, rung) matrix-vector
/// passes. Two modes:
///  * standalone: predict_batch() gathers all rows of the decision into an
///    internal TtpInferenceBatch and runs it immediately — one GEMM per
///    step-network per decision;
///  * staged (fleet engine): stage() enqueues the upcoming decision's rows
///    into a shared batch; once the engine has run that batch, the MPC
///    planner's predict_batch() is served straight from it, coalescing
///    inference across concurrently-deciding sessions.
/// Either way the distributions are bit-identical to TtpPredictor's.
class BatchTtpPredictor final : public abr::TxTimePredictor {
 public:
  explicit BatchTtpPredictor(std::shared_ptr<const TtpModel> model,
                             bool point_estimate = false);

  void begin_decision(const abr::AbrObservation& obs) override;
  abr::TxTimeDistribution predict(int step, int64_t size_bytes) override;
  void predict_batch(std::span<const abr::TxTimeQuery> queries,
                     std::vector<abr::TxTimeDistribution>& out) override;
  void on_chunk_complete(const abr::ChunkRecord& record) override;
  void reset_session() override;

  /// Fleet protocol: featurize and enqueue the rows of the decision the MPC
  /// controller is about to make over `lookahead` with planning horizon
  /// `horizon` — (step x rung) in step-major order, exactly the query order
  /// StochasticMpc::plan issues — into `batch`. The next predict_batch()
  /// call is answered from `batch`, which must have been run by then.
  void stage(const abr::AbrObservation& obs,
             std::span<const media::ChunkOptions> lookahead, int horizon,
             TtpInferenceBatch& batch);

  [[nodiscard]] const TtpModel& model() const { return *model_; }
  [[nodiscard]] const TtpHistory& history() const { return history_; }

 private:
  void enqueue_rows(std::span<const abr::TxTimeQuery> queries,
                    TtpInferenceBatch& batch,
                    std::vector<TtpInferenceBatch::Slot>& slots);
  [[nodiscard]] abr::TxTimeDistribution distribution_of(
      const TtpInferenceBatch& batch, const TtpInferenceBatch::Slot& slot,
      int64_t size_bytes) const;

  std::shared_ptr<const TtpModel> model_;
  bool point_estimate_;
  TtpHistory history_;
  net::TcpInfo current_tcp_;
  std::vector<float> features_;  ///< base feature row, size element patched

  TtpInferenceBatch local_batch_;  ///< standalone per-decision fusion
  std::vector<TtpInferenceBatch::Slot> local_slots_;

  TtpInferenceBatch* staged_batch_ = nullptr;  ///< fleet-shared batch
  std::vector<abr::TxTimeQuery> staged_queries_;
  std::vector<TtpInferenceBatch::Slot> staged_slots_;
};

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_BATCH_TTP_HH
