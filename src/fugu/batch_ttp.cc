#include "fugu/batch_ttp.hh"

#include <algorithm>

#include "nn/loss.hh"
#include "util/require.hh"

namespace puffer::fugu {

size_t TtpInferenceBatch::group_for(const TtpModel& model, const int step) {
  const int clamped_step =
      std::clamp(step, 0, model.config().horizon - 1);
  const nn::Mlp& network =
      model.networks()[static_cast<size_t>(clamped_step)];
  for (size_t g = 0; g < groups_.size(); g++) {
    if (groups_[g].network == &network) {
      return g;
    }
  }
  groups_.push_back(Group{});
  groups_.back().network = &network;
  groups_.back().input_dim = network.input_size();
  return groups_.size() - 1;
}

TtpInferenceBatch::Slot TtpInferenceBatch::enqueue_row(
    const size_t group_index, const std::span<const float> features) {
  require(group_index < groups_.size(), "TtpInferenceBatch: bad group");
  Group& group = groups_[group_index];
  require(features.size() == group.input_dim,
          "TtpInferenceBatch: feature width mismatch");
  group.staging.insert(group.staging.end(), features.begin(), features.end());
  const Slot slot{group_index, group.rows_used};
  group.rows_used++;
  rows_pending_++;
  return slot;
}

TtpInferenceBatch::Slot TtpInferenceBatch::enqueue(
    const TtpModel& model, const int step,
    const std::span<const float> features) {
  return enqueue_row(group_for(model, step), features);
}

void TtpInferenceBatch::run() {
  for (Group& group : groups_) {
    if (group.rows_used == 0) {
      continue;
    }
    group.input.resize_no_zero(group.rows_used, group.input_dim);
    std::copy(group.staging.begin(), group.staging.end(), group.input.data());
    group.network->forward(group.input, group.logits, group.scratch);
    for (size_t r = 0; r < group.logits.rows(); r++) {
      nn::softmax_inplace(group.logits.row(r));
    }
    total_rows_ += static_cast<int64_t>(group.rows_used);
    total_forwards_++;
    max_forward_rows_ =
        std::max(max_forward_rows_, static_cast<int64_t>(group.rows_used));
  }
  rows_pending_ = 0;
}

std::span<const float> TtpInferenceBatch::probs(const Slot& slot) const {
  require(slot.group < groups_.size(), "TtpInferenceBatch: bad slot group");
  const Group& group = groups_[slot.group];
  require(slot.row < group.logits.rows(),
          "TtpInferenceBatch: slot not answered (run() the batch first)");
  return group.logits.row(slot.row);
}

void TtpInferenceBatch::clear() {
  for (Group& group : groups_) {
    group.staging.clear();
    group.rows_used = 0;
    group.logits.resize(0, 0);
  }
  rows_pending_ = 0;
}

BatchTtpPredictor::BatchTtpPredictor(std::shared_ptr<const TtpModel> model,
                                     const bool point_estimate)
    : model_(std::move(model)), point_estimate_(point_estimate) {
  require(model_ != nullptr, "BatchTtpPredictor: model required");
}

void BatchTtpPredictor::begin_decision(const abr::AbrObservation& obs) {
  current_tcp_ = obs.tcp;
}

void BatchTtpPredictor::enqueue_rows(
    const std::span<const abr::TxTimeQuery> queries, TtpInferenceBatch& batch,
    std::vector<TtpInferenceBatch::Slot>& slots) {
  const TtpConfig& config = model_->config();
  // All rows of one decision share history and tcp_info; only the proposed
  // size differs, so featurize once and patch the size element per row.
  ttp_featurize_into(config, history_, current_tcp_,
                     queries.empty() ? 0 : queries.front().size_bytes,
                     features_);
  slots.clear();
  slots.reserve(queries.size());
  // Queries arrive step-major (enumerate_tx_time_queries), so resolve each
  // step's row group once instead of once per row.
  int current_step = -1;
  size_t group = 0;
  for (const abr::TxTimeQuery& query : queries) {
    if (config.target == TtpTarget::kTransmissionTime) {
      features_.back() = static_cast<float>(
          static_cast<double>(query.size_bytes) / 1e6);
    }
    if (query.step != current_step) {
      group = batch.group_for(*model_, query.step);
      current_step = query.step;
    }
    slots.push_back(batch.enqueue_row(group, features_));
  }
}

abr::TxTimeDistribution BatchTtpPredictor::distribution_of(
    const TtpInferenceBatch& batch, const TtpInferenceBatch::Slot& slot,
    const int64_t size_bytes) const {
  abr::TxTimeDistribution dist =
      ttp_distribution_of(model_->config(), batch.probs(slot), size_bytes);
  if (point_estimate_) {
    return point_estimate_of(dist);
  }
  return dist;
}

abr::TxTimeDistribution BatchTtpPredictor::predict(const int step,
                                                   const int64_t size_bytes) {
  // Scalar fallback (direct predictor use outside an MPC plan): a
  // one-query batch keeps the answers identical to the fused path.
  const abr::TxTimeQuery query{step, size_bytes};
  local_batch_.clear();
  enqueue_rows({&query, 1}, local_batch_, local_slots_);
  local_batch_.run();
  return distribution_of(local_batch_, local_slots_[0], size_bytes);
}

void BatchTtpPredictor::predict_batch(
    const std::span<const abr::TxTimeQuery> queries,
    std::vector<abr::TxTimeDistribution>& out) {
  if (staged_batch_ != nullptr) {
    // Fleet path: this decision's rows were staged into the shared batch,
    // which the engine has already run; serve straight from it.
    TtpInferenceBatch& batch = *staged_batch_;
    staged_batch_ = nullptr;
    require(queries.size() == staged_queries_.size(),
            "BatchTtpPredictor: staged decision does not match the plan");
    out.clear();
    out.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); i++) {
      require(queries[i].step == staged_queries_[i].step &&
                  queries[i].size_bytes == staged_queries_[i].size_bytes,
              "BatchTtpPredictor: staged query order mismatch");
      out.push_back(
          distribution_of(batch, staged_slots_[i], queries[i].size_bytes));
    }
    staged_queries_.clear();
    staged_slots_.clear();
    return;
  }

  // Standalone path: fuse this decision's rows locally — one GEMM per
  // step-network instead of one matrix-vector pass per (step, rung).
  local_batch_.clear();
  enqueue_rows(queries, local_batch_, local_slots_);
  local_batch_.run();
  out.clear();
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); i++) {
    out.push_back(
        distribution_of(local_batch_, local_slots_[i], queries[i].size_bytes));
  }
}

void BatchTtpPredictor::on_chunk_complete(const abr::ChunkRecord& record) {
  history_.record(static_cast<double>(record.size_bytes) / 1e6,
                  record.transmission_time_s, model_->config().history);
}

void BatchTtpPredictor::reset_session() {
  history_.clear();
  staged_batch_ = nullptr;
  staged_queries_.clear();
  staged_slots_.clear();
}

void BatchTtpPredictor::stage(
    const abr::AbrObservation& obs,
    const std::span<const media::ChunkOptions> lookahead, const int horizon,
    TtpInferenceBatch& batch) {
  require(!lookahead.empty(), "BatchTtpPredictor::stage: empty lookahead");
  current_tcp_ = obs.tcp;
  // The shared enumeration keeps this list identical to the one
  // StochasticMpc::plan will issue for the same decision.
  abr::enumerate_tx_time_queries(lookahead, horizon, staged_queries_);
  enqueue_rows(staged_queries_, batch, staged_slots_);
  staged_batch_ = &batch;
}

}  // namespace puffer::fugu
