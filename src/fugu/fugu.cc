#include "fugu/fugu.hh"

#include "fugu/ttp_predictor.hh"

namespace puffer::fugu {

std::unique_ptr<abr::MpcAbr> make_fugu(std::shared_ptr<const TtpModel> model,
                                       std::string name,
                                       const bool point_estimate,
                                       const abr::MpcConfig mpc_config) {
  auto predictor =
      std::make_unique<TtpPredictor>(std::move(model), point_estimate);
  return std::make_unique<abr::MpcAbr>(std::move(name), std::move(predictor),
                                       mpc_config);
}

}  // namespace puffer::fugu
