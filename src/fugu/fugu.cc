#include "fugu/fugu.hh"

#include "fugu/batch_ttp.hh"

namespace puffer::fugu {

std::unique_ptr<abr::MpcAbr> make_fugu(std::shared_ptr<const TtpModel> model,
                                       std::string name,
                                       const bool point_estimate,
                                       const abr::MpcConfig mpc_config) {
  // The batched predictor answers every deployment the scalar TtpPredictor
  // used to, bit-identically, with one fused forward pass per step-network
  // per decision (and one per fleet batch inside the fleet engine).
  auto predictor =
      std::make_unique<BatchTtpPredictor>(std::move(model), point_estimate);
  return std::make_unique<abr::MpcAbr>(std::move(name), std::move(predictor),
                                       mpc_config);
}

}  // namespace puffer::fugu
