#include "fugu/resilient.hh"

#include <utility>

#include "fugu/batch_ttp.hh"
#include "fugu/fugu.hh"
#include "util/require.hh"

namespace puffer::fugu {

ResilientPredictor::ResilientPredictor(
    std::unique_ptr<abr::TxTimePredictor> primary, ResilienceConfig config,
    const double failure_probability, const uint64_t fault_seed)
    : primary_(std::move(primary)),
      config_(config),
      failure_probability_(failure_probability),
      fault_seed_(fault_seed) {
  require(primary_ != nullptr, "ResilientPredictor: null primary predictor");
  require(failure_probability_ >= 0.0 && failure_probability_ <= 1.0,
          "ResilientPredictor: failure probability must be in [0, 1]");
  require(config_.engage_after_failures >= 1,
          "ResilientPredictor: engage_after_failures must be >= 1");
  require(config_.repromote_after_successes >= 1,
          "ResilientPredictor: repromote_after_successes must be >= 1");
}

void ResilientPredictor::begin_session(const uint64_t run_seed) {
  session_stream_ = sim::FaultPlan{true, fault_seed_, {}}
                        .rng(sim::kFaultTtpInference)
                        .split(run_seed);
}

void ResilientPredictor::begin_decision(const abr::AbrObservation& obs) {
  // Draw this decision's fault before consulting either predictor. Both
  // predictors see every begin_decision/on_chunk_complete so the fallback's
  // throughput history is warm the instant it is needed.
  stats_.decisions += 1;
  current_failed_ =
      session_stream_.has_value() && failure_probability_ > 0.0 &&
      session_stream_->bernoulli(failure_probability_);
  if (current_failed_) {
    stats_.failures += 1;
    consecutive_failures_ += 1;
    consecutive_successes_ = 0;
    if (!stats_.degraded &&
        consecutive_failures_ >= config_.engage_after_failures) {
      stats_.degraded = true;
      stats_.engagements += 1;
    }
  } else {
    consecutive_successes_ += 1;
    consecutive_failures_ = 0;
    if (stats_.degraded &&
        consecutive_successes_ >= config_.repromote_after_successes) {
      stats_.degraded = false;
    }
  }
  primary_->begin_decision(obs);
  fallback_.begin_decision(obs);
  if (&active() == &fallback_) {
    stats_.fallback_decisions += 1;
  }
}

abr::TxTimePredictor& ResilientPredictor::active() {
  return (current_failed_ || stats_.degraded)
             ? static_cast<abr::TxTimePredictor&>(fallback_)
             : *primary_;
}

abr::TxTimeDistribution ResilientPredictor::predict(const int step,
                                                    const int64_t size_bytes) {
  return active().predict(step, size_bytes);
}

void ResilientPredictor::predict_batch(
    const std::span<const abr::TxTimeQuery> queries,
    std::vector<abr::TxTimeDistribution>& out) {
  active().predict_batch(queries, out);
}

void ResilientPredictor::on_chunk_complete(const abr::ChunkRecord& record) {
  primary_->on_chunk_complete(record);
  fallback_.on_chunk_complete(record);
}

void ResilientPredictor::reset_session() {
  primary_->reset_session();
  fallback_.reset_session();
  session_stream_.reset();
  current_failed_ = false;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
  stats_ = SessionFaultStats{};
}

std::unique_ptr<abr::MpcAbr> make_resilient_fugu(
    std::shared_ptr<const TtpModel> model, const sim::FaultPlan& faults,
    const ResilienceConfig resilience, std::string name,
    const bool point_estimate, const abr::MpcConfig mpc_config) {
  const double p = faults.probability(sim::kFaultTtpInference);
  if (!faults.enabled || p <= 0.0) {
    return make_fugu(std::move(model), std::move(name), point_estimate,
                     mpc_config);
  }
  auto primary =
      std::make_unique<BatchTtpPredictor>(std::move(model), point_estimate);
  auto wrapped = std::make_unique<ResilientPredictor>(
      std::move(primary), resilience, p, faults.seed);
  return std::make_unique<abr::MpcAbr>(std::move(name), std::move(wrapped),
                                       mpc_config);
}

}  // namespace puffer::fugu
