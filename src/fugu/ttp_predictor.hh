#ifndef PUFFER_FUGU_TTP_PREDICTOR_HH
#define PUFFER_FUGU_TTP_PREDICTOR_HH

#include <memory>

#include "abr/predictor.hh"
#include "fugu/ttp.hh"

namespace puffer::fugu {

/// Adapts a trained TtpModel to the TxTimePredictor interface that
/// StochasticMpc consumes. Maintains the rolling per-connection history of
/// chunk sizes / transmission times and snapshots tcp_info at each decision.
///
/// `point_estimate` collapses the distribution to its max-likelihood bin —
/// the paper's "Point Estimate" ablation, whose deployed rebuffering ratio
/// was 3-9x worse (section 4.6).
class TtpPredictor final : public abr::TxTimePredictor {
 public:
  explicit TtpPredictor(std::shared_ptr<const TtpModel> model,
                        bool point_estimate = false);

  void begin_decision(const abr::AbrObservation& obs) override;
  abr::TxTimeDistribution predict(int step, int64_t size_bytes) override;
  void on_chunk_complete(const abr::ChunkRecord& record) override;
  void reset_session() override;

  [[nodiscard]] const TtpModel& model() const { return *model_; }
  [[nodiscard]] const TtpHistory& history() const { return history_; }

 private:
  std::shared_ptr<const TtpModel> model_;
  bool point_estimate_;
  TtpHistory history_;
  net::TcpInfo current_tcp_;
  TtpScratch scratch_;  ///< reused across predict() calls (no per-call alloc)
};

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_TTP_PREDICTOR_HH
