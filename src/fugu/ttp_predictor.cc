#include "fugu/ttp_predictor.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::fugu {

TtpPredictor::TtpPredictor(std::shared_ptr<const TtpModel> model,
                           const bool point_estimate)
    : model_(std::move(model)), point_estimate_(point_estimate) {
  require(model_ != nullptr, "TtpPredictor: model required");
}

void TtpPredictor::begin_decision(const abr::AbrObservation& obs) {
  current_tcp_ = obs.tcp;
}

abr::TxTimeDistribution TtpPredictor::predict(const int step,
                                              const int64_t size_bytes) {
  abr::TxTimeDistribution dist =
      model_->predict_tx_time(step, history_, current_tcp_, size_bytes,
                              scratch_);
  if (point_estimate_) {
    return point_estimate_of(dist);
  }
  return dist;
}

void TtpPredictor::on_chunk_complete(const abr::ChunkRecord& record) {
  history_.record(static_cast<double>(record.size_bytes) / 1e6,
                  record.transmission_time_s, model_->config().history);
}

void TtpPredictor::reset_session() {
  history_.clear();
}

}  // namespace puffer::fugu
