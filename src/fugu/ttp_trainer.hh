#ifndef PUFFER_FUGU_TTP_TRAINER_HH
#define PUFFER_FUGU_TTP_TRAINER_HH

#include <optional>

#include "fugu/dataset.hh"
#include "fugu/ttp.hh"

namespace puffer::fugu {

/// Supervised-training configuration (paper section 4.3): cross-entropy on
/// discretized transmission times, 14-day sliding window with more weight on
/// recent days, shuffled samples, warm start from the previous model.
struct TtpTrainConfig {
  int epochs = 6;
  int batch_size = 256;
  double learning_rate = 3e-3;
  int window_days = 14;
  double recency_decay = 0.85;  ///< per-day weight multiplier
  size_t max_examples_per_step = 50000;
};

struct TtpTrainReport {
  std::vector<double> loss_per_epoch;  ///< mean over steps, per epoch
  size_t examples_per_step = 0;
};

/// One featurized training/evaluation example for a single horizon step.
struct TtpExample {
  std::vector<float> features;
  int label = 0;
  float weight = 1.0f;
  double true_tx_time_s = 0.0;
  double size_mb = 0.0;
};

/// Build step-`step` examples from raw stream logs: features are the state
/// at chunk i (history through i-1, tcp_info at i, proposed size of chunk
/// i+step); the label is the observed transmission time of chunk i+step.
std::vector<TtpExample> build_examples(const TtpConfig& config,
                                       const TtpDataset& dataset, int step,
                                       int current_day, double recency_decay);

/// Train a TTP (optionally warm-started from `warm_start`, which must share
/// the same config) on the dataset's last `window_days` days.
TtpModel train_ttp(const TtpConfig& config, const TtpDataset& dataset,
                   int current_day, const TtpTrainConfig& train_config,
                   Rng& rng, const TtpModel* warm_start = nullptr,
                   TtpTrainReport* report = nullptr);

/// Held-out evaluation of a TTP's step-0 networks (Figure 7's metric family).
struct TtpEvaluation {
  double cross_entropy = 0.0;   ///< nats, lower is better
  double top1_accuracy = 0.0;   ///< probability the argmax bin is correct
  double rmse_expected_s = 0.0; ///< RMSE of the distribution's mean
  double rmse_point_s = 0.0;    ///< RMSE of the max-likelihood point estimate
  size_t examples = 0;
};

TtpEvaluation evaluate_ttp(const TtpModel& model, const TtpDataset& dataset);

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_TTP_TRAINER_HH
