#include "fugu/ttp.hh"

#include <algorithm>
#include <cmath>

#include "nn/loss.hh"
#include "util/require.hh"

namespace puffer::fugu {

namespace {

// Feature normalization scales: keep inputs roughly O(1).
constexpr double kSizeScaleMb = 1.0;
constexpr double kTimeScaleS = 1.0;
constexpr double kCwndScale = 100.0;        // packets
constexpr double kRttScaleS = 0.1;          // 100 ms
constexpr double kRateScaleBps = 1.25e6;    // 10 Mbit/s

constexpr double kThroughputBinLoBps = 0.05e6 / 8.0;   // 0.05 Mbit/s
constexpr double kThroughputBinHiBps = 500.0e6 / 8.0;  // 500 Mbit/s

}  // namespace

int ttp_bin_of(const double tx_time_s) {
  if (tx_time_s < 0.25) {
    return 0;
  }
  if (tx_time_s >= 9.75) {
    return kTtpBins - 1;
  }
  return 1 + static_cast<int>((tx_time_s - 0.25) / 0.5);
}

double ttp_bin_midpoint(const int bin) {
  require(bin >= 0 && bin < kTtpBins, "ttp_bin_midpoint: bad bin");
  if (bin == 0) {
    return 0.125;
  }
  if (bin == kTtpBins - 1) {
    return 10.5;
  }
  return 0.5 * bin;  // [0.25+0.5(b-1), 0.25+0.5b) has midpoint 0.5b
}

int throughput_bin_of(const double throughput_bps) {
  const double clamped =
      std::clamp(throughput_bps, kThroughputBinLoBps, kThroughputBinHiBps);
  const double fraction = std::log(clamped / kThroughputBinLoBps) /
                          std::log(kThroughputBinHiBps / kThroughputBinLoBps);
  return std::min(kTtpBins - 1, static_cast<int>(fraction * kTtpBins));
}

double throughput_bin_midpoint_bps(const int bin) {
  require(bin >= 0 && bin < kTtpBins, "throughput_bin_midpoint: bad bin");
  const double step = std::log(kThroughputBinHiBps / kThroughputBinLoBps) /
                      kTtpBins;
  return kThroughputBinLoBps * std::exp((bin + 0.5) * step);
}

int TtpConfig::input_dim() const {
  int dim = 2 * history;
  if (use_tcp_info) {
    dim += 5;
  }
  if (target == TtpTarget::kTransmissionTime) {
    dim += 1;  // proposed chunk size
  }
  return dim;
}

void TtpHistory::record(const double size_mb, const double tx_time_s,
                        const int max_history) {
  sizes_mb.push_back(size_mb);
  tx_times_s.push_back(tx_time_s);
  while (sizes_mb.size() > static_cast<size_t>(max_history)) {
    sizes_mb.pop_front();
  }
  while (tx_times_s.size() > static_cast<size_t>(max_history)) {
    tx_times_s.pop_front();
  }
}

void TtpHistory::clear() {
  sizes_mb.clear();
  tx_times_s.clear();
}

TtpModel::TtpModel(TtpConfig config, const uint64_t seed)
    : config_(std::move(config)) {
  require(config_.history >= 1, "TtpModel: history must be >= 1");
  require(config_.horizon >= 1, "TtpModel: horizon must be >= 1");
  Rng rng{seed};
  std::vector<size_t> sizes;
  sizes.push_back(static_cast<size_t>(config_.input_dim()));
  for (const size_t h : config_.hidden_layers) {
    sizes.push_back(h);
  }
  sizes.push_back(kTtpBins);
  for (int k = 0; k < config_.horizon; k++) {
    networks_.emplace_back(sizes, rng.engine()());
    // Small-init the output layer: the untrained predictor then emits a
    // near-uniform distribution (cross-entropy ~ ln 21) instead of random
    // confident garbage, which also speeds early training markedly.
    networks_.back().weights().back().scale_inplace(0.05f);
  }
}

std::vector<float> ttp_featurize(const TtpConfig& config,
                                 const TtpHistory& history,
                                 const net::TcpInfo& tcp,
                                 const int64_t proposed_size_bytes) {
  std::vector<float> features;
  ttp_featurize_into(config, history, tcp, proposed_size_bytes, features);
  return features;
}

void ttp_featurize_into(const TtpConfig& config, const TtpHistory& history,
                        const net::TcpInfo& tcp,
                        const int64_t proposed_size_bytes,
                        std::vector<float>& features) {
  features.clear();
  features.reserve(static_cast<size_t>(config.input_dim()));

  // Past chunk sizes (oldest first, left-padded with zeros).
  const int t = config.history;
  for (int i = 0; i < t; i++) {
    const int from_end = t - i;
    if (static_cast<size_t>(from_end) <= history.sizes_mb.size()) {
      features.push_back(static_cast<float>(
          history.sizes_mb[history.sizes_mb.size() -
                           static_cast<size_t>(from_end)] /
          kSizeScaleMb));
    } else {
      features.push_back(0.0f);
    }
  }
  // Past transmission times.
  for (int i = 0; i < t; i++) {
    const int from_end = t - i;
    if (static_cast<size_t>(from_end) <= history.tx_times_s.size()) {
      features.push_back(static_cast<float>(
          std::min(history.tx_times_s[history.tx_times_s.size() -
                                      static_cast<size_t>(from_end)] /
                       kTimeScaleS,
                   20.0)));
    } else {
      features.push_back(0.0f);
    }
  }
  if (config.use_tcp_info) {
    features.push_back(
        static_cast<float>(std::min(tcp.cwnd_pkts / kCwndScale, 20.0)));
    features.push_back(
        static_cast<float>(std::min(tcp.in_flight_pkts / kCwndScale, 20.0)));
    features.push_back(
        static_cast<float>(std::min(tcp.min_rtt_s / kRttScaleS, 20.0)));
    features.push_back(
        static_cast<float>(std::min(tcp.srtt_s / kRttScaleS, 20.0)));
    features.push_back(static_cast<float>(
        std::min(tcp.delivery_rate_bps / kRateScaleBps, 50.0)));
  }
  if (config.target == TtpTarget::kTransmissionTime) {
    features.push_back(
        static_cast<float>(static_cast<double>(proposed_size_bytes) / 1e6));
  }
  require(features.size() == static_cast<size_t>(config.input_dim()),
          "ttp_featurize: dimension mismatch");
}

abr::TxTimeDistribution ttp_distribution_of(const TtpConfig& config,
                                            const std::span<const float> probs,
                                            const int64_t proposed_size_bytes) {
  require(probs.size() == static_cast<size_t>(kTtpBins),
          "ttp_distribution_of: wrong bin count");
  abr::TxTimeDistribution dist;
  dist.reserve(kTtpBins);
  for (int bin = 0; bin < kTtpBins; bin++) {
    double time_s;
    if (config.target == TtpTarget::kTransmissionTime) {
      time_s = ttp_bin_midpoint(bin);
    } else {
      // Throughput ablation: convert a throughput outcome to a transmission
      // time via t = size / throughput (linear in size, which is exactly the
      // modeling deficiency the paper calls out).
      time_s = static_cast<double>(proposed_size_bytes) /
               throughput_bin_midpoint_bps(bin);
      time_s = std::clamp(time_s, 1e-3, 60.0);
    }
    dist.push_back(
        {time_s, static_cast<double>(probs[static_cast<size_t>(bin)])});
  }
  return dist;
}

abr::TxTimeDistribution point_estimate_of(const abr::TxTimeDistribution& dist) {
  require(!dist.empty(), "point_estimate_of: empty distribution");
  const auto best = std::max_element(
      dist.begin(), dist.end(),
      [](const abr::TxTimeOutcome& a, const abr::TxTimeOutcome& b) {
        return a.probability < b.probability;
      });
  return {abr::TxTimeOutcome{best->time_s, 1.0}};
}

int ttp_label_of(const TtpConfig& config, const double tx_time_s,
                 const double size_mb) {
  if (config.target == TtpTarget::kTransmissionTime) {
    return ttp_bin_of(tx_time_s);
  }
  const double throughput_bps = size_mb * 1e6 / std::max(tx_time_s, 1e-3);
  return throughput_bin_of(throughput_bps);
}

std::vector<float> TtpModel::featurize(const TtpHistory& history,
                                       const net::TcpInfo& tcp,
                                       const int64_t proposed_size_bytes) const {
  return ttp_featurize(config_, history, tcp, proposed_size_bytes);
}

std::vector<float> TtpModel::predict_bins(
    const int step, const std::vector<float>& features) const {
  nn::ForwardScratch scratch;
  const std::span<const float> probs = predict_bins(step, features, scratch);
  return {probs.begin(), probs.end()};
}

std::span<const float> TtpModel::predict_bins(
    const int step, const std::span<const float> features,
    nn::ForwardScratch& scratch) const {
  const int clamped_step = std::clamp(step, 0, config_.horizon - 1);
  const std::span<float> logits =
      networks_[static_cast<size_t>(clamped_step)].forward_one(features,
                                                               scratch);
  nn::softmax_inplace(logits);
  return logits;
}

abr::TxTimeDistribution TtpModel::predict_tx_time(
    const int step, const TtpHistory& history, const net::TcpInfo& tcp,
    const int64_t proposed_size_bytes) const {
  TtpScratch scratch;
  return predict_tx_time(step, history, tcp, proposed_size_bytes, scratch);
}

abr::TxTimeDistribution TtpModel::predict_tx_time(
    const int step, const TtpHistory& history, const net::TcpInfo& tcp,
    const int64_t proposed_size_bytes, TtpScratch& scratch) const {
  ttp_featurize_into(config_, history, tcp, proposed_size_bytes,
                     scratch.features);
  const std::span<const float> probs =
      predict_bins(step, scratch.features, scratch.forward);
  return ttp_distribution_of(config_, probs, proposed_size_bytes);
}

int TtpModel::label_of(const double tx_time_s, const double size_mb) const {
  return ttp_label_of(config_, tx_time_s, size_mb);
}

}  // namespace puffer::fugu
