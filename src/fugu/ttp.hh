#ifndef PUFFER_FUGU_TTP_HH
#define PUFFER_FUGU_TTP_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "abr/predictor.hh"
#include "net/tcp_info.hh"
#include "nn/mlp.hh"
#include "util/rng.hh"

namespace puffer::fugu {

/// Number of past chunks the TTP conditions on (t = 8, paper section 4.5).
inline constexpr int kTtpHistory = 8;

/// Number of discretized transmission-time bins: [0, 0.25), [0.25, 0.75),
/// ..., [9.75, inf) — 0.5 s bins except the first and last (section 4.5).
inline constexpr int kTtpBins = 21;

/// Map a transmission time to its bin.
int ttp_bin_of(double tx_time_s);
/// Representative value (midpoint) of a bin, used when converting the
/// distribution into planning outcomes; the open last bin uses 10.5 s.
double ttp_bin_midpoint(int bin);

/// Bins for the "Throughput Predictor" ablation (Figure 7): 21 log-spaced
/// throughput bins over 0.05..500 Mbit/s; transmission time is then derived
/// as size / throughput, ignoring the nonlinear size dependence the real TTP
/// captures.
int throughput_bin_of(double throughput_bps);
double throughput_bin_midpoint_bps(int bin);

/// What the network predicts — the real TTP predicts transmission time of a
/// specific proposed chunk; the ablation predicts throughput only.
enum class TtpTarget { kTransmissionTime, kThroughput };

/// Architecture/featurization knobs. The defaults are the paper's TTP; the
/// other settings produce the Figure 7 ablation variants.
struct TtpConfig {
  int history = kTtpHistory;
  bool use_tcp_info = true;
  TtpTarget target = TtpTarget::kTransmissionTime;
  std::vector<size_t> hidden_layers = {64, 64};  ///< {} = linear model
  int horizon = 5;  ///< one network per future step (section 4.2)

  [[nodiscard]] int input_dim() const;
};

/// Rolling history of past chunk transfers, maintained per connection.
struct TtpHistory {
  std::deque<double> sizes_mb;
  std::deque<double> tx_times_s;

  void record(double size_mb, double tx_time_s, int max_history);
  void clear();
};

/// Build the TTP input vector for a given config. Featurization depends only
/// on the config (not on network weights), so training-data pipelines can
/// featurize without a model instance.
std::vector<float> ttp_featurize(const TtpConfig& config,
                                 const TtpHistory& history,
                                 const net::TcpInfo& tcp,
                                 int64_t proposed_size_bytes);

/// Same, into a caller-owned buffer — the allocation-free form the per-chunk
/// hot paths use (`out` is cleared and refilled, keeping its capacity).
void ttp_featurize_into(const TtpConfig& config, const TtpHistory& history,
                        const net::TcpInfo& tcp, int64_t proposed_size_bytes,
                        std::vector<float>& out);

/// Convert one post-softmax bin row into a transmission-time distribution
/// (handling the throughput-ablation conversion t = size / throughput).
abr::TxTimeDistribution ttp_distribution_of(const TtpConfig& config,
                                            std::span<const float> probs,
                                            int64_t proposed_size_bytes);

/// Collapse a distribution to its max-likelihood outcome — the paper's
/// "Point Estimate" ablation (section 4.6).
abr::TxTimeDistribution point_estimate_of(const abr::TxTimeDistribution& dist);

/// Training label for an observed transfer under a given config.
int ttp_label_of(const TtpConfig& config, double tx_time_s, double size_mb);

/// Reusable buffers for repeated single-row TTP inference (the legacy
/// scalar path; the batched path keeps its buffers in TtpInferenceBatch).
struct TtpScratch {
  std::vector<float> features;
  nn::ForwardScratch forward;
};

/// The Transmission Time Predictor: `horizon` fully-connected networks, one
/// per future step, each mapping (past chunk sizes, past transmission times,
/// tcp_info, proposed size) to a probability distribution over transmission
/// time (section 4.2).
class TtpModel {
 public:
  TtpModel(TtpConfig config, uint64_t seed);

  [[nodiscard]] const TtpConfig& config() const { return config_; }

  /// Build the input feature vector.
  [[nodiscard]] std::vector<float> featurize(const TtpHistory& history,
                                             const net::TcpInfo& tcp,
                                             int64_t proposed_size_bytes) const;

  /// Full probability distribution over bins for horizon step `step`.
  [[nodiscard]] std::vector<float> predict_bins(
      int step, const std::vector<float>& features) const;

  /// Scratch-reusing variant: no allocation once `scratch` has warmed to
  /// shape. The returned span aliases the scratch and is valid until its
  /// next use; values are bit-identical to the allocating overload.
  std::span<const float> predict_bins(int step,
                                      std::span<const float> features,
                                      nn::ForwardScratch& scratch) const;

  /// Distribution over transmission times for a proposed chunk, already
  /// converted from bins (and from throughput bins for the ablation).
  [[nodiscard]] abr::TxTimeDistribution predict_tx_time(
      int step, const TtpHistory& history, const net::TcpInfo& tcp,
      int64_t proposed_size_bytes) const;

  /// Scratch-reusing variant of predict_tx_time (the per-chunk hot path of
  /// the scalar TtpPredictor).
  abr::TxTimeDistribution predict_tx_time(int step, const TtpHistory& history,
                                          const net::TcpInfo& tcp,
                                          int64_t proposed_size_bytes,
                                          TtpScratch& scratch) const;

  [[nodiscard]] int label_of(double tx_time_s, double size_mb) const;

  std::vector<nn::Mlp>& networks() { return networks_; }
  [[nodiscard]] const std::vector<nn::Mlp>& networks() const {
    return networks_;
  }

 private:
  TtpConfig config_;
  std::vector<nn::Mlp> networks_;  ///< one per horizon step
};

}  // namespace puffer::fugu

#endif  // PUFFER_FUGU_TTP_HH
