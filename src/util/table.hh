#ifndef PUFFER_UTIL_TABLE_HH
#define PUFFER_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace puffer {

/// Minimal fixed-width text table, used by the bench binaries to print
/// paper-style tables (e.g. Figure 1) to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; headers underlined.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (for machine consumption / plotting).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string format_fixed(double value, int decimals);
std::string format_percent(double fraction, int decimals);

}  // namespace puffer

#endif  // PUFFER_UTIL_TABLE_HH
