#ifndef PUFFER_UTIL_REQUIRE_HH
#define PUFFER_UTIL_REQUIRE_HH

#include <stdexcept>
#include <string>
#include <string_view>

namespace puffer {

/// Thrown when a precondition or invariant stated via `require()` fails.
class RequirementError : public std::logic_error {
 public:
  explicit RequirementError(const std::string& what) : std::logic_error(what) {}
};

/// Check a precondition; throws RequirementError with `message` on failure.
/// Used instead of assert() so that violations are detected in release builds
/// too (simulation correctness depends on these invariants).
inline void require(const bool condition, const std::string_view message) {
  if (!condition) {
    throw RequirementError(std::string{message});
  }
}

}  // namespace puffer

#endif  // PUFFER_UTIL_REQUIRE_HH
