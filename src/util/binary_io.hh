#ifndef PUFFER_UTIL_BINARY_IO_HH
#define PUFFER_UTIL_BINARY_IO_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "util/require.hh"

namespace puffer {

/// Little-endian fixed-width primitives shared by every binary format in the
/// repo (nn model files, insitu datasets, campaign checkpoints). Readers
/// raise RequirementError on truncation, tagged with the caller's context so
/// the failing format is identifiable.

inline void write_u64(std::ostream& out, const uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline uint64_t read_u64(std::istream& in, const std::string_view context) {
  uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  require(bool(in), std::string{context} + ": truncated stream");
  return value;
}

inline void write_f64(std::ostream& out, const double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline double read_f64(std::istream& in, const std::string_view context) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  require(bool(in), std::string{context} + ": truncated stream");
  return value;
}

/// Length-prefixed string. `max_size` bounds what the reader will accept —
/// pick the writer-side invariant of the format so a corrupt length fails
/// instead of allocating.
inline void write_string(std::ostream& out, const std::string& text) {
  write_u64(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

inline std::string read_string(std::istream& in,
                               const std::string_view context,
                               const size_t max_size) {
  const uint64_t size = read_u64(in, context);
  require(size <= max_size,
          std::string{context} + ": implausible string length");
  std::string text(size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(size));
  require(bool(in), std::string{context} + ": truncated stream");
  return text;
}

}  // namespace puffer

#endif  // PUFFER_UTIL_BINARY_IO_HH
