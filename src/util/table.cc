#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/require.hh"

namespace puffer {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table: row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      out << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (const size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) {
        out << ',';
      }
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

std::string format_fixed(const double value, const int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_percent(const double fraction, const int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

}  // namespace puffer
