#ifndef PUFFER_UTIL_THREAD_ANNOTATIONS_HH
#define PUFFER_UTIL_THREAD_ANNOTATIONS_HH

/// Thread-safety annotations, following the clang -Wthread-safety attribute
/// vocabulary (the same scheme Abseil ships). Under clang the macros expand
/// to real attributes and the CI clang job compiles with
/// `-Wthread-safety -Werror`, turning lock-discipline violations into build
/// failures; under GCC (which has no such analysis) they expand to nothing.
///
/// Two extra macros are documentation-only under every compiler and exist
/// for the determinism linter (tools/detlint, rule R6 `unannotated-sync`),
/// which requires every mutex/atomic member to state its protocol:
///
///   GUARDS(...)       on a mutex member: the fields this mutex protects.
///                     (The inverse of GUARDED_BY; clang needs only the
///                     per-field direction, humans read better this way.)
///   ATOMIC_SAFE(...)  on a std::atomic member: why lock-free access keeps
///                     the bitwise-determinism contract (e.g. monotonic
///                     flag whose release pairs with an acquire).
///
/// Use util::Mutex / util::MutexLock / util::CondVar (util/sync.hh) rather
/// than std::mutex directly: the std:: types carry no attributes in
/// libstdc++, so clang cannot see their acquire/release and every
/// GUARDED_BY access would falsely warn.

#if defined(__clang__) && !defined(SWIG)
#define PUFFER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PUFFER_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) PUFFER_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY PUFFER_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) PUFFER_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) PUFFER_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PUFFER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PUFFER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PUFFER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PUFFER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PUFFER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) PUFFER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PUFFER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PUFFER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) PUFFER_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  PUFFER_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only (see header comment): consumed by detlint R6, empty
/// under every compiler.
#define GUARDS(...)
#define ATOMIC_SAFE(...)

#endif  // PUFFER_UTIL_THREAD_ANNOTATIONS_HH
