#include "util/rng.hh"

#include <cmath>

#include "util/require.hh"

namespace puffer {

uint64_t stable_hash(const std::string_view text) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t mix64(uint64_t value) {
  value += 0x9e3779b97f4a7c15ull;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return value ^ (value >> 31);
}

Rng::Rng(const uint64_t seed) : seed_(seed), engine_(mix64(seed)) {}

Rng Rng::split(const std::string_view label) const {
  return Rng{mix64(seed_ ^ stable_hash(label))};
}

Rng Rng::split(const uint64_t index) const {
  return Rng{mix64(seed_ + 0x632be59bd9b4e019ull * (index + 1))};
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::uniform(const double lo, const double hi) {
  require(lo <= hi, "uniform: lo must be <= hi");
  return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

int64_t Rng::uniform_int(const int64_t lo, const int64_t hi) {
  require(lo <= hi, "uniform_int: lo must be <= hi");
  return std::uniform_int_distribution<int64_t>{lo, hi}(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::normal(const double mean, const double stddev) {
  return std::normal_distribution<double>{mean, stddev}(engine_);
}

double Rng::lognormal(const double mu, const double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

double Rng::exponential(const double rate) {
  require(rate > 0.0, "exponential: rate must be positive");
  return std::exponential_distribution<double>{rate}(engine_);
}

double Rng::pareto(const double xm, const double alpha) {
  require(xm > 0.0 && alpha > 0.0, "pareto: xm and alpha must be positive");
  const double u = 1.0 - uniform();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(const double p) {
  return uniform() < p;
}

size_t Rng::categorical(const std::vector<double>& weights) {
  require(!weights.empty(), "categorical: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "categorical: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "categorical: total weight must be positive");
  double draw = uniform() * total;
  for (size_t i = 0; i < weights.size(); i++) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numerical edge: return last positive index
}

}  // namespace puffer
