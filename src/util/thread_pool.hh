#ifndef PUFFER_UTIL_THREAD_POOL_HH
#define PUFFER_UTIL_THREAD_POOL_HH

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace puffer {

/// A small fixed-size worker pool. Jobs are run in FIFO submission order by
/// whichever worker frees up first; wait() blocks until every submitted job
/// has finished. Used by the experiment layer to shard embarrassingly
/// parallel session loops across cores — determinism is the caller's
/// responsibility (jobs must write to disjoint, pre-indexed slots rather
/// than to shared accumulators).
///
/// Jobs may throw: the exception of the *lowest-submission-index* failing
/// job is captured and rethrown by the next wait() on the calling thread
/// (other exceptions from the same batch are dropped, and the remaining
/// jobs still run). "First" is by submission index, not by wall-clock
/// failure order, so which exception a caller observes is a deterministic
/// function of the submitted work — sharded dispatchers (the fleet engine
/// submits one job per shard, in shard order) surface the same error no
/// matter how the OS schedules the workers. Callers that need every error,
/// or want to cancel outstanding work on the first failure, should catch
/// inside the job instead (see ParallelTrialRunner).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending jobs are still executed first. An exception
  /// captured but never observed via wait() is discarded here (a destructor
  /// cannot rethrow).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job.
  void submit(std::function<void()> job);

  /// Block until every job submitted so far has completed, then rethrow the
  /// exception of the lowest-submission-index job that raised one (if any
  /// did). The pool stays usable after a rethrow; the next wait() batch
  /// starts with a clean error slate.
  void wait();

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits it to report 0 on restricted platforms).
  static int hardware_threads();

 private:
  struct Job {
    int64_t index = 0;  ///< submission sequence number (monotonic)
    std::function<void()> run;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_ GUARDS(queue_, unfinished_, shutting_down_, next_job_index_,
                      first_error_, first_error_index_);
  CondVar work_available_;  ///< signaled on submit() and at shutdown
  CondVar all_done_;        ///< signaled when unfinished_ reaches 0
  std::deque<Job> queue_ GUARDED_BY(mutex_);
  int64_t unfinished_ GUARDED_BY(mutex_) = 0;  ///< queued + running jobs
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  int64_t next_job_index_ GUARDED_BY(mutex_) = 0;
  /// Exception of the lowest-index failing job of the current batch, and
  /// that job's index (so a later-finishing earlier job can displace the
  /// exception a later job recorded first).
  std::exception_ptr first_error_ GUARDED_BY(mutex_);
  int64_t first_error_index_ GUARDED_BY(mutex_) = 0;
};

}  // namespace puffer

#endif  // PUFFER_UTIL_THREAD_POOL_HH
