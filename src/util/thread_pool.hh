#ifndef PUFFER_UTIL_THREAD_POOL_HH
#define PUFFER_UTIL_THREAD_POOL_HH

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace puffer {

/// A small fixed-size worker pool. Jobs are run in FIFO submission order by
/// whichever worker frees up first; wait() blocks until every submitted job
/// has finished. Used by the experiment layer to shard embarrassingly
/// parallel session loops across cores — determinism is the caller's
/// responsibility (jobs must write to disjoint, pre-indexed slots rather
/// than to shared accumulators).
///
/// Jobs may throw: the first exception escaping any job is captured and
/// rethrown by the next wait() on the calling thread (later exceptions from
/// the same batch are dropped, and the remaining jobs still run). Callers
/// that need every error, or want to cancel outstanding work on the first
/// failure, should catch inside the job instead (see ParallelTrialRunner).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending jobs are still executed first. An exception
  /// captured but never observed via wait() is discarded here (a destructor
  /// cannot rethrow).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job.
  void submit(std::function<void()> job);

  /// Block until every job submitted so far has completed, then rethrow the
  /// first exception any of them raised (if one did). The pool stays usable
  /// after a rethrow.
  void wait();

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits it to report 0 on restricted platforms).
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_ GUARDS(queue_, unfinished_, shutting_down_, first_error_);
  CondVar work_available_;  ///< signaled on submit() and at shutdown
  CondVar all_done_;        ///< signaled when unfinished_ reaches 0
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  int64_t unfinished_ GUARDED_BY(mutex_) = 0;  ///< queued + running jobs
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mutex_);  ///< first job exception
};

}  // namespace puffer

#endif  // PUFFER_UTIL_THREAD_POOL_HH
