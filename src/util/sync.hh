#ifndef PUFFER_UTIL_SYNC_HH
#define PUFFER_UTIL_SYNC_HH

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hh"

namespace puffer {

/// std::mutex wrapped with clang -Wthread-safety capability attributes.
/// libstdc++'s std::mutex carries none, so the analysis cannot see its
/// acquire/release; this wrapper is what GUARDED_BY members must name.
/// Same cost as std::mutex — the wrapper is two inline calls.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  /// The wrapped capability itself; annotated at the wrapper level.
  std::mutex mutex_;  // DETLINT-OK(unannotated-sync): this IS the capability — GUARDS/GUARDED_BY apply to users of the wrapper
};

/// Scoped lock over util::Mutex (std::unique_lock underneath, so CondVar
/// can wait on it). Declared SCOPED_CAPABILITY: clang tracks the critical
/// section from construction to destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_{mutex.mutex_} {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with util::Mutex. wait() atomically releases
/// the lock and reacquires it before returning, so from the analysis' (and
/// the caller's) point of view the capability is held across the call —
/// use the classic `while (!predicate()) cv.wait(lock);` form. Predicate
/// lambdas passed into std::condition_variable::wait would be analyzed
/// without the lock context and falsely warn, so this wrapper deliberately
/// offers only the plain wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace puffer

#endif  // PUFFER_UTIL_SYNC_HH
