#ifndef PUFFER_UTIL_RUNNING_STATS_HH
#define PUFFER_UTIL_RUNNING_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace puffer {

/// Single-pass mean/variance accumulator (Welford), optionally weighted.
///
/// Weighted form is used for duration-weighted SSIM statistics as in the
/// paper's primary analysis ("weighting each stream by its duration").
class RunningStats {
 public:
  void add(double value, double weight = 1.0);

  [[nodiscard]] size_t count() const { return count_; }
  [[nodiscard]] double total_weight() const { return total_weight_; }
  [[nodiscard]] double mean() const;
  /// Weighted (population-style) variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the weighted mean (per the paper's "weighted standard
  /// error" formula: effective-sample-size corrected).
  [[nodiscard]] double standard_error() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double total_weight_ = 0.0;
  double total_weight_sq_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // weighted sum of squared deviations
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace puffer

#endif  // PUFFER_UTIL_RUNNING_STATS_HH
