#include "util/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace puffer {

ThreadPool::ThreadPool(const int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  try {
    for (int i = 0; i < n; i++) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A spawn failed (thread-resource exhaustion): shut down the workers
    // already running, else their joinable std::thread destructors would
    // terminate the process instead of letting the exception propagate.
    {
      const MutexLock lock{mutex_};
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const MutexLock lock{mutex_};
    queue_.push_back(std::move(job));
    unfinished_++;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr error;
  {
    MutexLock lock{mutex_};
    while (unfinished_ != 0) {
      all_done_.wait(lock);
    }
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

int ThreadPool::hardware_threads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock{mutex_};
      while (!shutting_down_ && queue_.empty()) {
        work_available_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexLock lock{mutex_};
      if (error && !first_error_) {
        first_error_ = std::move(error);
      }
      unfinished_--;
      if (unfinished_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace puffer
