#include "util/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace puffer {

ThreadPool::ThreadPool(const int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  try {
    for (int i = 0; i < n; i++) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A spawn failed (thread-resource exhaustion): shut down the workers
    // already running, else their joinable std::thread destructors would
    // terminate the process instead of letting the exception propagate.
    {
      const MutexLock lock{mutex_};
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const MutexLock lock{mutex_};
    queue_.push_back(Job{next_job_index_, std::move(job)});
    next_job_index_++;
    unfinished_++;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr error;
  {
    MutexLock lock{mutex_};
    while (unfinished_ != 0) {
      all_done_.wait(lock);
    }
    // Every job submitted so far has finished, so among the batch's
    // failures the lowest submission index has been settled — rethrowing it
    // is deterministic no matter which worker failed first on the clock.
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

int ThreadPool::hardware_threads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lock{mutex_};
      while (!shutting_down_ && queue_.empty()) {
        work_available_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      job.run();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexLock lock{mutex_};
      // Keep the failure of the lowest submission index: a slow early job
      // must displace a fast later one, or the exception wait() observes
      // would depend on thread scheduling order.
      if (error && (!first_error_ || job.index < first_error_index_)) {
        first_error_ = std::move(error);
        first_error_index_ = job.index;
      }
      unfinished_--;
      if (unfinished_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace puffer
