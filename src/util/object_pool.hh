#ifndef PUFFER_UTIL_OBJECT_POOL_HH
#define PUFFER_UTIL_OBJECT_POOL_HH

#include <cstdint>
#include <new>
#include <vector>

#include "util/require.hh"

namespace puffer {

/// Thread-confined recycler of same-size memory blocks. Freed blocks go on
/// a free list and are handed back verbatim on the next allocate(), so a
/// workload that churns through short-lived objects of one type (the fleet
/// engine creates and destroys one session task per arrival, 10^5-10^6 of
/// them per run) performs O(peak concurrency) heap allocations instead of
/// O(session count), and the resident footprint stays flat.
///
/// The block size is locked in by the first allocate() call; mixing sizes
/// is a caller bug and fails loudly. Not synchronized: each instance must
/// be confined to one thread (use a thread_local — the fleet engine
/// allocates and frees every task on the worker that owns its shard, so a
/// thread_local arena never sees a cross-thread free).
class BlockArena {
 public:
  BlockArena() = default;

  ~BlockArena() {
    for (void* block : free_) {
      ::operator delete(block);
    }
  }

  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  void* allocate(const std::size_t size) {
    if (block_size_ == 0) {
      block_size_ = size;
    }
    require(size == block_size_,
            "BlockArena: allocation size does not match the arena's block");
    if (!free_.empty()) {
      void* block = free_.back();
      free_.pop_back();
      return block;
    }
    blocks_created_++;
    return ::operator new(block_size_);
  }

  void deallocate(void* const ptr, const std::size_t size) noexcept {
    // noexcept (operator delete must not throw): a size mismatch here can
    // only follow a same-size allocate(), so handing the block to the free
    // list is always sound; push_back failure would terminate, as any
    // allocation failure inside operator delete would.
    static_cast<void>(size);
    free_.push_back(ptr);
  }

  /// Blocks obtained from the system allocator over the arena's lifetime —
  /// at most the peak number of live objects, however many were churned.
  [[nodiscard]] int64_t blocks_created() const { return blocks_created_; }
  /// Blocks currently parked on the free list.
  [[nodiscard]] int64_t blocks_free() const {
    return static_cast<int64_t>(free_.size());
  }

 private:
  std::size_t block_size_ = 0;
  std::vector<void*> free_;
  int64_t blocks_created_ = 0;
};

}  // namespace puffer

#endif  // PUFFER_UTIL_OBJECT_POOL_HH
