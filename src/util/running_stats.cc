#include "util/running_stats.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer {

void RunningStats::add(const double value, const double weight) {
  require(weight >= 0.0, "RunningStats: weight must be non-negative");
  if (weight == 0.0) {
    return;
  }
  count_++;
  total_weight_ += weight;
  total_weight_sq_ += weight * weight;
  const double delta = value - mean_;
  mean_ += (weight / total_weight_) * delta;
  m2_ += weight * delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const {
  if (count_ < 2 || total_weight_ <= 0.0) {
    return 0.0;
  }
  return m2_ / total_weight_;
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

double RunningStats::standard_error() const {
  if (count_ < 2 || total_weight_ <= 0.0) {
    return 0.0;
  }
  // Effective sample size for weighted data: (sum w)^2 / sum w^2.
  const double n_eff = total_weight_ * total_weight_ / total_weight_sq_;
  if (n_eff <= 1.0) {
    return 0.0;
  }
  const double sample_var = m2_ / total_weight_ * n_eff / (n_eff - 1.0);
  return std::sqrt(sample_var / n_eff);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double combined_weight = total_weight_ + other.total_weight_;
  const double delta = other.mean_ - mean_;
  const double new_mean = mean_ + delta * (other.total_weight_ / combined_weight);
  m2_ += other.m2_ +
         delta * delta * (total_weight_ * other.total_weight_ / combined_weight);
  mean_ = new_mean;
  count_ += other.count_;
  total_weight_ = combined_weight;
  total_weight_sq_ += other.total_weight_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace puffer
