#ifndef PUFFER_UTIL_RNG_HH
#define PUFFER_UTIL_RNG_HH

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace puffer {

/// Deterministic, splittable random-number generator.
///
/// Every stochastic component of the simulator draws from an Rng obtained by
/// splitting a parent Rng with a label, so that (a) experiments are exactly
/// reproducible given a seed, and (b) adding a new consumer of randomness in
/// one module does not perturb the stream seen by other modules.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Derive an independent child generator. The same (parent seed, label)
  /// pair always yields the same child stream.
  [[nodiscard]] Rng split(std::string_view label) const;
  [[nodiscard]] Rng split(uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);
  /// Standard normal.
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with given rate (mean = 1/rate).
  double exponential(double rate);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Sample an index from an (unnormalized) weight vector.
  size_t categorical(const std::vector<double>& weights);

  /// Access to the underlying engine (for std:: distributions/shuffle).
  std::mt19937_64& engine() { return engine_; }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Stable 64-bit hash of a string (FNV-1a), used for seed derivation.
uint64_t stable_hash(std::string_view text);

/// splitmix64 finalizer; good avalanche for combining seeds.
uint64_t mix64(uint64_t value);

}  // namespace puffer

#endif  // PUFFER_UTIL_RNG_HH
