#ifndef PUFFER_ABR_MPC_HH
#define PUFFER_ABR_MPC_HH

#include <vector>

#include "abr/predictor.hh"

namespace puffer::abr {

/// Configuration of the model-predictive controller (paper sections 4.1,
/// 4.4, 4.5): QoE(K) = Q(K) - lambda*|Q(K)-Q(prev)| - mu*stall, horizon
/// H = 5 chunks, value iteration over a discretized buffer.
struct MpcConfig {
  int horizon = 5;
  double lambda = 1.0;           ///< quality-variation weight
  double mu = 100.0;             ///< stall weight (per second of stall)
  double buffer_bin_s = 0.25;    ///< buffer discretization
  double max_buffer_s = 15.0;    ///< client buffer cap
  double chunk_duration_s = 2.002;
  /// Planning drops outcomes below this probability. Kept very small: with
  /// mu = 100, even a low-probability worst-case bin (10.5 s) carries real
  /// expected cost, and hiding tail risk is exactly the failure mode
  /// stochastic MPC exists to avoid (section 4.6).
  double prune_probability = 1e-4;
};

/// Stochastic model-predictive controller: maximizes expected cumulative QoE
/// over the lookahead horizon — exactly the paper's section 4.4 formulation.
/// Works with any TxTimePredictor:
///  * degenerate (point-mass) distributions reproduce classical MPC;
///  * Fugu's probabilistic TTP makes it a stochastic optimal controller.
///
/// plan() runs the dynamic program as an iterative backward sweep over the
/// (step x buffer-bin x previous-rung) lattice: per step, the expectation
/// over transmission-time outcomes is folded once per (action, bin) — with
/// the bin transition and stall cost of each (action, outcome) computed once
/// per plan — and the per-(bin, prev-rung) maximization then reads those
/// folded values. No recursion, no memo probing, and the outcome loop no
/// longer repeats per previous rung (a kNumRungs-fold reduction in
/// expectation work vs. the memoized recursion). plan_reference() retains
/// the original recursive/memoized implementation as the oracle for the
/// equivalence property tests.
class StochasticMpc {
 public:
  explicit StochasticMpc(MpcConfig config = {});

  /// Plan and return the rung to send now. The predictor must already have
  /// been primed with begin_decision(obs).
  int plan(const AbrObservation& obs,
           std::span<const media::ChunkOptions> lookahead,
           TxTimePredictor& predictor);

  /// Retained naive implementation (recursive value iteration with epoch-
  /// tagged memoization — the seed code). Used by tests to pin plan()'s
  /// decisions; the two agree up to floating-point reassociation of the
  /// expectation sum.
  int plan_reference(const AbrObservation& obs,
                     std::span<const media::ChunkOptions> lookahead,
                     TxTimePredictor& predictor);

  [[nodiscard]] const MpcConfig& config() const { return config_; }

  /// Expected total QoE of the most recent plan (for tests/diagnostics).
  [[nodiscard]] double last_plan_value() const { return last_plan_value_; }

  /// Per-action expected total QoE at the root of the most recent plan
  /// (for tests/diagnostics; index = rung).
  [[nodiscard]] std::span<const double> last_root_values() const {
    return root_values_;
  }

 private:
  [[nodiscard]] int buffer_to_bin(double buffer_s) const;
  [[nodiscard]] size_t state_index(int step, int buffer_bin, int prev_rung) const;

  /// Shared plan setup: cache the lookahead, issue all (step x rung)
  /// queries in one predict_batch call, prune the distributions.
  void prepare_plan(std::span<const media::ChunkOptions> lookahead,
                    TxTimePredictor& predictor);

  /// Root maximization over the continuous (un-binned) buffer, reading
  /// step-1 values from `value_of_next` (the V[1] plane, or zeros when the
  /// horizon is 1). Returns the argmax rung and fills root_values_.
  int plan_root(const AbrObservation& obs,
                std::span<const double> value_of_next);

  /// Reference-path recursion (memoized); only plan_reference() calls it.
  double value_of(int step, int buffer_bin, int prev_rung);

  /// QoE of choosing `version` given previous quality `prev_ssim_db`
  /// (variation term skipped when prev_ssim_db < 0) and the stall implied by
  /// transmission time vs. buffer.
  [[nodiscard]] double chunk_qoe(double ssim_db, double prev_ssim_db,
                                 double tx_time_s, double buffer_s) const;

  MpcConfig config_;
  int num_bins_ = 0;

  // Per-plan scratch (kept across calls to avoid reallocation).
  std::span<const media::ChunkOptions> lookahead_;
  int effective_horizon_ = 0;
  std::vector<TxTimeQuery> queries_;               // [step * kNumRungs + rung]
  std::vector<TxTimeDistribution> distributions_;  // [step * kNumRungs + rung]
  double last_plan_value_ = 0.0;
  std::vector<double> root_values_;  // [rung]

  // Iterative-sweep lattice planes, indexed [buffer_bin * kNumRungs + rung].
  std::vector<double> value_cur_;
  std::vector<double> value_next_;
  std::vector<double> expect_base_;  // [action * (num_bins_+1) + bin]
  std::vector<double> switch_penalty_;  // [action * kNumRungs + prev_rung]

  // Reference-path memo (epoch-tagged; untouched by plan()).
  std::vector<double> memo_value_;
  std::vector<uint32_t> memo_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_MPC_HH
