#include "abr/pensieve.hh"

#include <algorithm>

#include "media/ladder.hh"
#include "util/require.hh"

namespace puffer::abr {

void PensieveHistory::reset() {
  last_rung = 0;
  throughputs_mbps.clear();
  download_times_s.clear();
}

void PensieveHistory::record(const double throughput_mbps,
                             const double download_time_s, const int rung) {
  throughputs_mbps.push_back(throughput_mbps);
  download_times_s.push_back(download_time_s);
  while (throughputs_mbps.size() > static_cast<size_t>(kPensieveHistory)) {
    throughputs_mbps.pop_front();
  }
  while (download_times_s.size() > static_cast<size_t>(kPensieveHistory)) {
    download_times_s.pop_front();
  }
  last_rung = rung;
}

std::vector<float> pensieve_state(const PensieveHistory& history,
                                  const double buffer_s,
                                  const media::ChunkOptions& next_menu,
                                  const double remaining_signal) {
  std::vector<float> state;
  pensieve_state_into(history, buffer_s, next_menu, remaining_signal, state);
  return state;
}

void pensieve_state_into(const PensieveHistory& history, const double buffer_s,
                         const media::ChunkOptions& next_menu,
                         const double remaining_signal,
                         std::vector<float>& state) {
  state.clear();
  state.reserve(kPensieveStateDim);

  // Last selected rung, normalized to [0, 1].
  state.push_back(static_cast<float>(history.last_rung) /
                  static_cast<float>(media::kNumRungs - 1));
  // Buffer in tens of seconds (Pensieve's normalization).
  state.push_back(static_cast<float>(buffer_s / 10.0));

  // Past throughputs (Mbit/s / 20, clipped — keeps fast Puffer paths from
  // saturating activations), oldest first, zero-padded on the left.
  for (int i = 0; i < kPensieveHistory; i++) {
    const int from_end = kPensieveHistory - i;
    if (static_cast<size_t>(from_end) <= history.throughputs_mbps.size()) {
      const double raw =
          history.throughputs_mbps[history.throughputs_mbps.size() -
                                   static_cast<size_t>(from_end)];
      state.push_back(static_cast<float>(std::min(raw / 20.0, 5.0)));
    } else {
      state.push_back(0.0f);
    }
  }
  // Past download times (s / 10).
  for (int i = 0; i < kPensieveHistory; i++) {
    const int from_end = kPensieveHistory - i;
    if (static_cast<size_t>(from_end) <= history.download_times_s.size()) {
      const double raw =
          history.download_times_s[history.download_times_s.size() -
                                   static_cast<size_t>(from_end)];
      state.push_back(static_cast<float>(std::min(raw / 10.0, 2.0)));
    } else {
      state.push_back(0.0f);
    }
  }
  // Next-chunk sizes in MB.
  for (const auto& version : next_menu.versions) {
    state.push_back(static_cast<float>(
        static_cast<double>(version.size_bytes) / 1e6));
  }
  state.push_back(static_cast<float>(remaining_signal));

  require(state.size() == static_cast<size_t>(kPensieveStateDim),
          "pensieve_state: dim mismatch");
}

nn::Mlp make_pensieve_actor(const uint64_t seed) {
  nn::Mlp actor{{kPensieveStateDim, 128, 64, media::kNumRungs}, seed};
  // Small-init the policy head: training starts from a near-uniform policy,
  // which is the exploration regime policy-gradient methods expect.
  actor.weights().back().scale_inplace(0.05f);
  return actor;
}

nn::Mlp make_pensieve_critic(const uint64_t seed) {
  nn::Mlp critic{{kPensieveStateDim, 128, 64, 1}, seed};
  critic.weights().back().scale_inplace(0.05f);
  return critic;
}

PensieveAbr::PensieveAbr(nn::Mlp actor, std::string name)
    : actor_(std::move(actor)), name_(std::move(name)) {
  require(actor_.input_size() == kPensieveStateDim,
          "PensieveAbr: actor input dim mismatch");
  require(actor_.output_size() == media::kNumRungs,
          "PensieveAbr: actor output dim mismatch");
}

void PensieveAbr::reset_session() {
  history_.reset();
}

int PensieveAbr::choose_rung(const AbrObservation& obs,
                             const std::span<const media::ChunkOptions> lookahead) {
  require(!lookahead.empty(), "PensieveAbr: need the upcoming chunk menu");
  pensieve_state_into(history_, obs.buffer_s, lookahead[0],
                      /*remaining_signal=*/1.0, state_);
  const std::span<const float> logits = actor_.forward_one(state_, scratch_);
  // Greedy deployment policy.
  const auto best = std::max_element(logits.begin(), logits.end());
  return static_cast<int>(best - logits.begin());
}

void PensieveAbr::on_chunk_complete(const ChunkRecord& record) {
  const double throughput_mbps = static_cast<double>(record.size_bytes) * 8.0 /
                                 1e6 /
                                 std::max(record.transmission_time_s, 1e-3);
  history_.record(throughput_mbps, record.transmission_time_s, record.rung);
}

}  // namespace puffer::abr
