#ifndef PUFFER_ABR_MPC_ABR_HH
#define PUFFER_ABR_MPC_ABR_HH

#include <memory>
#include <string>

#include "abr/abr.hh"
#include "abr/mpc.hh"
#include "abr/predictor.hh"

namespace puffer::abr {

/// ABR scheme = StochasticMpc controller + a pluggable transmission-time
/// predictor. MPC-HM, RobustMPC-HM and Fugu are all instances of this class
/// with different predictors — mirroring the paper's note that "MPC and Fugu
/// even share most of their codebase" (section 5.1).
class MpcAbr final : public AbrAlgorithm {
 public:
  MpcAbr(std::string name, std::unique_ptr<TxTimePredictor> predictor,
         MpcConfig config = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  void reset_session() override;
  int choose_rung(const AbrObservation& obs,
                  std::span<const media::ChunkOptions> lookahead) override;
  void on_chunk_complete(const ChunkRecord& record) override;

  [[nodiscard]] TxTimePredictor& predictor() { return *predictor_; }
  [[nodiscard]] const StochasticMpc& controller() const { return mpc_; }

 private:
  std::string name_;
  std::unique_ptr<TxTimePredictor> predictor_;
  StochasticMpc mpc_;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_MPC_ABR_HH
