#include "abr/predictor.hh"

#include <algorithm>

namespace puffer::abr {

void enumerate_tx_time_queries(
    const std::span<const media::ChunkOptions> lookahead, const int horizon,
    std::vector<TxTimeQuery>& out) {
  const int effective_horizon =
      std::min<int>(horizon, static_cast<int>(lookahead.size()));
  out.clear();
  out.reserve(static_cast<size_t>(effective_horizon) * media::kNumRungs);
  for (int step = 0; step < effective_horizon; step++) {
    for (int rung = 0; rung < media::kNumRungs; rung++) {
      out.push_back({step, lookahead[static_cast<size_t>(step)]
                               .versions[static_cast<size_t>(rung)]
                               .size_bytes});
    }
  }
}

}  // namespace puffer::abr
