#ifndef PUFFER_ABR_PENSIEVE_ENV_HH
#define PUFFER_ABR_PENSIEVE_ENV_HH

#include "abr/pensieve.hh"
#include "media/vbr_source.hh"
#include "net/trace_models.hh"

namespace puffer::abr {

/// Chunk-level training environment for Pensieve, equivalent to the fast
/// simulator the Pensieve authors train in: a chunk's download time is the
/// trace-integral time to move its bytes plus one RTT of latency; the buffer
/// drains in real time, stalls accrue when it empties, and the reward is the
/// bitrate-based QoE_lin the paper says Pensieve optimizes
/// (+bitrate, -stalls, -Δbitrate; Figure 5).
struct PensieveEnvConfig {
  double buffer_max_s = 15.0;
  double chunk_duration_s = 2.002;
  double rebuffer_penalty_per_s = 5.5;  ///< QoE_lin: the top bitrate in Mbit/s
  double smooth_penalty = 1.0;
  int chunks_per_episode = 100;
  /// Trace family the agent trains on (FCC-style, section 3.3); tests can
  /// narrow the variance to make learning curves visible.
  net::FccTraceConfig trace;
};

class PensieveEnv {
 public:
  PensieveEnv(PensieveEnvConfig config, uint64_t seed);

  /// Begin an episode on a freshly-sampled FCC-style trace and video stream.
  /// Returns the initial state.
  std::vector<float> reset();

  struct StepResult {
    std::vector<float> next_state;
    double reward = 0.0;
    bool done = false;
    double stall_s = 0.0;        ///< exposed for diagnostics
    double download_time_s = 0.0;
  };

  /// Send the current chunk at `rung`; advance the episode.
  StepResult step(int rung);

  [[nodiscard]] const PensieveEnvConfig& config() const { return config_; }

 private:
  /// Time to move `bytes` through the trace starting at `start`, plus RTT.
  [[nodiscard]] double download_time(double start, double bytes) const;

  PensieveEnvConfig config_;
  Rng rng_;
  net::FccTraceModel trace_model_;

  // Episode state.
  std::optional<net::NetworkPath> path_;
  std::optional<media::VbrVideoSource> video_;
  PensieveHistory history_;
  double now_s_ = 0.0;
  double buffer_s_ = 0.0;
  int chunk_index_ = 0;
  double last_bitrate_mbps_ = 0.0;
  bool has_last_bitrate_ = false;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_PENSIEVE_ENV_HH
