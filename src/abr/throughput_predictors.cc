#include "abr/throughput_predictors.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::abr {

namespace {

/// Cold-start default: with no samples yet, classical predictors assume a
/// modest 3 Mbit/s. (Unlike Fugu, they cannot consult tcp_info — that is
/// precisely the TTP feature Figure 9 credits for Fugu's better cold start.)
constexpr double kColdStartThroughputBps = 3e6 / 8.0;

constexpr double kMinTxTimeS = 1e-3;
constexpr double kMaxTxTimeS = 60.0;

}  // namespace

HarmonicMeanPredictor::HarmonicMeanPredictor(const int window) : window_(window) {
  require(window >= 1, "HarmonicMeanPredictor: window must be >= 1");
}

void HarmonicMeanPredictor::begin_decision(const AbrObservation& /*obs*/) {
  // Classical predictors ignore tcp_info by design.
}

double HarmonicMeanPredictor::predicted_throughput() const {
  if (throughput_samples_.empty()) {
    return kColdStartThroughputBps;
  }
  // Harmonic mean of the last `window_` samples (paper Figure 5: "HM").
  double denominator = 0.0;
  for (const double sample : throughput_samples_) {
    denominator += 1.0 / std::max(sample, 1.0);
  }
  return static_cast<double>(throughput_samples_.size()) / denominator;
}

TxTimeDistribution HarmonicMeanPredictor::predict(const int /*step*/,
                                                  const int64_t size_bytes) {
  const double throughput = predicted_throughput();
  const double tx_time = std::clamp(
      static_cast<double>(size_bytes) / std::max(throughput, 1.0), kMinTxTimeS,
      kMaxTxTimeS);
  return {TxTimeOutcome{tx_time, 1.0}};
}

void HarmonicMeanPredictor::on_chunk_complete(const ChunkRecord& record) {
  require(record.transmission_time_s > 0.0,
          "HarmonicMeanPredictor: non-positive transmission time");
  const double throughput =
      static_cast<double>(record.size_bytes) / record.transmission_time_s;
  throughput_samples_.push_back(throughput);
  while (throughput_samples_.size() > static_cast<size_t>(window_)) {
    throughput_samples_.pop_front();
  }
}

void HarmonicMeanPredictor::reset_session() {
  throughput_samples_.clear();
}

RobustThroughputPredictor::RobustThroughputPredictor(const int window)
    : HarmonicMeanPredictor(window) {}

TxTimeDistribution RobustThroughputPredictor::predict(const int /*step*/,
                                                      const int64_t size_bytes) {
  double max_error = 0.0;
  for (const double err : relative_errors_) {
    max_error = std::max(max_error, err);
  }
  const double robust_throughput = predicted_throughput() / (1.0 + max_error);
  last_prediction_bps_ = robust_throughput;
  const double tx_time =
      std::clamp(static_cast<double>(size_bytes) /
                     std::max(robust_throughput, 1.0),
                 kMinTxTimeS, kMaxTxTimeS);
  return {TxTimeOutcome{tx_time, 1.0}};
}

void RobustThroughputPredictor::on_chunk_complete(const ChunkRecord& record) {
  // Relative error of the last *un-discounted* harmonic-mean estimate, as in
  // RobustMPC: err = |predicted - actual| / actual.
  const double actual =
      static_cast<double>(record.size_bytes) / record.transmission_time_s;
  if (!throughput_samples_.empty()) {
    const double predicted = predicted_throughput();
    relative_errors_.push_back(std::abs(predicted - actual) /
                               std::max(actual, 1.0));
    while (relative_errors_.size() > static_cast<size_t>(window_)) {
      relative_errors_.pop_front();
    }
  }
  HarmonicMeanPredictor::on_chunk_complete(record);
}

void RobustThroughputPredictor::reset_session() {
  HarmonicMeanPredictor::reset_session();
  relative_errors_.clear();
  last_prediction_bps_ = 0.0;
}

}  // namespace puffer::abr
