#include "abr/mpc_abr.hh"

#include "util/require.hh"

namespace puffer::abr {

MpcAbr::MpcAbr(std::string name, std::unique_ptr<TxTimePredictor> predictor,
               const MpcConfig config)
    : name_(std::move(name)), predictor_(std::move(predictor)), mpc_(config) {
  require(predictor_ != nullptr, "MpcAbr: predictor required");
}

void MpcAbr::reset_session() {
  predictor_->reset_session();
}

int MpcAbr::choose_rung(const AbrObservation& obs,
                        const std::span<const media::ChunkOptions> lookahead) {
  predictor_->begin_decision(obs);
  return mpc_.plan(obs, lookahead, *predictor_);
}

void MpcAbr::on_chunk_complete(const ChunkRecord& record) {
  predictor_->on_chunk_complete(record);
}

}  // namespace puffer::abr
