#include "abr/pensieve_trainer.hh"

#include <algorithm>
#include <cmath>

#include "nn/loss.hh"
#include "util/require.hh"

namespace puffer::abr {

namespace {

struct EpisodeTrace {
  std::vector<std::vector<float>> states;
  std::vector<int> actions;
  std::vector<double> rewards;
  double stall_s = 0.0;
};

EpisodeTrace run_episode(PensieveEnv& env, const nn::Mlp& actor, Rng& rng) {
  EpisodeTrace trace;
  std::vector<float> state = env.reset();
  bool done = false;
  while (!done) {
    std::vector<float> logits = actor.forward_one(state);
    nn::softmax_inplace(logits);
    std::vector<double> probs{logits.begin(), logits.end()};
    const int action = static_cast<int>(rng.categorical(probs));

    trace.states.push_back(state);
    trace.actions.push_back(action);

    PensieveEnv::StepResult result = env.step(action);
    trace.rewards.push_back(result.reward);
    trace.stall_s += result.stall_s;
    state = std::move(result.next_state);
    done = result.done;
  }
  return trace;
}

}  // namespace

nn::Mlp train_pensieve(const PensieveTrainConfig& config, const uint64_t seed,
                       PensieveTrainReport* report) {
  require(config.iterations >= 1, "train_pensieve: iterations >= 1");

  Rng rng = Rng{seed}.split("pensieve-train");
  nn::Mlp actor = make_pensieve_actor(rng.engine()());
  nn::Mlp critic = make_pensieve_critic(rng.engine()());
  nn::AdamOptimizer actor_opt{config.actor_learning_rate};
  nn::AdamOptimizer critic_opt{config.critic_learning_rate};
  PensieveEnv env{config.env, rng.engine()()};

  if (report != nullptr) {
    report->reward_per_iteration.clear();
  }

  // Training buffers hoisted out of the iteration loop; everything resizes
  // in place, so steady-state iterations stop allocating in the NN stack.
  nn::Tape critic_tape;
  nn::Tape actor_tape;
  nn::Matrix dvalues;
  nn::Matrix probs;
  nn::Matrix dlogits;
  nn::Gradients critic_grads = critic.make_gradients();
  nn::Gradients actor_grads = actor.make_gradients();

  for (int iteration = 0; iteration < config.iterations; iteration++) {
    // Entropy weight anneals geometrically over training (the "entropy
    // reduction scheme").
    const double progress =
        config.iterations > 1
            ? static_cast<double>(iteration) / (config.iterations - 1)
            : 1.0;
    const double entropy_weight =
        config.entropy_weight_start *
        std::pow(config.entropy_weight_end / config.entropy_weight_start,
                 progress);

    // 1. Collect a batch of episodes with the current policy.
    std::vector<EpisodeTrace> episodes;
    double batch_reward = 0.0;
    double batch_stall = 0.0;
    double batch_time = 0.0;
    for (int e = 0; e < config.episodes_per_iteration; e++) {
      episodes.push_back(run_episode(env, actor, rng));
      for (const double r : episodes.back().rewards) {
        batch_reward += r;
      }
      batch_stall += episodes.back().stall_s;
      batch_time += static_cast<double>(episodes.back().rewards.size()) *
                    config.env.chunk_duration_s;
    }

    // 2. Flatten into one training batch with discounted returns.
    size_t total_steps = 0;
    for (const auto& ep : episodes) {
      total_steps += ep.states.size();
    }
    nn::Matrix states{total_steps, kPensieveStateDim};
    std::vector<int> actions(total_steps);
    std::vector<float> returns(total_steps);
    size_t row = 0;
    for (const auto& ep : episodes) {
      double running = 0.0;
      std::vector<double> ep_returns(ep.rewards.size());
      for (size_t i = ep.rewards.size(); i-- > 0;) {
        running = ep.rewards[i] + config.discount * running;
        ep_returns[i] = running;
      }
      for (size_t i = 0; i < ep.states.size(); i++) {
        for (int c = 0; c < kPensieveStateDim; c++) {
          states.at(row, static_cast<size_t>(c)) =
              ep.states[i][static_cast<size_t>(c)];
        }
        actions[row] = ep.actions[i];
        returns[row] = static_cast<float>(ep_returns[i]);
        row++;
      }
    }

    // 3. Critic update (value baseline) + advantages.
    critic.forward_tape(states, critic_tape);
    const nn::Matrix& values = critic_tape.activations.back();
    mse_loss(values, returns, dvalues);
    critic_grads.zero();
    critic.backward(critic_tape, dvalues, critic_grads);
    nn::clip_gradient_norm(critic_grads, config.gradient_clip);
    critic_opt.step(critic, critic_grads);

    std::vector<float> advantages(total_steps);
    for (size_t i = 0; i < total_steps; i++) {
      advantages[i] = returns[i] - values.at(i, 0);
    }
    // Normalize advantages for stable policy gradients.
    double adv_mean = 0.0, adv_sq = 0.0;
    for (const float a : advantages) {
      adv_mean += a;
      adv_sq += static_cast<double>(a) * a;
    }
    adv_mean /= static_cast<double>(total_steps);
    const double adv_std = std::sqrt(
        std::max(adv_sq / static_cast<double>(total_steps) - adv_mean * adv_mean,
                 1e-6));
    for (float& a : advantages) {
      a = static_cast<float>((a - adv_mean) / adv_std);
    }

    // 4. Actor update: policy gradient with entropy bonus.
    actor.forward_tape(states, actor_tape);
    nn::softmax(actor_tape.activations.back(), probs);

    // dLoss/dlogits for loss = -advantage*log pi(a|s) - beta*H(pi):
    //   policy term: advantage * (probs - onehot)
    //   entropy term: beta * probs * (log probs + H)   [d(-H)/dlogits]
    dlogits.resize_no_zero(total_steps, media::kNumRungs);
    const float scale = 1.0f / static_cast<float>(total_steps);
    for (size_t i = 0; i < total_steps; i++) {
      double entropy = 0.0;
      for (int c = 0; c < media::kNumRungs; c++) {
        const double p = std::max<double>(probs.at(i, static_cast<size_t>(c)),
                                          1e-12);
        entropy -= p * std::log(p);
      }
      for (int c = 0; c < media::kNumRungs; c++) {
        const auto col = static_cast<size_t>(c);
        const float p = probs.at(i, col);
        float grad = advantages[i] * (p - (actions[i] == c ? 1.0f : 0.0f));
        grad += static_cast<float>(entropy_weight) * p *
                (std::log(std::max(p, 1e-12f)) + static_cast<float>(entropy));
        dlogits.at(i, col) = grad * scale;
      }
    }
    actor_grads.zero();
    actor.backward(actor_tape, dlogits, actor_grads);
    nn::clip_gradient_norm(actor_grads, config.gradient_clip);
    actor_opt.step(actor, actor_grads);

    if (report != nullptr) {
      report->reward_per_iteration.push_back(
          batch_reward / static_cast<double>(total_steps));
      report->final_mean_reward = report->reward_per_iteration.back();
      report->final_stall_fraction =
          batch_stall / std::max(batch_time + batch_stall, 1e-9);
    }
  }

  return actor;
}

}  // namespace puffer::abr
