#include "abr/bba.hh"

#include <algorithm>

#include "media/ladder.hh"
#include "util/require.hh"

namespace puffer::abr {

Bba::Bba(const BbaConfig config) : config_(config) {
  require(config_.reservoir_s > 0.0 &&
              config_.upper_reservoir_s > config_.reservoir_s &&
              config_.max_buffer_s >= config_.upper_reservoir_s,
          "Bba: reservoir < upper reservoir <= max buffer required");
}

double Bba::rate_limit_mbps(const double buffer_s) const {
  const double r_min = media::default_ladder().front().nominal_bitrate_mbps;
  const double r_max = media::default_ladder().back().nominal_bitrate_mbps;
  if (buffer_s <= config_.reservoir_s) {
    return r_min;
  }
  if (buffer_s >= config_.upper_reservoir_s) {
    return r_max;
  }
  const double fraction = (buffer_s - config_.reservoir_s) /
                          (config_.upper_reservoir_s - config_.reservoir_s);
  return r_min + fraction * (r_max - r_min);
}

int Bba::choose_rung(const AbrObservation& obs,
                     const std::span<const media::ChunkOptions> lookahead) {
  require(!lookahead.empty(), "Bba: need the upcoming chunk menu");
  const media::ChunkOptions& menu = lookahead[0];
  const double limit_mbps = rate_limit_mbps(obs.buffer_s);

  int best = 0;  // lowest rung is the always-allowed fallback
  double best_ssim = menu.versions[0].ssim_db;
  for (const auto& version : menu.versions) {
    const double rate_mbps = static_cast<double>(version.size_bytes) * 8.0 /
                             1e6 / media::kChunkDurationS;
    if (rate_mbps <= limit_mbps && version.ssim_db > best_ssim) {
      best = version.rung;
      best_ssim = version.ssim_db;
    }
  }
  return best;
}

void Bba::on_chunk_complete(const ChunkRecord& /*record*/) {
  // BBA is memoryless: decisions depend only on the current buffer.
}

}  // namespace puffer::abr
