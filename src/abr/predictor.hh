#ifndef PUFFER_ABR_PREDICTOR_HH
#define PUFFER_ABR_PREDICTOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "abr/abr.hh"

namespace puffer::abr {

/// One possible transmission-time outcome with its probability.
struct TxTimeOutcome {
  double time_s = 0.0;
  double probability = 1.0;
};

/// A (small) discrete distribution over transmission times. Point-estimate
/// predictors return a single outcome with probability 1.
using TxTimeDistribution = std::vector<TxTimeOutcome>;

/// One (horizon step, proposed chunk size) query of an ABR decision. MPC
/// issues every query of a decision up front (one per step x rung), which
/// is what lets batched predictors answer them in fused forward passes.
struct TxTimeQuery {
  int step = 0;
  int64_t size_bytes = 0;
};

/// The canonical query enumeration of one MPC decision over `lookahead`
/// with planning horizon `horizon`: step-major over
/// [0, min(horizon, lookahead.size())) x every rung, refilling `out`.
/// StochasticMpc::plan issues exactly this list, and staged batched
/// predictors (fugu::BatchTtpPredictor::stage) pre-enqueue exactly this
/// list — sharing the enumeration is what guarantees they can never skew.
void enumerate_tx_time_queries(std::span<const media::ChunkOptions> lookahead,
                               int horizon, std::vector<TxTimeQuery>& out);

/// Predicts how long a proposed chunk of a given size will take to transmit.
/// This is the module MPC consults (paper Figure 6); implementations include
/// the classical harmonic-mean throughput predictor (MPC-HM), its robust
/// variant (RobustMPC-HM), and Fugu's learned TTP.
class TxTimePredictor {
 public:
  virtual ~TxTimePredictor() = default;

  /// Called once per ABR decision with the current observation, before any
  /// predict() calls for that decision.
  virtual void begin_decision(const AbrObservation& obs) = 0;

  /// Distribution over the transmission time of sending `size_bytes` as the
  /// chunk `step` positions ahead (step 0 = the chunk being decided now).
  virtual TxTimeDistribution predict(int step, int64_t size_bytes) = 0;

  /// Batch hook: answer every query of one decision at once, one
  /// distribution per query in query order. The default loops over
  /// predict(), so classical predictors behave exactly as before; learned
  /// predictors override it to fuse all rows of the decision into one
  /// forward pass per step-network (see fugu::BatchTtpPredictor).
  virtual void predict_batch(std::span<const TxTimeQuery> queries,
                             std::vector<TxTimeDistribution>& out) {
    out.clear();
    out.reserve(queries.size());
    for (const TxTimeQuery& query : queries) {
      out.push_back(predict(query.step, query.size_bytes));
    }
  }

  /// Telemetry of a completed transfer (updates history).
  virtual void on_chunk_complete(const ChunkRecord& record) = 0;

  /// Session start: clear history.
  virtual void reset_session() = 0;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_PREDICTOR_HH
