#ifndef PUFFER_ABR_PREDICTOR_HH
#define PUFFER_ABR_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "abr/abr.hh"

namespace puffer::abr {

/// One possible transmission-time outcome with its probability.
struct TxTimeOutcome {
  double time_s = 0.0;
  double probability = 1.0;
};

/// A (small) discrete distribution over transmission times. Point-estimate
/// predictors return a single outcome with probability 1.
using TxTimeDistribution = std::vector<TxTimeOutcome>;

/// Predicts how long a proposed chunk of a given size will take to transmit.
/// This is the module MPC consults (paper Figure 6); implementations include
/// the classical harmonic-mean throughput predictor (MPC-HM), its robust
/// variant (RobustMPC-HM), and Fugu's learned TTP.
class TxTimePredictor {
 public:
  virtual ~TxTimePredictor() = default;

  /// Called once per ABR decision with the current observation, before any
  /// predict() calls for that decision.
  virtual void begin_decision(const AbrObservation& obs) = 0;

  /// Distribution over the transmission time of sending `size_bytes` as the
  /// chunk `step` positions ahead (step 0 = the chunk being decided now).
  virtual TxTimeDistribution predict(int step, int64_t size_bytes) = 0;

  /// Telemetry of a completed transfer (updates history).
  virtual void on_chunk_complete(const ChunkRecord& record) = 0;

  /// Session start: clear history.
  virtual void reset_session() = 0;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_PREDICTOR_HH
