#ifndef PUFFER_ABR_THROUGHPUT_PREDICTORS_HH
#define PUFFER_ABR_THROUGHPUT_PREDICTORS_HH

#include <deque>

#include "abr/predictor.hh"

namespace puffer::abr {

/// The classical predictor used by MPC-HM (paper [43] and Figure 5): the
/// harmonic mean of the last five throughput samples, converted to a
/// transmission time via t = size / throughput (a point estimate).
class HarmonicMeanPredictor : public TxTimePredictor {
 public:
  explicit HarmonicMeanPredictor(int window = 5);

  void begin_decision(const AbrObservation& obs) override;
  TxTimeDistribution predict(int step, int64_t size_bytes) override;
  void on_chunk_complete(const ChunkRecord& record) override;
  void reset_session() override;

  /// Current throughput estimate in bytes/second (exposed for tests).
  [[nodiscard]] double predicted_throughput() const;

 protected:
  int window_;
  std::deque<double> throughput_samples_;  ///< bytes per second
  double fallback_throughput_ = 0.0;       ///< from tcp_info on cold start
};

/// RobustMPC's conservative variant: discount the harmonic-mean estimate by
/// the maximum relative prediction error observed over the recent window,
/// C_robust = C_hm / (1 + max_err) (Yin et al. [43], section 5.2).
class RobustThroughputPredictor final : public HarmonicMeanPredictor {
 public:
  explicit RobustThroughputPredictor(int window = 5);

  TxTimeDistribution predict(int step, int64_t size_bytes) override;
  void on_chunk_complete(const ChunkRecord& record) override;
  void reset_session() override;

 private:
  std::deque<double> relative_errors_;
  double last_prediction_bps_ = 0.0;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_THROUGHPUT_PREDICTORS_HH
