#include "abr/mpc.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::abr {

namespace {

/// Prune negligible-probability outcomes and renormalize; keeps planning
/// cheap without changing the distribution materially.
void prune_distribution(TxTimeDistribution& dist, const double min_probability) {
  double kept_mass = 0.0;
  size_t out = 0;
  for (const auto& outcome : dist) {
    if (outcome.probability >= min_probability) {
      dist[out++] = outcome;
      kept_mass += outcome.probability;
    }
  }
  if (out == 0) {
    // Keep the single most likely outcome.
    const auto best =
        std::max_element(dist.begin(), dist.end(),
                         [](const TxTimeOutcome& a, const TxTimeOutcome& b) {
                           return a.probability < b.probability;
                         });
    dist = {TxTimeOutcome{best->time_s, 1.0}};
    return;
  }
  dist.resize(out);
  for (auto& outcome : dist) {
    outcome.probability /= kept_mass;
  }
}

}  // namespace

StochasticMpc::StochasticMpc(const MpcConfig config) : config_(config) {
  require(config_.horizon >= 1, "StochasticMpc: horizon must be >= 1");
  require(config_.buffer_bin_s > 0.0, "StochasticMpc: bin size must be > 0");
  num_bins_ =
      static_cast<int>(std::ceil(config_.max_buffer_s / config_.buffer_bin_s));
  const size_t states = static_cast<size_t>(config_.horizon + 1) *
                        static_cast<size_t>(num_bins_ + 1) * media::kNumRungs;
  memo_value_.assign(states, 0.0);
  memo_epoch_.assign(states, 0);
}

int StochasticMpc::buffer_to_bin(const double buffer_s) const {
  const double clamped = std::clamp(buffer_s, 0.0, config_.max_buffer_s);
  return static_cast<int>(std::lround(clamped / config_.buffer_bin_s));
}

size_t StochasticMpc::state_index(const int step, const int buffer_bin,
                                  const int prev_rung) const {
  return (static_cast<size_t>(step) * static_cast<size_t>(num_bins_ + 1) +
          static_cast<size_t>(buffer_bin)) *
             media::kNumRungs +
         static_cast<size_t>(prev_rung);
}

double StochasticMpc::chunk_qoe(const double ssim_db, const double prev_ssim_db,
                                const double tx_time_s,
                                const double buffer_s) const {
  double qoe = ssim_db;
  if (prev_ssim_db >= 0.0) {
    qoe -= config_.lambda * std::abs(ssim_db - prev_ssim_db);
  }
  const double stall = std::max(tx_time_s - buffer_s, 0.0);
  qoe -= config_.mu * stall;
  return qoe;
}

void StochasticMpc::prepare_plan(
    const std::span<const media::ChunkOptions> lookahead,
    TxTimePredictor& predictor) {
  require(!lookahead.empty(), "StochasticMpc::plan: empty lookahead");
  lookahead_ = lookahead;
  effective_horizon_ =
      std::min<int>(config_.horizon, static_cast<int>(lookahead.size()));

  // Precompute (and prune) one distribution per (step, rung). All queries
  // of the decision are issued in one predict_batch call so learned
  // predictors can answer them with fused forward passes.
  enumerate_tx_time_queries(lookahead, config_.horizon, queries_);
  predictor.predict_batch(queries_, distributions_);
  require(distributions_.size() == queries_.size(),
          "StochasticMpc: predictor answered the wrong number of queries");
  for (TxTimeDistribution& dist : distributions_) {
    require(!dist.empty(), "StochasticMpc: predictor returned empty dist");
    prune_distribution(dist, config_.prune_probability);
  }
}

int StochasticMpc::plan_root(const AbrObservation& obs,
                             const std::span<const double> value_of_next) {
  // Root step: continuous buffer, previous quality from the observation.
  int best_action = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  root_values_.assign(media::kNumRungs, 0.0);
  for (int action = 0; action < media::kNumRungs; action++) {
    const auto& version = lookahead_[0].versions[static_cast<size_t>(action)];
    const TxTimeDistribution& dist = distributions_[static_cast<size_t>(action)];
    double expected = 0.0;
    for (const auto& outcome : dist) {
      const double qoe = chunk_qoe(version.ssim_db, obs.prev_ssim_db,
                                   outcome.time_s, obs.buffer_s);
      const double next_buffer =
          std::min(std::max(obs.buffer_s - outcome.time_s, 0.0) +
                       config_.chunk_duration_s,
                   config_.max_buffer_s);
      const double continuation =
          value_of_next[static_cast<size_t>(buffer_to_bin(next_buffer)) *
                            media::kNumRungs +
                        static_cast<size_t>(action)];
      expected += outcome.probability * (qoe + continuation);
    }
    root_values_[static_cast<size_t>(action)] = expected;
    if (expected > best_value) {
      best_value = expected;
      best_action = action;
    }
  }
  last_plan_value_ = best_value;
  return best_action;
}

int StochasticMpc::plan(const AbrObservation& obs,
                        const std::span<const media::ChunkOptions> lookahead,
                        TxTimePredictor& predictor) {
  prepare_plan(lookahead, predictor);

  constexpr int R = media::kNumRungs;
  const int bins = num_bins_ + 1;
  const size_t plane = static_cast<size_t>(bins) * R;

  // Backward sweep over the (step x buffer-bin x previous-rung) lattice.
  // value_next_ holds V[step + 1]; V[effective_horizon_] = 0.
  value_next_.assign(plane, 0.0);
  value_cur_.resize(plane);
  expect_base_.resize(static_cast<size_t>(R) * bins);
  switch_penalty_.resize(static_cast<size_t>(R) * R);

  for (int step = effective_horizon_ - 1; step >= 1; step--) {
    // 1. Fold the outcome expectation once per (action, bin):
    //      expect_base_[a][b] = sum_o p_o * (V[step+1][nb][a] - mu * stall)
    //    The bin transition nb and stall cost of each (step, action,
    //    outcome) are computed once per plan here — the maximization below
    //    never touches buffer_to_bin again, and (unlike the recursion) the
    //    expectation no longer re-runs per previous rung.
    for (int action = 0; action < R; action++) {
      double* base = expect_base_.data() + static_cast<size_t>(action) * bins;
      std::fill(base, base + bins, 0.0);
      const TxTimeDistribution& dist =
          distributions_[static_cast<size_t>(step) * R +
                         static_cast<size_t>(action)];
      for (const TxTimeOutcome& outcome : dist) {
        const double t = outcome.time_s;
        const double p = outcome.probability;
        for (int b = 0; b < bins; b++) {
          const double buffer_s = b * config_.buffer_bin_s;
          const double stall = t > buffer_s ? t - buffer_s : 0.0;
          const double next_buffer =
              std::min(std::max(buffer_s - t, 0.0) + config_.chunk_duration_s,
                       config_.max_buffer_s);
          const int nb = buffer_to_bin(next_buffer);
          base[b] += p * (value_next_[static_cast<size_t>(nb) * R +
                                      static_cast<size_t>(action)] -
                          config_.mu * stall);
        }
      }
    }

    // 2. Quality + switch-penalty term per (action, previous rung) — does
    //    not depend on the buffer, so it is hoisted out of the bin loop.
    //    Matches chunk_qoe: a negative previous SSIM means "no previous
    //    quality", so the variation term is skipped.
    for (int action = 0; action < R; action++) {
      const double ssim =
          lookahead_[static_cast<size_t>(step)].versions[static_cast<size_t>(
              action)].ssim_db;
      for (int prev = 0; prev < R; prev++) {
        const double prev_ssim =
            lookahead_[static_cast<size_t>(step - 1)]
                .versions[static_cast<size_t>(prev)].ssim_db;
        const double penalty =
            prev_ssim >= 0.0 ? config_.lambda * std::abs(ssim - prev_ssim)
                             : 0.0;
        switch_penalty_[static_cast<size_t>(action) * R +
                        static_cast<size_t>(prev)] = ssim - penalty;
      }
    }

    // 3. Maximize over actions for every (bin, previous rung) state.
    for (int b = 0; b < bins; b++) {
      double* out_row = value_cur_.data() + static_cast<size_t>(b) * R;
      for (int prev = 0; prev < R; prev++) {
        double best = -std::numeric_limits<double>::infinity();
        for (int action = 0; action < R; action++) {
          const double value =
              switch_penalty_[static_cast<size_t>(action) * R +
                              static_cast<size_t>(prev)] +
              expect_base_[static_cast<size_t>(action) * bins +
                           static_cast<size_t>(b)];
          best = std::max(best, value);
        }
        out_row[prev] = best;
      }
    }
    std::swap(value_cur_, value_next_);
  }

  // value_next_ now holds V[1] (or zeros when the horizon is 1).
  return plan_root(obs, value_next_);
}

// ---------------------------------------------------------------------------
// Reference path: the seed's recursive value iteration with epoch-tagged
// memoization, retained verbatim as the oracle for the iterative sweep.
// ---------------------------------------------------------------------------

double StochasticMpc::value_of(const int step, const int buffer_bin,
                               const int prev_rung) {
  if (step >= effective_horizon_) {
    return 0.0;
  }
  const size_t index = state_index(step, buffer_bin, prev_rung);
  if (memo_epoch_[index] == epoch_) {
    return memo_value_[index];
  }

  const double buffer_s = buffer_bin * config_.buffer_bin_s;
  const double prev_ssim_db =
      lookahead_[static_cast<size_t>(step - 1)].versions[static_cast<size_t>(
          prev_rung)].ssim_db;

  double best = -std::numeric_limits<double>::infinity();
  for (int action = 0; action < media::kNumRungs; action++) {
    const auto& version =
        lookahead_[static_cast<size_t>(step)].versions[static_cast<size_t>(action)];
    const TxTimeDistribution& dist =
        distributions_[static_cast<size_t>(step) * media::kNumRungs +
                       static_cast<size_t>(action)];
    double expected = 0.0;
    for (const auto& outcome : dist) {
      const double qoe =
          chunk_qoe(version.ssim_db, prev_ssim_db, outcome.time_s, buffer_s);
      const double next_buffer =
          std::min(std::max(buffer_s - outcome.time_s, 0.0) +
                       config_.chunk_duration_s,
                   config_.max_buffer_s);
      expected += outcome.probability *
                  (qoe + value_of(step + 1, buffer_to_bin(next_buffer), action));
    }
    best = std::max(best, expected);
  }

  memo_epoch_[index] = epoch_;
  memo_value_[index] = best;
  return best;
}

int StochasticMpc::plan_reference(
    const AbrObservation& obs,
    const std::span<const media::ChunkOptions> lookahead,
    TxTimePredictor& predictor) {
  prepare_plan(lookahead, predictor);
  epoch_++;

  int best_action = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  root_values_.assign(media::kNumRungs, 0.0);
  for (int action = 0; action < media::kNumRungs; action++) {
    const auto& version = lookahead[0].versions[static_cast<size_t>(action)];
    const TxTimeDistribution& dist = distributions_[static_cast<size_t>(action)];
    double expected = 0.0;
    for (const auto& outcome : dist) {
      const double qoe = chunk_qoe(version.ssim_db, obs.prev_ssim_db,
                                   outcome.time_s, obs.buffer_s);
      const double next_buffer =
          std::min(std::max(obs.buffer_s - outcome.time_s, 0.0) +
                       config_.chunk_duration_s,
                   config_.max_buffer_s);
      expected += outcome.probability *
                  (qoe + value_of(1, buffer_to_bin(next_buffer), action));
    }
    root_values_[static_cast<size_t>(action)] = expected;
    if (expected > best_value) {
      best_value = expected;
      best_action = action;
    }
  }
  last_plan_value_ = best_value;
  return best_action;
}

}  // namespace puffer::abr
