#ifndef PUFFER_ABR_PENSIEVE_TRAINER_HH
#define PUFFER_ABR_PENSIEVE_TRAINER_HH

#include "abr/pensieve_env.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"

namespace puffer::abr {

/// Advantage-actor-critic training of the Pensieve policy in the chunk-level
/// emulation environment ("reinforcement learning in simulation", Figure 5).
/// Includes the entropy-regularization annealing the Pensieve authors
/// recommended to the Puffer team (section 3.3: "tune the entropy parameter
/// ... 6 different models with various entropy reduction schemes").
struct PensieveTrainConfig {
  int iterations = 600;
  int episodes_per_iteration = 8;
  double discount = 0.99;
  double actor_learning_rate = 3e-4;
  double critic_learning_rate = 1e-3;
  double entropy_weight_start = 0.30;
  double entropy_weight_end = 0.01;
  double gradient_clip = 40.0;
  PensieveEnvConfig env = [] {
    PensieveEnvConfig config;
    // Widen the training-trace mix toward the 12 Mbit/s shell cap so the
    // policy learns to use the high rungs when throughput allows (the real
    // Pensieve's FCC/Norway mix also reached the shell cap, section 3.3).
    config.trace.median_rate_mbps = 3.0;
    config.trace.log10_rate_sigma = 0.45;
    return config;
  }();
};

struct PensieveTrainReport {
  double final_mean_reward = 0.0;
  double final_stall_fraction = 0.0;
  std::vector<double> reward_per_iteration;
};

/// Train and return an actor network (and fill `report` if non-null).
nn::Mlp train_pensieve(const PensieveTrainConfig& config, uint64_t seed,
                       PensieveTrainReport* report = nullptr);

}  // namespace puffer::abr

#endif  // PUFFER_ABR_PENSIEVE_TRAINER_HH
