#ifndef PUFFER_ABR_ABR_HH
#define PUFFER_ABR_ABR_HH

#include <cstdint>
#include <span>
#include <string_view>

#include "media/vbr_source.hh"
#include "net/tcp_info.hh"

namespace puffer::abr {

/// Telemetry for one completed chunk transfer, reported back to the ABR
/// scheme (and, for Fugu, logged as TTP training data).
struct ChunkRecord {
  int64_t chunk_index = 0;
  int rung = 0;
  int64_t size_bytes = 0;
  double ssim_db = 0.0;
  double transmission_time_s = 0.0;
  net::TcpInfo tcp_at_send;  ///< tcp_info snapshot when the send was decided
};

/// Everything an ABR scheme may observe when choosing the next chunk.
/// Server-side schemes (all of ours, as on Puffer) also see tcp_info.
struct AbrObservation {
  int64_t chunk_index = 0;    ///< index of the chunk being decided
  double buffer_s = 0.0;      ///< client playback buffer at decision time
  double prev_ssim_db = -1.0; ///< SSIM of previous sent chunk; < 0 if none
  int prev_rung = -1;         ///< rung of previous sent chunk; -1 if none
  net::TcpInfo tcp;
};

/// Interface all bitrate-selection schemes implement. The session simulator
/// calls choose_rung() once per chunk and on_chunk_complete() when the chunk
/// has been fully received by the client.
class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called at the start of a session (new connection: history is empty).
  virtual void reset_session() = 0;

  /// Choose the ladder rung for lookahead[0]. `lookahead` holds the version
  /// menus of the next chunks (>= 1 entry); model-predictive schemes use up
  /// to their horizon, others only the first entry.
  virtual int choose_rung(const AbrObservation& obs,
                          std::span<const media::ChunkOptions> lookahead) = 0;

  /// Telemetry for the transfer of the previously chosen chunk.
  virtual void on_chunk_complete(const ChunkRecord& record) = 0;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_ABR_HH
