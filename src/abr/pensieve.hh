#ifndef PUFFER_ABR_PENSIEVE_HH
#define PUFFER_ABR_PENSIEVE_HH

#include <deque>
#include <optional>

#include "abr/abr.hh"
#include "nn/mlp.hh"
#include "util/rng.hh"

namespace puffer::abr {

/// Number of history slots in Pensieve's state (past throughput and
/// download-time measurements), as in Mao et al. [23].
inline constexpr int kPensieveHistory = 8;

/// Pensieve state dimensionality:
/// last-rung (1) + buffer (1) + throughputs (8) + download times (8) +
/// next-chunk sizes (10) + remaining-chunks signal (1).
inline constexpr int kPensieveStateDim =
    1 + 1 + kPensieveHistory + kPensieveHistory + media::kNumRungs + 1;

/// Rolling history used to build the Pensieve state vector. Shared between
/// deployment (PensieveAbr) and training (PensieveEnv) so the two see
/// exactly the same featurization.
struct PensieveHistory {
  int last_rung = 0;
  std::deque<double> throughputs_mbps;   ///< most recent last
  std::deque<double> download_times_s;

  void reset();
  void record(double throughput_mbps, double download_time_s, int rung);
};

/// Build the normalized state vector. `remaining_signal` is 1.0 for live
/// streams (the paper set video_num_chunks to 24 hours so Pensieve "does not
/// expect the video to end", section 3.3).
std::vector<float> pensieve_state(const PensieveHistory& history,
                                  double buffer_s,
                                  const media::ChunkOptions& next_menu,
                                  double remaining_signal = 1.0);

/// Same, into a caller-owned buffer (cleared and refilled) — the
/// allocation-free form the per-chunk deployment loop uses.
void pensieve_state_into(const PensieveHistory& history, double buffer_s,
                         const media::ChunkOptions& next_menu,
                         double remaining_signal, std::vector<float>& out);

/// Architectures for the actor (policy) and critic (value baseline).
nn::Mlp make_pensieve_actor(uint64_t seed);
nn::Mlp make_pensieve_critic(uint64_t seed);

/// The Pensieve ABR scheme: a learned policy network maps the state directly
/// to a rung choice (Figure 5: "learned (DNN), +bitrate -stalls -Δbitrate,
/// reinforcement learning in simulation"). Deployment acts greedily; during
/// training the trainer samples from the softmax itself.
class PensieveAbr final : public AbrAlgorithm {
 public:
  explicit PensieveAbr(nn::Mlp actor, std::string name = "Pensieve");

  [[nodiscard]] std::string_view name() const override { return name_; }
  void reset_session() override;
  int choose_rung(const AbrObservation& obs,
                  std::span<const media::ChunkOptions> lookahead) override;
  void on_chunk_complete(const ChunkRecord& record) override;

  [[nodiscard]] const nn::Mlp& actor() const { return actor_; }

 private:
  nn::Mlp actor_;
  std::string name_;
  PensieveHistory history_;
  // Reused across choose_rung() calls (no per-chunk allocation).
  std::vector<float> state_;
  nn::ForwardScratch scratch_;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_PENSIEVE_HH
