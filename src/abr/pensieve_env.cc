#include "abr/pensieve_env.hh"

#include <algorithm>
#include <cmath>

#include "media/ladder.hh"
#include "util/require.hh"

namespace puffer::abr {

PensieveEnv::PensieveEnv(const PensieveEnvConfig config, const uint64_t seed)
    : config_(config),
      rng_(Rng{seed}.split("pensieve-env")),
      trace_model_(config.trace) {}

double PensieveEnv::download_time(const double start, const double bytes) const {
  const auto& trace = path_->trace;
  const double segment = trace.segment_duration();
  double remaining = bytes;
  double t = start;
  // Walk the piecewise-constant trace exactly.
  for (int guard = 0; guard < 1000000; guard++) {
    const double rate = std::max(trace.capacity_at(t), 1.0);
    const double segment_end =
        (std::floor(t / segment) + 1.0) * segment;
    const double dt = segment_end - t;
    const double can_move = rate * dt;
    if (can_move >= remaining) {
      return (t + remaining / rate) - start + path_->min_rtt_s;
    }
    remaining -= can_move;
    t = segment_end;
  }
  return t - start + path_->min_rtt_s;  // unreachable in practice
}

std::vector<float> PensieveEnv::reset() {
  const double horizon_s =
      config_.chunks_per_episode * config_.chunk_duration_s * 4.0;
  Rng path_rng = rng_.split(rng_.engine()());
  path_ = trace_model_.sample_path(path_rng, horizon_s);
  const auto& channels = media::default_channels();
  const auto channel = static_cast<size_t>(
      rng_.uniform_int(0, static_cast<int64_t>(channels.size()) - 1));
  video_.emplace(channels[channel], rng_.engine()());

  history_.reset();
  now_s_ = 0.0;
  buffer_s_ = 0.0;
  chunk_index_ = 0;
  last_bitrate_mbps_ = 0.0;
  has_last_bitrate_ = false;

  return pensieve_state(history_, buffer_s_,
                        video_->chunk_options(chunk_index_));
}

PensieveEnv::StepResult PensieveEnv::step(const int rung) {
  require(path_.has_value(), "PensieveEnv::step before reset");
  require(rung >= 0 && rung < media::kNumRungs, "PensieveEnv: bad rung");

  const media::ChunkOptions& menu = video_->chunk_options(chunk_index_);
  const media::ChunkVersion& version = menu.version(rung);

  const double dt =
      download_time(now_s_, static_cast<double>(version.size_bytes));

  // Buffer dynamics: drains while downloading; stall if it empties.
  const double stall = std::max(dt - buffer_s_, 0.0);
  buffer_s_ = std::max(buffer_s_ - dt, 0.0) + config_.chunk_duration_s;
  now_s_ += dt;
  // Full buffer: the client pauses fetching until there is room.
  if (buffer_s_ > config_.buffer_max_s) {
    const double wait = buffer_s_ - config_.buffer_max_s;
    now_s_ += wait;
    buffer_s_ = config_.buffer_max_s;
  }

  // Bitrate-based QoE_lin reward (Pensieve could not be made SSIM-aware).
  const double bitrate_mbps =
      media::default_ladder()[static_cast<size_t>(rung)].nominal_bitrate_mbps;
  double reward = bitrate_mbps - config_.rebuffer_penalty_per_s * stall;
  if (has_last_bitrate_) {
    reward -= config_.smooth_penalty * std::abs(bitrate_mbps - last_bitrate_mbps_);
  }
  last_bitrate_mbps_ = bitrate_mbps;
  has_last_bitrate_ = true;

  const double throughput_mbps =
      static_cast<double>(version.size_bytes) * 8.0 / 1e6 / std::max(dt, 1e-3);
  history_.record(throughput_mbps, dt, rung);

  chunk_index_++;
  StepResult result;
  result.reward = reward;
  result.stall_s = stall;
  result.download_time_s = dt;
  result.done = chunk_index_ >= config_.chunks_per_episode;
  result.next_state = pensieve_state(history_, buffer_s_,
                                     video_->chunk_options(chunk_index_));
  return result;
}

}  // namespace puffer::abr
