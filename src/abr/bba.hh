#ifndef PUFFER_ABR_BBA_HH
#define PUFFER_ABR_BBA_HH

#include "abr/abr.hh"

namespace puffer::abr {

/// Buffer-based adaptation (Huang et al., SIGCOMM 2014 [17]) as deployed on
/// Puffer: the classical reservoir/cushion rate map, with reservoir values
/// consistent with Puffer's 15-second maximum buffer (section 3.3), choosing
/// the highest-SSIM version whose instantaneous bitrate fits under the map
/// (Figure 5: "+SSIM s.t. bitrate < limit").
struct BbaConfig {
  double max_buffer_s = 15.0;
  double reservoir_s = 3.75;        ///< below this: lowest rung
  double upper_reservoir_s = 13.125;///< above this: highest rung
};

class Bba final : public AbrAlgorithm {
 public:
  explicit Bba(BbaConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "BBA"; }
  void reset_session() override {}
  int choose_rung(const AbrObservation& obs,
                  std::span<const media::ChunkOptions> lookahead) override;
  void on_chunk_complete(const ChunkRecord& record) override;

  /// The rate map f(buffer) in Mbit/s (exposed for tests).
  [[nodiscard]] double rate_limit_mbps(double buffer_s) const;

 private:
  BbaConfig config_;
};

}  // namespace puffer::abr

#endif  // PUFFER_ABR_BBA_HH
