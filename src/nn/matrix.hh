#ifndef PUFFER_NN_MATRIX_HH
#define PUFFER_NN_MATRIX_HH

#include <cstddef>
#include <span>
#include <vector>

namespace puffer::nn {

/// Dense row-major float matrix. The only tensor type in this library: the
/// TTP and Pensieve networks are small MLPs, so a simple cache-friendly
/// matrix with auto-vectorizable loops is all that is needed.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f);

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }
  [[nodiscard]] size_t size() const { return data_.size(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<float> row(size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  void fill(float value);
  /// Reshape and zero-fill. Capacity is kept when the new shape fits, so a
  /// warm buffer resized to the same (or smaller) shape never reallocates —
  /// use this when the caller accumulates into the matrix.
  void resize(size_t rows, size_t cols);
  /// Reshape WITHOUT zero-filling: existing element values are unspecified.
  /// For outputs that are fully overwritten (GEMM results, staging copies);
  /// skips the zero-fill pass that resize() pays on every call.
  void resize_no_zero(size_t rows, size_t cols);

  /// this += other (elementwise; shapes must match).
  void add_inplace(const Matrix& other);
  /// this *= scalar.
  void scale_inplace(float factor);

  bool operator==(const Matrix& other) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
/// Backed by the kernel layer in gemm.hh (as are the transposed variants);
/// the seed's naive implementations survive as naive_matmul* there.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T. Shapes: (m x k) * (n x k) -> (m x n).
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b. Shapes: (k x m) * (k x n) -> (m x n).
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

/// Add row-vector `bias` (length = out.cols()) to every row of `out`.
void add_row_bias(Matrix& out, std::span<const float> bias);

}  // namespace puffer::nn

#endif  // PUFFER_NN_MATRIX_HH
