#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::nn {

void softmax_inplace(const std::span<float> row) {
  float max_logit = -std::numeric_limits<float>::infinity();
  for (const float v : row) {
    max_logit = std::max(max_logit, v);
  }
  float total = 0.0f;
  for (float& v : row) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (float& v : row) {
    v /= total;
  }
}

void softmax(const Matrix& logits, Matrix& probs) {
  probs = logits;
  for (size_t r = 0; r < probs.rows(); r++) {
    softmax_inplace(probs.row(r));
  }
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::span<const int> labels,
                             const std::span<const float> weights,
                             Matrix& dlogits) {
  require(labels.size() == logits.rows(), "cross_entropy: label count mismatch");
  require(weights.size() == logits.rows(), "cross_entropy: weight count mismatch");

  softmax(logits, dlogits);  // dlogits temporarily holds probabilities
  double total_loss = 0.0;
  double total_weight = 0.0;
  for (size_t r = 0; r < logits.rows(); r++) {
    total_weight += weights[r];
  }
  require(total_weight > 0.0, "cross_entropy: total weight must be positive");

  for (size_t r = 0; r < logits.rows(); r++) {
    const int label = labels[r];
    require(label >= 0 && static_cast<size_t>(label) < logits.cols(),
            "cross_entropy: label out of range");
    const float w = weights[r];
    const float p = std::max(dlogits.at(r, label), 1e-12f);
    total_loss += -static_cast<double>(w) * std::log(p);
    // d/dlogits of -w*log softmax = w * (probs - onehot); normalize by total w.
    float* row = dlogits.data() + r * dlogits.cols();
    const float norm = w / static_cast<float>(total_weight);
    for (size_t c = 0; c < dlogits.cols(); c++) {
      row[c] *= norm;
    }
    row[label] -= norm;
  }
  return total_loss / total_weight;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::span<const int> labels, Matrix& dlogits) {
  const std::vector<float> ones(logits.rows(), 1.0f);
  return softmax_cross_entropy(logits, labels, ones, dlogits);
}

double mse_loss(const Matrix& predictions, const std::span<const float> targets,
                Matrix& dpredictions) {
  require(predictions.cols() == 1, "mse_loss: predictions must be a column");
  require(predictions.rows() == targets.size(), "mse_loss: size mismatch");
  dpredictions.resize(predictions.rows(), 1);
  double total = 0.0;
  const float norm = 2.0f / static_cast<float>(predictions.rows());
  for (size_t r = 0; r < predictions.rows(); r++) {
    const float err = predictions.at(r, 0) - targets[r];
    total += static_cast<double>(err) * err;
    dpredictions.at(r, 0) = norm * err;
  }
  return total / static_cast<double>(predictions.rows());
}

}  // namespace puffer::nn
