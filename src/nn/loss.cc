#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::nn {

void softmax_inplace(const std::span<float> row) {
  // Lane-blocked reductions (8 lanes, fixed combine order) so the max and
  // sum loops vectorize while staying bit-deterministic: the accumulation
  // order is pinned by the code, not by whatever the compiler picks. The
  // max is exact under any order; the sum's order is part of the kernel
  // determinism contract. exp and the divide stay element-wise (libm expf
  // and IEEE division are correctly rounded, so they match any path).
  constexpr size_t kLanes = 8;
  const size_t n = row.size();
  float lane_max[kLanes];
  std::fill(lane_max, lane_max + kLanes,
            -std::numeric_limits<float>::infinity());
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; l++) {
      lane_max[l] = std::max(lane_max[l], row[i + l]);
    }
  }
  for (size_t l = 0; i < n; i++, l++) {
    lane_max[l] = std::max(lane_max[l], row[i]);
  }
  float max_logit = lane_max[0];
  for (size_t l = 1; l < kLanes; l++) {
    max_logit = std::max(max_logit, lane_max[l]);
  }

  for (float& v : row) {
    v = std::exp(v - max_logit);
  }

  float lane_sum[kLanes] = {};
  i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; l++) {
      lane_sum[l] += row[i + l];
    }
  }
  for (size_t l = 0; i < n; i++, l++) {
    lane_sum[l] += row[i];
  }
  // Fixed pairwise combine: (0+4)+(2+6) and (1+5)+(3+7).
  float total = 0.0f;
  for (size_t l = 0; l < kLanes / 2; l++) {
    lane_sum[l] += lane_sum[l + kLanes / 2];
  }
  for (size_t l = 0; l < kLanes / 4; l++) {
    lane_sum[l] += lane_sum[l + kLanes / 4];
  }
  total = lane_sum[0] + lane_sum[1];

  for (float& v : row) {
    v /= total;
  }
}

void softmax(const Matrix& logits, Matrix& probs) {
  probs.resize_no_zero(logits.rows(), logits.cols());
  std::copy(logits.data(), logits.data() + logits.size(), probs.data());
  for (size_t r = 0; r < probs.rows(); r++) {
    softmax_inplace(probs.row(r));
  }
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::span<const int> labels,
                             const std::span<const float> weights,
                             Matrix& dlogits) {
  require(labels.size() == logits.rows(), "cross_entropy: label count mismatch");
  require(weights.size() == logits.rows(), "cross_entropy: weight count mismatch");

  softmax(logits, dlogits);  // dlogits temporarily holds probabilities
  double total_loss = 0.0;
  double total_weight = 0.0;
  for (size_t r = 0; r < logits.rows(); r++) {
    total_weight += weights[r];
  }
  require(total_weight > 0.0, "cross_entropy: total weight must be positive");

  for (size_t r = 0; r < logits.rows(); r++) {
    const int label = labels[r];
    require(label >= 0 && static_cast<size_t>(label) < logits.cols(),
            "cross_entropy: label out of range");
    const float w = weights[r];
    const float p = std::max(dlogits.at(r, label), 1e-12f);
    total_loss += -static_cast<double>(w) * std::log(p);
    // d/dlogits of -w*log softmax = w * (probs - onehot); normalize by total w.
    float* row = dlogits.data() + r * dlogits.cols();
    const float norm = w / static_cast<float>(total_weight);
    for (size_t c = 0; c < dlogits.cols(); c++) {
      row[c] *= norm;
    }
    row[label] -= norm;
  }
  return total_loss / total_weight;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::span<const int> labels, Matrix& dlogits) {
  const std::vector<float> ones(logits.rows(), 1.0f);
  return softmax_cross_entropy(logits, labels, ones, dlogits);
}

double mse_loss(const Matrix& predictions, const std::span<const float> targets,
                Matrix& dpredictions) {
  require(predictions.cols() == 1, "mse_loss: predictions must be a column");
  require(predictions.rows() == targets.size(), "mse_loss: size mismatch");
  dpredictions.resize(predictions.rows(), 1);
  double total = 0.0;
  const float norm = 2.0f / static_cast<float>(predictions.rows());
  for (size_t r = 0; r < predictions.rows(); r++) {
    const float err = predictions.at(r, 0) - targets[r];
    total += static_cast<double>(err) * err;
    dpredictions.at(r, 0) = norm * err;
  }
  return total / static_cast<double>(predictions.rows());
}

}  // namespace puffer::nn
