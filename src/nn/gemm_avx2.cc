// AVX2/FMA micro-kernels for the GEMM layer. This translation unit is the
// only one compiled with -mavx2 -mfma (see CMakeLists.txt), so the rest of
// the binary keeps the baseline ISA; dispatch happens at runtime via
// __builtin_cpu_supports, and gemm.cc falls back to the bit-identical
// portable kernels when either the compile-time or the runtime check fails.

#include "nn/gemm.hh"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace puffer::nn::detail {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

/// One (MR x kPanelWidth) register tile: 2*MR ymm accumulators, the whole
/// k loop in registers, bias/ReLU epilogue fused into the writeback. Each
/// output element accumulates over p = 0..k-1 in ascending order through a
/// single fused-multiply-add chain — the same order for every MR, which is
/// what makes row results independent of batch size and tile position (the
/// batched==scalar bitwise contract). The epilogue is an IEEE add + max per
/// element, bit-identical to the portable fallback's scalar epilogue.
template <size_t MR>
void kernel_avx2(const float* a, const size_t lda, const float* panel,
                 const size_t k, float* c, const size_t ldc, const size_t nc,
                 const float* bias, const bool relu) {
  __m256 acc[MR][2];
  for (size_t r = 0; r < MR; r++) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (size_t p = 0; p < k; p++) {
    const __m256 b0 = _mm256_loadu_ps(panel + p * kPanelWidth);
    const __m256 b1 = _mm256_loadu_ps(panel + p * kPanelWidth + 8);
    for (size_t r = 0; r < MR; r++) {
      const __m256 av = _mm256_set1_ps(a[r * lda + p]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (nc == kPanelWidth) {
    __m256 bias0 = _mm256_setzero_ps();
    __m256 bias1 = _mm256_setzero_ps();
    if (bias != nullptr) {
      bias0 = _mm256_loadu_ps(bias);
      bias1 = _mm256_loadu_ps(bias + 8);
    }
    const __m256 zero = _mm256_setzero_ps();
    for (size_t r = 0; r < MR; r++) {
      __m256 v0 = acc[r][0];
      __m256 v1 = acc[r][1];
      if (bias != nullptr) {
        v0 = _mm256_add_ps(v0, bias0);
        v1 = _mm256_add_ps(v1, bias1);
      }
      if (relu) {
        v0 = _mm256_max_ps(v0, zero);
        v1 = _mm256_max_ps(v1, zero);
      }
      _mm256_storeu_ps(c + r * ldc, v0);
      _mm256_storeu_ps(c + r * ldc + 8, v1);
    }
  } else {
    // Tail panel (at most one per output matrix): spill the tile and apply
    // the epilogue scalar-wise over the valid columns.
    for (size_t r = 0; r < MR; r++) {
      float tmp[kPanelWidth];
      _mm256_storeu_ps(tmp, acc[r][0]);
      _mm256_storeu_ps(tmp + 8, acc[r][1]);
      for (size_t col = 0; col < nc; col++) {
        float v = tmp[col];
        if (bias != nullptr) {
          v += bias[col];
        }
        if (relu) {
          v = v > 0.0f ? v : 0.0f;
        }
        c[r * ldc + col] = v;
      }
    }
  }
}

constexpr KernelTable kAvx2Kernels{
    {&kernel_avx2<1>, &kernel_avx2<2>, &kernel_avx2<3>, &kernel_avx2<4>}};

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const bool supported = cpu_supports_avx2_fma();
  return supported ? &kAvx2Kernels : nullptr;
}

#else  // !(__AVX2__ && __FMA__)

const KernelTable* avx2_kernel_table() {
  return nullptr;
}

#endif

}  // namespace puffer::nn::detail
