#include "nn/optimizer.hh"

#include <cmath>

#include "util/require.hh"

namespace puffer::nn {

namespace {

void ensure_shaped(Gradients& state, const Mlp& net, bool& initialized) {
  if (!initialized) {
    state = net.make_gradients();
    initialized = true;
  }
}

}  // namespace

SgdOptimizer::SgdOptimizer(const double learning_rate, const double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  require(learning_rate > 0.0, "SgdOptimizer: learning rate must be positive");
  require(momentum >= 0.0 && momentum < 1.0, "SgdOptimizer: bad momentum");
}

void SgdOptimizer::step(Mlp& net, const Gradients& grads) {
  ensure_shaped(velocity_, net, initialized_);
  const float lr = static_cast<float>(learning_rate_);
  const float mom = static_cast<float>(momentum_);
  for (size_t l = 0; l < net.weights().size(); l++) {
    Matrix& w = net.weights()[l];
    Matrix& v = velocity_.weights[l];
    const Matrix& g = grads.weights[l];
    for (size_t i = 0; i < w.size(); i++) {
      v.data()[i] = mom * v.data()[i] - lr * g.data()[i];
      w.data()[i] += v.data()[i];
    }
    auto& b = net.biases()[l];
    auto& vb = velocity_.biases[l];
    const auto& gb = grads.biases[l];
    for (size_t i = 0; i < b.size(); i++) {
      vb[i] = mom * vb[i] - lr * gb[i];
      b[i] += vb[i];
    }
  }
}

void SgdOptimizer::reset() {
  initialized_ = false;
}

AdamOptimizer::AdamOptimizer(const double learning_rate, const double beta1,
                             const double beta2, const double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  require(learning_rate > 0.0, "AdamOptimizer: learning rate must be positive");
}

void AdamOptimizer::step(Mlp& net, const Gradients& grads) {
  if (!initialized_) {
    first_moment_ = net.make_gradients();
    second_moment_ = net.make_gradients();
    step_count_ = 0;
    initialized_ = true;
  }
  step_count_++;
  const double bias1 = 1.0 - std::pow(beta1_, step_count_);
  const double bias2 = 1.0 - std::pow(beta2_, step_count_);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  const float lr = static_cast<float>(learning_rate_);

  auto update = [&](float& param, float& m, float& v, const float g) {
    m = b1 * m + (1.0f - b1) * g;
    v = b2 * v + (1.0f - b2) * g * g;
    const float m_hat = m / static_cast<float>(bias1);
    const float v_hat = v / static_cast<float>(bias2);
    param -= lr * m_hat / (std::sqrt(v_hat) + eps);
  };

  for (size_t l = 0; l < net.weights().size(); l++) {
    Matrix& w = net.weights()[l];
    for (size_t i = 0; i < w.size(); i++) {
      update(w.data()[i], first_moment_.weights[l].data()[i],
             second_moment_.weights[l].data()[i], grads.weights[l].data()[i]);
    }
    auto& b = net.biases()[l];
    for (size_t i = 0; i < b.size(); i++) {
      update(b[i], first_moment_.biases[l][i], second_moment_.biases[l][i],
             grads.biases[l][i]);
    }
  }
}

void AdamOptimizer::reset() {
  initialized_ = false;
}

double clip_gradient_norm(Gradients& grads, const double max_norm) {
  require(max_norm > 0.0, "clip_gradient_norm: max_norm must be positive");
  double sum_sq = 0.0;
  for (const auto& w : grads.weights) {
    for (size_t i = 0; i < w.size(); i++) {
      sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
    }
  }
  for (const auto& b : grads.biases) {
    for (const float g : b) {
      sum_sq += static_cast<double>(g) * g;
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm) {
    grads.scale(static_cast<float>(max_norm / norm));
  }
  return norm;
}

}  // namespace puffer::nn
