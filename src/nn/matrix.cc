#include "nn/matrix.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::nn {

Matrix::Matrix(const size_t rows, const size_t cols, const float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(const float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(const size_t rows, const size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add_inplace(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::add_inplace: shape mismatch");
  for (size_t i = 0; i < data_.size(); i++) {
    data_[i] += other.data_[i];
  }
}

void Matrix::scale_inplace(const float factor) {
  for (float& value : data_) {
    value *= factor;
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.rows(), "matmul: inner dimensions must match");
  out.resize(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; i++) {
    float* out_row = out.data() + i * n;
    const float* a_row = a.data() + i * k;
    for (size_t p = 0; p < k; p++) {
      const float a_ip = a_row[p];
      const float* b_row = b.data() + p * n;
      for (size_t j = 0; j < n; j++) {
        out_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.cols(), "matmul_bt: inner dimensions must match");
  out.resize(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; i++) {
    const float* a_row = a.data() + i * k;
    for (size_t j = 0; j < n; j++) {
      const float* b_row = b.data() + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; p++) {
        acc += a_row[p] * b_row[p];
      }
      out.at(i, j) = acc;
    }
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.rows() == b.rows(), "matmul_at: inner dimensions must match");
  out.resize(a.cols(), b.cols());
  const size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (size_t p = 0; p < k; p++) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (size_t i = 0; i < m; i++) {
      const float a_pi = a_row[i];
      float* out_row = out.data() + i * n;
      for (size_t j = 0; j < n; j++) {
        out_row[j] += a_pi * b_row[j];
      }
    }
  }
}

void add_row_bias(Matrix& out, const std::span<const float> bias) {
  require(bias.size() == out.cols(), "add_row_bias: bias length mismatch");
  for (size_t r = 0; r < out.rows(); r++) {
    float* row = out.data() + r * out.cols();
    for (size_t c = 0; c < out.cols(); c++) {
      row[c] += bias[c];
    }
  }
}

}  // namespace puffer::nn
