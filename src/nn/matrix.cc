#include "nn/matrix.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::nn {

Matrix::Matrix(const size_t rows, const size_t cols, const float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(const float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(const size_t rows, const size_t cols) {
  resize_no_zero(rows, cols);
  std::fill(data_.begin(), data_.end(), 0.0f);
}

void Matrix::resize_no_zero(const size_t rows, const size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::add_inplace(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::add_inplace: shape mismatch");
  for (size_t i = 0; i < data_.size(); i++) {
    data_[i] += other.data_[i];
  }
}

void Matrix::scale_inplace(const float factor) {
  for (float& value : data_) {
    value *= factor;
  }
}

void add_row_bias(Matrix& out, const std::span<const float> bias) {
  require(bias.size() == out.cols(), "add_row_bias: bias length mismatch");
  for (size_t r = 0; r < out.rows(); r++) {
    float* row = out.data() + r * out.cols();
    for (size_t c = 0; c < out.cols(); c++) {
      row[c] += bias[c];
    }
  }
}

}  // namespace puffer::nn
