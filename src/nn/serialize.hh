#ifndef PUFFER_NN_SERIALIZE_HH
#define PUFFER_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/mlp.hh"

namespace puffer::nn {

/// Write an Mlp (architecture + parameters) to a stream in a simple
/// self-describing binary format. Used for the paper's warm-start retraining
/// ("the weights from the previous day's model are loaded", section 4.3) and
/// for shipping trained models between training and serving code.
void save_mlp(const Mlp& net, std::ostream& out);
Mlp load_mlp(std::istream& in);

void save_mlp_file(const Mlp& net, const std::string& path);
Mlp load_mlp_file(const std::string& path);

}  // namespace puffer::nn

#endif  // PUFFER_NN_SERIALIZE_HH
