#ifndef PUFFER_NN_MLP_HH
#define PUFFER_NN_MLP_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/gemm.hh"
#include "nn/matrix.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace puffer::nn {

/// Gradients of all parameters of an Mlp, in layer order.
struct Gradients {
  std::vector<Matrix> weights;
  std::vector<std::vector<float>> biases;

  void zero();
  void scale(float factor);
  void add(const Gradients& other);
};

/// Forward-pass activation tape needed for backprop, plus the scratch
/// buffers backward() ping-pongs through. All buffers resize in place, so a
/// Tape hoisted out of a training loop makes forward_tape + backward
/// allocation-free once warmed to shape (mirroring ForwardScratch for
/// inference).
struct Tape {
  /// activations[0] is the input batch; activations[i] (i >= 1) is the
  /// post-activation output of layer i-1.
  std::vector<Matrix> activations;

  /// backward() scratch (gradient w.r.t. pre-activations, per-layer dW).
  Matrix delta;
  Matrix next_delta;
  Matrix dw;
};

/// Reusable buffers for repeated inference. Matrix::resize_no_zero keeps
/// capacity, so after the first call at a given shape no further allocation
/// happens — this is what keeps the per-decision hot paths (TTP, Pensieve
/// actor) allocation-free.
struct ForwardScratch {
  Matrix input;   ///< 1 x input staging row for forward_one
  Matrix logits;  ///< final layer output
  Matrix hidden;  ///< ping-pong buffer for intermediate activations
};

/// Fully-connected network with ReLU hidden activations and a linear output
/// layer (logits). This mirrors the paper's TTP: 22 -> 64 -> 64 -> 21, and is
/// also used for the Pensieve actor/critic networks.
///
/// Weight matrices are packed once into the GEMM layer's panel layout
/// (lazily, invalidated whenever a mutable parameter accessor is taken), so
/// forward, forward_one, forward_tape and backward all run on packed panels
/// instead of re-striding the row-major storage every call.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; at least {in, out}.
  /// Weights use He initialization from `seed` (deterministic).
  Mlp(std::vector<size_t> layer_sizes, uint64_t seed);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&& other) noexcept;
  Mlp& operator=(Mlp&& other) noexcept;

  [[nodiscard]] size_t input_size() const { return layer_sizes_.front(); }
  [[nodiscard]] size_t output_size() const { return layer_sizes_.back(); }
  [[nodiscard]] size_t num_layers() const { return weights_.size(); }
  [[nodiscard]] const std::vector<size_t>& layer_sizes() const {
    return layer_sizes_;
  }
  [[nodiscard]] size_t parameter_count() const;

  /// Inference: compute logits for a batch. `logits` is resized.
  void forward(const Matrix& input, Matrix& logits) const;

  /// Same, ping-ponging intermediate activations between `logits` and the
  /// caller-owned `scratch` buffer: zero allocation once both have warmed
  /// to shape. Per-row results are bit-identical to forward()/forward_one()
  /// (every output row accumulates in the same order regardless of batch
  /// size or destination buffer).
  void forward(const Matrix& input, Matrix& logits, Matrix& scratch) const;

  /// Convenience single-example inference.
  [[nodiscard]] std::vector<float> forward_one(std::span<const float> input) const;

  /// Scratch-reusing single-example inference; the returned span aliases
  /// scratch.logits and stays valid until the scratch is next used. The
  /// span is mutable so callers can softmax in place.
  std::span<float> forward_one(std::span<const float> input,
                               ForwardScratch& scratch) const;

  /// Training forward pass: records activations in `tape`, leaves logits in
  /// tape.activations.back(). Tape buffers are reused in place.
  void forward_tape(const Matrix& input, Tape& tape) const;

  /// Backprop: given dLoss/dLogits (same shape as logits), accumulate
  /// parameter gradients into `grads` (which must be shaped by
  /// `make_gradients`, and may already hold partial sums). Uses the tape's
  /// scratch buffers, so repeated calls on a warm tape do not allocate.
  void backward(Tape& tape, const Matrix& dlogits, Gradients& grads) const;

  [[nodiscard]] Gradients make_gradients() const;

  /// Parameter access (used by optimizers and serialization). The non-const
  /// accessors invalidate the packed-weight cache: the next forward repacks.
  /// Invalidation happens at ACCESSOR CALL time — do not hold the returned
  /// reference across forward calls; re-take weights() for every mutation,
  /// or the forwards in between will run on stale packed panels.
  std::vector<Matrix>& weights() {
    invalidate_packed();
    return weights_;
  }
  [[nodiscard]] const std::vector<Matrix>& weights() const { return weights_; }
  std::vector<std::vector<float>>& biases() { return biases_; }
  [[nodiscard]] const std::vector<std::vector<float>>& biases() const {
    return biases_;
  }

  /// The packed panel-major copies of the weight matrices the kernels run
  /// on, repacking first if a mutable accessor dirtied them. Thread-safe for
  /// concurrent const use (first caller packs under a lock). Double-checked:
  /// the packed_valid_ acquire-load lets warmed readers skip the lock and
  /// return packed_ without holding pack_mutex_, a protocol clang's
  /// lock-based analysis cannot express — hence the opt-out annotation.
  const std::vector<PackedMatrix>& packed_weights() const
      NO_THREAD_SAFETY_ANALYSIS;

  /// Compares parameters (packing-cache state is ignored).
  bool operator==(const Mlp& other) const;

 private:
  void invalidate_packed() {
    packed_valid_.store(false, std::memory_order_release);
  }

  std::vector<size_t> layer_sizes_;
  /// weights_[l] has shape (layer_sizes_[l] x layer_sizes_[l+1]).
  std::vector<Matrix> weights_;
  std::vector<std::vector<float>> biases_;

  /// Lazily-built panel-major weight cache (see gemm.hh).
  mutable std::vector<PackedMatrix> packed_ GUARDED_BY(pack_mutex_);
  /// Publication flag for packed_: store-release by the packing thread
  /// (inside the pack_mutex_ critical section) pairs with the load-acquire
  /// in packed_weights(), so a reader that observes `true` also observes
  /// the fully-built panels. Weights are immutable while any forward runs
  /// (non-const accessors invalidate at call time, single-threaded).
  mutable std::atomic<bool> packed_valid_ ATOMIC_SAFE(
      "release inside the critical section pairs with readers' acquire") =
      false;
  mutable Mutex pack_mutex_ GUARDS(packed_);
};

}  // namespace puffer::nn

#endif  // PUFFER_NN_MLP_HH
