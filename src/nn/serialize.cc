#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/binary_io.hh"
#include "util/require.hh"

namespace puffer::nn {

namespace {

constexpr uint32_t kMagic = 0x50554d4c;  // "PUML"

uint64_t read_u64(std::istream& in) {
  return puffer::read_u64(in, "load_mlp");
}

}  // namespace

void save_mlp(const Mlp& net, std::ostream& out) {
  write_u64(out, kMagic);
  write_u64(out, net.layer_sizes().size());
  for (const size_t s : net.layer_sizes()) {
    write_u64(out, s);
  }
  for (size_t l = 0; l < net.num_layers(); l++) {
    const Matrix& w = net.weights()[l];
    out.write(reinterpret_cast<const char*>(w.data()),
              static_cast<std::streamsize>(w.size() * sizeof(float)));
    const auto& b = net.biases()[l];
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size() * sizeof(float)));
  }
  require(bool(out), "save_mlp: write failed");
}

Mlp load_mlp(std::istream& in) {
  require(read_u64(in) == kMagic, "load_mlp: bad magic");
  const uint64_t depth = read_u64(in);
  require(depth >= 2 && depth < 64, "load_mlp: implausible layer count");
  std::vector<size_t> sizes(depth);
  for (auto& s : sizes) {
    s = read_u64(in);
    require(s >= 1 && s < (1u << 20), "load_mlp: implausible layer size");
  }
  // Individually-plausible layer sizes can still multiply into terabytes of
  // weights; bound the total before constructing anything so a corrupt or
  // crafted header fails with RequirementError, not bad_alloc/OOM.
  uint64_t params = 0;
  for (size_t l = 0; l + 1 < sizes.size(); l++) {
    params += static_cast<uint64_t>(sizes[l]) * sizes[l + 1] + sizes[l + 1];
  }
  require(params < (uint64_t{1} << 26), "load_mlp: implausible parameter count");
  Mlp net{sizes, /*seed=*/0};
  for (size_t l = 0; l < net.num_layers(); l++) {
    Matrix& w = net.weights()[l];
    in.read(reinterpret_cast<char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(float)));
    auto& b = net.biases()[l];
    in.read(reinterpret_cast<char*>(b.data()),
            static_cast<std::streamsize>(b.size() * sizeof(float)));
  }
  require(bool(in), "load_mlp: truncated stream");
  return net;
}

void save_mlp_file(const Mlp& net, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  require(out.is_open(), "save_mlp_file: cannot open " + path);
  save_mlp(net, out);
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  require(in.is_open(), "load_mlp_file: cannot open " + path);
  return load_mlp(in);
}

}  // namespace puffer::nn
