#include "nn/gemm.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/prof.hh"
#include "util/require.hh"

namespace puffer::nn {

namespace {

/// Kernel-dispatch override for tests/benches (set_gemm_force_portable).
/// Both paths are bit-identical, so the flag can never change results —
/// it only selects which of two equal implementations runs.
// DETLINT-OK(global-state): annotated singleton — process-wide dispatch toggle, flipped only in single-threaded test/bench setup
std::atomic<bool> force_portable_{false};

/// Portable micro-kernel: the exact blocking of the AVX2 kernel with
/// std::fmaf standing in for vfmaddps lane-for-lane. fmaf is the IEEE-754
/// fused multiply-add (single rounding), so the two paths are bit-identical;
/// on x86-64 glibc lowers it to the hardware instruction when available.
/// The epilogue (IEEE add + max, elementwise) also matches exactly.
template <size_t MR>
void kernel_portable(const float* a, const size_t lda, const float* panel,
                     const size_t k, float* c, const size_t ldc,
                     const size_t nc, const float* bias, const bool relu) {
  float acc[MR][kPanelWidth] = {};
  for (size_t p = 0; p < k; p++) {
    const float* brow = panel + p * kPanelWidth;
    for (size_t r = 0; r < MR; r++) {
      const float av = a[r * lda + p];
      for (size_t col = 0; col < kPanelWidth; col++) {
        acc[r][col] = std::fmaf(av, brow[col], acc[r][col]);
      }
    }
  }
  for (size_t r = 0; r < MR; r++) {
    for (size_t col = 0; col < nc; col++) {
      float v = acc[r][col];
      if (bias != nullptr) {
        v += bias[col];
      }
      if (relu) {
        v = v > 0.0f ? v : 0.0f;
      }
      c[r * ldc + col] = v;
    }
  }
}

constexpr detail::KernelTable kPortableKernels{
    {&kernel_portable<1>, &kernel_portable<2>, &kernel_portable<3>,
     &kernel_portable<4>}};

const detail::KernelTable& active_kernels() {
  if (!force_portable_.load(std::memory_order_relaxed)) {
    const detail::KernelTable* simd = detail::avx2_kernel_table();
    if (simd != nullptr) {
      return *simd;
    }
  }
  return kPortableKernels;
}

}  // namespace

bool gemm_simd_available() {
  return detail::avx2_kernel_table() != nullptr;
}

void set_gemm_force_portable(const bool force) {
  force_portable_.store(force, std::memory_order_relaxed);
}

bool gemm_force_portable() {
  return force_portable_.load(std::memory_order_relaxed);
}

std::string gemm_active_path() {
  return (&active_kernels() == &kPortableKernels) ? "portable" : "avx2";
}

void PackedMatrix::pack_from(const Matrix& b) {
  const obs::ProfScope pack_scope{"nn.gemm.pack"};
  k_ = b.rows();
  n_ = b.cols();
  data_.assign(num_panels() * k_ * kPanelWidth, 0.0f);
  for (size_t p = 0; p < k_; p++) {
    const float* brow = b.data() + p * n_;
    for (size_t j = 0; j < n_; j++) {
      data_[(j / kPanelWidth) * k_ * kPanelWidth + p * kPanelWidth +
            j % kPanelWidth] = brow[j];
    }
  }
}

void PackedMatrix::pack_from_transposed(const Matrix& bt) {
  const obs::ProfScope pack_scope{"nn.gemm.pack"};
  k_ = bt.cols();
  n_ = bt.rows();
  data_.assign(num_panels() * k_ * kPanelWidth, 0.0f);
  for (size_t j = 0; j < n_; j++) {
    const float* btrow = bt.data() + j * k_;
    float* panel = data_.data() + (j / kPanelWidth) * k_ * kPanelWidth +
                   j % kPanelWidth;
    for (size_t p = 0; p < k_; p++) {
      panel[p * kPanelWidth] = btrow[p];
    }
  }
}

void gemm(const float* a, const size_t lda, const size_t m,
          const PackedMatrix& b, Matrix& out, const Epilogue epilogue,
          const std::span<const float> bias) {
  const size_t k = b.k();
  const size_t n = b.n();
  if (epilogue != Epilogue::kNone) {
    require(bias.size() == n, "gemm: bias length mismatch");
  }
  out.resize_no_zero(m, n);
  const obs::ProfScope kernel_scope{"nn.gemm"};
  const detail::KernelTable& kernels = active_kernels();
  const bool relu = epilogue == Epilogue::kBiasRelu;
  // Panels outermost so one packed panel stays hot in L1 across every row
  // tile; the k loop runs entirely in registers inside the micro-kernel,
  // which also fuses the bias/ReLU epilogue into its writeback.
  for (size_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const float* panel = b.panel(j0 / kPanelWidth);
    const size_t nc = std::min(kPanelWidth, n - j0);
    const float* panel_bias =
        epilogue == Epilogue::kNone ? nullptr : bias.data() + j0;
    for (size_t i0 = 0; i0 < m; i0 += kRowTile) {
      const size_t mr = std::min(kRowTile, m - i0);
      kernels.fn[mr - 1](a + i0 * lda, lda, panel, k,
                         out.data() + i0 * n + j0, n, nc, panel_bias, relu);
    }
  }
}

void gemm(const Matrix& a, const PackedMatrix& b, Matrix& out,
          const Epilogue epilogue, const std::span<const float> bias) {
  require(a.cols() == b.k(), "gemm: inner dimensions must match");
  gemm(a.data(), a.cols(), a.rows(), b, out, epilogue, bias);
}

// ---------------------------------------------------------------------------
// Kernel-backed implementations of the generic matmul entry points declared
// in matrix.hh. The operand that plays B is packed into a thread-local
// scratch (capacity kept warm across calls, so steady-state packing is a
// copy, not an allocation).
// ---------------------------------------------------------------------------

namespace {

PackedMatrix& pack_scratch() {
  thread_local PackedMatrix scratch;
  return scratch;
}

std::vector<float>& transpose_scratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.rows(), "matmul: inner dimensions must match");
  PackedMatrix& packed = pack_scratch();
  packed.pack_from(b);
  gemm(a.data(), a.cols(), a.rows(), packed, out);
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.cols(), "matmul_bt: inner dimensions must match");
  PackedMatrix& packed = pack_scratch();
  packed.pack_from_transposed(b);
  gemm(a.data(), a.cols(), a.rows(), packed, out);
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.rows() == b.rows(), "matmul_at: inner dimensions must match");
  const size_t k = a.rows();   // contraction length
  const size_t m = a.cols();   // output rows
  // Materialize a^T (m x k) into a thread-local scratch so the kernel reads
  // contiguous rows; the transpose copy is O(mk) against the O(mkn) GEMM.
  std::vector<float>& at = transpose_scratch();
  at.resize(m * k);
  for (size_t p = 0; p < k; p++) {
    const float* arow = a.data() + p * m;
    for (size_t i = 0; i < m; i++) {
      at[i * k + p] = arow[i];
    }
  }
  PackedMatrix& packed = pack_scratch();
  packed.pack_from(b);
  gemm(at.data(), k, m, packed, out);
}

// ---------------------------------------------------------------------------
// Naive reference kernels: the seed implementation, verbatim. These are the
// oracle for the property tests and the baseline for BENCH_nn speedups.
// ---------------------------------------------------------------------------

void naive_matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.rows(), "naive_matmul: inner dimensions must match");
  out.resize(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; i++) {
    float* out_row = out.data() + i * n;
    const float* a_row = a.data() + i * k;
    for (size_t p = 0; p < k; p++) {
      const float a_ip = a_row[p];
      const float* b_row = b.data() + p * n;
      for (size_t j = 0; j < n; j++) {
        out_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void naive_matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.cols() == b.cols(), "naive_matmul_bt: inner dimensions must match");
  out.resize(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; i++) {
    const float* a_row = a.data() + i * k;
    for (size_t j = 0; j < n; j++) {
      const float* b_row = b.data() + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; p++) {
        acc += a_row[p] * b_row[p];
      }
      out.at(i, j) = acc;
    }
  }
}

void naive_matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.rows() == b.rows(), "naive_matmul_at: inner dimensions must match");
  out.resize(a.cols(), b.cols());
  const size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (size_t p = 0; p < k; p++) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (size_t i = 0; i < m; i++) {
      const float a_pi = a_row[i];
      float* out_row = out.data() + i * n;
      for (size_t j = 0; j < n; j++) {
        out_row[j] += a_pi * b_row[j];
      }
    }
  }
}

}  // namespace puffer::nn
