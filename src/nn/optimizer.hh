#ifndef PUFFER_NN_OPTIMIZER_HH
#define PUFFER_NN_OPTIMIZER_HH

#include "nn/mlp.hh"

namespace puffer::nn {

/// Optimizer interface: applies accumulated gradients to an Mlp's parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(Mlp& net, const Gradients& grads) = 0;
  virtual void reset() = 0;
};

/// Plain SGD with optional momentum — what the paper uses for the TTP
/// ("stochastic gradient descent", section 4.3).
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  void step(Mlp& net, const Gradients& grads) override;
  void reset() override;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  [[nodiscard]] double learning_rate() const { return learning_rate_; }

 private:
  double learning_rate_;
  double momentum_;
  Gradients velocity_;
  bool initialized_ = false;
};

/// Adam; used for the Pensieve actor/critic training where SGD is fragile.
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  void step(Mlp& net, const Gradients& grads) override;
  void reset() override;

  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  Gradients first_moment_;
  Gradients second_moment_;
  long step_count_ = 0;
  bool initialized_ = false;
};

/// Clip gradients to a maximum global L2 norm (in place). Returns the norm
/// before clipping.
double clip_gradient_norm(Gradients& grads, double max_norm);

}  // namespace puffer::nn

#endif  // PUFFER_NN_OPTIMIZER_HH
