#ifndef PUFFER_NN_GEMM_HH
#define PUFFER_NN_GEMM_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/matrix.hh"

namespace puffer::nn {

/// ---------------------------------------------------------------------------
/// Dedicated GEMM kernel layer. Every NN forward/backward pass in the repo
/// (Fugu's TTP inference and nightly retraining, the Pensieve actor/critic)
/// funnels through these kernels, so they are written for throughput:
///
///  * B is packed once into panel-major layout (kPanelWidth columns per
///    panel, k-major inside a panel, zero-padded) so the micro-kernel
///    streams it sequentially;
///  * the micro-kernel holds a kRowTile x kPanelWidth register tile of the
///    output and runs the whole k loop in registers (fused multiply-add);
///  * bias and ReLU epilogues are fused into the writeback, so an MLP layer
///    is one kernel call instead of matmul + add_row_bias + relu passes.
///
/// Determinism contract: out[i][j] accumulates over p = 0..k-1 in strictly
/// ascending order into a single fused-multiply-add accumulator, regardless
/// of batch size, tile shape, thread count, or SIMD path. The AVX2/FMA path
/// and the portable fallback (std::fmaf, same blocking) are bit-identical;
/// results are reproducible run to run on any machine. This is what keeps
/// the repo's batched==scalar and fleet==sequential bitwise audits green.
/// ---------------------------------------------------------------------------

/// Columns per packed panel (the micro-kernel's N register width).
inline constexpr size_t kPanelWidth = 16;
/// Output rows per register tile (the micro-kernel's M width).
inline constexpr size_t kRowTile = 4;

/// A matrix packed for use as the B operand of gemm(): columns grouped into
/// panels of kPanelWidth, each panel stored k-major and contiguous
/// (panel p-th row holds B[p][j0..j0+15]), zero-padded to full width. Mlp
/// packs each weight matrix once and reuses it across every forward call.
class PackedMatrix {
 public:
  /// Pack b (k x n, row-major).
  void pack_from(const Matrix& b);
  /// Pack bt^T where bt is (n x k): equivalent to pack_from(transpose(bt))
  /// without materializing the transpose. Used for delta * W^T in backprop.
  void pack_from_transposed(const Matrix& bt);

  [[nodiscard]] size_t k() const { return k_; }
  [[nodiscard]] size_t n() const { return n_; }
  [[nodiscard]] size_t num_panels() const {
    return (n_ + kPanelWidth - 1) / kPanelWidth;
  }
  [[nodiscard]] const float* panel(const size_t index) const {
    return data_.data() + index * k_ * kPanelWidth;
  }

 private:
  size_t k_ = 0;
  size_t n_ = 0;
  std::vector<float> data_;
};

/// Fused epilogue applied during the writeback of a gemm() call.
enum class Epilogue {
  kNone,      ///< out = a * B
  kBias,      ///< out = a * B + bias (row vector, length n)
  kBiasRelu,  ///< out = max(a * B + bias, 0)
};

/// out(m x n) = a(m x k) * B, with `a` given as a raw row-major pointer with
/// row stride `lda` (>= k). `out` is resized without zero-filling (every
/// element is overwritten). `bias` must have length n for the bias epilogues.
void gemm(const float* a, size_t lda, size_t m, const PackedMatrix& b,
          Matrix& out, Epilogue epilogue = Epilogue::kNone,
          std::span<const float> bias = {});

/// Convenience overload for a Matrix A operand.
void gemm(const Matrix& a, const PackedMatrix& b, Matrix& out,
          Epilogue epilogue = Epilogue::kNone,
          std::span<const float> bias = {});

/// True when the AVX2/FMA micro-kernels were compiled in AND the running CPU
/// supports them. The portable fallback is bit-identical either way.
[[nodiscard]] bool gemm_simd_available();

/// Force the portable kernels even when SIMD is available (tests use this to
/// audit the cross-path bitwise-identity contract; benches to measure both).
void set_gemm_force_portable(bool force);
[[nodiscard]] bool gemm_force_portable();

/// "avx2" or "portable" — whichever path gemm() will actually run.
[[nodiscard]] std::string gemm_active_path();

/// ---------------------------------------------------------------------------
/// Retained naive reference kernels — the seed implementation, kept verbatim
/// as the correctness oracle for the property tests and as the baseline the
/// BENCH_nn speedups are measured against. Not used on any hot path.
/// ---------------------------------------------------------------------------
void naive_matmul(const Matrix& a, const Matrix& b, Matrix& out);
void naive_matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);
void naive_matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

namespace detail {

/// Micro-kernel ABI: compute an (mr x nc) output tile (nc <= kPanelWidth)
/// from mr rows of A (row stride lda) and one packed panel, writing straight
/// into the output matrix (row stride ldc) with the epilogue fused:
/// `bias` (pre-offset to this panel's columns, or nullptr) is added and, if
/// `relu`, the result is clamped at zero. mr = table index + 1.
using GemmKernelFn = void (*)(const float* a, size_t lda, const float* panel,
                              size_t k, float* c, size_t ldc, size_t nc,
                              const float* bias, bool relu);

struct KernelTable {
  GemmKernelFn fn[kRowTile];
};

/// Defined in gemm_avx2.cc; returns nullptr when the AVX2/FMA kernels were
/// not compiled in (non-x86 target or unsupported compiler flags).
const KernelTable* avx2_kernel_table();

}  // namespace detail

}  // namespace puffer::nn

#endif  // PUFFER_NN_GEMM_HH
