#include "nn/mlp.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::nn {

void Gradients::zero() {
  for (auto& w : weights) {
    w.fill(0.0f);
  }
  for (auto& b : biases) {
    std::fill(b.begin(), b.end(), 0.0f);
  }
}

void Gradients::scale(const float factor) {
  for (auto& w : weights) {
    w.scale_inplace(factor);
  }
  for (auto& b : biases) {
    for (float& value : b) {
      value *= factor;
    }
  }
}

void Gradients::add(const Gradients& other) {
  require(weights.size() == other.weights.size(), "Gradients::add: mismatch");
  for (size_t l = 0; l < weights.size(); l++) {
    weights[l].add_inplace(other.weights[l]);
    for (size_t i = 0; i < biases[l].size(); i++) {
      biases[l][i] += other.biases[l][i];
    }
  }
}

Mlp::Mlp(std::vector<size_t> layer_sizes, const uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)) {
  require(layer_sizes_.size() >= 2, "Mlp: need at least input and output sizes");
  Rng rng{seed};
  for (size_t l = 0; l + 1 < layer_sizes_.size(); l++) {
    const size_t fan_in = layer_sizes_[l];
    const size_t fan_out = layer_sizes_[l + 1];
    Matrix w{fan_in, fan_out};
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (size_t i = 0; i < w.size(); i++) {
      w.data()[i] = static_cast<float>(rng.normal(0.0, scale));
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(fan_out, 0.0f);
  }
}

Mlp::Mlp(const Mlp& other)
    : layer_sizes_(other.layer_sizes_),
      weights_(other.weights_),
      biases_(other.biases_) {}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this != &other) {
    layer_sizes_ = other.layer_sizes_;
    weights_ = other.weights_;
    biases_ = other.biases_;
    invalidate_packed();
  }
  return *this;
}

Mlp::Mlp(Mlp&& other) noexcept
    : layer_sizes_(std::move(other.layer_sizes_)),
      weights_(std::move(other.weights_)),
      biases_(std::move(other.biases_)) {}

Mlp& Mlp::operator=(Mlp&& other) noexcept {
  if (this != &other) {
    layer_sizes_ = std::move(other.layer_sizes_);
    weights_ = std::move(other.weights_);
    biases_ = std::move(other.biases_);
    invalidate_packed();
  }
  return *this;
}

bool Mlp::operator==(const Mlp& other) const {
  return layer_sizes_ == other.layer_sizes_ && weights_ == other.weights_ &&
         biases_ == other.biases_;
}

const std::vector<PackedMatrix>& Mlp::packed_weights() const {
  if (!packed_valid_.load(std::memory_order_acquire)) {
    const MutexLock lock{pack_mutex_};
    if (!packed_valid_.load(std::memory_order_relaxed)) {
      packed_.resize(weights_.size());
      for (size_t l = 0; l < weights_.size(); l++) {
        packed_[l].pack_from(weights_[l]);
      }
      packed_valid_.store(true, std::memory_order_release);
    }
  }
  return packed_;
}

size_t Mlp::parameter_count() const {
  size_t total = 0;
  for (size_t l = 0; l < weights_.size(); l++) {
    total += weights_[l].size() + biases_[l].size();
  }
  return total;
}

void Mlp::forward(const Matrix& input, Matrix& logits) const {
  Matrix scratch;
  forward(input, logits, scratch);
}

void Mlp::forward(const Matrix& input, Matrix& logits, Matrix& scratch) const {
  require(input.cols() == input_size(), "Mlp::forward: input width mismatch");
  require(&input != &logits && &input != &scratch && &logits != &scratch,
          "Mlp::forward: input, logits and scratch must be distinct");
  const std::vector<PackedMatrix>& packed = packed_weights();
  const Matrix* src = &input;
  for (size_t l = 0; l < weights_.size(); l++) {
    // Alternate destinations so the last layer's write lands in `logits`.
    const size_t layers_after = weights_.size() - 1 - l;
    Matrix* dst = (layers_after % 2 == 0) ? &logits : &scratch;
    const Epilogue epilogue =
        l + 1 < weights_.size() ? Epilogue::kBiasRelu : Epilogue::kBias;
    gemm(*src, packed[l], *dst, epilogue, biases_[l]);
    src = dst;
  }
}

std::vector<float> Mlp::forward_one(const std::span<const float> input) const {
  ForwardScratch scratch;
  const std::span<const float> logits = forward_one(input, scratch);
  return {logits.begin(), logits.end()};
}

std::span<float> Mlp::forward_one(const std::span<const float> input,
                                  ForwardScratch& scratch) const {
  require(input.size() == input_size(), "Mlp::forward_one: width mismatch");
  scratch.input.resize_no_zero(1, input_size());
  std::copy(input.begin(), input.end(), scratch.input.data());
  forward(scratch.input, scratch.logits, scratch.hidden);
  return scratch.logits.row(0);
}

void Mlp::forward_tape(const Matrix& input, Tape& tape) const {
  require(input.cols() == input_size(), "Mlp::forward_tape: width mismatch");
  const std::vector<PackedMatrix>& packed = packed_weights();
  tape.activations.resize(weights_.size() + 1);
  Matrix& staged = tape.activations.front();
  staged.resize_no_zero(input.rows(), input.cols());
  std::copy(input.data(), input.data() + input.size(), staged.data());
  for (size_t l = 0; l < weights_.size(); l++) {
    const Epilogue epilogue =
        l + 1 < weights_.size() ? Epilogue::kBiasRelu : Epilogue::kBias;
    gemm(tape.activations[l], packed[l], tape.activations[l + 1], epilogue,
         biases_[l]);
  }
}

void Mlp::backward(Tape& tape, const Matrix& dlogits, Gradients& grads) const {
  require(tape.activations.size() == weights_.size() + 1,
          "Mlp::backward: tape does not match network depth");
  require(dlogits.rows() == tape.activations.back().rows() &&
              dlogits.cols() == output_size(),
          "Mlp::backward: dlogits shape mismatch");

  // delta = gradient w.r.t. pre-activation of the current layer.
  Matrix& delta = tape.delta;
  Matrix& next_delta = tape.next_delta;
  Matrix& dw = tape.dw;
  delta.resize_no_zero(dlogits.rows(), dlogits.cols());
  std::copy(dlogits.data(), dlogits.data() + dlogits.size(), delta.data());
  for (size_t l = weights_.size(); l-- > 0;) {
    const Matrix& layer_input = tape.activations[l];
    // dW = input^T * delta ; db = column sums of delta.
    matmul_at(layer_input, delta, dw);
    grads.weights[l].add_inplace(dw);
    for (size_t r = 0; r < delta.rows(); r++) {
      const float* row = delta.data() + r * delta.cols();
      for (size_t c = 0; c < delta.cols(); c++) {
        grads.biases[l][c] += row[c];
      }
    }
    if (l == 0) {
      break;
    }
    // Propagate: next_delta = delta * W^T, masked by ReLU derivative of the
    // layer-(l-1) output (which is post-ReLU, so derivative = output > 0).
    matmul_bt(delta, weights_[l], next_delta);
    const Matrix& activation = tape.activations[l];
    for (size_t i = 0; i < next_delta.size(); i++) {
      if (activation.data()[i] <= 0.0f) {
        next_delta.data()[i] = 0.0f;
      }
    }
    std::swap(delta, next_delta);
  }
}

Gradients Mlp::make_gradients() const {
  Gradients grads;
  for (size_t l = 0; l < weights_.size(); l++) {
    grads.weights.emplace_back(weights_[l].rows(), weights_[l].cols());
    grads.biases.emplace_back(biases_[l].size(), 0.0f);
  }
  return grads;
}

}  // namespace puffer::nn
