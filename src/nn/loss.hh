#ifndef PUFFER_NN_LOSS_HH
#define PUFFER_NN_LOSS_HH

#include <span>
#include <vector>

#include "nn/matrix.hh"

namespace puffer::nn {

/// Row-wise softmax of logits into `probs` (resized to match).
void softmax(const Matrix& logits, Matrix& probs);

/// In-place numerically-stable softmax of one row vector.
void softmax_inplace(std::span<float> row);

/// Weighted softmax cross-entropy.
///
/// For each row i with integer label `labels[i]` and weight `weights[i]`,
/// loss_i = -w_i * log softmax(logits_i)[label_i]. Returns the weighted mean
/// loss and writes dLoss/dLogits (already divided by total weight) into
/// `dlogits`. This is the TTP's training objective (paper section 4.3).
double softmax_cross_entropy(const Matrix& logits, std::span<const int> labels,
                             std::span<const float> weights, Matrix& dlogits);

/// Unweighted helper (all weights = 1).
double softmax_cross_entropy(const Matrix& logits, std::span<const int> labels,
                             Matrix& dlogits);

/// Mean squared error between a single-column prediction and targets, with
/// gradient; used by the Pensieve critic (value baseline).
double mse_loss(const Matrix& predictions, std::span<const float> targets,
                Matrix& dpredictions);

}  // namespace puffer::nn

#endif  // PUFFER_NN_LOSS_HH
