#ifndef PUFFER_SIM_FAULTS_HH
#define PUFFER_SIM_FAULTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hh"

namespace puffer::sim {

/// Built-in fault family names. Families are string keys (mirroring the
/// scenario registry) so new failure modes compose without enum churn.
inline constexpr std::string_view kFaultTtpInference = "ttp-inference";
inline constexpr std::string_view kFaultSessionAbort = "session-abort";
inline constexpr std::string_view kFaultTelemetryLoss = "telemetry-loss";
inline constexpr std::string_view kFaultTelemetryDup = "telemetry-dup";
inline constexpr std::string_view kFaultRetrainCrash = "retrain-crash";
inline constexpr std::string_view kFaultCheckpointLoad = "checkpoint-load";
inline constexpr std::string_view kFaultModelLoad = "model-load";
inline constexpr std::string_view kFaultLinkOutage = "link-outage";

/// Registry of known fault families: name -> one-line description. Shares
/// the scenario registry's shape so tools can enumerate both planes the
/// same way. FaultPlan::add validates against this set.
class FaultRegistry {
 public:
  void register_family(std::string name, std::string description);
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;  // sorted
  [[nodiscard]] const std::string& description(std::string_view name) const;

 private:
  std::map<std::string, std::string, std::less<>> families_;
};

/// Process-wide registry preloaded with the built-in families above.
FaultRegistry& fault_registry();

/// One fault family's knobs: an injection probability per opportunity, plus
/// a duration for window-shaped faults (link outages).
struct FaultSpec {
  std::string family;
  double probability = 0.0;
  double duration_s = 0.0;

  bool operator==(const FaultSpec&) const = default;
};

/// Seeded fault plan. Every injection decision is a PURE function of
/// (plan seed, family, caller-supplied stable keys): draws go through
/// dedicated util::Rng splits, never a shared mutable stream, so fault
/// schedules are invariant to thread count, shard count, and event
/// interleaving — the fleet==sequential bitwise contract holds with
/// faults enabled. Virtual time alone advances the schedule.
struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  /// Add (or overwrite) a family's spec. Unknown families are an error —
  /// the message lists the registered ones.
  void add(std::string_view family, double probability, double duration_s = 0.0);

  [[nodiscard]] const FaultSpec* find(std::string_view family) const;
  [[nodiscard]] bool has(std::string_view family) const;
  /// Injection probability for a family; 0 when absent or plan disabled.
  [[nodiscard]] double probability(std::string_view family) const;
  [[nodiscard]] double duration_s(std::string_view family) const;

  /// Root of a family's dedicated draw stream. Callers split further with
  /// stable keys (session run seed, day, arm, attempt, group index) before
  /// drawing, e.g.:
  ///   plan.rng(kFaultRetrainCrash).split(day).split(arm).split(attempt)
  [[nodiscard]] Rng rng(std::string_view family) const;

  /// One-shot Bernoulli draw keyed on stable keys (applied as successive
  /// index splits). Returns false when the plan is disabled or the family
  /// has no spec.
  [[nodiscard]] bool draw(std::string_view family,
                          std::initializer_list<uint64_t> keys) const;

  /// Canonical string for cache keys / checkpoint fingerprints. Callers
  /// must mix this in ONLY when enabled, so zero-fault artifacts keep
  /// their pre-fault identities.
  [[nodiscard]] std::string fingerprint_key() const;

  bool operator==(const FaultPlan&) const = default;
};

/// Parse "family=prob[:duration_s][,family=prob...]" into an enabled plan
/// (e.g. "ttp-inference=0.05,link-outage=0.3:30"). Unknown families and
/// malformed numbers are errors naming the offending token.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view text, uint64_t seed);

}  // namespace puffer::sim

#endif  // PUFFER_SIM_FAULTS_HH
