#include "sim/session.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"
#include "util/running_stats.hh"

namespace puffer::sim {

void send_preamble(net::TcpSender& sender, const double bytes) {
  sender.transfer(bytes);
}

StreamOutcome run_stream(net::TcpSender& sender, abr::AbrAlgorithm& abr,
                         media::VbrVideoSource& video,
                         const int64_t first_chunk, const UserBehavior& user,
                         Rng& rng, const StreamRunConfig& config,
                         StreamObserver* observer) {
  StreamOutcome outcome;
  const double t0 = sender.now();
  const double chunk_dur = video.chunk_duration();

  // A tiny fraction of clients hit a player/decoder defect and are excluded
  // from the analysis (Figure A1: "stalled from a slow video decoder").
  if (rng.bernoulli(3e-4)) {
    outcome.decoder_failure = true;
    return outcome;
  }

  double buffer_s = 0.0;
  bool playing = false;
  double played_s = 0.0;
  double stall_s = 0.0;
  double startup_delay_s = 0.0;
  double prev_ssim_db = -1.0;
  int prev_rung = -1;
  bool user_left = false;

  RunningStats ssim_stats, variation_stats;
  double total_bytes = 0.0;
  double total_tx_time = 0.0;

  std::vector<media::ChunkOptions> lookahead(
      static_cast<size_t>(config.lookahead_chunks));

  for (int64_t i = first_chunk; !user_left; i++) {
    if (config.max_stream_chunks > 0 &&
        outcome.chunks_played >= config.max_stream_chunks) {
      break;  // simulation budget reached; figures cover the played prefix
    }
    // Server-side send pacing: wait until the client buffer has room for
    // another chunk (Puffer sends whenever there is room, section 6.2).
    if (playing && buffer_s + chunk_dur > config.max_buffer_s) {
      const double wait = buffer_s + chunk_dur - config.max_buffer_s;
      sender.idle_until(sender.now() + wait);
      buffer_s -= wait;
      played_s += wait;
      if (played_s >= user.watch_intent_s) {
        break;  // viewer finished while we were waiting
      }
    }

    // ABR decision.
    abr::AbrObservation obs;
    obs.chunk_index = i;
    obs.buffer_s = buffer_s;
    obs.prev_ssim_db = prev_ssim_db;
    obs.prev_rung = prev_rung;
    obs.tcp = sender.info();
    for (int k = 0; k < config.lookahead_chunks; k++) {
      lookahead[static_cast<size_t>(k)] = video.chunk_options(i + k);
    }
    const int rung = abr.choose_rung(obs, lookahead);
    require(rung >= 0 && rung < media::kNumRungs, "run_stream: bad rung");
    const media::ChunkVersion version = lookahead[0].version(rung);

    // Transfer.
    const net::TcpInfo tcp_at_send = sender.info();
    if (observer != nullptr) {
      abr::ChunkRecord sent;
      sent.chunk_index = i;
      sent.rung = rung;
      sent.size_bytes = version.size_bytes;
      sent.ssim_db = version.ssim_db;
      sent.tcp_at_send = tcp_at_send;
      observer->on_video_sent(sender.now(), sent, buffer_s);
    }
    const net::TransferResult transfer =
        sender.transfer(static_cast<double>(version.size_bytes));
    const double tx = transfer.transmission_time();
    if (observer != nullptr) {
      observer->on_video_acked(transfer.completion_s, i);
    }

    // Playback during the transfer.
    if (playing) {
      if (buffer_s >= tx) {
        buffer_s -= tx;
        played_s += tx;
      } else {
        // Buffer ran dry: played what was left, then stalled.
        played_s += buffer_s;
        const double stall_duration = tx - buffer_s;
        buffer_s = 0.0;
        if (observer != nullptr) {
          observer->on_client_buffer(transfer.completion_s - stall_duration,
                                     "rebuffer", 0.0, stall_s);
        }
        if (stall_duration > user.stall_patience_s) {
          stall_s += user.stall_patience_s;
          user_left = true;  // viewer gave up mid-stall
        } else {
          stall_s += stall_duration;
          // Continuous abandonment hazard while rebuffering.
          const double p_leave =
              1.0 - std::exp(-user.stall_hazard_per_s * stall_duration);
          if (rng.bernoulli(p_leave)) {
            user_left = true;
          }
        }
        if (user_left) {
          break;
        }
      }
    } else {
      // Startup phase: playback begins when the first chunk arrives and the
      // player has initialized.
      startup_delay_s =
          transfer.completion_s - t0 + config.player_init_delay_s;
      if (startup_delay_s >= user.watch_intent_s) {
        // Zapped away before playback began (Figure A1's biggest bucket).
        outcome.wall_time_s = sender.now() - t0;
        return outcome;
      }
      playing = true;
      outcome.began_playing = true;
      outcome.figures.first_chunk_ssim_db = version.ssim_db;
      if (observer != nullptr) {
        observer->on_client_buffer(transfer.completion_s, "startup", 0.0, 0.0);
      }
    }

    // Chunk arrives: buffer grows, telemetry recorded.
    buffer_s += chunk_dur;
    if (observer != nullptr) {
      observer->on_client_buffer(transfer.completion_s, "timer", buffer_s,
                                 stall_s);
    }
    ssim_stats.add(version.ssim_db);
    if (prev_ssim_db >= 0.0) {
      variation_stats.add(std::abs(version.ssim_db - prev_ssim_db));
    }
    total_bytes += static_cast<double>(version.size_bytes);
    total_tx_time += tx;

    abr::ChunkRecord record;
    record.chunk_index = i;
    record.rung = rung;
    record.size_bytes = version.size_bytes;
    record.ssim_db = version.ssim_db;
    record.transmission_time_s = tx;
    record.tcp_at_send = tcp_at_send;
    abr.on_chunk_complete(record);

    outcome.transfer_log.push_back(
        {static_cast<double>(version.size_bytes) / 1e6, tx, tcp_at_send});
    outcome.chunks_played++;
    prev_ssim_db = version.ssim_db;
    prev_rung = rung;

    // Quality-driven abandonment: viewers drift away from a stream that
    // looks bad (drives the Figure 10 tail separation).
    const double quality_deficit =
        std::max(0.0, user.quality_reference_db - version.ssim_db);
    const double p_quality_leave =
        1.0 - std::exp(-user.quality_hazard_per_s_db * quality_deficit *
                       chunk_dur);
    if (rng.bernoulli(p_quality_leave)) {
      user_left = true;
    }
    if (played_s >= user.watch_intent_s) {
      break;
    }
  }

  outcome.figures.watch_time_s = played_s + stall_s;
  outcome.figures.stall_time_s = stall_s;
  outcome.figures.startup_delay_s = startup_delay_s;
  outcome.figures.ssim_mean_db = ssim_stats.mean();
  outcome.figures.ssim_variation_db = variation_stats.mean();
  if (outcome.chunks_played > 0) {
    outcome.figures.mean_bitrate_mbps =
        total_bytes * 8.0 / 1e6 /
        (static_cast<double>(outcome.chunks_played) * chunk_dur);
  }
  if (total_tx_time > 0.0) {
    outcome.figures.mean_delivery_rate_mbps =
        total_bytes * 8.0 / 1e6 / total_tx_time;
  }
  outcome.wall_time_s = sender.now() - t0;
  return outcome;
}

}  // namespace puffer::sim
