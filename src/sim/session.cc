#include "sim/session.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::sim {

void send_preamble(net::TcpSender& sender, const double bytes) {
  sender.transfer(bytes);
}

StreamSession::StreamSession(net::TcpSender& sender, abr::AbrAlgorithm& abr,
                             media::VbrVideoSource& video,
                             const int64_t first_chunk,
                             const UserBehavior& user, Rng& rng,
                             const StreamRunConfig& config,
                             StreamObserver* observer)
    : sender_(sender),
      abr_(abr),
      video_(video),
      user_(user),
      rng_(rng),
      config_(config),
      observer_(observer),
      t0_(sender.now()),
      chunk_dur_(video.chunk_duration()),
      next_chunk_(first_chunk),
      lookahead_(static_cast<size_t>(config.lookahead_chunks)) {
  // A tiny fraction of clients hit a player/decoder defect and are excluded
  // from the analysis (Figure A1: "stalled from a slow video decoder").
  if (rng_.bernoulli(3e-4)) {
    outcome_.decoder_failure = true;
    done_ = true;
  }
}

StreamSession::PrepareStep StreamSession::prepare_chunk_async(double& wait_s) {
  if (done_) {
    return PrepareStep::kDone;
  }
  if (config_.max_stream_chunks > 0 &&
      outcome_.chunks_played >= config_.max_stream_chunks) {
    // Simulation budget reached; figures cover the played prefix.
    end_stream();
    return PrepareStep::kDone;
  }
  // Server-side send pacing: wait until the client buffer has room for
  // another chunk (Puffer sends whenever there is room, section 6.2).
  if (playing_ && buffer_s_ + chunk_dur_ > config_.max_buffer_s) {
    pending_wait_s_ = buffer_s_ + chunk_dur_ - config_.max_buffer_s;
    wait_s = pending_wait_s_;
    return PrepareStep::kWait;
  }
  build_observation();
  return PrepareStep::kDecision;
}

StreamSession::PrepareStep StreamSession::finish_wait() {
  const double wait = pending_wait_s_;
  pending_wait_s_ = 0.0;
  buffer_s_ -= wait;
  played_s_ += wait;
  if (played_s_ >= user_.watch_intent_s) {
    // Viewer finished while we were waiting.
    end_stream();
    return PrepareStep::kDone;
  }
  build_observation();
  return PrepareStep::kDecision;
}

void StreamSession::build_observation() {
  // Expose the pending ABR decision.
  obs_ = abr::AbrObservation{};
  obs_.chunk_index = next_chunk_;
  obs_.buffer_s = buffer_s_;
  obs_.prev_ssim_db = prev_ssim_db_;
  obs_.prev_rung = prev_rung_;
  obs_.tcp = sender_.info();
  for (int k = 0; k < config_.lookahead_chunks; k++) {
    lookahead_[static_cast<size_t>(k)] = video_.chunk_options(next_chunk_ + k);
  }
}

bool StreamSession::prepare_chunk() {
  double wait_s = 0.0;
  PrepareStep step = prepare_chunk_async(wait_s);
  if (step == PrepareStep::kWait) {
    sender_.idle_until(sender_.now() + wait_s);
    step = finish_wait();
  }
  return step == PrepareStep::kDecision;
}

double StreamSession::begin_chunk() {
  require(!done_, "StreamSession::begin_chunk: stream is over");

  // ABR decision.
  const int rung = abr_.choose_rung(obs_, lookahead_);
  require(rung >= 0 && rung < media::kNumRungs, "run_stream: bad rung");
  pending_rung_ = rung;
  pending_version_ = lookahead_[0].version(rung);
  pending_tcp_at_send_ = sender_.info();
  if (observer_ != nullptr) {
    abr::ChunkRecord sent;
    sent.chunk_index = next_chunk_;
    sent.rung = rung;
    sent.size_bytes = pending_version_.size_bytes;
    sent.ssim_db = pending_version_.ssim_db;
    sent.tcp_at_send = pending_tcp_at_send_;
    observer_->on_video_sent(sender_.now(), sent, buffer_s_);
  }
  return static_cast<double>(pending_version_.size_bytes);
}

void StreamSession::complete_chunk(const net::TransferResult& transfer) {
  const int rung = pending_rung_;
  const media::ChunkVersion version = pending_version_;
  const net::TcpInfo tcp_at_send = pending_tcp_at_send_;
  const double tx = transfer.transmission_time();
  if (observer_ != nullptr) {
    observer_->on_video_acked(transfer.completion_s, next_chunk_);
  }

  // Playback during the transfer.
  if (playing_) {
    if (buffer_s_ >= tx) {
      buffer_s_ -= tx;
      played_s_ += tx;
    } else {
      // Buffer ran dry: played what was left, then stalled.
      played_s_ += buffer_s_;
      const double stall_duration = tx - buffer_s_;
      buffer_s_ = 0.0;
      if (observer_ != nullptr) {
        observer_->on_client_buffer(transfer.completion_s - stall_duration,
                                    "rebuffer", 0.0, stall_s_);
      }
      if (stall_duration > user_.stall_patience_s) {
        stall_s_ += user_.stall_patience_s;
        user_left_ = true;  // viewer gave up mid-stall
      } else {
        stall_s_ += stall_duration;
        // Continuous abandonment hazard while rebuffering.
        const double p_leave =
            1.0 - std::exp(-user_.stall_hazard_per_s * stall_duration);
        if (rng_.bernoulli(p_leave)) {
          user_left_ = true;
        }
      }
      if (user_left_) {
        end_stream();
        return;
      }
    }
  } else {
    // Startup phase: playback begins when the first chunk arrives and the
    // player has initialized.
    startup_delay_s_ =
        transfer.completion_s - t0_ + config_.player_init_delay_s;
    if (startup_delay_s_ >= user_.watch_intent_s) {
      // Zapped away before playback began (Figure A1's biggest bucket):
      // ends with default figures, exactly like the historical early return.
      outcome_.wall_time_s = sender_.now() - t0_;
      done_ = true;
      return;
    }
    playing_ = true;
    outcome_.began_playing = true;
    outcome_.figures.first_chunk_ssim_db = version.ssim_db;
    if (observer_ != nullptr) {
      observer_->on_client_buffer(transfer.completion_s, "startup", 0.0, 0.0);
    }
  }

  // Chunk arrives: buffer grows, telemetry recorded.
  buffer_s_ += chunk_dur_;
  if (observer_ != nullptr) {
    observer_->on_client_buffer(transfer.completion_s, "timer", buffer_s_,
                                stall_s_);
  }
  ssim_stats_.add(version.ssim_db);
  if (prev_ssim_db_ >= 0.0) {
    variation_stats_.add(std::abs(version.ssim_db - prev_ssim_db_));
  }
  total_bytes_ += static_cast<double>(version.size_bytes);
  total_tx_time_ += tx;

  abr::ChunkRecord record;
  record.chunk_index = next_chunk_;
  record.rung = rung;
  record.size_bytes = version.size_bytes;
  record.ssim_db = version.ssim_db;
  record.transmission_time_s = tx;
  record.tcp_at_send = tcp_at_send;
  abr_.on_chunk_complete(record);

  outcome_.transfer_log.push_back(
      {static_cast<double>(version.size_bytes) / 1e6, tx, tcp_at_send});
  outcome_.chunks_played++;
  prev_ssim_db_ = version.ssim_db;
  prev_rung_ = rung;
  next_chunk_++;

  // Quality-driven abandonment: viewers drift away from a stream that
  // looks bad (drives the Figure 10 tail separation).
  const double quality_deficit =
      std::max(0.0, user_.quality_reference_db - version.ssim_db);
  const double p_quality_leave =
      1.0 - std::exp(-user_.quality_hazard_per_s_db * quality_deficit *
                     chunk_dur_);
  if (rng_.bernoulli(p_quality_leave)) {
    user_left_ = true;
  }
  if (user_left_ || played_s_ >= user_.watch_intent_s) {
    end_stream();
  }
}

void StreamSession::finish_chunk() {
  const double bytes = begin_chunk();
  complete_chunk(sender_.transfer(bytes));
}

void StreamSession::abort_stream() {
  require(!done_, "StreamSession::abort_stream: stream is over");
  user_left_ = true;
  end_stream();
}

void StreamSession::end_stream() {
  outcome_.figures.watch_time_s = played_s_ + stall_s_;
  outcome_.figures.stall_time_s = stall_s_;
  outcome_.figures.startup_delay_s = startup_delay_s_;
  outcome_.figures.ssim_mean_db = ssim_stats_.mean();
  outcome_.figures.ssim_variation_db = variation_stats_.mean();
  if (outcome_.chunks_played > 0) {
    outcome_.figures.mean_bitrate_mbps =
        total_bytes_ * 8.0 / 1e6 /
        (static_cast<double>(outcome_.chunks_played) * chunk_dur_);
  }
  if (total_tx_time_ > 0.0) {
    outcome_.figures.mean_delivery_rate_mbps =
        total_bytes_ * 8.0 / 1e6 / total_tx_time_;
  }
  outcome_.wall_time_s = sender_.now() - t0_;
  done_ = true;
}

StreamOutcome StreamSession::take_outcome() {
  require(done_, "StreamSession::take_outcome: stream still in flight");
  return std::move(outcome_);
}

StreamOutcome run_stream(net::TcpSender& sender, abr::AbrAlgorithm& abr,
                         media::VbrVideoSource& video,
                         const int64_t first_chunk, const UserBehavior& user,
                         Rng& rng, const StreamRunConfig& config,
                         StreamObserver* observer) {
  StreamSession session{sender, abr,    video, first_chunk,
                        user,   rng,    config, observer};
  while (session.prepare_chunk()) {
    session.finish_chunk();
  }
  return session.take_outcome();
}

}  // namespace puffer::sim
