#ifndef PUFFER_SIM_FLEET_HH
#define PUFFER_SIM_FLEET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "stats/load_series.hh"

namespace puffer::fugu {
class TtpInferenceBatch;
}  // namespace puffer::fugu

namespace puffer::sim {

/// One unit of fleet work: a session advanced decision-by-decision. The
/// engine holds each task from its arrival until prepare() reports
/// completion; between those, every call sequence is
///   prepare() -> [stage()] -> finish_chunk() -> prepare() -> ...
/// Tasks must be mutually independent (no shared mutable state): that is
/// what makes the fleet interleaving — and its thread count — unable to
/// affect any task's results.
class FleetTask {
 public:
  enum class Step {
    kDecision,  ///< parked at an ABR decision; finish_chunk() completes it
    kDone,      ///< session over; the engine records completion and drops it
  };

  virtual ~FleetTask() = default;

  /// Advance to the next ABR decision point or to completion.
  virtual Step prepare() = 0;

  /// If this task's ABR scheme supports fused inference, stage the pending
  /// decision's feature rows into `batch` and return true; the engine then
  /// runs the batch before finish_chunk(). Return false to run inference
  /// inline inside finish_chunk().
  virtual bool stage(fugu::TtpInferenceBatch& batch) = 0;

  /// Complete the decision prepare() parked at (ABR choice + transfer).
  virtual void finish_chunk() = 0;

  /// Session-local elapsed virtual time; the engine maps it to the global
  /// timeline as arrival_time + elapsed_s().
  [[nodiscard]] virtual double elapsed_s() const = 0;
};

struct FleetConfig {
  /// Worker threads for processing a batch of decisions. 0 = all hardware
  /// threads. Any value yields bit-identical results: tasks are
  /// independent, batch membership is determined by the (deterministic)
  /// event queue alone, and results land in pre-indexed slots.
  int num_threads = 1;
  /// Fuse TTP inference of concurrently-deciding sessions into shared
  /// GEMMs. Off, every decision still uses its scheme's own (per-decision
  /// batched) path; results are identical either way.
  bool coalesce_inference = true;
  /// Cap on decisions fused into one batch.
  int max_coalesced_sessions = 64;
  /// Only decisions within this much virtual time of the earliest pending
  /// one are fused together (keeps "concurrently deciding" honest).
  double coalesce_window_s = 0.25;
};

/// What a fleet run measured about itself.
struct FleetRunStats {
  int64_t sessions = 0;          ///< tasks created (= arrivals consumed)
  int64_t decisions = 0;         ///< chunk decisions processed
  int64_t coalesced_rows = 0;    ///< TTP rows answered via shared batches
  int64_t gemm_calls = 0;        ///< fused forward passes run
  int64_t inline_decisions = 0;  ///< decisions that ran inference inline
  double virtual_duration_s = 0.0;  ///< global time of the last event
  stats::LoadSeries load;  ///< concurrent sessions over virtual time
};

/// Discrete-event fleet scheduler: interleaves thousands of concurrent
/// sessions on one virtual timeline via a global event queue — the
/// simulated counterpart of Puffer's ~100-sessions-day-and-night deployment
/// (Figure 2) instead of the one-stream-at-a-time trial loop. Sessions
/// arrive per an ArrivalProcess-sampled schedule, progress one chunk
/// decision per event, and (when coalescing is on) have the TTP inference
/// of near-simultaneous decisions fused into single GEMMs.
class FleetEngine {
 public:
  /// Invoked once per arrival, in arrival order, to build session
  /// `session_index`'s task. Must not return null.
  using TaskFactory = std::function<std::unique_ptr<FleetTask>(int64_t)>;

  explicit FleetEngine(FleetConfig config = {});

  /// Run one task per entry of `arrivals` (ascending global arrival
  /// times). Returns the run's statistics; per-session results are
  /// wherever the factory's tasks wrote them.
  FleetRunStats run(std::span<const double> arrivals,
                    const TaskFactory& factory) const;

  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
};

}  // namespace puffer::sim

#endif  // PUFFER_SIM_FLEET_HH
