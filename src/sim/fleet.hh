#ifndef PUFFER_SIM_FLEET_HH
#define PUFFER_SIM_FLEET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"
#include "stats/load_series.hh"

namespace puffer::fugu {
class TtpInferenceBatch;
}  // namespace puffer::fugu

namespace puffer::obs {
class TraceWriter;
}  // namespace puffer::obs

namespace puffer::sim {

/// One unit of fleet work: a session advanced decision-by-decision. The
/// engine holds each task from its arrival until prepare() reports
/// completion; between those, every call sequence is
///   prepare() -> [stage()] -> finish_chunk() -> prepare() -> ...
/// Tasks must be mutually independent (no shared mutable state): that is
/// what makes the fleet interleaving — and its thread or shard count —
/// unable to affect any task's results.
class FleetTask {
 public:
  enum class Step {
    kDecision,  ///< parked at an ABR decision; finish_chunk() completes it
    kDone,      ///< session over; the engine records completion and drops it
  };

  virtual ~FleetTask() = default;

  /// Advance to the next ABR decision point or to completion.
  virtual Step prepare() = 0;

  /// If this task's ABR scheme supports fused inference, stage the pending
  /// decision's feature rows into `batch` and return true; the engine then
  /// runs the batch before finish_chunk(). Return false to run inference
  /// inline inside finish_chunk().
  virtual bool stage(fugu::TtpInferenceBatch& batch) = 0;

  /// Complete the decision prepare() parked at (ABR choice + transfer).
  virtual void finish_chunk() = 0;

  /// Session-local elapsed virtual time; the engine maps it to the global
  /// timeline as arrival_time + elapsed_s().
  [[nodiscard]] virtual double elapsed_s() const = 0;

  /// Number of fleet sessions this task embodies. 1 for ordinary session
  /// tasks; a contention-group task co-simulating g sessions over one shared
  /// bottleneck reports g, so FleetRunStats.sessions counts sessions, not
  /// tasks.
  [[nodiscard]] virtual int64_t session_count() const { return 1; }

  /// Emit this task's +-1 concurrency deltas into the run's load series.
  /// Called once, at task completion, with the task's global arrival and end
  /// times. The default records one session spanning [arrival, end]; multi-
  /// session tasks override to emit per-member spans. LoadSeries buffers
  /// deltas and sorts at finalize(), so recording at completion instead of
  /// admission cannot change the finalized series.
  virtual void record_load(stats::LoadSeries& load, double arrival_s,
                           double end_s) const {
    load.add(arrival_s, +1);
    load.add(end_s, -1);
  }

  /// One fault the task's last step injected, stamped on the task-local
  /// virtual timeline (the engine maps it to arrival_time + time_s). The
  /// family must be a string with static storage duration.
  struct FaultEvent {
    double time_s = 0.0;
    std::string_view family;
  };

  /// Move any fault events injected since the last drain into `out`.
  /// Called by the engine after each finish_chunk() round (serial, batch
  /// order): events count into the shard's `faults.injected` metric and
  /// appear as "fault" instants on the virtual-time trace lane. Default:
  /// fault-free.
  virtual void drain_fault_events(std::vector<FaultEvent>& out) {
    (void)out;
  }
};

struct FleetConfig {
  /// Worker threads. 0 = all hardware threads. With one shard, workers
  /// stripe each decision batch (the PR 4 scheme); with more shards each
  /// worker drives whole shards. Any value yields bit-identical per-session
  /// results: tasks are independent and results land in pre-indexed slots.
  int num_threads = 1;
  /// Event-queue shards. Sessions are assigned to shards by session index
  /// (see shard_group); each shard owns its own event queue, virtual clock,
  /// and TTP coalescing window, and runs serially on one worker. 0 = one
  /// shard per resolved worker thread. Per-session results are bit-identical
  /// at any shard count; the batching *counters* (gemm_calls,
  /// coalesced_rows, inline_decisions) legitimately depend on shard-local
  /// batch membership and match only between runs with equal shard counts.
  int num_shards = 1;
  /// Consecutive sessions per shard-assignment block:
  /// shard_of(s) = (s / shard_group) % num_shards. Callers that create
  /// session groups back-to-back (paired trials create one task per scheme
  /// per plan) set this to the group size so a group's tasks — which share
  /// an immutable plan — land on one shard and can share its cache.
  int64_t shard_group = 1;
  /// Fuse TTP inference of concurrently-deciding sessions into shared
  /// GEMMs. Off, every decision still uses its scheme's own (per-decision
  /// batched) path; results are identical either way.
  bool coalesce_inference = true;
  /// Cap on decisions fused into one batch.
  int max_coalesced_sessions = 64;
  /// Only decisions within this much virtual time of the earliest pending
  /// one are fused together (keeps "concurrently deciding" honest).
  double coalesce_window_s = 0.25;
  /// Optional virtual-time trace sink. Each shard buffers its events
  /// privately (arrivals, decision batches, queue-depth counters, all
  /// stamped in virtual time) and run() splices the buffers into this
  /// writer in ascending shard order after the join — the emitted
  /// virtual-time lanes are therefore byte-identical across repeat runs
  /// and any thread count. Tracing never touches simulation state, so
  /// results are unchanged whether or not this is set.
  obs::TraceWriter* trace = nullptr;
};

/// What a fleet run measured about itself.
struct FleetRunStats {
  int64_t sessions = 0;          ///< tasks created (= arrivals consumed)
  int64_t decisions = 0;         ///< chunk decisions processed
  int64_t coalesced_rows = 0;    ///< TTP rows answered via shared batches
  int64_t gemm_calls = 0;        ///< fused forward passes run
  int64_t inline_decisions = 0;  ///< decisions that ran inference inline
  int num_shards = 0;            ///< event-queue shards the run used
  int num_workers = 0;           ///< worker threads the run used
  double virtual_duration_s = 0.0;  ///< global time of the last event
  stats::LoadSeries load;  ///< concurrent sessions over virtual time
  /// Sim-plane metric snapshots (obs::MetricRegistry): one per shard in
  /// ascending shard order, plus their merge. Part of the determinism
  /// contract: `metrics` is bit-identical at any thread count, and its
  /// deterministic_view(false) — the non-shard-local subset — is
  /// bit-identical at any shard count too.
  obs::MetricSnapshot metrics;
  std::vector<obs::MetricSnapshot> shard_metrics;
};

/// Discrete-event fleet scheduler: interleaves thousands of concurrent
/// sessions on one virtual timeline — the simulated counterpart of Puffer's
/// ~100-sessions-day-and-night deployment (Figure 2) instead of the
/// one-stream-at-a-time trial loop. Sessions arrive per an
/// ArrivalProcess-sampled schedule, progress one chunk decision per event,
/// and (when coalescing is on) have the TTP inference of near-simultaneous
/// decisions fused into single GEMMs.
///
/// Sharding: with num_shards > 1 the session population is partitioned by
/// session index and each shard runs its own event queue, virtual clock and
/// coalescing window on a dedicated ThreadPool worker. Sessions never
/// interact, so a shard's event interleaving is exactly the interleaving
/// the single queue would have produced restricted to that shard's
/// sessions — per-session results, the merged load series (shards merge
/// their +1/-1 delta multisets), sessions/decisions counts and the virtual
/// duration are all bit-identical to the sequential single-queue run at any
/// shard count. Shard jobs are submitted in ascending shard order, so a
/// failure surfaces deterministically as the lowest failing shard's
/// exception (ThreadPool rethrows by submission index).
class FleetEngine {
 public:
  /// Invoked once per arrival to build session `session_index`'s task, on
  /// the worker driving shard `shard`. Must not return null. Arrival order
  /// holds *within* a shard; with num_shards > 1, calls for sessions of
  /// different shards run concurrently, so a factory's mutable state must
  /// be per-shard (keyed by `shard`) or otherwise synchronized.
  using TaskFactory =
      std::function<std::unique_ptr<FleetTask>(int64_t session_index,
                                               int shard)>;

  /// Invoked after a session's task completed and was destroyed, on the
  /// worker driving `shard` — completion order holds within a shard only.
  /// Callers use this to recycle per-session state or stream partial
  /// results into a merge frontier (which must be lock-protected).
  using CompletionSink = std::function<void(int64_t session_index, int shard)>;

  explicit FleetEngine(FleetConfig config = {});

  /// Run one task per entry of `arrivals` (ascending global arrival
  /// times). Returns the run's statistics; per-session results are
  /// wherever the factory's tasks wrote them. `on_complete` (optional) is
  /// called once per completed session.
  FleetRunStats run(std::span<const double> arrivals,
                    const TaskFactory& factory,
                    const CompletionSink& on_complete = nullptr) const;

  [[nodiscard]] const FleetConfig& config() const { return config_; }

  /// Worker threads run() will use (num_threads resolved against hardware).
  [[nodiscard]] int resolved_num_threads() const;
  /// Event-queue shards run() will use (num_shards == 0 resolves to the
  /// worker count).
  [[nodiscard]] int resolved_num_shards() const;
  /// The shard session `session_index`'s task will run on.
  [[nodiscard]] int shard_of(int64_t session_index) const;

 private:
  FleetConfig config_;
};

}  // namespace puffer::sim

#endif  // PUFFER_SIM_FLEET_HH
