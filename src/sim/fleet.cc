#include "sim/fleet.hh"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "fugu/batch_ttp.hh"
#include "util/require.hh"
#include "util/thread_pool.hh"

namespace puffer::sim {

namespace {

/// A session parked at a decision, due on the shard's timeline at `time_s`.
/// Ties break on the shard-local session slot; slots are assigned in
/// ascending global-session order, so the pop order — and therefore batch
/// membership — is the single-queue order restricted to the shard.
struct Event {
  double time_s = 0.0;
  int64_t slot = 0;

  bool operator>(const Event& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    return slot > other.slot;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

/// Drive one shard's sessions to completion on the calling thread.
/// `sessions` holds the shard's global session indices in ascending order;
/// `arrivals` is the full (global) arrival-time array. `phase_c_pool` (only
/// non-null in the single-shard configuration) stripes each decision batch
/// across `phase_c_workers` threads, the PR 4 scheme. The shard's stats —
/// including its share of the load-series deltas — accumulate into `stats`,
/// which the caller owns exclusively for this shard; stats.load is left
/// un-finalized so the caller can merge shards before folding.
void run_shard(const FleetConfig& config,
               const std::span<const double> arrivals,
               const std::span<const int64_t> sessions,
               const FleetEngine::TaskFactory& factory,
               const FleetEngine::CompletionSink& on_complete, const int shard,
               const int phase_c_workers, ThreadPool* phase_c_pool,
               FleetRunStats& stats) {
  std::vector<std::unique_ptr<FleetTask>> tasks(sessions.size());
  std::vector<double> arrival_time(sessions.size(), 0.0);
  EventQueue queue;
  size_t next_arrival = 0;

  fugu::TtpInferenceBatch shared_batch;
  std::vector<Event> batch;
  std::vector<char> staged;     // per batch entry: rows went to shared_batch
  std::vector<char> completed;  // per batch entry: task finished

  // Tear down a finished session: record the completion, free the task
  // (slot memory is recycled by the caller's pool via on_complete).
  const auto complete = [&](const size_t slot, const double end_time) {
    tasks[slot]->record_load(stats.load, arrival_time[slot], end_time);
    stats.virtual_duration_s = std::max(stats.virtual_duration_s, end_time);
    tasks[slot].reset();
    if (on_complete) {
      on_complete(sessions[slot], shard);
    }
  };

  // Start (or finish) a freshly-arrived task.
  const auto schedule_or_complete = [&](const size_t slot) {
    FleetTask& task = *tasks[slot];
    if (task.prepare() == FleetTask::Step::kDecision) {
      queue.push(Event{arrival_time[slot] + task.elapsed_s(),
                       static_cast<int64_t>(slot)});
      return;
    }
    complete(slot, arrival_time[slot] + task.elapsed_s());
  };

  while (!queue.empty() || next_arrival < sessions.size()) {
    // Admit every arrival due before the next pending decision.
    if (!queue.empty() && next_arrival < sessions.size() &&
        arrivals[static_cast<size_t>(sessions[next_arrival])] >
            queue.top().time_s) {
      // fall through to decision processing
    } else if (next_arrival < sessions.size()) {
      const size_t slot = next_arrival;
      const int64_t id = sessions[slot];
      const double t = arrivals[static_cast<size_t>(id)];
      next_arrival++;
      tasks[slot] = factory(id, shard);
      require(tasks[slot] != nullptr, "FleetEngine: factory returned null");
      arrival_time[slot] = t;
      stats.sessions += tasks[slot]->session_count();
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      schedule_or_complete(slot);
      continue;
    }

    // Gather a batch of near-simultaneous decisions. Tasks are independent,
    // so fusing any subset is sound; the cap and window only shape how much
    // is fused, never the per-session results.
    batch.clear();
    batch.push_back(queue.top());
    queue.pop();
    const double window_end = batch.front().time_s + config.coalesce_window_s;
    while (!queue.empty() && queue.top().time_s <= window_end &&
           batch.size() <
               static_cast<size_t>(config.max_coalesced_sessions)) {
      batch.push_back(queue.top());
      queue.pop();
    }

    // Phase A (serial): stage batchable decisions into the shared batch in
    // deterministic batch order.
    shared_batch.clear();
    staged.assign(batch.size(), 0);
    if (config.coalesce_inference) {
      const int64_t rows_before = shared_batch.total_rows();
      const int64_t forwards_before = shared_batch.total_forward_calls();
      for (size_t i = 0; i < batch.size(); i++) {
        staged[i] =
            tasks[static_cast<size_t>(batch[i].slot)]->stage(shared_batch)
                ? 1
                : 0;
      }
      // Phase B: one fused forward pass per (model, step) group across
      // every staged session.
      if (shared_batch.rows_pending() > 0) {
        shared_batch.run();
      }
      stats.coalesced_rows += shared_batch.total_rows() - rows_before;
      stats.gemm_calls += shared_batch.total_forward_calls() - forwards_before;
    }

    // Phase C: complete each decision and advance its session to the next
    // decision point. Tasks only touch their own state and read the shared
    // batch, so any thread assignment is bit-identical. Striped across the
    // pool in the single-shard configuration; serial on this shard's worker
    // otherwise (shards, not stripes, are the parallelism then).
    completed.assign(batch.size(), 0);
    const auto process = [&](const size_t i) {
      FleetTask& task = *tasks[static_cast<size_t>(batch[i].slot)];
      task.finish_chunk();
      completed[i] = task.prepare() == FleetTask::Step::kDone ? 1 : 0;
    };
    if (phase_c_pool != nullptr && batch.size() > 1) {
      for (int w = 0; w < phase_c_workers; w++) {
        phase_c_pool->submit([&, w] {
          for (size_t i = static_cast<size_t>(w); i < batch.size();
               i += static_cast<size_t>(phase_c_workers)) {
            process(i);
          }
        });
      }
      phase_c_pool->wait();
    } else {
      for (size_t i = 0; i < batch.size(); i++) {
        process(i);
      }
    }

    // Phase D (serial, batch order): record bookkeeping and requeue.
    for (size_t i = 0; i < batch.size(); i++) {
      const auto slot = static_cast<size_t>(batch[i].slot);
      stats.decisions++;
      if (staged[i] == 0) {
        stats.inline_decisions++;
      }
      const double t = arrival_time[slot] + tasks[slot]->elapsed_s();
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      if (completed[i] != 0) {
        complete(slot, t);
      } else {
        queue.push(Event{t, batch[i].slot});
      }
    }
  }
}

}  // namespace

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  require(config_.max_coalesced_sessions >= 1,
          "FleetEngine: max_coalesced_sessions must be >= 1");
  require(config_.coalesce_window_s >= 0.0,
          "FleetEngine: coalesce window must be >= 0");
  require(config_.num_shards >= 0, "FleetEngine: num_shards must be >= 0");
  require(config_.shard_group >= 1, "FleetEngine: shard_group must be >= 1");
}

int FleetEngine::resolved_num_threads() const {
  return std::max(1, config_.num_threads <= 0 ? ThreadPool::hardware_threads()
                                              : config_.num_threads);
}

int FleetEngine::resolved_num_shards() const {
  return config_.num_shards <= 0 ? resolved_num_threads()
                                 : config_.num_shards;
}

int FleetEngine::shard_of(const int64_t session_index) const {
  return static_cast<int>((session_index / config_.shard_group) %
                          resolved_num_shards());
}

FleetRunStats FleetEngine::run(const std::span<const double> arrivals,
                               const TaskFactory& factory,
                               const CompletionSink& on_complete) const {
  for (size_t i = 0; i + 1 < arrivals.size(); i++) {
    require(arrivals[i] <= arrivals[i + 1],
            "FleetEngine: arrivals must be sorted ascending");
  }
  const int workers = resolved_num_threads();
  const int shards = resolved_num_shards();

  if (shards == 1) {
    // Single queue: workers stripe within each decision batch (PR 4 path).
    std::vector<int64_t> all(arrivals.size());
    for (size_t i = 0; i < all.size(); i++) {
      all[i] = static_cast<int64_t>(i);
    }
    std::unique_ptr<ThreadPool> pool;
    if (workers > 1) {
      pool = std::make_unique<ThreadPool>(workers);
    }
    FleetRunStats stats;
    run_shard(config_, arrivals, all, factory, on_complete, /*shard=*/0,
              workers, pool.get(), stats);
    stats.num_shards = 1;
    stats.num_workers = workers;
    stats.load.finalize();
    return stats;
  }

  // Sharded: partition sessions by index, one independent event queue per
  // shard, one ThreadPool job per shard submitted in ascending shard order
  // (so the lowest failing shard's exception is the one wait() rethrows).
  // Each job writes only its own pre-indexed shard_stats slot; the pool's
  // wait() provides the happens-before for the serial merge below.
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(shards));
  for (size_t i = 0; i < arrivals.size(); i++) {
    members[static_cast<size_t>(shard_of(static_cast<int64_t>(i)))]
        .push_back(static_cast<int64_t>(i));
  }
  std::vector<FleetRunStats> shard_stats(static_cast<size_t>(shards));
  {
    ThreadPool pool{std::min(workers, shards)};
    for (int s = 0; s < shards; s++) {
      pool.submit([this, s, arrivals, &members, &factory, &on_complete,
                   &shard_stats] {
        run_shard(config_, arrivals, members[static_cast<size_t>(s)], factory,
                  on_complete, s, /*phase_c_workers=*/1,
                  /*phase_c_pool=*/nullptr,
                  shard_stats[static_cast<size_t>(s)]);
      });
    }
    pool.wait();
  }

  // Merge in ascending shard order. Counter sums and the load-series delta
  // multiset are partition-invariant, so everything except the shard-local
  // batching counters is bit-identical to the single-queue run.
  FleetRunStats stats;
  stats.num_shards = shards;
  stats.num_workers = std::min(workers, shards);
  for (const FleetRunStats& shard : shard_stats) {
    stats.sessions += shard.sessions;
    stats.decisions += shard.decisions;
    stats.coalesced_rows += shard.coalesced_rows;
    stats.gemm_calls += shard.gemm_calls;
    stats.inline_decisions += shard.inline_decisions;
    stats.virtual_duration_s =
        std::max(stats.virtual_duration_s, shard.virtual_duration_s);
    stats.load.merge_from(shard.load);
  }
  stats.load.finalize();
  return stats;
}

}  // namespace puffer::sim
