#include "sim/fleet.hh"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "fugu/batch_ttp.hh"
#include "util/require.hh"
#include "util/thread_pool.hh"

namespace puffer::sim {

namespace {

/// A session parked at a decision, due on the global timeline at `time_s`.
/// Ties break on session index so the queue pop order — and therefore
/// batch membership — is a pure function of the event set.
struct Event {
  double time_s = 0.0;
  int64_t session = 0;

  bool operator>(const Event& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    return session > other.session;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

}  // namespace

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  require(config_.max_coalesced_sessions >= 1,
          "FleetEngine: max_coalesced_sessions must be >= 1");
  require(config_.coalesce_window_s >= 0.0,
          "FleetEngine: coalesce window must be >= 0");
}

FleetRunStats FleetEngine::run(const std::span<const double> arrivals,
                               const TaskFactory& factory) const {
  for (size_t i = 0; i + 1 < arrivals.size(); i++) {
    require(arrivals[i] <= arrivals[i + 1],
            "FleetEngine: arrivals must be sorted ascending");
  }
  const int workers = std::max(
      1, config_.num_threads <= 0 ? ThreadPool::hardware_threads()
                                  : config_.num_threads);

  FleetRunStats stats;
  std::vector<std::unique_ptr<FleetTask>> tasks(arrivals.size());
  std::vector<double> arrival_time(arrivals.size(), 0.0);
  EventQueue queue;
  size_t next_arrival = 0;

  fugu::TtpInferenceBatch shared_batch;
  std::vector<Event> batch;
  std::vector<char> staged;       // per batch entry: rows went to shared_batch
  std::vector<char> completed;    // per batch entry: task finished
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers);
  }

  // Start (or finish) a freshly-arrived or freshly-resumed task; returns
  // true if the session completed.
  const auto schedule_or_complete = [&](const int64_t id) {
    FleetTask& task = *tasks[static_cast<size_t>(id)];
    if (task.prepare() == FleetTask::Step::kDecision) {
      queue.push(Event{arrival_time[static_cast<size_t>(id)] + task.elapsed_s(),
                       id});
      return false;
    }
    const double end_time =
        arrival_time[static_cast<size_t>(id)] + task.elapsed_s();
    stats.load.add(end_time, -1);
    stats.virtual_duration_s = std::max(stats.virtual_duration_s, end_time);
    tasks[static_cast<size_t>(id)].reset();
    return true;
  };

  while (!queue.empty() || next_arrival < arrivals.size()) {
    // Admit every arrival due before the next pending decision.
    if (!queue.empty() && next_arrival < arrivals.size() &&
        arrivals[next_arrival] > queue.top().time_s) {
      // fall through to decision processing
    } else if (next_arrival < arrivals.size()) {
      const auto id = static_cast<int64_t>(next_arrival);
      const double t = arrivals[next_arrival];
      next_arrival++;
      tasks[static_cast<size_t>(id)] = factory(id);
      require(tasks[static_cast<size_t>(id)] != nullptr,
              "FleetEngine: factory returned null");
      arrival_time[static_cast<size_t>(id)] = t;
      stats.sessions++;
      stats.load.add(t, +1);
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      schedule_or_complete(id);
      continue;
    }

    // Gather a batch of near-simultaneous decisions. Tasks are independent,
    // so fusing any subset is sound; the cap and window only shape how much
    // is fused, never the per-session results.
    batch.clear();
    batch.push_back(queue.top());
    queue.pop();
    const double window_end = batch.front().time_s + config_.coalesce_window_s;
    while (!queue.empty() && queue.top().time_s <= window_end &&
           batch.size() <
               static_cast<size_t>(config_.max_coalesced_sessions)) {
      batch.push_back(queue.top());
      queue.pop();
    }

    // Phase A (serial): stage batchable decisions into the shared batch in
    // deterministic batch order.
    shared_batch.clear();
    staged.assign(batch.size(), 0);
    if (config_.coalesce_inference) {
      const int64_t rows_before = shared_batch.total_rows();
      const int64_t forwards_before = shared_batch.total_forward_calls();
      for (size_t i = 0; i < batch.size(); i++) {
        staged[i] = tasks[static_cast<size_t>(batch[i].session)]->stage(
                        shared_batch)
                        ? 1
                        : 0;
      }
      // Phase B: one fused forward pass per (model, step) group across
      // every staged session.
      if (shared_batch.rows_pending() > 0) {
        shared_batch.run();
      }
      stats.coalesced_rows += shared_batch.total_rows() - rows_before;
      stats.gemm_calls += shared_batch.total_forward_calls() - forwards_before;
    }

    // Phase C (parallel): complete each decision and advance its session to
    // the next decision point. Tasks only touch their own state and read
    // the shared batch, so any thread assignment is bit-identical.
    completed.assign(batch.size(), 0);
    const auto process = [&](const size_t i) {
      FleetTask& task = *tasks[static_cast<size_t>(batch[i].session)];
      task.finish_chunk();
      completed[i] = task.prepare() == FleetTask::Step::kDone ? 1 : 0;
    };
    if (pool != nullptr && batch.size() > 1) {
      for (int w = 0; w < workers; w++) {
        pool->submit([&, w] {
          for (size_t i = static_cast<size_t>(w); i < batch.size();
               i += static_cast<size_t>(workers)) {
            process(i);
          }
        });
      }
      pool->wait();
    } else {
      for (size_t i = 0; i < batch.size(); i++) {
        process(i);
      }
    }

    // Phase D (serial, batch order): record bookkeeping and requeue.
    for (size_t i = 0; i < batch.size(); i++) {
      const int64_t id = batch[i].session;
      stats.decisions++;
      if (staged[i] == 0) {
        stats.inline_decisions++;
      }
      const double t =
          arrival_time[static_cast<size_t>(id)] +
          tasks[static_cast<size_t>(id)]->elapsed_s();
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      if (completed[i] != 0) {
        stats.load.add(t, -1);
        tasks[static_cast<size_t>(id)].reset();
      } else {
        queue.push(Event{t, id});
      }
    }
  }

  stats.load.finalize();
  return stats;
}

}  // namespace puffer::sim
