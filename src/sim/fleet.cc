#include "sim/fleet.hh"

#include <algorithm>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "fugu/batch_ttp.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "util/require.hh"
#include "util/thread_pool.hh"

namespace puffer::sim {

namespace {

/// The engine's per-shard sim-plane metrics. Every shard registers the
/// identical schema (same code, same order), so per-shard snapshots merge
/// positionally in ascending shard order. Counters whose value depends on
/// shard-local batch membership are marked shard_local, mirroring the
/// FleetConfig::num_shards contract for the batching counters.
struct ShardMetrics {
  obs::MetricRegistry registry;
  obs::MetricRegistry::Id arrivals;
  obs::MetricRegistry::Id sessions;
  obs::MetricRegistry::Id decisions;
  obs::MetricRegistry::Id completions;
  obs::MetricRegistry::Id inline_decisions;
  obs::MetricRegistry::Id coalesced_rows;
  obs::MetricRegistry::Id gemm_calls;
  obs::MetricRegistry::Id batches;
  obs::MetricRegistry::Id batch_size;
  obs::MetricRegistry::Id batch_rows;
  obs::MetricRegistry::Id queue_depth;
  obs::MetricRegistry::Id queue_depth_peak;
  obs::MetricRegistry::Id ttp_rows;
  obs::MetricRegistry::Id ttp_forwards;
  obs::MetricRegistry::Id ttp_groups;
  obs::MetricRegistry::Id ttp_max_forward_rows;
  obs::MetricRegistry::Id faults_injected;

  ShardMetrics() {
    const obs::MetricOptions local{.shard_local = true};
    arrivals = registry.counter("fleet.arrivals");
    sessions = registry.counter("fleet.sessions");
    decisions = registry.counter("fleet.decisions");
    completions = registry.counter("fleet.completions");
    inline_decisions = registry.counter("fleet.inline_decisions", local);
    coalesced_rows = registry.counter("fleet.coalesced_rows", local);
    gemm_calls = registry.counter("fleet.gemm_calls", local);
    batches = registry.counter("fleet.batches", local);
    batch_size = registry.histogram(
        "fleet.batch_size", {1, 2, 4, 8, 16, 32, 64, 128}, local);
    batch_rows = registry.histogram(
        "fleet.batch_rows", {1, 8, 32, 128, 512, 2048, 8192}, local);
    queue_depth = registry.histogram(
        "fleet.queue_depth",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536},
        local);
    queue_depth_peak = registry.gauge("fleet.queue_depth_peak", local);
    ttp_rows = registry.counter("fleet.ttp.rows", local);
    ttp_forwards = registry.counter("fleet.ttp.forward_calls", local);
    ttp_groups = registry.gauge("fleet.ttp.groups", local);
    ttp_max_forward_rows =
        registry.gauge("fleet.ttp.max_forward_rows", local);
    // Fault events are pure per-session functions of the fault plan's seed,
    // so their count is partition-invariant (class plain).
    faults_injected = registry.counter("faults.injected");
  }
};

/// A session parked at a decision, due on the shard's timeline at `time_s`.
/// Ties break on the shard-local session slot; slots are assigned in
/// ascending global-session order, so the pop order — and therefore batch
/// membership — is the single-queue order restricted to the shard.
struct Event {
  double time_s = 0.0;
  int64_t slot = 0;

  bool operator>(const Event& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    return slot > other.slot;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

/// Drive one shard's sessions to completion on the calling thread.
/// `sessions` holds the shard's global session indices in ascending order;
/// `arrivals` is the full (global) arrival-time array. `phase_c_pool` (only
/// non-null in the single-shard configuration) stripes each decision batch
/// across `phase_c_workers` threads, the PR 4 scheme. The shard's stats —
/// including its share of the load-series deltas — accumulate into `stats`,
/// which the caller owns exclusively for this shard; stats.load is left
/// un-finalized so the caller can merge shards before folding.
void run_shard(const FleetConfig& config,
               const std::span<const double> arrivals,
               const std::span<const int64_t> sessions,
               const FleetEngine::TaskFactory& factory,
               const FleetEngine::CompletionSink& on_complete, const int shard,
               const int phase_c_workers, ThreadPool* phase_c_pool,
               obs::TraceWriter* const trace, FleetRunStats& stats) {
  const obs::ProfScope shard_scope{"fleet.shard"};
  std::vector<std::unique_ptr<FleetTask>> tasks(sessions.size());
  std::vector<double> arrival_time(sessions.size(), 0.0);
  EventQueue queue;
  size_t next_arrival = 0;

  ShardMetrics m;
  // Per-shard counter-lane names carry the shard index: Chrome counter
  // tracks are keyed by (pid, name), so this is what keeps shards apart.
  const std::string depth_series =
      "queue_depth shard" + std::to_string(shard);

  fugu::TtpInferenceBatch shared_batch;
  std::vector<Event> batch;
  std::vector<char> staged;     // per batch entry: rows went to shared_batch
  std::vector<char> completed;  // per batch entry: task finished
  std::vector<FleetTask::FaultEvent> fault_events;

  // Tear down a finished session: record the completion, free the task
  // (slot memory is recycled by the caller's pool via on_complete).
  const auto complete = [&](const size_t slot, const double end_time) {
    tasks[slot]->record_load(stats.load, arrival_time[slot], end_time);
    stats.virtual_duration_s = std::max(stats.virtual_duration_s, end_time);
    m.registry.add(m.completions);
    if (trace != nullptr) {
      trace->instant(
          obs::kSimTracePid, shard, "complete", end_time * 1e6,
          obs::TraceArgs{}.add("session", sessions[slot]).str());
    }
    tasks[slot].reset();
    if (on_complete) {
      on_complete(sessions[slot], shard);
    }
  };

  // Start (or finish) a freshly-arrived task.
  const auto schedule_or_complete = [&](const size_t slot) {
    FleetTask& task = *tasks[slot];
    if (task.prepare() == FleetTask::Step::kDecision) {
      queue.push(Event{arrival_time[slot] + task.elapsed_s(),
                       static_cast<int64_t>(slot)});
      return;
    }
    complete(slot, arrival_time[slot] + task.elapsed_s());
  };

  while (!queue.empty() || next_arrival < sessions.size()) {
    // Admit every arrival due before the next pending decision.
    if (!queue.empty() && next_arrival < sessions.size() &&
        arrivals[static_cast<size_t>(sessions[next_arrival])] >
            queue.top().time_s) {
      // fall through to decision processing
    } else if (next_arrival < sessions.size()) {
      const obs::ProfScope admit_scope{"fleet.admit"};
      const size_t slot = next_arrival;
      const int64_t id = sessions[slot];
      const double t = arrivals[static_cast<size_t>(id)];
      next_arrival++;
      tasks[slot] = factory(id, shard);
      require(tasks[slot] != nullptr, "FleetEngine: factory returned null");
      arrival_time[slot] = t;
      stats.sessions += tasks[slot]->session_count();
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      m.registry.add(m.arrivals);
      m.registry.add(m.sessions, tasks[slot]->session_count());
      if (trace != nullptr) {
        trace->instant(obs::kSimTracePid, shard, "arrive", t * 1e6,
                       obs::TraceArgs{}.add("session", id).str());
      }
      schedule_or_complete(slot);
      continue;
    }

    // Gather a batch of near-simultaneous decisions. Tasks are independent,
    // so fusing any subset is sound; the cap and window only shape how much
    // is fused, never the per-session results.
    const auto queue_depth = static_cast<int64_t>(queue.size());
    m.registry.observe(m.queue_depth, static_cast<double>(queue_depth));
    m.registry.set_max(m.queue_depth_peak, queue_depth);
    batch.clear();
    batch.push_back(queue.top());
    queue.pop();
    const double window_end = batch.front().time_s + config.coalesce_window_s;
    while (!queue.empty() && queue.top().time_s <= window_end &&
           batch.size() <
               static_cast<size_t>(config.max_coalesced_sessions)) {
      batch.push_back(queue.top());
      queue.pop();
    }
    m.registry.add(m.batches);
    m.registry.observe(m.batch_size, static_cast<double>(batch.size()));

    // Phase A (serial): stage batchable decisions into the shared batch in
    // deterministic batch order.
    shared_batch.clear();
    staged.assign(batch.size(), 0);
    int64_t batch_rows = 0;
    if (config.coalesce_inference) {
      const obs::ProfScope coalesce_scope{"fleet.coalesce"};
      const int64_t rows_before = shared_batch.total_rows();
      const int64_t forwards_before = shared_batch.total_forward_calls();
      for (size_t i = 0; i < batch.size(); i++) {
        staged[i] =
            tasks[static_cast<size_t>(batch[i].slot)]->stage(shared_batch)
                ? 1
                : 0;
      }
      // Phase B: one fused forward pass per (model, step) group across
      // every staged session.
      if (shared_batch.rows_pending() > 0) {
        shared_batch.run();
      }
      batch_rows = shared_batch.total_rows() - rows_before;
      stats.coalesced_rows += batch_rows;
      stats.gemm_calls += shared_batch.total_forward_calls() - forwards_before;
      m.registry.add(m.coalesced_rows, batch_rows);
      m.registry.add(m.gemm_calls,
                     shared_batch.total_forward_calls() - forwards_before);
      if (batch_rows > 0) {
        m.registry.observe(m.batch_rows, static_cast<double>(batch_rows));
      }
    }

    // Phase C: complete each decision and advance its session to the next
    // decision point. Tasks only touch their own state and read the shared
    // batch, so any thread assignment is bit-identical. Striped across the
    // pool in the single-shard configuration; serial on this shard's worker
    // otherwise (shards, not stripes, are the parallelism then).
    completed.assign(batch.size(), 0);
    {
      const obs::ProfScope finish_scope{"fleet.finish"};
      const auto process = [&](const size_t i) {
        FleetTask& task = *tasks[static_cast<size_t>(batch[i].slot)];
        task.finish_chunk();
        completed[i] = task.prepare() == FleetTask::Step::kDone ? 1 : 0;
      };
      if (phase_c_pool != nullptr && batch.size() > 1) {
        for (int w = 0; w < phase_c_workers; w++) {
          phase_c_pool->submit([&, w] {
            for (size_t i = static_cast<size_t>(w); i < batch.size();
                 i += static_cast<size_t>(phase_c_workers)) {
              process(i);
            }
          });
        }
        phase_c_pool->wait();
      } else {
        for (size_t i = 0; i < batch.size(); i++) {
          process(i);
        }
      }
    }

    // Phase D (serial, batch order): record bookkeeping and requeue.
    const obs::ProfScope record_scope{"fleet.record"};
    int64_t staged_count = 0;
    for (size_t i = 0; i < batch.size(); i++) {
      const auto slot = static_cast<size_t>(batch[i].slot);
      stats.decisions++;
      m.registry.add(m.decisions);
      if (staged[i] == 0) {
        stats.inline_decisions++;
        m.registry.add(m.inline_decisions);
      } else {
        staged_count++;
      }
      const double t = arrival_time[slot] + tasks[slot]->elapsed_s();
      stats.virtual_duration_s = std::max(stats.virtual_duration_s, t);
      fault_events.clear();
      tasks[slot]->drain_fault_events(fault_events);
      if (!fault_events.empty()) {
        m.registry.add(m.faults_injected,
                       static_cast<int64_t>(fault_events.size()));
        if (trace != nullptr) {
          for (const FleetTask::FaultEvent& fault : fault_events) {
            trace->instant(
                obs::kSimTracePid, shard, "fault",
                (arrival_time[slot] + fault.time_s) * 1e6,
                obs::TraceArgs{}
                    .add("family", fault.family)
                    .add("session", sessions[slot])
                    .str());
          }
        }
      }
      if (completed[i] != 0) {
        complete(slot, t);
      } else {
        queue.push(Event{t, batch[i].slot});
      }
    }

    if (trace != nullptr) {
      // One span per decision batch on the shard's virtual-time lane, plus
      // a queue-depth counter sample at the batch's start.
      const double start_us = batch.front().time_s * 1e6;
      const double dur_us = (batch.back().time_s - batch.front().time_s) * 1e6;
      trace->complete(obs::kSimTracePid, shard, "batch", start_us, dur_us,
                      obs::TraceArgs{}
                          .add("size", static_cast<int64_t>(batch.size()))
                          .add("staged", staged_count)
                          .add("rows", batch_rows)
                          .str());
      trace->counter(obs::kSimTracePid, depth_series, start_us,
                     static_cast<double>(queue_depth));
    }
  }

  // The shard's TTP batch-path totals (the shared batch lives shard-wide).
  m.registry.add(m.ttp_rows, shared_batch.total_rows());
  m.registry.add(m.ttp_forwards, shared_batch.total_forward_calls());
  m.registry.set(m.ttp_groups, static_cast<int64_t>(shared_batch.num_groups()));
  m.registry.set(m.ttp_max_forward_rows, shared_batch.max_forward_rows());
  stats.metrics = m.registry.snapshot();
}

}  // namespace

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  require(config_.max_coalesced_sessions >= 1,
          "FleetEngine: max_coalesced_sessions must be >= 1");
  require(config_.coalesce_window_s >= 0.0,
          "FleetEngine: coalesce window must be >= 0");
  require(config_.num_shards >= 0, "FleetEngine: num_shards must be >= 0");
  require(config_.shard_group >= 1, "FleetEngine: shard_group must be >= 1");
}

int FleetEngine::resolved_num_threads() const {
  return std::max(1, config_.num_threads <= 0 ? ThreadPool::hardware_threads()
                                              : config_.num_threads);
}

int FleetEngine::resolved_num_shards() const {
  return config_.num_shards <= 0 ? resolved_num_threads()
                                 : config_.num_shards;
}

int FleetEngine::shard_of(const int64_t session_index) const {
  return static_cast<int>((session_index / config_.shard_group) %
                          resolved_num_shards());
}

FleetRunStats FleetEngine::run(const std::span<const double> arrivals,
                               const TaskFactory& factory,
                               const CompletionSink& on_complete) const {
  for (size_t i = 0; i + 1 < arrivals.size(); i++) {
    require(arrivals[i] <= arrivals[i + 1],
            "FleetEngine: arrivals must be sorted ascending");
  }
  const int workers = resolved_num_threads();
  const int shards = resolved_num_shards();

  if (shards == 1) {
    // Single queue: workers stripe within each decision batch (PR 4 path).
    std::vector<int64_t> all(arrivals.size());
    for (size_t i = 0; i < all.size(); i++) {
      all[i] = static_cast<int64_t>(i);
    }
    std::unique_ptr<ThreadPool> pool;
    if (workers > 1) {
      pool = std::make_unique<ThreadPool>(workers);
    }
    obs::TraceWriter shard_trace;
    FleetRunStats stats;
    run_shard(config_, arrivals, all, factory, on_complete, /*shard=*/0,
              workers, pool.get(),
              config_.trace != nullptr ? &shard_trace : nullptr, stats);
    stats.num_shards = 1;
    stats.num_workers = workers;
    stats.load.finalize();
    stats.shard_metrics.push_back(stats.metrics);
    if (config_.trace != nullptr) {
      config_.trace->process_name(obs::kSimTracePid, "virtual time (sim)");
      config_.trace->thread_name(obs::kSimTracePid, 0, "shard 0");
      config_.trace->append_from(shard_trace);
    }
    return stats;
  }

  // Sharded: partition sessions by index, one independent event queue per
  // shard, one ThreadPool job per shard submitted in ascending shard order
  // (so the lowest failing shard's exception is the one wait() rethrows).
  // Each job writes only its own pre-indexed shard_stats slot; the pool's
  // wait() provides the happens-before for the serial merge below.
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(shards));
  for (size_t i = 0; i < arrivals.size(); i++) {
    members[static_cast<size_t>(shard_of(static_cast<int64_t>(i)))]
        .push_back(static_cast<int64_t>(i));
  }
  std::vector<FleetRunStats> shard_stats(static_cast<size_t>(shards));
  // Per-shard trace buffers: each shard appends privately (virtual-time
  // order), the splice below replays them in ascending shard order — the
  // merged virtual plane is independent of which shard finished first.
  std::vector<obs::TraceWriter> shard_traces(
      config_.trace != nullptr ? static_cast<size_t>(shards) : 0);
  {
    ThreadPool pool{std::min(workers, shards)};
    for (int s = 0; s < shards; s++) {
      pool.submit([this, s, arrivals, &members, &factory, &on_complete,
                   &shard_stats, &shard_traces] {
        run_shard(config_, arrivals, members[static_cast<size_t>(s)], factory,
                  on_complete, s, /*phase_c_workers=*/1,
                  /*phase_c_pool=*/nullptr,
                  shard_traces.empty() ? nullptr
                                       : &shard_traces[static_cast<size_t>(s)],
                  shard_stats[static_cast<size_t>(s)]);
      });
    }
    pool.wait();
  }

  // Merge in ascending shard order. Counter sums and the load-series delta
  // multiset are partition-invariant, so everything except the shard-local
  // batching counters is bit-identical to the single-queue run.
  FleetRunStats stats;
  stats.num_shards = shards;
  stats.num_workers = std::min(workers, shards);
  for (FleetRunStats& shard : shard_stats) {
    stats.sessions += shard.sessions;
    stats.decisions += shard.decisions;
    stats.coalesced_rows += shard.coalesced_rows;
    stats.gemm_calls += shard.gemm_calls;
    stats.inline_decisions += shard.inline_decisions;
    stats.virtual_duration_s =
        std::max(stats.virtual_duration_s, shard.virtual_duration_s);
    stats.load.merge_from(shard.load);
    stats.metrics.merge_from(shard.metrics);
    stats.shard_metrics.push_back(std::move(shard.metrics));
  }
  stats.load.finalize();
  if (config_.trace != nullptr) {
    config_.trace->process_name(obs::kSimTracePid, "virtual time (sim)");
    for (int s = 0; s < shards; s++) {
      config_.trace->thread_name(obs::kSimTracePid, s,
                                 "shard " + std::to_string(s));
      config_.trace->append_from(shard_traces[static_cast<size_t>(s)]);
    }
  }
  return stats;
}

}  // namespace puffer::sim
