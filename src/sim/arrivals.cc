#include "sim/arrivals.hh"

#include <cmath>
#include <numbers>

#include "util/require.hh"

namespace puffer::sim {

double ArrivalProcess::next_arrival_s(Rng& rng, const double now_s) const {
  const double envelope = peak_rate();
  require(envelope > 0.0, "ArrivalProcess: peak rate must be positive");
  double t = now_s;
  for (;;) {
    t += rng.exponential(envelope);
    // Thinning: accept the candidate with probability lambda(t) / envelope.
    if (rng.uniform() * envelope <= rate_at(t)) {
      return t;
    }
  }
}

PoissonArrivals::PoissonArrivals(const double rate_per_s)
    : rate_per_s_(rate_per_s) {
  require(rate_per_s_ > 0.0, "PoissonArrivals: rate must be positive");
}

double PoissonArrivals::rate_at(const double) const { return rate_per_s_; }

DiurnalArrivals::DiurnalArrivals(const ArrivalSpec& spec)
    : peak_rate_(spec.rate_per_s),
      period_s_(spec.period_s),
      trough_fraction_(spec.trough_fraction),
      peak_time_s_(spec.peak_time_s) {
  require(peak_rate_ > 0.0, "DiurnalArrivals: rate must be positive");
  require(period_s_ > 0.0, "DiurnalArrivals: period must be positive");
  require(trough_fraction_ > 0.0 && trough_fraction_ <= 1.0,
          "DiurnalArrivals: trough fraction in (0, 1]");
}

double DiurnalArrivals::rate_at(const double t_s) const {
  // Same sinusoid as DiurnalPathConfig's congestion factor, applied to
  // demand instead of capacity: full rate at the prime-time peak,
  // trough_fraction of it half a period away. (Prime time is when the
  // shared link sags *and* the most viewers arrive — the fleet's worst
  // hour, as in Figure 2.)
  const double phase =
      2.0 * std::numbers::pi * (t_s - peak_time_s_) / period_s_;
  const double modulation =
      trough_fraction_ +
      (1.0 - trough_fraction_) * 0.5 * (1.0 + std::cos(phase));
  return peak_rate_ * modulation;
}

FlashCrowdArrivals::FlashCrowdArrivals(const ArrivalSpec& spec)
    : base_rate_per_s_(spec.rate_per_s),
      burst_start_s_(spec.burst_start_s),
      burst_duration_s_(spec.burst_duration_s),
      burst_multiplier_(spec.burst_multiplier) {
  require(base_rate_per_s_ > 0.0, "FlashCrowdArrivals: rate must be positive");
  require(burst_duration_s_ >= 0.0,
          "FlashCrowdArrivals: burst duration must be >= 0");
  require(burst_multiplier_ >= 1.0,
          "FlashCrowdArrivals: burst multiplier must be >= 1");
}

double FlashCrowdArrivals::rate_at(const double t_s) const {
  const bool in_burst =
      t_s >= burst_start_s_ && t_s < burst_start_s_ + burst_duration_s_;
  return base_rate_per_s_ * (in_burst ? burst_multiplier_ : 1.0);
}

double FlashCrowdArrivals::peak_rate() const {
  return base_rate_per_s_ * burst_multiplier_;
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec) {
  if (spec.kind == "poisson") {
    return std::make_unique<PoissonArrivals>(spec.rate_per_s);
  }
  if (spec.kind == "diurnal") {
    return std::make_unique<DiurnalArrivals>(spec);
  }
  if (spec.kind == "flash-crowd") {
    return std::make_unique<FlashCrowdArrivals>(spec);
  }
  require(false, "make_arrival_process: unknown kind '" + spec.kind + "'");
  return nullptr;  // unreachable
}

std::vector<double> sample_arrivals(const ArrivalProcess& process, Rng& rng,
                                    const int64_t count) {
  require(count >= 0, "sample_arrivals: negative count");
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int64_t i = 0; i < count; i++) {
    t = process.next_arrival_s(rng, t);
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace puffer::sim
