#ifndef PUFFER_SIM_SESSION_HH
#define PUFFER_SIM_SESSION_HH

#include <cstdint>
#include <vector>

#include "abr/abr.hh"
#include "media/vbr_source.hh"
#include "net/tcp_sender.hh"
#include "sim/user_model.hh"
#include "stats/summary.hh"
#include "util/running_stats.hh"

namespace puffer::sim {

/// One chunk transfer as logged for in-situ TTP training (converted to
/// fugu::ChunkLog by the experiment layer).
struct TransferLogEntry {
  double size_mb = 0.0;
  double tx_time_s = 0.0;
  net::TcpInfo tcp_at_send;
};

/// Configuration of the streaming loop, matching Puffer's deployment:
/// 15-second client buffer, chunks pushed server-side as soon as there is
/// room, MPC lookahead of 5 chunks.
struct StreamRunConfig {
  double max_buffer_s = 15.0;
  int lookahead_chunks = 5;
  /// Client-side player initialization (MediaSource setup, first-frame
  /// decode) added to the startup delay; calibrates the absolute startup
  /// scale to the ~0.5 s the paper reports (Figure 9).
  double player_init_delay_s = 0.40;
  /// Simulation budget: end the stream after this many played chunks, as if
  /// the viewer's remaining watch intent lay beyond the simulated horizon.
  /// 0 (default) = unlimited. The watch-time distribution is heavy-tailed
  /// (Pareto intents up to 16 h), so campaign-scale workloads cap this to
  /// bound the cost of a single monster stream without touching the user
  /// model; figures reflect the watched prefix exactly.
  int max_stream_chunks = 0;
};

/// Everything measured about one stream.
struct StreamOutcome {
  bool began_playing = false;
  bool decoder_failure = false;   ///< client-side defect (Figure A1 bucket)
  stats::StreamFigures figures;
  std::vector<TransferLogEntry> transfer_log;
  double wall_time_s = 0.0;       ///< stream start to stream end
  int chunks_played = 0;
};

/// Observer of the measurement events a stream produces — the same event
/// families Puffer's open data release records (Appendix B): a `video_sent`
/// datapoint when the server sends a chunk, a `video_acked` datapoint when
/// the client acknowledges it, and `client_buffer` datapoints on playback
/// events. Used by exp::OpenDataWriter to export the public-archive CSVs.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;
  /// Chunk leaves the server. `record.tcp_at_send` holds the tcp_info
  /// snapshot; `buffer_s` is the client buffer at the send decision.
  virtual void on_video_sent(double time_s, const abr::ChunkRecord& record,
                             double buffer_s) = 0;
  /// Chunk fully received by the client.
  virtual void on_video_acked(double time_s, int64_t chunk_index) = 0;
  /// Playback event: "startup", "play", "rebuffer", or the per-chunk
  /// "timer" report (the real client reports every quarter second; the
  /// simulator reports at chunk granularity).
  virtual void on_client_buffer(double time_s, const char* event,
                                double buffer_s, double cum_rebuffer_s) = 0;
};

/// One stream as a resumable state machine: the streaming loop of
/// run_stream() cut at its ABR decision points, so a caller can interleave
/// thousands of streams on one virtual timeline (the fleet engine) or fuse
/// the inference of many concurrently-deciding streams into one batch.
///
/// Protocol: while (prepare_chunk()) finish_chunk(); then take_outcome().
/// Between a true prepare_chunk() and the matching finish_chunk() the
/// observation and lookahead for the pending decision are exposed, which is
/// where the fleet engine stages batched TTP rows. Driving the machine to
/// completion in one loop is exactly run_stream() — same operations on the
/// sender, ABR scheme and RNG in the same order, so outcomes are
/// bit-identical to the historical single-call loop.
///
/// Holds references to everything passed in; they must outlive the session.
class StreamSession {
 public:
  StreamSession(net::TcpSender& sender, abr::AbrAlgorithm& abr,
                media::VbrVideoSource& video, int64_t first_chunk,
                const UserBehavior& user, Rng& rng,
                const StreamRunConfig& config = {},
                StreamObserver* observer = nullptr);

  /// Advance to the next ABR decision (waiting for client buffer room as
  /// needed). Returns false once the stream is over.
  bool prepare_chunk();

  /// Async variant of the prepare/finish protocol, for drivers that cannot
  /// let the session block the sender (shared-bottleneck worlds advance all
  /// of a group's connections in lockstep):
  ///
  ///   prepare_chunk_async -> kDecision: decide via observation()/lookahead()
  ///                          then begin_chunk() -> transfer the returned
  ///                          bytes -> complete_chunk(result)
  ///                       -> kWait:     idle the connection for *wait_s of
  ///                          virtual time, then call finish_wait() (which
  ///                          yields kDecision or kDone)
  ///                       -> kDone:     stream over, take_outcome()
  ///
  /// prepare_chunk()/finish_chunk() are exactly this protocol driven against
  /// the session's own sender, so both drivers are bit-identical.
  enum class PrepareStep { kDecision, kWait, kDone };
  PrepareStep prepare_chunk_async(double& wait_s);
  /// Completes the buffer/playback accounting of a kWait after the caller
  /// idled the connection for the requested wait.
  PrepareStep finish_wait();

  /// Choose the rung for the prepared decision and emit the video_sent
  /// record; returns the chunk size in bytes for the caller to transfer.
  double begin_chunk();
  /// Playback/QoE accounting for the transfer begin_chunk() started.
  void complete_chunk(const net::TransferResult& transfer);

  /// Observation / lookahead of the pending decision (valid after a true
  /// prepare_chunk(), until finish_chunk()).
  [[nodiscard]] const abr::AbrObservation& observation() const { return obs_; }
  [[nodiscard]] std::span<const media::ChunkOptions> lookahead() const {
    return lookahead_;
  }

  /// Decide (through the ABR scheme) and transfer the prepared chunk.
  void finish_chunk();

  [[nodiscard]] bool done() const { return done_; }

  /// Mid-stream abort via the user model: the viewer leaves immediately
  /// (same accounting as a quality/stall departure — the stream ends with
  /// user_left semantics and its outcome stays valid). Used by the fault
  /// plane's session-abort family; must not be called between a true
  /// prepare_chunk() and its finish_chunk().
  void abort_stream();

  /// The finished stream's outcome (valid once prepare_chunk() returned
  /// false); leaves the session in a moved-from state.
  StreamOutcome take_outcome();

 private:
  void build_observation();
  void end_stream();

  net::TcpSender& sender_;
  abr::AbrAlgorithm& abr_;
  media::VbrVideoSource& video_;
  const UserBehavior& user_;
  Rng& rng_;
  StreamRunConfig config_;
  StreamObserver* observer_;

  StreamOutcome outcome_;
  double t0_ = 0.0;
  double chunk_dur_ = 0.0;
  int64_t next_chunk_ = 0;
  double buffer_s_ = 0.0;
  bool playing_ = false;
  double played_s_ = 0.0;
  double stall_s_ = 0.0;
  double startup_delay_s_ = 0.0;
  double prev_ssim_db_ = -1.0;
  int prev_rung_ = -1;
  bool user_left_ = false;
  bool done_ = false;
  RunningStats ssim_stats_, variation_stats_;
  double total_bytes_ = 0.0;
  double total_tx_time_ = 0.0;

  abr::AbrObservation obs_;
  std::vector<media::ChunkOptions> lookahead_;

  // Pending-wait / pending-chunk state of the async protocol.
  double pending_wait_s_ = 0.0;
  int pending_rung_ = -1;
  media::ChunkVersion pending_version_{};
  net::TcpInfo pending_tcp_at_send_{};
};

/// Run one stream: the viewer watches `video` starting at `first_chunk`
/// until the watch intent is exhausted or QoE drives them away. The ABR
/// scheme and TCP connection persist across streams within a session (a
/// channel change does not reset them — Figure A1's session/stream split).
StreamOutcome run_stream(net::TcpSender& sender, abr::AbrAlgorithm& abr,
                         media::VbrVideoSource& video, int64_t first_chunk,
                         const UserBehavior& user, Rng& rng,
                         const StreamRunConfig& config = {},
                         StreamObserver* observer = nullptr);

/// Warm the fresh connection the way the real player does: the page, player
/// JavaScript and manifest travel over the same connection before the first
/// chunk, so tcp_info is already informative at the first ABR decision —
/// the effect behind Fugu's better cold start (Figure 9).
void send_preamble(net::TcpSender& sender, double bytes = 192.0 * 1024.0);

}  // namespace puffer::sim

#endif  // PUFFER_SIM_SESSION_HH
