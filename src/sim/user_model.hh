#ifndef PUFFER_SIM_USER_MODEL_HH
#define PUFFER_SIM_USER_MODEL_HH

#include "util/rng.hh"

namespace puffer::sim {

/// Behavioural parameters of one viewer for one stream.
struct UserBehavior {
  /// How long the viewer intends to watch if nothing goes wrong.
  double watch_intent_s = 600.0;
  /// How long the viewer will tolerate a single uninterrupted stall.
  double stall_patience_s = 12.0;
  /// Hazard of abandoning per second while recently stalled (beyond the
  /// patience cutoff this is moot).
  double stall_hazard_per_s = 0.04;
  /// Hazard of abandoning per second per dB of quality below the reference.
  double quality_hazard_per_s_db = 0.0006;
  /// Quality level viewers take for granted (dB); below it they get antsy.
  double quality_reference_db = 16.0;
};

/// Session-level behaviour: how many streams (channel changes) a visit
/// contains and what each stream's intent looks like.
struct SessionBehavior {
  int num_streams = 1;
  bool incompatible_or_bounce = false;  ///< never begins playing anything
};

/// Samples viewer behaviour reproducing the paper's observed shape:
/// heavy-tailed watch times (Figure 10: CCDF spanning minutes to >10 hours),
/// a large population of channel-surfers producing sub-4-second streams
/// (Figure A1: ~55% of streams excluded as never-played or <4 s), and
/// QoE-sensitive abandonment that lets ABR quality influence time-on-site,
/// concentrated in long sessions (the paper's upper-5%-tail effect).
class UserModel {
 public:
  explicit UserModel(uint64_t seed);

  SessionBehavior sample_session(Rng& rng) const;
  UserBehavior sample_stream_behavior(Rng& rng) const;

 private:
  uint64_t seed_;
};

}  // namespace puffer::sim

#endif  // PUFFER_SIM_USER_MODEL_HH
