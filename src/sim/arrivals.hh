#ifndef PUFFER_SIM_ARRIVALS_HH
#define PUFFER_SIM_ARRIVALS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace puffer::sim {

/// Names the session-arrival process a fleet run interleaves its sessions
/// under. Three built-in kinds:
///   poisson      homogeneous arrivals at `rate_per_s`
///   diurnal      inhomogeneous Poisson whose rate follows the same 24-hour
///                sinusoid as the diurnal path family: `rate_per_s` at the
///                prime-time peak, `trough_fraction` of it off-peak
///   flash-crowd  homogeneous base rate with a `burst_multiplier`x surge
///                during [burst_start_s, burst_start_s + burst_duration_s)
struct ArrivalSpec {
  std::string kind = "poisson";
  double rate_per_s = 2.0;  ///< peak mean arrival rate

  // diurnal (shape mirrors net::DiurnalPathConfig's congestion sinusoid)
  double period_s = 86400.0;
  double trough_fraction = 0.25;
  double peak_time_s = 21.0 * 3600.0;  ///< 21:00, the diurnal peak hour

  // flash-crowd
  double burst_start_s = 300.0;
  double burst_duration_s = 120.0;
  double burst_multiplier = 10.0;
};

/// A (possibly inhomogeneous) Poisson arrival process over virtual time.
/// Stateless with respect to sampling — all randomness comes from the
/// caller's Rng — so one process can serve any number of runs.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Instantaneous arrival rate lambda(t) in sessions per virtual second.
  [[nodiscard]] virtual double rate_at(double t_s) const = 0;

  /// Upper bound of rate_at over all t — the thinning envelope.
  [[nodiscard]] virtual double peak_rate() const = 0;

  /// Time of the next arrival strictly after `now_s`, via Lewis-Shedler
  /// thinning against peak_rate() (exact for homogeneous processes).
  [[nodiscard]] double next_arrival_s(Rng& rng, double now_s) const;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_s);
  [[nodiscard]] double rate_at(double t_s) const override;
  [[nodiscard]] double peak_rate() const override { return rate_per_s_; }

 private:
  double rate_per_s_;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalSpec& spec);
  [[nodiscard]] double rate_at(double t_s) const override;
  [[nodiscard]] double peak_rate() const override { return peak_rate_; }

 private:
  double peak_rate_;
  double period_s_;
  double trough_fraction_;
  double peak_time_s_;
};

class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  explicit FlashCrowdArrivals(const ArrivalSpec& spec);
  [[nodiscard]] double rate_at(double t_s) const override;
  [[nodiscard]] double peak_rate() const override;

 private:
  double base_rate_per_s_;
  double burst_start_s_;
  double burst_duration_s_;
  double burst_multiplier_;
};

/// Instantiate the process for `spec`; throws RequirementError for an
/// unknown kind or non-positive rates.
std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec);

/// Sample `count` arrival times starting from virtual time 0 (sorted by
/// construction — arrivals are generated in order).
std::vector<double> sample_arrivals(const ArrivalProcess& process, Rng& rng,
                                    int64_t count);

}  // namespace puffer::sim

#endif  // PUFFER_SIM_ARRIVALS_HH
