#include "sim/faults.hh"

#include <algorithm>
#include <sstream>

#include "util/require.hh"

namespace puffer::sim {

namespace {

std::string joined_names(const FaultRegistry& registry) {
  std::string out;
  for (const std::string& name : registry.names()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

}  // namespace

void FaultRegistry::register_family(std::string name, std::string description) {
  require(!name.empty(), "FaultRegistry::register_family: empty name");
  families_[std::move(name)] = std::move(description);
}

bool FaultRegistry::contains(std::string_view name) const {
  return families_.find(name) != families_.end();
}

std::vector<std::string> FaultRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, unused_description] : families_) {
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

const std::string& FaultRegistry::description(std::string_view name) const {
  const auto it = families_.find(name);
  require(it != families_.end(), "FaultRegistry::description: unknown family '" +
                                     std::string{name} + "'");
  return it->second;
}

FaultRegistry& fault_registry() {
  static FaultRegistry registry = [] {
    FaultRegistry r;
    r.register_family(std::string{kFaultTtpInference},
                      "TTP inference fails or times out for one decision");
    r.register_family(std::string{kFaultSessionAbort},
                      "viewer aborts the stream mid-chunk (user model)");
    r.register_family(std::string{kFaultTelemetryLoss},
                      "a telemetry stream is lost before aggregation");
    r.register_family(std::string{kFaultTelemetryDup},
                      "a telemetry stream is delivered twice");
    r.register_family(std::string{kFaultRetrainCrash},
                      "a nightly retrain attempt crashes");
    r.register_family(std::string{kFaultCheckpointLoad},
                      "a campaign checkpoint load attempt fails");
    r.register_family(std::string{kFaultModelLoad},
                      "a deployed-model block is corrupt at restore");
    r.register_family(std::string{kFaultLinkOutage},
                      "a shared bottleneck link goes dark for a window");
    return r;
  }();
  return registry;
}

void FaultPlan::add(const std::string_view family, const double probability,
                    const double duration_s) {
  require(fault_registry().contains(family),
          "FaultPlan::add: unknown fault family '" + std::string{family} +
              "'; known families: " + joined_names(fault_registry()));
  require(probability >= 0.0 && probability <= 1.0,
          "FaultPlan::add: probability must be in [0, 1]");
  require(duration_s >= 0.0, "FaultPlan::add: duration_s must be >= 0");
  for (FaultSpec& spec : specs) {
    if (spec.family == family) {
      spec.probability = probability;
      spec.duration_s = duration_s;
      return;
    }
  }
  specs.push_back(FaultSpec{std::string{family}, probability, duration_s});
}

const FaultSpec* FaultPlan::find(const std::string_view family) const {
  for (const FaultSpec& spec : specs) {
    if (spec.family == family) {
      return &spec;
    }
  }
  return nullptr;
}

bool FaultPlan::has(const std::string_view family) const {
  return find(family) != nullptr;
}

double FaultPlan::probability(const std::string_view family) const {
  if (!enabled) {
    return 0.0;
  }
  const FaultSpec* spec = find(family);
  return spec == nullptr ? 0.0 : spec->probability;
}

double FaultPlan::duration_s(const std::string_view family) const {
  const FaultSpec* spec = find(family);
  return spec == nullptr ? 0.0 : spec->duration_s;
}

Rng FaultPlan::rng(const std::string_view family) const {
  return Rng{seed}.split(family);
}

bool FaultPlan::draw(const std::string_view family,
                     const std::initializer_list<uint64_t> keys) const {
  const double p = probability(family);
  if (p <= 0.0) {
    return false;
  }
  Rng stream = rng(family);
  for (const uint64_t key : keys) {
    stream = stream.split(key);
  }
  return stream.bernoulli(p);
}

std::string FaultPlan::fingerprint_key() const {
  std::ostringstream canon;
  canon << "faults-v1;seed=" << seed;
  for (const FaultSpec& spec : specs) {
    canon << ';' << spec.family << '=' << spec.probability << '@'
          << spec.duration_s;
  }
  return canon.str();
}

FaultPlan parse_fault_plan(const std::string_view text, const uint64_t seed) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  require(!text.empty(), "parse_fault_plan: empty fault spec");
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string_view token = text.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    const size_t eq = token.find('=');
    require(eq != std::string_view::npos && eq > 0 && eq + 1 < token.size(),
            "parse_fault_plan: want family=prob[:duration], got '" +
                std::string{token} + "'");
    const std::string_view family = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    double duration_s = 0.0;
    const size_t colon = value.find(':');
    if (colon != std::string_view::npos) {
      try {
        duration_s = std::stod(std::string{value.substr(colon + 1)});
      } catch (const std::exception&) {
        require(false, "parse_fault_plan: bad duration in '" +
                           std::string{token} + "'");
      }
      value = value.substr(0, colon);
    }
    double probability = 0.0;
    try {
      probability = std::stod(std::string{value});
    } catch (const std::exception&) {
      require(false, "parse_fault_plan: bad probability in '" +
                         std::string{token} + "'");
    }
    plan.add(family, probability, duration_s);
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return plan;
}

}  // namespace puffer::sim
