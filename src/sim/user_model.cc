#include "sim/user_model.hh"

#include <algorithm>
#include <cmath>

namespace puffer::sim {

UserModel::UserModel(const uint64_t seed) : seed_(seed) {}

SessionBehavior UserModel::sample_session(Rng& rng) const {
  SessionBehavior behavior;
  // A visit contains one or more streams; channel changes start new streams
  // (Figure A1: 337k sessions produced 1.6M streams, ~4.7 streams/session).
  behavior.num_streams = 1 + static_cast<int>(rng.exponential(1.0 / 3.5));
  behavior.num_streams = std::min(behavior.num_streams, 40);
  // A slice of visits never plays anything (incompatible browser, instant
  // bounce) — Figure A1's "did not begin playing" bucket is fed both by
  // these and by sub-startup-delay zaps.
  behavior.incompatible_or_bounce = rng.bernoulli(0.08);
  return behavior;
}

UserBehavior UserModel::sample_stream_behavior(Rng& rng) const {
  UserBehavior behavior;
  // Watch-intent mixture:
  //  * 55%: channel zapping, a few seconds (feeds the <4 s exclusions);
  //  * 40%: lognormal body, median ~8 minutes;
  //  * 5%: heavy Pareto tail reaching many hours (Figure 10's tail).
  const double draw = rng.uniform();
  if (draw < 0.55) {
    behavior.watch_intent_s = rng.exponential(1.0 / 4.0);  // mean 4 s
  } else if (draw < 0.95) {
    behavior.watch_intent_s = rng.lognormal(std::log(8.0 * 60.0), 1.1);
  } else {
    behavior.watch_intent_s = rng.pareto(30.0 * 60.0, 1.05);
  }
  behavior.watch_intent_s = std::min(behavior.watch_intent_s, 16.0 * 3600.0);

  behavior.stall_patience_s = 4.0 + rng.exponential(1.0 / 10.0);
  behavior.stall_hazard_per_s = 0.04 * std::exp(rng.normal(0.0, 0.5));
  behavior.quality_hazard_per_s_db = 0.0006 * std::exp(rng.normal(0.0, 0.5));
  behavior.quality_reference_db = 16.0;
  return behavior;
}

}  // namespace puffer::sim
