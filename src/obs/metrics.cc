#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/require.hh"

namespace puffer::obs {

namespace {

void append_json_escaped(std::string& out, const std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// %.17g round-trips every double and is locale-independent for the values
/// we emit, so the rendered snapshot is byte-identical across runs.
void append_double(std::string& out, const double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_int64_array(std::string& out, const std::vector<int64_t>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); i++) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  out += ']';
}

void append_double_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); i++) {
    if (i > 0) {
      out += ',';
    }
    append_double(out, values[i]);
  }
  out += ']';
}

}  // namespace

std::string_view to_string(const MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void MetricSnapshot::merge_from(const MetricSnapshot& other) {
  if (other.metrics.empty()) {
    return;
  }
  if (metrics.empty()) {
    metrics = other.metrics;
    return;
  }
  require(metrics.size() == other.metrics.size(),
          "MetricSnapshot::merge_from: schema size mismatch");
  for (size_t i = 0; i < metrics.size(); i++) {
    Metric& mine = metrics[i];
    const Metric& theirs = other.metrics[i];
    require(mine.name == theirs.name && mine.kind == theirs.kind &&
                mine.bounds == theirs.bounds,
            "MetricSnapshot::merge_from: schema mismatch at '" + mine.name +
                "'");
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.value += theirs.value;
        break;
      case MetricKind::kGauge:
        mine.value = std::max(mine.value, theirs.value);
        mine.high_water = std::max(mine.high_water, theirs.high_water);
        break;
      case MetricKind::kHistogram:
        for (size_t b = 0; b < mine.buckets.size(); b++) {
          mine.buckets[b] += theirs.buckets[b];
        }
        mine.count += theirs.count;
        mine.min = std::min(mine.min, theirs.min);
        mine.max = std::max(mine.max, theirs.max);
        break;
    }
  }
}

void MetricSnapshot::append_from(const MetricSnapshot& other) {
  metrics.insert(metrics.end(), other.metrics.begin(), other.metrics.end());
}

MetricSnapshot MetricSnapshot::deterministic_view(
    const bool include_shard_local) const {
  MetricSnapshot view;
  for (const Metric& metric : metrics) {
    if (metric.scheduling_dependent) {
      continue;
    }
    if (metric.shard_local && !include_shard_local) {
      continue;
    }
    view.metrics.push_back(metric);
  }
  return view;
}

const MetricSnapshot::Metric* MetricSnapshot::find(
    const std::string_view name) const {
  for (const Metric& metric : metrics) {
    if (metric.name == name) {
      return &metric;
    }
  }
  return nullptr;
}

std::string MetricSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < metrics.size(); i++) {
    const Metric& m = metrics[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"name\":\"";
    append_json_escaped(out, m.name);
    out += "\",\"kind\":\"";
    out += to_string(m.kind);
    out += "\",\"shard_local\":";
    out += m.shard_local ? "true" : "false";
    out += ",\"scheduling_dependent\":";
    out += m.scheduling_dependent ? "true" : "false";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(m.value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(m.value);
        out += ",\"high_water\":" + std::to_string(m.high_water);
        break;
      case MetricKind::kHistogram:
        out += ",\"bounds\":";
        append_double_array(out, m.bounds);
        out += ",\"buckets\":";
        append_int64_array(out, m.buckets);
        out += ",\"count\":" + std::to_string(m.count);
        out += ",\"min\":";
        append_double(out, m.min);
        out += ",\"max\":";
        append_double(out, m.max);
        break;
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

MetricRegistry::Id MetricRegistry::register_metric(std::string name,
                                                   const MetricKind kind,
                                                   const Options options) {
  MetricSnapshot::Metric metric;
  metric.name = std::move(name);
  metric.kind = kind;
  metric.shard_local = options.shard_local;
  metric.scheduling_dependent = options.scheduling_dependent;
  data_.metrics.push_back(std::move(metric));
  return data_.metrics.size() - 1;
}

MetricRegistry::Id MetricRegistry::counter(std::string name,
                                           const Options options) {
  return register_metric(std::move(name), MetricKind::kCounter, options);
}

MetricRegistry::Id MetricRegistry::gauge(std::string name,
                                         const Options options) {
  return register_metric(std::move(name), MetricKind::kGauge, options);
}

MetricRegistry::Id MetricRegistry::histogram(std::string name,
                                             std::vector<double> bucket_bounds,
                                             const Options options) {
  require(std::is_sorted(bucket_bounds.begin(), bucket_bounds.end()),
          "MetricRegistry: histogram bounds must be ascending");
  const Id id =
      register_metric(std::move(name), MetricKind::kHistogram, options);
  MetricSnapshot::Metric& metric = data_.metrics[id];
  metric.bounds = std::move(bucket_bounds);
  metric.buckets.assign(metric.bounds.size() + 1, 0);
  return id;
}

void MetricRegistry::add(const Id id, const int64_t delta) {
  MetricSnapshot::Metric& metric = data_.metrics[id];
  require(metric.kind == MetricKind::kCounter,
          "MetricRegistry::add: not a counter");
  metric.value += delta;
}

void MetricRegistry::set(const Id id, const int64_t value) {
  MetricSnapshot::Metric& metric = data_.metrics[id];
  require(metric.kind == MetricKind::kGauge,
          "MetricRegistry::set: not a gauge");
  metric.value = value;
  metric.high_water = std::max(metric.high_water, value);
}

void MetricRegistry::set_max(const Id id, const int64_t value) {
  MetricSnapshot::Metric& metric = data_.metrics[id];
  require(metric.kind == MetricKind::kGauge,
          "MetricRegistry::set_max: not a gauge");
  metric.value = std::max(metric.value, value);
  metric.high_water = std::max(metric.high_water, metric.value);
}

void MetricRegistry::observe(const Id id, const double value) {
  MetricSnapshot::Metric& metric = data_.metrics[id];
  require(metric.kind == MetricKind::kHistogram,
          "MetricRegistry::observe: not a histogram");
  const auto bucket = static_cast<size_t>(
      std::lower_bound(metric.bounds.begin(), metric.bounds.end(), value) -
      metric.bounds.begin());
  metric.buckets[bucket]++;
  metric.count++;
  metric.min = std::min(metric.min, value);
  metric.max = std::max(metric.max, value);
}

}  // namespace puffer::obs
