#ifndef PUFFER_OBS_METRICS_HH
#define PUFFER_OBS_METRICS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace puffer::obs {

/// Plane-1 (sim-plane) metrics: counters, gauges and fixed-bucket
/// histograms keyed by *registration order* — never hash order — so two
/// registries built by the same registration code have byte-identical
/// schemas and their snapshots compare and merge positionally. All state is
/// integral except the histogram observation extremes, and those are
/// order- and partition-invariant (min/max of a multiset), so a snapshot is
/// a deterministic function of the observation *multiset*: merging
/// per-shard snapshots in ascending shard order reproduces the single-shard
/// snapshot bit for bit, exactly like FleetRunStats. Deliberately absent: a
/// floating-point sum (its value would depend on accumulation order across
/// shard partitions) and any wall-clock anything — wall time lives in the
/// perf plane (obs/prof.hh), which is excluded from bitwise audits.
enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind);

/// A registry's state at one instant: plain data, comparable and mergeable.
struct MetricSnapshot {
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// The value legitimately depends on shard-local batch membership
    /// (like FleetRunStats' batching counters): compared only between runs
    /// with equal shard counts, excluded by deterministic_view(false).
    bool shard_local = false;
    /// The value depends on wall-clock scheduling (e.g. how far a merge
    /// frontier lags behind racing shards): excluded from every
    /// determinism comparison by deterministic_view().
    bool scheduling_dependent = false;

    int64_t value = 0;       ///< counter total / gauge current value
    int64_t high_water = 0;  ///< gauge: maximum value ever set

    // Histogram state. buckets has bounds.size() + 1 entries; entry i
    // counts observations <= bounds[i], the last entry is the overflow.
    std::vector<double> bounds;
    std::vector<int64_t> buckets;
    int64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    bool operator==(const Metric&) const = default;
  };

  std::vector<Metric> metrics;  ///< registration order

  /// Element-wise merge of a same-schema snapshot (counters and histogram
  /// buckets sum; gauges take the max — a merged gauge is a high-water
  /// across shards). Merging an empty snapshot into this is a no-op;
  /// merging into an empty snapshot adopts `other`. Any other schema
  /// mismatch throws: it means two shards ran different registration code.
  void merge_from(const MetricSnapshot& other);

  /// Concatenate a *different* schema after this one (e.g. trial-layer
  /// metrics after engine metrics); registration order is preserved within
  /// each block.
  void append_from(const MetricSnapshot& other);

  /// The subset that participates in determinism comparisons:
  /// scheduling-dependent metrics are always dropped; shard-local ones are
  /// kept only when comparing runs with equal shard counts.
  [[nodiscard]] MetricSnapshot deterministic_view(
      bool include_shard_local = true) const;

  /// Linear lookup by name; nullptr when absent. For tests and reporting —
  /// hot paths hold MetricRegistry::Id handles instead.
  [[nodiscard]] const Metric* find(std::string_view name) const;

  /// Render as a JSON document ({"metrics": [...]}) for --metrics-out.
  /// Non-finite extremes (an empty histogram's ±inf) render as null.
  [[nodiscard]] std::string to_json() const;

  bool operator==(const MetricSnapshot&) const = default;
};

/// Registration flags (nested-class default arguments trip over NSDMI
/// rules, so this lives at namespace scope).
struct MetricOptions {
  bool shard_local = false;
  bool scheduling_dependent = false;
};

/// The mutable accumulator behind a snapshot. Not synchronized: each fleet
/// shard owns one registry exclusively (like its FleetRunStats slot) and
/// the caller merges snapshots after the join. Metric handles are
/// registration-order indices, so the hot path is an array index — no
/// string hashing, no map walk.
class MetricRegistry {
 public:
  using Id = size_t;
  using Options = MetricOptions;

  Id counter(std::string name, Options options = {});
  Id gauge(std::string name, Options options = {});
  /// `bucket_bounds` are ascending upper bounds; observations above the
  /// last bound land in an implicit overflow bucket.
  Id histogram(std::string name, std::vector<double> bucket_bounds,
               Options options = {});

  /// Counter: add `delta` (>= 0).
  void add(Id id, int64_t delta = 1);
  /// Gauge: set the current value (high-water tracked automatically).
  void set(Id id, int64_t value);
  /// Gauge: raise to `value` if larger (peak tracking).
  void set_max(Id id, int64_t value);
  /// Histogram: record one observation.
  void observe(Id id, double value);

  [[nodiscard]] size_t size() const { return data_.metrics.size(); }
  [[nodiscard]] MetricSnapshot snapshot() const { return data_; }

 private:
  Id register_metric(std::string name, MetricKind kind, Options options);

  MetricSnapshot data_;
};

}  // namespace puffer::obs

#endif  // PUFFER_OBS_METRICS_HH
