#include "obs/trace.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

namespace puffer::obs {

namespace {

void append_escaped(std::string& out, const std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microsecond timestamps with fixed millinanosecond precision: stable
/// bytes for equal inputs, and ample resolution for both planes.
void append_time_us(std::string& out, const double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", std::isfinite(value) ? value : 0.0);
  out += buf;
}

void append_value(std::string& out, const double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

TraceArgs& TraceArgs::add(const std::string_view key, const int64_t value) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":" + std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::add(const std::string_view key, const double value) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  append_value(body_, value);
  return *this;
}

TraceArgs& TraceArgs::add(const std::string_view key,
                          const std::string_view value) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":\"";
  append_escaped(body_, value);
  body_ += '"';
  return *this;
}

void TraceWriter::push_event(const int pid, const int tid, const char phase,
                             const std::string_view name, const double* ts_us,
                             const double* dur_us,
                             const std::string_view args_json) {
  std::string event = "{\"name\":\"";
  append_escaped(event, name);
  event += "\",\"ph\":\"";
  event += phase;
  event += "\",\"pid\":" + std::to_string(pid);
  event += ",\"tid\":" + std::to_string(tid);
  if (ts_us != nullptr) {
    event += ",\"ts\":";
    append_time_us(event, *ts_us);
  }
  if (dur_us != nullptr) {
    event += ",\"dur\":";
    append_time_us(event, *dur_us);
  }
  if (!args_json.empty()) {
    event += ",\"args\":";
    event += args_json;
  }
  event += '}';
  events_.push_back(std::move(event));
}

void TraceWriter::process_name(const int pid, const std::string_view name) {
  push_event(pid, 0, 'M', "process_name", nullptr, nullptr,
             TraceArgs{}.add("name", name).str());
}

void TraceWriter::thread_name(const int pid, const int tid,
                              const std::string_view name) {
  std::string event = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                      std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                      ",\"args\":" + TraceArgs{}.add("name", name).str() + "}";
  events_.push_back(std::move(event));
}

void TraceWriter::complete(const int pid, const int tid,
                           const std::string_view name, const double ts_us,
                           const double dur_us,
                           const std::string_view args_json) {
  push_event(pid, tid, 'X', name, &ts_us, &dur_us, args_json);
}

void TraceWriter::instant(const int pid, const int tid,
                          const std::string_view name, const double ts_us,
                          const std::string_view args_json) {
  push_event(pid, tid, 'i', name, &ts_us, nullptr, args_json);
}

void TraceWriter::counter(const int pid, const std::string_view name,
                          const double ts_us, const double value) {
  std::string args = "{\"";
  append_escaped(args, name);
  args += "\":";
  append_value(args, value);
  args += '}';
  push_event(pid, 0, 'C', name, &ts_us, nullptr, args);
}

void TraceWriter::append_from(TraceWriter& other) {
  events_.reserve(events_.size() + other.events_.size());
  for (std::string& event : other.events_) {
    events_.push_back(std::move(event));
  }
  other.events_.clear();
}

std::string TraceWriter::str() const {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); i++) {
    if (i > 0) {
      out += ',';
    }
    out += '\n';
    out += events_[i];
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    return false;
  }
  file << str();
  return static_cast<bool>(file);
}

}  // namespace puffer::obs
