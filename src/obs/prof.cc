#include "obs/prof.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <limits>
#include <utility>

#if PUFFER_PROFILING
#include <array>
#include <chrono>
#endif

#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace puffer::obs {

namespace {

// DETLINT-OK(global-state): the perf plane's runtime gate — read with
// relaxed loads on the hot path, flipped only by bench/test setup code
std::atomic<bool> enabled_{true};

#if PUFFER_PROFILING

/// Per-thread event log cap: histograms keep counting past it, only the
/// trace lanes saturate (dropped_events records how much).
constexpr size_t kMaxEventsPerThread = 1 << 16;

struct ScopeStats {
  const char* name = nullptr;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = std::numeric_limits<int64_t>::max();
  int64_t max_ns = 0;
  std::array<int64_t, kProfNumBounds + 1> buckets{};
};

struct RawEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;  ///< relative to the registry epoch
  int64_t dur_ns = 0;
};

/// One thread's profiling state. Owned (and written) exclusively by that
/// thread while it lives; moved into the registry's retired list by the
/// thread_local destructor at thread exit, which is what makes
/// prof_snapshot() data-race-free without per-sample locking.
struct ThreadData {
  int ordinal = -1;
  int64_t epoch_ns = 0;
  std::vector<ScopeStats> scopes;  ///< linear scan by literal name
  std::vector<RawEvent> events;
  int64_t dropped_events = 0;
};

struct Registry {
  Mutex mutex GUARDS(retired, next_ordinal, epoch_ns);
  std::vector<ThreadData> retired GUARDED_BY(mutex);
  int next_ordinal GUARDED_BY(mutex) = 0;
  int64_t epoch_ns GUARDED_BY(mutex) = -1;  ///< first registration's clock
};

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// DETLINT-OK(global-state): the perf-plane thread registry — mutex-guarded,
// touched at thread birth/death and snapshot time only, never by sim code
Registry& registry() {
  static Registry instance;
  return instance;
}

/// Registers on construction, retires the accumulated data on destruction
/// (i.e. at thread exit, before any joiner can observe the thread as done).
struct ThreadSlot {
  ThreadData data;

  ThreadSlot() {
    Registry& reg = registry();
    const MutexLock lock{reg.mutex};
    data.ordinal = reg.next_ordinal++;
    if (reg.epoch_ns < 0) {
      reg.epoch_ns = now_ns();
    }
    data.epoch_ns = reg.epoch_ns;
  }

  ~ThreadSlot() {
    Registry& reg = registry();
    const MutexLock lock{reg.mutex};
    reg.retired.push_back(std::move(data));
  }
};

ThreadData& thread_data() {
  thread_local ThreadSlot slot;
  return slot.data;
}

ScopeStats& stats_for(ThreadData& data, const char* const name) {
  for (ScopeStats& scope : data.scopes) {
    if (scope.name == name || std::strcmp(scope.name, name) == 0) {
      return scope;
    }
  }
  data.scopes.emplace_back();
  data.scopes.back().name = name;
  return data.scopes.back();
}

size_t bucket_of(const int64_t dur_ns) {
  if (dur_ns <= 256) {
    return 0;
  }
  const auto width =
      std::bit_width(static_cast<uint64_t>(dur_ns - 1));  // >= 9 here
  return std::min<size_t>(static_cast<size_t>(width - 8), kProfNumBounds);
}

ProfThreadSnapshot copy_thread(const ThreadData& data) {
  ProfThreadSnapshot snap;
  snap.ordinal = data.ordinal;
  snap.dropped_events = data.dropped_events;
  snap.scopes.reserve(data.scopes.size());
  for (const ScopeStats& scope : data.scopes) {
    ProfScopeStats out;
    out.name = scope.name;
    out.count = scope.count;
    out.total_ns = scope.total_ns;
    out.min_ns = scope.count > 0 ? scope.min_ns : 0;
    out.max_ns = scope.max_ns;
    out.buckets.assign(scope.buckets.begin(), scope.buckets.end());
    snap.scopes.push_back(std::move(out));
  }
  snap.events.reserve(data.events.size());
  for (const RawEvent& event : data.events) {
    snap.events.push_back(
        ProfEventCopy{event.name, event.start_ns, event.dur_ns});
  }
  return snap;
}

#endif  // PUFFER_PROFILING

}  // namespace

#if PUFFER_PROFILING

ProfScope::ProfScope(const char* const name)
    : name_(name),
      start_ns_(enabled_.load(std::memory_order_relaxed) ? now_ns() : -1) {}

ProfScope::~ProfScope() {
  if (start_ns_ < 0) {
    return;
  }
  const int64_t dur_ns = std::max<int64_t>(0, now_ns() - start_ns_);
  ThreadData& data = thread_data();
  ScopeStats& scope = stats_for(data, name_);
  scope.count++;
  scope.total_ns += dur_ns;
  scope.min_ns = std::min(scope.min_ns, dur_ns);
  scope.max_ns = std::max(scope.max_ns, dur_ns);
  scope.buckets[bucket_of(dur_ns)]++;
  if (data.events.size() < kMaxEventsPerThread) {
    data.events.push_back(RawEvent{name_, start_ns_ - data.epoch_ns, dur_ns});
  } else {
    data.dropped_events++;
  }
}

#endif  // PUFFER_PROFILING

void set_prof_enabled(const bool enabled) {
  enabled_.store(enabled && kProfilingCompiled, std::memory_order_relaxed);
}

bool prof_enabled() {
  return kProfilingCompiled && enabled_.load(std::memory_order_relaxed);
}

const std::vector<double>& prof_bucket_bounds_ns() {
  // DETLINT-OK(global-state): immutable after first use — the shared
  // bucket-bound table every perf histogram reports against
  static const std::vector<double> bounds = [] {
    std::vector<double> out;
    out.reserve(kProfNumBounds);
    for (int i = 0; i < kProfNumBounds; i++) {
      out.push_back(static_cast<double>(int64_t{256} << i));
    }
    return out;
  }();
  return bounds;
}

std::vector<ProfScopeStats> ProfSnapshot::merged() const {
  std::vector<ProfScopeStats> out;
  for (const ProfThreadSnapshot& thread : threads) {
    for (const ProfScopeStats& scope : thread.scopes) {
      ProfScopeStats* into = nullptr;
      for (ProfScopeStats& existing : out) {
        if (existing.name == scope.name) {
          into = &existing;
          break;
        }
      }
      if (into == nullptr) {
        out.push_back(scope);
        continue;
      }
      into->count += scope.count;
      into->total_ns += scope.total_ns;
      // Per-thread entries only exist once a scope ran, so count >= 1 on
      // both sides and min is well-defined.
      into->min_ns = std::min(into->min_ns, scope.min_ns);
      into->max_ns = std::max(into->max_ns, scope.max_ns);
      for (size_t b = 0; b < into->buckets.size(); b++) {
        into->buckets[b] += scope.buckets[b];
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfScopeStats& a, const ProfScopeStats& b) {
              return a.name < b.name;
            });
  return out;
}

const ProfScopeStats* ProfSnapshot::find(
    const std::vector<ProfScopeStats>& merged_scopes,
    const std::string_view name) {
  for (const ProfScopeStats& scope : merged_scopes) {
    if (scope.name == name) {
      return &scope;
    }
  }
  return nullptr;
}

ProfSnapshot prof_snapshot() {
  ProfSnapshot snap;
#if PUFFER_PROFILING
  // Register/read the calling thread first: thread_data() may take the
  // registry lock on first use.
  const ThreadData& own = thread_data();
  Registry& reg = registry();
  {
    const MutexLock lock{reg.mutex};
    for (const ThreadData& thread : reg.retired) {
      if (!thread.scopes.empty() || !thread.events.empty()) {
        snap.threads.push_back(copy_thread(thread));
      }
    }
  }
  if (!own.scopes.empty() || !own.events.empty()) {
    snap.threads.push_back(copy_thread(own));
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const ProfThreadSnapshot& a, const ProfThreadSnapshot& b) {
              return a.ordinal < b.ordinal;
            });
#endif
  return snap;
}

void prof_reset() {
#if PUFFER_PROFILING
  ThreadData& own = thread_data();
  own.scopes.clear();
  own.events.clear();
  own.dropped_events = 0;
  Registry& reg = registry();
  const MutexLock lock{reg.mutex};
  reg.retired.clear();
#endif
}

void prof_export_trace(TraceWriter& trace, const int pid) {
  const ProfSnapshot snap = prof_snapshot();
  if (snap.threads.empty()) {
    return;
  }
  trace.process_name(pid, "wall time (perf)");
  for (const ProfThreadSnapshot& thread : snap.threads) {
    trace.thread_name(pid, thread.ordinal,
                      "worker " + std::to_string(thread.ordinal));
    for (const ProfEventCopy& event : thread.events) {
      trace.complete(pid, thread.ordinal, event.name,
                     static_cast<double>(event.start_ns) / 1000.0,
                     static_cast<double>(event.dur_ns) / 1000.0);
    }
  }
}

}  // namespace puffer::obs
