#ifndef PUFFER_OBS_PROF_HH
#define PUFFER_OBS_PROF_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hh"

// Plane-2 (perf-plane) profiling: RAII wall-clock scopes feeding per-thread
// histograms and a bounded per-thread event log. This is the ONE place the
// tree is allowed to read a clock (detlint R1 allowlists src/obs/prof.*
// only): call sites construct `obs::ProfScope scope{"name"};` and never see
// a time source, so nondeterminism stays structurally contained — nothing
// in the sim plane, results, or bitwise audits can observe it.
//
// Configure with -DPUFFER_PROFILING=OFF to compile every scope to a no-op
// (the query API below still links and returns empty data). With profiling
// compiled in, set_prof_enabled(false) skips the clock reads at runtime so
// one binary can measure its own overhead (bench/fleet_scale.cc does).

namespace puffer::obs {

#if !defined(PUFFER_PROFILING)
#define PUFFER_PROFILING 1
#endif

#if PUFFER_PROFILING

inline constexpr bool kProfilingCompiled = true;

/// Times the enclosing scope on the calling thread. `name` must be a
/// string literal (or otherwise outlive every snapshot/export call).
class ProfScope {
 public:
  explicit ProfScope(const char* name);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;  ///< -1 when profiling was disabled at entry
};

#else

inline constexpr bool kProfilingCompiled = false;

class ProfScope {
 public:
  explicit ProfScope(const char* /*name*/) {}
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
};

#endif  // PUFFER_PROFILING

/// Runtime gate (on by default). Disabling skips the clock reads; data
/// already recorded stays until prof_reset().
void set_prof_enabled(bool enabled);
[[nodiscard]] bool prof_enabled();

/// Power-of-two duration buckets: bucket i counts durations
/// <= 256ns << i, for i in [0, kProfNumBounds); one overflow bucket after.
inline constexpr int kProfNumBounds = 24;
[[nodiscard]] const std::vector<double>& prof_bucket_bounds_ns();

struct ProfScopeStats {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  std::vector<int64_t> buckets;  ///< kProfNumBounds + 1 entries
};

struct ProfEventCopy {
  std::string name;
  int64_t start_ns = 0;  ///< relative to the process-wide profiling epoch
  int64_t dur_ns = 0;
};

struct ProfThreadSnapshot {
  int ordinal = 0;  ///< registration order of the thread (wall lane id)
  std::vector<ProfScopeStats> scopes;
  std::vector<ProfEventCopy> events;  ///< bounded; overflow is counted
  int64_t dropped_events = 0;
};

struct ProfSnapshot {
  std::vector<ProfThreadSnapshot> threads;  ///< ascending ordinal
  /// Per-scope stats folded across threads, sorted by name (thread
  /// ordinals are scheduling-dependent; the name order is not).
  [[nodiscard]] std::vector<ProfScopeStats> merged() const;
  /// merged() entry by name; nullptr when the scope never ran.
  [[nodiscard]] static const ProfScopeStats* find(
      const std::vector<ProfScopeStats>& merged_scopes, std::string_view name);
};

/// Stats from every *retired* worker thread plus the calling thread. Live
/// sibling threads are invisible until they exit (their state is
/// thread-confined — that is what makes this data-race-free); the fleet
/// engine joins its pools before returning, so post-run snapshots see all
/// workers.
[[nodiscard]] ProfSnapshot prof_snapshot();

/// Drop retired-thread data and the calling thread's data (other live
/// threads keep theirs). Benches call this between measured sections.
void prof_reset();

/// Emit wall-time lanes (pid `pid`, one tid per thread ordinal) from the
/// current snapshot into `trace`. Nondeterministic by nature — lanes land
/// in ordinal order but their content is wall-clock truth.
void prof_export_trace(TraceWriter& trace, int pid = kWallTracePid);

}  // namespace puffer::obs

#endif  // PUFFER_OBS_PROF_HH
