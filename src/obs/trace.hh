#ifndef PUFFER_OBS_TRACE_HH
#define PUFFER_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace puffer::obs {

/// Trace lanes are grouped by "process": pid 1 carries the deterministic
/// virtual-time lanes (one tid per fleet shard, timestamps in simulated
/// microseconds), pid 2 the wall-clock perf lanes (one tid per worker
/// thread, from obs/prof.hh). Keeping the planes in separate pids keeps
/// them visually separate in Perfetto and lets tests compare the virtual
/// plane's bytes while ignoring the wall plane entirely.
inline constexpr int kSimTracePid = 1;
inline constexpr int kWallTracePid = 2;

/// Builds an `args` object for a trace event: {"key":value,...}. Values are
/// rendered immediately with fixed formats, so identical adds yield
/// identical bytes.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, int64_t value);
  TraceArgs& add(std::string_view key, double value);
  TraceArgs& add(std::string_view key, std::string_view value);
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Emits Chrome trace-event JSON (the chrome://tracing / Perfetto format:
/// {"traceEvents": [...]}). Events are rendered to bytes at append time
/// with fixed numeric formats and kept in append order, so a writer fed the
/// same calls in the same order produces a byte-identical file — that is
/// the determinism contract for the virtual-time lanes: each fleet shard
/// appends to its own writer (deterministic, virtual-time-ordered) and the
/// engine splices shard writers in ascending shard order after the join.
/// Wall-clock lanes (pid kWallTracePid) carry no such guarantee and are
/// excluded from bitwise comparisons.
class TraceWriter {
 public:
  /// Metadata: name the lane group ("process") `pid`.
  void process_name(int pid, std::string_view name);
  /// Metadata: name lane `tid` within `pid`.
  void thread_name(int pid, int tid, std::string_view name);

  /// A span: `ph:"X"` complete event. Timestamps/durations in microseconds
  /// (virtual µs on the sim plane, wall µs on the perf plane).
  void complete(int pid, int tid, std::string_view name, double ts_us,
                double dur_us, std::string_view args_json = {});
  /// A point event (`ph:"i"`).
  void instant(int pid, int tid, std::string_view name, double ts_us,
               std::string_view args_json = {});
  /// A counter sample (`ph:"C"`): series `name` takes `value` at `ts_us`.
  void counter(int pid, std::string_view name, double ts_us, double value);

  /// Splice `other`'s events onto the end of this writer (moves them out of
  /// `other`). The shard-merge primitive: ascending-shard splices make the
  /// merged virtual plane independent of which shard finished first.
  void append_from(TraceWriter& other);

  [[nodiscard]] size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::string str() const;
  /// Write str() to `path`; returns false (and leaves no partial file
  /// behind on open failure) if the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  void push_event(int pid, int tid, char phase, std::string_view name,
                  const double* ts_us, const double* dur_us,
                  std::string_view args_json);

  std::vector<std::string> events_;  ///< pre-rendered JSON objects
};

}  // namespace puffer::obs

#endif  // PUFFER_OBS_TRACE_HH
