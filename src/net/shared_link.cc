#include "net/shared_link.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::net {

SharedLinkSimulator::SharedLinkSimulator(const ThroughputTrace& trace,
                                         SharedLinkConfig config)
    : trace_(&trace), config_(config) {
  require(config_.queue_capacity_bytes > 0.0,
          "SharedLinkSimulator: queue capacity > 0");
}

int SharedLinkSimulator::add_flow() {
  queues_.push_back(0.0);
  offered_totals_.push_back(0.0);
  delivered_totals_.push_back(0.0);
  lost_totals_.push_back(0.0);
  return static_cast<int>(queues_.size()) - 1;
}

double SharedLinkSimulator::queue_bytes(const int flow) const {
  return queues_[static_cast<size_t>(flow)];
}

double SharedLinkSimulator::total_queue_bytes() const {
  double total = 0.0;
  for (const double q : queues_) {
    total += q;
  }
  return total;
}

double SharedLinkSimulator::offered_total(const int flow) const {
  return offered_totals_[static_cast<size_t>(flow)];
}

double SharedLinkSimulator::delivered_total(const int flow) const {
  return delivered_totals_[static_cast<size_t>(flow)];
}

double SharedLinkSimulator::lost_total(const int flow) const {
  return lost_totals_[static_cast<size_t>(flow)];
}

void SharedLinkSimulator::step(const double now_s, const double dt,
                               const std::span<const double> offered,
                               const std::span<LinkStepResult> results) {
  require(dt > 0.0, "SharedLinkSimulator::step: dt must be positive");
  const auto n = queues_.size();
  require(offered.size() == n && results.size() == n,
          "SharedLinkSimulator::step: span sizes must equal num_flows");

  // 1. Arrivals enter the per-flow queues (ascending flow order — the
  // conservation contract's fold order).
  double total_offered = 0.0;
  for (size_t i = 0; i < n; i++) {
    require(offered[i] >= 0.0, "SharedLinkSimulator::step: offered >= 0");
    queues_[i] += offered[i];
    offered_totals_[i] += offered[i];
    total_offered += offered[i];
  }

  // 2. Drop-tail on the shared buffer: overflow is dropped from this step's
  // arrivals in proportion to each flow's offered bytes. (Overflow can only
  // appear because bytes arrived, so total_offered > 0 whenever it does.)
  double total_queued = 0.0;
  for (const double q : queues_) {
    total_queued += q;
  }
  lost_.assign(n, 0.0);
  if (total_queued > config_.queue_capacity_bytes && total_offered > 0.0) {
    const double overflow = total_queued - config_.queue_capacity_bytes;
    for (size_t i = 0; i < n; i++) {
      // min() guards the FP crumbs of the proportional split; it cannot
      // trigger in exact arithmetic (overflow <= total_offered).
      lost_[i] = std::min(overflow * (offered[i] / total_offered), queues_[i]);
      queues_[i] -= lost_[i];
      lost_totals_[i] += lost_[i];
    }
  }

  // 3. Drain at the mid-step capacity sample (the LinkSimulator convention).
  const double capacity = trace_->capacity_at(now_s + dt * 0.5);
  const double drainable = capacity * dt;
  delivered_.assign(n, 0.0);
  double backlog = 0.0;
  for (const double q : queues_) {
    backlog += q;
  }
  if (drainable > 0.0 && backlog > 0.0) {
    if (backlog <= drainable) {
      // Everyone drains fully under either share mode.
      for (size_t i = 0; i < n; i++) {
        delivered_[i] = queues_[i];
      }
    } else if (config_.mode == ShareMode::kFifo) {
      // Fluid FIFO: drain in proportion to each flow's share of the queue.
      for (size_t i = 0; i < n; i++) {
        delivered_[i] = drainable * (queues_[i] / backlog);
      }
    } else {
      // Max-min fair: smallest backlogs first (ties by flow index), each
      // taking min(queue, equal share of what remains).
      drain_order_.resize(n);
      for (size_t i = 0; i < n; i++) {
        drain_order_[i] = static_cast<int>(i);
      }
      std::sort(drain_order_.begin(), drain_order_.end(),
                [&](const int a, const int b) {
                  const double qa = queues_[static_cast<size_t>(a)];
                  const double qb = queues_[static_cast<size_t>(b)];
                  if (qa != qb) {
                    return qa < qb;
                  }
                  return a < b;
                });
      double remaining = drainable;
      for (size_t k = 0; k < n; k++) {
        const auto i = static_cast<size_t>(drain_order_[k]);
        const double share = remaining / static_cast<double>(n - k);
        delivered_[i] = std::min(queues_[i], share);
        remaining -= delivered_[i];
      }
    }
  }
  for (size_t i = 0; i < n; i++) {
    queues_[i] -= delivered_[i];
    delivered_totals_[i] += delivered_[i];
  }

  // 4. Per-flow queueing delay from the same capacity sample, pinned at the
  // outage horizon when nothing can drain (LinkSimulator semantics).
  double total_after = 0.0;
  for (const double q : queues_) {
    total_after += q;
  }
  const int backlogged =
      static_cast<int>(std::count_if(queues_.begin(), queues_.end(),
                                     [](const double q) { return q > 0.0; }));
  for (size_t i = 0; i < n; i++) {
    results[i] = LinkStepResult{};
    results[i].delivered_bytes = delivered_[i];
    results[i].lost_bytes = lost_[i];
    if (capacity > 0.0) {
      if (config_.mode == ShareMode::kFifo) {
        // A FIFO arrival waits behind the whole shared backlog.
        results[i].queue_delay_s =
            std::min(total_after / capacity, LinkSimulator::kQueueDelayCapS);
      } else {
        // A fair-queued arrival waits behind its own backlog at its fair
        // share of the capacity.
        const double fair_rate =
            capacity / static_cast<double>(std::max(backlogged, 1));
        results[i].queue_delay_s =
            std::min(queues_[i] / fair_rate, LinkSimulator::kQueueDelayCapS);
      }
    } else {
      results[i].blocked = queues_[i] > 0.0;
      results[i].queue_delay_s =
          results[i].blocked ? LinkSimulator::kQueueDelayCapS : 0.0;
    }
  }
}

double jain_fairness_index(const std::span<const double> allocations) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq <= 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace puffer::net
