#ifndef PUFFER_NET_TCP_INFO_HH
#define PUFFER_NET_TCP_INFO_HH

namespace puffer::net {

/// The congestion-control statistics Fugu's TTP consumes, mirroring the
/// fields of the Linux kernel's tcp_info structure that the paper lists
/// (section 4.2 and Appendix B): cwnd, packets in flight, min RTT, smoothed
/// RTT, and the delivery-rate estimate.
struct TcpInfo {
  double cwnd_pkts = 10.0;          ///< tcpi_snd_cwnd
  double in_flight_pkts = 0.0;      ///< unacked - sacked - lost + retrans
  double min_rtt_s = 0.0;           ///< tcpi_min_rtt
  double srtt_s = 0.0;              ///< tcpi_rtt (smoothed)
  double delivery_rate_bps = 0.0;   ///< tcpi_delivery_rate, bytes per second
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TCP_INFO_HH
