#ifndef PUFFER_NET_BBR_HH
#define PUFFER_NET_BBR_HH

#include <deque>
#include <utility>

#include "net/congestion_control.hh"

namespace puffer::net {

/// Fluid-model BBR (v1): windowed-max bottleneck-bandwidth filter, windowed
/// min-RTT, STARTUP / DRAIN / PROBE_BW state machine with the standard gain
/// cycle. Captures the BBR behaviours that matter for ABR-over-TCP: fast
/// startup ramp, operating point near 1 BDP of queue, periodic 1.25x probing,
/// and robustness to app-limited periods (video chunks leave the connection
/// idle between sends).
class BbrModel final : public CongestionControl {
 public:
  explicit BbrModel(double mss_bytes = 1500.0);

  void on_sample(const CcSample& sample) override;
  [[nodiscard]] double cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate_bps() const override;
  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw };
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double btl_bw_bps() const { return btl_bw_bps_; }
  [[nodiscard]] double min_rtt_s() const { return min_rtt_s_; }

 private:
  void update_btl_bw(const CcSample& sample);
  void update_min_rtt(const CcSample& sample);
  void advance_state_machine(const CcSample& sample);

  double mss_bytes_;
  Mode mode_ = Mode::kStartup;

  // Windowed max filter for bottleneck bandwidth: (timestamp, rate) samples
  // within the last kBwWindowS seconds.
  std::deque<std::pair<double, double>> bw_samples_;
  double btl_bw_bps_ = 0.0;

  // Windowed min filter for RTT (BBR's 10 s min-RTT window), kept as a
  // monotonic deque of (timestamp, rtt) with strictly increasing rtt from
  // the front. Seeded by the first sample — a fixed initial value would act
  // as a permanent ceiling on paths whose propagation RTT exceeds it (the
  // ~600 ms GEO satellite family lost ~6x of its BDP estimate that way).
  std::deque<std::pair<double, double>> rtt_samples_;
  double min_rtt_s_ = 0.100;  // pre-first-sample fallback only

  // Full-pipe detection (STARTUP exit).
  double full_pipe_baseline_bps_ = 0.0;
  int rounds_without_growth_ = 0;
  double next_round_at_s_ = 0.0;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  double cycle_phase_start_s_ = 0.0;

  double pacing_gain_ = 2.885;
  double cwnd_gain_ = 2.885;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_BBR_HH
