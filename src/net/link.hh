#ifndef PUFFER_NET_LINK_HH
#define PUFFER_NET_LINK_HH

#include "net/trace.hh"

namespace puffer::net {

/// Result of advancing the link by one fluid step.
struct LinkStepResult {
  double delivered_bytes = 0.0;  ///< bytes that exited the bottleneck
  double queue_delay_s = 0.0;    ///< queueing delay seen at the end of step
  double lost_bytes = 0.0;       ///< drop-tail losses during the step
};

/// Fluid model of a single bottleneck link with a drop-tail queue, fed by one
/// flow (each Puffer session has its own TCP connection; the bottleneck is
/// the client's access link). Capacity follows a ThroughputTrace.
class LinkSimulator {
 public:
  /// `queue_capacity_bytes`: drop-tail buffer size. A common access-link
  /// provisioning is ~1 BDP to several BDP; callers compute it from the path.
  LinkSimulator(const ThroughputTrace& trace, double queue_capacity_bytes);

  /// Offer `offered_bytes` into the queue and drain at trace capacity for
  /// `dt` seconds starting at `now_s`.
  LinkStepResult step(double now_s, double dt, double offered_bytes);

  /// Drain the queue for `dt` seconds with no arrivals (idle application).
  void drain(double now_s, double dt);

  [[nodiscard]] double queue_bytes() const { return queue_bytes_; }
  [[nodiscard]] double queue_capacity() const { return queue_capacity_bytes_; }
  [[nodiscard]] double capacity_at(double now_s) const {
    return trace_->capacity_at(now_s);
  }

 private:
  const ThroughputTrace* trace_;
  double queue_capacity_bytes_;
  double queue_bytes_ = 0.0;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_LINK_HH
