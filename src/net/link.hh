#ifndef PUFFER_NET_LINK_HH
#define PUFFER_NET_LINK_HH

#include "net/trace.hh"

namespace puffer::net {

/// Result of advancing the link by one fluid step.
struct LinkStepResult {
  double delivered_bytes = 0.0;  ///< bytes that exited the bottleneck
  double queue_delay_s = 0.0;    ///< queueing delay seen at the end of step
  double lost_bytes = 0.0;       ///< drop-tail losses during the step
  /// A total outage (zero capacity) is holding the queue: nothing drains and
  /// no finite queueing delay exists. queue_delay_s then reports the capped
  /// outage horizon (kQueueDelayCapS) instead of a division-floor artifact.
  bool blocked = false;
};

/// Fluid model of a single bottleneck link with a drop-tail queue, fed by one
/// flow (each Puffer session has its own TCP connection; the bottleneck is
/// the client's access link). Capacity follows a ThroughputTrace.
class LinkSimulator {
 public:
  /// Upper bound on the reported queueing delay. During a zero-capacity
  /// outage the true delay is unbounded (the queue cannot drain), so the
  /// model pins it at this horizon — far beyond any RTT the consumers
  /// (srtt smoothing, the TTP's 9.75 s+ bin, BBR's min filter) distinguish,
  /// without the ~250,000 s artifacts a 1 byte/s division floor produced.
  static constexpr double kQueueDelayCapS = 60.0;

  /// `queue_capacity_bytes`: drop-tail buffer size. A common access-link
  /// provisioning is ~1 BDP to several BDP; callers compute it from the path.
  LinkSimulator(const ThroughputTrace& trace, double queue_capacity_bytes);

  /// Offer `offered_bytes` into the queue and drain at trace capacity for
  /// `dt` seconds starting at `now_s`. The drain and the queue-delay
  /// denominator use one consistent capacity sample (mid-step), so a segment
  /// boundary inside the step cannot make the reported delay disagree with
  /// the drain that actually happened.
  LinkStepResult step(double now_s, double dt, double offered_bytes);

  /// Drain the queue for `dt` seconds with no arrivals (idle application).
  void drain(double now_s, double dt);

  [[nodiscard]] double queue_bytes() const { return queue_bytes_; }
  [[nodiscard]] double queue_capacity() const { return queue_capacity_bytes_; }
  [[nodiscard]] double capacity_at(double now_s) const {
    return trace_->capacity_at(now_s);
  }

 private:
  const ThroughputTrace* trace_;
  double queue_capacity_bytes_;
  double queue_bytes_ = 0.0;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_LINK_HH
