#include "net/trace.hh"

#include <cmath>

#include "util/require.hh"

namespace puffer::net {

ThroughputTrace::ThroughputTrace(std::vector<double> rates_bps,
                                 const double segment_duration_s)
    : rates_bps_(std::move(rates_bps)), segment_duration_s_(segment_duration_s) {
  require(!rates_bps_.empty(), "ThroughputTrace: need at least one segment");
  require(segment_duration_s_ > 0.0,
          "ThroughputTrace: segment duration must be positive");
  for (const double rate : rates_bps_) {
    require(rate >= 0.0, "ThroughputTrace: rates must be non-negative");
  }
}

double ThroughputTrace::capacity_at(const double time_s) const {
  if (time_s <= 0.0) {
    return rates_bps_.front();
  }
  const auto index = static_cast<size_t>(time_s / segment_duration_s_);
  if (index >= rates_bps_.size()) {
    return rates_bps_.back();
  }
  return rates_bps_[index];
}

double ThroughputTrace::duration() const {
  return static_cast<double>(rates_bps_.size()) * segment_duration_s_;
}

double ThroughputTrace::mean_rate() const {
  double total = 0.0;
  for (const double rate : rates_bps_) {
    total += rate;
  }
  return total / static_cast<double>(rates_bps_.size());
}

}  // namespace puffer::net
