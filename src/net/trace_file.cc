#include "net/trace_file.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "util/require.hh"

namespace puffer::net {

TraceFile::TraceFile(std::vector<uint64_t> delivery_times_ms)
    : delivery_times_ms_(std::move(delivery_times_ms)) {
  require(!delivery_times_ms_.empty(),
          "TraceFile: need at least one delivery opportunity");
  require(std::is_sorted(delivery_times_ms_.begin(), delivery_times_ms_.end()),
          "TraceFile: timestamps must be non-decreasing");
}

TraceFile TraceFile::parse(std::istream& in) {
  std::vector<uint64_t> times;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    line_number++;
    // Tolerate trailing carriage returns and blank lines (mahimahi's own
    // parser skips neither, but traces in the wild carry both).
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    // Digits only: stoull would silently skip leading whitespace and wrap
    // negative values, so validate the whole line first.
    uint64_t value = 0;
    bool numeric = line.find_first_not_of("0123456789") == std::string::npos;
    if (numeric) {
      try {
        value = std::stoull(line);
      } catch (const std::exception&) {
        numeric = false;  // out of uint64 range
      }
    }
    // The whole-line digit check rejects NaN/inf spellings, negative and
    // fractional timestamps, and scientific notation alike — name the
    // offending line and its content so a bad trace is diagnosable.
    require(numeric,
            "TraceFile: line " + std::to_string(line_number) +
                " is not a non-negative integer millisecond timestamp: '" +
                line + "'");
    if (!times.empty() && value < times.back()) {
      throw RequirementError(
          "TraceFile: line " + std::to_string(line_number) +
          " goes back in time: " + std::to_string(value) + " ms after " +
          std::to_string(times.back()) + " ms");
    }
    times.push_back(value);
  }
  require(!times.empty(),
          "TraceFile: no delivery timestamps found (empty trace)");
  return TraceFile{std::move(times)};
}

TraceFile TraceFile::load(const std::string& path) {
  std::ifstream in{path};
  require(in.is_open(), "TraceFile::load: cannot open " + path);
  try {
    return parse(in);
  } catch (const RequirementError& error) {
    // Re-raise with the file named: "line 7 goes back in time" is useless
    // without knowing which of a directory of traces it came from.
    throw RequirementError("TraceFile::load: " + path + ": " + error.what());
  }
}

void TraceFile::write(std::ostream& out) const {
  for (const uint64_t t : delivery_times_ms_) {
    out << t << '\n';
  }
}

void TraceFile::save(const std::string& path) const {
  std::ofstream out{path};
  require(out.is_open(), "TraceFile::save: cannot open " + path);
  write(out);
  require(bool(out), "TraceFile::save: write failed for " + path);
}

TraceFile TraceFile::from_trace(const ThroughputTrace& trace) {
  std::vector<uint64_t> times;
  const double dt = trace.segment_duration();
  double cumulative_bytes = 0.0;
  double next_packet = kPacketBytes;
  for (size_t i = 0; i < trace.num_segments(); i++) {
    const double rate = trace.rates()[i];
    const double start_s = static_cast<double>(i) * dt;
    const double end_bytes = cumulative_bytes + rate * dt;
    while (next_packet <= end_bytes) {
      // Exact crossing time within this constant-rate segment.
      const double t = start_s + (next_packet - cumulative_bytes) / rate;
      times.push_back(static_cast<uint64_t>(std::floor(t * 1000.0)));
      next_packet += kPacketBytes;
    }
    cumulative_bytes = end_bytes;
  }
  require(!times.empty(),
          "TraceFile::from_trace: trace too slow/short to deliver one packet");
  return TraceFile{std::move(times)};
}

ThroughputTrace TraceFile::to_trace(const double bin_duration_s) const {
  require(bin_duration_s > 0.0, "TraceFile::to_trace: bin duration > 0");
  const double bin_ms = bin_duration_s * 1000.0;
  // A timestamp marks the instant a packet's bytes complete, so a packet on
  // a bin boundary belongs to the bin it accumulated in: bin = ceil(t)-1.
  const auto bin_of = [bin_ms](const uint64_t t) {
    if (t == 0) {
      return size_t{0};
    }
    return static_cast<size_t>(std::ceil(static_cast<double>(t) / bin_ms)) - 1;
  };
  const size_t num_bins = bin_of(delivery_times_ms_.back()) + 1;
  std::vector<double> rates(num_bins, 0.0);
  for (const uint64_t t : delivery_times_ms_) {
    rates[bin_of(t)] += kPacketBytes / bin_duration_s;
  }
  return ThroughputTrace{std::move(rates), bin_duration_s};
}

double TraceFile::duration_s() const {
  return static_cast<double>(delivery_times_ms_.back()) / 1000.0;
}

double TraceFile::mean_rate_bps() const {
  const double duration = std::max(duration_s(), 1e-3);
  return static_cast<double>(num_packets()) * kPacketBytes / duration;
}

}  // namespace puffer::net
