#include "net/trace_models.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "util/require.hh"

namespace puffer::net {

namespace {

constexpr double kMbps = 1e6 / 8.0;  // bytes per second in one Mbit/s

size_t segments_for(const double duration_s, const double segment_s) {
  return static_cast<size_t>(std::ceil(duration_s / segment_s)) + 1;
}

}  // namespace

PufferPathModel::PufferPathModel(PufferPathConfig config) : config_(config) {
  require(config_.median_rate_mbps > 0.0, "PufferPathModel: bad median rate");
}

NetworkPath PufferPathModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  // Path-level base rate: lognormal across paths (heavy upper tail; the lower
  // tail forms the "slow path" population of Figure 8's right panel).
  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);

  // Path-level RTT: correlated with path speed (slow paths tend to sit behind
  // longer/loaded links); lognormal around 40 ms.
  const double rtt_shift = std::clamp(0.3 * (std::log10(cfg.median_rate_mbps) -
                                             log10_base),
                                      -0.3, 0.6);
  const double min_rtt =
      std::clamp(0.040 * std::exp(rng.normal(rtt_shift, 0.45)), 0.004, 0.800);

  std::vector<double> rates(n);
  double drift = 0.0;          // OU process in log space
  double regime = 0.0;         // cumulative log regime shift
  double outage_left_s = 0.0;  // remaining outage duration

  for (size_t i = 0; i < n; i++) {
    const double dt = cfg.segment_duration_s;
    // OU drift.
    drift += -cfg.ou_reversion * drift + rng.normal(0.0, cfg.ou_volatility);
    // Regime shifts arrive as a Poisson process.
    if (rng.bernoulli(1.0 - std::exp(-cfg.regime_shift_rate_hz * dt))) {
      regime += rng.normal(0.0, cfg.regime_shift_sigma);
      // Pull extreme regimes gently back toward the base rate.
      regime = std::clamp(regime, -2.5, 1.5);
    }
    // Outages.
    if (outage_left_s <= 0.0 &&
        rng.bernoulli(1.0 - std::exp(-cfg.outage_rate_hz * dt))) {
      outage_left_s = rng.exponential(1.0 / cfg.outage_mean_duration_s);
    }

    double rate_mbps = base_mbps * std::exp(drift + regime);
    if (outage_left_s > 0.0) {
      rate_mbps = std::min(rate_mbps, cfg.outage_floor_mbps *
                                          std::exp(rng.normal(0.0, 0.5)));
      outage_left_s -= dt;
    }
    rates[i] = std::clamp(rate_mbps, 0.008, cfg.max_rate_mbps) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     min_rtt};
}

FccTraceModel::FccTraceModel(FccTraceConfig config) : config_(config) {
  require(config_.median_rate_mbps > 0.0, "FccTraceModel: bad median rate");
}

NetworkPath FccTraceModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);

  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    const double rate_mbps =
        base_mbps * std::exp(rng.normal(0.0, cfg.wobble_sigma));
    rates[i] =
        std::clamp(rate_mbps, cfg.min_rate_mbps, cfg.max_rate_mbps) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     cfg.shell_rtt_s};
}

MarkovTraceModel::MarkovTraceModel(MarkovTraceConfig config) : config_(config) {
  require(config_.num_states >= 2, "MarkovTraceModel: need >= 2 states");
  require(config_.stay_probability > 0.0 && config_.stay_probability < 1.0,
          "MarkovTraceModel: stay probability in (0,1)");
}

NetworkPath MarkovTraceModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  // State levels symmetric around the mean rate.
  std::vector<double> levels(static_cast<size_t>(cfg.num_states));
  for (int s = 0; s < cfg.num_states; s++) {
    levels[static_cast<size_t>(s)] =
        cfg.mean_rate_mbps +
        (s - (cfg.num_states - 1) / 2.0) * cfg.state_spread_mbps;
  }

  int state = static_cast<int>(rng.uniform_int(0, cfg.num_states - 1));
  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    if (!rng.bernoulli(cfg.stay_probability)) {
      // Move to a uniformly-chosen different state (CS2P-style jumps).
      int next = static_cast<int>(rng.uniform_int(0, cfg.num_states - 2));
      if (next >= state) {
        next++;
      }
      state = next;
    }
    const double rate_mbps =
        std::max(0.05, levels[static_cast<size_t>(state)] +
                           rng.normal(0.0, cfg.within_state_sigma_mbps));
    rates[i] = rate_mbps * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     0.040};
}

CellularPathModel::CellularPathModel(CellularPathConfig config)
    : config_(std::move(config)) {
  require(config_.state_rates_mbps.size() >= 2,
          "CellularPathModel: need >= 2 states");
  for (const double rate : config_.state_rates_mbps) {
    require(rate > 0.0, "CellularPathModel: state rates must be positive");
  }
  require(config_.stay_probability > 0.0 && config_.stay_probability < 1.0,
          "CellularPathModel: stay probability in (0,1)");
}

NetworkPath CellularPathModel::sample_path(Rng& rng,
                                           const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);
  const int num_states = static_cast<int>(cfg.state_rates_mbps.size());

  const double min_rtt = std::clamp(
      cfg.median_rtt_s * std::exp(rng.normal(0.0, cfg.log_rtt_sigma)),
      0.020, 0.400);

  // Start biased toward the middle of the chain (nominal coverage).
  int state = static_cast<int>(rng.uniform_int(num_states / 2,
                                               num_states - 1));
  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    if (!rng.bernoulli(cfg.stay_probability)) {
      // Channel quality walks one state at a time.
      const int step = rng.bernoulli(0.5) ? 1 : -1;
      state = std::clamp(state + step, 0, num_states - 1);
    }
    const double mean =
        cfg.state_rates_mbps[static_cast<size_t>(state)];
    const double rate_mbps =
        mean * std::exp(rng.normal(0.0, cfg.within_state_sigma));
    rates[i] = std::clamp(rate_mbps, 0.02, 150.0) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     min_rtt};
}

DiurnalPathModel::DiurnalPathModel(DiurnalPathConfig config)
    : config_(config) {
  require(config_.median_rate_mbps > 0.0, "DiurnalPathModel: bad median rate");
  require(config_.trough_fraction > 0.0 && config_.trough_fraction <= 1.0,
          "DiurnalPathModel: trough fraction in (0,1]");
}

NetworkPath DiurnalPathModel::sample_path(Rng& rng,
                                          const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);
  // Session starts at a uniform time of day.
  const double start_hour = rng.uniform(0.0, 24.0);

  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    const double hour = start_hour + static_cast<double>(i) *
                                         cfg.segment_duration_s / 3600.0;
    // Congestion factor: 1 off-peak, trough_fraction at the peak hour.
    const double phase = 2.0 * std::numbers::pi * (hour - cfg.peak_hour) / 24.0;
    const double congestion =
        1.0 - (1.0 - cfg.trough_fraction) * 0.5 * (1.0 + std::cos(phase));
    const double rate_mbps = base_mbps * congestion *
                             std::exp(rng.normal(0.0, cfg.noise_sigma));
    rates[i] = std::clamp(rate_mbps, 0.05, 400.0) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     cfg.min_rtt_s};
}

WifiPathModel::WifiPathModel(WifiPathConfig config) : config_(config) {
  require(config_.good_rate_mbps > 0.0, "WifiPathModel: bad good rate");
  require(config_.degraded_fraction > 0.0 && config_.degraded_fraction < 1.0,
          "WifiPathModel: degraded fraction in (0,1)");
  require(config_.min_period_s > 0.0 &&
              config_.max_period_s >= config_.min_period_s,
          "WifiPathModel: bad oscillation period range");
  require(config_.duty_cycle > 0.0 && config_.duty_cycle < 1.0,
          "WifiPathModel: duty cycle in (0,1)");
}

NetworkPath WifiPathModel::sample_path(Rng& rng,
                                       const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  // Per-path oscillation: period, phase, and how sharply the AP degrades.
  const double period_s = rng.uniform(cfg.min_period_s, cfg.max_period_s);
  const double phase_s = rng.uniform(0.0, period_s);
  const double good_mbps =
      cfg.good_rate_mbps * std::exp(rng.normal(0.0, 0.25));
  const double degraded_mbps = good_mbps * cfg.degraded_fraction;

  std::vector<double> rates(n);
  double fade_left_s = 0.0;
  for (size_t i = 0; i < n; i++) {
    const double dt = cfg.segment_duration_s;
    const double t = phase_s + static_cast<double>(i) * dt;
    const double cycle_pos = t / period_s - std::floor(t / period_s);
    double rate_mbps = cycle_pos < cfg.duty_cycle ? good_mbps : degraded_mbps;

    if (fade_left_s <= 0.0 &&
        rng.bernoulli(1.0 - std::exp(-cfg.fade_rate_hz * dt))) {
      fade_left_s = rng.exponential(1.0 / cfg.fade_mean_duration_s);
    }
    if (fade_left_s > 0.0) {
      rate_mbps = std::min(rate_mbps, cfg.fade_floor_mbps);
      fade_left_s -= dt;
    }

    rate_mbps *= std::exp(rng.normal(0.0, cfg.noise_sigma));
    rates[i] = std::clamp(rate_mbps, 0.02, 300.0) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     cfg.min_rtt_s};
}

SatellitePathModel::SatellitePathModel(SatellitePathConfig config)
    : config_(config) {
  require(config_.median_rate_mbps > 0.0, "SatellitePathModel: bad rate");
  require(config_.min_rtt_s > 0.0, "SatellitePathModel: bad RTT");
  require(config_.rain_fade_attenuation > 0.0 &&
              config_.rain_fade_attenuation <= 1.0,
          "SatellitePathModel: attenuation in (0,1]");
}

NetworkPath SatellitePathModel::sample_path(Rng& rng,
                                            const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);
  const double min_rtt = std::clamp(
      cfg.min_rtt_s * std::exp(rng.normal(0.0, cfg.rtt_jitter_sigma)),
      0.450, 0.900);

  std::vector<double> rates(n);
  double fade_left_s = 0.0;
  for (size_t i = 0; i < n; i++) {
    const double dt = cfg.segment_duration_s;
    if (fade_left_s <= 0.0 &&
        rng.bernoulli(1.0 - std::exp(-cfg.rain_fade_rate_hz * dt))) {
      fade_left_s = rng.exponential(1.0 / cfg.rain_fade_mean_duration_s);
    }
    double rate_mbps = base_mbps * std::exp(rng.normal(0.0, cfg.noise_sigma));
    if (fade_left_s > 0.0) {
      rate_mbps *= cfg.rain_fade_attenuation;
      fade_left_s -= dt;
    }
    rates[i] = std::clamp(rate_mbps, 0.05, 200.0) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     min_rtt};
}

}  // namespace puffer::net
