#include "net/trace_models.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::net {

namespace {

constexpr double kMbps = 1e6 / 8.0;  // bytes per second in one Mbit/s

size_t segments_for(const double duration_s, const double segment_s) {
  return static_cast<size_t>(std::ceil(duration_s / segment_s)) + 1;
}

}  // namespace

PufferPathModel::PufferPathModel(PufferPathConfig config) : config_(config) {
  require(config_.median_rate_mbps > 0.0, "PufferPathModel: bad median rate");
}

NetworkPath PufferPathModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  // Path-level base rate: lognormal across paths (heavy upper tail; the lower
  // tail forms the "slow path" population of Figure 8's right panel).
  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);

  // Path-level RTT: correlated with path speed (slow paths tend to sit behind
  // longer/loaded links); lognormal around 40 ms.
  const double rtt_shift = std::clamp(0.3 * (std::log10(cfg.median_rate_mbps) -
                                             log10_base),
                                      -0.3, 0.6);
  const double min_rtt =
      std::clamp(0.040 * std::exp(rng.normal(rtt_shift, 0.45)), 0.004, 0.800);

  std::vector<double> rates(n);
  double drift = 0.0;          // OU process in log space
  double regime = 0.0;         // cumulative log regime shift
  double outage_left_s = 0.0;  // remaining outage duration

  for (size_t i = 0; i < n; i++) {
    const double dt = cfg.segment_duration_s;
    // OU drift.
    drift += -cfg.ou_reversion * drift + rng.normal(0.0, cfg.ou_volatility);
    // Regime shifts arrive as a Poisson process.
    if (rng.bernoulli(1.0 - std::exp(-cfg.regime_shift_rate_hz * dt))) {
      regime += rng.normal(0.0, cfg.regime_shift_sigma);
      // Pull extreme regimes gently back toward the base rate.
      regime = std::clamp(regime, -2.5, 1.5);
    }
    // Outages.
    if (outage_left_s <= 0.0 &&
        rng.bernoulli(1.0 - std::exp(-cfg.outage_rate_hz * dt))) {
      outage_left_s = rng.exponential(1.0 / cfg.outage_mean_duration_s);
    }

    double rate_mbps = base_mbps * std::exp(drift + regime);
    if (outage_left_s > 0.0) {
      rate_mbps = std::min(rate_mbps, cfg.outage_floor_mbps *
                                          std::exp(rng.normal(0.0, 0.5)));
      outage_left_s -= dt;
    }
    rates[i] = std::clamp(rate_mbps, 0.008, cfg.max_rate_mbps) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     min_rtt};
}

FccTraceModel::FccTraceModel(FccTraceConfig config) : config_(config) {
  require(config_.median_rate_mbps > 0.0, "FccTraceModel: bad median rate");
}

NetworkPath FccTraceModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  const double log10_base =
      std::log10(cfg.median_rate_mbps) + rng.normal(0.0, cfg.log10_rate_sigma);
  const double base_mbps = std::pow(10.0, log10_base);

  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    const double rate_mbps =
        base_mbps * std::exp(rng.normal(0.0, cfg.wobble_sigma));
    rates[i] =
        std::clamp(rate_mbps, cfg.min_rate_mbps, cfg.max_rate_mbps) * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     cfg.shell_rtt_s};
}

MarkovTraceModel::MarkovTraceModel(MarkovTraceConfig config) : config_(config) {
  require(config_.num_states >= 2, "MarkovTraceModel: need >= 2 states");
  require(config_.stay_probability > 0.0 && config_.stay_probability < 1.0,
          "MarkovTraceModel: stay probability in (0,1)");
}

NetworkPath MarkovTraceModel::sample_path(Rng& rng, const double duration_s) const {
  const auto& cfg = config_;
  const size_t n = segments_for(duration_s, cfg.segment_duration_s);

  // State levels symmetric around the mean rate.
  std::vector<double> levels(static_cast<size_t>(cfg.num_states));
  for (int s = 0; s < cfg.num_states; s++) {
    levels[static_cast<size_t>(s)] =
        cfg.mean_rate_mbps +
        (s - (cfg.num_states - 1) / 2.0) * cfg.state_spread_mbps;
  }

  int state = static_cast<int>(rng.uniform_int(0, cfg.num_states - 1));
  std::vector<double> rates(n);
  for (size_t i = 0; i < n; i++) {
    if (!rng.bernoulli(cfg.stay_probability)) {
      // Move to a uniformly-chosen different state (CS2P-style jumps).
      int next = static_cast<int>(rng.uniform_int(0, cfg.num_states - 2));
      if (next >= state) {
        next++;
      }
      state = next;
    }
    const double rate_mbps =
        std::max(0.05, levels[static_cast<size_t>(state)] +
                           rng.normal(0.0, cfg.within_state_sigma_mbps));
    rates[i] = rate_mbps * kMbps;
  }

  return NetworkPath{ThroughputTrace{std::move(rates), cfg.segment_duration_s},
                     0.040};
}

}  // namespace puffer::net
