#include "net/bbr.hh"

#include <algorithm>
#include <array>

namespace puffer::net {

namespace {

constexpr double kBwWindowS = 10.0;
constexpr double kMinRttWindowS = 10.0;
constexpr double kStartupGain = 2.885;  // 2/ln(2)
constexpr std::array<double, 8> kProbeBwGains = {1.25, 0.75, 1.0, 1.0,
                                                 1.0,  1.0,  1.0, 1.0};

}  // namespace

BbrModel::BbrModel(const double mss_bytes) : mss_bytes_(mss_bytes) {}

void BbrModel::update_btl_bw(const CcSample& sample) {
  // App-limited samples can only raise the estimate, never refresh a lower
  // one (BBR ignores app-limited samples unless they beat the current max).
  const bool usable =
      !sample.app_limited || sample.delivery_rate_bps > btl_bw_bps_;
  if (usable && sample.delivery_rate_bps > 0.0) {
    bw_samples_.emplace_back(sample.now_s, sample.delivery_rate_bps);
  }
  while (!bw_samples_.empty() &&
         bw_samples_.front().first < sample.now_s - kBwWindowS) {
    bw_samples_.pop_front();
  }
  btl_bw_bps_ = 0.0;
  for (const auto& [when, rate] : bw_samples_) {
    btl_bw_bps_ = std::max(btl_bw_bps_, rate);
  }
}

void BbrModel::advance_state_machine(const CcSample& sample) {
  const double bdp = btl_bw_bps_ * min_rtt_s_;
  switch (mode_) {
    case Mode::kStartup: {
      // Check bandwidth growth once per round (~RTT).
      if (sample.now_s >= next_round_at_s_) {
        next_round_at_s_ = sample.now_s + std::max(min_rtt_s_, 0.010);
        if (btl_bw_bps_ < full_pipe_baseline_bps_ * 1.25) {
          rounds_without_growth_++;
        } else {
          rounds_without_growth_ = 0;
          full_pipe_baseline_bps_ = btl_bw_bps_;
        }
        if (rounds_without_growth_ >= 3 && btl_bw_bps_ > 0.0) {
          mode_ = Mode::kDrain;
          pacing_gain_ = 1.0 / kStartupGain;
          cwnd_gain_ = kStartupGain;
        }
      }
      break;
    }
    case Mode::kDrain: {
      if (sample.in_flight_bytes <= bdp || bdp <= 0.0) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 2;  // start in a cruise phase
        cycle_phase_start_s_ = sample.now_s;
        pacing_gain_ = kProbeBwGains[static_cast<size_t>(cycle_index_)];
        cwnd_gain_ = 2.0;
      }
      break;
    }
    case Mode::kProbeBw: {
      const double phase_len = std::max(min_rtt_s_, 0.010);
      if (sample.now_s - cycle_phase_start_s_ >= phase_len) {
        cycle_index_ = (cycle_index_ + 1) % static_cast<int>(kProbeBwGains.size());
        cycle_phase_start_s_ = sample.now_s;
        pacing_gain_ = kProbeBwGains[static_cast<size_t>(cycle_index_)];
      }
      break;
    }
  }
}

void BbrModel::update_min_rtt(const CcSample& sample) {
  // Candidate for this step: the measured RTT if acks arrived, tightened by
  // the connection's lifetime floor (always available once connected).
  double candidate = 0.0;
  if (sample.rtt_sample_s > 0.0) {
    candidate = sample.rtt_sample_s;
  }
  if (sample.min_rtt_s > 0.0) {
    candidate =
        candidate > 0.0 ? std::min(candidate, sample.min_rtt_s) : sample.min_rtt_s;
  }
  if (candidate > 0.0) {
    while (!rtt_samples_.empty() && rtt_samples_.back().second >= candidate) {
      rtt_samples_.pop_back();
    }
    rtt_samples_.emplace_back(sample.now_s, candidate);
  }
  while (!rtt_samples_.empty() &&
         rtt_samples_.front().first < sample.now_s - kMinRttWindowS) {
    rtt_samples_.pop_front();
  }
  if (!rtt_samples_.empty()) {
    min_rtt_s_ = rtt_samples_.front().second;
  }
  // An empty filter (no sample yet, or all expired while no acks flowed)
  // keeps the previous estimate — never a hard-coded ceiling.
}

void BbrModel::on_sample(const CcSample& sample) {
  update_min_rtt(sample);
  update_btl_bw(sample);
  advance_state_machine(sample);
}

double BbrModel::cwnd_bytes() const {
  const double bdp = btl_bw_bps_ * min_rtt_s_;
  const double cwnd = cwnd_gain_ * bdp;
  return std::max(cwnd, 10.0 * mss_bytes_);
}

double BbrModel::pacing_rate_bps() const {
  if (btl_bw_bps_ <= 0.0) {
    // No bandwidth estimate yet (connection start): pace at a conservative
    // initial-window-per-assumed-RTT rate, growing via STARTUP.
    return pacing_gain_ * 10.0 * mss_bytes_ / 0.050;
  }
  return pacing_gain_ * btl_bw_bps_;
}

}  // namespace puffer::net
