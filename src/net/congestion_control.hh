#ifndef PUFFER_NET_CONGESTION_CONTROL_HH
#define PUFFER_NET_CONGESTION_CONTROL_HH

#include <string_view>

namespace puffer::net {

/// One fluid-model feedback sample delivered to a congestion controller.
struct CcSample {
  double now_s = 0.0;
  double dt_s = 0.0;
  double acked_bytes = 0.0;         ///< bytes acknowledged during this step
  double rtt_sample_s = 0.0;        ///< RTT measured for those acks (0 if none)
  double min_rtt_s = 0.0;           ///< connection-lifetime minimum RTT
  double delivery_rate_bps = 0.0;   ///< instantaneous delivery rate estimate
  double in_flight_bytes = 0.0;
  bool loss = false;                ///< drop-tail loss occurred this step
  bool app_limited = false;         ///< sender had less data than window room
};

/// Congestion-control strategy for the fluid TCP sender. Implementations:
/// BbrModel (Puffer's primary experiment used BBR, section 3.2) and
/// CubicModel (the CUBIC arm of the study).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_sample(const CcSample& sample) = 0;

  /// Congestion window in bytes.
  [[nodiscard]] virtual double cwnd_bytes() const = 0;

  /// Pacing-rate cap in bytes/second; 0 means "no pacing" (window-limited).
  [[nodiscard]] virtual double pacing_rate_bps() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_CONGESTION_CONTROL_HH
