#include "net/cubic.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace puffer::net {

namespace {

constexpr double kBeta = 0.7;  // multiplicative decrease
constexpr double kC = 0.4;     // cubic scaling constant (MSS/s^3)

}  // namespace

CubicModel::CubicModel(const double mss_bytes)
    : mss_bytes_(mss_bytes),
      cwnd_bytes_(10.0 * mss_bytes),
      ssthresh_bytes_(std::numeric_limits<double>::infinity()) {}

void CubicModel::on_sample(const CcSample& sample) {
  if (sample.rtt_sample_s > 0.0) {
    srtt_estimate_s_ +=
        0.125 * (sample.rtt_sample_s - srtt_estimate_s_);
  }

  // React to at most one loss event per RTT (fast-recovery granularity).
  if (sample.loss &&
      (last_loss_reaction_s_ < 0.0 ||
       sample.now_s - last_loss_reaction_s_ > srtt_estimate_s_)) {
    last_loss_reaction_s_ = sample.now_s;
    w_max_bytes_ = cwnd_bytes_;
    cwnd_bytes_ = std::max(cwnd_bytes_ * kBeta, 2.0 * mss_bytes_);
    ssthresh_bytes_ = cwnd_bytes_;
    in_slow_start_ = false;
    epoch_start_s_ = sample.now_s;
    const double w_max_mss = w_max_bytes_ / mss_bytes_;
    k_s_ = std::cbrt(w_max_mss * (1.0 - kBeta) / kC);
    return;
  }

  if (sample.acked_bytes <= 0.0) {
    return;
  }

  if (in_slow_start_) {
    cwnd_bytes_ += sample.acked_bytes;  // double per RTT
    if (cwnd_bytes_ >= ssthresh_bytes_) {
      in_slow_start_ = false;
      epoch_start_s_ = sample.now_s;
      w_max_bytes_ = cwnd_bytes_;
      k_s_ = 0.0;
    }
    return;
  }

  // Congestion avoidance: track the cubic curve.
  if (epoch_start_s_ < 0.0) {
    epoch_start_s_ = sample.now_s;
    w_max_bytes_ = cwnd_bytes_;
    k_s_ = 0.0;
  }
  const double t = sample.now_s - epoch_start_s_;
  const double w_max_mss = w_max_bytes_ / mss_bytes_;
  const double target_mss = kC * std::pow(t - k_s_, 3.0) + w_max_mss;
  const double target_bytes =
      std::max(target_mss * mss_bytes_, 2.0 * mss_bytes_);
  // Move cwnd toward the cubic target (at most ~50% growth per RTT to avoid
  // fluid-model overshoot on long steps).
  const double max_growth =
      cwnd_bytes_ * 0.5 * (sample.dt_s / std::max(srtt_estimate_s_, 1e-3));
  cwnd_bytes_ = std::min(target_bytes, cwnd_bytes_ + std::max(max_growth,
                                                              sample.acked_bytes * 0.05));
}

}  // namespace puffer::net
