#ifndef PUFFER_NET_TRACE_MODELS_HH
#define PUFFER_NET_TRACE_MODELS_HH

#include <cstdint>
#include <vector>

#include "net/trace.hh"
#include "util/rng.hh"

namespace puffer::net {

/// A sampled network path: a capacity trace plus path-level latency.
struct NetworkPath {
  ThroughputTrace trace;
  double min_rtt_s = 0.040;  ///< propagation round-trip time
};

/// --- Deployment-like paths (the "wild Internet" of the Puffer study) ---
///
/// Heavy-tailed, non-stationary throughput: a lognormal base rate (with a
/// slow-path mixture component so that ~15-25% of paths average under
/// 6 Mbit/s), an Ornstein-Uhlenbeck process in log space for within-session
/// drift, occasional regime shifts (e.g. cross traffic, WiFi handoff), and
/// rare near-outages with heavy-tailed durations. Reproduces the Figure 2b
/// character (no discrete states) and the heavy tails the paper blames for
/// the emulation-to-deployment gap.
struct PufferPathConfig {
  double segment_duration_s = 0.5;
  double median_rate_mbps = 14.0;
  double log10_rate_sigma = 0.55;   ///< spread of path base rates
  double ou_reversion = 0.03;       ///< per-segment mean reversion of drift
  double ou_volatility = 0.045;     ///< per-segment stddev of log-rate drift
  double regime_shift_rate_hz = 1.0 / 180.0;  ///< avg one shift per 3 minutes
  double regime_shift_sigma = 0.5;  ///< lognormal factor applied on a shift
  double outage_rate_hz = 1.0 / 600.0;        ///< avg one outage per 10 min
  double outage_mean_duration_s = 4.0;        ///< exponential outage length
  double outage_floor_mbps = 0.05;
  double max_rate_mbps = 400.0;
};

class PufferPathModel {
 public:
  explicit PufferPathModel(PufferPathConfig config = {});

  /// Sample a complete path (trace of `duration_s` + RTT) for one session.
  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const PufferPathConfig& config() const { return config_; }

 private:
  PufferPathConfig config_;
};

/// --- FCC-broadband-like traces (the Pensieve/mahimahi emulation world) ---
///
/// Stationary, bounded-variation throughput: a per-trace mean drawn from a
/// moderate lognormal, then piecewise-constant 5-second segments wobbling
/// around that mean. No regime shifts, no outages, no heavy tails — by
/// construction, the distribution-shift between this family and
/// PufferPathModel is the phenomenon Figure 11 documents.
struct FccTraceConfig {
  double segment_duration_s = 5.0;
  double median_rate_mbps = 2.6;   ///< Pensieve-style scaled broadband traces
  double log10_rate_sigma = 0.30;
  double wobble_sigma = 0.20;      ///< lognormal within-trace variation
  double min_rate_mbps = 0.2;
  double max_rate_mbps = 12.0;     ///< mahimahi shells were capped at 12 Mbps
  double shell_rtt_s = 0.040;      ///< fixed 40 ms mahimahi delay (section 5.2)
};

class FccTraceModel {
 public:
  explicit FccTraceModel(FccTraceConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const FccTraceConfig& config() const { return config_; }

 private:
  FccTraceConfig config_;
};

/// --- CS2P-style discrete-state Markov throughput (Figure 2a) ---
///
/// A small number of discrete throughput states with sticky transitions and
/// tiny within-state noise. The paper notes Puffer has *not* observed this
/// structure; this model exists to reproduce Figure 2a's contrast.
struct MarkovTraceConfig {
  double segment_duration_s = 6.0;  ///< 6-second epochs as in Figure 2
  int num_states = 4;
  double mean_rate_mbps = 2.7;
  double state_spread_mbps = 0.25;  ///< spacing between adjacent states
  double stay_probability = 0.95;
  double within_state_sigma_mbps = 0.02;
};

class MarkovTraceModel {
 public:
  explicit MarkovTraceModel(MarkovTraceConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const MarkovTraceConfig& config() const { return config_; }

 private:
  MarkovTraceConfig config_;
};

/// --- Markov-modulated cellular (LTE-like mobile access) ---
///
/// A hidden channel-quality chain (deep fade / congested / nominal /
/// excellent) with sticky transitions; each state carries its own mean rate
/// and substantial lognormal within-state noise (fast fading). RTT is higher
/// and more variable than wired access.
struct CellularPathConfig {
  double segment_duration_s = 1.0;
  /// State mean rates, worst to best. The hidden chain walks +-1 state at a
  /// time (channel quality evolves gradually).
  std::vector<double> state_rates_mbps = {0.3, 2.0, 8.0, 24.0};
  double stay_probability = 0.90;
  double within_state_sigma = 0.35;  ///< lognormal sigma around state mean
  double median_rtt_s = 0.070;
  double log_rtt_sigma = 0.30;
};

class CellularPathModel {
 public:
  explicit CellularPathModel(CellularPathConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const CellularPathConfig& config() const { return config_; }

 private:
  CellularPathConfig config_;
};

/// --- Diurnal time-of-day capacity (shared access link under peak load) ---
///
/// A lognormal per-path base rate modulated by a 24-hour sinusoid: capacity
/// sags toward `trough_fraction` of the base at the evening peak hour. Each
/// session starts at a uniformly-sampled time of day, so the family exposes
/// schemes to both quiet-hour and prime-time conditions; within a session
/// the drift is slow, as on real shared links.
struct DiurnalPathConfig {
  double segment_duration_s = 2.0;
  double median_rate_mbps = 18.0;
  double log10_rate_sigma = 0.35;
  double trough_fraction = 0.30;  ///< capacity at peak congestion
  double peak_hour = 21.0;        ///< local time of maximum congestion
  double noise_sigma = 0.08;      ///< lognormal segment-to-segment noise
  double min_rtt_s = 0.030;
};

class DiurnalPathModel {
 public:
  explicit DiurnalPathModel(DiurnalPathConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const DiurnalPathConfig& config() const { return config_; }

 private:
  DiurnalPathConfig config_;
};

/// --- Oscillating Wi-Fi (interference / multipath duty cycle) ---
///
/// Last-hop Wi-Fi alternating between a good and a degraded rate with a
/// per-path oscillation period (microwave ovens, neighbouring networks,
/// periodic scans), plus rare deep fades when the client moves out of range.
struct WifiPathConfig {
  double segment_duration_s = 0.5;
  double good_rate_mbps = 45.0;
  double degraded_fraction = 0.15;  ///< degraded rate as fraction of good
  double min_period_s = 8.0;        ///< oscillation period sampled per path
  double max_period_s = 40.0;
  double duty_cycle = 0.65;         ///< fraction of each period spent good
  double fade_rate_hz = 1.0 / 300.0;  ///< deep fades: avg one per 5 minutes
  double fade_mean_duration_s = 2.0;
  double fade_floor_mbps = 0.1;
  double noise_sigma = 0.15;
  double min_rtt_s = 0.020;
};

class WifiPathModel {
 public:
  explicit WifiPathModel(WifiPathConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const WifiPathConfig& config() const { return config_; }

 private:
  WifiPathConfig config_;
};

/// --- High-RTT lossy satellite (GEO access) ---
///
/// Geostationary-orbit access: ~600 ms propagation RTT, moderate capacity,
/// and rain-fade events that attenuate the link heavily for tens of seconds.
/// The long feedback loop (not raw capacity) is what stresses ABR here.
struct SatellitePathConfig {
  double segment_duration_s = 2.0;
  double median_rate_mbps = 16.0;
  double log10_rate_sigma = 0.20;
  double min_rtt_s = 0.600;        ///< GEO propagation delay
  double rtt_jitter_sigma = 0.05;  ///< lognormal spread of per-path RTT
  double rain_fade_rate_hz = 1.0 / 400.0;
  double rain_fade_mean_duration_s = 30.0;
  double rain_fade_attenuation = 0.08;  ///< capacity multiplier during fade
  double noise_sigma = 0.12;
};

class SatellitePathModel {
 public:
  explicit SatellitePathModel(SatellitePathConfig config = {});

  [[nodiscard]] NetworkPath sample_path(Rng& rng, double duration_s) const;

  [[nodiscard]] const SatellitePathConfig& config() const { return config_; }

 private:
  SatellitePathConfig config_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TRACE_MODELS_HH
