#include "net/link.hh"

#include <algorithm>

#include "util/require.hh"

namespace puffer::net {

LinkSimulator::LinkSimulator(const ThroughputTrace& trace,
                             const double queue_capacity_bytes)
    : trace_(&trace), queue_capacity_bytes_(queue_capacity_bytes) {
  require(queue_capacity_bytes > 0.0, "LinkSimulator: queue capacity > 0");
}

LinkStepResult LinkSimulator::step(const double now_s, const double dt,
                                   const double offered_bytes) {
  require(dt > 0.0, "LinkSimulator::step: dt must be positive");
  require(offered_bytes >= 0.0, "LinkSimulator::step: offered must be >= 0");

  LinkStepResult result;

  // Arrivals enter the queue; overflow is dropped (drop-tail).
  queue_bytes_ += offered_bytes;
  if (queue_bytes_ > queue_capacity_bytes_) {
    result.lost_bytes = queue_bytes_ - queue_capacity_bytes_;
    queue_bytes_ = queue_capacity_bytes_;
  }

  // Drain at the capacity prevailing during this step (sampled mid-step so
  // that segment boundaries inside the step are approximated fairly).
  const double capacity = trace_->capacity_at(now_s + dt * 0.5);
  const double drainable = capacity * dt;
  result.delivered_bytes = std::min(queue_bytes_, drainable);
  queue_bytes_ -= result.delivered_bytes;

  // The delay the queue implies uses the same capacity sample as the drain.
  // Zero capacity means the queue is blocked: no finite delay exists, so the
  // report pins at the outage horizon instead of dividing by a floor.
  if (capacity > 0.0) {
    result.queue_delay_s = std::min(queue_bytes_ / capacity, kQueueDelayCapS);
  } else {
    result.blocked = queue_bytes_ > 0.0;
    result.queue_delay_s = result.blocked ? kQueueDelayCapS : 0.0;
  }
  return result;
}

void LinkSimulator::drain(const double now_s, const double dt) {
  if (queue_bytes_ <= 0.0 || dt <= 0.0) {
    return;
  }
  const double capacity = trace_->capacity_at(now_s + dt * 0.5);
  queue_bytes_ = std::max(0.0, queue_bytes_ - capacity * dt);
}

}  // namespace puffer::net
