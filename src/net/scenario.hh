#ifndef PUFFER_NET_SCENARIO_HH
#define PUFFER_NET_SCENARIO_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/trace_file.hh"
#include "net/trace_models.hh"
#include "util/rng.hh"

namespace puffer::net {

/// Names the network world a trial's sessions stream over. `family` resolves
/// through the scenario registry; `trace_path` is consumed by file-driven
/// families ("trace-replay" loads a Mahimahi-style trace from it) and ignored
/// by the synthetic ones.
struct ScenarioSpec {
  ScenarioSpec() = default;
  explicit ScenarioSpec(std::string family_name, std::string trace = {})
      : family(std::move(family_name)), trace_path(std::move(trace)) {}

  std::string family = "puffer";
  std::string trace_path;

  /// Stable textual identity, used in trial-cache fingerprints.
  [[nodiscard]] std::string key() const { return family + ":" + trace_path; }

  /// Parse "family" or "family:trace_path" (the inverse of key(), with the
  /// trailing ':' optional) — the CLI syntax of the scenario-driven benches.
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// A path-family generator: samples a complete NetworkPath (capacity trace +
/// RTT) for one session. Implementations must be stateless with respect to
/// sampling — all randomness comes from the caller's Rng — so one generator
/// can be shared by every worker of a parallel trial.
class PathGenerator {
 public:
  virtual ~PathGenerator() = default;
  [[nodiscard]] virtual NetworkPath sample_path(Rng& rng,
                                                double duration_s) const = 0;
};

/// String-keyed open registry of path families, mirroring the scheme
/// registry in exp/: a new workload is a registration, not a refactor.
class ScenarioRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PathGenerator>(const ScenarioSpec&)>;

  /// Registers (or replaces) a family. `description` is a one-liner for CLI
  /// listings and docs.
  void register_family(const std::string& name, const std::string& description,
                       Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered family names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// Instantiate the generator for `spec`. Throws RequirementError for an
  /// unknown family or a spec the family's factory rejects.
  [[nodiscard]] std::unique_ptr<PathGenerator> make(
      const ScenarioSpec& spec) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> families_;
};

/// The process-wide registry, pre-loaded with the built-in families:
///   puffer           heavy-tailed deployment-like paths (the Puffer study)
///   fcc-emulation    stationary FCC-broadband mahimahi-style traces
///   markov-cs2p      CS2P-style discrete-state throughput (Figure 2a)
///   cellular         Markov-modulated LTE channel with fast fading
///   diurnal          time-of-day capacity sag on a shared access link
///   wifi-oscillating duty-cycled Wi-Fi interference with deep fades
///   satellite        ~600 ms GEO RTT with rain fades
///   trace-replay     replays the Mahimahi trace file at spec.trace_path
/// Registration of additional families is allowed (tests do this); the
/// built-ins cannot be observed half-initialized.
ScenarioRegistry& scenario_registry();

/// Convenience: scenario_registry().make(spec).
std::unique_ptr<PathGenerator> make_path_generator(const ScenarioSpec& spec);

/// Replays one Mahimahi-style trace for every session, mahimahi-shell style:
/// fixed RTT, trace looped end-to-end to cover any session duration.
class TraceReplayGenerator : public PathGenerator {
 public:
  explicit TraceReplayGenerator(const TraceFile& file,
                                double min_rtt_s = 0.040,
                                double bin_duration_s = 0.5);

  [[nodiscard]] NetworkPath sample_path(Rng& rng,
                                        double duration_s) const override;

 private:
  ThroughputTrace binned_;
  double min_rtt_s_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_SCENARIO_HH
