#ifndef PUFFER_NET_TRACE_FILE_HH
#define PUFFER_NET_TRACE_FILE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/trace.hh"

namespace puffer::net {

/// A Mahimahi-style packet-delivery trace: one integer millisecond timestamp
/// per line, each marking an opportunity to deliver one MTU-sized packet
/// (mahimahi's mm-link format, used by the FCC/Verizon traces the Pensieve
/// and Puffer emulation experiments replay). Timestamps are non-decreasing;
/// repeated timestamps mean several packets delivered in the same
/// millisecond.
class TraceFile {
 public:
  /// Bytes per delivery opportunity (one MTU-sized packet, as in mahimahi).
  static constexpr double kPacketBytes = 1500.0;

  /// No default constructor: every TraceFile holds >= 1 delivery
  /// opportunity (duration_s()/to_trace() rely on it).
  explicit TraceFile(std::vector<uint64_t> delivery_times_ms);

  /// Parse the text format. Throws RequirementError on empty input, garbage
  /// lines, or decreasing timestamps.
  static TraceFile parse(std::istream& in);
  static TraceFile load(const std::string& path);

  /// Write the text format (bit-exact round trip through parse/load).
  void write(std::ostream& out) const;
  void save(const std::string& path) const;

  /// Quantize a capacity trace into delivery opportunities: the k-th packet
  /// is stamped at the time the trace's cumulative byte count crosses
  /// k * kPacketBytes.
  static TraceFile from_trace(const ThroughputTrace& trace);

  /// Bin the delivery opportunities into a piecewise-constant capacity
  /// trace with `bin_duration_s`-long segments covering [0, duration()].
  [[nodiscard]] ThroughputTrace to_trace(double bin_duration_s = 1.0) const;

  [[nodiscard]] const std::vector<uint64_t>& delivery_times_ms() const {
    return delivery_times_ms_;
  }
  [[nodiscard]] size_t num_packets() const { return delivery_times_ms_.size(); }
  /// Trace length: the last delivery timestamp, in seconds.
  [[nodiscard]] double duration_s() const;
  /// Average delivery rate over [0, duration()], bytes per second.
  [[nodiscard]] double mean_rate_bps() const;

  friend bool operator==(const TraceFile&, const TraceFile&) = default;

 private:
  std::vector<uint64_t> delivery_times_ms_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TRACE_FILE_HH
