#include "net/tcp_sender.hh"

#include <algorithm>
#include <cmath>

#include "util/require.hh"

namespace puffer::net {

namespace {

constexpr double kMssBytes = 1500.0;
constexpr double kMinStepS = 0.002;
constexpr double kMaxStepS = 0.025;

// Hard cap so that a total outage cannot hang the simulation: a chunk
// transfer is abandoned after 10 simulated minutes (far beyond any
// plausible player timeout, and beyond the TTP's last bin of 9.75 s+).
constexpr double kTransferDeadlineS = 600.0;

}  // namespace

TcpSender::TcpSender(const NetworkPath& path,
                     std::unique_ptr<CongestionControl> cc,
                     const double queue_capacity_bytes)
    : min_rtt_s_(path.min_rtt_s), cc_(std::move(cc)) {
  require(cc_ != nullptr, "TcpSender: congestion control required");
  link_.emplace(path.trace, queue_capacity_bytes);
  info_.min_rtt_s = min_rtt_s_;
  info_.srtt_s = min_rtt_s_;
  info_.cwnd_pkts = 10.0;
  info_.in_flight_pkts = 0.0;
  info_.delivery_rate_bps = 0.0;
}

TcpSender::TcpSender(const double min_rtt_s,
                     std::unique_ptr<CongestionControl> cc)
    : min_rtt_s_(min_rtt_s), cc_(std::move(cc)) {
  require(cc_ != nullptr, "TcpSender: congestion control required");
  require(min_rtt_s > 0.0, "TcpSender: min_rtt must be positive");
  info_.min_rtt_s = min_rtt_s_;
  info_.srtt_s = min_rtt_s_;
  info_.cwnd_pkts = 10.0;
  info_.in_flight_pkts = 0.0;
  info_.delivery_rate_bps = 0.0;
}

double TcpSender::default_queue_capacity(const NetworkPath& path) {
  // Access links commonly buffer on the order of one to a few BDP worth of
  // data at the path's typical rate; floor at 64 kB so slow links still have
  // a usable buffer.
  const double typical_bdp = path.trace.mean_rate() * path.min_rtt_s;
  return std::max(2.0 * typical_bdp, 64.0 * 1024.0);
}

double TcpSender::preferred_dt() const {
  return std::clamp(info_.srtt_s / 4.0, kMinStepS, kMaxStepS);
}

double TcpSender::offered_step(const double dt) {
  // How much may we push this step?
  const double cwnd = cc_->cwnd_bytes();
  const double window_room = std::max(0.0, cwnd - in_flight_bytes_);
  double can_send = window_room;
  const double pacing = cc_->pacing_rate_bps();
  if (pacing > 0.0) {
    can_send = std::min(can_send, pacing * dt);
  }
  const double offered = std::min(can_send, send_buffer_bytes_);
  app_limited_this_step_ = send_buffer_bytes_ < can_send;
  send_buffer_bytes_ -= offered;
  sent_total_ += offered;
  in_flight_bytes_ += offered;
  delivered_before_step_ = delivered_total_;
  return offered;
}

void TcpSender::absorb_step(const double dt, const LinkStepResult& link_result) {
  now_s_ += dt;

  // Losses: SACK-style instant recovery — retransmit by putting the bytes
  // back into the send queue and removing them from the flight ledger.
  if (link_result.lost_bytes > 0.0) {
    send_buffer_bytes_ += link_result.lost_bytes;
    sent_total_ -= link_result.lost_bytes;
    in_flight_bytes_ =
        std::max(0.0, in_flight_bytes_ - link_result.lost_bytes);
  }

  // Delivered bytes reach the client now; their acks return one RTT after
  // the send-to-delivery path, approximated as min_rtt later.
  double rtt_sample = 0.0;
  if (link_result.delivered_bytes > 0.0) {
    delivered_total_ += link_result.delivered_bytes;
    rtt_sample = min_rtt_s_ + link_result.queue_delay_s;
    pending_acks_.emplace_back(now_s_ + min_rtt_s_,
                               link_result.delivered_bytes);
  }

  // Process acks whose return time has passed.
  double acked = 0.0;
  while (!pending_acks_.empty() && pending_acks_.front().first <= now_s_) {
    acked += pending_acks_.front().second;
    pending_acks_.pop_front();
  }
  in_flight_bytes_ = std::max(0.0, in_flight_bytes_ - acked);

  // Delivery-rate estimate: delivered bytes over a ~1 sRTT window.
  delivery_window_.emplace_back(now_s_, link_result.delivered_bytes);
  delivery_window_bytes_ += link_result.delivered_bytes;
  const double window_len = std::max(info_.srtt_s, 4.0 * dt);
  while (!delivery_window_.empty() &&
         delivery_window_.front().first < now_s_ - window_len) {
    delivery_window_bytes_ -= delivery_window_.front().second;
    delivery_window_.pop_front();
  }
  // The exported tcpi_delivery_rate is sticky: the kernel reports the last
  // measured rate rather than decaying to zero during app-limited idling.
  const double delivery_rate = delivery_window_bytes_ / window_len;
  if (link_result.delivered_bytes > 0.0) {
    info_.delivery_rate_bps = delivery_rate;
  }

  // Smoothed RTT.
  if (rtt_sample > 0.0) {
    const double alpha = std::clamp(dt / std::max(info_.srtt_s, 1e-3), 0.02, 0.4);
    info_.srtt_s += alpha * (rtt_sample - info_.srtt_s);
    info_.min_rtt_s = std::min(info_.min_rtt_s, rtt_sample);
  }

  // Feed the congestion controller.
  CcSample sample;
  sample.now_s = now_s_;
  sample.dt_s = dt;
  sample.acked_bytes = acked;
  sample.rtt_sample_s = rtt_sample;
  sample.min_rtt_s = info_.min_rtt_s;
  sample.delivery_rate_bps = delivery_rate;
  sample.in_flight_bytes = in_flight_bytes_;
  sample.loss = link_result.lost_bytes > 0.0;
  sample.app_limited = app_limited_this_step_;
  cc_->on_sample(sample);

  // Export tcp_info.
  info_.cwnd_pkts = cc_->cwnd_bytes() / kMssBytes;
  info_.in_flight_pkts = in_flight_bytes_ / kMssBytes;

  // Transfer completion: interpolate within the final step for accuracy, or
  // abandon at the deadline (total outage).
  if (transfer_pending_) {
    if (delivered_total_ >= delivery_goal_bytes_) {
      const double step_delivered = delivered_total_ - delivered_before_step_;
      const double overshoot = delivered_total_ - delivery_goal_bytes_;
      const double fraction =
          step_delivered > 0.0 ? overshoot / step_delivered : 0.0;
      complete_transfer(now_s_ - fraction * dt + min_rtt_s_ / 2.0);
    } else if (now_s_ >= transfer_deadline_s_) {
      complete_transfer(now_s_ + min_rtt_s_ / 2.0);
    }
  }
}

void TcpSender::step(const double dt) {
  const double offered = offered_step(dt);
  const LinkStepResult link_result = link_->step(now_s_, dt, offered);
  absorb_step(dt, link_result);
}

void TcpSender::start_transfer(const double bytes) {
  require(bytes > 0.0, "TcpSender::start_transfer: bytes must be positive");
  require(!transfer_pending_,
          "TcpSender::start_transfer: transfer already in flight");
  last_transfer_ = TransferResult{};
  last_transfer_.start_s = now_s_;
  transfer_start_s_ = now_s_;
  // One byte of slack absorbs floating-point accumulation error across the
  // (possibly hundreds of thousands of) fluid steps of a long transfer.
  delivery_goal_bytes_ = delivered_total_ + bytes - 1.0;
  transfer_deadline_s_ = now_s_ + kTransferDeadlineS;
  send_buffer_bytes_ = bytes;
  transfer_pending_ = true;
  if (delivered_total_ >= delivery_goal_bytes_) {
    // Goal pre-satisfied (bytes within the fluid slack): the historical
    // step loop never entered and reported completion at now + min_rtt/2.
    complete_transfer(now_s_ + min_rtt_s_ / 2.0);
  }
}

void TcpSender::complete_transfer(const double completion_s) {
  last_transfer_.completion_s = completion_s;
  busy_time_s_ += completion_s - transfer_start_s_;
  transfer_pending_ = false;
  // Unoffered leftovers (the slack byte, retransmit residue) vanish with the
  // application transfer, exactly as the historical local send queue did.
  send_buffer_bytes_ = 0.0;
}

TransferResult TcpSender::take_completion() {
  require(!transfer_pending_, "TcpSender::take_completion: still in flight");
  return last_transfer_;
}

TransferResult TcpSender::transfer(const double bytes) {
  require(link_.has_value(),
          "TcpSender::transfer: sender is externally driven");
  start_transfer(bytes);
  while (transfer_pending_) {
    step(preferred_dt());
  }
  return take_completion();
}

void TcpSender::idle_until(const double t) {
  require(link_.has_value(),
          "TcpSender::idle_until: sender is externally driven");
  require(t >= now_s_, "TcpSender::idle_until: cannot go backwards");
  // While idle the queue drains and acks come back; step the model coarsely.
  while (now_s_ < t) {
    step(std::min(0.1, t - now_s_));
  }
}

double TcpSender::mean_delivery_rate() const {
  if (busy_time_s_ <= 0.0) {
    return 0.0;
  }
  return delivered_total_ / busy_time_s_;
}

}  // namespace puffer::net
