#ifndef PUFFER_NET_TCP_SENDER_HH
#define PUFFER_NET_TCP_SENDER_HH

#include <deque>
#include <memory>
#include <utility>

#include "net/congestion_control.hh"
#include "net/link.hh"
#include "net/tcp_info.hh"
#include "net/trace_models.hh"

namespace puffer::net {

/// Result of one application-level transfer (e.g. one video chunk).
struct TransferResult {
  double start_s = 0.0;
  double completion_s = 0.0;  ///< last byte arrives at the client
  [[nodiscard]] double transmission_time() const {
    return completion_s - start_s;
  }
};

/// Fluid-model TCP sender over a single bottleneck path.
///
/// Advances an internal clock; the application (the Puffer video server)
/// calls `transfer()` to send one chunk and `idle_until()` while waiting for
/// client buffer room. Exposes a `TcpInfo` mirroring the kernel statistics
/// that Fugu's TTP consumes.
///
/// Model notes (documented substitutions for a real kernel stack):
///  * bytes are fluid; the in-flight ledger and ack delay-line quantize at
///    step granularity (max(min_rtt/4, 2 ms), capped at 25 ms);
///  * lost bytes are retransmitted immediately (SACK-style recovery) and
///    re-enter the send queue;
///  * delivery_rate is a windowed estimate over ~1 sRTT, marked app-limited
///    exactly as Linux does for BBR's benefit.
class TcpSender {
 public:
  TcpSender(const NetworkPath& path, std::unique_ptr<CongestionControl> cc,
            double queue_capacity_bytes);

  /// Convenience: queue sized at max(4 BDP at 25 Mbit/s-ish, 64 kB).
  static double default_queue_capacity(const NetworkPath& path);

  /// Send `bytes` to the client; returns when the last byte arrives.
  TransferResult transfer(double bytes);

  /// Let the connection sit idle (app-limited, nothing to send) until `t`.
  void idle_until(double t);

  [[nodiscard]] double now() const { return now_s_; }
  [[nodiscard]] const TcpInfo& info() const { return info_; }
  [[nodiscard]] const CongestionControl& congestion_control() const {
    return *cc_;
  }
  [[nodiscard]] double total_delivered_bytes() const { return delivered_total_; }

  /// Lifetime-average delivery rate (bytes/s) — used to classify "slow"
  /// paths (mean tcpi_delivery_rate < 6 Mbit/s, Figure 8).
  [[nodiscard]] double mean_delivery_rate() const;

 private:
  void step(double dt, double& remaining_send);

  const NetworkPath* path_;
  LinkSimulator link_;
  std::unique_ptr<CongestionControl> cc_;

  double now_s_ = 0.0;
  double sent_total_ = 0.0;
  double delivered_total_ = 0.0;
  double in_flight_bytes_ = 0.0;

  // Delay line of (ack arrival time, bytes) for deliveries awaiting acks.
  std::deque<std::pair<double, double>> pending_acks_;

  // Delivery-rate estimation window.
  std::deque<std::pair<double, double>> delivery_window_;
  double delivery_window_bytes_ = 0.0;

  // Time-weighted mean delivery rate over the connection's busy lifetime.
  double busy_time_s_ = 0.0;

  TcpInfo info_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TCP_SENDER_HH
