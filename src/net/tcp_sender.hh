#ifndef PUFFER_NET_TCP_SENDER_HH
#define PUFFER_NET_TCP_SENDER_HH

#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "net/congestion_control.hh"
#include "net/link.hh"
#include "net/tcp_info.hh"
#include "net/trace_models.hh"

namespace puffer::net {

/// Result of one application-level transfer (e.g. one video chunk).
struct TransferResult {
  double start_s = 0.0;
  double completion_s = 0.0;  ///< last byte arrives at the client
  [[nodiscard]] double transmission_time() const {
    return completion_s - start_s;
  }
};

/// Fluid-model TCP sender over a single bottleneck path.
///
/// Advances an internal clock; the application (the Puffer video server)
/// calls `transfer()` to send one chunk and `idle_until()` while waiting for
/// client buffer room. Exposes a `TcpInfo` mirroring the kernel statistics
/// that Fugu's TTP consumes.
///
/// Model notes (documented substitutions for a real kernel stack):
///  * bytes are fluid; the in-flight ledger and ack delay-line quantize at
///    step granularity (max(min_rtt/4, 2 ms), capped at 25 ms);
///  * lost bytes are retransmitted immediately (SACK-style recovery) and
///    re-enter the send queue;
///  * delivery_rate is a windowed estimate over ~1 sRTT, marked app-limited
///    exactly as Linux does for BBR's benefit.
///
/// Two driving modes share one step implementation:
///  * private-path mode (the historical API): the sender owns a
///    LinkSimulator and `transfer()` runs the step loop to completion;
///  * externally-driven mode (shared bottlenecks): the sender has no link of
///    its own — a world (net::SharedLinkSimulator's driver) calls
///    `start_transfer()`, then per lockstep world step `offered_step()` /
///    `absorb_step()`, and collects `take_completion()` when
///    `transfer_in_flight()` turns false. The private-path `transfer()` is
///    exactly start_transfer + that loop over the private link, so the two
///    modes cannot diverge.
class TcpSender {
 public:
  TcpSender(const NetworkPath& path, std::unique_ptr<CongestionControl> cc,
            double queue_capacity_bytes);

  /// Externally-driven mode: no private link; the caller owns the bottleneck
  /// and feeds link step results back through absorb_step().
  TcpSender(double min_rtt_s, std::unique_ptr<CongestionControl> cc);

  /// Convenience: queue sized at max(4 BDP at 25 Mbit/s-ish, 64 kB).
  static double default_queue_capacity(const NetworkPath& path);

  /// Send `bytes` to the client; returns when the last byte arrives.
  /// Private-path mode only.
  TransferResult transfer(double bytes);

  /// Let the connection sit idle (app-limited, nothing to send) until `t`.
  /// Private-path mode only.
  void idle_until(double t);

  // --- Externally-driven protocol -----------------------------------------

  /// Begin an application transfer; the connection offers bytes on
  /// subsequent steps until the delivery goal is met (or the 600 s abandon
  /// deadline passes). A pre-satisfied goal (bytes <= the fluid slack)
  /// completes immediately.
  void start_transfer(double bytes);
  [[nodiscard]] bool transfer_in_flight() const { return transfer_pending_; }
  /// The finished transfer's result; valid once transfer_in_flight() is
  /// false after a start_transfer().
  TransferResult take_completion();

  /// The step size this connection would choose for itself:
  /// clamp(srtt/4, 2 ms, 25 ms). A lockstep world takes the min over flows.
  [[nodiscard]] double preferred_dt() const;

  /// First half of one fluid step: how many bytes the window/pacer releases
  /// into the bottleneck over `dt`. Does not advance the clock.
  double offered_step(double dt);

  /// Second half: absorb the bottleneck's step result (losses, deliveries,
  /// acks, rate/RTT estimation, congestion-controller feedback) and advance
  /// the clock by `dt`. Must follow the matching offered_step(dt).
  void absorb_step(double dt, const LinkStepResult& link_result);

  // ------------------------------------------------------------------------

  [[nodiscard]] double now() const { return now_s_; }
  [[nodiscard]] const TcpInfo& info() const { return info_; }
  [[nodiscard]] const CongestionControl& congestion_control() const {
    return *cc_;
  }
  [[nodiscard]] double total_delivered_bytes() const { return delivered_total_; }
  [[nodiscard]] double min_rtt_s() const { return min_rtt_s_; }

  /// Lifetime-average delivery rate (bytes/s) — used to classify "slow"
  /// paths (mean tcpi_delivery_rate < 6 Mbit/s, Figure 8).
  [[nodiscard]] double mean_delivery_rate() const;

 private:
  void step(double dt);
  void complete_transfer(double completion_s);

  double min_rtt_s_;
  std::optional<LinkSimulator> link_;  ///< empty in externally-driven mode
  std::unique_ptr<CongestionControl> cc_;

  double now_s_ = 0.0;
  double sent_total_ = 0.0;
  double delivered_total_ = 0.0;
  double in_flight_bytes_ = 0.0;

  // Application send queue: bytes of the current transfer not yet offered
  // to the bottleneck (replenished by retransmits). Always 0 while idle.
  double send_buffer_bytes_ = 0.0;

  // Pending-transfer state (between start_transfer and completion).
  bool transfer_pending_ = false;
  double transfer_start_s_ = 0.0;
  double delivery_goal_bytes_ = 0.0;
  double transfer_deadline_s_ = 0.0;
  TransferResult last_transfer_;

  // Staged by offered_step for the matching absorb_step.
  double delivered_before_step_ = 0.0;
  bool app_limited_this_step_ = false;

  // Delay line of (ack arrival time, bytes) for deliveries awaiting acks.
  std::deque<std::pair<double, double>> pending_acks_;

  // Delivery-rate estimation window.
  std::deque<std::pair<double, double>> delivery_window_;
  double delivery_window_bytes_ = 0.0;

  // Time-weighted mean delivery rate over the connection's busy lifetime.
  double busy_time_s_ = 0.0;

  TcpInfo info_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TCP_SENDER_HH
