#ifndef PUFFER_NET_CUBIC_HH
#define PUFFER_NET_CUBIC_HH

#include "net/congestion_control.hh"

namespace puffer::net {

/// Fluid-model CUBIC: slow start to first loss, multiplicative decrease by
/// 0.7, cubic window growth W(t) = C*(t-K)^3 + W_max between losses. Used for
/// the study's CUBIC arm and for tests contrasting loss-based vs model-based
/// congestion control under drop-tail queues.
class CubicModel final : public CongestionControl {
 public:
  explicit CubicModel(double mss_bytes = 1500.0);

  void on_sample(const CcSample& sample) override;
  [[nodiscard]] double cwnd_bytes() const override { return cwnd_bytes_; }
  [[nodiscard]] double pacing_rate_bps() const override { return 0.0; }
  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  [[nodiscard]] bool in_slow_start() const { return in_slow_start_; }

 private:
  double mss_bytes_;
  double cwnd_bytes_;
  double ssthresh_bytes_;
  bool in_slow_start_ = true;

  double w_max_bytes_ = 0.0;
  double epoch_start_s_ = -1.0;
  double k_s_ = 0.0;  // time to return to w_max
  double last_loss_reaction_s_ = -1.0;
  double srtt_estimate_s_ = 0.100;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_CUBIC_HH
