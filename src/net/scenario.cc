#include "net/scenario.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/require.hh"

namespace puffer::net {

namespace {

/// Adapts the concrete trace models (which all expose `sample_path`) to the
/// PathGenerator interface without virtualizing the models themselves.
template <typename Model>
class ModelGenerator : public PathGenerator {
 public:
  explicit ModelGenerator(Model model) : model_(std::move(model)) {}

  [[nodiscard]] NetworkPath sample_path(Rng& rng,
                                        const double duration_s) const override {
    return model_.sample_path(rng, duration_s);
  }

 private:
  Model model_;
};

template <typename Model>
ScenarioRegistry::Factory synthetic_family() {
  return [](const ScenarioSpec&) -> std::unique_ptr<PathGenerator> {
    return std::make_unique<ModelGenerator<Model>>(Model{});
  };
}

ScenarioRegistry build_default_registry() {
  ScenarioRegistry registry;
  registry.register_family(
      "puffer",
      "heavy-tailed deployment-like paths: lognormal base rates, OU drift, "
      "regime shifts, rare outages (the Puffer study's wild Internet)",
      synthetic_family<PufferPathModel>());
  registry.register_family(
      "fcc-emulation",
      "stationary FCC-broadband traces behind a 40 ms mahimahi shell, capped "
      "at 12 Mbit/s (the Pensieve emulation world, Figure 11 left)",
      synthetic_family<FccTraceModel>());
  registry.register_family(
      "markov-cs2p",
      "CS2P-style discrete throughput states with sticky transitions "
      "(Figure 2a's contrast; Puffer never observed this structure)",
      synthetic_family<MarkovTraceModel>());
  registry.register_family(
      "cellular",
      "Markov-modulated LTE channel: deep-fade/congested/nominal/excellent "
      "states with fast lognormal fading and variable RTT",
      synthetic_family<CellularPathModel>());
  registry.register_family(
      "diurnal",
      "shared access link with a 24-hour capacity sinusoid: prime-time "
      "capacity sags to ~30% of the off-peak rate",
      synthetic_family<DiurnalPathModel>());
  registry.register_family(
      "wifi-oscillating",
      "last-hop Wi-Fi oscillating between good and degraded rates on a "
      "per-path duty cycle, with rare deep fades",
      synthetic_family<WifiPathModel>());
  registry.register_family(
      "satellite",
      "GEO satellite access: ~600 ms propagation RTT, moderate capacity, "
      "long rain fades",
      synthetic_family<SatellitePathModel>());
  // Contention families: access paths tuned for shared-bottleneck fleet
  // trials (FleetTrialConfig.contention / exp::make_contention_spec). The
  // family supplies both the member access paths and the extra sample that
  // becomes the group's shared link.
  registry.register_family(
      "edge-contention",
      "wired access behind a shared CDN-edge uplink: faster, steadier "
      "puffer-style paths with rare outages; pair with contention topology "
      "'edge' (FIFO bottleneck at 0.7x the aggregate)",
      [](const ScenarioSpec&) -> std::unique_ptr<PathGenerator> {
        PufferPathConfig config;
        config.median_rate_mbps = 28.0;
        config.log10_rate_sigma = 0.40;
        config.outage_rate_hz = 1.0 / 1800.0;
        return std::make_unique<ModelGenerator<PufferPathModel>>(
            PufferPathModel{config});
      });
  registry.register_family(
      "cell-shared",
      "LTE sector whose users share tower backhaul: cellular state chain "
      "with a faster top state; pair with contention topology 'tower' "
      "(deep FIFO at 0.55x the aggregate, mixed BBR/CUBIC)",
      [](const ScenarioSpec&) -> std::unique_ptr<PathGenerator> {
        CellularPathConfig config;
        config.state_rates_mbps = {0.5, 3.0, 12.0, 36.0};
        return std::make_unique<ModelGenerator<CellularPathModel>>(
            CellularPathModel{config});
      });
  registry.register_family(
      "wifi-home",
      "home Wi-Fi with several streams behind one AP: strong good-state "
      "rate, long good duty cycle; pair with contention topology 'wifi' "
      "(per-flow fair queuing at 0.8x the aggregate)",
      [](const ScenarioSpec&) -> std::unique_ptr<PathGenerator> {
        WifiPathConfig config;
        config.good_rate_mbps = 60.0;
        config.duty_cycle = 0.75;
        return std::make_unique<ModelGenerator<WifiPathModel>>(
            WifiPathModel{config});
      });
  registry.register_family(
      "trace-replay",
      "replays the Mahimahi packet-delivery trace at spec.trace_path behind "
      "a fixed 40 ms shell, looping the trace to session length",
      [](const ScenarioSpec& spec) -> std::unique_ptr<PathGenerator> {
        require(!spec.trace_path.empty(),
                "trace-replay scenario requires spec.trace_path");
        return std::make_unique<TraceReplayGenerator>(
            TraceFile::load(spec.trace_path));
      });
  return registry;
}

}  // namespace

void ScenarioRegistry::register_family(const std::string& name,
                                       const std::string& description,
                                       Factory factory) {
  require(!name.empty(), "ScenarioRegistry: family name must be non-empty");
  require(factory != nullptr, "ScenarioRegistry: null factory for " + name);
  families_[name] = Entry{description, std::move(factory)};
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return families_.count(name) > 0;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  require(!text.empty(),
          "ScenarioSpec::parse: empty scenario string (expected "
          "\"family\" or \"family:argument\")");
  const size_t colon = text.find(':');
  ScenarioSpec spec =
      colon == std::string::npos
          ? ScenarioSpec{text}
          : ScenarioSpec{text.substr(0, colon), text.substr(colon + 1)};
  require(!spec.family.empty(), "ScenarioSpec::parse: '" + text +
                                    "' has an empty family before the ':'");
  if (!scenario_registry().contains(spec.family)) {
    std::string known;
    for (const auto& name : scenario_registry().names()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    throw RequirementError("ScenarioSpec::parse: unknown scenario family '" +
                           spec.family + "' in '" + text +
                           "'; known families: " + known);
  }
  return spec;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, entry] : families_) {
    names.push_back(name);
  }
  return names;  // std::map iterates in sorted key order
}

const std::string& ScenarioRegistry::description(
    const std::string& name) const {
  const auto it = families_.find(name);
  require(it != families_.end(),
          "ScenarioRegistry: unknown family '" + name + "'");
  return it->second.description;
}

std::unique_ptr<PathGenerator> ScenarioRegistry::make(
    const ScenarioSpec& spec) const {
  const auto it = families_.find(spec.family);
  require(it != families_.end(),
          "ScenarioRegistry: unknown family '" + spec.family + "'");
  auto generator = it->second.factory(spec);
  require(generator != nullptr,
          "ScenarioRegistry: factory for '" + spec.family + "' returned null");
  return generator;
}

ScenarioRegistry& scenario_registry() {
  static ScenarioRegistry registry = build_default_registry();
  return registry;
}

std::unique_ptr<PathGenerator> make_path_generator(const ScenarioSpec& spec) {
  return scenario_registry().make(spec);
}

TraceReplayGenerator::TraceReplayGenerator(const TraceFile& file,
                                           const double min_rtt_s,
                                           const double bin_duration_s)
    : binned_(file.to_trace(bin_duration_s)), min_rtt_s_(min_rtt_s) {
  require(min_rtt_s > 0.0, "TraceReplayGenerator: RTT must be positive");
}

NetworkPath TraceReplayGenerator::sample_path(Rng& rng,
                                              const double duration_s) const {
  static_cast<void>(rng);  // replay is deterministic, mahimahi-style
  // Loop the trace end-to-end until it covers the session, as mm-link does.
  const auto& base = binned_.rates();
  const auto repeats = static_cast<size_t>(std::max(
      1.0, std::ceil(duration_s / binned_.duration())));
  std::vector<double> rates;
  rates.reserve(repeats * base.size());
  for (size_t r = 0; r < repeats; r++) {
    rates.insert(rates.end(), base.begin(), base.end());
  }
  return NetworkPath{ThroughputTrace{std::move(rates),
                                     binned_.segment_duration()},
                     min_rtt_s_};
}

}  // namespace puffer::net
