#ifndef PUFFER_NET_SHARED_LINK_HH
#define PUFFER_NET_SHARED_LINK_HH

#include <span>
#include <vector>

#include "net/link.hh"
#include "net/trace.hh"

namespace puffer::net {

/// How a shared bottleneck splits its drain capacity among backlogged flows.
enum class ShareMode {
  /// One FIFO byte queue: each flow drains in proportion to its share of the
  /// queued bytes (fluid limit of a single drop-tail FIFO), and every flow
  /// sees the delay of the *total* backlog. Aggressive senders crowd out
  /// timid ones — the CDN-edge / cell-tower default.
  kFifo,
  /// Per-flow fair queuing (fq_codel-style scheduling without the AQM):
  /// max-min allocation of the drain capacity, so a flow's delay depends
  /// only on its own backlog at its fair rate.
  kFairQueue,
};

struct SharedLinkConfig {
  ShareMode mode = ShareMode::kFifo;
  /// Shared drop-tail buffer across all flows, in bytes.
  double queue_capacity_bytes = 256.0 * 1024.0;
};

/// Fluid model of one bottleneck link shared by N flows: every flow offers
/// bytes into the common drop-tail buffer and the trace capacity is split
/// per `ShareMode`. The single-flow special case reproduces LinkSimulator's
/// semantics (same mid-step capacity sample, same outage pinning).
///
/// Byte-conservation contract (exact, by construction): each step updates
/// flow i's queue as
///     q_i += offered_i;  q_i -= lost_i;  q_i -= delivered_i;
/// in that order, per flow in ascending flow order, and accumulates the
/// running totals with one `+=` per step in the same order. A mirror that
/// replays those operations on the reported per-step results reproduces
/// queue_bytes(i), offered_total(i), lost_total(i) and delivered_total(i)
/// bit-for-bit — the property tests in tests/test_shared_link.cc hold this
/// with exact equality, not a tolerance.
///
/// Determinism: the step is a pure function of (state, now_s, dt, offered);
/// the fair-queue schedule breaks ties by ascending flow index. No entropy,
/// no iteration over unordered containers.
class SharedLinkSimulator {
 public:
  SharedLinkSimulator(const ThroughputTrace& trace, SharedLinkConfig config);

  /// Register one flow; returns its index (assigned 0, 1, 2, ...).
  int add_flow();

  /// Advance the bottleneck by `dt` seconds from `now_s`. `offered[i]` is
  /// flow i's arriving bytes; `results[i]` receives its delivered/lost
  /// bytes and queueing delay. Both spans must have exactly num_flows()
  /// entries. Overflow of the shared buffer is dropped from this step's
  /// arrivals in proportion to each flow's offered bytes (tail drop hits
  /// the burst that overflowed the buffer).
  void step(double now_s, double dt, std::span<const double> offered,
            std::span<LinkStepResult> results);

  [[nodiscard]] int num_flows() const {
    return static_cast<int>(queues_.size());
  }
  [[nodiscard]] double queue_bytes(int flow) const;
  [[nodiscard]] double total_queue_bytes() const;
  [[nodiscard]] double offered_total(int flow) const;
  [[nodiscard]] double delivered_total(int flow) const;
  [[nodiscard]] double lost_total(int flow) const;
  [[nodiscard]] double capacity_at(double now_s) const {
    return trace_->capacity_at(now_s);
  }
  [[nodiscard]] const SharedLinkConfig& config() const { return config_; }

 private:
  const ThroughputTrace* trace_;
  SharedLinkConfig config_;

  std::vector<double> queues_;
  std::vector<double> offered_totals_;
  std::vector<double> delivered_totals_;
  std::vector<double> lost_totals_;

  // Step scratch (member to avoid per-step allocation at fleet scale).
  std::vector<double> lost_;
  std::vector<double> delivered_;
  std::vector<int> drain_order_;
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// allocations, folded in ascending index order; 1.0 for n == 0 or an
/// all-zero allocation (nothing to be unfair about).
[[nodiscard]] double jain_fairness_index(std::span<const double> allocations);

}  // namespace puffer::net

#endif  // PUFFER_NET_SHARED_LINK_HH
