#ifndef PUFFER_NET_TRACE_HH
#define PUFFER_NET_TRACE_HH

#include <cstddef>
#include <vector>

namespace puffer::net {

/// A piecewise-constant bottleneck-capacity trace: capacity (bytes/second)
/// over equal-length segments. Time past the end clamps to the final segment,
/// so a trace behaves as an unbounded path; generators produce traces longer
/// than any simulated session.
class ThroughputTrace {
 public:
  ThroughputTrace(std::vector<double> rates_bps, double segment_duration_s);

  [[nodiscard]] double capacity_at(double time_s) const;
  [[nodiscard]] double segment_duration() const { return segment_duration_s_; }
  [[nodiscard]] double duration() const;
  [[nodiscard]] size_t num_segments() const { return rates_bps_.size(); }
  [[nodiscard]] const std::vector<double>& rates() const { return rates_bps_; }

  /// Time-average capacity over [0, duration).
  [[nodiscard]] double mean_rate() const;

 private:
  std::vector<double> rates_bps_;
  double segment_duration_s_;
};

}  // namespace puffer::net

#endif  // PUFFER_NET_TRACE_HH
