#ifndef PUFFER_TESTS_TEST_HELPERS_HH
#define PUFFER_TESTS_TEST_HELPERS_HH

#include <vector>

#include "abr/abr.hh"
#include "media/ladder.hh"
#include "media/vbr_source.hh"

namespace puffer::test {

/// A deterministic chunk menu whose rung sizes follow the nominal ladder
/// exactly and whose SSIM grows logarithmically — handy for controller tests
/// that need known numbers.
inline media::ChunkOptions make_menu(const int64_t index,
                                     const double size_scale = 1.0) {
  media::ChunkOptions menu;
  menu.chunk_index = index;
  for (int r = 0; r < media::kNumRungs; r++) {
    const auto& rung = media::default_ladder()[static_cast<size_t>(r)];
    media::ChunkVersion v;
    v.rung = r;
    v.size_bytes = static_cast<int64_t>(
        static_cast<double>(media::nominal_chunk_bytes(rung)) * size_scale);
    v.ssim_db = 12.9 + 2.41 * std::log(rung.nominal_bitrate_mbps);
    menu.versions[static_cast<size_t>(r)] = v;
  }
  return menu;
}

inline std::vector<media::ChunkOptions> make_lookahead(const int n,
                                                       const double scale = 1.0) {
  std::vector<media::ChunkOptions> lookahead;
  for (int i = 0; i < n; i++) {
    lookahead.push_back(make_menu(i, scale));
  }
  return lookahead;
}

/// Feed a predictor/ABR a history of identical transfers at a given
/// throughput (bytes/s).
inline abr::ChunkRecord record_at_throughput(const int64_t index,
                                             const double size_bytes,
                                             const double throughput_bps) {
  abr::ChunkRecord record;
  record.chunk_index = index;
  record.rung = 3;
  record.size_bytes = static_cast<int64_t>(size_bytes);
  record.ssim_db = 14.0;
  record.transmission_time_s = size_bytes / throughput_bps;
  return record;
}

}  // namespace puffer::test

#endif  // PUFFER_TESTS_TEST_HELPERS_HH
