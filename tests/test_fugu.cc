#include <gtest/gtest.h>

#include <cmath>

#include "fugu/dataset.hh"
#include "fugu/fugu.hh"
#include "fugu/ttp.hh"
#include "fugu/ttp_predictor.hh"
#include "fugu/ttp_trainer.hh"
#include "test_helpers.hh"
#include "util/require.hh"

namespace puffer::fugu {
namespace {

TEST(TtpBins, BoundariesMatchPaper) {
  // [0, 0.25) -> 0; [0.25, 0.75) -> 1; ...; [9.75, inf) -> 20.
  EXPECT_EQ(ttp_bin_of(0.0), 0);
  EXPECT_EQ(ttp_bin_of(0.249), 0);
  EXPECT_EQ(ttp_bin_of(0.25), 1);
  EXPECT_EQ(ttp_bin_of(0.74), 1);
  EXPECT_EQ(ttp_bin_of(0.75), 2);
  EXPECT_EQ(ttp_bin_of(9.74), 19);
  EXPECT_EQ(ttp_bin_of(9.75), 20);
  EXPECT_EQ(ttp_bin_of(1000.0), 20);
}

TEST(TtpBins, MidpointsInsideTheirBins) {
  for (int bin = 0; bin < kTtpBins; bin++) {
    const double mid = ttp_bin_midpoint(bin);
    EXPECT_EQ(ttp_bin_of(mid), bin) << "bin " << bin << " midpoint " << mid;
  }
}

TEST(TtpBins, MidpointValues) {
  EXPECT_DOUBLE_EQ(ttp_bin_midpoint(0), 0.125);
  EXPECT_DOUBLE_EQ(ttp_bin_midpoint(1), 0.5);
  EXPECT_DOUBLE_EQ(ttp_bin_midpoint(19), 9.5);
  EXPECT_DOUBLE_EQ(ttp_bin_midpoint(20), 10.5);
}

TEST(ThroughputBins, MonotoneAndInvertible) {
  int prev = -1;
  for (double mbps = 0.05; mbps < 500.0; mbps *= 1.6) {
    const int bin = throughput_bin_of(mbps * 1e6 / 8.0);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
  for (int bin = 0; bin < kTtpBins; bin++) {
    EXPECT_EQ(throughput_bin_of(throughput_bin_midpoint_bps(bin)), bin);
  }
}

TEST(TtpConfig, InputDimensions) {
  TtpConfig full;
  EXPECT_EQ(full.input_dim(), 8 + 8 + 5 + 1);  // = 22, paper section 4.5
  TtpConfig no_tcp = full;
  no_tcp.use_tcp_info = false;
  EXPECT_EQ(no_tcp.input_dim(), 17);
  TtpConfig throughput = full;
  throughput.target = TtpTarget::kThroughput;
  EXPECT_EQ(throughput.input_dim(), 21);  // no proposed-size input
  TtpConfig short_history = full;
  short_history.history = 2;
  EXPECT_EQ(short_history.input_dim(), 2 + 2 + 5 + 1);
}

TEST(TtpFeaturize, PaddingAndOrdering) {
  const TtpConfig config;
  TtpHistory history;
  history.record(1.0, 0.5, config.history);
  history.record(2.0, 1.5, config.history);
  net::TcpInfo tcp;
  tcp.cwnd_pkts = 50.0;
  tcp.delivery_rate_bps = 1.25e6;
  const auto features = ttp_featurize(config, history, tcp, 3'000'000);
  ASSERT_EQ(features.size(), 22u);
  // Sizes oldest-first, left padded: slots 0..5 zero, 6 -> 1.0 MB, 7 -> 2.0.
  EXPECT_FLOAT_EQ(features[5], 0.0f);
  EXPECT_FLOAT_EQ(features[6], 1.0f);
  EXPECT_FLOAT_EQ(features[7], 2.0f);
  // Times at slots 8..15: last two are 0.5 and 1.5.
  EXPECT_FLOAT_EQ(features[14], 0.5f);
  EXPECT_FLOAT_EQ(features[15], 1.5f);
  // tcp_info: cwnd/100.
  EXPECT_FLOAT_EQ(features[16], 0.5f);
  // delivery rate / 1.25e6.
  EXPECT_FLOAT_EQ(features[20], 1.0f);
  // Proposed size in MB is last.
  EXPECT_FLOAT_EQ(features[21], 3.0f);
}

TEST(TtpHistory, BoundedByMax) {
  TtpHistory history;
  for (int i = 0; i < 30; i++) {
    history.record(1.0, 1.0, 8);
  }
  EXPECT_EQ(history.sizes_mb.size(), 8u);
}

TEST(TtpModel, OneNetworkPerHorizonStep) {
  const TtpConfig config;
  const TtpModel model{config, 3};
  EXPECT_EQ(model.networks().size(), static_cast<size_t>(config.horizon));
  for (const auto& net : model.networks()) {
    EXPECT_EQ(net.input_size(), 22u);
    EXPECT_EQ(net.output_size(), static_cast<size_t>(kTtpBins));
    // Paper: two hidden layers with 64 neurons each.
    ASSERT_EQ(net.layer_sizes().size(), 4u);
    EXPECT_EQ(net.layer_sizes()[1], 64u);
    EXPECT_EQ(net.layer_sizes()[2], 64u);
  }
}

TEST(TtpModel, PredictTxTimeIsDistribution) {
  const TtpModel model{TtpConfig{}, 4};
  TtpHistory history;
  net::TcpInfo tcp;
  const auto dist = model.predict_tx_time(0, history, tcp, 1'000'000);
  ASSERT_EQ(dist.size(), static_cast<size_t>(kTtpBins));
  double total = 0.0;
  for (const auto& outcome : dist) {
    EXPECT_GE(outcome.probability, 0.0);
    total += outcome.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(TtpModel, ThroughputTargetScalesTimeWithSize) {
  TtpConfig config;
  config.target = TtpTarget::kThroughput;
  const TtpModel model{config, 5};
  TtpHistory history;
  net::TcpInfo tcp;
  const auto small = model.predict_tx_time(0, history, tcp, 500'000);
  const auto big = model.predict_tx_time(0, history, tcp, 5'000'000);
  // Same bin probabilities (size is not an input), but times scale ~10x in
  // the unclamped middle bins.
  for (size_t b = 8; b <= 16; b++) {
    EXPECT_NEAR(big[b].time_s / small[b].time_s, 10.0, 0.1);
    EXPECT_NEAR(big[b].probability, small[b].probability, 1e-6);
  }
}

StreamLog synthetic_stream(Rng& rng, const int chunks, const double rate_mbps,
                           const int day = 0,
                           const double hidden_slowdown = 1.0) {
  StreamLog log;
  log.day = day;
  const double rate_bps = rate_mbps * 1e6 / 8.0;
  for (int i = 0; i < chunks; i++) {
    ChunkLog chunk;
    chunk.size_mb = rng.uniform(0.05, 1.4);
    // hidden_slowdown models environment drift that is NOT visible in any
    // input feature (delivery_rate still reports the nominal rate).
    chunk.tx_time_s = hidden_slowdown * chunk.size_mb * 1e6 / rate_bps;
    chunk.tcp_at_send.delivery_rate_bps = rate_bps;
    chunk.tcp_at_send.cwnd_pkts = 40.0;
    chunk.tcp_at_send.in_flight_pkts = 10.0;
    chunk.tcp_at_send.min_rtt_s = 0.04;
    chunk.tcp_at_send.srtt_s = 0.05;
    log.chunks.push_back(chunk);
  }
  return log;
}

/// A dataset whose transmission times are exactly size/delivery_rate, with
/// per-stream rates spanning a wide range: learnable from (size, tcp_info).
TtpDataset synthetic_dataset(const uint64_t seed, const int streams,
                             const int chunks_per_stream = 40) {
  Rng rng{seed};
  TtpDataset dataset;
  for (int s = 0; s < streams; s++) {
    const double rate_mbps = std::pow(10.0, rng.uniform(-0.3, 1.3));
    dataset.push_back(synthetic_stream(rng, chunks_per_stream, rate_mbps));
  }
  return dataset;
}

TEST(BuildExamples, AlignmentOfHistoryAndLabels) {
  Rng rng{6};
  TtpDataset dataset = {synthetic_stream(rng, 10, 8.0)};
  const TtpConfig config;
  const auto examples = build_examples(config, dataset, /*step=*/0,
                                       /*current_day=*/0, 1.0);
  ASSERT_EQ(examples.size(), 10u);
  // Example i's label must be the bin of chunk i's own transmission time.
  for (size_t i = 0; i < examples.size(); i++) {
    EXPECT_EQ(examples[i].label,
              ttp_bin_of(dataset[0].chunks[i].tx_time_s));
    EXPECT_DOUBLE_EQ(examples[i].true_tx_time_s,
                     dataset[0].chunks[i].tx_time_s);
    // The proposed-size feature (last) is chunk i's size.
    EXPECT_NEAR(examples[i].features.back(), dataset[0].chunks[i].size_mb,
                1e-5);
  }
  // Example 3's history must end with chunk 2's size.
  EXPECT_NEAR(examples[3].features[7], dataset[0].chunks[2].size_mb, 1e-5);
  EXPECT_FLOAT_EQ(examples[0].features[7], 0.0f);  // no history yet
}

TEST(BuildExamples, FutureStepLabels) {
  Rng rng{7};
  TtpDataset dataset = {synthetic_stream(rng, 10, 8.0)};
  const TtpConfig config;
  const auto examples =
      build_examples(config, dataset, /*step=*/2, 0, 1.0);
  ASSERT_EQ(examples.size(), 8u);  // i + 2 < 10
  EXPECT_EQ(examples[0].label, ttp_bin_of(dataset[0].chunks[2].tx_time_s));
}

TEST(BuildExamples, RecencyWeights) {
  Rng rng{8};
  TtpDataset dataset = {synthetic_stream(rng, 5, 8.0, /*day=*/0),
                        synthetic_stream(rng, 5, 8.0, /*day=*/3)};
  const auto examples =
      build_examples(TtpConfig{}, dataset, 0, /*current_day=*/3, 0.5);
  // Day-0 stream is 3 days old: weight 0.5^3.
  EXPECT_NEAR(examples[0].weight, 0.125f, 1e-5);
  EXPECT_NEAR(examples[5].weight, 1.0f, 1e-5);
}

TEST(TtpTraining, LossDecreasesAndBeatsChance) {
  const TtpDataset dataset = synthetic_dataset(9, 60);
  TtpConfig config;
  config.horizon = 1;
  const TtpTrainConfig train_config;  // defaults: 6 epochs
  Rng rng{10};
  TtpTrainReport report;
  const TtpModel model =
      train_ttp(config, dataset, 0, train_config, rng, nullptr, &report);
  ASSERT_EQ(report.loss_per_epoch.size(), 6u);
  EXPECT_LT(report.loss_per_epoch.back(), report.loss_per_epoch.front());
  // Uniform over 21 bins = ln 21 ~ 3.04 nats; the model must do much better.
  const TtpEvaluation eval = evaluate_ttp(model, synthetic_dataset(11, 20));
  EXPECT_LT(eval.cross_entropy, 2.0);
  EXPECT_GT(eval.top1_accuracy, 0.30);
}

TEST(TtpTraining, WarmStartImprovesInitialLoss) {
  const TtpDataset dataset = synthetic_dataset(12, 40);
  const TtpConfig config;
  TtpTrainConfig quick;
  quick.epochs = 1;
  Rng rng{13};
  const TtpModel first = train_ttp(config, dataset, 0, quick, rng);
  TtpTrainReport cold_report, warm_report;
  Rng rng2{14};
  train_ttp(config, dataset, 0, quick, rng2, nullptr, &cold_report);
  Rng rng3{14};
  train_ttp(config, dataset, 0, quick, rng3, &first, &warm_report);
  EXPECT_LT(warm_report.loss_per_epoch.front(),
            cold_report.loss_per_epoch.front());
}

/// The sliding window keeps the model trained on the *current* environment
/// (paper section 4.3). A model whose window ends before a drift — the
/// situation of "Emulation-trained Fugu" in Figure 11 — must fit the new
/// regime much worse than one trained on fresh data. (Note the paper's own
/// section 4.6 finding that when drift is mild or visible through the input
/// features, retraining frequency barely matters; our test uses a hard
/// regime change to expose the window's purpose.)
TEST(TtpTraining, FreshWindowBeatsStaleModelAfterDrift) {
  Rng rng{15};
  // Day 0: normal world. Day 20: every transfer takes 4x longer.
  TtpDataset dataset;
  for (int s = 0; s < 80; s++) {
    dataset.push_back(synthetic_stream(rng, 30, 4.0, 0, 1.0));
    dataset.push_back(synthetic_stream(rng, 30, 4.0, 20, 4.0));
  }
  TtpConfig config;
  config.horizon = 1;
  TtpTrainConfig train_config;
  train_config.window_days = 14;
  train_config.epochs = 10;
  train_config.batch_size = 128;

  // "Fresh": window ending at day 20 (sees only the new regime).
  Rng rng2{16};
  const TtpModel fresh =
      train_ttp(config, dataset, /*current_day=*/20, train_config, rng2);
  // "Stale": window ending at day 0 (trained before the drift).
  Rng rng3{16};
  const TtpModel stale =
      train_ttp(config, dataset, /*current_day=*/0, train_config, rng3);

  TtpDataset current_regime;
  for (int s = 0; s < 15; s++) {
    current_regime.push_back(synthetic_stream(rng, 30, 4.0, 20, 4.0));
  }
  const auto fresh_eval = evaluate_ttp(fresh, current_regime);
  const auto stale_eval = evaluate_ttp(stale, current_regime);
  EXPECT_LT(fresh_eval.cross_entropy, stale_eval.cross_entropy);
  EXPECT_GT(fresh_eval.top1_accuracy, stale_eval.top1_accuracy);
  EXPECT_LT(fresh_eval.rmse_expected_s, stale_eval.rmse_expected_s);
}

TEST(TtpTraining, MismatchedWarmStartRejected) {
  const TtpDataset dataset = synthetic_dataset(17, 10);
  TtpConfig small;
  small.hidden_layers = {};
  Rng rng{18};
  const TtpModel linear = train_ttp(small, dataset, 0,
                                    TtpTrainConfig{.epochs = 1}, rng);
  EXPECT_THROW(
      train_ttp(TtpConfig{}, dataset, 0, TtpTrainConfig{.epochs = 1}, rng,
                &linear),
      RequirementError);
}

/// Figure 7's core ordering on a dataset where transmission time is a clean
/// function of size and tcp_info: the full TTP must beat the
/// throughput-only ablation (which cannot see size) and the no-tcp_info
/// ablation (which cannot see the rate).
TEST(TtpAblations, FullModelBeatsAblatedVariants) {
  const TtpDataset train = synthetic_dataset(19, 80);
  const TtpDataset test = synthetic_dataset(20, 25);
  TtpTrainConfig tc;
  tc.epochs = 6;

  auto fit = [&](TtpConfig config) {
    config.horizon = 1;  // evaluation uses step 0 only; faster
    Rng rng{21};
    return train_ttp(config, train, 0, tc, rng);
  };

  TtpConfig full_config;
  full_config.horizon = 1;
  const auto full = evaluate_ttp(fit(full_config), test);

  TtpConfig no_tcp = full_config;
  no_tcp.use_tcp_info = false;
  const auto without_tcp = evaluate_ttp(fit(no_tcp), test);

  TtpConfig linear = full_config;
  linear.hidden_layers = {};
  const auto linear_eval = evaluate_ttp(fit(linear), test);

  EXPECT_LT(full.cross_entropy, without_tcp.cross_entropy);
  EXPECT_LT(full.cross_entropy, linear_eval.cross_entropy);
  // Probabilistic expectation beats the max-likelihood point estimate in
  // RMSE (the "Point Estimate" ablation).
  EXPECT_LE(full.rmse_expected_s, full.rmse_point_s * 1.05);
}

TEST(TtpPredictor, PointEstimateCollapsesDistribution) {
  auto model = std::make_shared<const TtpModel>(TtpConfig{}, 22);
  TtpPredictor probabilistic{model, false};
  TtpPredictor point{model, true};
  abr::AbrObservation obs;
  probabilistic.begin_decision(obs);
  point.begin_decision(obs);
  EXPECT_EQ(probabilistic.predict(0, 1'000'000).size(),
            static_cast<size_t>(kTtpBins));
  const auto collapsed = point.predict(0, 1'000'000);
  ASSERT_EQ(collapsed.size(), 1u);
  EXPECT_DOUBLE_EQ(collapsed[0].probability, 1.0);
}

TEST(TtpPredictor, HistoryUpdatesAndReset) {
  auto model = std::make_shared<const TtpModel>(TtpConfig{}, 23);
  TtpPredictor predictor{model};
  abr::ChunkRecord record;
  record.size_bytes = 2'000'000;
  record.transmission_time_s = 1.0;
  predictor.on_chunk_complete(record);
  EXPECT_EQ(predictor.history().sizes_mb.size(), 1u);
  predictor.reset_session();
  EXPECT_TRUE(predictor.history().sizes_mb.empty());
}

TEST(MakeFugu, BuildsMpcWithTtp) {
  auto model = std::make_shared<const TtpModel>(TtpConfig{}, 24);
  const auto fugu = make_fugu(model);
  EXPECT_EQ(fugu->name(), "Fugu");
  abr::AbrObservation obs;
  obs.buffer_s = 5.0;
  const auto lookahead = test::make_lookahead(5);
  const int rung = fugu->choose_rung(obs, lookahead);
  EXPECT_GE(rung, 0);
  EXPECT_LT(rung, media::kNumRungs);
}

TEST(DataAggregator, WindowFiltersByDay) {
  DataAggregator aggregator;
  Rng rng{25};
  for (int day = 0; day < 20; day++) {
    aggregator.add_stream(synthetic_stream(rng, 3, 5.0, day));
  }
  EXPECT_EQ(aggregator.num_streams(), 20u);
  EXPECT_EQ(aggregator.num_chunks(), 60u);
  const auto window = aggregator.window(/*current_day=*/19, /*window_days=*/14);
  ASSERT_EQ(window.size(), 14u);
  for (const auto& stream : window) {
    EXPECT_GT(stream.day, 5);
    EXPECT_LE(stream.day, 19);
  }
}

}  // namespace
}  // namespace puffer::fugu
