#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/cubic.hh"
#include "net/link.hh"
#include "net/shared_link.hh"
#include "net/tcp_sender.hh"
#include "net/trace.hh"
#include "util/rng.hh"

namespace puffer {
namespace {

using net::LinkStepResult;
using net::ShareMode;
using net::SharedLinkConfig;
using net::SharedLinkSimulator;
using net::ThroughputTrace;

void expect_same_bits(const double a, const double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b));
}

ThroughputTrace flat_trace(const double rate_bps, const double duration_s) {
  return ThroughputTrace{{rate_bps}, duration_s};
}

// ---------------------------------------------------------------------------
// Conservation (exact, bitwise)
// ---------------------------------------------------------------------------

/// Property: replaying the reported per-step (offered, lost, delivered)
/// through the documented fold order — q += offered; q -= lost;
/// q -= delivered, ascending flow order — reproduces the simulator's queues
/// and totals EXACTLY (bit-for-bit), under randomized flows, rates, steps
/// and both share modes. Bytes are conserved by construction, not to a
/// tolerance.
TEST(SharedLink, ConservationExactUnderRandomizedLoad) {
  Rng rng{20200225};
  for (int round = 0; round < 20; round++) {
    const int num_flows = static_cast<int>(rng.uniform_int(1, 6));
    const auto mode = rng.bernoulli(0.5) ? ShareMode::kFifo
                                         : ShareMode::kFairQueue;
    // Capacity trace with segment boundaries inside steps, incl. outages.
    std::vector<double> rates;
    for (int seg = 0; seg < 40; seg++) {
      rates.push_back(rng.bernoulli(0.1) ? 0.0 : rng.uniform(1e4, 2e6));
    }
    const ThroughputTrace trace{rates, 0.25};
    SharedLinkConfig config;
    config.mode = mode;
    config.queue_capacity_bytes = rng.uniform(16.0 * 1024.0, 256.0 * 1024.0);
    SharedLinkSimulator link{trace, config};

    const auto n = static_cast<size_t>(num_flows);
    std::vector<double> mirror_q(n, 0.0), mirror_off(n, 0.0),
        mirror_lost(n, 0.0), mirror_del(n, 0.0);
    for (int f = 0; f < num_flows; f++) {
      ASSERT_EQ(link.add_flow(), f);
    }

    std::vector<double> offered(n, 0.0);
    std::vector<LinkStepResult> results(n);
    double now = 0.0;
    for (int s = 0; s < 200; s++) {
      const double dt = rng.uniform(0.002, 0.1);
      for (size_t i = 0; i < n; i++) {
        offered[i] = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 40000.0);
      }
      link.step(now, dt, offered, results);
      now += dt;

      for (size_t i = 0; i < n; i++) {
        mirror_q[i] += offered[i];
        mirror_q[i] -= results[i].lost_bytes;
        mirror_q[i] -= results[i].delivered_bytes;
        mirror_off[i] += offered[i];
        mirror_lost[i] += results[i].lost_bytes;
        mirror_del[i] += results[i].delivered_bytes;

        expect_same_bits(mirror_q[i], link.queue_bytes(static_cast<int>(i)));
        expect_same_bits(mirror_off[i],
                         link.offered_total(static_cast<int>(i)));
        expect_same_bits(mirror_lost[i], link.lost_total(static_cast<int>(i)));
        expect_same_bits(mirror_del[i],
                         link.delivered_total(static_cast<int>(i)));
        EXPECT_GE(results[i].delivered_bytes, 0.0);
        EXPECT_GE(results[i].lost_bytes, 0.0);
        EXPECT_GE(mirror_q[i], 0.0);
      }
    }
  }
}

/// Same state, same inputs, same bits: the step is a pure function with no
/// hidden entropy or container-order dependence.
TEST(SharedLink, DeterministicReplay) {
  const ThroughputTrace trace{{5e5, 2e5, 0.0, 8e5}, 0.5};
  const auto run = [&] {
    SharedLinkConfig config;
    config.mode = ShareMode::kFairQueue;
    SharedLinkSimulator link{trace, config};
    for (int f = 0; f < 3; f++) {
      link.add_flow();
    }
    Rng rng{7};
    std::vector<double> offered(3, 0.0);
    std::vector<LinkStepResult> results(3);
    std::vector<double> transcript;
    double now = 0.0;
    for (int s = 0; s < 100; s++) {
      const double dt = rng.uniform(0.005, 0.05);
      for (double& o : offered) {
        o = rng.uniform(0.0, 30000.0);
      }
      link.step(now, dt, offered, results);
      now += dt;
      for (const LinkStepResult& r : results) {
        transcript.push_back(r.delivered_bytes);
        transcript.push_back(r.lost_bytes);
        transcript.push_back(r.queue_delay_s);
      }
    }
    return transcript;
  };
  const std::vector<double> a = run();
  const std::vector<double> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    expect_same_bits(a[i], b[i]);
  }
}

// ---------------------------------------------------------------------------
// Single-flow equivalence with LinkSimulator
// ---------------------------------------------------------------------------

/// With one flow, the shared link in FIFO mode IS LinkSimulator: same
/// arrivals, same mid-step capacity sample, same drop-tail, same delay and
/// outage pinning — bit for bit.
TEST(SharedLink, SingleFlowMatchesLinkSimulator) {
  const ThroughputTrace trace{{4e5, 0.0, 1e5, 9e5}, 0.4};
  constexpr double kQueueCapacity = 48.0 * 1024.0;
  SharedLinkConfig config;
  config.queue_capacity_bytes = kQueueCapacity;
  SharedLinkSimulator shared{trace, config};
  net::LinkSimulator single{trace, kQueueCapacity};
  ASSERT_EQ(shared.add_flow(), 0);

  Rng rng{99};
  std::vector<double> offered(1, 0.0);
  std::vector<LinkStepResult> results(1);
  double now = 0.0;
  for (int s = 0; s < 300; s++) {
    const double dt = rng.uniform(0.002, 0.08);
    offered[0] = rng.bernoulli(0.25) ? 0.0 : rng.uniform(0.0, 60000.0);
    shared.step(now, dt, offered, results);
    const LinkStepResult expected = single.step(now, dt, offered[0]);
    now += dt;
    expect_same_bits(results[0].delivered_bytes, expected.delivered_bytes);
    expect_same_bits(results[0].lost_bytes, expected.lost_bytes);
    expect_same_bits(results[0].queue_delay_s, expected.queue_delay_s);
    EXPECT_EQ(results[0].blocked, expected.blocked);
    expect_same_bits(shared.queue_bytes(0), single.queue_bytes());
  }
}

// ---------------------------------------------------------------------------
// Share modes
// ---------------------------------------------------------------------------

/// Max-min allocation in one step: a small flow drains fully, the rest split
/// the remaining capacity equally.
TEST(SharedLink, FairQueueIsMaxMin) {
  const ThroughputTrace trace = flat_trace(1000.0, 1000.0);
  SharedLinkConfig config;
  config.mode = ShareMode::kFairQueue;
  config.queue_capacity_bytes = 1e9;  // no drops in this test
  SharedLinkSimulator link{trace, config};
  for (int f = 0; f < 3; f++) {
    link.add_flow();
  }
  const std::vector<double> offered = {100.0, 10000.0, 10000.0};
  std::vector<LinkStepResult> results(3);
  link.step(0.0, 1.0, offered, results);  // drainable = 1000 bytes
  EXPECT_DOUBLE_EQ(results[0].delivered_bytes, 100.0);
  EXPECT_DOUBLE_EQ(results[1].delivered_bytes, 450.0);
  EXPECT_DOUBLE_EQ(results[2].delivered_bytes, 450.0);
  // Fair-queue delay: own backlog at the fair rate (capacity / backlogged).
  EXPECT_DOUBLE_EQ(results[0].queue_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(results[1].queue_delay_s, 9550.0 / 500.0);
}

/// FIFO drains in proportion to queue share and every flow sees the delay of
/// the whole shared backlog — the crowd-out mechanism.
TEST(SharedLink, FifoDrainsProportionallyWithSharedDelay) {
  const ThroughputTrace trace = flat_trace(1000.0, 1000.0);
  SharedLinkConfig config;
  config.queue_capacity_bytes = 1e9;
  SharedLinkSimulator link{trace, config};
  for (int f = 0; f < 2; f++) {
    link.add_flow();
  }
  const std::vector<double> offered = {3000.0, 9000.0};
  std::vector<LinkStepResult> results(2);
  link.step(0.0, 1.0, offered, results);
  EXPECT_DOUBLE_EQ(results[0].delivered_bytes, 250.0);  // 1000 * 3000/12000
  EXPECT_DOUBLE_EQ(results[1].delivered_bytes, 750.0);
  // Both wait behind the full 11000-byte residual backlog.
  EXPECT_DOUBLE_EQ(results[0].queue_delay_s, 11.0);
  EXPECT_DOUBLE_EQ(results[1].queue_delay_s, 11.0);
}

/// Drop-tail overflow is taken from this step's arrivals in proportion to
/// each flow's offered bytes.
TEST(SharedLink, DropTailSplitsOverflowByOfferedBytes) {
  const ThroughputTrace trace = flat_trace(0.0, 1000.0);  // nothing drains
  SharedLinkConfig config;
  config.queue_capacity_bytes = 6000.0;
  SharedLinkSimulator link{trace, config};
  for (int f = 0; f < 2; f++) {
    link.add_flow();
  }
  const std::vector<double> offered = {2000.0, 6000.0};
  std::vector<LinkStepResult> results(2);
  link.step(0.0, 0.1, offered, results);  // 8000 offered into a 6000 buffer
  EXPECT_DOUBLE_EQ(results[0].lost_bytes, 500.0);   // 2000 * 2000/8000
  EXPECT_DOUBLE_EQ(results[1].lost_bytes, 1500.0);  // 2000 * 6000/8000
  EXPECT_DOUBLE_EQ(link.total_queue_bytes(), 6000.0);
  // Zero capacity with a held queue: blocked, delay pinned at the horizon.
  EXPECT_TRUE(results[0].blocked);
  EXPECT_DOUBLE_EQ(results[0].queue_delay_s,
                   net::LinkSimulator::kQueueDelayCapS);
}

TEST(SharedLink, JainFairnessIndexBasics) {
  EXPECT_DOUBLE_EQ(net::jain_fairness_index({}), 1.0);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(net::jain_fairness_index(zero), 1.0);
  const std::vector<double> equal = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(net::jain_fairness_index(equal), 1.0);
  const std::vector<double> one_hot = {4.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(net::jain_fairness_index(one_hot), 0.25);
}

// ---------------------------------------------------------------------------
// Congestion-control fairness over the shared link
// ---------------------------------------------------------------------------

/// Two identical CUBIC flows over one flat bottleneck converge to an even
/// split: Jain fairness >= 0.9 over the window where both are active, even
/// with a staggered start. Driven through the externally-driven TcpSender
/// protocol — the same lockstep loop the contention worlds run.
TEST(SharedLink, TwoCubicFlowsConvergeToFairShare) {
  const double rate_bps = 1.25e6;  // 10 Mbit/s
  const ThroughputTrace trace = flat_trace(rate_bps, 10000.0);
  SharedLinkConfig config;
  config.mode = ShareMode::kFifo;
  config.queue_capacity_bytes = 2.0 * rate_bps * 0.05;  // ~2 BDP
  SharedLinkSimulator link{trace, config};

  std::vector<std::unique_ptr<net::TcpSender>> senders;
  for (int f = 0; f < 2; f++) {
    ASSERT_EQ(link.add_flow(), f);
    senders.push_back(std::make_unique<net::TcpSender>(
        0.050, std::make_unique<net::CubicModel>()));
  }
  senders[0]->start_transfer(1e12);  // effectively unbounded backlogs

  std::vector<double> offered(2, 0.0);
  std::vector<LinkStepResult> results(2);
  double now = 0.0;
  bool second_started = false;
  std::vector<double> window_start = {0.0, 0.0};
  const double kSecondStartS = 10.0;
  const double kEndS = 190.0;
  while (now < kEndS) {
    if (!second_started && now >= kSecondStartS) {
      senders[1]->start_transfer(1e12);
      second_started = true;
      // Fairness is judged over the window where both flows compete.
      for (int f = 0; f < 2; f++) {
        window_start[static_cast<size_t>(f)] = link.delivered_total(f);
      }
    }
    double dt = senders[0]->preferred_dt();
    if (second_started) {
      dt = std::min(dt, senders[1]->preferred_dt());
    }
    for (size_t f = 0; f < senders.size(); f++) {
      offered[f] = senders[f]->offered_step(dt);
    }
    link.step(now, dt, offered, results);
    for (size_t f = 0; f < senders.size(); f++) {
      senders[f]->absorb_step(dt, results[f]);
    }
    now += dt;
  }
  ASSERT_TRUE(second_started);
  const std::vector<double> shares = {
      link.delivered_total(0) - window_start[0],
      link.delivered_total(1) - window_start[1]};
  EXPECT_GT(shares[0], 0.0);
  EXPECT_GT(shares[1], 0.0);
  EXPECT_GE(net::jain_fairness_index(shares), 0.9);
  // The bottleneck stayed busy: together they filled most of the pipe.
  const double window_s = kEndS - kSecondStartS;
  EXPECT_GT(shares[0] + shares[1], 0.7 * rate_bps * window_s);
}

}  // namespace
}  // namespace puffer
