// Chaos suite for the deterministic fault-injection plane: FaultPlan draw
// semantics, ResilientPredictor's degradation ladder, campaign-layer
// graceful degradation (retrain crashes, checkpoint/model load faults,
// telemetry loss), and the bitwise shard×thread invariance contract with
// faults ENABLED — the fault schedule must be a pure function of the plan
// seed and stable keys, never of the partitioning.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "exp/campaign.hh"
#include "exp/fleet_trial.hh"
#include "exp/registry.hh"
#include "fugu/batch_ttp.hh"
#include "fugu/fugu.hh"
#include "fugu/resilient.hh"
#include "obs/trace.hh"
#include "sim/faults.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan semantics
// ---------------------------------------------------------------------------

TEST(FaultRegistry, BuiltinFamiliesRegistered) {
  const sim::FaultRegistry& registry = sim::fault_registry();
  for (const std::string_view family :
       {sim::kFaultTtpInference, sim::kFaultSessionAbort,
        sim::kFaultTelemetryLoss, sim::kFaultTelemetryDup,
        sim::kFaultRetrainCrash, sim::kFaultCheckpointLoad,
        sim::kFaultModelLoad, sim::kFaultLinkOutage}) {
    EXPECT_TRUE(registry.contains(family)) << family;
    EXPECT_FALSE(registry.description(family).empty()) << family;
  }
  const std::vector<std::string> names = registry.names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(FaultPlan, DrawIsAPureFunctionOfKeys) {
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 42;
  plan.add(sim::kFaultRetrainCrash, 0.5);

  // Replays exactly, regardless of call order or interleaving.
  for (uint64_t day = 0; day < 20; day++) {
    for (uint64_t arm = 0; arm < 3; arm++) {
      const bool first = plan.draw(sim::kFaultRetrainCrash, {day, arm});
      const bool again = plan.draw(sim::kFaultRetrainCrash, {day, arm});
      EXPECT_EQ(first, again);
    }
  }
  // Key order matters (the keys are successive splits, not a bag).
  int diff = 0;
  for (uint64_t k = 0; k < 64; k++) {
    diff += plan.draw(sim::kFaultRetrainCrash, {k, 1}) !=
                    plan.draw(sim::kFaultRetrainCrash, {1, k})
                ? 1
                : 0;
  }
  EXPECT_GT(diff, 0);
  // The hit rate tracks the probability (loose bound; deterministic).
  int hits = 0;
  for (uint64_t k = 0; k < 1000; k++) {
    hits += plan.draw(sim::kFaultRetrainCrash, {k}) ? 1 : 0;
  }
  EXPECT_GT(hits, 350);
  EXPECT_LT(hits, 650);
}

TEST(FaultPlan, DisabledOrAbsentFamiliesNeverFire) {
  sim::FaultPlan plan;
  plan.enabled = false;
  plan.seed = 7;
  plan.add(sim::kFaultSessionAbort, 1.0);
  for (uint64_t k = 0; k < 50; k++) {
    EXPECT_FALSE(plan.draw(sim::kFaultSessionAbort, {k}));
  }
  EXPECT_EQ(plan.probability(sim::kFaultSessionAbort), 0.0);

  plan.enabled = true;
  EXPECT_EQ(plan.probability(sim::kFaultTtpInference), 0.0);  // absent
  for (uint64_t k = 0; k < 50; k++) {
    EXPECT_FALSE(plan.draw(sim::kFaultTtpInference, {k}));
  }
}

TEST(FaultPlan, UnknownFamilyRejectedNamingKnownOnes) {
  sim::FaultPlan plan;
  plan.enabled = true;
  try {
    plan.add("cosmic-rays", 0.5);
    FAIL() << "expected RequirementError";
  } catch (const RequirementError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("cosmic-rays"), std::string::npos);
    EXPECT_NE(message.find("retrain-crash"), std::string::npos);
  }
  EXPECT_THROW(plan.add(sim::kFaultSessionAbort, -0.1), RequirementError);
  EXPECT_THROW(plan.add(sim::kFaultSessionAbort, 1.5), RequirementError);
}

TEST(FaultPlan, ParseAndFingerprint) {
  const sim::FaultPlan plan =
      sim::parse_fault_plan("ttp-inference=0.05,link-outage=0.3:30", 9);
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.probability(sim::kFaultTtpInference), 0.05);
  EXPECT_DOUBLE_EQ(plan.probability(sim::kFaultLinkOutage), 0.3);
  EXPECT_DOUBLE_EQ(plan.duration_s(sim::kFaultLinkOutage), 30.0);

  EXPECT_THROW(sim::parse_fault_plan("", 1), RequirementError);
  EXPECT_THROW(sim::parse_fault_plan("=0.5", 1), RequirementError);
  EXPECT_THROW(sim::parse_fault_plan("ttp-inference=abc", 1),
               RequirementError);
  EXPECT_THROW(sim::parse_fault_plan("bogus-family=0.1", 1),
               RequirementError);

  sim::FaultPlan other = plan;
  EXPECT_EQ(plan.fingerprint_key(), other.fingerprint_key());
  other.seed = 10;
  EXPECT_NE(plan.fingerprint_key(), other.fingerprint_key());
}

// ---------------------------------------------------------------------------
// ResilientPredictor degradation ladder
// ---------------------------------------------------------------------------

std::shared_ptr<const fugu::TtpModel> shared_model() {
  static const auto model =
      std::make_shared<const fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  return model;
}

abr::AbrObservation test_observation() {
  abr::AbrObservation obs;
  obs.buffer_s = 8.0;
  obs.tcp.cwnd_pkts = 80.0;
  obs.tcp.in_flight_pkts = 40.0;
  obs.tcp.min_rtt_s = 0.05;
  obs.tcp.srtt_s = 0.08;
  obs.tcp.delivery_rate_bps = 4e6;
  return obs;
}

abr::ChunkRecord test_chunk(const int i) {
  abr::ChunkRecord record;
  record.size_bytes = 500'000 + 40'000 * i;
  record.transmission_time_s = 0.4 + 0.07 * static_cast<double>(i % 5);
  return record;
}

TEST(ResilientPredictor, PassThroughUntilSessionBegins) {
  fugu::ResilientPredictor wrapper{
      std::make_unique<fugu::BatchTtpPredictor>(shared_model()),
      fugu::ResilienceConfig{}, /*failure_probability=*/1.0, /*fault_seed=*/3};
  // No begin_session: even probability 1.0 must never fire.
  for (int i = 0; i < 5; i++) {
    wrapper.on_chunk_complete(test_chunk(i));
    wrapper.begin_decision(test_observation());
  }
  EXPECT_EQ(wrapper.session_stats().failures, 0);
  EXPECT_EQ(wrapper.session_stats().fallback_decisions, 0);
  EXPECT_FALSE(wrapper.degraded());
}

/// Degradation invariant: with inference permanently unavailable, every
/// decision is served, and served with exactly the bare harmonic-mean
/// predictor's distributions.
TEST(ResilientPredictor, FallbackMatchesBareHarmonicMean) {
  fugu::ResilientPredictor wrapper{
      std::make_unique<fugu::BatchTtpPredictor>(shared_model()),
      fugu::ResilienceConfig{}, /*failure_probability=*/1.0, /*fault_seed=*/3};
  wrapper.begin_session(/*run_seed=*/99);
  abr::HarmonicMeanPredictor bare;
  bare.reset_session();

  for (int i = 0; i < 6; i++) {
    wrapper.on_chunk_complete(test_chunk(i));
    bare.on_chunk_complete(test_chunk(i));
    wrapper.begin_decision(test_observation());
    bare.begin_decision(test_observation());
    for (const int64_t size : {200'000, 900'000, 3'000'000}) {
      const abr::TxTimeDistribution expected = bare.predict(0, size);
      const abr::TxTimeDistribution got = wrapper.predict(0, size);
      ASSERT_EQ(expected.size(), got.size());
      for (size_t k = 0; k < expected.size(); k++) {
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[k].time_s),
                  std::bit_cast<uint64_t>(got[k].time_s));
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[k].probability),
                  std::bit_cast<uint64_t>(got[k].probability));
      }
    }
  }
  EXPECT_EQ(wrapper.session_stats().decisions, 6);
  EXPECT_EQ(wrapper.session_stats().failures, 6);
  EXPECT_EQ(wrapper.session_stats().fallback_decisions, 6);
}

/// Degradation invariant: the fallback engages (latches) within the
/// configured failure budget — here after exactly 3 consecutive failures.
TEST(ResilientPredictor, EngagesWithinConfiguredBudget) {
  fugu::ResilienceConfig config;
  config.engage_after_failures = 3;
  fugu::ResilientPredictor wrapper{
      std::make_unique<fugu::BatchTtpPredictor>(shared_model()), config,
      /*failure_probability=*/1.0, /*fault_seed=*/3};
  wrapper.begin_session(/*run_seed=*/1);
  for (int i = 0; i < 3; i++) {
    EXPECT_FALSE(wrapper.degraded());
    wrapper.on_chunk_complete(test_chunk(i));
    wrapper.begin_decision(test_observation());
  }
  EXPECT_TRUE(wrapper.degraded());
  EXPECT_EQ(wrapper.session_stats().engagements, 1);
  // Every failed decision was still served by the fallback, engaged or not.
  EXPECT_EQ(wrapper.session_stats().fallback_decisions, 3);

  wrapper.reset_session();
  EXPECT_FALSE(wrapper.degraded());
  EXPECT_EQ(wrapper.session_stats().decisions, 0);
}

/// Property test: the accounting invariants hold for any seed.
TEST(ResilientPredictor, StatsInvariantsOverManySeeds) {
  for (uint64_t run_seed = 0; run_seed < 25; run_seed++) {
    fugu::ResilientPredictor wrapper{
        std::make_unique<fugu::BatchTtpPredictor>(shared_model()),
        fugu::ResilienceConfig{}, /*failure_probability=*/0.4,
        /*fault_seed=*/11};
    wrapper.begin_session(run_seed);
    for (int i = 0; i < 40; i++) {
      wrapper.on_chunk_complete(test_chunk(i));
      wrapper.begin_decision(test_observation());
      static_cast<void>(wrapper.predict(0, 700'000));
    }
    const fugu::SessionFaultStats& stats = wrapper.session_stats();
    EXPECT_EQ(stats.decisions, 40);
    EXPECT_LE(stats.failures, stats.decisions);
    EXPECT_GE(stats.fallback_decisions, stats.failures);
    EXPECT_LE(stats.fallback_decisions, stats.decisions);
    if (stats.degraded) {
      EXPECT_GE(stats.engagements, 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-fault contract and the faulted shard×thread matrix
// ---------------------------------------------------------------------------

void expect_same_bits(const double a, const double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b));
}

void expect_identical(const exp::TrialResult& a, const exp::TrialResult& b) {
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (size_t s = 0; s < a.schemes.size(); s++) {
    const exp::SchemeResult& x = a.schemes[s];
    const exp::SchemeResult& y = b.schemes[s];
    EXPECT_EQ(x.scheme, y.scheme);
    EXPECT_EQ(x.consort.sessions, y.consort.sessions);
    EXPECT_EQ(x.consort.streams, y.consort.streams);
    EXPECT_EQ(x.consort.never_began, y.consort.never_began);
    EXPECT_EQ(x.consort.under_min_watch, y.consort.under_min_watch);
    EXPECT_EQ(x.consort.decoder_failure, y.consort.decoder_failure);
    EXPECT_EQ(x.consort.truncated, y.consort.truncated);
    EXPECT_EQ(x.consort.considered, y.consort.considered);
    ASSERT_EQ(x.considered.size(), y.considered.size());
    for (size_t i = 0; i < x.considered.size(); i++) {
      expect_same_bits(x.considered[i].watch_time_s,
                       y.considered[i].watch_time_s);
      expect_same_bits(x.considered[i].stall_time_s,
                       y.considered[i].stall_time_s);
      expect_same_bits(x.considered[i].startup_delay_s,
                       y.considered[i].startup_delay_s);
      expect_same_bits(x.considered[i].ssim_mean_db,
                       y.considered[i].ssim_mean_db);
      expect_same_bits(x.considered[i].mean_bitrate_mbps,
                       y.considered[i].mean_bitrate_mbps);
      expect_same_bits(x.considered[i].mean_delivery_rate_mbps,
                       y.considered[i].mean_delivery_rate_mbps);
    }
    ASSERT_EQ(x.session_durations_s.size(), y.session_durations_s.size());
    for (size_t i = 0; i < x.session_durations_s.size(); i++) {
      expect_same_bits(x.session_durations_s[i], y.session_durations_s[i]);
    }
  }
}

int64_t metric_value(const obs::MetricSnapshot& snapshot,
                     const std::string& name) {
  const obs::MetricSnapshot::Metric* metric = snapshot.find(name);
  return metric != nullptr ? metric->value : 0;
}

const std::vector<std::string>& fault_metric_names() {
  static const std::vector<std::string> names = {
      "faults.injected",          "faults.ttp_decisions",
      "faults.ttp_failures",      "faults.ttp_fallback_decisions",
      "faults.ttp_engagements",   "faults.degraded_sessions",
      "faults.session_aborts",    "faults.link_outages",
      "faults.max_session_fallbacks"};
  return names;
}

exp::SchemeArtifacts fault_artifacts(const sim::FaultPlan* plan) {
  exp::SchemeArtifacts artifacts;
  artifacts.ttp_insitu = shared_model();
  artifacts.faults = plan;
  return artifacts;
}

exp::FleetTrialConfig small_fleet_config() {
  exp::FleetTrialConfig config;
  config.trial.schemes = {"Fugu", "MPC-HM", "BBA"};
  config.trial.sessions_per_scheme = 5;
  config.trial.seed = 20190119;
  config.trial.num_threads = 1;
  config.trial.stream.max_stream_chunks = 60;
  config.arrivals.kind = "poisson";
  config.arrivals.rate_per_s = 0.05;
  return config;
}

/// Zero-fault contract: a present-but-disabled FaultPlan produces results
/// bitwise identical to a factory that never heard of faults, across the
/// full shard matrix. (The golden-trial rows are covered by test_exp's
/// golden suite, which runs the unwired path.)
TEST(ZeroFault, DisabledPlanBitIdenticalToUnwiredFactory) {
  exp::FleetTrialConfig config = small_fleet_config();
  ASSERT_FALSE(config.trial.faults.enabled);

  const auto unwired =
      [](const std::string& name) -> std::unique_ptr<abr::AbrAlgorithm> {
    if (name == "Fugu") {
      return fugu::make_fugu(shared_model(), name);
    }
    return exp::make_scheme(name, exp::SchemeArtifacts{});
  };
  const exp::TrialResult baseline = exp::run_trial(config.trial, unwired);

  config.trial.faults.add(sim::kFaultTtpInference, 0.9);  // disabled: inert
  const exp::SchemeArtifacts artifacts = fault_artifacts(&config.trial.faults);
  for (const int shards : {1, 2, 4, 8}) {
    config.num_shards = shards;
    config.trial.num_threads = shards == 1 ? 1 : 4;
    const exp::FleetTrialResult fleet =
        exp::run_fleet_trial(config, artifacts);
    expect_identical(baseline, fleet.trial);
    for (const std::string& name : fault_metric_names()) {
      EXPECT_EQ(metric_value(fleet.metrics, name), 0) << name;
    }
  }
}

TEST(ZeroFault, ResilientFuguAssemblyGatedOnPlan) {
  sim::FaultPlan disabled;
  disabled.add(sim::kFaultTtpInference, 0.5);
  const auto plain = fugu::make_resilient_fugu(shared_model(), disabled);
  EXPECT_EQ(dynamic_cast<fugu::ResilientPredictor*>(&plain->predictor()),
            nullptr);

  sim::FaultPlan enabled = disabled;
  enabled.enabled = true;
  const auto wrapped = fugu::make_resilient_fugu(shared_model(), enabled);
  EXPECT_NE(dynamic_cast<fugu::ResilientPredictor*>(&wrapped->predictor()),
            nullptr);
}

sim::FaultPlan matrix_plan() {
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 77;
  plan.add(sim::kFaultTtpInference, 0.2);
  plan.add(sim::kFaultSessionAbort, 0.05);
  return plan;
}

/// Tentpole acceptance: with faults ENABLED, results and the faults.*
/// metric plane are bit-identical across the full 1/2/4/8-shard ×
/// 1/2/4-thread matrix.
TEST(FaultMatrix, BitIdenticalAcrossShardsAndThreads) {
  exp::FleetTrialConfig config = small_fleet_config();
  config.trial.faults = matrix_plan();
  const exp::SchemeArtifacts artifacts = fault_artifacts(&config.trial.faults);

  config.num_shards = 1;
  config.trial.num_threads = 1;
  const exp::FleetTrialResult baseline =
      exp::run_fleet_trial(config, artifacts);

  // The schedule actually fired: faults are being exercised, not parsed.
  EXPECT_GT(metric_value(baseline.metrics, "faults.ttp_failures"), 0);
  EXPECT_GT(metric_value(baseline.metrics, "faults.injected"), 0);
  EXPECT_GT(metric_value(baseline.metrics, "faults.ttp_decisions"),
            metric_value(baseline.metrics, "faults.ttp_failures"));

  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 2, 4}) {
      config.num_shards = shards;
      config.trial.num_threads = threads;
      const exp::FleetTrialResult fleet =
          exp::run_fleet_trial(config, artifacts);
      expect_identical(baseline.trial, fleet.trial);
      EXPECT_EQ(baseline.fleet.sessions, fleet.fleet.sessions);
      EXPECT_EQ(baseline.fleet.decisions, fleet.fleet.decisions);
      for (const std::string& name : fault_metric_names()) {
        EXPECT_EQ(metric_value(baseline.metrics, name),
                  metric_value(fleet.metrics, name))
            << name << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

/// Link outages on shared bottlenecks are keyed on the contention-group
/// index, so they too are shard-invariant.
TEST(FaultMatrix, LinkOutageShardInvariantUnderContention) {
  exp::FleetTrialConfig config = small_fleet_config();
  config.trial.sessions_per_scheme = 4;
  config.trial.scenario = net::ScenarioSpec{"edge-contention"};
  config.contention = exp::make_contention_spec("edge", 2);
  config.trial.faults.enabled = true;
  config.trial.faults.seed = 5;
  config.trial.faults.add(sim::kFaultLinkOutage, 0.6, /*duration_s=*/20.0);
  const exp::SchemeArtifacts artifacts = fault_artifacts(&config.trial.faults);

  config.num_shards = 1;
  const exp::FleetTrialResult one = exp::run_fleet_trial(config, artifacts);
  EXPECT_GT(metric_value(one.metrics, "faults.link_outages"), 0);

  config.num_shards = 2;
  config.trial.num_threads = 4;
  const exp::FleetTrialResult two = exp::run_fleet_trial(config, artifacts);
  expect_identical(one.trial, two.trial);
  EXPECT_EQ(metric_value(one.metrics, "faults.link_outages"),
            metric_value(two.metrics, "faults.link_outages"));
}

/// Injected faults appear as instant events on the virtual-time trace
/// lanes, byte-identical across thread counts.
TEST(FaultTrace, InstantsByteIdenticalAcrossThreadCounts) {
  const auto fault_events = [](const int threads) {
    exp::FleetTrialConfig config = small_fleet_config();
    config.trial.faults = matrix_plan();
    config.num_shards = 2;
    config.trial.num_threads = threads;
    obs::TraceWriter trace;
    config.trace = &trace;
    static_cast<void>(exp::run_fleet_trial(
        config, fault_artifacts(&config.trial.faults)));
    std::vector<std::string> events;
    std::istringstream lines{trace.str()};
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"fault\"") != std::string::npos) {
        events.push_back(line);
      }
    }
    return events;
  };
  const std::vector<std::string> one = fault_events(1);
  const std::vector<std::string> four = fault_events(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

// ---------------------------------------------------------------------------
// Randomized chaos: schedules never crash or deadlock
// ---------------------------------------------------------------------------

/// Property test over >= 20 random fault schedules: the fleet completes
/// every session, never throws, never deadlocks, and its accounting stays
/// self-consistent.
TEST(FaultChaos, RandomizedSchedulesNeverCrashFleet) {
  for (uint64_t chaos_seed = 0; chaos_seed < 20; chaos_seed++) {
    Rng chaos = Rng{900 + chaos_seed}.split("chaos/fleet");
    exp::FleetTrialConfig config = small_fleet_config();
    config.trial.sessions_per_scheme = 2;
    config.trial.stream.max_stream_chunks = 30;
    config.trial.seed = 100 + chaos_seed;
    config.trial.num_threads = 2;
    config.num_shards = 1 + static_cast<int>(chaos_seed % 3);
    config.trial.faults.enabled = true;
    config.trial.faults.seed = chaos_seed;
    config.trial.faults.add(sim::kFaultTtpInference, chaos.uniform(0.0, 0.8));
    config.trial.faults.add(sim::kFaultSessionAbort, chaos.uniform(0.0, 0.3));

    const exp::FleetTrialResult fleet = exp::run_fleet_trial(
        config, fault_artifacts(&config.trial.faults));
    const int64_t expected_sessions =
        static_cast<int64_t>(config.trial.schemes.size()) *
        config.trial.sessions_per_scheme;
    EXPECT_EQ(fleet.fleet.sessions, expected_sessions) << chaos_seed;
    EXPECT_GT(fleet.fleet.decisions, 0) << chaos_seed;
    EXPECT_LE(metric_value(fleet.metrics, "faults.ttp_failures"),
              metric_value(fleet.metrics, "faults.ttp_decisions"))
        << chaos_seed;
  }
}

fugu::TtpConfig tiny_ttp() {
  fugu::TtpConfig config;
  config.history = 4;
  config.hidden_layers = {16};
  config.horizon = 1;
  return config;
}

fugu::TtpTrainConfig tiny_train() {
  fugu::TtpTrainConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  config.max_examples_per_step = 400;
  return config;
}

exp::CampaignConfig tiny_campaign(const int days) {
  exp::CampaignConfig config;
  exp::CampaignArm bba;
  bba.name = "bba";
  bba.scheme = "BBA";
  exp::CampaignArm fugu_arm;
  fugu_arm.name = "fugu";
  fugu_arm.scheme = "Fugu";
  fugu_arm.retrain = true;
  fugu_arm.ttp = tiny_ttp();
  fugu_arm.train = tiny_train();
  config.arms = {bba, fugu_arm};
  config.phases = {exp::CampaignPhase{net::ScenarioSpec{"puffer"}, days}};
  config.telemetry_sessions_per_day = 4;
  config.eval_sessions_per_day = 3;
  config.holdout_sessions_per_day = 2;
  config.seed = 17;
  config.num_threads = 2;
  config.stream.max_stream_chunks = 50;
  return config;
}

/// Chaos over campaigns: random schedules across every campaign-layer fault
/// family; the campaign must complete all its days.
TEST(FaultChaos, RandomizedSchedulesNeverCrashCampaign) {
  for (uint64_t chaos_seed = 0; chaos_seed < 6; chaos_seed++) {
    Rng chaos = Rng{700 + chaos_seed}.split("chaos/campaign");
    exp::CampaignConfig config = tiny_campaign(1);
    config.seed = 40 + chaos_seed;
    config.faults.enabled = true;
    config.faults.seed = chaos_seed;
    config.faults.add(sim::kFaultTtpInference, chaos.uniform(0.0, 0.6));
    config.faults.add(sim::kFaultSessionAbort, chaos.uniform(0.0, 0.2));
    config.faults.add(sim::kFaultRetrainCrash, chaos.uniform(0.0, 1.0));
    config.faults.add(sim::kFaultTelemetryLoss, chaos.uniform(0.0, 0.5));
    config.faults.add(sim::kFaultTelemetryDup, chaos.uniform(0.0, 0.5));
    config.resilience.retrain_retries = 1;

    exp::Campaign campaign{config};
    const exp::CampaignResult result = campaign.run();
    ASSERT_EQ(result.days.size(), 1u) << chaos_seed;
    const exp::DayStats& day = result.days.front();
    EXPECT_LE(day.telemetry_lost, day.telemetry_streams) << chaos_seed;
    for (const exp::ArmDayStats& arm : day.arms) {
      EXPECT_GE(arm.sessions, 0) << chaos_seed;
      if (arm.degraded) {
        EXPECT_GT(arm.retrain_crashes, 0) << chaos_seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign-layer graceful degradation
// ---------------------------------------------------------------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Degradation invariant: with every retrain attempt crashing, the campaign
/// still completes all days, each degraded day serving the prior deployed
/// model unchanged.
TEST(CampaignFaults, RetrainCrashKeepsPriorModelOnDegradedDays) {
  exp::CampaignConfig config = tiny_campaign(2);
  config.faults.enabled = true;
  config.faults.seed = 1;
  config.faults.add(sim::kFaultRetrainCrash, 1.0);
  config.resilience.retrain_retries = 1;

  exp::Campaign campaign{config};
  const fugu::TtpModel* day0_model = campaign.deployed_model("fugu");
  ASSERT_NE(day0_model, nullptr);
  const exp::CampaignResult result = campaign.run();
  ASSERT_EQ(result.days.size(), 2u);

  for (const exp::DayStats& day : result.days) {
    EXPECT_TRUE(day.degraded);
    const exp::ArmDayStats& learner = day.arms[1];
    EXPECT_TRUE(learner.degraded);
    // 1 + retrain_retries attempts, all crashed.
    EXPECT_EQ(learner.retrain_crashes, 2);
    // Backoff: base + base*factor, both under the cap.
    expect_same_bits(learner.retrain_backoff_s,
                     config.resilience.retrain_backoff_base_s *
                         (1.0 + config.resilience.retrain_backoff_factor));
    EXPECT_FALSE(day.arms[0].degraded);  // BBA has no retrain to crash
  }
  // No retrain ever deployed: the arm still serves its day-0 cold model.
  EXPECT_EQ(campaign.deployed_model("fugu"), day0_model);

  const obs::MetricSnapshot metrics = campaign.metrics();
  EXPECT_EQ(metric_value(metrics, "campaign.retrains"), 0);
  EXPECT_EQ(metric_value(metrics, "faults.retrain_crashes"), 4);
  EXPECT_EQ(metric_value(metrics, "faults.degraded_days"), 2);

  // Degraded days are flagged in both report renderings.
  const std::string csv = exp::campaign_report_csv(result.days);
  EXPECT_NE(csv.find("degraded,retrain_crashes,retrain_backoff_s"),
            std::string::npos);
  const std::string json = exp::campaign_report_json(result.days);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"retrain_crashes\":2"), std::string::npos);
}

/// Degradation invariant: injected checkpoint-load failures exhaust their
/// retry budget and produce a FLAGGED fresh start, not an abort.
TEST(CampaignFaults, CheckpointLoadFaultDegradesToFlaggedFreshStart) {
  const std::string dir = fresh_dir("faults_ckpt_load");
  {
    exp::CampaignConfig config = tiny_campaign(1);
    config.checkpoint_dir = dir;
    exp::Campaign campaign{config};
    static_cast<void>(campaign.run());
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/campaign.ckpt"));

  exp::CampaignConfig faulted = tiny_campaign(1);
  faulted.checkpoint_dir = dir;
  faulted.faults.enabled = true;
  faulted.faults.seed = 2;
  faulted.faults.add(sim::kFaultCheckpointLoad, 1.0);
  faulted.resilience.checkpoint_retries = 2;

  exp::Campaign campaign{faulted};  // must NOT throw
  EXPECT_EQ(campaign.completed_days(), 0);  // fresh start: nothing restored
  const exp::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.fresh_start_degraded);
  EXPECT_EQ(result.restored_days, 0);
  ASSERT_EQ(result.days.size(), 1u);

  const obs::MetricSnapshot metrics = campaign.metrics();
  // Initial try + checkpoint_retries retries, all failed.
  EXPECT_EQ(metric_value(metrics, "faults.checkpoint_load_failures"), 3);
  EXPECT_EQ(metric_value(metrics, "faults.checkpoint_fresh_starts"), 1);
}

/// Degradation invariant: injected model corruption inside an otherwise
/// valid checkpoint degrades that arm to a cold re-init instead of aborting
/// the restore.
TEST(CampaignFaults, ModelLoadFaultColdReinitsArm) {
  const std::string dir = fresh_dir("faults_model_load");
  exp::CampaignConfig config = tiny_campaign(2);
  config.checkpoint_dir = dir;
  config.faults.enabled = true;
  config.faults.seed = 3;
  config.faults.add(sim::kFaultModelLoad, 1.0);

  {
    exp::Campaign campaign{config};
    static_cast<void>(campaign.run(1));  // day 0 only, then checkpoint
  }
  exp::Campaign resumed{config};  // restore hits the model-load fault
  EXPECT_EQ(resumed.completed_days(), 1);
  EXPECT_GE(metric_value(resumed.metrics(), "faults.model_load_failures"), 1);
  const exp::CampaignResult result = resumed.run();  // completes day 1
  ASSERT_EQ(result.days.size(), 2u);
  EXPECT_EQ(result.restored_days, 1);
}

/// Telemetry loss and duplication are accounted per day and reach the
/// metric plane; a resumed campaign replays the same schedule.
TEST(CampaignFaults, TelemetryLossAndDuplicationAccounted) {
  exp::CampaignConfig config = tiny_campaign(1);
  config.telemetry_sessions_per_day = 8;
  config.faults.enabled = true;
  config.faults.seed = 4;
  config.faults.add(sim::kFaultTelemetryLoss, 0.5);
  config.faults.add(sim::kFaultTelemetryDup, 0.5);

  exp::Campaign campaign{config};
  const exp::CampaignResult result = campaign.run();
  ASSERT_EQ(result.days.size(), 1u);
  const exp::DayStats& day = result.days.front();
  EXPECT_GT(day.telemetry_lost + day.telemetry_duplicated, 0u);
  EXPECT_LE(day.telemetry_lost, day.telemetry_streams);
  const obs::MetricSnapshot metrics = campaign.metrics();
  EXPECT_EQ(metric_value(metrics, "faults.telemetry_lost"),
            static_cast<int64_t>(day.telemetry_lost));
  EXPECT_EQ(metric_value(metrics, "faults.telemetry_duplicated"),
            static_cast<int64_t>(day.telemetry_duplicated));

  // Pure function of the config: an identical campaign replays identically.
  exp::Campaign replay{config};
  const exp::CampaignResult again = replay.run();
  EXPECT_EQ(again.days.front().telemetry_lost, day.telemetry_lost);
  EXPECT_EQ(again.days.front().telemetry_duplicated, day.telemetry_duplicated);
  EXPECT_TRUE(again.days.front() == day);
}

/// Faulted campaigns are deterministic end to end: the whole day history
/// compares equal across a replay at a different thread count.
TEST(CampaignFaults, FaultedCampaignBitIdenticalAcrossThreadCounts) {
  exp::CampaignConfig config = tiny_campaign(1);
  config.faults.enabled = true;
  config.faults.seed = 6;
  config.faults.add(sim::kFaultTtpInference, 0.3);
  config.faults.add(sim::kFaultSessionAbort, 0.1);
  config.faults.add(sim::kFaultRetrainCrash, 0.5);
  config.resilience.retrain_retries = 2;

  config.num_threads = 1;
  const exp::CampaignResult one = exp::Campaign{config}.run();
  config.num_threads = 4;
  const exp::CampaignResult four = exp::Campaign{config}.run();
  ASSERT_EQ(one.days.size(), four.days.size());
  for (size_t d = 0; d < one.days.size(); d++) {
    EXPECT_TRUE(one.days[d] == four.days[d]) << "day " << d;
  }
}

}  // namespace
}  // namespace puffer
