#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "exp/parallel_trial.hh"
#include "exp/registry.hh"
#include "exp/trial.hh"
#include "util/require.hh"

namespace puffer::exp {
namespace {

/// Bitwise double equality: the parallel runner promises *bit-identical*
/// results, stronger than operator== (which, e.g., treats -0.0 == 0.0).
void expect_same_bits(const double a, const double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b));
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (size_t s = 0; s < a.schemes.size(); s++) {
    const SchemeResult& x = a.schemes[s];
    const SchemeResult& y = b.schemes[s];
    EXPECT_EQ(x.scheme, y.scheme);

    EXPECT_EQ(x.consort.sessions, y.consort.sessions);
    EXPECT_EQ(x.consort.streams, y.consort.streams);
    EXPECT_EQ(x.consort.never_began, y.consort.never_began);
    EXPECT_EQ(x.consort.under_min_watch, y.consort.under_min_watch);
    EXPECT_EQ(x.consort.decoder_failure, y.consort.decoder_failure);
    EXPECT_EQ(x.consort.truncated, y.consort.truncated);
    EXPECT_EQ(x.consort.considered, y.consort.considered);

    ASSERT_EQ(x.considered.size(), y.considered.size());
    for (size_t i = 0; i < x.considered.size(); i++) {
      expect_same_bits(x.considered[i].watch_time_s,
                       y.considered[i].watch_time_s);
      expect_same_bits(x.considered[i].stall_time_s,
                       y.considered[i].stall_time_s);
      expect_same_bits(x.considered[i].startup_delay_s,
                       y.considered[i].startup_delay_s);
      expect_same_bits(x.considered[i].ssim_mean_db,
                       y.considered[i].ssim_mean_db);
      expect_same_bits(x.considered[i].ssim_variation_db,
                       y.considered[i].ssim_variation_db);
      expect_same_bits(x.considered[i].first_chunk_ssim_db,
                       y.considered[i].first_chunk_ssim_db);
      expect_same_bits(x.considered[i].mean_bitrate_mbps,
                       y.considered[i].mean_bitrate_mbps);
      expect_same_bits(x.considered[i].mean_delivery_rate_mbps,
                       y.considered[i].mean_delivery_rate_mbps);
    }

    ASSERT_EQ(x.session_durations_s.size(), y.session_durations_s.size());
    for (size_t i = 0; i < x.session_durations_s.size(); i++) {
      expect_same_bits(x.session_durations_s[i], y.session_durations_s[i]);
    }

    ASSERT_EQ(x.logs.size(), y.logs.size());
    for (size_t i = 0; i < x.logs.size(); i++) {
      EXPECT_EQ(x.logs[i].day, y.logs[i].day);
      ASSERT_EQ(x.logs[i].chunks.size(), y.logs[i].chunks.size());
      for (size_t c = 0; c < x.logs[i].chunks.size(); c++) {
        const fugu::ChunkLog& p = x.logs[i].chunks[c];
        const fugu::ChunkLog& q = y.logs[i].chunks[c];
        expect_same_bits(p.size_mb, q.size_mb);
        expect_same_bits(p.tx_time_s, q.tx_time_s);
        expect_same_bits(p.tcp_at_send.cwnd_pkts, q.tcp_at_send.cwnd_pkts);
        expect_same_bits(p.tcp_at_send.in_flight_pkts,
                         q.tcp_at_send.in_flight_pkts);
        expect_same_bits(p.tcp_at_send.min_rtt_s, q.tcp_at_send.min_rtt_s);
        expect_same_bits(p.tcp_at_send.srtt_s, q.tcp_at_send.srtt_s);
        expect_same_bits(p.tcp_at_send.delivery_rate_bps,
                         q.tcp_at_send.delivery_rate_bps);
      }
    }
  }
}

/// collect_logs is on so the test also covers merge ordering of the
/// telemetry stream logs, not just the Figure A1 accounting.
TrialConfig rct_config() {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM"};
  config.sessions_per_scheme = 10;
  config.seed = 20190119;
  config.collect_logs = true;
  config.day = 2;
  config.num_threads = 1;  // serial unless overridden
  return config;
}

TrialConfig paired_config() {
  TrialConfig config = rct_config();
  config.paired_paths = true;
  config.sessions_per_scheme = 6;
  return config;
}

TEST(ParallelTrial, MatchesSerialInRctMode) {
  const SchemeArtifacts none;
  const TrialResult serial = run_trial(rct_config(), none);
  for (const int threads : {2, 4, 8}) {
    const TrialResult parallel =
        ParallelTrialRunner{threads}.run(rct_config(), none);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelTrial, MatchesSerialInPairedMode) {
  const SchemeArtifacts none;
  const TrialResult serial = run_trial(paired_config(), none);
  for (const int threads : {2, 4, 8}) {
    const TrialResult parallel =
        ParallelTrialRunner{threads}.run(paired_config(), none);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelTrial, RunTrialDispatchesOnNumThreads) {
  const SchemeArtifacts none;
  TrialConfig config = rct_config();
  const TrialResult serial = run_trial(config, none);
  config.num_threads = 3;
  const TrialResult parallel = run_trial(config, none);
  expect_identical(serial, parallel);
}

TEST(ParallelTrial, MoreThreadsThanSessionsIsFine) {
  const SchemeArtifacts none;
  TrialConfig config = paired_config();
  config.sessions_per_scheme = 2;
  const TrialResult serial = run_trial(config, none);
  const TrialResult parallel = ParallelTrialRunner{16}.run(config, none);
  expect_identical(serial, parallel);
}

TEST(ParallelTrial, ResolveNumThreads) {
  EXPECT_GE(ParallelTrialRunner::resolve_num_threads(0), 1);
  EXPECT_EQ(ParallelTrialRunner::resolve_num_threads(5), 5);
  EXPECT_GE(ParallelTrialRunner::resolve_num_threads(-3), 1);
}

TEST(ParallelTrial, FactoryErrorsPropagate) {
  TrialConfig config = rct_config();
  config.schemes = {"HAL9000"};  // unknown scheme: factory throws
  const SchemeArtifacts none;
  EXPECT_THROW(static_cast<void>(ParallelTrialRunner{4}.run(config, none)),
               RequirementError);
}

}  // namespace
}  // namespace puffer::exp
