// Golden-regression harness: every scenario family runs a small seeded trial
// whose summary statistics are pinned, digit for digit, to the values below.
//
// The trial engine guarantees bit-identical results for a given config —
// across serial/parallel execution and across refactors — so these goldens
// catch silent behaviour changes anywhere in the stack: path generators,
// the TCP/link simulator, ABR schemes, session accounting, or the parallel
// merge. A legitimate behaviour change (e.g. retuning a model) must update
// the table: run with PUFFER_UPDATE_GOLDEN=1 and paste the printed rows.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/trial.hh"
#include "net/scenario.hh"
#include "net/trace_file.hh"
#include "util/rng.hh"

namespace puffer::exp {
namespace {

struct GoldenRow {
  const char* family;
  int64_t considered;      ///< streams surviving Figure A1 exclusion
  double ssim_mean_db;     ///< mean over considered streams
  double stall_ratio;      ///< total stall time / total watch time
  double startup_delay_s;  ///< mean over considered streams
};

// Pinned with PUFFER_UPDATE_GOLDEN=1 at the introduction of the scenario
// engine. Each row aggregates one 2-scheme x 6-session RCT (seed 20190119)
// over the named family, run through the parallel runner (3 workers).
const std::vector<GoldenRow> kGolden = {
    // clang-format off
    {"cellular", 20, 14.961938398499864, 0.073808065792480435, 1.0754803206571895},
    {"diurnal", 18, 15.840789791149469, 0.00019457291965654911, 0.52898517269636836},
    {"fcc-emulation", 17, 14.135927566578331, 0.0036498858665471243, 0.71089069546018069},
    {"markov-cs2p", 17, 14.952920232597243, 0.00030357430491616489, 0.58109927141586049},
    {"puffer", 17, 14.672722209709498, 0.0037523567269284615, 0.66412238004124524},
    {"satellite", 16, 9.2474438239548125, 0.17906366849845873, 2.8192134089519536},
    {"trace-replay", 19, 14.593251432404713, 0.011348912088502444, 0.60150108653527323},
    {"wifi-oscillating", 16, 16.910485510393709, 0.0, 0.46494228375384661},
    // clang-format on
};

/// The trace-replay golden needs a trace file; synthesize it deterministically
/// (fixed seed, fixed duration) so the golden values are stable.
std::string golden_trace_path() {
  static const std::string path = [] {
    const std::string file = ::testing::TempDir() + "/golden_fcc.trace";
    Rng rng{4242};
    const net::NetworkPath source =
        net::FccTraceModel{}.sample_path(rng, 1800.0);
    net::TraceFile::from_trace(source.trace).save(file);
    return file;
  }();
  return path;
}

struct Aggregates {
  int64_t considered = 0;
  double ssim_mean_db = 0.0;
  double stall_ratio = 0.0;
  double startup_delay_s = 0.0;
};

Aggregates run_family(const std::string& family) {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM"};
  config.sessions_per_scheme = 6;
  config.seed = 20190119;
  config.num_threads = 3;  // pin through the parallel runner
  config.scenario = net::ScenarioSpec{family};
  if (family == "trace-replay") {
    config.scenario.trace_path = golden_trace_path();
  }
  const SchemeArtifacts none;
  const TrialResult trial = run_trial(config, none);

  Aggregates agg;
  double ssim_sum = 0.0, startup_sum = 0.0, stall_sum = 0.0, watch_sum = 0.0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.considered) {
      agg.considered++;
      ssim_sum += figures.ssim_mean_db;
      startup_sum += figures.startup_delay_s;
      stall_sum += figures.stall_time_s;
      watch_sum += figures.watch_time_s;
    }
  }
  if (agg.considered > 0) {
    agg.ssim_mean_db = ssim_sum / static_cast<double>(agg.considered);
    agg.startup_delay_s = startup_sum / static_cast<double>(agg.considered);
  }
  if (watch_sum > 0.0) {
    agg.stall_ratio = stall_sum / watch_sum;
  }
  return agg;
}

bool update_mode() {
  return std::getenv("PUFFER_UPDATE_GOLDEN") != nullptr;
}

void check_pinned(const double actual, const double golden,
                  const char* family, const char* what) {
  // Tight enough that any change to the simulation shows, loose enough to
  // absorb printf round-tripping of the pinned literals.
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(golden));
  EXPECT_NEAR(actual, golden, tolerance) << family << ": " << what;
}

TEST(GoldenTrial, EveryFamilyMatchesPinnedStatistics) {
  const auto names = net::scenario_registry().names();

  if (update_mode()) {
    // Regeneration walks the registry, not the (possibly stale) table, so a
    // freshly registered family gets a row without hand-authoring one.
    std::printf("// paste into kGolden:\n");
    for (const auto& name : names) {
      const Aggregates agg = run_family(name);
      std::printf("    {\"%s\", %lld, %.17g, %.17g, %.17g},\n", name.c_str(),
                  static_cast<long long>(agg.considered), agg.ssim_mean_db,
                  agg.stall_ratio, agg.startup_delay_s);
    }
    return;
  }

  // The golden table must cover exactly the registered families (and stay
  // sorted, so update diffs are readable).
  ASSERT_EQ(names.size(), kGolden.size())
      << "scenario registry changed: regenerate with PUFFER_UPDATE_GOLDEN=1";
  for (size_t i = 0; i < kGolden.size(); i++) {
    const GoldenRow& row = kGolden[i];
    EXPECT_EQ(names[i], row.family) << "golden table out of sync";
    const Aggregates agg = run_family(row.family);

    EXPECT_EQ(agg.considered, row.considered) << row.family << ": considered";
    check_pinned(agg.ssim_mean_db, row.ssim_mean_db, row.family, "ssim");
    check_pinned(agg.stall_ratio, row.stall_ratio, row.family, "stall ratio");
    check_pinned(agg.startup_delay_s, row.startup_delay_s, row.family,
                 "startup delay");
  }
}

TEST(GoldenTrial, GoldenRunIsThreadCountInvariant) {
  // The pinned values came from a 3-worker run; the serial path must agree
  // exactly (the parallel runner's core guarantee, re-checked here on the
  // golden config so the goldens stay meaningful on any machine).
  TrialConfig parallel_config;
  parallel_config.schemes = {"BBA", "MPC-HM"};
  parallel_config.sessions_per_scheme = 6;
  parallel_config.seed = 20190119;
  parallel_config.scenario = net::ScenarioSpec{"cellular"};
  parallel_config.num_threads = 3;
  TrialConfig serial_config = parallel_config;
  serial_config.num_threads = 1;

  const SchemeArtifacts none;
  const TrialResult parallel = run_trial(parallel_config, none);
  const TrialResult serial = run_trial(serial_config, none);
  ASSERT_EQ(parallel.schemes.size(), serial.schemes.size());
  for (size_t s = 0; s < parallel.schemes.size(); s++) {
    ASSERT_EQ(parallel.schemes[s].considered.size(),
              serial.schemes[s].considered.size());
    for (size_t i = 0; i < parallel.schemes[s].considered.size(); i++) {
      EXPECT_DOUBLE_EQ(parallel.schemes[s].considered[i].ssim_mean_db,
                       serial.schemes[s].considered[i].ssim_mean_db);
      EXPECT_DOUBLE_EQ(parallel.schemes[s].considered[i].stall_time_s,
                       serial.schemes[s].considered[i].stall_time_s);
    }
  }
}

}  // namespace
}  // namespace puffer::exp
