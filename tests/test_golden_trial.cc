// Golden-regression harness: every scenario family runs a small seeded trial
// whose summary statistics are pinned, digit for digit, to the values below.
//
// The trial engine guarantees bit-identical results for a given config —
// across serial/parallel execution and across refactors — so these goldens
// catch silent behaviour changes anywhere in the stack: path generators,
// the TCP/link simulator, ABR schemes, session accounting, or the parallel
// merge. A legitimate behaviour change (e.g. retuning a model) must update
// the table: run with PUFFER_UPDATE_GOLDEN=1 and paste the printed rows.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/trial.hh"
#include "net/scenario.hh"
#include "net/trace_file.hh"
#include "util/rng.hh"

namespace puffer::exp {
namespace {

struct GoldenRow {
  const char* family;
  int64_t considered;      ///< streams surviving Figure A1 exclusion
  double ssim_mean_db;     ///< mean over considered streams
  double stall_ratio;      ///< total stall time / total watch time
  double startup_delay_s;  ///< mean over considered streams
};

// Pinned with PUFFER_UPDATE_GOLDEN=1 at the introduction of the scenario
// engine. Each row aggregates one 2-scheme x 6-session RCT (seed 20190119)
// over the named family, run through the parallel runner (3 workers).
//
// Regenerated when the contention families landed, for two reasons: three
// new rows (cell-shared, edge-contention, wifi-home), and two
// congestion-control bugfixes that legitimately moved every pre-existing
// family's numbers — BBR's min-RTT estimate now seeds from the first RTT
// sample and expires through a 10 s window instead of a permanent 0.100 s
// floor (high-RTT families like satellite gain the most: the old floor
// under-sized cwnd by ~6x there), and the drop-tail link's queue-delay
// estimate now uses the same mid-step capacity sample as the drain and is
// capped at the outage horizon instead of a 1 byte/s floor (trims phantom
// startup delay and stall mass everywhere outages or sharp dips occur).
const std::vector<GoldenRow> kGolden = {
    // clang-format off
    {"cell-shared", 21, 14.775255874071471, 0.054845132219229334, 0.87108185959933893},
    {"cellular", 19, 14.682238272977292, 0.066598201220210124, 0.87811203952988137},
    {"diurnal", 18, 15.836895426488091, 0.00023257649301439452, 0.53211889213643415},
    {"edge-contention", 16, 16.633737779323404, 0.0012180524670664555, 0.48111177082077961},
    {"fcc-emulation", 18, 14.162589087943285, 0.0052588868488099606, 0.69899696432509517},
    {"markov-cs2p", 18, 14.849635019519058, 0.00026120653977208228, 0.58210771222838076},
    {"puffer", 16, 15.158058862258137, 0.0040576666111808001, 0.58191292061067346},
    {"satellite", 17, 16.138400285743899, 0.0048698386182720477, 0.79316795096055781},
    {"trace-replay", 19, 14.70931448677737, 0.011251132199831889, 0.59447421106504295},
    {"wifi-home", 18, 16.754398628277571, 0, 0.44647877603467584},
    {"wifi-oscillating", 16, 16.910485510393709, 0, 0.46461546751322852},
    // clang-format on
};

/// The trace-replay golden needs a trace file; synthesize it deterministically
/// (fixed seed, fixed duration) so the golden values are stable.
std::string golden_trace_path() {
  static const std::string path = [] {
    const std::string file = ::testing::TempDir() + "/golden_fcc.trace";
    Rng rng{4242};
    const net::NetworkPath source =
        net::FccTraceModel{}.sample_path(rng, 1800.0);
    net::TraceFile::from_trace(source.trace).save(file);
    return file;
  }();
  return path;
}

struct Aggregates {
  int64_t considered = 0;
  double ssim_mean_db = 0.0;
  double stall_ratio = 0.0;
  double startup_delay_s = 0.0;
};

Aggregates run_family(const std::string& family) {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM"};
  config.sessions_per_scheme = 6;
  config.seed = 20190119;
  config.num_threads = 3;  // pin through the parallel runner
  config.scenario = net::ScenarioSpec{family};
  if (family == "trace-replay") {
    config.scenario.trace_path = golden_trace_path();
  }
  const SchemeArtifacts none;
  const TrialResult trial = run_trial(config, none);

  Aggregates agg;
  double ssim_sum = 0.0, startup_sum = 0.0, stall_sum = 0.0, watch_sum = 0.0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.considered) {
      agg.considered++;
      ssim_sum += figures.ssim_mean_db;
      startup_sum += figures.startup_delay_s;
      stall_sum += figures.stall_time_s;
      watch_sum += figures.watch_time_s;
    }
  }
  if (agg.considered > 0) {
    agg.ssim_mean_db = ssim_sum / static_cast<double>(agg.considered);
    agg.startup_delay_s = startup_sum / static_cast<double>(agg.considered);
  }
  if (watch_sum > 0.0) {
    agg.stall_ratio = stall_sum / watch_sum;
  }
  return agg;
}

bool update_mode() {
  return std::getenv("PUFFER_UPDATE_GOLDEN") != nullptr;
}

void check_pinned(const double actual, const double golden,
                  const char* family, const char* what) {
  // Tight enough that any change to the simulation shows, loose enough to
  // absorb printf round-tripping of the pinned literals.
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(golden));
  EXPECT_NEAR(actual, golden, tolerance) << family << ": " << what;
}

TEST(GoldenTrial, EveryFamilyMatchesPinnedStatistics) {
  const auto names = net::scenario_registry().names();

  if (update_mode()) {
    // Regeneration walks the registry, not the (possibly stale) table, so a
    // freshly registered family gets a row without hand-authoring one.
    std::printf("// paste into kGolden:\n");
    for (const auto& name : names) {
      const Aggregates agg = run_family(name);
      std::printf("    {\"%s\", %lld, %.17g, %.17g, %.17g},\n", name.c_str(),
                  static_cast<long long>(agg.considered), agg.ssim_mean_db,
                  agg.stall_ratio, agg.startup_delay_s);
    }
    return;
  }

  // The golden table must cover exactly the registered families (and stay
  // sorted, so update diffs are readable).
  ASSERT_EQ(names.size(), kGolden.size())
      << "scenario registry changed: regenerate with PUFFER_UPDATE_GOLDEN=1";
  for (size_t i = 0; i < kGolden.size(); i++) {
    const GoldenRow& row = kGolden[i];
    EXPECT_EQ(names[i], row.family) << "golden table out of sync";
    const Aggregates agg = run_family(row.family);

    EXPECT_EQ(agg.considered, row.considered) << row.family << ": considered";
    check_pinned(agg.ssim_mean_db, row.ssim_mean_db, row.family, "ssim");
    check_pinned(agg.stall_ratio, row.stall_ratio, row.family, "stall ratio");
    check_pinned(agg.startup_delay_s, row.startup_delay_s, row.family,
                 "startup delay");
  }
}

TEST(GoldenTrial, GoldenRunIsThreadCountInvariant) {
  // The pinned values came from a 3-worker run; the serial path must agree
  // exactly (the parallel runner's core guarantee, re-checked here on the
  // golden config so the goldens stay meaningful on any machine).
  TrialConfig parallel_config;
  parallel_config.schemes = {"BBA", "MPC-HM"};
  parallel_config.sessions_per_scheme = 6;
  parallel_config.seed = 20190119;
  parallel_config.scenario = net::ScenarioSpec{"cellular"};
  parallel_config.num_threads = 3;
  TrialConfig serial_config = parallel_config;
  serial_config.num_threads = 1;

  const SchemeArtifacts none;
  const TrialResult parallel = run_trial(parallel_config, none);
  const TrialResult serial = run_trial(serial_config, none);
  ASSERT_EQ(parallel.schemes.size(), serial.schemes.size());
  for (size_t s = 0; s < parallel.schemes.size(); s++) {
    ASSERT_EQ(parallel.schemes[s].considered.size(),
              serial.schemes[s].considered.size());
    for (size_t i = 0; i < parallel.schemes[s].considered.size(); i++) {
      EXPECT_DOUBLE_EQ(parallel.schemes[s].considered[i].ssim_mean_db,
                       serial.schemes[s].considered[i].ssim_mean_db);
      EXPECT_DOUBLE_EQ(parallel.schemes[s].considered[i].stall_time_s,
                       serial.schemes[s].considered[i].stall_time_s);
    }
  }
}

}  // namespace
}  // namespace puffer::exp
