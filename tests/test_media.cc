#include <gtest/gtest.h>

#include <cmath>

#include "media/channel.hh"
#include "media/ladder.hh"
#include "media/ssim.hh"
#include "media/vbr_source.hh"
#include "util/running_stats.hh"

namespace puffer::media {
namespace {

TEST(Ladder, HasTenMonotoneRungs) {
  const auto& ladder = default_ladder();
  ASSERT_EQ(ladder.size(), static_cast<size_t>(kNumRungs));
  for (int r = 0; r < kNumRungs; r++) {
    EXPECT_EQ(ladder[static_cast<size_t>(r)].index, r);
  }
  for (int r = 1; r < kNumRungs; r++) {
    EXPECT_GT(ladder[static_cast<size_t>(r)].nominal_bitrate_mbps,
              ladder[static_cast<size_t>(r - 1)].nominal_bitrate_mbps);
  }
  // Paper section 3.1: ~200 kbps to ~5500 kbps.
  EXPECT_NEAR(ladder.front().nominal_bitrate_mbps, 0.2, 1e-9);
  EXPECT_NEAR(ladder.back().nominal_bitrate_mbps, 5.5, 1e-9);
}

TEST(Ladder, NominalChunkBytesMatchesBitrate) {
  const Rung& top = default_ladder().back();
  const double expected = 5.5e6 / 8.0 * kChunkDurationS;
  EXPECT_NEAR(static_cast<double>(nominal_chunk_bytes(top)), expected, 1.0);
}

TEST(Ssim, DbConversionRoundTrip) {
  for (const double db : {5.0, 10.0, 17.0, 25.0}) {
    EXPECT_NEAR(ssim_to_db(db_to_ssim(db)), db, 1e-9);
  }
}

TEST(Ssim, KnownValue) {
  // SSIM 0.99 -> 20 dB.
  EXPECT_NEAR(ssim_to_db(0.99), 20.0, 1e-9);
}

TEST(Ssim, RateQualityMonotoneInBitrate) {
  double prev = -1e9;
  for (double rate = 0.1; rate < 6.0; rate += 0.1) {
    const double q = rate_quality_db(rate, 1.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Ssim, ComplexityLowersQualityAtFixedRate) {
  EXPECT_GT(rate_quality_db(3.0, 0.5), rate_quality_db(3.0, 2.0));
}

TEST(Ssim, CalibrationAnchors) {
  // Top rung around 17 dB, bottom around 9 dB for typical content
  // (Figure 3b's range).
  EXPECT_NEAR(rate_quality_db(5.5, 1.0), 17.0, 0.5);
  EXPECT_NEAR(rate_quality_db(0.2, 1.0), 9.0, 0.5);
}

TEST(Channels, SixDistinctProfiles) {
  const auto& channels = default_channels();
  ASSERT_EQ(channels.size(), static_cast<size_t>(kNumChannels));
  for (const auto& c : channels) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_GT(c.scene_cut_rate, 0.0);
    EXPECT_LT(c.scene_cut_rate, 1.0);
  }
}

TEST(VbrSource, DeterministicForSameSeed) {
  const ChannelProfile& profile = default_channels()[0];
  VbrVideoSource a{profile, 7}, b{profile, 7};
  for (int i = 0; i < 50; i++) {
    const auto& ca = a.chunk_options(i);
    const auto& cb = b.chunk_options(i);
    for (int r = 0; r < kNumRungs; r++) {
      EXPECT_EQ(ca.version(r).size_bytes, cb.version(r).size_bytes);
      EXPECT_DOUBLE_EQ(ca.version(r).ssim_db, cb.version(r).ssim_db);
    }
  }
}

TEST(VbrSource, DifferentSeedsDiffer) {
  const ChannelProfile& profile = default_channels()[0];
  VbrVideoSource a{profile, 7}, b{profile, 8};
  EXPECT_NE(a.chunk_options(0).version(9).size_bytes,
            b.chunk_options(0).version(9).size_bytes);
}

TEST(VbrSource, RandomAccessConsistentWithSequential) {
  const ChannelProfile& profile = default_channels()[1];
  VbrVideoSource sequential{profile, 3}, random{profile, 3};
  const auto& later = random.chunk_options(30);  // jump ahead first
  for (int i = 0; i <= 30; i++) {
    sequential.chunk_options(i);
  }
  EXPECT_EQ(later.version(0).size_bytes,
            sequential.chunk_options(30).version(0).size_bytes);
}

TEST(VbrSource, SizesScaleWithRung) {
  const ChannelProfile& profile = default_channels()[2];
  VbrVideoSource source{profile, 11};
  // On average the top rung must be much larger than the bottom rung.
  double lo = 0.0, hi = 0.0;
  for (int i = 0; i < 200; i++) {
    const auto& menu = source.chunk_options(i);
    lo += static_cast<double>(menu.version(0).size_bytes);
    hi += static_cast<double>(menu.version(kNumRungs - 1).size_bytes);
  }
  EXPECT_GT(hi / lo, 15.0);  // 5.5 Mbps vs 0.2 Mbps nominal ~ 27x
}

/// Figure 3's premise: within one stream, chunk sizes and qualities vary
/// substantially even at a fixed rung — parameterized across channels.
class VbrVariability : public ::testing::TestWithParam<int> {};

TEST_P(VbrVariability, SizesAndQualityVaryWithinStream) {
  const auto& profile =
      default_channels()[static_cast<size_t>(GetParam())];
  VbrVideoSource source{profile, 1234};
  RunningStats size_mb, ssim_db;
  for (int i = 0; i < 400; i++) {
    const auto& top = source.chunk_options(i).version(kNumRungs - 1);
    size_mb.add(static_cast<double>(top.size_bytes) / 1e6);
    ssim_db.add(top.ssim_db);
  }
  // Coefficient of variation of sizes is significant (paper Fig 3a shows
  // ~0.3-6 MB for the 5500 kbps stream).
  EXPECT_GT(size_mb.stddev() / size_mb.mean(), 0.10);
  // Quality spreads visibly within a stream (Figure 3b).
  EXPECT_GT(ssim_db.stddev(), 0.30);
  // And the mean quality is in a plausible range.
  EXPECT_GT(ssim_db.mean(), 12.0);
  EXPECT_LT(ssim_db.mean(), 21.0);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, VbrVariability,
                         ::testing::Range(0, kNumChannels));

TEST(VbrSource, HigherRungAlmostAlwaysHigherQuality) {
  const ChannelProfile& profile = default_channels()[0];
  VbrVideoSource source{profile, 5};
  int violations = 0;
  const int n = 300;
  for (int i = 0; i < n; i++) {
    const auto& menu = source.chunk_options(i);
    if (menu.version(kNumRungs - 1).ssim_db <= menu.version(0).ssim_db) {
      violations++;
    }
  }
  EXPECT_EQ(violations, 0);  // top vs bottom should never invert
}

TEST(VbrSource, ComplexityIsPositiveAndPersistent) {
  const ChannelProfile& profile = default_channels()[0];
  VbrVideoSource source{profile, 21};
  double correlation_num = 0.0, var = 0.0, mean = 0.0;
  const int n = 500;
  std::vector<double> c(n);
  for (int i = 0; i < n; i++) {
    c[static_cast<size_t>(i)] = source.complexity(i);
    EXPECT_GT(c[static_cast<size_t>(i)], 0.0);
    mean += c[static_cast<size_t>(i)];
  }
  mean /= n;
  for (int i = 0; i + 1 < n; i++) {
    correlation_num += (c[static_cast<size_t>(i)] - mean) *
                       (c[static_cast<size_t>(i) + 1] - mean);
  }
  for (int i = 0; i < n; i++) {
    var += (c[static_cast<size_t>(i)] - mean) * (c[static_cast<size_t>(i)] - mean);
  }
  // Lag-1 autocorrelation should be clearly positive (scene persistence).
  EXPECT_GT(correlation_num / var, 0.3);
}

TEST(VbrSource, MinimumSizeFloor) {
  const ChannelProfile& profile = default_channels()[2];
  VbrVideoSource source{profile, 99};
  for (int i = 0; i < 200; i++) {
    for (int r = 0; r < kNumRungs; r++) {
      EXPECT_GE(source.chunk_options(i).version(r).size_bytes, 2000);
    }
  }
}

}  // namespace
}  // namespace puffer::media
