#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/trace_file.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::net {
namespace {

constexpr double kMbps = 1e6 / 8.0;  // bytes/s per Mbit/s

TEST(TraceFile, ParsesMahimahiFormat) {
  std::istringstream in{"0\n5\n5\n12\n1000\n"};
  const TraceFile trace = TraceFile::parse(in);
  EXPECT_EQ(trace.num_packets(), 5u);
  EXPECT_EQ(trace.delivery_times_ms(),
            (std::vector<uint64_t>{0, 5, 5, 12, 1000}));
  EXPECT_DOUBLE_EQ(trace.duration_s(), 1.0);
}

TEST(TraceFile, ToleratesBlankLinesAndCarriageReturns) {
  std::istringstream in{"3\r\n\n7\r\n\n"};
  const TraceFile trace = TraceFile::parse(in);
  EXPECT_EQ(trace.delivery_times_ms(), (std::vector<uint64_t>{3, 7}));
}

TEST(TraceFile, RejectsGarbage) {
  std::istringstream empty{""};
  EXPECT_THROW(TraceFile::parse(empty), RequirementError);
  std::istringstream words{"12\nhello\n"};
  EXPECT_THROW(TraceFile::parse(words), RequirementError);
  std::istringstream negative{"-5\n"};
  EXPECT_THROW(TraceFile::parse(negative), RequirementError);
  std::istringstream padded_negative{" -5\n"};  // stoull would wrap this
  EXPECT_THROW(TraceFile::parse(padded_negative), RequirementError);
  std::istringstream overflow{"99999999999999999999999\n"};
  EXPECT_THROW(TraceFile::parse(overflow), RequirementError);
  std::istringstream decreasing{"10\n5\n"};
  EXPECT_THROW(TraceFile::parse(decreasing), RequirementError);
  std::istringstream trailing{"12x\n"};
  EXPECT_THROW(TraceFile::parse(trailing), RequirementError);
}

TEST(TraceFile, RejectsNonIntegerTimestampSpellings) {
  // NaN/inf spellings, fractional, scientific and signed numbers are all
  // rejected with the offending line number and content in the message.
  for (const std::string bad : {"nan", "inf", "3.5", "1e3", "+7", "0x10"}) {
    std::istringstream in{"2\n" + bad + "\n"};
    try {
      TraceFile::parse(in);
      FAIL() << "expected RequirementError for '" << bad << "'";
    } catch (const RequirementError& error) {
      const std::string message = error.what();
      EXPECT_NE(message.find("line 2"), std::string::npos) << bad;
      EXPECT_NE(message.find("'" + bad + "'"), std::string::npos) << bad;
    }
  }
}

TEST(TraceFile, BackwardsTimeErrorNamesBothTimestamps) {
  std::istringstream in{"100\n40\n"};
  try {
    TraceFile::parse(in);
    FAIL() << "expected RequirementError";
  } catch (const RequirementError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("goes back in time"), std::string::npos);
    EXPECT_NE(message.find("40"), std::string::npos);
    EXPECT_NE(message.find("100"), std::string::npos);
  }
}

TEST(TraceFile, LoadErrorNamesTheFile) {
  const std::string path = ::testing::TempDir() + "/corrupt.trace";
  {
    std::ofstream out{path};
    out << "5\nbogus\n";
  }
  try {
    TraceFile::load(path);
    FAIL() << "expected RequirementError";
  } catch (const RequirementError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(path), std::string::npos);
    EXPECT_NE(message.find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, RejectsUnsortedConstruction) {
  EXPECT_THROW(TraceFile({3, 1}), RequirementError);
  EXPECT_THROW(TraceFile(std::vector<uint64_t>{}), RequirementError);
}

TEST(TraceFile, SaveLoadRoundTripsExactly) {
  // Random non-decreasing timestamps, including duplicates and a long gap.
  Rng rng{101};
  std::vector<uint64_t> times;
  uint64_t t = 0;
  for (int i = 0; i < 5000; i++) {
    t += static_cast<uint64_t>(rng.uniform_int(0, 40));
    times.push_back(t);
  }
  const TraceFile original{times};

  const std::string path = ::testing::TempDir() + "/roundtrip.trace";
  original.save(path);
  const TraceFile loaded = TraceFile::load(path);
  EXPECT_EQ(original, loaded);  // bit-exact round trip
  std::remove(path.c_str());
}

TEST(TraceFile, StreamRoundTripIsExactToo) {
  const TraceFile original{{0, 1, 1, 2, 500, 10000}};
  std::stringstream buffer;
  original.write(buffer);
  EXPECT_EQ(TraceFile::parse(buffer), original);
}

TEST(TraceFile, LoadMissingFileThrows) {
  EXPECT_THROW(TraceFile::load("/nonexistent/path.trace"), RequirementError);
}

TEST(TraceFile, FromTraceQuantizesCapacity) {
  // 12 Mbit/s for 1 s delivers exactly 1000 packets of 1500 B.
  const ThroughputTrace trace{{12.0 * kMbps}, 1.0};
  const TraceFile file = TraceFile::from_trace(trace);
  EXPECT_EQ(file.num_packets(), 1000u);
  EXPECT_LE(file.duration_s(), 1.0);
  // Delivery opportunities are evenly spaced, one per millisecond, each
  // stamped at the instant its 1500 bytes complete.
  EXPECT_EQ(file.delivery_times_ms().front(), 1u);
  EXPECT_EQ(file.delivery_times_ms().back(), 1000u);
}

TEST(TraceFile, FromTraceSkipsZeroCapacitySegments) {
  const ThroughputTrace trace{{12.0 * kMbps, 0.0, 12.0 * kMbps}, 1.0};
  const TraceFile file = TraceFile::from_trace(trace);
  // No delivery opportunity lands inside the dead middle second (a packet
  // stamped exactly 1000 finished accumulating in the live first second).
  for (const uint64_t t : file.delivery_times_ms()) {
    EXPECT_TRUE(t <= 1000 || t > 2000) << "packet in dead segment at " << t;
  }
  EXPECT_EQ(file.num_packets(), 2000u);
}

TEST(TraceFile, ToTraceRecoversMeanRate) {
  Rng rng{77};
  for (int trial = 0; trial < 20; trial++) {
    // Random piecewise-constant trace between 1 and 30 Mbit/s.
    std::vector<double> rates;
    for (int i = 0; i < 60; i++) {
      rates.push_back(rng.uniform(1.0, 30.0) * kMbps);
    }
    const ThroughputTrace original{rates, 1.0};
    const TraceFile file = TraceFile::from_trace(original);
    const ThroughputTrace recovered = file.to_trace(1.0);
    // Quantization to 1500-byte packets loses less than one packet per
    // second of trace.
    EXPECT_NEAR(recovered.mean_rate(), original.mean_rate(),
                TraceFile::kPacketBytes * 1.5);
  }
}

TEST(TraceFile, ToTraceBinsPackets) {
  // 4 packets in [0,1s), 1 packet in [1s,2s).
  const TraceFile file{{0, 100, 200, 900, 1500}};
  const ThroughputTrace trace = file.to_trace(1.0);
  ASSERT_EQ(trace.num_segments(), 2u);
  EXPECT_DOUBLE_EQ(trace.rates()[0], 4.0 * TraceFile::kPacketBytes);
  EXPECT_DOUBLE_EQ(trace.rates()[1], 1.0 * TraceFile::kPacketBytes);
}

TEST(TraceFile, MeanRateBps) {
  // 1000 packets over one second.
  const ThroughputTrace trace{{12.0 * kMbps}, 1.0};
  const TraceFile file = TraceFile::from_trace(trace);
  EXPECT_NEAR(file.mean_rate_bps(), 12.0 * kMbps, 0.1 * kMbps);
}

/// --- ThroughputTrace property tests under random traces ---

TEST(TraceProperties, CapacityClampingAndMeanRateInvariants) {
  Rng rng{2024};
  for (int trial = 0; trial < 200; trial++) {
    const int n = static_cast<int>(rng.uniform_int(1, 50));
    const double dt = rng.uniform(0.1, 10.0);
    std::vector<double> rates;
    double lo = 1e18, hi = 0.0, sum = 0.0;
    for (int i = 0; i < n; i++) {
      const double rate = rng.uniform(0.0, 100.0) * kMbps;
      rates.push_back(rate);
      lo = std::min(lo, rate);
      hi = std::max(hi, rate);
      sum += rate;
    }
    const ThroughputTrace trace{rates, dt};

    // mean_rate is the arithmetic mean over equal-length segments and lies
    // within [min, max].
    EXPECT_NEAR(trace.mean_rate(), sum / n, 1e-6);
    EXPECT_GE(trace.mean_rate(), lo - 1e-9);
    EXPECT_LE(trace.mean_rate(), hi + 1e-9);

    // capacity_at clamps below zero and beyond the end.
    EXPECT_DOUBLE_EQ(trace.capacity_at(-rng.uniform(0.0, 1e6)),
                     rates.front());
    EXPECT_DOUBLE_EQ(trace.capacity_at(trace.duration() +
                                       rng.uniform(0.0, 1e6)),
                     rates.back());

    // Interior lookups return the exact segment value.
    const int probe = static_cast<int>(rng.uniform_int(0, n - 1));
    const double t = (probe + 0.5) * dt;
    EXPECT_DOUBLE_EQ(trace.capacity_at(t), rates[static_cast<size_t>(probe)]);
  }
}

}  // namespace
}  // namespace puffer::net
