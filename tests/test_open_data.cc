#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "abr/bba.hh"
#include "exp/open_data.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "sim/session.hh"

namespace puffer::exp {
namespace {

constexpr double kMbps = 1e6 / 8.0;

struct InstrumentedRun {
  OpenDataWriter writer;
  sim::StreamOutcome outcome;
};

InstrumentedRun run_instrumented(const double rate_mbps,
                                 const double intent_s = 120.0,
                                 const int64_t stream_id = 7,
                                 const int expt_id = 3) {
  auto run = std::make_unique<InstrumentedRun>();
  const size_t n = 4000;
  const net::NetworkPath path{
      net::ThroughputTrace{std::vector<double>(n, rate_mbps * kMbps), 1.0},
      0.040};
  net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(path)};
  sim::send_preamble(sender);
  abr::Bba bba;
  media::VbrVideoSource video{media::default_channels()[0], 5};
  sim::UserBehavior viewer;
  viewer.watch_intent_s = intent_s;
  viewer.stall_patience_s = 1e9;
  viewer.stall_hazard_per_s = 0.0;
  viewer.quality_hazard_per_s_db = 0.0;
  Rng rng{1};
  auto recorder = run->writer.observer_for(stream_id, expt_id);
  InstrumentedRun result;
  result.outcome =
      sim::run_stream(sender, bba, video, 0, viewer, rng, {}, &recorder);
  // writer holds rows already; move them over.
  result.writer = std::move(run->writer);
  return result;
}

TEST(OpenData, SentAndAckedMatchChunksPlayed) {
  const InstrumentedRun run = run_instrumented(20.0);
  EXPECT_EQ(run.writer.video_sent().size(),
            static_cast<size_t>(run.outcome.chunks_played));
  EXPECT_EQ(run.writer.video_acked().size(), run.writer.video_sent().size());
}

TEST(OpenData, AckAlwaysAfterSend) {
  const InstrumentedRun run = run_instrumented(10.0);
  ASSERT_EQ(run.writer.video_sent().size(), run.writer.video_acked().size());
  for (size_t i = 0; i < run.writer.video_sent().size(); i++) {
    EXPECT_GT(run.writer.video_acked()[i].time,
              run.writer.video_sent()[i].time);
  }
}

TEST(OpenData, TransmissionTimesRecoverableByMatching) {
  // The paper's analysis matches video_acked to video_sent to compute chunk
  // transmission times; on a constant-rate path these should be close to
  // size / rate once warmed up.
  const InstrumentedRun run = run_instrumented(8.0, 120.0);
  const auto& sent = run.writer.video_sent();
  const auto& acked = run.writer.video_acked();
  for (size_t i = 10; i < sent.size(); i++) {
    const double tx = acked[i].time - sent[i].time;
    const double ideal = static_cast<double>(sent[i].size) / (8.0 * kMbps);
    EXPECT_GT(tx, 0.5 * ideal);
    EXPECT_LT(tx, 4.0 * ideal + 0.5);
  }
}

TEST(OpenData, StreamAndExperimentIdsPropagate) {
  const InstrumentedRun run = run_instrumented(10.0, 30.0, 1234, 42);
  for (const auto& row : run.writer.video_sent()) {
    EXPECT_EQ(row.stream_id, 1234);
    EXPECT_EQ(row.expt_id, 42);
  }
  for (const auto& row : run.writer.client_buffer()) {
    EXPECT_EQ(row.stream_id, 1234);
    EXPECT_EQ(row.expt_id, 42);
  }
}

TEST(OpenData, TcpFieldsPlausible) {
  const InstrumentedRun run = run_instrumented(10.0);
  for (const auto& row : run.writer.video_sent()) {
    EXPECT_GT(row.cwnd, 0.0);
    EXPECT_GE(row.in_flight, 0.0);
    EXPECT_GT(row.min_rtt, 0.0);
    EXPECT_GE(row.rtt, row.min_rtt - 1e-9);
    EXPECT_GT(row.delivery_rate, 0.0);
    EXPECT_GT(row.ssim_index, 0.0);
    EXPECT_LT(row.ssim_index, 1.0);
  }
}

TEST(OpenData, ClientBufferEventsWellFormed) {
  const InstrumentedRun run = run_instrumented(20.0);
  bool saw_startup = false;
  double last_cum_rebuf = 0.0;
  for (const auto& row : run.writer.client_buffer()) {
    if (row.event == "startup") {
      saw_startup = true;
    }
    EXPECT_GE(row.buffer, 0.0);
    EXPECT_LE(row.buffer, 15.0 + media::kChunkDurationS + 1e-9);
    EXPECT_GE(row.cum_rebuf, last_cum_rebuf - 1e-9);
    last_cum_rebuf = row.cum_rebuf;
  }
  EXPECT_TRUE(saw_startup);
}

TEST(OpenData, RebufferEventsOnSlowPath) {
  // Force stalls: BBA keeps buffer-based control, but a sub-bitrate path
  // will still starve it occasionally at the lowest rung? Use a path fast
  // enough to start, then rely on a high-rung-forcing check instead:
  // simplest robust trigger is a very slow path where even rung 0 stalls.
  const InstrumentedRun run = run_instrumented(0.15, 120.0);
  int rebuffers = 0;
  for (const auto& row : run.writer.client_buffer()) {
    if (row.event == "rebuffer") {
      rebuffers++;
    }
  }
  EXPECT_GT(rebuffers, 0);
}

TEST(OpenData, CsvHeadersMatchAppendixB) {
  OpenDataWriter writer;
  EXPECT_EQ(writer.video_sent_csv(),
            "time,stream_id,expt_id,size,ssim_index,cwnd,in_flight,min_rtt,"
            "rtt,delivery_rate\n");
  EXPECT_EQ(writer.video_acked_csv(), "time,stream_id,expt_id,chunk_index\n");
  EXPECT_EQ(writer.client_buffer_csv(),
            "time,stream_id,expt_id,event,buffer,cum_rebuf\n");
}

TEST(OpenDataAnalysis, RoundTripsSimulatorTelemetry) {
  // The public-archive analysis must reconstruct what the simulator measured
  // directly: same chunk count, same SSIM statistics, same stall time.
  const InstrumentedRun run = run_instrumented(6.0, 240.0);
  const auto analyzed =
      analyze_open_data(run.writer.video_sent(), run.writer.video_acked(),
                        run.writer.client_buffer());
  ASSERT_EQ(analyzed.size(), 1u);
  const AnalyzedStream& stream = analyzed[0];
  EXPECT_EQ(stream.chunks, run.outcome.chunks_played);
  EXPECT_NEAR(stream.ssim_mean_db, run.outcome.figures.ssim_mean_db, 0.02);
  EXPECT_NEAR(stream.ssim_variation_db,
              run.outcome.figures.ssim_variation_db, 0.02);
  EXPECT_NEAR(stream.stall_time_s, run.outcome.figures.stall_time_s, 0.01);
  // Watch time reconstruction counts whole fetched chunks; allow one
  // buffer's worth of slack.
  EXPECT_NEAR(stream.watch_time_s, run.outcome.figures.watch_time_s, 16.0);
}

TEST(OpenDataAnalysis, SeparatesStreams) {
  OpenDataWriter writer;
  // Two instrumented streams into one writer.
  for (const int64_t stream_id : {1, 2}) {
    const size_t n = 2000;
    const net::NetworkPath path{
        net::ThroughputTrace{std::vector<double>(n, 10.0 * kMbps), 1.0},
        0.040};
    net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                          net::TcpSender::default_queue_capacity(path)};
    sim::send_preamble(sender);
    abr::Bba bba;
    media::VbrVideoSource video{media::default_channels()[0],
                                static_cast<uint64_t>(stream_id)};
    sim::UserBehavior viewer;
    viewer.watch_intent_s = 30.0 * static_cast<double>(stream_id);
    viewer.stall_patience_s = 1e9;
    viewer.stall_hazard_per_s = 0.0;
    viewer.quality_hazard_per_s_db = 0.0;
    Rng rng{static_cast<uint64_t>(stream_id)};
    auto recorder = writer.observer_for(stream_id, 9);
    sim::run_stream(sender, bba, video, 0, viewer, rng, {}, &recorder);
  }
  const auto analyzed = analyze_open_data(
      writer.video_sent(), writer.video_acked(), writer.client_buffer());
  ASSERT_EQ(analyzed.size(), 2u);
  EXPECT_EQ(analyzed[0].stream_id, 1);
  EXPECT_EQ(analyzed[1].stream_id, 2);
  // Stream 2 watched twice as long: roughly twice the chunks.
  EXPECT_GT(analyzed[1].chunks, analyzed[0].chunks);
}

TEST(OpenDataAnalysis, ThroughputEstimatesTrackPath) {
  const InstrumentedRun run = run_instrumented(8.0, 120.0);
  const auto analyzed =
      analyze_open_data(run.writer.video_sent(), run.writer.video_acked(),
                        run.writer.client_buffer());
  ASSERT_EQ(analyzed.size(), 1u);
  EXPECT_GT(analyzed[0].mean_throughput_mbps, 3.0);
  EXPECT_LT(analyzed[0].mean_throughput_mbps, 12.0);
  EXPECT_GT(analyzed[0].mean_tx_time_s, 0.0);
}

TEST(OpenData, WriteAllCreatesThreeFiles) {
  const InstrumentedRun run = run_instrumented(10.0, 30.0);
  const std::string dir = ::testing::TempDir();
  run.writer.write_all(dir, "test_export");
  for (const auto* name :
       {"test_export_video_sent.csv", "test_export_video_acked.csv",
        "test_export_client_buffer.csv"}) {
    const std::string path = dir + "/" + name;
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 20u) << path;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace puffer::exp
