// Round-trip and corruption tests for the in-situ persistence layer
// (exp::save_ttp / try_load_ttp, exp::save_dataset / try_load_dataset): the
// campaign checkpoint embeds both formats, so a truncated or corrupt input
// must come back as nullopt — never a crash, an exception, or a huge
// allocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "exp/insitu.hh"

namespace puffer::exp {
namespace {

fugu::TtpConfig small_config() {
  fugu::TtpConfig config;
  config.history = 4;
  config.hidden_layers = {8};
  config.horizon = 2;
  return config;
}

std::string serialized_ttp(const fugu::TtpModel& model) {
  std::ostringstream out{std::ios::binary};
  save_ttp(model, out);
  return out.str();
}

fugu::TtpDataset sample_dataset() {
  fugu::TtpDataset dataset;
  for (int day = 0; day < 3; day++) {
    fugu::StreamLog stream;
    stream.day = day;
    for (int c = 0; c < 4; c++) {
      fugu::ChunkLog chunk;
      chunk.size_mb = 0.25 * (c + 1) + day;
      chunk.tx_time_s = 0.125 * (c + 1);
      chunk.tcp_at_send.cwnd_pkts = 10.0 + c;
      chunk.tcp_at_send.in_flight_pkts = 5.5 + c;
      chunk.tcp_at_send.min_rtt_s = 0.04;
      chunk.tcp_at_send.srtt_s = 0.0625 + 0.001 * day;
      chunk.tcp_at_send.delivery_rate_bps = 1e6 * (day + 1) + 0.375;
      stream.chunks.push_back(chunk);
    }
    dataset.push_back(stream);
  }
  return dataset;
}

std::string serialized_dataset(const fugu::TtpDataset& dataset) {
  std::ostringstream out{std::ios::binary};
  save_dataset(dataset, out);
  return out.str();
}

TEST(TtpIo, StreamRoundTripIsExact) {
  const fugu::TtpConfig config = small_config();
  const fugu::TtpModel model{config, 77};
  std::istringstream in{serialized_ttp(model), std::ios::binary};
  const auto loaded = try_load_ttp(config, in);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->networks().size(), model.networks().size());
  for (size_t k = 0; k < model.networks().size(); k++) {
    EXPECT_EQ(model.networks()[k], loaded->networks()[k]);
  }
}

TEST(TtpIo, RejectsTruncationAtEveryBoundary) {
  const fugu::TtpConfig config = small_config();
  const std::string bytes = serialized_ttp(fugu::TtpModel{config, 78});
  // Cut inside the header, inside the first network, and one byte short.
  for (const size_t keep : {size_t{0}, size_t{4}, size_t{12}, bytes.size() / 2,
                            bytes.size() - 1}) {
    std::istringstream in{bytes.substr(0, keep), std::ios::binary};
    EXPECT_FALSE(try_load_ttp(config, in).has_value()) << "keep=" << keep;
  }
}

TEST(TtpIo, RejectsBadMagicAndGarbageBody) {
  const fugu::TtpConfig config = small_config();
  std::string bytes = serialized_ttp(fugu::TtpModel{config, 79});
  std::string flipped = bytes;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x5a);
  {
    std::istringstream in{flipped, std::ios::binary};
    EXPECT_FALSE(try_load_ttp(config, in).has_value());
  }
  // Valid header, garbage where the first Mlp should start.
  std::string garbage = bytes.substr(0, 16);
  garbage += std::string(64, '\x42');
  {
    std::istringstream in{garbage, std::ios::binary};
    EXPECT_FALSE(try_load_ttp(config, in).has_value());
  }
}

TEST(TtpIo, RejectsImplausibleParameterCounts) {
  // Individually-plausible layer sizes whose product implies terabytes of
  // weights: the loader must reject the header outright instead of trying
  // (and possibly failing) to allocate.
  const fugu::TtpConfig config = small_config();
  std::ostringstream out{std::ios::binary};
  const auto put = [&out](const uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(0x50545450);                       // "PTTP"
  put(static_cast<uint64_t>(config.horizon));
  put(0x50554d4c);                       // "PUML" — first network
  put(3);                                // depth
  put((1u << 20) - 1);                   // ~2^40 weights in the first layer
  put((1u << 20) - 1);
  put(21);
  std::istringstream in{out.str(), std::ios::binary};
  EXPECT_FALSE(try_load_ttp(config, in).has_value());
}

TEST(TtpIo, RejectsConfigMismatch) {
  const fugu::TtpConfig saved = small_config();
  const std::string bytes = serialized_ttp(fugu::TtpModel{saved, 80});

  fugu::TtpConfig other_horizon = saved;
  other_horizon.horizon = 3;
  {
    std::istringstream in{bytes, std::ios::binary};
    EXPECT_FALSE(try_load_ttp(other_horizon, in).has_value());
  }
  fugu::TtpConfig other_arch = saved;
  other_arch.hidden_layers = {8, 8};
  {
    std::istringstream in{bytes, std::ios::binary};
    EXPECT_FALSE(try_load_ttp(other_arch, in).has_value());
  }
}

TEST(TtpIo, MissingFileYieldsNullopt) {
  EXPECT_FALSE(
      try_load_ttp(small_config(), "/no/such/directory/model.bin").has_value());
}

TEST(DatasetIo, StreamRoundTripIsExact) {
  const fugu::TtpDataset dataset = sample_dataset();
  std::istringstream in{serialized_dataset(dataset), std::ios::binary};
  const auto loaded = try_load_dataset(in);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), dataset.size());
  for (size_t s = 0; s < dataset.size(); s++) {
    EXPECT_EQ((*loaded)[s].day, dataset[s].day);
    ASSERT_EQ((*loaded)[s].chunks.size(), dataset[s].chunks.size());
    for (size_t c = 0; c < dataset[s].chunks.size(); c++) {
      const fugu::ChunkLog& a = dataset[s].chunks[c];
      const fugu::ChunkLog& b = (*loaded)[s].chunks[c];
      EXPECT_EQ(a.size_mb, b.size_mb);
      EXPECT_EQ(a.tx_time_s, b.tx_time_s);
      EXPECT_EQ(a.tcp_at_send.cwnd_pkts, b.tcp_at_send.cwnd_pkts);
      EXPECT_EQ(a.tcp_at_send.in_flight_pkts, b.tcp_at_send.in_flight_pkts);
      EXPECT_EQ(a.tcp_at_send.min_rtt_s, b.tcp_at_send.min_rtt_s);
      EXPECT_EQ(a.tcp_at_send.srtt_s, b.tcp_at_send.srtt_s);
      EXPECT_EQ(a.tcp_at_send.delivery_rate_bps,
                b.tcp_at_send.delivery_rate_bps);
    }
  }
}

TEST(DatasetIo, RejectsTruncationAtEveryBoundary) {
  const std::string bytes = serialized_dataset(sample_dataset());
  for (const size_t keep : {size_t{0}, size_t{8}, size_t{20}, bytes.size() / 2,
                            bytes.size() - 1}) {
    std::istringstream in{bytes.substr(0, keep), std::ios::binary};
    EXPECT_FALSE(try_load_dataset(in).has_value()) << "keep=" << keep;
  }
}

TEST(DatasetIo, RejectsBadMagic) {
  std::string bytes = serialized_dataset(sample_dataset());
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5a);
  std::istringstream in{bytes, std::ios::binary};
  EXPECT_FALSE(try_load_dataset(in).has_value());
}

TEST(DatasetIo, HugeClaimedCountsFailFastWithoutAllocating) {
  // A corrupt header claiming 2^40 streams must be rejected by the payload
  // reads hitting EOF — not honored by a reservation of terabytes.
  const std::string valid = serialized_dataset(sample_dataset());
  std::string bytes = valid.substr(0, 8);  // keep the magic
  const uint64_t huge = uint64_t{1} << 40;
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::istringstream in{bytes, std::ios::binary};
  EXPECT_FALSE(try_load_dataset(in).has_value());
}

TEST(DatasetIo, MissingFileYieldsNullopt) {
  EXPECT_FALSE(try_load_dataset("/no/such/directory/data.bin").has_value());
}

TEST(DatasetIo, EmptyDatasetRoundTrips) {
  std::istringstream in{serialized_dataset(fugu::TtpDataset{}),
                        std::ios::binary};
  const auto loaded = try_load_dataset(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace puffer::exp
