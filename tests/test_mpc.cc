#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

#include "abr/mpc.hh"
#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "test_helpers.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::abr {
namespace {

using test::make_lookahead;
using test::record_at_throughput;

/// Predictor whose behaviour is fully scripted by the test.
class ScriptedPredictor final : public TxTimePredictor {
 public:
  explicit ScriptedPredictor(
      std::function<TxTimeDistribution(int, int64_t)> fn)
      : fn_(std::move(fn)) {}

  void begin_decision(const AbrObservation&) override {}
  TxTimeDistribution predict(const int step, const int64_t size) override {
    return fn_(step, size);
  }
  void on_chunk_complete(const ChunkRecord&) override {}
  void reset_session() override {}

 private:
  std::function<TxTimeDistribution(int, int64_t)> fn_;
};

ScriptedPredictor constant_throughput(const double bps) {
  return ScriptedPredictor{[bps](int, const int64_t size) {
    return TxTimeDistribution{
        {static_cast<double>(size) / bps, 1.0}};
  }};
}

TEST(Mpc, FastNetworkFullBufferPicksTopRung) {
  StochasticMpc mpc;
  ScriptedPredictor predictor = constant_throughput(100e6 / 8.0);  // 100 Mbps
  AbrObservation obs;
  obs.buffer_s = 14.0;
  obs.prev_ssim_db = 17.0;
  const auto lookahead = make_lookahead(5);
  EXPECT_EQ(mpc.plan(obs, lookahead, predictor), media::kNumRungs - 1);
}

TEST(Mpc, SlowNetworkEmptyBufferPicksBottomRung) {
  StochasticMpc mpc;
  ScriptedPredictor predictor = constant_throughput(0.3e6 / 8.0);  // 0.3 Mbps
  AbrObservation obs;
  obs.buffer_s = 0.0;
  obs.prev_ssim_db = -1.0;
  const auto lookahead = make_lookahead(5);
  EXPECT_EQ(mpc.plan(obs, lookahead, predictor), 0);
}

TEST(Mpc, ChoiceMonotoneInThroughput) {
  StochasticMpc mpc;
  AbrObservation obs;
  obs.buffer_s = 8.0;
  obs.prev_ssim_db = 14.0;
  const auto lookahead = make_lookahead(5);
  int prev_choice = 0;
  for (const double mbps : {0.3, 1.0, 2.0, 4.0, 8.0, 20.0, 60.0}) {
    ScriptedPredictor predictor = constant_throughput(mbps * 1e6 / 8.0);
    const int choice = mpc.plan(obs, lookahead, predictor);
    EXPECT_GE(choice, prev_choice) << "at " << mbps << " Mbps";
    prev_choice = choice;
  }
  EXPECT_EQ(prev_choice, media::kNumRungs - 1);
}

TEST(Mpc, StallPenaltyDominatesNearEmptyBuffer) {
  // At ~2 Mbit/s with 0.5 s of buffer, sending a top-rung (5.5 Mbit/s) chunk
  // stalls for seconds; MPC must not pick it even though its quality is best.
  StochasticMpc mpc;
  ScriptedPredictor predictor = constant_throughput(2e6 / 8.0);
  AbrObservation obs;
  obs.buffer_s = 0.5;
  obs.prev_ssim_db = 16.0;
  const auto lookahead = make_lookahead(5);
  const int choice = mpc.plan(obs, lookahead, predictor);
  EXPECT_LE(choice, 2);
}

TEST(Mpc, QualityVariationPenaltySmoothsSwitches) {
  // Previous chunk was low quality; with a huge lambda the controller must
  // not jump straight to the top even on a fast network.
  MpcConfig smooth_config;
  smooth_config.lambda = 50.0;
  StochasticMpc smooth{smooth_config};
  StochasticMpc plain;  // lambda = 1

  ScriptedPredictor predictor = constant_throughput(100e6 / 8.0);
  AbrObservation obs;
  obs.buffer_s = 10.0;
  obs.prev_ssim_db = 9.0;  // bottom-rung quality
  const auto lookahead = make_lookahead(5);
  const int smooth_choice = smooth.plan(obs, lookahead, predictor);
  const int plain_choice = plain.plan(obs, lookahead, predictor);
  EXPECT_LT(smooth_choice, plain_choice);
}

TEST(Mpc, FirstChunkHasNoVariationPenalty) {
  MpcConfig config;
  config.lambda = 1000.0;  // would crush any switch if prev existed
  StochasticMpc mpc{config};
  ScriptedPredictor predictor = constant_throughput(100e6 / 8.0);
  AbrObservation obs;
  obs.buffer_s = 14.0;
  obs.prev_ssim_db = -1.0;  // no previous chunk
  const auto lookahead = make_lookahead(1);
  EXPECT_EQ(mpc.plan(obs, lookahead, predictor), media::kNumRungs - 1);
}

/// Exhaustive open-loop enumeration. For deterministic (point-mass)
/// predictors, the closed-loop DP optimum and the open-loop optimum agree,
/// so this is an independent oracle for the value iteration.
double brute_force_value(const std::vector<media::ChunkOptions>& lookahead,
                         const int h, const int horizon, const double buffer,
                         const double prev_ssim,
                         const std::function<double(int, int64_t)>& tx_time,
                         const MpcConfig& config, int* best_action) {
  if (h == horizon) {
    return 0.0;
  }
  double best = -1e18;
  for (int a = 0; a < media::kNumRungs; a++) {
    const auto& v = lookahead[static_cast<size_t>(h)].version(a);
    const double t = tx_time(h, v.size_bytes);
    double qoe = v.ssim_db;
    if (prev_ssim >= 0.0) {
      qoe -= config.lambda * std::abs(v.ssim_db - prev_ssim);
    }
    qoe -= config.mu * std::max(t - buffer, 0.0);
    const double next_buffer = std::min(
        std::max(buffer - t, 0.0) + config.chunk_duration_s,
        config.max_buffer_s);
    const double value =
        qoe + brute_force_value(lookahead, h + 1, horizon, next_buffer,
                                v.ssim_db, tx_time, config, nullptr);
    if (value > best) {
      best = value;
      if (best_action != nullptr) {
        *best_action = a;
      }
    }
  }
  return best;
}

/// Parameterized sweep: value iteration must match brute force across
/// throughputs and buffer levels (with fine buffer bins to make the
/// discretization error negligible).
class MpcVsBruteForce
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MpcVsBruteForce, MatchesExhaustiveSearch) {
  const auto& [mbps, buffer] = GetParam();
  MpcConfig config;
  config.horizon = 3;
  config.buffer_bin_s = 0.02;
  StochasticMpc mpc{config};

  const double bps = mbps * 1e6 / 8.0;
  auto tx_time = [bps](int, const int64_t size) {
    return std::clamp(static_cast<double>(size) / bps, 1e-3, 60.0);
  };
  ScriptedPredictor predictor{[&tx_time](const int step, const int64_t size) {
    return TxTimeDistribution{{tx_time(step, size), 1.0}};
  }};

  AbrObservation obs;
  obs.buffer_s = buffer;
  obs.prev_ssim_db = 14.0;
  const auto lookahead = make_lookahead(3);

  const int mpc_choice = mpc.plan(obs, lookahead, predictor);
  int brute_choice = -1;
  const double brute_value =
      brute_force_value(lookahead, 0, 3, buffer, 14.0, tx_time, config,
                        &brute_choice);

  // The chosen actions' true values must agree closely (ties in value can
  // legitimately flip the argmax, so compare values, not indices).
  int scratch = -1;
  (void)scratch;
  // Compute the true value of MPC's chosen first action under brute force.
  const auto& v = lookahead[0].version(mpc_choice);
  const double t = tx_time(0, v.size_bytes);
  double qoe = v.ssim_db - config.lambda * std::abs(v.ssim_db - 14.0) -
               config.mu * std::max(t - buffer, 0.0);
  const double next_buffer =
      std::min(std::max(buffer - t, 0.0) + config.chunk_duration_s,
               config.max_buffer_s);
  const double mpc_choice_value =
      qoe + brute_force_value(lookahead, 1, 3, next_buffer, v.ssim_db, tx_time,
                              config, nullptr);
  EXPECT_NEAR(mpc_choice_value, brute_value, 0.35)
      << "mpc picked " << mpc_choice << ", brute force " << brute_choice;
  EXPECT_NEAR(mpc.last_plan_value(), brute_value, 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpcVsBruteForce,
    ::testing::Combine(::testing::Values(0.5, 1.5, 4.0, 12.0, 50.0),
                       ::testing::Values(0.0, 2.0, 7.0, 14.0)));

/// The heart of Fugu's "prediction with uncertainty" advantage (section 4.6):
/// when the transmission time is bimodal (usually fast, occasionally awful),
/// a point-estimate controller gambles while the stochastic controller hedges.
TEST(Mpc, StochasticHedgesAgainstBimodalRisk) {
  MpcConfig config;
  config.horizon = 1;
  config.lambda = 0.0;  // isolate the stall-risk tradeoff
  StochasticMpc mpc{config};

  // Menu with two rungs that matter: rung 9 (big, great quality) and the
  // rest. Big chunk: 85% fast (0.3 s), 15% disastrous (11 s). Small chunks:
  // always fast.
  auto risky = [](const int /*step*/, const int64_t size) {
    if (size > 1'000'000) {
      return TxTimeDistribution{{0.3, 0.85}, {11.0, 0.15}};
    }
    return TxTimeDistribution{{0.1, 1.0}};
  };
  ScriptedPredictor stochastic_predictor{risky};
  // Point-estimate version: collapse to the most likely outcome.
  ScriptedPredictor point_predictor{[&risky](const int step, const int64_t size) {
    TxTimeDistribution dist = risky(step, size);
    TxTimeOutcome best = dist[0];
    for (const auto& outcome : dist) {
      if (outcome.probability > best.probability) {
        best = outcome;
      }
    }
    return TxTimeDistribution{{best.time_s, 1.0}};
  }};

  AbrObservation obs;
  obs.buffer_s = 3.0;
  obs.prev_ssim_db = 16.0;
  const auto lookahead = make_lookahead(1);

  const int stochastic_choice = mpc.plan(obs, lookahead, stochastic_predictor);
  const int point_choice = mpc.plan(obs, lookahead, point_predictor);

  // Point estimate sees "0.3 s, safe" and takes the top rung; the stochastic
  // controller prices in the 15% * mu * 8 s stall and refuses.
  EXPECT_EQ(point_choice, media::kNumRungs - 1);
  EXPECT_LT(stochastic_choice, media::kNumRungs - 1);

  // And the stochastic choice has higher true expected QoE.
  auto expected_qoe = [&](const int rung) {
    const auto& v = lookahead[0].version(rung);
    double total = 0.0;
    for (const auto& outcome : risky(0, v.size_bytes)) {
      total += outcome.probability *
               (v.ssim_db - 100.0 * std::max(outcome.time_s - 3.0, 0.0));
    }
    return total;
  };
  EXPECT_GT(expected_qoe(stochastic_choice), expected_qoe(point_choice));
}

TEST(Mpc, PrunesNegligibleOutcomesWithoutChangingDecision) {
  MpcConfig tight;
  tight.prune_probability = 1e-3;
  tight.lambda = 0.0;  // distinct per-rung QoE values avoid argmax ties
  MpcConfig none = tight;
  none.prune_probability = 0.0;
  StochasticMpc pruned{tight}, full{none};

  auto noisy = [](const int, const int64_t size) {
    // Two dominant outcomes plus sub-threshold jitter outcomes whose times
    // are close to the dominant ones — genuinely negligible mass AND value.
    TxTimeDistribution dist;
    const double base = static_cast<double>(size) / (2e6 / 8.0);
    dist.push_back({base, 0.60});
    dist.push_back({base * 1.5, 0.3996});
    for (int i = 0; i < 8; i++) {
      dist.push_back({base * (1.0 + 0.05 * i), 0.0004 / 8});
    }
    return dist;
  };
  ScriptedPredictor p1{noisy}, p2{noisy};

  AbrObservation obs;
  obs.buffer_s = 6.0;
  obs.prev_ssim_db = 14.0;
  const auto lookahead = make_lookahead(5);
  const int pruned_choice = pruned.plan(obs, lookahead, p1);
  const int full_choice = full.plan(obs, lookahead, p2);
  EXPECT_EQ(pruned_choice, full_choice);
  EXPECT_NEAR(pruned.last_plan_value(), full.last_plan_value(), 0.2);
}

/// The iterative backward sweep must agree with the retained recursive
/// reference implementation on randomized lookaheads, horizons, buffers and
/// multi-outcome distributions. The two differ only by floating-point
/// reassociation of the expectation sum, so values match to ~1e-6 and the
/// argmax may flip only on a floating tie.
TEST(Mpc, IterativeSweepMatchesRecursiveReference) {
  Rng meta{909};
  for (int trial = 0; trial < 60; trial++) {
    MpcConfig config;
    config.horizon = 1 + static_cast<int>(meta.uniform_int(0, 4));
    config.lambda = meta.uniform(0.0, 2.0);
    const uint64_t dist_seed = meta.engine()();
    const int max_outcomes = 1 + trial % 5;
    // Pure function of (step, size): both plans see identical distributions.
    ScriptedPredictor predictor{
        [dist_seed, max_outcomes](const int step, const int64_t size) {
          Rng rng{dist_seed ^ (static_cast<uint64_t>(step) << 48) ^
                  static_cast<uint64_t>(size)};
          const int n =
              1 + static_cast<int>(rng.uniform_int(0, max_outcomes - 1));
          TxTimeDistribution dist;
          double mass = 0.0;
          for (int i = 0; i < n; i++) {
            dist.push_back({rng.uniform(0.05, 8.0), rng.uniform(0.05, 1.0)});
            mass += dist.back().probability;
          }
          for (auto& outcome : dist) {
            outcome.probability /= mass;
          }
          return dist;
        }};

    AbrObservation obs;
    obs.buffer_s = meta.uniform(0.0, 15.0);
    obs.prev_ssim_db = trial % 3 == 0 ? -1.0 : meta.uniform(9.0, 17.0);
    // Lookaheads both shorter and longer than the horizon.
    const auto lookahead =
        make_lookahead(std::max(1, config.horizon - trial % 2));

    StochasticMpc mpc{config};
    const int iterative = mpc.plan(obs, lookahead, predictor);
    const double iterative_value = mpc.last_plan_value();
    const std::vector<double> iterative_roots{mpc.last_root_values().begin(),
                                              mpc.last_root_values().end()};

    const int reference = mpc.plan_reference(obs, lookahead, predictor);
    const double reference_value = mpc.last_plan_value();
    const std::span<const double> reference_roots = mpc.last_root_values();

    const double tol = 1e-6 * std::max(1.0, std::abs(reference_value));
    EXPECT_NEAR(iterative_value, reference_value, tol) << "trial " << trial;
    ASSERT_EQ(iterative_roots.size(), reference_roots.size());
    for (size_t a = 0; a < iterative_roots.size(); a++) {
      EXPECT_NEAR(iterative_roots[a], reference_roots[a], tol)
          << "trial " << trial << " action " << a;
    }
    if (iterative != reference) {
      EXPECT_NEAR(reference_roots[static_cast<size_t>(iterative)],
                  reference_roots[static_cast<size_t>(reference)], tol)
          << "trial " << trial << ": argmax flip without a value tie";
    }
  }
}

/// chunk_qoe treats a negative previous SSIM as "no previous quality" and
/// skips the variation term; the sweep's hoisted switch-penalty table must
/// honor the same rule for interior steps.
TEST(Mpc, IterativeMatchesReferenceWithNegativeSsimVersions) {
  MpcConfig config;
  config.lambda = 25.0;  // make any variation-term mismatch decisive
  StochasticMpc mpc{config};
  ScriptedPredictor predictor{[](const int, const int64_t size) {
    return TxTimeDistribution{{static_cast<double>(size) / (3e6 / 8.0), 0.8},
                              {static_cast<double>(size) / (0.8e6 / 8.0), 0.2}};
  }};
  auto lookahead = make_lookahead(5);
  for (auto& options : lookahead) {
    options.versions[0].ssim_db = -1.0;  // e.g. an unavailable encoding
    options.versions[1].ssim_db = -0.5;
  }
  AbrObservation obs;
  obs.buffer_s = 5.0;
  obs.prev_ssim_db = 14.0;
  const int iterative = mpc.plan(obs, lookahead, predictor);
  const double iterative_value = mpc.last_plan_value();
  const int reference = mpc.plan_reference(obs, lookahead, predictor);
  EXPECT_EQ(iterative, reference);
  EXPECT_NEAR(iterative_value, mpc.last_plan_value(),
              1e-6 * std::max(1.0, std::abs(mpc.last_plan_value())));
}

TEST(Mpc, IterativePlanDeterministicAcrossRepeatedRuns) {
  StochasticMpc mpc;
  ScriptedPredictor predictor{[](const int, const int64_t size) {
    return TxTimeDistribution{
        {static_cast<double>(size) / (4e6 / 8.0), 0.7},
        {static_cast<double>(size) / (1e6 / 8.0), 0.3}};
  }};
  AbrObservation obs;
  obs.buffer_s = 6.0;
  obs.prev_ssim_db = 14.0;
  const auto lookahead = make_lookahead(5);
  const int first = mpc.plan(obs, lookahead, predictor);
  const double first_value = mpc.last_plan_value();
  for (int repeat = 0; repeat < 3; repeat++) {
    EXPECT_EQ(mpc.plan(obs, lookahead, predictor), first);
    EXPECT_EQ(mpc.last_plan_value(), first_value);  // bitwise
  }
}

TEST(Mpc, ShortLookaheadStillWorks) {
  StochasticMpc mpc;
  ScriptedPredictor predictor = constant_throughput(8e6 / 8.0);
  AbrObservation obs;
  obs.buffer_s = 8.0;
  obs.prev_ssim_db = 14.0;
  const auto lookahead = make_lookahead(1);  // live edge: only one chunk known
  const int choice = mpc.plan(obs, lookahead, predictor);
  EXPECT_GE(choice, 0);
  EXPECT_LT(choice, media::kNumRungs);
}

TEST(Mpc, EmptyLookaheadRejected) {
  StochasticMpc mpc;
  ScriptedPredictor predictor = constant_throughput(1e6);
  AbrObservation obs;
  EXPECT_THROW(mpc.plan(obs, {}, predictor), RequirementError);
}

TEST(MpcAbr, EndToEndWithHarmonicMean) {
  MpcAbr abr{"MPC-HM", std::make_unique<HarmonicMeanPredictor>()};
  AbrObservation obs;
  obs.buffer_s = 10.0;
  obs.prev_ssim_db = -1.0;
  const auto lookahead = make_lookahead(5);

  // Feed a fast history; the controller should go high.
  for (int i = 0; i < 5; i++) {
    abr.on_chunk_complete(record_at_throughput(i, 1e6, 8e6));
  }
  const int fast_choice = abr.choose_rung(obs, lookahead);

  abr.reset_session();
  for (int i = 0; i < 5; i++) {
    abr.on_chunk_complete(record_at_throughput(i, 1e6, 0.1e6));
  }
  const int slow_choice = abr.choose_rung(obs, lookahead);
  EXPECT_GT(fast_choice, slow_choice);
}

TEST(MpcAbr, RequiresPredictor) {
  EXPECT_THROW(MpcAbr("x", nullptr), RequirementError);
}

}  // namespace
}  // namespace puffer::abr
