#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/bootstrap.hh"
#include "stats/ccdf.hh"
#include "stats/summary.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::stats {
namespace {

TEST(Quantile, KnownValues) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.35), 3.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), RequirementError);
  EXPECT_THROW(quantile({1.0}, 1.5), RequirementError);
}

TEST(ConfidenceInterval, RelativeHalfWidth) {
  const ConfidenceInterval ci{/*point=*/0.002, /*lower=*/0.0018,
                              /*upper=*/0.0022};
  EXPECT_NEAR(ci.relative_half_width(), 0.10, 1e-9);
}

TEST(ConfidenceInterval, RelativeHalfWidthGuardsZeroPoint) {
  // A zero point estimate with real width: relative width is unbounded.
  const ConfidenceInterval zero_point{0.0, -0.01, 0.01};
  EXPECT_TRUE(std::isinf(zero_point.relative_half_width()));
  EXPECT_GT(zero_point.relative_half_width(), 0.0);

  // Fully degenerate (a scheme that never stalled): deliberately 0.
  const ConfidenceInterval degenerate{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(degenerate.relative_half_width(), 0.0);

  // Near-zero point estimates no longer divide into a denormal.
  const ConfidenceInterval tiny{1e-300, 0.0, 2e-300};
  EXPECT_TRUE(std::isinf(tiny.relative_half_width()));

  // A healthy point estimate still reports the plain ratio.
  const ConfidenceInterval healthy{0.5, 0.4, 0.6};
  EXPECT_NEAR(healthy.relative_half_width(), 0.2, 1e-12);
}

TEST(ConfidenceInterval, OverlapLogic) {
  const ConfidenceInterval a{1.0, 0.9, 1.1};
  const ConfidenceInterval b{1.05, 1.0, 1.2};
  const ConfidenceInterval c{2.0, 1.5, 2.5};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(BootstrapRatio, PointEstimateIsRatioOfSums) {
  const std::vector<RatioObservation> streams = {
      {1.0, 100.0}, {0.0, 100.0}, {3.0, 200.0}};
  Rng rng{1};
  const auto ci = bootstrap_ratio_ci(streams, rng, 200);
  EXPECT_NEAR(ci.point, 4.0 / 400.0, 1e-12);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
}

TEST(BootstrapRatio, DegenerateSampleHasZeroWidth) {
  const std::vector<RatioObservation> streams(50, RatioObservation{1.0, 10.0});
  Rng rng{2};
  const auto ci = bootstrap_ratio_ci(streams, rng, 200);
  EXPECT_DOUBLE_EQ(ci.lower, 0.1);
  EXPECT_DOUBLE_EQ(ci.upper, 0.1);
}

TEST(BootstrapRatio, WidthShrinksWithSampleSize) {
  Rng data_rng{3};
  auto make_sample = [&](const int n) {
    std::vector<RatioObservation> streams;
    for (int i = 0; i < n; i++) {
      const double watch = data_rng.lognormal(4.0, 1.0);
      const double stall =
          data_rng.bernoulli(0.05) ? data_rng.exponential(0.2) : 0.0;
      streams.push_back({stall, watch});
    }
    return streams;
  };
  Rng rng{4};
  const auto small = bootstrap_ratio_ci(make_sample(100), rng, 400);
  const auto large = bootstrap_ratio_ci(make_sample(10000), rng, 400);
  EXPECT_GT(small.relative_half_width(), large.relative_half_width());
}

/// The paper's headline statistical point (section 3.4): even with a lot of
/// data the stall-ratio CI stays wide, because rebuffering is rare and heavy
/// tailed. With ~2000 streams the relative half-width far exceeds 5%.
TEST(BootstrapRatio, StallRatioUncertaintyIsSubstantial) {
  Rng data_rng{5};
  std::vector<RatioObservation> streams;
  for (int i = 0; i < 2000; i++) {
    const double watch = data_rng.lognormal(5.0, 1.3);
    const double stall =
        data_rng.bernoulli(0.03) ? watch * data_rng.uniform(0.001, 0.1) : 0.0;
    streams.push_back({stall, watch});
  }
  Rng rng{6};
  const auto ci = bootstrap_ratio_ci(streams, rng, 500);
  EXPECT_GT(ci.relative_half_width(), 0.05);
}

TEST(BootstrapMean, CoversTrueMeanMostOfTheTime) {
  // Repeated-experiment coverage of the 95% CI: run 60 experiments and
  // require the true mean to be covered at least 80% of the time (loose
  // bound; percentile bootstrap is approximate at small n).
  Rng rng{7};
  int covered = 0;
  const int experiments = 60;
  for (int e = 0; e < experiments; e++) {
    std::vector<double> sample(80);
    for (auto& x : sample) {
      x = rng.normal(10.0, 3.0);
    }
    const auto ci = bootstrap_mean_ci(sample, rng, 300);
    if (ci.lower <= 10.0 && 10.0 <= ci.upper) {
      covered++;
    }
  }
  EXPECT_GE(covered, static_cast<int>(0.80 * experiments));
}

TEST(BootstrapStatistic, CustomStatistic) {
  const std::vector<double> values = {1, 2, 3, 4, 100};
  Rng rng{8};
  const auto ci = bootstrap_statistic_ci(
      values,
      [](const std::span<const double> s) {
        std::vector<double> copy{s.begin(), s.end()};
        return quantile(copy, 0.5);
      },
      rng, 200);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
}

TEST(Ccdf, MonotoneNonIncreasingAndSpansRange) {
  Rng rng{9};
  std::vector<double> values(500);
  for (auto& v : values) {
    v = rng.lognormal(0.0, 1.0);
  }
  const auto curve = empirical_ccdf(values, 40);
  ASSERT_GE(curve.size(), 2u);
  for (size_t i = 1; i < curve.size(); i++) {
    EXPECT_GE(curve[i].value, curve[i - 1].value);
    EXPECT_LE(curve[i].probability, curve[i - 1].probability + 1e-12);
  }
  EXPECT_DOUBLE_EQ(curve.back().probability, 0.0);
}

TEST(Ccdf, MedianPointNearHalf) {
  std::vector<double> values(1001);
  for (size_t i = 0; i < values.size(); i++) {
    values[i] = static_cast<double>(i);
  }
  const auto curve = empirical_ccdf(values, 100);
  for (const auto& point : curve) {
    if (std::abs(point.value - 500.0) < 6.0) {
      EXPECT_NEAR(point.probability, 0.5, 0.02);
    }
  }
}

TEST(Ccdf, EmptyInputRejected) {
  EXPECT_THROW(static_cast<void>(empirical_ccdf({})), RequirementError);
  EXPECT_THROW(static_cast<void>(empirical_cdf({})), RequirementError);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(static_cast<void>(empirical_ccdf(one, 1)), RequirementError);
}

TEST(Ccdf, SingleSample) {
  const std::vector<double> one = {3.5};
  const auto ccdf = empirical_ccdf(one);
  ASSERT_GE(ccdf.size(), 1u);
  for (const auto& point : ccdf) {
    EXPECT_DOUBLE_EQ(point.value, 3.5);
  }
  EXPECT_DOUBLE_EQ(ccdf.front().probability, 0.0);  // P(X > max) = 0

  const auto cdf = empirical_cdf(one);
  EXPECT_DOUBLE_EQ(cdf.front().value, 3.5);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
}

TEST(Ccdf, AllEqualSamplesCollapseToOneValue) {
  const std::vector<double> values(100, 7.0);
  const auto ccdf = empirical_ccdf(values, 10);
  for (const auto& point : ccdf) {
    EXPECT_DOUBLE_EQ(point.value, 7.0);
    EXPECT_GE(point.probability, 0.0);
    EXPECT_LE(point.probability, 1.0);
  }
  EXPECT_DOUBLE_EQ(ccdf.back().probability, 0.0);
  const auto cdf = empirical_cdf(values, 10);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
}

TEST(Ccdf, DownsamplingRespectsMaxPoints) {
  Rng rng{99};
  for (const int n : {1, 2, 59, 60, 61, 500, 1000, 10007}) {
    std::vector<double> values(static_cast<size_t>(n));
    for (auto& v : values) {
      v = rng.uniform();
    }
    for (const int max_points : {2, 10, 60}) {
      const auto curve = empirical_ccdf(values, max_points);
      // At most max_points strided entries plus the appended maximum.
      EXPECT_LE(curve.size(), static_cast<size_t>(max_points) + 1)
          << "n=" << n << " max_points=" << max_points;
      EXPECT_GE(curve.size(), 2u);
      for (size_t i = 1; i < curve.size(); i++) {
        EXPECT_GE(curve[i].value, curve[i - 1].value);
      }
      EXPECT_DOUBLE_EQ(curve.back().probability, 0.0);
    }
  }
}

TEST(Cdf, ComplementOfCcdf) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto cdf = empirical_cdf(values, 10);
  const auto ccdf = empirical_ccdf(values, 10);
  ASSERT_EQ(cdf.size(), ccdf.size());
  for (size_t i = 0; i < cdf.size(); i++) {
    EXPECT_NEAR(cdf[i].probability + ccdf[i].probability, 1.0, 1e-12);
  }
}

StreamFigures make_stream(const double watch, const double stall,
                          const double ssim, const double variation = 0.5) {
  StreamFigures f;
  f.watch_time_s = watch;
  f.stall_time_s = stall;
  f.ssim_mean_db = ssim;
  f.ssim_variation_db = variation;
  f.mean_bitrate_mbps = 3.0;
  f.startup_delay_s = 0.5;
  f.first_chunk_ssim_db = 10.0;
  return f;
}

TEST(Summary, DurationWeightedSsim) {
  // A long good stream and a short bad one: the weighted mean leans long.
  const std::vector<StreamFigures> streams = {make_stream(900.0, 0.0, 17.0),
                                              make_stream(100.0, 0.0, 7.0)};
  Rng rng{10};
  const auto summary = summarize_scheme(streams, rng, 100);
  EXPECT_NEAR(summary.ssim_mean_db, 16.0, 1e-9);
  EXPECT_EQ(summary.num_streams, 2);
  EXPECT_DOUBLE_EQ(summary.total_watch_time_s, 1000.0);
}

TEST(Summary, StallRatioAggregatesAcrossStreams) {
  const std::vector<StreamFigures> streams = {make_stream(500.0, 1.0, 16.0),
                                              make_stream(500.0, 0.0, 16.0)};
  Rng rng{11};
  const auto summary = summarize_scheme(streams, rng, 100);
  EXPECT_NEAR(summary.stall_ratio.point, 1.0 / 1000.0, 1e-12);
}

TEST(Summary, EmptyInputRejected) {
  Rng rng{12};
  EXPECT_THROW(summarize_scheme({}, rng), RequirementError);
}

TEST(Summary, WeightedSeSmallerWithMoreStreams) {
  Rng data_rng{13};
  auto sample = [&](const int n) {
    std::vector<StreamFigures> streams;
    for (int i = 0; i < n; i++) {
      streams.push_back(make_stream(data_rng.lognormal(4.0, 1.0), 0.0,
                                    data_rng.normal(16.0, 2.0)));
    }
    return streams;
  };
  Rng rng{14};
  const auto small = summarize_scheme(sample(50), rng, 100);
  const auto large = summarize_scheme(sample(5000), rng, 100);
  EXPECT_GT(small.ssim_mean_se_db, large.ssim_mean_se_db);
}

}  // namespace
}  // namespace puffer::stats
