#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "abr/bba.hh"
#include "exp/fleet_trial.hh"
#include "exp/registry.hh"
#include "exp/trial.hh"
#include "fugu/batch_ttp.hh"
#include "fugu/fugu.hh"
#include "fugu/ttp_predictor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/arrivals.hh"
#include "sim/fleet.hh"
#include "stats/load_series.hh"
#include "util/require.hh"

namespace puffer {
namespace {

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

TEST(Arrivals, PoissonMatchesRequestedRate) {
  sim::PoissonArrivals arrivals{2.0};
  Rng rng{1};
  const std::vector<double> times = sim::sample_arrivals(arrivals, rng, 4000);
  ASSERT_EQ(times.size(), 4000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // Mean inter-arrival should be ~1/rate = 0.5 s.
  EXPECT_NEAR(times.back() / 4000.0, 0.5, 0.05);
}

TEST(Arrivals, DeterministicGivenSeed) {
  sim::ArrivalSpec spec;
  spec.kind = "diurnal";
  const auto process = sim::make_arrival_process(spec);
  Rng rng_a{7}, rng_b{7};
  const auto a = sim::sample_arrivals(*process, rng_a, 200);
  const auto b = sim::sample_arrivals(*process, rng_b, 200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]));
  }
}

TEST(Arrivals, DiurnalRatePeaksAtPrimeTime) {
  sim::ArrivalSpec spec;
  spec.kind = "diurnal";
  spec.rate_per_s = 4.0;
  spec.trough_fraction = 0.25;
  sim::DiurnalArrivals arrivals{spec};
  EXPECT_DOUBLE_EQ(arrivals.rate_at(spec.peak_time_s), 4.0);
  // Half a period away the rate bottoms out at trough_fraction * peak.
  EXPECT_NEAR(arrivals.rate_at(spec.peak_time_s + spec.period_s / 2.0),
              1.0, 1e-9);
  EXPECT_DOUBLE_EQ(arrivals.peak_rate(), 4.0);
}

TEST(Arrivals, FlashCrowdSurgesDuringBurst) {
  sim::ArrivalSpec spec;
  spec.kind = "flash-crowd";
  spec.rate_per_s = 1.0;
  spec.burst_start_s = 100.0;
  spec.burst_duration_s = 50.0;
  spec.burst_multiplier = 20.0;
  const auto process = sim::make_arrival_process(spec);
  EXPECT_DOUBLE_EQ(process->rate_at(99.0), 1.0);
  EXPECT_DOUBLE_EQ(process->rate_at(100.0), 20.0);
  EXPECT_DOUBLE_EQ(process->rate_at(149.9), 20.0);
  EXPECT_DOUBLE_EQ(process->rate_at(150.0), 1.0);

  Rng rng{3};
  const auto times = sim::sample_arrivals(*process, rng, 600);
  const auto in_burst = std::count_if(times.begin(), times.end(), [&](double t) {
    return t >= 100.0 && t < 150.0;
  });
  // Expected ~1000/(1000+... ) — the burst window carries 20x the density of
  // an equal-length quiet window; just require a strong surge.
  const auto before_burst = std::count_if(
      times.begin(), times.end(), [](double t) { return t < 50.0; });
  EXPECT_GT(in_burst, 5 * before_burst);
}

TEST(Arrivals, UnknownKindRejected) {
  sim::ArrivalSpec spec;
  spec.kind = "carrier-pigeon";
  EXPECT_THROW(static_cast<void>(sim::make_arrival_process(spec)),
               RequirementError);
}

// ---------------------------------------------------------------------------
// Load time series
// ---------------------------------------------------------------------------

TEST(LoadSeries, StepFunctionPeakAndMean) {
  stats::LoadSeries load;
  // Out-of-order insertion: completion discovered before a later arrival.
  load.add(0.0, +1);
  load.add(4.0, -1);
  load.add(1.0, +1);
  load.add(3.0, -1);
  load.finalize();
  EXPECT_EQ(load.peak(), 2);
  EXPECT_EQ(load.level_at(0.5), 1);
  EXPECT_EQ(load.level_at(2.0), 2);
  EXPECT_EQ(load.level_at(3.5), 1);
  EXPECT_EQ(load.level_at(4.0), 0);
  EXPECT_EQ(load.level_at(-1.0), 0);
  // Integral: 1*1 + 2*2 + 1*1 over a span of 4.
  EXPECT_NEAR(load.time_weighted_mean(), 6.0 / 4.0, 1e-12);
}

TEST(LoadSeries, SimultaneousDeltasMerge) {
  stats::LoadSeries load;
  load.add(1.0, +1);
  load.add(1.0, -1);  // zero-duration session leaves no trace
  load.finalize();
  EXPECT_TRUE(load.points().empty());
  EXPECT_EQ(load.peak(), 0);
}

TEST(LoadSeries, EmptySeries) {
  stats::LoadSeries load;
  load.finalize();
  EXPECT_EQ(load.peak(), 0);
  EXPECT_DOUBLE_EQ(load.time_weighted_mean(), 0.0);
}

/// Pinned boundary semantics: queries on an empty series (even one never
/// finalized) are defined, and level_at before the first point is 0.
TEST(LoadSeries, BoundaryQueriesArePinned) {
  const stats::LoadSeries untouched;
  EXPECT_EQ(untouched.peak(), 0);
  EXPECT_DOUBLE_EQ(untouched.time_weighted_mean(), 0.0);
  EXPECT_EQ(untouched.level_at(0.0), 0);
  EXPECT_EQ(untouched.level_at(-100.0), 0);
  EXPECT_TRUE(untouched.points().empty());

  stats::LoadSeries load;
  load.add(10.0, +1);
  load.add(12.0, -1);
  load.finalize();
  EXPECT_EQ(load.level_at(9.999), 0);      // before the first point
  EXPECT_EQ(load.level_at(-1e9), 0);
  EXPECT_EQ(load.level_at(10.0), 1);       // at the first point
}

/// Pinned boundary semantics: a single-point (zero-span) series has a
/// defined mean — the level it ends at — instead of a 0/0 division.
TEST(LoadSeries, SinglePointMeanIsItsLevel) {
  stats::LoadSeries load;
  load.add(2.0, +1);
  load.finalize();
  ASSERT_EQ(load.points().size(), 1u);
  EXPECT_EQ(load.peak(), 1);
  EXPECT_DOUBLE_EQ(load.time_weighted_mean(), 1.0);

  // Same-time deltas merge, so several events can still leave one point.
  stats::LoadSeries merged;
  merged.add(5.0, +1);
  merged.add(5.0, +1);
  merged.add(5.0, +1);
  merged.finalize();
  ASSERT_EQ(merged.points().size(), 1u);
  EXPECT_DOUBLE_EQ(merged.time_weighted_mean(), 3.0);
}

/// merge_from reproduces the combined series exactly — the finalized series
/// is a function of the delta multiset, however it was partitioned (this is
/// what makes the sharded engine's merged load bit-identical).
TEST(LoadSeries, MergeFromMatchesCombinedSeries) {
  stats::LoadSeries combined, shard_a, shard_b;
  const auto add_all = [](stats::LoadSeries& series,
                          std::initializer_list<std::pair<double, int>> events) {
    for (const auto& [t, d] : events) {
      series.add(t, d);
    }
  };
  add_all(combined, {{0.0, +1}, {4.0, -1}, {1.0, +1}, {3.0, -1}, {1.0, +1},
                     {2.5, -1}});
  add_all(shard_a, {{0.0, +1}, {4.0, -1}, {1.0, +1}, {2.5, -1}});
  add_all(shard_b, {{1.0, +1}, {3.0, -1}});
  combined.finalize();

  // Merge one finalized shard and one pending shard — both forms must fold
  // identically.
  shard_a.finalize();
  stats::LoadSeries merged;
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);
  merged.finalize();

  ASSERT_EQ(merged.points().size(), combined.points().size());
  for (size_t i = 0; i < merged.points().size(); i++) {
    EXPECT_EQ(std::bit_cast<uint64_t>(merged.points()[i].time_s),
              std::bit_cast<uint64_t>(combined.points()[i].time_s));
    EXPECT_EQ(merged.points()[i].level, combined.points()[i].level);
  }
  EXPECT_EQ(merged.peak(), combined.peak());
  EXPECT_EQ(std::bit_cast<uint64_t>(merged.time_weighted_mean()),
            std::bit_cast<uint64_t>(combined.time_weighted_mean()));
}

TEST(LoadSeries, ReFinalizeAfterMoreDeltas) {
  stats::LoadSeries load;
  load.add(0.0, +1);
  load.add(2.0, -1);
  load.finalize();
  EXPECT_EQ(load.peak(), 1);
  // Add more events after finalizing; re-finalize folds them in.
  load.add(1.0, +1);
  load.add(3.0, -1);
  load.finalize();
  EXPECT_EQ(load.peak(), 2);
  EXPECT_EQ(load.level_at(1.5), 2);
  EXPECT_EQ(load.level_at(2.5), 1);
  EXPECT_THROW(static_cast<void>(load.merge_from(load)), RequirementError);
}

// ---------------------------------------------------------------------------
// Batched TTP inference
// ---------------------------------------------------------------------------

void expect_same_distribution(const abr::TxTimeDistribution& a,
                              const abr::TxTimeDistribution& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].time_s),
              std::bit_cast<uint64_t>(b[i].time_s));
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].probability),
              std::bit_cast<uint64_t>(b[i].probability));
  }
}

abr::AbrObservation fake_observation(const uint64_t seed) {
  Rng rng{seed};
  abr::AbrObservation obs;
  obs.buffer_s = rng.uniform(0.0, 15.0);
  obs.tcp.cwnd_pkts = rng.uniform(10.0, 300.0);
  obs.tcp.in_flight_pkts = rng.uniform(0.0, 200.0);
  obs.tcp.min_rtt_s = rng.uniform(0.01, 0.3);
  obs.tcp.srtt_s = rng.uniform(0.01, 0.4);
  obs.tcp.delivery_rate_bps = rng.uniform(1e5, 5e7);
  return obs;
}

fugu::TtpHistory fake_history(const uint64_t seed, const int chunks) {
  Rng rng{seed};
  fugu::TtpHistory history;
  for (int i = 0; i < chunks; i++) {
    history.record(rng.uniform(0.1, 4.0), rng.uniform(0.05, 3.0),
                   fugu::kTtpHistory);
  }
  return history;
}

std::vector<abr::TxTimeQuery> fake_queries(const uint64_t seed) {
  Rng rng{seed};
  std::vector<abr::TxTimeQuery> queries;
  for (int step = 0; step < 5; step++) {
    for (int rung = 0; rung < media::kNumRungs; rung++) {
      queries.push_back({step, rng.uniform_int(50'000, 6'000'000)});
    }
  }
  return queries;
}

/// Acceptance criterion (c): the fused matrix-matrix path answers exactly
/// what the scalar forward_one path answers, bit for bit.
TEST(BatchTtp, PredictBatchMatchesScalarForwardOne) {
  const auto model = std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 42);
  for (const uint64_t seed : {1u, 2u, 3u}) {
    fugu::TtpPredictor scalar{model};
    fugu::BatchTtpPredictor batched{model};
    const abr::AbrObservation obs = fake_observation(seed);
    const fugu::TtpHistory history = fake_history(seed, 6);
    for (int i = 0; i < 6; i++) {
      abr::ChunkRecord record;
      record.size_bytes = static_cast<int64_t>(history.sizes_mb[i] * 1e6);
      record.transmission_time_s = history.tx_times_s[i];
      scalar.on_chunk_complete(record);
      batched.on_chunk_complete(record);
    }
    scalar.begin_decision(obs);
    batched.begin_decision(obs);

    const std::vector<abr::TxTimeQuery> queries = fake_queries(seed);
    std::vector<abr::TxTimeDistribution> scalar_out, batched_out;
    scalar.predict_batch(queries, scalar_out);    // default loop over predict()
    batched.predict_batch(queries, batched_out);  // one GEMM per step-network
    ASSERT_EQ(scalar_out.size(), batched_out.size());
    for (size_t i = 0; i < scalar_out.size(); i++) {
      expect_same_distribution(scalar_out[i], batched_out[i]);
    }
    // The scalar predict() entry point agrees too.
    expect_same_distribution(scalar.predict(2, 1'234'567),
                             batched.predict(2, 1'234'567));
  }
}

TEST(BatchTtp, PointEstimateVariantMatches) {
  const auto model = std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 7);
  fugu::TtpPredictor scalar{model, /*point_estimate=*/true};
  fugu::BatchTtpPredictor batched{model, /*point_estimate=*/true};
  const abr::AbrObservation obs = fake_observation(11);
  scalar.begin_decision(obs);
  batched.begin_decision(obs);
  const std::vector<abr::TxTimeQuery> queries = fake_queries(11);
  std::vector<abr::TxTimeDistribution> scalar_out, batched_out;
  scalar.predict_batch(queries, scalar_out);
  batched.predict_batch(queries, batched_out);
  ASSERT_EQ(scalar_out.size(), batched_out.size());
  for (size_t i = 0; i < scalar_out.size(); i++) {
    ASSERT_EQ(batched_out[i].size(), 1u);
    expect_same_distribution(scalar_out[i], batched_out[i]);
  }
}

/// Cross-session coalescing: several sessions staged into one shared batch
/// (one GEMM across all of them per step-network) answer exactly what each
/// would have answered alone.
TEST(BatchTtp, SharedBatchCoalescesAcrossSessionsExactly) {
  const auto model = std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 9);
  media::VbrVideoSource video{media::default_channels()[0], 21};
  std::vector<media::ChunkOptions> lookahead;
  for (int k = 0; k < 5; k++) {
    lookahead.push_back(video.chunk_options(k));
  }
  // MPC's query order over this lookahead.
  std::vector<abr::TxTimeQuery> queries;
  for (int step = 0; step < 5; step++) {
    for (int rung = 0; rung < media::kNumRungs; rung++) {
      queries.push_back(
          {step, lookahead[static_cast<size_t>(step)].version(rung).size_bytes});
    }
  }

  constexpr int kSessions = 5;
  fugu::TtpInferenceBatch shared;
  std::vector<std::unique_ptr<fugu::BatchTtpPredictor>> staged_predictors;
  for (int s = 0; s < kSessions; s++) {
    auto predictor = std::make_unique<fugu::BatchTtpPredictor>(model);
    const abr::AbrObservation obs = fake_observation(100 + s);
    predictor->begin_decision(obs);
    predictor->stage(obs, lookahead, /*horizon=*/5, shared);
    staged_predictors.push_back(std::move(predictor));
  }
  EXPECT_EQ(shared.rows_pending(), kSessions * 5 * media::kNumRungs);
  shared.run();
  EXPECT_EQ(shared.total_forward_calls(), 5);  // one GEMM per step-network

  for (int s = 0; s < kSessions; s++) {
    fugu::BatchTtpPredictor alone{model};
    const abr::AbrObservation obs = fake_observation(100 + s);
    alone.begin_decision(obs);
    std::vector<abr::TxTimeDistribution> expected, coalesced;
    alone.predict_batch(queries, expected);
    staged_predictors[static_cast<size_t>(s)]->predict_batch(queries,
                                                             coalesced);
    ASSERT_EQ(expected.size(), coalesced.size());
    for (size_t i = 0; i < expected.size(); i++) {
      expect_same_distribution(expected[i], coalesced[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet trials
// ---------------------------------------------------------------------------

void expect_same_bits(const double a, const double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b));
}

void expect_identical(const exp::TrialResult& a, const exp::TrialResult& b) {
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (size_t s = 0; s < a.schemes.size(); s++) {
    const exp::SchemeResult& x = a.schemes[s];
    const exp::SchemeResult& y = b.schemes[s];
    EXPECT_EQ(x.scheme, y.scheme);

    EXPECT_EQ(x.consort.sessions, y.consort.sessions);
    EXPECT_EQ(x.consort.streams, y.consort.streams);
    EXPECT_EQ(x.consort.never_began, y.consort.never_began);
    EXPECT_EQ(x.consort.under_min_watch, y.consort.under_min_watch);
    EXPECT_EQ(x.consort.decoder_failure, y.consort.decoder_failure);
    EXPECT_EQ(x.consort.truncated, y.consort.truncated);
    EXPECT_EQ(x.consort.considered, y.consort.considered);

    ASSERT_EQ(x.considered.size(), y.considered.size());
    for (size_t i = 0; i < x.considered.size(); i++) {
      expect_same_bits(x.considered[i].watch_time_s,
                       y.considered[i].watch_time_s);
      expect_same_bits(x.considered[i].stall_time_s,
                       y.considered[i].stall_time_s);
      expect_same_bits(x.considered[i].startup_delay_s,
                       y.considered[i].startup_delay_s);
      expect_same_bits(x.considered[i].ssim_mean_db,
                       y.considered[i].ssim_mean_db);
      expect_same_bits(x.considered[i].ssim_variation_db,
                       y.considered[i].ssim_variation_db);
      expect_same_bits(x.considered[i].first_chunk_ssim_db,
                       y.considered[i].first_chunk_ssim_db);
      expect_same_bits(x.considered[i].mean_bitrate_mbps,
                       y.considered[i].mean_bitrate_mbps);
      expect_same_bits(x.considered[i].mean_delivery_rate_mbps,
                       y.considered[i].mean_delivery_rate_mbps);
    }

    ASSERT_EQ(x.session_durations_s.size(), y.session_durations_s.size());
    for (size_t i = 0; i < x.session_durations_s.size(); i++) {
      expect_same_bits(x.session_durations_s[i], y.session_durations_s[i]);
    }

    ASSERT_EQ(x.logs.size(), y.logs.size());
    for (size_t i = 0; i < x.logs.size(); i++) {
      EXPECT_EQ(x.logs[i].day, y.logs[i].day);
      ASSERT_EQ(x.logs[i].chunks.size(), y.logs[i].chunks.size());
      for (size_t c = 0; c < x.logs[i].chunks.size(); c++) {
        expect_same_bits(x.logs[i].chunks[c].size_mb,
                         y.logs[i].chunks[c].size_mb);
        expect_same_bits(x.logs[i].chunks[c].tx_time_s,
                         y.logs[i].chunks[c].tx_time_s);
      }
    }
  }
}

/// Schemes exercising all three decision paths: coalesced learned inference
/// (Fugu via BatchTtpPredictor), classical MPC (default predict_batch) and
/// a predictor-free scheme.
exp::SchemeFactory fleet_factory() {
  static const auto model =
      std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  return [](const std::string& name) -> std::unique_ptr<abr::AbrAlgorithm> {
    if (name == "Fugu") {
      return fugu::make_fugu(model, name);
    }
    return exp::make_scheme(name, exp::SchemeArtifacts{});
  };
}

exp::FleetTrialConfig fleet_config() {
  exp::FleetTrialConfig config;
  config.trial.schemes = {"Fugu", "MPC-HM", "BBA"};
  config.trial.sessions_per_scheme = 5;
  config.trial.seed = 20190119;
  config.trial.collect_logs = true;
  config.trial.day = 1;
  config.trial.num_threads = 1;
  config.trial.stream.max_stream_chunks = 60;  // bound Pareto-tail streams
  config.arrivals.kind = "poisson";
  config.arrivals.rate_per_s = 0.05;  // sessions overlap heavily
  return config;
}

/// Acceptance criterion (a): the fleet interleaving of non-interacting
/// sessions is figure-identical to the session-sequential baseline.
TEST(FleetTrial, MatchesSequentialBaselineInRctMode) {
  const exp::FleetTrialConfig config = fleet_config();
  const exp::TrialResult sequential =
      exp::run_trial(config.trial, fleet_factory());
  const exp::FleetTrialResult fleet =
      exp::run_fleet_trial(config, fleet_factory());
  expect_identical(sequential, fleet.trial);

  const int64_t total =
      static_cast<int64_t>(config.trial.schemes.size()) *
      config.trial.sessions_per_scheme;
  EXPECT_EQ(fleet.fleet.sessions, total);
  EXPECT_GT(fleet.fleet.decisions, 0);
  EXPECT_GT(fleet.fleet.gemm_calls, 0);       // Fugu sessions coalesced
  EXPECT_GT(fleet.fleet.coalesced_rows, 0);
  EXPECT_GT(fleet.fleet.inline_decisions, 0);  // BBA / MPC-HM ran inline
  EXPECT_GE(fleet.fleet.load.peak(), 2);       // sessions actually overlapped
  EXPECT_LE(fleet.fleet.load.peak(), total);
  EXPECT_GT(fleet.fleet.virtual_duration_s, 0.0);
}

TEST(FleetTrial, MatchesSequentialBaselineInPairedMode) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.paired_paths = true;
  config.trial.sessions_per_scheme = 4;
  const exp::TrialResult sequential =
      exp::run_trial(config.trial, fleet_factory());
  const exp::FleetTrialResult fleet =
      exp::run_fleet_trial(config, fleet_factory());
  expect_identical(sequential, fleet.trial);
}

/// Acceptance criterion (b): bit-identical results at any thread count —
/// including the load series the engine records. Pinned to one shard so the
/// batching counters are comparable too: with a single queue, batch
/// membership is thread-count-invariant (threads stripe within batches).
TEST(FleetTrial, BitIdenticalAcrossThreadCounts) {
  exp::FleetTrialConfig config = fleet_config();
  config.num_shards = 1;
  const exp::FleetTrialResult one = exp::run_fleet_trial(config, fleet_factory());
  for (const int threads : {2, 4}) {
    config.trial.num_threads = threads;
    const exp::FleetTrialResult many =
        exp::run_fleet_trial(config, fleet_factory());
    expect_identical(one.trial, many.trial);
    EXPECT_EQ(one.fleet.decisions, many.fleet.decisions);
    EXPECT_EQ(one.fleet.coalesced_rows, many.fleet.coalesced_rows);
    EXPECT_EQ(one.fleet.gemm_calls, many.fleet.gemm_calls);
    ASSERT_EQ(one.fleet.load.points().size(), many.fleet.load.points().size());
    for (size_t i = 0; i < one.fleet.load.points().size(); i++) {
      expect_same_bits(one.fleet.load.points()[i].time_s,
                       many.fleet.load.points()[i].time_s);
      EXPECT_EQ(one.fleet.load.points()[i].level,
                many.fleet.load.points()[i].level);
    }
  }
}

/// Tentpole acceptance: sharding is invisible to results. 1/2/4/8 shards,
/// coalescing on and off, all bit-identical to the sequential baseline —
/// including the merged load series and the partition-invariant engine
/// stats. (The batching counters are *not* compared across shard counts:
/// batch membership is shard-local by design.)
TEST(FleetTrial, BitIdenticalAcrossShardCounts) {
  const exp::TrialResult sequential =
      exp::run_trial(fleet_config().trial, fleet_factory());
  for (const bool coalesce : {true, false}) {
    exp::FleetTrialConfig config = fleet_config();
    config.coalesce_inference = coalesce;
    config.trial.num_threads = 4;
    config.num_shards = 1;
    const exp::FleetTrialResult one =
        exp::run_fleet_trial(config, fleet_factory());
    expect_identical(sequential, one.trial);
    for (const int shards : {2, 4, 8}) {
      config.num_shards = shards;
      const exp::FleetTrialResult sharded =
          exp::run_fleet_trial(config, fleet_factory());
      EXPECT_EQ(sharded.fleet.num_shards, shards);
      expect_identical(sequential, sharded.trial);
      EXPECT_EQ(one.fleet.sessions, sharded.fleet.sessions);
      EXPECT_EQ(one.fleet.decisions, sharded.fleet.decisions);
      expect_same_bits(one.fleet.virtual_duration_s,
                       sharded.fleet.virtual_duration_s);
      EXPECT_EQ(one.fleet.load.peak(), sharded.fleet.load.peak());
      expect_same_bits(one.fleet.load.time_weighted_mean(),
                       sharded.fleet.load.time_weighted_mean());
      ASSERT_EQ(one.fleet.load.points().size(),
                sharded.fleet.load.points().size());
      for (size_t i = 0; i < one.fleet.load.points().size(); i++) {
        expect_same_bits(one.fleet.load.points()[i].time_s,
                         sharded.fleet.load.points()[i].time_s);
        EXPECT_EQ(one.fleet.load.points()[i].level,
                  sharded.fleet.load.points()[i].level);
      }
    }
  }
}

/// Paired mode under sharding: shard_group colocates a plan's per-scheme
/// task copies on one shard (they share an immutable plan), and the merged
/// trial stays bit-identical to the sequential baseline.
TEST(FleetTrial, PairedModeBitIdenticalAcrossShardCounts) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.paired_paths = true;
  config.trial.sessions_per_scheme = 4;
  config.trial.num_threads = 4;
  const exp::TrialResult sequential =
      exp::run_trial(config.trial, fleet_factory());
  for (const int shards : {1, 2, 4, 8}) {
    config.num_shards = shards;
    const exp::FleetTrialResult fleet =
        exp::run_fleet_trial(config, fleet_factory());
    expect_identical(sequential, fleet.trial);
  }
}

/// Kill mid-merge: a scheme factory that fails partway through a sharded
/// run (while other shards are mid-flight and the streaming merge frontier
/// is active) must propagate the failure out of run_fleet_trial — no
/// deadlock, no partially-merged result returned.
TEST(FleetTrial, FactoryFailureMidRunPropagates) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.num_threads = 2;
  config.num_shards = 2;
  const exp::SchemeFactory broken =
      [](const std::string& name) -> std::unique_ptr<abr::AbrAlgorithm> {
    if (name == "BBA") {
      return nullptr;  // run_fleet_trial's require() fires on a shard worker
    }
    return fleet_factory()(name);
  };
  EXPECT_THROW(static_cast<void>(exp::run_fleet_trial(config, broken)),
               RequirementError);
}

/// Exception-propagation determinism: the engine submits shard jobs in
/// ascending shard order, and ThreadPool selects the rethrown exception by
/// submission index — so even when a *higher* shard fails first on the
/// wall clock, the lowest failing shard's error is the one observed, every
/// time.
class ExplodingTask final : public sim::FleetTask {
 public:
  ExplodingTask(std::string message, const int decisions_before_failure)
      : message_(std::move(message)), remaining_(decisions_before_failure) {}

  Step prepare() override {
    if (remaining_ <= 0) {
      throw std::runtime_error(message_);
    }
    return Step::kDecision;
  }
  bool stage(fugu::TtpInferenceBatch& /*batch*/) override { return false; }
  void finish_chunk() override {
    remaining_--;
    elapsed_ += 1.0;
  }
  [[nodiscard]] double elapsed_s() const override { return elapsed_; }

 private:
  std::string message_;
  int remaining_;
  double elapsed_ = 0.0;
};

TEST(FleetEngine, ShardFailureSelectsLowestShardDeterministically) {
  sim::FleetConfig config;
  config.num_threads = 2;
  config.num_shards = 2;
  const std::vector<double> arrivals = {0.0, 0.0, 0.0, 0.0};
  const auto factory = [](const int64_t /*session*/,
                          const int shard) -> std::unique_ptr<sim::FleetTask> {
    // Shard 0 fails only after 200 decisions (late on the wall clock);
    // shard 1 fails at its very first arrival.
    if (shard == 0) {
      return std::make_unique<ExplodingTask>("shard-0 failed", 200);
    }
    return std::make_unique<ExplodingTask>("shard-1 failed", 0);
  };
  for (int iteration = 0; iteration < 10; iteration++) {
    try {
      static_cast<void>(sim::FleetEngine{config}.run(arrivals, factory));
      FAIL() << "run() must rethrow the failing shard's exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "shard-0 failed");
    }
  }
}

/// Coalescing is a pure execution strategy: switching it off (or shrinking
/// the fusion window/cap) must not change a single bit of the results.
TEST(FleetTrial, CoalescingToggleAndWindowDoNotChangeResults) {
  exp::FleetTrialConfig config = fleet_config();
  const exp::FleetTrialResult fused =
      exp::run_fleet_trial(config, fleet_factory());

  config.coalesce_inference = false;
  const exp::FleetTrialResult inline_only =
      exp::run_fleet_trial(config, fleet_factory());
  expect_identical(fused.trial, inline_only.trial);
  EXPECT_EQ(inline_only.fleet.coalesced_rows, 0);
  EXPECT_EQ(inline_only.fleet.gemm_calls, 0);

  config.coalesce_inference = true;
  config.max_coalesced_sessions = 2;
  config.coalesce_window_s = 0.01;
  const exp::FleetTrialResult narrow =
      exp::run_fleet_trial(config, fleet_factory());
  expect_identical(fused.trial, narrow.trial);
}

TEST(FleetTrial, FlashCrowdDrivesConcurrencySpike) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.schemes = {"BBA"};
  config.trial.sessions_per_scheme = 30;
  config.arrivals.kind = "flash-crowd";
  config.arrivals.rate_per_s = 0.01;
  config.arrivals.burst_start_s = 50.0;
  config.arrivals.burst_duration_s = 40.0;
  config.arrivals.burst_multiplier = 400.0;
  const exp::FleetTrialResult result =
      exp::run_fleet_trial(config, fleet_factory());
  // The burst crams most arrivals into a 40 s window, so concurrency there
  // must dwarf the quiet baseline.
  EXPECT_GE(result.fleet.load.peak(), 8);
}

// ---------------------------------------------------------------------------
// Contention groups (shared bottlenecks)
// ---------------------------------------------------------------------------

exp::FleetTrialConfig contention_config(const std::string& topology,
                                        const int group_size) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.scenario = net::ScenarioSpec{"edge-contention"};
  config.contention = exp::make_contention_spec(topology, group_size);
  return config;
}

/// Tentpole acceptance: contention groups are single engine tasks, so the
/// fleet == sequential bitwise contract survives any shard count and thread
/// count with shared bottlenecks in play — results, load series, and the
/// per-group fairness indices all bit-identical.
TEST(FleetTrial, ContentionBitIdenticalAcrossShardAndThreadCounts) {
  exp::FleetTrialConfig config = contention_config("edge", 4);
  config.num_shards = 1;
  const exp::FleetTrialResult baseline =
      exp::run_fleet_trial(config, fleet_factory());
  ASSERT_FALSE(baseline.group_fairness.empty());
  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {2, 4}) {
      config.num_shards = shards;
      config.trial.num_threads = threads;
      const exp::FleetTrialResult run =
          exp::run_fleet_trial(config, fleet_factory());
      expect_identical(baseline.trial, run.trial);
      EXPECT_EQ(baseline.fleet.sessions, run.fleet.sessions);
      EXPECT_EQ(baseline.fleet.decisions, run.fleet.decisions);
      expect_same_bits(baseline.fleet.virtual_duration_s,
                       run.fleet.virtual_duration_s);
      ASSERT_EQ(baseline.fleet.load.points().size(),
                run.fleet.load.points().size());
      for (size_t i = 0; i < baseline.fleet.load.points().size(); i++) {
        expect_same_bits(baseline.fleet.load.points()[i].time_s,
                         run.fleet.load.points()[i].time_s);
        EXPECT_EQ(baseline.fleet.load.points()[i].level,
                  run.fleet.load.points()[i].level);
      }
      ASSERT_EQ(baseline.group_fairness.size(), run.group_fairness.size());
      for (size_t g = 0; g < baseline.group_fairness.size(); g++) {
        expect_same_bits(baseline.group_fairness[g], run.group_fairness[g]);
      }
    }
  }
}

/// Shape and sanity of a contention run: one group per group_size plans,
/// every session still counted, fairness indices in (0, 1].
TEST(FleetTrial, ContentionGroupShapeAndFairness) {
  for (const char* topology : {"edge", "tower", "wifi"}) {
    const exp::FleetTrialConfig config = contention_config(topology, 4);
    const exp::FleetTrialResult result =
        exp::run_fleet_trial(config, fleet_factory());
    const int64_t total = static_cast<int64_t>(config.trial.schemes.size()) *
                          config.trial.sessions_per_scheme;
    EXPECT_EQ(result.fleet.sessions, total);
    EXPECT_EQ(result.group_fairness.size(),
              static_cast<size_t>((total + 3) / 4));
    int64_t consort_sessions = 0;
    for (const auto& scheme : result.trial.schemes) {
      consort_sessions += scheme.consort.sessions;
    }
    EXPECT_EQ(consort_sessions, total);
    for (const double fairness : result.group_fairness) {
      EXPECT_GT(fairness, 0.0);
      EXPECT_LE(fairness, 1.0);
    }
  }
}

/// Contention grouping is RCT-only: the paired-replay design would put the
/// same plan's per-scheme copies behind one bottleneck, which is neither the
/// paired contract nor a meaningful RCT.
TEST(FleetTrial, ContentionRejectsPairedMode) {
  exp::FleetTrialConfig config = contention_config("edge", 2);
  config.trial.paired_paths = true;
  EXPECT_THROW(static_cast<void>(exp::run_fleet_trial(config, fleet_factory())),
               RequirementError);
}

// ---------------------------------------------------------------------------
// Observability: sim-plane metric snapshots and virtual-time traces
// ---------------------------------------------------------------------------

/// The sim-plane metric snapshot is part of the bitwise determinism
/// surface. At a fixed shard count the full snapshot — shard-local metrics
/// included, since the partition itself is fixed — must be identical at
/// any worker-thread count (1/2/4), per-shard snapshots too. Across shard
/// counts (1/2/4/8) the partition-invariant view still matches bit for
/// bit.
TEST(FleetTrial, MetricSnapshotsBitIdenticalAcrossShardAndThreadMatrix) {
  exp::FleetTrialConfig config = fleet_config();

  obs::MetricSnapshot invariant_baseline;
  for (const int shards : {1, 2, 4, 8}) {
    config.num_shards = shards;
    config.trial.num_threads = 1;
    const exp::FleetTrialResult baseline =
        exp::run_fleet_trial(config, fleet_factory());
    ASSERT_EQ(baseline.fleet.shard_metrics.size(),
              static_cast<size_t>(shards));
    // Spot-check that the snapshot actually carries the engine and trial
    // planes before comparing: an empty-vs-empty EQ would prove nothing.
    ASSERT_NE(baseline.metrics.find("fleet.decisions"), nullptr);
    ASSERT_NE(baseline.metrics.find("trial.plan_cache_misses"), nullptr);
    if (shards == 1) {
      invariant_baseline = baseline.metrics.deterministic_view(false);
      ASSERT_FALSE(invariant_baseline.metrics.empty());
    } else {
      EXPECT_EQ(baseline.metrics.deterministic_view(false),
                invariant_baseline);
    }
    for (const int threads : {2, 4}) {
      config.trial.num_threads = threads;
      const exp::FleetTrialResult run =
          exp::run_fleet_trial(config, fleet_factory());
      EXPECT_EQ(run.metrics.deterministic_view(true),
                baseline.metrics.deterministic_view(true));
      EXPECT_EQ(run.fleet.shard_metrics, baseline.fleet.shard_metrics);
    }
  }
}

/// The engine renders virtual-time trace events into per-shard buffers and
/// splices them in ascending shard order after the join, so the trace JSON
/// is byte-identical across repeat runs and across worker-thread counts.
TEST(FleetTrial, VirtualTimeTraceByteIdenticalAcrossRepeatRuns) {
  const auto traced_run = [](const int threads) {
    exp::FleetTrialConfig config = fleet_config();
    config.num_shards = 4;
    config.trial.num_threads = threads;
    obs::TraceWriter trace;
    config.trace = &trace;
    static_cast<void>(exp::run_fleet_trial(config, fleet_factory()));
    return trace.str();
  };
  const std::string first = traced_run(1);
  EXPECT_GT(first.size(), 1000u);
  EXPECT_EQ(first, traced_run(1));
  EXPECT_EQ(first, traced_run(4));
}

TEST(FleetTrial, EmptyTrialIsFine) {
  exp::FleetTrialConfig config = fleet_config();
  config.trial.sessions_per_scheme = 0;
  const exp::FleetTrialResult result =
      exp::run_fleet_trial(config, fleet_factory());
  EXPECT_EQ(result.fleet.sessions, 0);
  EXPECT_EQ(result.fleet.decisions, 0);
  for (const auto& scheme : result.trial.schemes) {
    EXPECT_EQ(scheme.consort.sessions, 0);
  }
}

}  // namespace
}  // namespace puffer
