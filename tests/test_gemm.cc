// Property tests for the GEMM kernel layer (src/nn/gemm.{hh,cc}): the
// packed/tiled SIMD kernels against the retained naive reference over
// randomized shapes (including SIMD tail lanes and degenerate vectors), the
// fused epilogues, the packed-weight Mlp forward, and the kernel
// determinism contract (repeat-run, batch-independence, SIMD==portable).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/gemm.hh"
#include "nn/loss.hh"
#include "nn/matrix.hh"
#include "nn/mlp.hh"
#include "util/rng.hh"

namespace puffer::nn {
namespace {

Matrix random_matrix(Rng& rng, const size_t rows, const size_t cols) {
  Matrix m{rows, cols};
  for (size_t i = 0; i < m.size(); i++) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

std::vector<float> random_bias(Rng& rng, const size_t n) {
  std::vector<float> bias(n);
  for (float& b : bias) {
    b = static_cast<float>(rng.normal());
  }
  return bias;
}

bool same_bits(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void expect_near(const Matrix& actual, const Matrix& expected,
                 const std::string& what) {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  for (size_t i = 0; i < actual.size(); i++) {
    const double e = expected.data()[i];
    EXPECT_NEAR(actual.data()[i], e, 1e-4 * std::max(1.0, std::abs(e)))
        << what << " element " << i;
  }
}

/// Restores the dispatch override even when an assertion fires.
struct ForcePortableGuard {
  explicit ForcePortableGuard(const bool force) {
    set_gemm_force_portable(force);
  }
  ~ForcePortableGuard() { set_gemm_force_portable(false); }
};

// Shapes exercising full tiles, SIMD tail lanes (panel width 16, row tile
// 4), and degenerate 1xN / Nx1 / k=1 cases.
const size_t kShapeDims[] = {1, 2, 3, 4, 5, 7, 15, 16, 17, 21, 33};

TEST(Gemm, MatchesNaiveOverRandomizedShapes) {
  Rng rng{2024};
  for (const size_t m : kShapeDims) {
    for (const size_t k : kShapeDims) {
      for (const size_t n : kShapeDims) {
        const Matrix a = random_matrix(rng, m, k);
        const Matrix b = random_matrix(rng, k, n);
        Matrix fast, naive;
        matmul(a, b, fast);
        naive_matmul(a, b, naive);
        expect_near(fast, naive,
                    "matmul " + std::to_string(m) + "x" + std::to_string(k) +
                        "x" + std::to_string(n));
      }
    }
  }
}

TEST(Gemm, TransposedVariantsMatchNaive) {
  Rng rng{77};
  for (const size_t m : {1u, 3u, 8u, 17u}) {
    for (const size_t k : {1u, 5u, 16u, 33u}) {
      for (const size_t n : {1u, 4u, 15u, 21u}) {
        const Matrix a = random_matrix(rng, m, k);
        const Matrix bt = random_matrix(rng, n, k);  // b^T operand
        Matrix fast, naive;
        matmul_bt(a, bt, fast);
        naive_matmul_bt(a, bt, naive);
        expect_near(fast, naive, "matmul_bt");

        const Matrix a2 = random_matrix(rng, k, m);  // a^T operand
        const Matrix b2 = random_matrix(rng, k, n);
        matmul_at(a2, b2, fast);
        naive_matmul_at(a2, b2, naive);
        expect_near(fast, naive, "matmul_at");
      }
    }
  }
}

TEST(Gemm, FusedBiasReluMatchesUnfusedBitwise) {
  Rng rng{5};
  const Matrix a = random_matrix(rng, 6, 22);
  const Matrix b = random_matrix(rng, 22, 21);
  const std::vector<float> bias = random_bias(rng, 21);
  PackedMatrix packed;
  packed.pack_from(b);

  Matrix plain;
  gemm(a, packed, plain);
  Matrix unfused = plain;
  add_row_bias(unfused, bias);

  Matrix with_bias;
  gemm(a, packed, with_bias, Epilogue::kBias, bias);
  EXPECT_TRUE(same_bits(with_bias, unfused));

  for (size_t i = 0; i < unfused.size(); i++) {
    unfused.data()[i] = std::max(unfused.data()[i], 0.0f);
  }
  Matrix with_relu;
  gemm(a, packed, with_relu, Epilogue::kBiasRelu, bias);
  EXPECT_TRUE(same_bits(with_relu, unfused));
}

TEST(Gemm, RowResultsIndependentOfBatchSize) {
  // The batched==scalar bitwise contract: an output row accumulates in the
  // same order whether it is computed alone or inside any batch.
  Rng rng{11};
  const Matrix a = random_matrix(rng, 7, 22);
  const Matrix b = random_matrix(rng, 22, 21);
  PackedMatrix packed;
  packed.pack_from(b);
  Matrix batch;
  gemm(a, packed, batch);
  for (size_t r = 0; r < a.rows(); r++) {
    Matrix single;
    gemm(a.data() + r * a.cols(), a.cols(), 1, packed, single);
    ASSERT_EQ(single.cols(), batch.cols());
    EXPECT_EQ(std::memcmp(single.data(), batch.data() + r * batch.cols(),
                          batch.cols() * sizeof(float)),
              0)
        << "row " << r;
  }
}

TEST(Gemm, RepeatedRunsBitwiseIdentical) {
  Rng rng{13};
  const Matrix a = random_matrix(rng, 9, 33);
  const Matrix b = random_matrix(rng, 33, 17);
  Matrix first, second;
  matmul(a, b, first);
  matmul(a, b, second);
  EXPECT_TRUE(same_bits(first, second));
}

TEST(Gemm, PortableAndSimdPathsBitwiseIdentical) {
  if (!gemm_simd_available()) {
    GTEST_SKIP() << "AVX2/FMA kernels not available on this machine";
  }
  Rng rng{17};
  for (const size_t m : {1u, 4u, 9u}) {
    for (const size_t n : {1u, 16u, 21u, 47u}) {
      const Matrix a = random_matrix(rng, m, 22);
      const Matrix b = random_matrix(rng, 22, n);
      Matrix simd, portable;
      matmul(a, b, simd);
      {
        ForcePortableGuard guard{true};
        EXPECT_EQ(gemm_active_path(), "portable");
        matmul(a, b, portable);
      }
      EXPECT_TRUE(same_bits(simd, portable)) << m << "x" << n;
    }
  }
  EXPECT_EQ(gemm_active_path(), "avx2");
}

TEST(PackedMatrix, TransposedPackingMatchesExplicitTranspose) {
  Rng rng{19};
  const Matrix bt = random_matrix(rng, 7, 13);  // (n x k)
  Matrix b{13, 7};
  for (size_t r = 0; r < bt.rows(); r++) {
    for (size_t c = 0; c < bt.cols(); c++) {
      b.at(c, r) = bt.at(r, c);
    }
  }
  PackedMatrix from_plain, from_transposed;
  from_plain.pack_from(b);
  from_transposed.pack_from_transposed(bt);
  ASSERT_EQ(from_plain.k(), from_transposed.k());
  ASSERT_EQ(from_plain.n(), from_transposed.n());
  for (size_t p = 0; p < from_plain.num_panels(); p++) {
    EXPECT_EQ(std::memcmp(from_plain.panel(p), from_transposed.panel(p),
                          from_plain.k() * kPanelWidth * sizeof(float)),
              0)
        << "panel " << p;
  }
}

TEST(MlpPacked, ForwardMatchesNaiveReferenceNetwork) {
  const Mlp net{{22, 64, 64, 21}, 99};
  Rng rng{23};
  const Matrix input = random_matrix(rng, 5, 22);

  // Reference: the seed forward pass on the raw row-major weights.
  Matrix ref = input;
  for (size_t l = 0; l < net.num_layers(); l++) {
    Matrix next;
    naive_matmul(ref, net.weights()[l], next);
    add_row_bias(next, net.biases()[l]);
    if (l + 1 < net.num_layers()) {
      for (size_t i = 0; i < next.size(); i++) {
        next.data()[i] = std::max(next.data()[i], 0.0f);
      }
    }
    ref = std::move(next);
  }

  Matrix logits;
  net.forward(input, logits);
  expect_near(logits, ref, "packed forward vs naive reference");
}

TEST(MlpPacked, WeightUpdateInvalidatesPackedCache) {
  Mlp net{{4, 8, 3}, 7};
  const std::vector<float> x = {0.5f, -1.0f, 2.0f, 0.25f};
  const std::vector<float> before = net.forward_one(x);  // cache is now warm
  net.weights()[0].at(0, 0) += 1.0f;
  const std::vector<float> after = net.forward_one(x);
  EXPECT_NE(before, after);

  // A fresh network with identical parameters must agree bitwise.
  Mlp twin{{4, 8, 3}, 7};
  twin.weights()[0].at(0, 0) += 1.0f;
  EXPECT_EQ(after, twin.forward_one(x));
}

TEST(MlpPacked, CopiedNetworksPackIndependently) {
  Mlp original{{4, 8, 3}, 21};
  const std::vector<float> x = {1.0f, 2.0f, -0.5f, 0.0f};
  const std::vector<float> base = original.forward_one(x);  // warm the cache

  Mlp copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.forward_one(x), base);

  for (Matrix& w : copy.weights()) {
    w.scale_inplace(0.5f);
  }
  EXPECT_NE(copy.forward_one(x), base);
  // Mutating the copy must not disturb the original (or its cache).
  EXPECT_EQ(original.forward_one(x), base);
}

TEST(SoftmaxVectorized, DeterministicAndNormalizedAcrossLengths) {
  Rng rng{31};
  for (const size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 21u, 40u}) {
    std::vector<float> row(n);
    for (float& v : row) {
      v = static_cast<float>(rng.normal(0.0, 3.0));
    }
    const std::vector<float> input = row;
    std::vector<float> again = row;
    softmax_inplace(row);
    softmax_inplace(again);
    EXPECT_EQ(row, again) << "length " << n;

    // Double-precision reference.
    double max_logit = -std::numeric_limits<double>::infinity();
    for (const float v : input) {
      max_logit = std::max(max_logit, static_cast<double>(v));
    }
    double total = 0.0;
    std::vector<double> ref(n);
    for (size_t i = 0; i < n; i++) {
      ref[i] = std::exp(input[i] - max_logit);
      total += ref[i];
    }
    for (size_t i = 0; i < n; i++) {
      EXPECT_NEAR(row[i], ref[i] / total, 1e-5) << "length " << n;
    }
  }
}

}  // namespace
}  // namespace puffer::nn
