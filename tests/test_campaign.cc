#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "exp/campaign.hh"
#include "util/require.hh"

namespace puffer::exp {
namespace {

fugu::TtpConfig tiny_ttp() {
  fugu::TtpConfig config;
  config.history = 4;
  config.hidden_layers = {16};
  config.horizon = 1;
  return config;
}

fugu::TtpTrainConfig tiny_train() {
  fugu::TtpTrainConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  config.max_examples_per_step = 800;
  return config;
}

CampaignArm classical_arm(const std::string& name, const std::string& scheme) {
  CampaignArm arm;
  arm.name = name;
  arm.scheme = scheme;
  return arm;
}

CampaignArm learner_arm(const std::string& name, const bool warm_start) {
  CampaignArm arm;
  arm.name = name;
  arm.scheme = "Fugu";
  arm.retrain = true;
  arm.warm_start = warm_start;
  arm.ttp = tiny_ttp();
  arm.train = tiny_train();
  return arm;
}

/// Three arms — a static classical baseline plus a warm-started and a
/// cold-restarted nightly learner — over three deployment days. Small enough
/// that the whole-campaign fixture below runs in a few seconds, rich enough
/// to exercise telemetry sharing, nightly retrains, and TTP evaluation.
CampaignConfig tiny_config() {
  CampaignConfig config;
  config.arms = {classical_arm("bba", "BBA"),
                 learner_arm("fugu-warm", /*warm_start=*/true),
                 learner_arm("fugu-cold", /*warm_start=*/false)};
  config.phases = {CampaignPhase{net::ScenarioSpec{"puffer"}, 3}};
  config.telemetry_sessions_per_day = 9;
  config.eval_sessions_per_day = 6;
  config.holdout_sessions_per_day = 6;
  config.seed = 11;
  config.num_threads = 4;
  // Pareto-tail viewers can watch for hours; cap each stream's simulation
  // budget so the fixture stays in tier-1's time box.
  config.stream.max_stream_chunks = 100;
  return config;
}

/// The campaign is a pure function of its config, so every test that only
/// reads the uninterrupted reference run shares this single execution.
struct SharedCampaign {
  Campaign campaign;
  CampaignResult result;
};

const SharedCampaign& shared_campaign() {
  static SharedCampaign* shared = [] {
    auto* s = new SharedCampaign{Campaign{tiny_config()}, CampaignResult{}};
    s->result = s->campaign.run();
    return s;
  }();
  return *shared;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Campaign, RunsEveryDayWithEveryArm) {
  const CampaignResult& result = shared_campaign().result;
  ASSERT_EQ(result.days.size(), 3u);
  EXPECT_EQ(result.restored_days, 0);
  for (size_t d = 0; d < result.days.size(); d++) {
    const DayStats& day = result.days[d];
    EXPECT_EQ(day.day, static_cast<int>(d));
    EXPECT_EQ(day.scenario, "puffer:");
    EXPECT_GT(day.telemetry_streams, 0u);
    EXPECT_GT(day.telemetry_chunks, 0u);
    ASSERT_EQ(day.arms.size(), 3u);
    EXPECT_EQ(day.arms[0].arm, "bba");
    EXPECT_EQ(day.arms[1].arm, "fugu-warm");
    EXPECT_EQ(day.arms[2].arm, "fugu-cold");
    for (const ArmDayStats& arm : day.arms) {
      EXPECT_EQ(arm.sessions, 6) << arm.arm;
      EXPECT_GT(arm.considered, 0) << arm.arm << " day " << d;
      EXPECT_GT(arm.ssim_mean_db, 0.0) << arm.arm << " day " << d;
      EXPECT_GE(arm.stall_ratio, 0.0);
    }
    // The classical baseline carries no model; both learners deploy one
    // from day 0 (cold random weights) and report held-out cross-entropy.
    EXPECT_FALSE(day.arms[0].has_model);
    for (size_t a : {size_t{1}, size_t{2}}) {
      EXPECT_TRUE(day.arms[a].has_model);
      EXPECT_GT(day.arms[a].cross_entropy, 0.0) << "day " << d;
      EXPECT_GT(day.arms[a].holdout_examples, 0u) << "day " << d;
    }
  }
}

TEST(Campaign, LearnersImproveOnColdStart) {
  // Figure 9's shape: day 0 streams with untrained random weights; by the
  // last day the nightly loop has trained on real telemetry, so held-out
  // cross-entropy must have dropped decisively for both learners.
  const CampaignResult& result = shared_campaign().result;
  const DayStats& first = result.days.front();
  const DayStats& last = result.days.back();
  EXPECT_LT(last.arms[1].cross_entropy, first.arms[1].cross_entropy);
  EXPECT_LT(last.arms[2].cross_entropy, first.arms[2].cross_entropy);
}

TEST(Campaign, WarmStartLowersCrossEntropyVsColdRestart) {
  // The warm-started learner accumulates optimization across days; the
  // cold-restart arm re-initializes every night and sees each example once.
  // By the final day the warm arm must be strictly ahead on held-out
  // cross-entropy (same telemetry, same holdout, same architecture).
  const CampaignResult& result = shared_campaign().result;
  const DayStats& last = result.days.back();
  ASSERT_EQ(last.arms[1].arm, "fugu-warm");
  ASSERT_EQ(last.arms[2].arm, "fugu-cold");
  EXPECT_LT(last.arms[1].cross_entropy, last.arms[2].cross_entropy);
}

TEST(Campaign, BitIdenticalAtOneThreadAndAcrossObjectContinuation) {
  // Same seed, 1 worker thread, and the day loop split across two run()
  // calls on one object: per-day stats must be bit-identical to the shared
  // 4-thread uninterrupted run (operator== compares doubles exactly).
  CampaignConfig config = tiny_config();
  config.num_threads = 1;
  Campaign campaign{config};
  const CampaignResult partial = campaign.run(/*max_days=*/1);
  EXPECT_EQ(partial.days.size(), 1u);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.days, shared_campaign().result.days);
}

TEST(Campaign, ResumeAfterKillIsBitIdenticalAtTwoThreads) {
  // "Kill" the campaign after day 2 (the first object is destroyed with its
  // checkpoint on disk), then resume from the checkpoint with a fresh
  // object. The resumed run must restore exactly 2 days and the full
  // history must be bit-identical to the uninterrupted 4-thread reference —
  // which also proves thread-count invariance at 2 workers.
  CampaignConfig config = tiny_config();
  config.num_threads = 2;
  config.checkpoint_dir = fresh_dir("campaign_resume");
  {
    Campaign killed{config};
    const CampaignResult before = killed.run(/*max_days=*/2);
    EXPECT_EQ(before.days.size(), 2u);
  }
  Campaign resumed{config};
  EXPECT_EQ(resumed.completed_days(), 2);  // restored at construction
  const CampaignResult result = resumed.run();
  EXPECT_EQ(result.restored_days, 2);
  EXPECT_EQ(result.days, shared_campaign().result.days);

  // Re-running the finished campaign restores everything and simulates
  // nothing new.
  Campaign finished{config};
  EXPECT_NE(finished.deployed_model("fugu-warm"), nullptr);
  const CampaignResult again = finished.run();
  EXPECT_EQ(again.restored_days, 3);
  EXPECT_EQ(again.days, shared_campaign().result.days);

  // The checkpoint encodes the campaign's fingerprint: a different
  // configuration must refuse to adopt this directory, at construction.
  CampaignConfig foreign = config;
  foreign.seed = 999;
  EXPECT_THROW(Campaign{foreign}, RequirementError);
}

TEST(Campaign, CorruptCheckpointIsAnErrorNotARestart) {
  CampaignConfig config = tiny_config();
  config.checkpoint_dir = fresh_dir("campaign_corrupt");
  std::filesystem::create_directories(config.checkpoint_dir);
  std::ofstream out{config.checkpoint_dir + "/campaign.ckpt",
                    std::ios::binary};
  out << "this is not a campaign checkpoint";
  out.close();
  EXPECT_THROW(Campaign{config}, RequirementError);
}

TEST(Campaign, ScenarioShiftAdaptsTheLearner) {
  // Mid-campaign workload shift: one day of deployment-like paths, then the
  // world becomes an LTE cellular channel. On the first cellular day the
  // learner still streams with the puffer-trained model; after one nightly
  // retrain on cellular telemetry its held-out cross-entropy on the new
  // world must improve.
  CampaignConfig config;
  config.arms = {learner_arm("fugu", /*warm_start=*/true)};
  config.phases = {CampaignPhase{net::ScenarioSpec{"puffer"}, 1},
                   CampaignPhase{net::ScenarioSpec{"cellular"}, 2}};
  config.telemetry_sessions_per_day = 9;
  config.eval_sessions_per_day = 6;
  config.holdout_sessions_per_day = 6;
  config.seed = 21;
  config.num_threads = 4;
  config.stream.max_stream_chunks = 100;

  Campaign campaign{config};
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.days.size(), 3u);
  EXPECT_EQ(result.days[0].scenario, "puffer:");
  EXPECT_EQ(result.days[1].scenario, "cellular:");
  EXPECT_EQ(result.days[2].scenario, "cellular:");
  const double stale_ce = result.days[1].arms[0].cross_entropy;
  const double adapted_ce = result.days[2].arms[0].cross_entropy;
  ASSERT_GT(stale_ce, 0.0);
  ASSERT_GT(adapted_ce, 0.0);
  EXPECT_LT(adapted_ce, stale_ce);
}

TEST(Campaign, DeployedModelAccessor) {
  const SharedCampaign& shared = shared_campaign();
  EXPECT_EQ(shared.campaign.deployed_model("bba"), nullptr);
  EXPECT_NE(shared.campaign.deployed_model("fugu-warm"), nullptr);
  EXPECT_NE(shared.campaign.deployed_model("fugu-cold"), nullptr);
  EXPECT_THROW(
      static_cast<void>(shared.campaign.deployed_model("no-such-arm")),
      RequirementError);
}

TEST(Campaign, ReportsCoverEveryArmDay) {
  const CampaignResult& result = shared_campaign().result;
  const std::string csv = campaign_report_csv(result.days);
  // Header + 3 days x 3 arms.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 10);
  EXPECT_NE(csv.find("day,scenario,arm,scheme"), std::string::npos);
  EXPECT_NE(csv.find("fugu-warm"), std::string::npos);

  const std::string json = campaign_report_json(result.days);
  EXPECT_NE(json.find("\"day\":2"), std::string::npos);
  EXPECT_NE(json.find("\"arm\":\"fugu-cold\""), std::string::npos);
  EXPECT_NE(json.find("\"has_model\":false"), std::string::npos);
  EXPECT_NE(json.find("\"cross_entropy\":"), std::string::npos);
}

TEST(Campaign, CsvQuotesScenarioKeysWithCommas) {
  // Scenario keys embed arbitrary trace paths; a comma must not shift the
  // CSV columns.
  DayStats day;
  day.day = 0;
  day.scenario = "trace-replay:/data/a,b.trace";
  day.arms.push_back(ArmDayStats{});
  day.arms[0].arm = "fugu";
  day.arms[0].scheme = "Fugu";
  const std::string csv = campaign_report_csv({day});
  EXPECT_NE(csv.find("\"trace-replay:/data/a,b.trace\""), std::string::npos);
  // Both rows (header + one arm-day) parse to the same field count.
  const auto fields = [](const std::string& line) {
    size_t count = 1;
    bool quoted = false;
    for (const char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) count++;
    }
    return count;
  };
  const size_t newline = csv.find('\n');
  const std::string header = csv.substr(0, newline);
  const std::string row =
      csv.substr(newline + 1, csv.find('\n', newline + 1) - newline - 1);
  EXPECT_EQ(fields(header), fields(row));
}

TEST(Campaign, ValidationRejectsBadConfigs) {
  {
    CampaignConfig config = tiny_config();
    config.arms.clear();
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
  {
    CampaignConfig config = tiny_config();
    config.arms[2].name = config.arms[1].name;  // duplicate
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
  {
    CampaignConfig config = tiny_config();
    config.arms[0].scheme = "HAL9000";
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
  {
    CampaignConfig config = tiny_config();
    config.phases[0].scenario.family = "not-a-family";
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
  {
    // "Fugu" without retrain has no TTP to stream with — caught up front.
    CampaignConfig config = tiny_config();
    config.arms[1].retrain = false;
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
  {
    CampaignConfig config = tiny_config();
    config.phases[0].days = 0;
    EXPECT_THROW(Campaign{config}, RequirementError);
  }
}

TEST(Campaign, FingerprintTracksIdentityKnobsOnly) {
  const CampaignConfig base = tiny_config();
  CampaignConfig threads = base;
  threads.num_threads = 1;
  threads.checkpoint_dir = "/somewhere/else";
  EXPECT_EQ(base.fingerprint(), threads.fingerprint());

  CampaignConfig seed = base;
  seed.seed = 12;
  EXPECT_NE(base.fingerprint(), seed.fingerprint());

  CampaignConfig phase = base;
  phase.phases.push_back(CampaignPhase{net::ScenarioSpec{"cellular"}, 1});
  EXPECT_NE(base.fingerprint(), phase.fingerprint());

  CampaignConfig arm = base;
  arm.arms[1].train.epochs = 2;
  EXPECT_NE(base.fingerprint(), arm.fingerprint());
}

}  // namespace
}  // namespace puffer::exp
