#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "stats/load_series.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer {
namespace {

namespace obs = puffer::obs;

// --- MetricRegistry basics --------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  obs::MetricRegistry registry;
  const auto id = registry.counter("events");
  registry.add(id);
  registry.add(id, 4);
  const obs::MetricSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].name, "events");
  EXPECT_EQ(snapshot.metrics[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snapshot.metrics[0].value, 5);
}

TEST(Metrics, GaugeTracksHighWater) {
  obs::MetricRegistry registry;
  const auto id = registry.gauge("depth");
  registry.set(id, 3);
  registry.set(id, 7);
  registry.set(id, 2);
  registry.set_max(id, 5);  // below the current high-water, above the value
  const obs::MetricSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.metrics[0].value, 5);
  EXPECT_EQ(snapshot.metrics[0].high_water, 7);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  obs::MetricRegistry registry;
  const auto id = registry.histogram("sizes", {1.0, 4.0, 16.0});
  registry.observe(id, 0.5);   // <= 1
  registry.observe(id, 1.0);   // <= 1 (bounds are inclusive upper bounds)
  registry.observe(id, 3.0);   // <= 4
  registry.observe(id, 100.0); // overflow
  const obs::MetricSnapshot snapshot = registry.snapshot();
  const auto& metric = snapshot.metrics[0];
  ASSERT_EQ(metric.buckets.size(), 4u);
  EXPECT_EQ(metric.buckets[0], 2);
  EXPECT_EQ(metric.buckets[1], 1);
  EXPECT_EQ(metric.buckets[2], 0);
  EXPECT_EQ(metric.buckets[3], 1);
  EXPECT_EQ(metric.count, 4);
  EXPECT_DOUBLE_EQ(metric.min, 0.5);
  EXPECT_DOUBLE_EQ(metric.max, 100.0);
}

TEST(Metrics, RegistrationOrderIsSchemaOrder) {
  obs::MetricRegistry registry;
  registry.counter("b");
  registry.gauge("a");
  registry.histogram("c", {1.0});
  const obs::MetricSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "b");
  EXPECT_EQ(snapshot.metrics[1].name, "a");
  EXPECT_EQ(snapshot.metrics[2].name, "c");
}

TEST(Metrics, FindByName) {
  obs::MetricRegistry registry;
  registry.counter("x");
  registry.counter("y");
  const obs::MetricSnapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.find("y"), nullptr);
  EXPECT_EQ(snapshot.find("y")->name, "y");
  EXPECT_EQ(snapshot.find("missing"), nullptr);
}

// --- merge semantics --------------------------------------------------------

/// A registry with one metric of each kind, filled from `values` — the
/// shared schema for the merge property tests below.
obs::MetricSnapshot make_part(const std::vector<double>& values) {
  obs::MetricRegistry registry;
  const auto events = registry.counter("events");
  const auto peak = registry.gauge("peak");
  const auto sizes = registry.histogram("sizes", {1.0, 8.0, 64.0});
  for (const double v : values) {
    registry.add(events);
    registry.set_max(peak, static_cast<int64_t>(v));
    registry.observe(sizes, v);
  }
  return registry.snapshot();
}

TEST(MetricsMerge, MergeEqualsWhole) {
  Rng rng{11};
  std::vector<double> all;
  for (int i = 0; i < 200; i++) {
    all.push_back(rng.uniform(0.0, 100.0));
  }
  const obs::MetricSnapshot whole = make_part(all);

  // Split into 4 parts round-robin (arbitrary partition) and merge.
  std::vector<std::vector<double>> parts(4);
  for (size_t i = 0; i < all.size(); i++) {
    parts[i % 4].push_back(all[i]);
  }
  obs::MetricSnapshot merged;
  for (const auto& part : parts) {
    merged.merge_from(make_part(part));
  }
  EXPECT_EQ(merged, whole);
}

TEST(MetricsMerge, OrderIndependent) {
  Rng rng{12};
  std::vector<std::vector<double>> parts(3);
  for (size_t p = 0; p < parts.size(); p++) {
    for (int i = 0; i < 50; i++) {
      parts[p].push_back(rng.uniform(0.0, 50.0));
    }
  }
  obs::MetricSnapshot forward, backward;
  for (size_t p = 0; p < parts.size(); p++) {
    forward.merge_from(make_part(parts[p]));
    backward.merge_from(make_part(parts[parts.size() - 1 - p]));
  }
  EXPECT_EQ(forward, backward);
}

TEST(MetricsMerge, Associative) {
  const obs::MetricSnapshot a = make_part({1.0, 5.0});
  const obs::MetricSnapshot b = make_part({9.0, 2.0, 70.0});
  const obs::MetricSnapshot c = make_part({0.5});

  obs::MetricSnapshot left = a;  // (a + b) + c
  left.merge_from(b);
  left.merge_from(c);

  obs::MetricSnapshot bc = b;  // a + (b + c)
  bc.merge_from(c);
  obs::MetricSnapshot right = a;
  right.merge_from(bc);

  EXPECT_EQ(left, right);
}

TEST(MetricsMerge, EmptySnapshotsAreIdentity) {
  const obs::MetricSnapshot part = make_part({3.0, 42.0});
  obs::MetricSnapshot adopted;
  adopted.merge_from(part);  // empty adopts other
  EXPECT_EQ(adopted, part);
  obs::MetricSnapshot kept = part;
  kept.merge_from(obs::MetricSnapshot{});  // merging empty is a no-op
  EXPECT_EQ(kept, part);
}

TEST(MetricsMerge, SchemaMismatchThrows) {
  obs::MetricRegistry a, b;
  a.counter("x");
  b.counter("y");
  obs::MetricSnapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge_from(b.snapshot()), RequirementError);
}

TEST(MetricsMerge, AppendConcatenatesSchemas) {
  obs::MetricRegistry a, b;
  a.counter("first");
  b.counter("second");
  obs::MetricSnapshot combined = a.snapshot();
  combined.append_from(b.snapshot());
  ASSERT_EQ(combined.metrics.size(), 2u);
  EXPECT_EQ(combined.metrics[0].name, "first");
  EXPECT_EQ(combined.metrics[1].name, "second");
}

// --- determinism classes ----------------------------------------------------

TEST(Metrics, DeterministicViewFiltersClasses) {
  obs::MetricRegistry registry;
  registry.counter("invariant");
  registry.counter("per_shard", {.shard_local = true});
  registry.gauge("racy", {.scheduling_dependent = true});
  const obs::MetricSnapshot snapshot = registry.snapshot();

  const obs::MetricSnapshot same_shards = snapshot.deterministic_view(true);
  ASSERT_EQ(same_shards.metrics.size(), 2u);
  EXPECT_EQ(same_shards.metrics[0].name, "invariant");
  EXPECT_EQ(same_shards.metrics[1].name, "per_shard");

  const obs::MetricSnapshot cross_shards = snapshot.deterministic_view(false);
  ASSERT_EQ(cross_shards.metrics.size(), 1u);
  EXPECT_EQ(cross_shards.metrics[0].name, "invariant");
}

TEST(Metrics, ToJsonIsWellFormed) {
  obs::MetricRegistry registry;
  const auto id = registry.histogram("h\"quoted\"", {2.0});
  registry.observe(id, 1.0);
  registry.counter("empty_counter");
  registry.histogram("empty_hist", {1.0});
  const std::string json = registry.snapshot().to_json();
  // Structural sanity: balanced braces/brackets, escaped quote, and the
  // empty histogram's non-finite extremes rendered as null.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("h\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  size_t depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      ASSERT_GT(depth, 0u);
      depth--;
    }
  }
  EXPECT_EQ(depth, 0u);
  EXPECT_FALSE(in_string);
}

// --- TraceWriter ------------------------------------------------------------

obs::TraceWriter make_trace() {
  obs::TraceWriter trace;
  trace.process_name(obs::kSimTracePid, "virtual time (sim)");
  trace.thread_name(obs::kSimTracePid, 0, "shard 0");
  trace.instant(obs::kSimTracePid, 0, "arrive", 1.5e6);
  obs::TraceArgs args;
  args.add("size", static_cast<int64_t>(3));
  args.add("label", "a\"b");
  args.add("ratio", 0.25);
  trace.complete(obs::kSimTracePid, 0, "batch", 1.5e6, 2.0e5, args.str());
  trace.counter(obs::kSimTracePid, "depth", 1.5e6, 3.0);
  return trace;
}

TEST(Trace, ByteIdenticalAcrossRepeatRuns) {
  const std::string a = make_trace().str();
  const std::string b = make_trace().str();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(Trace, RendersChromeTraceShape) {
  const obs::TraceWriter trace = make_trace();
  EXPECT_EQ(trace.event_count(), 5u);
  const std::string json = trace.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);        // escaped arg
}

TEST(Trace, AppendFromSplicesInCallOrder) {
  obs::TraceWriter shard0, shard1, merged;
  shard0.instant(obs::kSimTracePid, 0, "a", 1.0);
  shard1.instant(obs::kSimTracePid, 1, "b", 2.0);
  merged.append_from(shard0);
  merged.append_from(shard1);
  EXPECT_EQ(merged.event_count(), 2u);
  const std::string json = merged.str();
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
}

// --- LoadSeries export ------------------------------------------------------

TEST(LoadSeries, ExportPointsFinalizesPendingDeltas) {
  stats::LoadSeries load;
  load.add(1.0, +1);
  load.add(3.0, +1);
  load.add(5.0, -2);
  const auto& points = load.export_points();  // no explicit finalize()
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].time_s, 1.0);
  EXPECT_EQ(points[0].level, 1);
  EXPECT_EQ(points[1].level, 2);
  EXPECT_EQ(points[2].level, 0);
}

// --- ProfScope (perf plane) -------------------------------------------------

TEST(Prof, ScopesRecordWhenCompiledIn) {
  obs::prof_reset();
  obs::set_prof_enabled(true);
  {
    const obs::ProfScope scope{"test.scope"};
  }
  const obs::ProfSnapshot snapshot = obs::prof_snapshot();
  const std::vector<obs::ProfScopeStats> merged = snapshot.merged();
  const obs::ProfScopeStats* stats =
      obs::ProfSnapshot::find(merged, "test.scope");
  if (obs::kProfilingCompiled) {
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->count, 1);
    EXPECT_GE(stats->total_ns, 0);
    EXPECT_LE(stats->min_ns, stats->max_ns);
  } else {
    EXPECT_EQ(stats, nullptr);  // no-op build: query API returns empty
  }
  obs::prof_reset();
}

TEST(Prof, RuntimeGateSkipsRecording) {
  obs::prof_reset();
  obs::set_prof_enabled(false);
  {
    const obs::ProfScope scope{"gated.scope"};
  }
  obs::set_prof_enabled(true);
  const obs::ProfSnapshot snapshot = obs::prof_snapshot();
  EXPECT_EQ(obs::ProfSnapshot::find(snapshot.merged(), "gated.scope"),
            nullptr);
  obs::prof_reset();
}

TEST(Prof, ResetClearsCallingThread) {
  obs::set_prof_enabled(true);
  {
    const obs::ProfScope scope{"reset.scope"};
  }
  obs::prof_reset();
  const obs::ProfSnapshot snapshot = obs::prof_snapshot();
  EXPECT_EQ(obs::ProfSnapshot::find(snapshot.merged(), "reset.scope"),
            nullptr);
}

TEST(Prof, ExportTraceEmitsWallLanes) {
  obs::prof_reset();
  obs::set_prof_enabled(true);
  {
    const obs::ProfScope scope{"traced.scope"};
  }
  obs::TraceWriter trace;
  obs::prof_export_trace(trace);
  if (obs::kProfilingCompiled) {
    EXPECT_NE(trace.str().find("traced.scope"), std::string::npos);
  } else {
    EXPECT_EQ(trace.event_count(), 0u);
  }
  obs::prof_reset();
}

}  // namespace
}  // namespace puffer
