#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "exp/trial.hh"
#include "net/scenario.hh"
#include "net/trace_file.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::net {
namespace {

constexpr double kMbps = 1e6 / 8.0;  // bytes/s per Mbit/s

/// Families every test in this file expects to be registered.
const std::vector<std::string> kBuiltinSynthetic = {
    "puffer",  "fcc-emulation", "markov-cs2p",      "cellular",
    "diurnal", "wifi-oscillating", "satellite"};

TEST(ScenarioRegistry, BuiltinFamiliesRegistered) {
  const auto& registry = scenario_registry();
  for (const auto& name : kBuiltinSynthetic) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.description(name).empty()) << name;
  }
  EXPECT_TRUE(registry.contains("trace-replay"));
  // The ISSUE's floor: at least 6 families resolvable by name.
  EXPECT_GE(registry.names().size(), 6u);
  // names() is sorted and consistent with contains().
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    EXPECT_TRUE(registry.contains(name));
  }
}

TEST(ScenarioRegistry, UnknownFamilyThrows) {
  EXPECT_THROW(make_path_generator(ScenarioSpec{"undersea-cable"}),
               RequirementError);
  EXPECT_THROW(
      static_cast<void>(scenario_registry().description("undersea-cable")),
      RequirementError);
}

TEST(ScenarioRegistry, TraceReplayRequiresPath) {
  EXPECT_THROW(make_path_generator(ScenarioSpec{"trace-replay"}),
               RequirementError);
}

TEST(ScenarioRegistry, CustomFamilyIsARegistrationNotARefactor) {
  // A new workload plugs in without touching the engine: register, resolve,
  // sample, and run it through the full trial machinery by name.
  ScenarioRegistry registry;
  registry.register_family(
      "constant-10", "flat 10 Mbit/s (test fixture)",
      [](const ScenarioSpec&) -> std::unique_ptr<PathGenerator> {
        class Constant : public PathGenerator {
         public:
          NetworkPath sample_path(Rng&, double duration_s) const override {
            const size_t n = static_cast<size_t>(duration_s) + 1;
            return NetworkPath{
                ThroughputTrace{std::vector<double>(n, 10.0 * kMbps), 1.0},
                0.040};
          }
        };
        return std::make_unique<Constant>();
      });
  EXPECT_TRUE(registry.contains("constant-10"));
  Rng rng{1};
  const NetworkPath path =
      registry.make(ScenarioSpec{"constant-10"})->sample_path(rng, 30.0);
  EXPECT_DOUBLE_EQ(path.trace.mean_rate(), 10.0 * kMbps);
}

TEST(ScenarioRegistry, SpecKeyIsStable) {
  EXPECT_EQ(ScenarioSpec{}.key(), "puffer:");
  EXPECT_EQ((ScenarioSpec{"trace-replay", "/tmp/x.trace"}.key()),
            "trace-replay:/tmp/x.trace");
  EXPECT_EQ(ScenarioSpec{"cellular"}, ScenarioSpec{"cellular"});
  EXPECT_FALSE(ScenarioSpec{"cellular"} == ScenarioSpec{"satellite"});
}

TEST(ScenarioRegistry, SpecParseInvertsKey) {
  EXPECT_EQ(ScenarioSpec::parse("cellular"), ScenarioSpec{"cellular"});
  EXPECT_EQ(ScenarioSpec::parse("puffer:"), ScenarioSpec{"puffer"});
  EXPECT_EQ(ScenarioSpec::parse("trace-replay:/tmp/x.trace"),
            (ScenarioSpec{"trace-replay", "/tmp/x.trace"}));
  const ScenarioSpec spec{"trace-replay", "/tmp/a:b.trace"};
  EXPECT_EQ(ScenarioSpec::parse(spec.key()), spec);
  EXPECT_THROW(ScenarioSpec::parse(""), RequirementError);
}

TEST(ScenarioRegistry, SpecParseErrorsArePrecise) {
  try {
    static_cast<void>(ScenarioSpec::parse(":x"));
    FAIL() << "expected RequirementError";
  } catch (const RequirementError& error) {
    EXPECT_NE(std::string{error.what()}.find("empty family"),
              std::string::npos);
  }
  try {
    static_cast<void>(ScenarioSpec::parse("marsnet:dust-storm"));
    FAIL() << "expected RequirementError";
  } catch (const RequirementError& error) {
    const std::string message = error.what();
    // Names the offending family and lists the registered ones.
    EXPECT_NE(message.find("marsnet"), std::string::npos);
    EXPECT_NE(message.find("puffer"), std::string::npos);
    EXPECT_NE(message.find("trace-replay"), std::string::npos);
  }
}

TEST(ScenarioFamilies, DeterministicPerSeed) {
  // Same (family, seed) -> bit-identical path; different seed -> different.
  for (const auto& family : kBuiltinSynthetic) {
    const auto generator = make_path_generator(ScenarioSpec{family});
    Rng a{99}, b{99}, c{100};
    const NetworkPath pa = generator->sample_path(a, 300.0);
    const NetworkPath pb = generator->sample_path(b, 300.0);
    const NetworkPath pc = generator->sample_path(c, 300.0);
    EXPECT_EQ(pa.trace.rates(), pb.trace.rates()) << family;
    EXPECT_DOUBLE_EQ(pa.min_rtt_s, pb.min_rtt_s) << family;
    EXPECT_NE(pa.trace.rates(), pc.trace.rates()) << family;
  }
}

TEST(ScenarioFamilies, PathsArePlausible) {
  for (const auto& family : kBuiltinSynthetic) {
    const auto generator = make_path_generator(ScenarioSpec{family});
    Rng rng{7};
    for (int i = 0; i < 20; i++) {
      const NetworkPath path = generator->sample_path(rng, 600.0);
      EXPECT_GE(path.trace.duration(), 600.0) << family;
      EXPECT_GT(path.min_rtt_s, 0.0) << family;
      EXPECT_LT(path.min_rtt_s, 1.0) << family;
      for (const double rate : path.trace.rates()) {
        EXPECT_GT(rate, 0.0) << family;
        EXPECT_LT(rate, 500.0 * kMbps) << family;
      }
    }
  }
}

TEST(ScenarioFamilies, SatelliteHasGeoRtt) {
  const auto generator = make_path_generator(ScenarioSpec{"satellite"});
  Rng rng{11};
  for (int i = 0; i < 30; i++) {
    const NetworkPath path = generator->sample_path(rng, 120.0);
    EXPECT_GE(path.min_rtt_s, 0.45);
    EXPECT_LE(path.min_rtt_s, 0.90);
  }
}

TEST(ScenarioFamilies, SatelliteRainFadesAttenuate) {
  SatellitePathModel model;
  Rng rng{12};
  int faded_segments = 0, total = 0;
  for (int i = 0; i < 40; i++) {
    const NetworkPath path = model.sample_path(rng, 1800.0);
    const double typical = path.trace.mean_rate();
    for (const double rate : path.trace.rates()) {
      total++;
      if (rate < 0.25 * typical) {
        faded_segments++;
      }
    }
  }
  EXPECT_GT(faded_segments, 0);
  // Fades are episodes, not the norm.
  EXPECT_LT(static_cast<double>(faded_segments) / total, 0.35);
}

TEST(ScenarioFamilies, CellularWalksThroughStates) {
  CellularPathModel model;
  Rng rng{13};
  const NetworkPath path = model.sample_path(rng, 3600.0);
  // Fast fading: substantial segment-to-segment variation.
  const auto& rates = path.trace.rates();
  int big_moves = 0;
  for (size_t i = 1; i < rates.size(); i++) {
    if (rates[i] > 1.5 * rates[i - 1] || rates[i] < rates[i - 1] / 1.5) {
      big_moves++;
    }
  }
  EXPECT_GT(big_moves, static_cast<int>(rates.size()) / 10);
  // The hidden chain visits both slow and fast regimes over an hour.
  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  EXPECT_GT(hi / lo, 10.0);
}

TEST(ScenarioFamilies, DiurnalSagsAtPeakHour) {
  DiurnalPathConfig config;
  config.noise_sigma = 0.0;  // isolate the deterministic daily cycle
  config.log10_rate_sigma = 0.0;
  const DiurnalPathModel model{config};
  Rng rng{14};
  // A 24-hour trace must show the full swing: trough near trough_fraction
  // of the peak.
  const NetworkPath path = model.sample_path(rng, 24.0 * 3600.0);
  const auto& rates = path.trace.rates();
  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  EXPECT_NEAR(lo / hi, config.trough_fraction, 0.05);
}

TEST(ScenarioFamilies, WifiOscillatesBetweenTwoLevels) {
  WifiPathConfig config;
  config.noise_sigma = 0.0;
  config.fade_rate_hz = 0.0;  // isolate the duty-cycle oscillation
  const WifiPathModel model{config};
  Rng rng{15};
  const NetworkPath path = model.sample_path(rng, 600.0);
  const auto& rates = path.trace.rates();
  const double hi = *std::max_element(rates.begin(), rates.end());
  int good = 0, degraded = 0;
  for (const double rate : rates) {
    if (rate > 0.9 * hi) {
      good++;
    } else if (rate < 0.3 * hi) {
      degraded++;
    }
  }
  // Two clean levels, roughly duty_cycle apart in occupancy.
  EXPECT_EQ(good + degraded, static_cast<int>(rates.size()));
  EXPECT_NEAR(static_cast<double>(good) / static_cast<double>(rates.size()),
              config.duty_cycle, 0.10);
}

TEST(TraceReplay, ReplaysAndLoopsTheFile) {
  // 12 Mbit/s for 2 s -> evenly spaced delivery opportunities.
  const ThroughputTrace source{{12.0 * kMbps, 12.0 * kMbps}, 1.0};
  const std::string path = ::testing::TempDir() + "/replay.trace";
  TraceFile::from_trace(source).save(path);

  const auto generator =
      make_path_generator(ScenarioSpec{"trace-replay", path});
  Rng rng{1};
  const NetworkPath replayed = generator->sample_path(rng, 60.0);
  // Looped to cover the session.
  EXPECT_GE(replayed.trace.duration(), 60.0);
  EXPECT_DOUBLE_EQ(replayed.min_rtt_s, 0.040);
  EXPECT_NEAR(replayed.trace.mean_rate(), 12.0 * kMbps, 0.5 * kMbps);
  // Replay is deterministic: every session sees the identical trace.
  Rng other{999};
  EXPECT_EQ(generator->sample_path(other, 60.0).trace.rates(),
            replayed.trace.rates());
  std::remove(path.c_str());
}

TEST(TraceReplay, DrivesAFullSimulatedSession) {
  // Acceptance: a Mahimahi-style trace file round-trips through save/load
  // and drives a full simulated session end to end.
  Rng trace_rng{33};
  const NetworkPath source =
      FccTraceModel{}.sample_path(trace_rng, 1800.0);
  const TraceFile file = TraceFile::from_trace(source.trace);
  const std::string path = ::testing::TempDir() + "/session.trace";
  file.save(path);
  ASSERT_EQ(TraceFile::load(path), file);

  exp::TrialConfig config;
  config.schemes = {"BBA"};
  config.sessions_per_scheme = 8;
  config.seed = 21;
  config.scenario = ScenarioSpec{"trace-replay", path};
  const exp::SchemeArtifacts none;
  const exp::TrialResult trial = exp::run_trial(config, none);

  const auto& result = trial.result_for("BBA");
  EXPECT_EQ(result.consort.sessions, 8);
  EXPECT_GT(result.consort.considered, 0);
  for (const auto& figures : result.considered) {
    EXPECT_GT(figures.watch_time_s, 0.0);
    // The FCC trace is capped at 12 Mbit/s; delivery rates must respect the
    // replayed capacity.
    EXPECT_LT(figures.mean_delivery_rate_mbps, 13.0);
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, TrialOverEveryFamilyProducesConsideredStreams) {
  // Every registered synthetic family can drive the full trial machinery.
  for (const auto& family : kBuiltinSynthetic) {
    exp::TrialConfig config;
    config.schemes = {"BBA"};
    config.sessions_per_scheme = 6;
    config.seed = 5;
    config.scenario = ScenarioSpec{family};
    const exp::SchemeArtifacts none;
    const exp::TrialResult trial = exp::run_trial(config, none);
    EXPECT_EQ(trial.result_for("BBA").consort.sessions, 6) << family;
    EXPECT_GT(trial.result_for("BBA").consort.streams, 0) << family;
  }
}

}  // namespace
}  // namespace puffer::net
