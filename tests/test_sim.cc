#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "abr/bba.hh"
#include "net/bbr.hh"
#include "sim/session.hh"
#include "sim/user_model.hh"
#include "util/running_stats.hh"

namespace puffer::sim {
namespace {

constexpr double kMbps = 1e6 / 8.0;

/// Trivial ABR that always picks a fixed rung — isolates session mechanics
/// from adaptation logic.
class FixedRung final : public abr::AbrAlgorithm {
 public:
  explicit FixedRung(const int rung) : rung_(rung) {}
  [[nodiscard]] std::string_view name() const override { return "Fixed"; }
  void reset_session() override {}
  int choose_rung(const abr::AbrObservation&,
                  std::span<const media::ChunkOptions>) override {
    return rung_;
  }
  void on_chunk_complete(const abr::ChunkRecord&) override {}

 private:
  int rung_;
};

net::NetworkPath constant_path(const double rate_mbps,
                               const double duration_s = 3600.0) {
  const size_t n = static_cast<size_t>(duration_s) + 1;
  return net::NetworkPath{
      net::ThroughputTrace{std::vector<double>(n, rate_mbps * kMbps), 1.0},
      0.040};
}

net::TcpSender make_sender(const net::NetworkPath& path) {
  return net::TcpSender{path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(path)};
}

UserBehavior patient_viewer(const double intent_s) {
  UserBehavior user;
  user.watch_intent_s = intent_s;
  user.stall_patience_s = 1e9;
  user.stall_hazard_per_s = 0.0;
  user.quality_hazard_per_s_db = 0.0;
  return user;
}

media::VbrVideoSource make_video(const uint64_t seed = 1) {
  return media::VbrVideoSource{media::default_channels()[0], seed};
}

TEST(RunStream, AmpleBandwidthNeverStalls) {
  const auto path = constant_path(50.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{5};
  auto video = make_video();
  Rng rng{1};
  const auto outcome = run_stream(sender, abr, video, 0,
                                  patient_viewer(120.0), rng);
  EXPECT_TRUE(outcome.began_playing);
  EXPECT_DOUBLE_EQ(outcome.figures.stall_time_s, 0.0);
  EXPECT_NEAR(outcome.figures.watch_time_s, 120.0, 3.0);
  EXPECT_GT(outcome.chunks_played, 50);
}

TEST(RunStream, MaxStreamChunksCapsTheSimulationBudget) {
  const auto path = constant_path(50.0);
  StreamRunConfig capped;
  capped.max_stream_chunks = 10;

  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{5};
  auto video = make_video();
  Rng rng{1};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(1e6), rng, capped);
  EXPECT_TRUE(outcome.began_playing);
  EXPECT_EQ(outcome.chunks_played, 10);
  EXPECT_EQ(outcome.transfer_log.size(), 10u);

  // The default (0) is unlimited: the same viewer watches far longer.
  auto sender2 = make_sender(path);
  sim::send_preamble(sender2);
  FixedRung abr2{5};
  auto video2 = make_video();
  Rng rng2{1};
  const auto uncapped =
      run_stream(sender2, abr2, video2, 0, patient_viewer(120.0), rng2);
  EXPECT_GT(uncapped.chunks_played, 10);
}

TEST(RunStream, StartupDelayPositiveAndSmallOnFastPath) {
  const auto path = constant_path(50.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{0};
  auto video = make_video();
  Rng rng{2};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(30.0), rng);
  EXPECT_GT(outcome.figures.startup_delay_s, 0.0);
  EXPECT_LT(outcome.figures.startup_delay_s, 1.5);
}

TEST(RunStream, OverAggressiveRungStallsOnSlowPath) {
  const auto path = constant_path(1.0);  // 1 Mbit/s
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{9};  // 5.5 Mbit/s nominal: impossible
  auto video = make_video();
  Rng rng{3};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(60.0), rng);
  EXPECT_GT(outcome.figures.stall_time_s, 10.0);
}

TEST(RunStream, LowestRungSurvivesSlowPath) {
  const auto path = constant_path(1.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{0};  // 200 kbit/s nominal
  auto video = make_video();
  Rng rng{4};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(60.0), rng);
  EXPECT_LT(outcome.figures.stall_time_s, 1.0);
}

TEST(RunStream, ZapperLeavesBeforePlaybackBegins) {
  const auto path = constant_path(0.8);  // startup takes a while
  auto sender = make_sender(path);
  FixedRung abr{0};
  auto video = make_video();
  Rng rng{5};
  UserBehavior zapper = patient_viewer(0.05);  // leaves after 50 ms
  const auto outcome = run_stream(sender, abr, video, 0, zapper, rng);
  EXPECT_FALSE(outcome.began_playing);
  EXPECT_EQ(outcome.chunks_played, 0);
}

TEST(RunStream, ImpatientViewerAbandonsDuringStall) {
  const auto path = constant_path(0.9);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{9};  // guaranteed stalls
  auto video = make_video();
  Rng rng{6};
  UserBehavior user = patient_viewer(600.0);
  user.stall_patience_s = 3.0;
  const auto outcome = run_stream(sender, abr, video, 0, user, rng);
  // The user left long before their 10-minute intent.
  EXPECT_LT(outcome.figures.watch_time_s, 120.0);
  EXPECT_GT(outcome.figures.stall_time_s, 0.0);
}

TEST(RunStream, WallTimeCoversWatchAndStartup) {
  const auto path = constant_path(20.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{3};
  auto video = make_video();
  Rng rng{7};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(60.0), rng);
  EXPECT_GE(outcome.wall_time_s + 1e-9,
            outcome.figures.watch_time_s + outcome.figures.startup_delay_s -
                15.1);  // minus at most one buffer of unplayed chunks
  EXPECT_GE(outcome.wall_time_s, outcome.figures.watch_time_s * 0.9);
}

TEST(RunStream, TransferLogMatchesChunksPlayed) {
  const auto path = constant_path(20.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{3};
  auto video = make_video();
  Rng rng{8};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(45.0), rng);
  EXPECT_EQ(outcome.transfer_log.size(),
            static_cast<size_t>(outcome.chunks_played));
  for (const auto& entry : outcome.transfer_log) {
    EXPECT_GT(entry.size_mb, 0.0);
    EXPECT_GT(entry.tx_time_s, 0.0);
    EXPECT_GT(entry.tcp_at_send.cwnd_pkts, 0.0);
  }
}

TEST(RunStream, SsimTelemetryInPlausibleRange) {
  const auto path = constant_path(30.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{9};
  auto video = make_video();
  Rng rng{9};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(120.0), rng);
  EXPECT_GT(outcome.figures.ssim_mean_db, 12.0);
  EXPECT_LT(outcome.figures.ssim_mean_db, 22.0);
  EXPECT_GT(outcome.figures.ssim_variation_db, 0.0);
  EXPECT_GT(outcome.figures.first_chunk_ssim_db, 5.0);
}

TEST(RunStream, MeanBitrateTracksChosenRung) {
  const auto path = constant_path(30.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung low{0}, high{9};
  auto video1 = make_video(10);
  auto video2 = make_video(10);
  Rng rng{10};
  const auto lo =
      run_stream(sender, low, video1, 0, patient_viewer(60.0), rng);
  const auto hi =
      run_stream(sender, high, video2, 0, patient_viewer(60.0), rng);
  EXPECT_GT(hi.figures.mean_bitrate_mbps, 5.0 * lo.figures.mean_bitrate_mbps);
}

TEST(RunStream, MeanDeliveryRateClassifiesSlowPath) {
  const auto slow_path = constant_path(2.0);
  auto sender = make_sender(slow_path);
  sim::send_preamble(sender);
  FixedRung abr{2};
  auto video = make_video(11);
  Rng rng{11};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(90.0), rng);
  EXPECT_GT(outcome.figures.mean_delivery_rate_mbps, 0.0);
  EXPECT_LT(outcome.figures.mean_delivery_rate_mbps, 6.0);
}

TEST(RunStream, BufferCapThrottlesSending) {
  // On a very fast path the server must not run unboundedly ahead: wall time
  // tracks played time, not download speed.
  const auto path = constant_path(200.0);
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{0};  // tiny chunks: could download hours of video in seconds
  auto video = make_video(12);
  Rng rng{12};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(60.0), rng);
  // 60 s of content, max buffer 15 s: at most ~75 s of chunks fetched.
  EXPECT_LE(outcome.chunks_played * media::kChunkDurationS, 80.0);
}

TEST(RunStream, OutageInMiddleCausesStallOrAbandon) {
  // 20 s outage in the middle of an otherwise fast trace.
  std::vector<double> rates(600, 20.0 * kMbps);
  for (size_t i = 60; i < 80; i++) {
    rates[i] = 0.01 * kMbps;
  }
  const net::NetworkPath path{net::ThroughputTrace{rates, 1.0}, 0.040};
  auto sender = make_sender(path);
  sim::send_preamble(sender);
  FixedRung abr{5};
  auto video = make_video(13);
  Rng rng{13};
  const auto outcome =
      run_stream(sender, abr, video, 0, patient_viewer(300.0), rng);
  // The 15 s buffer cannot cover a 20 s outage.
  EXPECT_GT(outcome.figures.stall_time_s, 1.0);
}

TEST(UserModel, WatchIntentHeavyTailed) {
  const UserModel model{99};
  Rng rng{14};
  RunningStats intents;
  int zaps = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    const auto user = model.sample_stream_behavior(rng);
    intents.add(user.watch_intent_s);
    if (user.watch_intent_s < 4.0) {
      zaps++;
    }
  }
  // Median is small (zapping majority), mean dominated by the tail.
  EXPECT_GT(static_cast<double>(zaps) / n, 0.30);
  EXPECT_GT(intents.mean(), 200.0);
  EXPECT_GT(intents.max(), 3600.0);
}

TEST(UserModel, SessionsHaveMultipleStreams) {
  const UserModel model{99};
  Rng rng{15};
  RunningStats streams;
  for (int i = 0; i < 5000; i++) {
    streams.add(model.sample_session(rng).num_streams);
  }
  // Figure A1: ~4.7 streams per session on average.
  EXPECT_GT(streams.mean(), 2.0);
  EXPECT_LT(streams.mean(), 8.0);
}

TEST(UserModel, BounceFractionSmall) {
  const UserModel model{99};
  Rng rng{16};
  int bounces = 0;
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    bounces += model.sample_session(rng).incompatible_or_bounce ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(bounces) / n, 0.02);
  EXPECT_LT(static_cast<double>(bounces) / n, 0.20);
}

TEST(Preamble, WarmsTcpStats) {
  const auto path = constant_path(10.0);
  auto sender = make_sender(path);
  EXPECT_DOUBLE_EQ(sender.info().delivery_rate_bps, 0.0);
  sim::send_preamble(sender);
  // After the preamble the connection has a meaningful delivery-rate
  // estimate — the signal Fugu exploits on cold start (Figure 9).
  EXPECT_GT(sender.info().delivery_rate_bps, 0.5 * kMbps);
}

}  // namespace
}  // namespace puffer::sim
