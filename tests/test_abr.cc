#include <gtest/gtest.h>

#include <cmath>

#include "abr/bba.hh"
#include "abr/throughput_predictors.hh"
#include "test_helpers.hh"
#include "util/require.hh"

namespace puffer::abr {
namespace {

using test::make_lookahead;
using test::make_menu;
using test::record_at_throughput;

TEST(Bba, RateMapEndpoints) {
  Bba bba;
  // Below the reservoir: minimum rate; above the upper reservoir: maximum.
  EXPECT_NEAR(bba.rate_limit_mbps(0.0), 0.2, 1e-9);
  EXPECT_NEAR(bba.rate_limit_mbps(3.0), 0.2, 1e-9);
  EXPECT_NEAR(bba.rate_limit_mbps(14.0), 5.5, 1e-9);
  EXPECT_NEAR(bba.rate_limit_mbps(15.0), 5.5, 1e-9);
}

TEST(Bba, RateMapLinearInCushion) {
  Bba bba;
  const double mid = (3.75 + 13.125) / 2.0;
  EXPECT_NEAR(bba.rate_limit_mbps(mid), (0.2 + 5.5) / 2.0, 1e-9);
  // Monotone.
  double prev = 0.0;
  for (double b = 0.0; b <= 15.0; b += 0.5) {
    const double limit = bba.rate_limit_mbps(b);
    EXPECT_GE(limit, prev - 1e-12);
    prev = limit;
  }
}

TEST(Bba, EmptyBufferPicksLowestRung) {
  Bba bba;
  AbrObservation obs;
  obs.buffer_s = 0.0;
  const auto lookahead = make_lookahead(1);
  EXPECT_EQ(bba.choose_rung(obs, lookahead), 0);
}

TEST(Bba, FullBufferPicksTopRung) {
  Bba bba;
  AbrObservation obs;
  obs.buffer_s = 15.0;
  const auto lookahead = make_lookahead(1);
  EXPECT_EQ(bba.choose_rung(obs, lookahead), media::kNumRungs - 1);
}

TEST(Bba, ChoiceMonotoneInBuffer) {
  Bba bba;
  const auto lookahead = make_lookahead(1);
  int prev = 0;
  for (double b = 0.0; b <= 15.0; b += 0.25) {
    AbrObservation obs;
    obs.buffer_s = b;
    const int rung = bba.choose_rung(obs, lookahead);
    EXPECT_GE(rung, prev);
    prev = rung;
  }
}

TEST(Bba, OversizedChunksForceLowerRung) {
  Bba bba;
  AbrObservation obs;
  obs.buffer_s = 8.0;  // mid-cushion
  const auto normal = make_lookahead(1, 1.0);
  const auto huge = make_lookahead(1, 3.0);  // a complex scene: 3x sizes
  EXPECT_GT(bba.choose_rung(obs, normal), bba.choose_rung(obs, huge));
}

TEST(Bba, RejectsBadConfig) {
  BbaConfig bad;
  bad.reservoir_s = 10.0;
  bad.upper_reservoir_s = 5.0;
  EXPECT_THROW(Bba{bad}, RequirementError);
}

TEST(HarmonicMean, SingleSample) {
  HarmonicMeanPredictor predictor;
  predictor.on_chunk_complete(record_at_throughput(0, 1e6, 2e6));
  EXPECT_NEAR(predictor.predicted_throughput(), 2e6, 1.0);
}

TEST(HarmonicMean, MatchesClosedForm) {
  HarmonicMeanPredictor predictor;
  // Throughputs 1, 2, 4 MB/s -> HM = 3 / (1 + 0.5 + 0.25) = 12/7 MB/s.
  predictor.on_chunk_complete(record_at_throughput(0, 1e6, 1e6));
  predictor.on_chunk_complete(record_at_throughput(1, 1e6, 2e6));
  predictor.on_chunk_complete(record_at_throughput(2, 1e6, 4e6));
  EXPECT_NEAR(predictor.predicted_throughput(), 12.0 / 7.0 * 1e6, 10.0);
}

TEST(HarmonicMean, WindowKeepsLastFive) {
  HarmonicMeanPredictor predictor{5};
  for (int i = 0; i < 10; i++) {
    predictor.on_chunk_complete(record_at_throughput(i, 1e6, 1e6));
  }
  // Now five fast samples push the old ones out entirely.
  for (int i = 10; i < 15; i++) {
    predictor.on_chunk_complete(record_at_throughput(i, 1e6, 8e6));
  }
  EXPECT_NEAR(predictor.predicted_throughput(), 8e6, 100.0);
}

TEST(HarmonicMean, HmIsDominatedBySlowSamples) {
  HarmonicMeanPredictor predictor;
  predictor.on_chunk_complete(record_at_throughput(0, 1e6, 10e6));
  predictor.on_chunk_complete(record_at_throughput(1, 1e6, 0.1e6));
  // HM = 2/(0.1+10) per MB ~ 0.198 MB/s: close to the slow sample.
  EXPECT_LT(predictor.predicted_throughput(), 0.25e6);
}

TEST(HarmonicMean, PredictIsPointMassWithTxTime) {
  HarmonicMeanPredictor predictor;
  predictor.on_chunk_complete(record_at_throughput(0, 1e6, 2e6));
  const TxTimeDistribution dist = predictor.predict(0, 4'000'000);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist[0].probability, 1.0);
  EXPECT_NEAR(dist[0].time_s, 2.0, 1e-6);
}

TEST(HarmonicMean, ColdStartUsesConservativeDefault) {
  HarmonicMeanPredictor predictor;
  const TxTimeDistribution dist = predictor.predict(0, 375'000);
  ASSERT_EQ(dist.size(), 1u);
  // 375 kB at the 3 Mbit/s cold-start default = 1 s.
  EXPECT_NEAR(dist[0].time_s, 1.0, 1e-6);
}

TEST(HarmonicMean, ResetClearsHistory) {
  HarmonicMeanPredictor predictor;
  predictor.on_chunk_complete(record_at_throughput(0, 1e6, 50e6));
  predictor.reset_session();
  const TxTimeDistribution dist = predictor.predict(0, 375'000);
  EXPECT_NEAR(dist[0].time_s, 1.0, 1e-6);  // back to the cold-start default
}

TEST(RobustPredictor, NoErrorsMeansNoDiscount) {
  RobustThroughputPredictor robust;
  HarmonicMeanPredictor plain;
  robust.on_chunk_complete(record_at_throughput(0, 1e6, 2e6));
  plain.on_chunk_complete(record_at_throughput(0, 1e6, 2e6));
  // Only one sample: no error history yet, so the estimates agree.
  EXPECT_NEAR(robust.predict(0, 1'000'000)[0].time_s,
              plain.predict(0, 1'000'000)[0].time_s, 1e-3);
}

TEST(RobustPredictor, DiscountsAfterVolatileHistory) {
  RobustThroughputPredictor robust;
  HarmonicMeanPredictor plain;
  // Alternate fast/slow: large relative errors accumulate.
  for (int i = 0; i < 6; i++) {
    const double rate = (i % 2 == 0) ? 8e6 : 0.5e6;
    robust.on_chunk_complete(record_at_throughput(i, 1e6, rate));
    plain.on_chunk_complete(record_at_throughput(i, 1e6, rate));
  }
  // The robust estimate must be strictly more pessimistic (longer tx time).
  EXPECT_GT(robust.predict(0, 1'000'000)[0].time_s,
            1.5 * plain.predict(0, 1'000'000)[0].time_s);
}

TEST(RobustPredictor, StableHistoryBarelyDiscounted) {
  RobustThroughputPredictor robust;
  HarmonicMeanPredictor plain;
  for (int i = 0; i < 6; i++) {
    robust.on_chunk_complete(record_at_throughput(i, 1e6, 2e6));
    plain.on_chunk_complete(record_at_throughput(i, 1e6, 2e6));
  }
  EXPECT_NEAR(robust.predict(0, 1'000'000)[0].time_s,
              plain.predict(0, 1'000'000)[0].time_s, 0.02);
}

}  // namespace
}  // namespace puffer::abr
