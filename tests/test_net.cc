#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/bbr.hh"
#include "net/cubic.hh"
#include "net/link.hh"
#include "net/tcp_sender.hh"
#include "net/trace.hh"
#include "net/trace_models.hh"
#include "util/require.hh"
#include "util/running_stats.hh"
#include "util/rng.hh"

namespace puffer::net {
namespace {

constexpr double kMbps = 1e6 / 8.0;  // bytes/s per Mbit/s

TEST(Trace, CapacityLookupAndClamping) {
  ThroughputTrace trace{{100.0, 200.0, 300.0}, 1.0};
  EXPECT_DOUBLE_EQ(trace.capacity_at(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.capacity_at(0.5), 100.0);
  EXPECT_DOUBLE_EQ(trace.capacity_at(1.5), 200.0);
  EXPECT_DOUBLE_EQ(trace.capacity_at(2.5), 300.0);
  EXPECT_DOUBLE_EQ(trace.capacity_at(99.0), 300.0);  // extends last segment
  EXPECT_DOUBLE_EQ(trace.duration(), 3.0);
  EXPECT_DOUBLE_EQ(trace.mean_rate(), 200.0);
}

TEST(Trace, RejectsEmptyAndNegative) {
  EXPECT_THROW(ThroughputTrace({}, 1.0), RequirementError);
  EXPECT_THROW(ThroughputTrace({-1.0}, 1.0), RequirementError);
  EXPECT_THROW(ThroughputTrace({1.0}, 0.0), RequirementError);
}

TEST(Link, ConservesBytes) {
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 5000.0};
  double offered_total = 0.0, delivered_total = 0.0, lost_total = 0.0;
  Rng rng{3};
  double now = 0.0;
  for (int i = 0; i < 1000; i++) {
    const double offered = rng.uniform(0.0, 50.0);
    const auto result = link.step(now, 0.01, offered);
    offered_total += offered;
    delivered_total += result.delivered_bytes;
    lost_total += result.lost_bytes;
    now += 0.01;
  }
  EXPECT_NEAR(offered_total, delivered_total + lost_total + link.queue_bytes(),
              1e-6);
}

TEST(Link, DrainRateBoundedByCapacity) {
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 1e9};
  link.step(0.0, 1.0, 5000.0);
  // At 1000 B/s for 1 s only 1000 bytes can exit.
  EXPECT_NEAR(link.queue_bytes(), 4000.0, 1e-9);
}

TEST(Link, DropTailLossBeyondQueueCapacity) {
  ThroughputTrace trace{{1.0}, 1.0};  // nearly stalled link
  LinkSimulator link{trace, 1000.0};
  const auto result = link.step(0.0, 0.01, 2500.0);
  EXPECT_NEAR(result.lost_bytes, 1500.0, 1.0);
  EXPECT_NEAR(link.queue_bytes(), 1000.0 - result.delivered_bytes, 1e-9);
}

TEST(Link, ZeroCapacitySegmentHoldsQueue) {
  // A dead middle segment: nothing drains, nothing is lost (queue permitting),
  // and drain() is a no-op while capacity is zero.
  ThroughputTrace trace{{1000.0, 0.0, 1000.0}, 1.0};
  LinkSimulator link{trace, 1e6};
  const auto during_outage = link.step(1.2, 0.1, 500.0);
  EXPECT_DOUBLE_EQ(during_outage.delivered_bytes, 0.0);
  EXPECT_DOUBLE_EQ(during_outage.lost_bytes, 0.0);
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 500.0);
  link.drain(1.4, 0.5);  // still inside the dead segment
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 500.0);
  // Once capacity returns, the backlog drains at line rate.
  const auto after = link.step(2.0, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(after.delivered_bytes, 500.0);
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 0.0);
}

TEST(Link, OutageReportsCappedBlockedDelay) {
  // Regression: a zero-capacity outage used to report the backlog divided by
  // a 1 byte/s floor (~250,000 s of "queueing delay" for a 250 kB queue).
  // It must pin at the outage horizon and raise the blocked flag instead.
  ThroughputTrace trace{{1000.0, 0.0}, 1.0};
  LinkSimulator link{trace, 1e6};
  const auto live = link.step(0.0, 0.5, 2000.0);
  EXPECT_FALSE(live.blocked);
  EXPECT_DOUBLE_EQ(live.delivered_bytes, 500.0);
  EXPECT_DOUBLE_EQ(live.queue_delay_s, 1.5);  // 1500 B backlog at 1000 B/s
  const auto outage = link.step(1.2, 0.1, 100.0);
  EXPECT_TRUE(outage.blocked);
  EXPECT_DOUBLE_EQ(outage.queue_delay_s, LinkSimulator::kQueueDelayCapS);
  // An empty queue during an outage is just idle: no delay, not blocked.
  ThroughputTrace dead{{0.0}, 1.0};
  LinkSimulator idle{dead, 1e6};
  const auto nothing = idle.step(0.0, 0.1, 0.0);
  EXPECT_FALSE(nothing.blocked);
  EXPECT_DOUBLE_EQ(nothing.queue_delay_s, 0.0);
}

TEST(Link, DelayUsesSameMidStepSampleAsDrain) {
  // Regression: the drain used the mid-step capacity but the delay divided
  // by the end-of-step capacity, so a segment boundary inside the step made
  // the reported delay disagree with the drain that actually happened. One
  // consistent sample now feeds both.
  ThroughputTrace trace{{1000.0, 4000.0}, 1.0};
  LinkSimulator link{trace, 1e6};
  // Step [0.8, 1.2): the mid-step instant 1.0 lies in the 4000 B/s segment.
  const auto result = link.step(0.8, 0.4, 2000.0);
  EXPECT_DOUBLE_EQ(result.delivered_bytes, 1600.0);   // 4000 * 0.4
  EXPECT_DOUBLE_EQ(result.queue_delay_s, 400.0 / 4000.0);
}

TEST(Link, OverflowAccountingConservesBytes) {
  // Conservation under heavy loss: offered = delivered + queued + lost,
  // with a queue small enough that drops actually happen.
  ThroughputTrace trace{{800.0, 0.0, 1500.0, 50.0}, 1.0};
  LinkSimulator link{trace, 600.0};
  Rng rng{9};
  double offered_total = 0.0, delivered_total = 0.0, lost_total = 0.0;
  bool saw_loss = false;
  double now = 0.0;
  for (int i = 0; i < 2000; i++) {
    const double offered = rng.uniform(0.0, 30.0);
    const auto result = link.step(now, 0.002, offered);
    offered_total += offered;
    delivered_total += result.delivered_bytes;
    lost_total += result.lost_bytes;
    saw_loss = saw_loss || result.lost_bytes > 0.0;
    // The queue never exceeds its capacity.
    EXPECT_LE(link.queue_bytes(), link.queue_capacity() + 1e-9);
    now += 0.002;
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_GT(lost_total, 0.0);
  EXPECT_NEAR(offered_total,
              delivered_total + lost_total + link.queue_bytes(), 1e-6);
}

TEST(Link, DrainAfterBurstIsRateLimited) {
  // A burst fills the queue; drain() then removes exactly capacity * dt per
  // call, never more, and clamps at empty.
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 1e9};
  link.step(0.0, 0.001, 4000.0);  // burst: ~4000 B backlog, ~1 B drained
  const double backlog = link.queue_bytes();
  EXPECT_NEAR(backlog, 3999.0, 1e-6);
  link.drain(0.001, 1.5);
  EXPECT_NEAR(link.queue_bytes(), backlog - 1500.0, 1e-6);
  link.drain(1.501, 100.0);  // over-long drain clamps at zero
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 0.0);
  link.drain(200.0, 1.0);  // draining an empty queue is a no-op
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 0.0);
}

TEST(Link, StepRejectsBadArguments) {
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 1000.0};
  EXPECT_THROW(link.step(0.0, 0.0, 10.0), RequirementError);
  EXPECT_THROW(link.step(0.0, -1.0, 10.0), RequirementError);
  EXPECT_THROW(link.step(0.0, 0.1, -5.0), RequirementError);
  EXPECT_THROW(LinkSimulator(trace, 0.0), RequirementError);
}

TEST(Link, QueueDelayTracksBacklog) {
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 1e9};
  const auto result = link.step(0.0, 0.001, 2001.0);
  // ~2000 bytes backlog at 1000 B/s -> ~2 s queueing delay.
  EXPECT_NEAR(result.queue_delay_s, 2.0, 0.01);
}

TEST(Link, IdleDrainEmptiesQueue) {
  ThroughputTrace trace{{1000.0}, 1.0};
  LinkSimulator link{trace, 1e9};
  link.step(0.0, 1.0, 3000.0);
  link.drain(1.0, 10.0);
  EXPECT_DOUBLE_EQ(link.queue_bytes(), 0.0);
}

NetworkPath constant_path(const double rate_mbps, const double rtt_s = 0.040,
                          const double duration_s = 3600.0) {
  const size_t n = static_cast<size_t>(duration_s / 1.0) + 1;
  return NetworkPath{ThroughputTrace{std::vector<double>(n, rate_mbps * kMbps),
                                     1.0},
                     rtt_s};
}

TEST(TcpSender, TransferTimeRoughlyMatchesCapacity) {
  const NetworkPath path = constant_path(8.0);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  // Warm up past slow start.
  sender.transfer(2e6);
  const TransferResult result = sender.transfer(4e6);  // 4 MB at 1 MB/s
  EXPECT_NEAR(result.transmission_time(), 4.0, 1.2);
}

TEST(TcpSender, FasterLinkFasterTransfer) {
  const NetworkPath slow = constant_path(3.0);
  const NetworkPath fast = constant_path(30.0);
  TcpSender s1{slow, std::make_unique<BbrModel>(),
               TcpSender::default_queue_capacity(slow)};
  TcpSender s2{fast, std::make_unique<BbrModel>(),
               TcpSender::default_queue_capacity(fast)};
  s1.transfer(1e6);
  s2.transfer(1e6);
  const double t1 = s1.transfer(2e6).transmission_time();
  const double t2 = s2.transfer(2e6).transmission_time();
  EXPECT_GT(t1, 3.0 * t2);
}

TEST(TcpSender, SlowStartRampVisibleOnFirstTransfer) {
  const NetworkPath path = constant_path(50.0);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  // First small transfer is RTT-bound, not capacity-bound: 100 kB at 50
  // Mbit/s would take 16 ms at line rate but needs several RTTs of ramp.
  const double t_first = sender.transfer(100e3).transmission_time();
  EXPECT_GT(t_first, 0.050);
  // After warmup the same transfer is much faster.
  sender.transfer(5e6);
  const double t_warm = sender.transfer(100e3).transmission_time();
  EXPECT_LT(t_warm, t_first);
}

TEST(TcpSender, TcpInfoPlausibleAfterTraffic) {
  const NetworkPath path = constant_path(10.0, 0.060);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  sender.transfer(3e6);
  const TcpInfo& info = sender.info();
  EXPECT_GT(info.cwnd_pkts, 0.0);
  EXPECT_GE(info.srtt_s, 0.055);         // at least propagation
  EXPECT_LT(info.srtt_s, 1.0);           // bounded queueing
  EXPECT_NEAR(info.min_rtt_s, 0.060, 0.01);
  EXPECT_GT(info.delivery_rate_bps, 0.3 * 10.0 * kMbps);
  EXPECT_LT(info.delivery_rate_bps, 1.5 * 10.0 * kMbps);
}

TEST(TcpSender, DeliveryRateStickyAcrossIdle) {
  const NetworkPath path = constant_path(10.0);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  sender.transfer(3e6);
  const double rate_before = sender.info().delivery_rate_bps;
  sender.idle_until(sender.now() + 30.0);
  EXPECT_DOUBLE_EQ(sender.info().delivery_rate_bps, rate_before);
}

TEST(TcpSender, IdleAdvancesClockMonotonically) {
  const NetworkPath path = constant_path(10.0);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  const double t0 = sender.now();
  sender.idle_until(t0 + 5.0);
  EXPECT_NEAR(sender.now(), t0 + 5.0, 0.11);
  EXPECT_THROW(sender.idle_until(t0), RequirementError);
}

TEST(TcpSender, OutageDeadlineBoundsTransfer) {
  // A path that is effectively dead: 8 B/s.
  NetworkPath path{ThroughputTrace{std::vector<double>(4000, 8.0), 1.0}, 0.040};
  TcpSender sender{path, std::make_unique<BbrModel>(), 64e3};
  const TransferResult result = sender.transfer(5e6);
  EXPECT_LE(result.transmission_time(), 601.0);
}

TEST(TcpSender, MeanDeliveryRateReflectsPath) {
  const NetworkPath path = constant_path(8.0);
  TcpSender sender{path, std::make_unique<BbrModel>(),
                   TcpSender::default_queue_capacity(path)};
  for (int i = 0; i < 10; i++) {
    sender.transfer(1e6);
  }
  EXPECT_GT(sender.mean_delivery_rate(), 0.4 * 8.0 * kMbps);
  EXPECT_LT(sender.mean_delivery_rate(), 1.2 * 8.0 * kMbps);
}

/// Both congestion controls should achieve reasonable utilization on a
/// steady link across a range of rates.
class CcUtilization
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(CcUtilization, AchievesReasonableUtilization) {
  const auto& [cc_name, rate_mbps] = GetParam();
  const NetworkPath path = constant_path(rate_mbps);
  std::unique_ptr<CongestionControl> cc;
  if (cc_name == "bbr") {
    cc = std::make_unique<BbrModel>();
  } else {
    cc = std::make_unique<CubicModel>();
  }
  TcpSender sender{path, std::move(cc),
                   TcpSender::default_queue_capacity(path)};
  sender.transfer(2e6);  // warm up
  const double bytes = rate_mbps * kMbps * 10.0;  // ~10 s of data
  const double t = sender.transfer(bytes).transmission_time();
  const double utilization = bytes / (rate_mbps * kMbps) / t;
  EXPECT_GT(utilization, 0.55) << cc_name << " @ " << rate_mbps << " Mbps";
  EXPECT_LT(utilization, 1.05) << cc_name << " @ " << rate_mbps << " Mbps";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcUtilization,
    ::testing::Combine(::testing::Values("bbr", "cubic"),
                       ::testing::Values(1.0, 3.0, 10.0, 40.0)));

TEST(Bbr, ReachesProbeBwOnSteadyLink) {
  const NetworkPath path = constant_path(10.0);
  auto bbr_owner = std::make_unique<BbrModel>();
  BbrModel* bbr = bbr_owner.get();
  TcpSender sender{path, std::move(bbr_owner),
                   TcpSender::default_queue_capacity(path)};
  sender.transfer(8e6);
  EXPECT_EQ(bbr->mode(), BbrModel::Mode::kProbeBw);
  EXPECT_NEAR(bbr->btl_bw_bps(), 10.0 * kMbps, 4.0 * kMbps);
}

TEST(Bbr, TracksCapacityDrop) {
  std::vector<double> rates(200, 20.0 * kMbps);
  for (size_t i = 60; i < rates.size(); i++) {
    rates[i] = 2.0 * kMbps;
  }
  const NetworkPath path{ThroughputTrace{rates, 1.0}, 0.040};
  auto bbr_owner = std::make_unique<BbrModel>();
  BbrModel* bbr = bbr_owner.get();
  TcpSender sender{path, std::move(bbr_owner), 200e3};
  sender.transfer(20e6);  // rides through the drop at t=60s
  while (sender.now() < 80.0) {
    sender.transfer(100e3);
  }
  EXPECT_LT(bbr->btl_bw_bps(), 4.0 * kMbps);
}

TEST(Bbr, MinRttWindowExpiresStaleSamples) {
  // Regression: min_rtt was a lifetime monotone minimum seeded at 100 ms, so
  // it could only ever shrink. BBR.RTprop is a ~10 s windowed minimum; after
  // the path's RTT rises and the window passes, the estimate must follow.
  BbrModel bbr;
  CcSample sample;
  sample.dt_s = 0.01;
  sample.acked_bytes = 3000.0;
  sample.now_s = 0.0;
  sample.rtt_sample_s = 0.050;
  sample.min_rtt_s = 0.050;
  bbr.on_sample(sample);
  EXPECT_DOUBLE_EQ(bbr.min_rtt_s(), 0.050);
  for (double t = 0.1; t < 15.0; t += 0.1) {
    sample.now_s = t;
    sample.rtt_sample_s = 0.200;
    sample.min_rtt_s = 0.200;
    bbr.on_sample(sample);
  }
  EXPECT_DOUBLE_EQ(bbr.min_rtt_s(), 0.200);
}

TEST(Bbr, HighRttPathReachesFullBdpCwnd) {
  // Regression (satellite paths): the 100 ms min_rtt seed acted as a
  // permanent ceiling on a 600 ms path — BBR's cwnd targeted ~1/6 of the
  // true BDP forever. Seeded from the first genuine sample, the window must
  // reach at least ~1 BDP.
  const NetworkPath path{ThroughputTrace{{4.0 * kMbps}, 1.0}, 0.600};
  auto bbr_owner = std::make_unique<BbrModel>();
  BbrModel* bbr = bbr_owner.get();
  TcpSender sender{path, std::move(bbr_owner),
                   TcpSender::default_queue_capacity(path)};
  sender.transfer(2e7);  // long enough to leave startup and settle
  EXPECT_GE(bbr->min_rtt_s(), 0.600);
  const double bdp_bytes = 4.0 * kMbps * 0.600;
  EXPECT_GE(sender.info().cwnd_pkts * 1500.0, 0.9 * bdp_bytes);
}

TEST(Cubic, BacksOffOnLoss) {
  CubicModel cubic;
  const double before = cubic.cwnd_bytes();
  CcSample sample;
  sample.now_s = 1.0;
  sample.dt_s = 0.01;
  sample.acked_bytes = 0.0;
  sample.loss = true;
  cubic.on_sample(sample);
  EXPECT_NEAR(cubic.cwnd_bytes(), before * 0.7, 1.0);
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  CubicModel cubic;
  const double before = cubic.cwnd_bytes();
  CcSample sample;
  sample.now_s = 0.1;
  sample.dt_s = 0.1;
  sample.acked_bytes = before;  // one full window acked
  sample.rtt_sample_s = 0.1;
  cubic.on_sample(sample);
  EXPECT_NEAR(cubic.cwnd_bytes(), 2.0 * before, 1.0);
}

TEST(PufferPaths, SlowPathFractionInRange) {
  PufferPathModel model;
  Rng rng{42};
  int slow = 0;
  const int n = 400;
  for (int i = 0; i < n; i++) {
    const NetworkPath path = model.sample_path(rng, 120.0);
    if (path.trace.mean_rate() < 6.0 * kMbps) {
      slow++;
    }
  }
  const double fraction = static_cast<double>(slow) / n;
  // Paper: "slow" paths carried 16% of viewing time; our path-level mixture
  // should be in the same regime (15-35% of paths).
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.40);
}

TEST(PufferPaths, HeavyUpperTail) {
  PufferPathModel model;
  Rng rng{43};
  RunningStats means;
  for (int i = 0; i < 300; i++) {
    means.add(model.sample_path(rng, 60.0).trace.mean_rate() / kMbps);
  }
  // Mean well above median => right-skewed distribution.
  EXPECT_GT(means.max(), 80.0);
  EXPECT_GT(means.mean(), 10.0);
}

TEST(PufferPaths, ContainsOutages) {
  PufferPathModel model;
  Rng rng{44};
  int outage_segments = 0, total = 0;
  for (int i = 0; i < 50; i++) {
    const NetworkPath path = model.sample_path(rng, 1200.0);
    for (const double rate : path.trace.rates()) {
      total++;
      if (rate < 0.2 * kMbps) {
        outage_segments++;
      }
    }
  }
  EXPECT_GT(outage_segments, 0);
  // ... but outages are rare.
  EXPECT_LT(static_cast<double>(outage_segments) / total, 0.05);
}

TEST(FccPaths, StationaryAndBounded) {
  FccTraceModel model;
  Rng rng{45};
  for (int i = 0; i < 100; i++) {
    const NetworkPath path = model.sample_path(rng, 600.0);
    EXPECT_DOUBLE_EQ(path.min_rtt_s, 0.040);  // fixed mahimahi shell delay
    for (const double rate : path.trace.rates()) {
      EXPECT_GE(rate, 0.2 * kMbps - 1.0);
      EXPECT_LE(rate, 12.0 * kMbps + 1.0);  // 12 Mbit/s cap (section 5.2)
    }
  }
}

TEST(FccPaths, LowerThroughputThanPufferOnAverage) {
  FccTraceModel fcc;
  PufferPathModel puffer;
  Rng rng{46};
  RunningStats fcc_rates, puffer_rates;
  for (int i = 0; i < 200; i++) {
    fcc_rates.add(fcc.sample_path(rng, 300.0).trace.mean_rate());
    puffer_rates.add(puffer.sample_path(rng, 300.0).trace.mean_rate());
  }
  EXPECT_LT(fcc_rates.mean(), puffer_rates.mean());
}

TEST(MarkovPaths, VisitsFewDiscreteLevels) {
  MarkovTraceModel model;
  Rng rng{47};
  const NetworkPath path = model.sample_path(rng, 1200.0);  // 200 epochs
  // Round rates to the nearest 0.05 Mbit/s and count distinct levels: the
  // CS2P-style process should show a handful of tight bands (Figure 2a).
  std::vector<double> levels;
  for (const double rate : path.trace.rates()) {
    const double mbps = rate / kMbps;
    bool found = false;
    for (const double level : levels) {
      if (std::abs(level - mbps) < 0.12) {
        found = true;
        break;
      }
    }
    if (!found) {
      levels.push_back(mbps);
    }
  }
  EXPECT_LE(levels.size(), 6u);
  EXPECT_GE(levels.size(), 2u);
}

TEST(MarkovPaths, StatePersistence) {
  MarkovTraceModel model;
  Rng rng{48};
  const NetworkPath path = model.sample_path(rng, 6000.0);
  const auto& rates = path.trace.rates();
  int switches = 0;
  for (size_t i = 1; i < rates.size(); i++) {
    if (std::abs(rates[i] - rates[i - 1]) > 0.1 * kMbps) {
      switches++;
    }
  }
  // ~5% switch probability per epoch.
  const double switch_rate = static_cast<double>(switches) /
                             static_cast<double>(rates.size());
  EXPECT_LT(switch_rate, 0.12);
  EXPECT_GT(switch_rate, 0.005);
}

}  // namespace
}  // namespace puffer::net
