#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "util/object_pool.hh"
#include "util/require.hh"
#include "util/rng.hh"
#include "util/running_stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace puffer {
namespace {

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Require, ThrowsOnFalseWithMessage) {
  try {
    require(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const RequirementError& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; i++) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{123}, b{124};
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.uniform() == b.uniform()) {
      same++;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitByLabelIsStable) {
  const Rng parent{7};
  Rng a = parent.split("child");
  Rng b = parent.split("child");
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitByDifferentLabelsAreIndependent) {
  const Rng parent{7};
  Rng a = parent.split("alpha");
  Rng b = parent.split("beta");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Rng, SplitByIndexIsStable) {
  const Rng parent{7};
  EXPECT_DOUBLE_EQ(parent.split(uint64_t{3}).uniform(),
                   parent.split(uint64_t{3}).uniform());
}

TEST(Rng, UniformInRange) {
  Rng rng{1};
  for (int i = 0; i < 1000; i++) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{1};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; i++) {
    const int64_t x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng{2};
  RunningStats stats;
  for (int i = 0; i < 20000; i++) {
    stats.add(rng.normal(3.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{3};
  RunningStats stats;
  for (int i = 0; i < 20000; i++) {
    stats.add(rng.exponential(0.5));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{4};
  for (int i = 0; i < 1000; i++) {
    EXPECT_GE(rng.pareto(10.0, 1.5), 10.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng{4};
  int over_10x = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    if (rng.pareto(1.0, 1.05) > 10.0) {
      over_10x++;
    }
  }
  // P(X > 10) = 10^-1.05 ~= 8.9%.
  EXPECT_NEAR(static_cast<double>(over_10x) / n, 0.089, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{5};
  int heads = 0;
  for (int i = 0; i < 20000; i++) {
    heads += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng{6};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; i++) {
    counts[rng.categorical({1.0, 2.0, 7.0})]++;
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng{6};
  EXPECT_THROW(rng.categorical({0.0, 0.0}), RequirementError);
}

TEST(StableHash, DistinctStringsDistinctHashes) {
  EXPECT_NE(stable_hash("abr"), stable_hash("bar"));
  EXPECT_EQ(stable_hash("fugu"), stable_hash("fugu"));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-12);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, WeightedMeanMatchesManual) {
  RunningStats stats;
  stats.add(10.0, 1.0);
  stats.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 17.5);
}

TEST(RunningStats, ZeroWeightIgnored) {
  RunningStats stats;
  stats.add(10.0, 1.0);
  stats.add(1e9, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 10.0);
  EXPECT_EQ(stats.count(), 1u);
}

TEST(RunningStats, NegativeWeightRejected) {
  RunningStats stats;
  EXPECT_THROW(stats.add(1.0, -0.5), RequirementError);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng{9};
  RunningStats all, left, right;
  for (int i = 0; i < 1000; i++) {
    const double x = rng.normal(1.0, 3.0);
    const double w = rng.uniform(0.1, 2.0);
    all.add(x, w);
    (i % 2 == 0 ? left : right).add(x, w);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.count(), all.count());
}

TEST(RunningStats, StandardErrorShrinksWithN) {
  Rng rng{10};
  RunningStats small, large;
  for (int i = 0; i < 100; i++) {
    small.add(rng.normal());
  }
  for (int i = 0; i < 10000; i++) {
    large.add(rng.normal());
  }
  EXPECT_GT(small.standard_error(), large.standard_error());
  EXPECT_NEAR(large.standard_error(), 0.01, 0.005);
}

TEST(Table, RendersAlignedColumnsAndRows) {
  Table table{{"Algorithm", "Stall"}};
  table.add_row({"Fugu", "0.12%"});
  table.add_row({"BBA", "0.19%"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("Fugu"), std::string::npos);
  EXPECT_NE(out.find("0.19%"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table{{"a", "b"}};
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only-one"}), RequirementError);
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.0012, 2), "0.12%");
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, PropagatesJobExceptionToWait) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("job failed"); });
  for (int i = 0; i < 10; i++) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure does not cancel the batch: every other job still ran, and
  // the pool stays usable — the error is delivered exactly once.
  EXPECT_EQ(count.load(), 10);
  pool.submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, FirstExceptionWins) {
  // One worker executes the FIFO queue in order, so "first" is well-defined.
  ThreadPool pool{1};
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
}

TEST(ThreadPool, ExceptionSelectionIsBySubmissionIndexNotFinishOrder) {
  // The earlier-submitted job fails *last* on the wall clock (it sleeps
  // while the later job throws immediately on the other worker), yet its
  // exception must be the one wait() rethrows — selection is by submission
  // index, so the observed error cannot depend on thread scheduling.
  for (int iteration = 0; iteration < 20; iteration++) {
    ThreadPool pool{2};
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      throw std::runtime_error("submitted-first");
    });
    pool.submit([] { throw std::runtime_error("submitted-second"); });
    try {
      pool.wait();
      FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "submitted-first");
    }
  }
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // Destroying the pool while jobs are still queued must run them all
  // before joining — no deadlock, no dropped work.
  std::atomic<int> count{0};
  {
    ThreadPool pool{1};
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 50; i++) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait(): the destructor handles the backlog.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructionAfterUnobservedExceptionIsSafe) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("never observed"); });
  // Destroying without wait() must discard the captured exception quietly.
}

TEST(JsonWriter, EscapesSpecialCharactersInStrings) {
  EXPECT_EQ(bench::json_escape("plain"), "plain");
  EXPECT_EQ(bench::json_escape("C:\\traces\\fcc18"), "C:\\\\traces\\\\fcc18");
  EXPECT_EQ(bench::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(bench::json_escape("a\tb\nc\rd\be\ff"),
            "a\\tb\\nc\\rd\\be\\ff");
  EXPECT_EQ(bench::json_escape(std::string{"\x01\x1f"}), "\\u0001\\u001f");
}

TEST(JsonWriter, EmitsEscapedKeysAndValues) {
  bench::JsonWriter json;
  json.field("path", std::string{"out\\dir"});
  json.field("quote\"key", std::string{"line1\nline2"});
  json.field("count", 3);
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"path\": \"out\\\\dir\",\n"
            "  \"quote\\\"key\": \"line1\\nline2\",\n"
            "  \"count\": 3\n"
            "}\n");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  // snprintf would emit bare `nan` / `inf` tokens, which no JSON parser
  // accepts; degenerate bench runs must still produce valid JSON.
  bench::JsonWriter json;
  json.field("nan", std::numeric_limits<double>::quiet_NaN(), 2);
  json.field("inf", std::numeric_limits<double>::infinity(), 2);
  json.field("neg_inf", -std::numeric_limits<double>::infinity(), 2);
  json.field("finite", 1.5, 2);
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"nan\": null,\n"
            "  \"inf\": null,\n"
            "  \"neg_inf\": null,\n"
            "  \"finite\": 1.50\n"
            "}\n");
}

TEST(JsonWriter, EmitsArrayFields) {
  bench::JsonWriter json;
  json.field("ints", std::vector<int64_t>{1, 20, 300});
  json.field("doubles",
             std::vector<double>{0.5, std::numeric_limits<double>::quiet_NaN()},
             1);
  json.field("empty", std::vector<int64_t>{});
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"ints\": [1, 20, 300],\n"
            "  \"doubles\": [0.5, null],\n"
            "  \"empty\": []\n"
            "}\n");
}

TEST(BlockArena, RecyclesBlocksOfOneSize) {
  BlockArena arena;
  void* first = arena.allocate(64);
  EXPECT_EQ(arena.blocks_created(), 1);
  arena.deallocate(first, 64);
  EXPECT_EQ(arena.blocks_free(), 1);
  void* second = arena.allocate(64);
  EXPECT_EQ(second, first);  // free-listed block handed back verbatim
  EXPECT_EQ(arena.blocks_created(), 1);
  void* third = arena.allocate(64);
  EXPECT_NE(third, nullptr);
  EXPECT_EQ(arena.blocks_created(), 2);
  arena.deallocate(second, 64);
  arena.deallocate(third, 64);
}

TEST(BlockArena, RejectsMismatchedSize) {
  BlockArena arena;
  void* block = arena.allocate(32);
  EXPECT_THROW(static_cast<void>(arena.allocate(64)), RequirementError);
  arena.deallocate(block, 32);
}

}  // namespace
}  // namespace puffer
