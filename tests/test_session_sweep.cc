#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "abr/bba.hh"
#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "sim/session.hh"

namespace puffer::sim {
namespace {

constexpr double kMbps = 1e6 / 8.0;

std::unique_ptr<abr::AbrAlgorithm> make_algo(const std::string& name) {
  if (name == "BBA") {
    return std::make_unique<abr::Bba>();
  }
  if (name == "MPC-HM") {
    return std::make_unique<abr::MpcAbr>(
        name, std::make_unique<abr::HarmonicMeanPredictor>());
  }
  return std::make_unique<abr::MpcAbr>(
      name, std::make_unique<abr::RobustThroughputPredictor>());
}

StreamOutcome run_once(const std::string& scheme, const double rate_mbps,
                       const uint64_t seed = 11) {
  const net::NetworkPath path{
      net::ThroughputTrace{std::vector<double>(4000, rate_mbps * kMbps), 1.0},
      0.040};
  net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(path)};
  send_preamble(sender);
  const auto algo = make_algo(scheme);
  algo->reset_session();
  media::VbrVideoSource video{media::default_channels()[1], seed};
  UserBehavior viewer;
  viewer.watch_intent_s = 180.0;
  viewer.stall_patience_s = 1e9;
  viewer.stall_hazard_per_s = 0.0;
  viewer.quality_hazard_per_s_db = 0.0;
  Rng rng{seed};
  return run_stream(sender, *algo, video, 0, viewer, rng);
}

/// Invariant sweep: every classical scheme on every constant-rate path must
/// produce physically consistent telemetry.
class SessionInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(SessionInvariants, TelemetryIsConsistent) {
  const auto& [scheme, rate_mbps] = GetParam();
  const StreamOutcome outcome = run_once(scheme, rate_mbps);

  ASSERT_TRUE(outcome.began_playing);
  const auto& f = outcome.figures;
  // Watch time reaches the intent (within the stall contribution).
  EXPECT_GE(f.watch_time_s, 170.0);
  // Stall ratio is bounded: even on the slowest path, the lowest rung
  // (~0.2 Mbit/s nominal) keeps the session mostly playing.
  EXPECT_LE(f.stall_time_s / f.watch_time_s, 0.5);
  // SSIM within the encoder's physical range, variation non-negative.
  EXPECT_GT(f.ssim_mean_db, 3.0);
  EXPECT_LT(f.ssim_mean_db, 25.0);
  EXPECT_GE(f.ssim_variation_db, 0.0);
  // Startup happens within seconds.
  EXPECT_GT(f.startup_delay_s, 0.0);
  EXPECT_LT(f.startup_delay_s, 20.0);
  // Fetched video is bounded by played time plus one full buffer.
  EXPECT_LE(outcome.chunks_played * media::kChunkDurationS,
            f.watch_time_s + 15.0 + 2.1);
  // Long-run average bitrate cannot exceed path capacity (fluid bound).
  EXPECT_LE(f.mean_bitrate_mbps, rate_mbps * 1.25 + 0.1);
  // Delivery-rate classification is on the right side of the path rate.
  EXPECT_LE(f.mean_delivery_rate_mbps, rate_mbps * 1.2 + 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndRates, SessionInvariants,
    ::testing::Combine(::testing::Values("BBA", "MPC-HM", "RobustMPC-HM"),
                       ::testing::Values(0.7, 2.0, 6.0, 25.0)));

/// Adaptation property: on faster paths every scheme delivers at least as
/// much quality, and on fast paths approaches the ladder ceiling.
class SchemeAdaptation : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeAdaptation, QualityGrowsWithCapacity) {
  const std::string scheme = GetParam();
  double prev_ssim = 0.0;
  for (const double rate : {0.7, 2.0, 6.0, 25.0}) {
    const StreamOutcome outcome = run_once(scheme, rate);
    EXPECT_GE(outcome.figures.ssim_mean_db, prev_ssim - 0.4)
        << scheme << " at " << rate << " Mbit/s";
    prev_ssim = outcome.figures.ssim_mean_db;
  }
  // At 25 Mbit/s every scheme should be near the top of the ladder.
  EXPECT_GT(prev_ssim, 15.0);
}

INSTANTIATE_TEST_SUITE_P(AllClassical, SchemeAdaptation,
                         ::testing::Values("BBA", "MPC-HM", "RobustMPC-HM"));

TEST(SessionDeterminism, SameSeedSameOutcome) {
  const StreamOutcome a = run_once("MPC-HM", 4.0, 77);
  const StreamOutcome b = run_once("MPC-HM", 4.0, 77);
  EXPECT_DOUBLE_EQ(a.figures.watch_time_s, b.figures.watch_time_s);
  EXPECT_DOUBLE_EQ(a.figures.ssim_mean_db, b.figures.ssim_mean_db);
  EXPECT_DOUBLE_EQ(a.figures.stall_time_s, b.figures.stall_time_s);
  EXPECT_EQ(a.chunks_played, b.chunks_played);
}

TEST(SessionDeterminism, DifferentSeedsDifferentVideo) {
  const StreamOutcome a = run_once("BBA", 4.0, 1);
  const StreamOutcome b = run_once("BBA", 4.0, 2);
  EXPECT_NE(a.figures.ssim_mean_db, b.figures.ssim_mean_db);
}

}  // namespace
}  // namespace puffer::sim
