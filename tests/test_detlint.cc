// Tests for tools/detlint: every fixture under tests/detlint_fixtures/
// carries `FLAG:<rule>` markers on the lines the linter must flag; the
// suite parses those markers back out and requires the findings to match
// exactly (same lines, same rule ids, nothing extra). Suppression,
// allowlist and built-in-exemption behavior is covered with the same
// fixture contents relabeled onto sanctioned paths.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "detlint/detlint.hh"

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string{PUFFER_DETLINT_FIXTURES_DIR} + "/" + name;
  std::ifstream in{path};
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

using LineRule = std::pair<int, std::string>;

/// Expected findings, parsed from `FLAG:<rule>` markers in the fixture.
std::vector<LineRule> parse_markers(const std::string& content) {
  std::vector<LineRule> expected;
  std::istringstream stream{content};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    line_no++;
    size_t pos = 0;
    while ((pos = line.find("FLAG:", pos)) != std::string::npos) {
      pos += 5;
      size_t end = pos;
      while (end < line.size() &&
             std::isalnum(static_cast<unsigned char>(line[end]))) {
        end++;
      }
      expected.emplace_back(line_no, line.substr(pos, end - pos));
      pos = end;
    }
  }
  std::sort(expected.begin(), expected.end());
  return expected;
}

std::vector<LineRule> finding_pairs(const detlint::FileReport& report) {
  std::vector<LineRule> actual;
  for (const detlint::Finding& finding : report.findings) {
    actual.emplace_back(finding.line, finding.rule);
  }
  std::sort(actual.begin(), actual.end());
  return actual;
}

/// Lint `file` under its own name and require findings == markers.
detlint::FileReport expect_marked_findings(const std::string& file) {
  const std::string content = read_fixture(file);
  const detlint::FileReport report =
      detlint::lint_file(file, content, detlint::Config{});
  EXPECT_EQ(finding_pairs(report), parse_markers(content)) << file;
  return report;
}

TEST(Detlint, R1EntropySourcesFlagged) {
  const auto report = expect_marked_findings("bad_r1_entropy.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "nondet-source");
}

TEST(Detlint, R2UnorderedIterationFlagged) {
  const auto report = expect_marked_findings("bad_r2_unordered_iter.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "ordered-sink");
}

TEST(Detlint, R3PointerKeysFlagged) {
  const auto report = expect_marked_findings("bad_r3_pointer_key.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "pointer-key");
}

TEST(Detlint, R4LibraryFoldsFlagged) {
  const auto report = expect_marked_findings("bad_r4_fp_reduce.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "fp-reduce");
}

TEST(Detlint, R5MutableGlobalsFlagged) {
  const auto report = expect_marked_findings("bad_r5_global_state.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "global-state");
}

TEST(Detlint, R6UnannotatedSyncMembersFlagged) {
  const auto report = expect_marked_findings("bad_r6_unannotated_sync.cc");
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().tag, "unannotated-sync");
}

TEST(Detlint, ValidSuppressionsSilenceFindings) {
  const std::string content = read_fixture("ok_suppressed.cc");
  const detlint::FileReport report =
      detlint::lint_file("ok_suppressed.cc", content, detlint::Config{});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().str();
  EXPECT_EQ(report.suppressed.size(), 2u);  // trailing + standalone form
}

TEST(Detlint, MalformedSuppressionsAreFindings) {
  // Missing ": reason" (or an unknown rule) is itself flagged, and the
  // original finding stays live.
  expect_marked_findings("bad_suppression.cc");
}

TEST(Detlint, AllowlistedFilePassesWithConfig) {
  const std::string content = read_fixture("ok_allowlisted_io.cc");
  // Without the config the file has R1 findings...
  const detlint::FileReport bare =
      detlint::lint_file("ok_allowlisted_io.cc", content, detlint::Config{});
  EXPECT_FALSE(bare.findings.empty());
  // ...with the allowlist entry it passes, counting the drops.
  const detlint::Config config = detlint::parse_config(
      "R1 ok_allowlisted_io.cc bench-style timing and env knobs\n");
  const detlint::FileReport allowed =
      detlint::lint_file("ok_allowlisted_io.cc", content, config);
  EXPECT_TRUE(allowed.findings.empty());
  EXPECT_EQ(allowed.allowlisted,
            static_cast<int>(bare.findings.size()));
}

TEST(Detlint, ProfPlaneClockAllowlistIsScopedToProfFiles) {
  // The perf plane (src/obs/prof.*) is the one src/ module allowed to read
  // the wall clock, via entries in the real tree's detlint.conf. Lint the
  // same steady_clock fixture content under that shipped config: named as
  // the prof plane it passes through the allowlist, named as any other
  // src/ file the identical line is still an R1 finding.
  const std::string content = read_fixture("ok_prof_clock.cc");
  const detlint::FileReport bare =
      detlint::lint_file("src/obs/prof.cc", content, detlint::Config{});
  ASSERT_FALSE(bare.findings.empty());
  EXPECT_EQ(bare.findings.front().rule, "R1");

  std::ifstream conf_in{std::string{PUFFER_DETLINT_FIXTURES_DIR} +
                        "/../../tools/detlint/detlint.conf"};
  ASSERT_TRUE(conf_in.is_open());
  std::ostringstream conf_body;
  conf_body << conf_in.rdbuf();
  const detlint::Config config = detlint::parse_config(conf_body.str());

  const detlint::FileReport allowed =
      detlint::lint_file("src/obs/prof.cc", content, config);
  EXPECT_TRUE(allowed.findings.empty())
      << allowed.findings.front().str();
  EXPECT_EQ(allowed.allowlisted, static_cast<int>(bare.findings.size()));
  EXPECT_TRUE(config.allows("R1", "src/obs/prof.hh"));

  const detlint::FileReport elsewhere =
      detlint::lint_file("src/sim/fleet.cc", content, config);
  ASSERT_FALSE(elsewhere.findings.empty());
  EXPECT_EQ(elsewhere.findings.front().rule, "R1");
}

TEST(Detlint, DirectoryPrefixAllowlisting) {
  const detlint::Config config =
      detlint::parse_config("R1 bench/ wall-clock timing\n");
  EXPECT_TRUE(config.allows("R1", "bench/fleet_scale.cc"));
  EXPECT_FALSE(config.allows("R1", "src/sim/fleet.cc"));
  EXPECT_FALSE(config.allows("R2", "bench/fleet_scale.cc"));
}

TEST(Detlint, CleanFixtureHasNoFindings) {
  const std::string content = read_fixture("ok_clean.cc");
  const detlint::FileReport report =
      detlint::lint_file("ok_clean.cc", content, detlint::Config{});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().str();
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(Detlint, RngImplementationIsExemptFromR1) {
  // The same entropy-laden content relabeled as the sanctioned RNG module
  // must not produce R1 findings (R5/R6 etc. still apply).
  const std::string content = read_fixture("bad_r1_entropy.cc");
  const detlint::FileReport report =
      detlint::lint_file("src/util/rng.cc", content, detlint::Config{});
  for (const detlint::Finding& finding : report.findings) {
    EXPECT_NE(finding.rule, "R1") << finding.str();
  }
}

TEST(Detlint, NnKernelLayerIsExemptFromR4) {
  const std::string content = read_fixture("bad_r4_fp_reduce.cc");
  const detlint::FileReport report =
      detlint::lint_file("src/nn/reduce_kernels.cc", content,
                         detlint::Config{});
  EXPECT_TRUE(report.findings.empty());
}

TEST(Detlint, ConfigRejectsEntriesWithoutReason) {
  EXPECT_THROW(detlint::parse_config("R1 bench/foo.cc\n"),
               std::runtime_error);
  EXPECT_THROW(detlint::parse_config("R9 bench/foo.cc some reason\n"),
               std::runtime_error);
  EXPECT_NO_THROW(detlint::parse_config(
      "# comment\n\nordered-sink src/x.cc reason text here\n"));
}

TEST(Detlint, RuleNamesNormalize) {
  EXPECT_EQ(detlint::normalize_rule("R2"), "R2");
  EXPECT_EQ(detlint::normalize_rule("ordered-sink"), "R2");
  EXPECT_EQ(detlint::normalize_rule("nondet-source"), "R1");
  EXPECT_EQ(detlint::normalize_rule("bogus"), "");
  EXPECT_EQ(detlint::rule_tag("R6"), "unannotated-sync");
}

TEST(Detlint, StringsAndCommentsAreNotCode) {
  // rand()/getenv inside string literals or comments must not fire; the
  // raw-string form must not either.
  const std::string content =
      "namespace f {\n"
      "const char* kHelp = \"rand() and getenv() are banned\";\n"
      "// rand() in a comment\n"
      "const char* kRaw = R\"(std::random_device inside raw)\";\n"
      "}  // namespace f\n";
  const detlint::FileReport report =
      detlint::lint_file("doc.cc", content, detlint::Config{});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().str();
}

}  // namespace
