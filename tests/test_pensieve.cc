#include <gtest/gtest.h>

#include <cmath>

#include "abr/pensieve.hh"
#include "abr/pensieve_env.hh"
#include "abr/pensieve_trainer.hh"
#include "test_helpers.hh"
#include "util/require.hh"

namespace puffer::abr {
namespace {

using test::make_lookahead;

TEST(PensieveState, DimensionAndPadding) {
  PensieveHistory history;
  const auto menu = test::make_menu(0);
  const std::vector<float> state = pensieve_state(history, 5.0, menu);
  ASSERT_EQ(state.size(), static_cast<size_t>(kPensieveStateDim));
  // Empty history: throughput/download-time slots are zero-padded.
  for (int i = 2; i < 2 + 2 * kPensieveHistory; i++) {
    EXPECT_FLOAT_EQ(state[static_cast<size_t>(i)], 0.0f);
  }
  // Buffer normalized by 10 s.
  EXPECT_FLOAT_EQ(state[1], 0.5f);
}

TEST(PensieveState, HistoryOrderingNewestLast) {
  PensieveHistory history;
  history.record(10.0, 1.0, 2);
  history.record(20.0, 2.0, 3);
  const auto menu = test::make_menu(0);
  const std::vector<float> state = pensieve_state(history, 0.0, menu);
  // Throughput slots are the 8 entries starting at index 2; the last two
  // hold 10/20 and 20/20 Mbps (normalized /20), oldest first.
  EXPECT_FLOAT_EQ(state[2 + kPensieveHistory - 2], 0.5f);
  EXPECT_FLOAT_EQ(state[2 + kPensieveHistory - 1], 1.0f);
  // Download-time slots follow, normalized /10.
  EXPECT_FLOAT_EQ(state[2 + 2 * kPensieveHistory - 2], 0.1f);
  EXPECT_FLOAT_EQ(state[2 + 2 * kPensieveHistory - 1], 0.2f);
}

TEST(PensieveState, HistoryBounded) {
  PensieveHistory history;
  for (int i = 0; i < 30; i++) {
    history.record(1.0, 1.0, 1);
  }
  EXPECT_EQ(history.throughputs_mbps.size(),
            static_cast<size_t>(kPensieveHistory));
}

TEST(PensieveState, NextChunkSizesInMb) {
  PensieveHistory history;
  const auto menu = test::make_menu(0);
  const std::vector<float> state = pensieve_state(history, 0.0, menu);
  const size_t sizes_offset = 2 + 2 * kPensieveHistory;
  for (int r = 0; r < media::kNumRungs; r++) {
    EXPECT_NEAR(state[sizes_offset + static_cast<size_t>(r)],
                static_cast<double>(menu.version(r).size_bytes) / 1e6, 1e-5);
  }
}

TEST(PensieveAbr, GreedyActionFollowsActor) {
  nn::Mlp actor = make_pensieve_actor(7);
  // Bias the last output so that rung 4 always wins.
  for (auto& b : actor.biases().back()) {
    b = 0.0f;
  }
  actor.biases().back()[4] = 100.0f;
  PensieveAbr abr{actor};
  AbrObservation obs;
  obs.buffer_s = 5.0;
  EXPECT_EQ(abr.choose_rung(obs, make_lookahead(1)), 4);
}

TEST(PensieveAbr, RejectsWrongArchitecture) {
  EXPECT_THROW(PensieveAbr(nn::Mlp{{3, 4}, 1}), RequirementError);
}

TEST(PensieveEnv, ResetGivesInitialState) {
  PensieveEnv env{{}, 11};
  const auto state = env.reset();
  EXPECT_EQ(state.size(), static_cast<size_t>(kPensieveStateDim));
}

TEST(PensieveEnv, EpisodeTerminatesAtConfiguredLength) {
  PensieveEnvConfig config;
  config.chunks_per_episode = 25;
  PensieveEnv env{config, 12};
  env.reset();
  int steps = 0;
  bool done = false;
  while (!done) {
    const auto result = env.step(0);
    done = result.done;
    steps++;
    ASSERT_LE(steps, 25);
  }
  EXPECT_EQ(steps, 25);
}

TEST(PensieveEnv, LowestRungRarelyStallsOnFccTraces) {
  PensieveEnv env{{}, 13};
  double stall = 0.0;
  for (int e = 0; e < 5; e++) {
    env.reset();
    bool done = false;
    while (!done) {
      const auto result = env.step(0);  // 200 kbps on >= 200 kbps traces
      stall += result.stall_s;
      done = result.done;
    }
  }
  EXPECT_LT(stall, 10.0);
}

TEST(PensieveEnv, TopRungStallsOnSlowTraces) {
  PensieveEnvConfig config;
  config.chunks_per_episode = 60;
  PensieveEnv env{config, 14};
  double stall = 0.0;
  for (int e = 0; e < 10; e++) {
    env.reset();
    bool done = false;
    while (!done) {
      const auto result = env.step(media::kNumRungs - 1);  // 5.5 Mbps
      stall += result.stall_s;
      done = result.done;
    }
  }
  // FCC traces have median ~2.6 Mbit/s: the top rung cannot be sustained.
  EXPECT_GT(stall, 20.0);
}

TEST(PensieveEnv, RewardPenalizesSwitching) {
  // Cheap rungs on a comfortable trace: no stalls, so the reward difference
  // is purely bitrate and smoothness.
  PensieveEnvConfig config;
  config.trace.median_rate_mbps = 6.0;
  config.trace.log10_rate_sigma = 0.02;
  config.trace.wobble_sigma = 0.02;
  PensieveEnv env{config, 15};
  env.reset();
  env.step(2);
  const auto steady = env.step(2);
  // Re-create the env deterministically to replay with a switching policy.
  PensieveEnv env2{config, 15};
  env2.reset();
  env2.step(2);
  const auto switched = env2.step(1);
  EXPECT_DOUBLE_EQ(steady.reward, 0.7);                // bitrate only
  EXPECT_NEAR(switched.reward, 0.4 - 0.3, 1e-9);       // bitrate - |switch|
  EXPECT_LT(switched.reward, steady.reward);
}

TEST(PensieveEnv, DownloadTimeScalesWithSize) {
  PensieveEnv env{{}, 16};
  env.reset();
  const auto small = env.step(0);
  PensieveEnv env2{{}, 16};
  env2.reset();
  const auto big = env2.step(media::kNumRungs - 1);
  EXPECT_GT(big.download_time_s, small.download_time_s);
}

TEST(PensieveTrainer, ImprovesRewardOverTraining) {
  // Train on a nearly-constant 2.6 Mbit/s trace so that the learning signal
  // is visible through episode-to-episode variance.
  PensieveTrainConfig config;
  config.iterations = 80;
  config.episodes_per_iteration = 6;
  config.env.chunks_per_episode = 60;
  config.env.trace.log10_rate_sigma = 0.03;
  config.env.trace.wobble_sigma = 0.03;
  PensieveTrainReport report;
  train_pensieve(config, 99, &report);
  ASSERT_EQ(report.reward_per_iteration.size(), 80u);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 20; i++) {
    early += report.reward_per_iteration[static_cast<size_t>(i)];
    late += report.reward_per_iteration[report.reward_per_iteration.size() -
                                        1 - static_cast<size_t>(i)];
  }
  EXPECT_GT(late, early);
}

TEST(PensieveTrainer, DeterministicGivenSeed) {
  PensieveTrainConfig config;
  config.iterations = 3;
  config.episodes_per_iteration = 2;
  config.env.chunks_per_episode = 20;
  const nn::Mlp a = train_pensieve(config, 5);
  const nn::Mlp b = train_pensieve(config, 5);
  EXPECT_EQ(a, b);
}

TEST(PensieveTrainer, TrainedPolicyBeatsBitrateExtremesOnFcc) {
  // A modest training run should already dominate the fixed extreme
  // policies (always-lowest wastes bitrate reward; always-highest stalls).
  // The production training budget (the same configuration the cached
  // experiment artifact uses): at this depth the policy is adaptive rather
  // than collapsed to a fixed rung.
  PensieveTrainConfig config;
  config.env.chunks_per_episode = 80;
  const nn::Mlp actor = train_pensieve(config, 7);

  auto evaluate = [&](const std::function<int(const std::vector<float>&)>& policy) {
    PensieveEnv env{config.env, 1234};
    double total = 0.0;
    for (int e = 0; e < 12; e++) {
      std::vector<float> state = env.reset();
      bool done = false;
      while (!done) {
        auto result = env.step(policy(state));
        total += result.reward;
        state = std::move(result.next_state);
        done = result.done;
      }
    }
    return total;
  };

  const double trained = evaluate([&actor](const std::vector<float>& s) {
    const auto logits = actor.forward_one(s);
    return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                            logits.begin());
  });
  const double always_low = evaluate([](const std::vector<float>&) { return 0; });
  const double always_high = evaluate(
      [](const std::vector<float>&) { return media::kNumRungs - 1; });

  EXPECT_GT(trained, always_low);
  EXPECT_GT(trained, always_high);
}

}  // namespace
}  // namespace puffer::abr
