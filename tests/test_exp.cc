#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/insitu.hh"
#include "exp/models.hh"
#include "exp/registry.hh"
#include "exp/trial.hh"
#include "exp/trial_cache.hh"
#include "util/require.hh"

namespace puffer::exp {
namespace {

TEST(Registry, SchemeTableMatchesFigure5) {
  const auto& table = scheme_table();
  ASSERT_EQ(table.size(), 6u);
  // Spot-check the distinguishing cells of Figure 5.
  bool found_fugu = false, found_pensieve = false;
  for (const auto& row : table) {
    if (row.name == "Fugu") {
      found_fugu = true;
      EXPECT_EQ(row.training, "supervised learning in situ");
      EXPECT_EQ(row.control, "classical (MPC)");
    }
    if (row.name == "Pensieve") {
      found_pensieve = true;
      EXPECT_EQ(row.training, "reinforcement learning in simulation");
    }
  }
  EXPECT_TRUE(found_fugu);
  EXPECT_TRUE(found_pensieve);
}

TEST(Registry, ClassicalSchemesNeedNoArtifacts) {
  const SchemeArtifacts none;
  for (const auto* name : {"BBA", "MPC-HM", "RobustMPC-HM"}) {
    const auto scheme = make_scheme(name, none);
    EXPECT_EQ(scheme->name(), name);
  }
}

TEST(Registry, LearnedSchemesRequireArtifacts) {
  const SchemeArtifacts none;
  EXPECT_THROW(make_scheme("Fugu", none), RequirementError);
  EXPECT_THROW(make_scheme("Pensieve", none), RequirementError);
  EXPECT_THROW(make_scheme("Emulation-trained Fugu", none), RequirementError);
}

TEST(Registry, UnknownSchemeRejected) {
  const SchemeArtifacts none;
  EXPECT_THROW(make_scheme("HAL9000", none), RequirementError);
}

TEST(Registry, FuguVariantsBuildFromTtp) {
  SchemeArtifacts artifacts;
  artifacts.ttp_insitu =
      std::make_shared<const fugu::TtpModel>(fugu::TtpConfig{}, 1);
  EXPECT_EQ(make_scheme("Fugu", artifacts)->name(), "Fugu");
  EXPECT_EQ(make_scheme("Fugu-point-estimate", artifacts)->name(),
            "Fugu-point-estimate");
}

TrialConfig small_trial_config() {
  TrialConfig config;
  config.schemes = {"BBA", "MPC-HM"};
  config.sessions_per_scheme = 24;
  config.seed = 7;
  // Route through the parallel runner on every machine (run_trial shards
  // across 4 workers); results are bit-identical to serial regardless.
  config.num_threads = 4;
  return config;
}

/// The small trial is pure function of its config, so tests that only read
/// it share one run instead of each re-simulating 48 sessions.
const TrialResult& shared_small_trial() {
  static const TrialResult trial = [] {
    const SchemeArtifacts none;
    return run_trial(small_trial_config(), none);
  }();
  return trial;
}

TEST(Trial, ConsortAccountingIsConsistent) {
  const TrialResult& trial = shared_small_trial();
  ASSERT_EQ(trial.schemes.size(), 2u);
  int64_t total_sessions = 0;
  for (const auto& scheme : trial.schemes) {
    const auto& c = scheme.consort;
    total_sessions += c.sessions;
    // Every stream lands in exactly one bucket.
    EXPECT_EQ(c.streams,
              c.never_began + c.under_min_watch + c.decoder_failure +
                  c.considered);
    EXPECT_EQ(c.considered,
              static_cast<int64_t>(scheme.considered.size()));
    EXPECT_LE(c.truncated, c.considered);
    EXPECT_GE(c.streams, c.sessions);  // sessions contain >= 1 stream
  }
  EXPECT_EQ(total_sessions, 48);
}

TEST(Trial, ExclusionBucketsArePopulated) {
  const TrialResult& trial = shared_small_trial();
  int64_t never = 0, under = 0, considered = 0;
  for (const auto& scheme : trial.schemes) {
    never += scheme.consort.never_began;
    under += scheme.consort.under_min_watch;
    considered += scheme.consort.considered;
  }
  // The zapping-heavy user model must populate all three big buckets.
  EXPECT_GT(never, 0);
  EXPECT_GT(under, 0);
  EXPECT_GT(considered, 0);
}

TEST(Trial, DeterministicForSeed) {
  // The shared trial ran through the parallel runner (4 workers); this
  // fresh run forces the serial path. Equality checks both determinism
  // across runs and serial/parallel equivalence.
  const SchemeArtifacts none;
  TrialConfig serial_config = small_trial_config();
  serial_config.num_threads = 1;
  const TrialResult a = run_trial(serial_config, none);
  const TrialResult& b = shared_small_trial();
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (size_t s = 0; s < a.schemes.size(); s++) {
    EXPECT_EQ(a.schemes[s].consort.considered,
              b.schemes[s].consort.considered);
    ASSERT_EQ(a.schemes[s].considered.size(), b.schemes[s].considered.size());
    for (size_t i = 0; i < a.schemes[s].considered.size(); i++) {
      EXPECT_DOUBLE_EQ(a.schemes[s].considered[i].watch_time_s,
                       b.schemes[s].considered[i].watch_time_s);
    }
  }
}

TEST(Trial, PairedModeGivesEverySchemeEverySession) {
  TrialConfig config = small_trial_config();
  config.paired_paths = true;
  config.sessions_per_scheme = 12;
  const SchemeArtifacts none;
  const TrialResult trial = run_trial(config, none);
  EXPECT_EQ(trial.schemes[0].consort.sessions, 12);
  EXPECT_EQ(trial.schemes[1].consort.sessions, 12);
  // Identical session plans: stream counts match exactly across schemes.
  EXPECT_EQ(trial.schemes[0].consort.streams, trial.schemes[1].consort.streams);
}

TEST(Trial, CollectLogsYieldsChunkTelemetry) {
  TrialConfig config = small_trial_config();
  config.collect_logs = true;
  config.day = 3;
  const SchemeArtifacts none;
  const TrialResult trial = run_trial(config, none);
  size_t chunks = 0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& log : scheme.logs) {
      EXPECT_EQ(log.day, 3);
      chunks += log.chunks.size();
      for (const auto& chunk : log.chunks) {
        EXPECT_GT(chunk.size_mb, 0.0);
        EXPECT_GT(chunk.tx_time_s, 0.0);
      }
    }
  }
  EXPECT_GT(chunks, 300u);
}

TEST(Trial, SlowPathSubsetIsSlow) {
  const TrialResult& trial = shared_small_trial();
  size_t slow_count = 0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.slow_paths(6.0)) {
      EXPECT_LT(figures.mean_delivery_rate_mbps, 6.0);
      slow_count++;
    }
  }
  // ~15-25% of sampled paths average under 6 Mbit/s, so the subset must be
  // non-empty (the loop above would otherwise be vacuous).
  EXPECT_GT(slow_count, 0u);
}

TEST(Trial, ResultForLookup) {
  const TrialResult& trial = shared_small_trial();
  EXPECT_EQ(trial.result_for("BBA").scheme, "BBA");
  EXPECT_THROW(static_cast<void>(trial.result_for("nope")), RequirementError);
}

TEST(Insitu, TtpSaveLoadRoundTrip) {
  const fugu::TtpConfig config;
  const fugu::TtpModel model{config, 31};
  const std::string path = ::testing::TempDir() + "/ttp_roundtrip.bin";
  save_ttp(model, path);
  const auto loaded = try_load_ttp(config, path);
  ASSERT_TRUE(loaded.has_value());
  for (size_t k = 0; k < model.networks().size(); k++) {
    EXPECT_EQ(model.networks()[k], loaded->networks()[k]);
  }
  std::remove(path.c_str());
}

TEST(Insitu, TtpLoadRejectsMismatchedConfig) {
  fugu::TtpConfig linear;
  linear.hidden_layers = {};
  const fugu::TtpModel model{linear, 32};
  const std::string path = ::testing::TempDir() + "/ttp_linear.bin";
  save_ttp(model, path);
  EXPECT_FALSE(try_load_ttp(fugu::TtpConfig{}, path).has_value());
  std::remove(path.c_str());
}

TEST(Insitu, DatasetSaveLoadRoundTrip) {
  fugu::TtpDataset dataset;
  fugu::StreamLog stream;
  stream.day = 5;
  fugu::ChunkLog chunk;
  chunk.size_mb = 1.25;
  chunk.tx_time_s = 0.8;
  chunk.tcp_at_send.delivery_rate_bps = 1e6;
  stream.chunks.push_back(chunk);
  dataset.push_back(stream);

  const std::string path = ::testing::TempDir() + "/dataset_roundtrip.bin";
  save_dataset(dataset, path);
  const auto loaded = try_load_dataset(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].day, 5);
  ASSERT_EQ((*loaded)[0].chunks.size(), 1u);
  EXPECT_DOUBLE_EQ((*loaded)[0].chunks[0].size_mb, 1.25);
  EXPECT_DOUBLE_EQ((*loaded)[0].chunks[0].tcp_at_send.delivery_rate_bps, 1e6);
  std::remove(path.c_str());
}

TEST(Insitu, CollectTelemetryProducesTrainableData) {
  const fugu::TtpDataset dataset =
      collect_telemetry(net::ScenarioSpec{"puffer"},
                        /*num_sessions=*/24, /*day=*/0, /*seed=*/55);
  size_t chunks = 0;
  for (const auto& stream : dataset) {
    chunks += stream.chunks.size();
  }
  EXPECT_GT(dataset.size(), 10u);
  EXPECT_GT(chunks, 300u);
}

TEST(Insitu, EndToEndTinyInsituTraining) {
  fugu::TtpConfig config;
  config.horizon = 2;
  fugu::TtpTrainConfig train_config;
  train_config.epochs = 1;
  train_config.max_examples_per_step = 4000;
  fugu::TtpTrainReport report;
  const fugu::TtpModel model =
      train_ttp_on_scenario(net::ScenarioSpec{"puffer"}, config,
                            train_config, /*days=*/1, /*sessions_per_day=*/20,
                            /*seed=*/66, &report);
  EXPECT_GT(report.examples_per_step, 100u);
  // The trained model must beat the uniform baseline (ln 21 = 3.04) on its
  // own training distribution.
  const fugu::TtpDataset eval_data =
      collect_telemetry(net::ScenarioSpec{"puffer"}, 8, 0, 67);
  const auto eval = evaluate_ttp(model, eval_data);
  EXPECT_LT(eval.cross_entropy, 2.8);
}

/// A corrupt trial-cache entry is a miss, not an error: run_trial_cached
/// evicts it, recomputes, and re-saves the repaired entry.
TEST(TrialCache, CorruptEntryIsEvictedAndRecomputed) {
  TrialConfig config = small_trial_config();
  config.sessions_per_scheme = 6;
  config.seed = 4242;  // private cache identity for this test
  const SchemeArtifacts none;
  const std::string label = "cache_evict_test";
  const TrialResult first = run_trial_cached(config, none, label);

  // Locate the entry this run wrote and garble it in place.
  std::string entry;
  for (const auto& file :
       std::filesystem::directory_iterator(model_cache_dir())) {
    const std::string name = file.path().filename().string();
    if (name.rfind("trial_" + label + "_", 0) == 0) {
      entry = file.path().string();
    }
  }
  ASSERT_FALSE(entry.empty());
  {
    std::ofstream out{entry, std::ios::binary | std::ios::trunc};
    out << "garbage";
  }

  const TrialResult recomputed = run_trial_cached(config, none, label);
  ASSERT_EQ(recomputed.schemes.size(), first.schemes.size());
  for (size_t s = 0; s < first.schemes.size(); s++) {
    EXPECT_EQ(recomputed.schemes[s].consort.sessions,
              first.schemes[s].consort.sessions);
    EXPECT_EQ(recomputed.schemes[s].considered.size(),
              first.schemes[s].considered.size());
  }
  // The recompute repaired the entry: the next call is served from cache.
  const auto repaired = try_load_trial(entry);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->schemes.size(), first.schemes.size());
  std::remove(entry.c_str());
}

}  // namespace
}  // namespace puffer::exp
