// detlint fixture: R1 nondet-source true positives. Lines carrying a
// marker comment naming R1 must be flagged; tests/test_detlint.cc parses
// the markers and compares them against the linter's findings. Never
// compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned entropy_seed() {
  std::random_device device;  // FLAG:R1
  return device();
}

int libc_random() {
  return rand();  // FLAG:R1
}

long long wall_clock_ns() {
  const auto now = std::chrono::steady_clock::now();  // FLAG:R1
  return now.time_since_epoch().count();
}

const char* cache_dir() {
  return std::getenv("CACHE_DIR");  // FLAG:R1
}

long unix_time() {
  return time(nullptr);  // FLAG:R1
}

}  // namespace fixture
