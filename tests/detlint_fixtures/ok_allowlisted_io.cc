// detlint fixture: R1 patterns in a file the test allowlists via a
// detlint.conf entry (the mechanism the real tree uses for bench timing
// and env-var knobs). Must lint clean under that config. Never compiled.
#include <chrono>
#include <cstdlib>

namespace fixture {

int bench_sessions() {
  const char* env = std::getenv("FIXTURE_SESSIONS");
  return env == nullptr ? 100 : 101;
}

long long bench_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
