// detlint fixture: malformed suppressions. A DETLINT-OK without a reason
// string (or naming an unknown rule) is itself a finding, and the original
// finding stays unsuppressed. Never compiled.
namespace fixture {

int counter = 0;  // DETLINT-OK(global-state) FLAG:R5 FLAG:SUPP
int other = 0;    // DETLINT-OK(bogus-rule): reasons do not rescue bad tags FLAG:R5 FLAG:SUPP

}  // namespace fixture
