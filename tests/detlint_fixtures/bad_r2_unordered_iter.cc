// detlint fixture: R2 ordered-sink true positives — iteration over
// unordered containers, whose hash order is not pinned by the standard and
// differs across library versions (and, for pointer-ish keys, across
// runs). Never compiled.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double sum_scores(const std::unordered_map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& [name, value] : scores) {  // FLAG:R2
    total += value;
  }
  return total;
}

int first_id(const std::unordered_set<int>& ids) {
  auto it = ids.begin();  // FLAG:R2
  return it == ids.end() ? -1 : *it;
}

}  // namespace fixture
