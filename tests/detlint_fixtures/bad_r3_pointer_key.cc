// detlint fixture: R3 pointer-key true positives — ordered containers
// keyed on raw pointers order by allocation address, which ASLR re-rolls
// every run. Never compiled.
#include <map>
#include <set>

namespace fixture {

struct Session {
  int id = 0;
};

class Tracker {
 public:
  void observe(const Session* session);

 private:
  std::map<const Session*, int> counts_;  // FLAG:R3
  std::set<Session*> active_;             // FLAG:R3
};

}  // namespace fixture
