// detlint fixture: R4 fp-reduce true positives — library folds whose
// accumulation order is implementation-defined (std::reduce explicitly
// so), outside the sanctioned src/nn/ kernel layer. Never compiled.
#include <numeric>
#include <vector>

namespace fixture {

double mean_ssim(const std::vector<double>& values) {
  const double total =
      std::accumulate(values.begin(), values.end(), 0.0);  // FLAG:R4
  return values.empty() ? 0.0 : total / static_cast<double>(values.size());
}

double fast_sum(const std::vector<double>& values) {
  return std::reduce(values.begin(), values.end());  // FLAG:R4
}

}  // namespace fixture
