// detlint fixture: the perf plane's R1 pattern — a steady_clock read like
// the one obs::ProfScope takes. The test lints this content under the real
// tree's detlint.conf twice: named src/obs/prof.cc it must pass via the
// allowlist entry, named anything else the same line must still be an R1
// finding (the exemption is scoped to the perf plane, not to the pattern).
// Never compiled.
#include <chrono>
#include <cstdint>

namespace fixture {

int64_t prof_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
