// detlint fixture: representative clean code — ordered containers,
// fixed-order floating-point loops, annotated synchronization members,
// constants and thread-local scratch. Must produce zero findings and zero
// suppressions. Never compiled.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fixture {

constexpr int kMaxSessions = 4096;
const char* const kDefaultScheme = "fugu";
thread_local std::vector<float> pack_scratch;

class OrderedStats {
 public:
  void record(const std::string& name, double value) {
    values_[name] = value;
  }

  double ordered_sum() const {
    double total = 0.0;
    for (const auto& [name, value] : values_) {
      total += value;
    }
    return total;
  }

 private:
  std::map<std::string, double> values_;  // sorted key order: deterministic
};

class AnnotatedQueue {
 public:
  void push(int64_t value);

 private:
  Mutex mutex_ GUARDS(entries_);
  std::vector<int64_t> entries_ GUARDED_BY(mutex_);
  std::atomic<int64_t> approx_size_ ATOMIC_SAFE(
      "monotonic counter read for stats only, never for results") = 0;
};

double fixed_order_sum(const std::vector<double>& values) {
  double total = 0.0;
  for (size_t i = 0; i < values.size(); i++) {
    total += values[i];
  }
  return total;
}

}  // namespace fixture
