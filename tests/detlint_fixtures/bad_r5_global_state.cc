// detlint fixture: R5 global-state true positives — mutable namespace-
// scope state, shared by every session and thread in the process. Never
// compiled.
namespace fixture {

int sessions_started = 0;           // FLAG:R5
static double total_watch_s = 0.0;  // FLAG:R5
bool debug_mode{false};             // FLAG:R5

// Immutable and thread-confined declarations pass:
constexpr int kMaxSessions = 4096;
const double kDefaultQoe = 1.0;
thread_local int scratch_rows = 0;

}  // namespace fixture
