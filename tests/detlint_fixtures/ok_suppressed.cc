// detlint fixture: every pattern here matches a rule but carries a valid
// DETLINT-OK suppression (both the trailing and the standalone-comment
// form), so the file must lint clean with two suppressed findings. Never
// compiled.
#include <mutex>
#include <string>
#include <unordered_map>

namespace fixture {

class Cache {
 public:
  double lookup(const std::string& key) const;

 private:
  std::mutex mutex_;  // DETLINT-OK(unannotated-sync): fixture placeholder — guards nothing yet
  std::unordered_map<std::string, double> entries_;
};

int count_rows(const std::unordered_map<int, double>& rows) {
  int total = 0;
  // DETLINT-OK(ordered-sink): integer count — every visit order sums to the same value
  for (const auto& [id, value] : rows) {
    total += 1;
  }
  return total;
}

}  // namespace fixture
