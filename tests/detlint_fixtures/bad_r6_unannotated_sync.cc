// detlint fixture: R6 unannotated-sync true positives — mutex/atomic
// members that do not state their protocol (what the mutex guards, why
// lock-free atomic access is safe). Never compiled.
#include <atomic>
#include <cstdint>
#include <mutex>

namespace fixture {

class Counter {
 public:
  void add(int64_t value);
  int64_t total() const;

 private:
  std::mutex mutex_;               // FLAG:R6
  std::atomic<int64_t> total_ = 0;  // FLAG:R6
  int64_t calls_ = 0;
};

}  // namespace fixture
