// Multi-day scenario-shift campaign at a heavier scale than the tier-1
// suite: three days of deployment-like paths, then three days on an LTE
// cellular channel. Carries only the `slow` CTest label — run with
// `ctest -L slow` when touching the campaign engine or the TTP trainer.

#include <gtest/gtest.h>

#include "exp/campaign.hh"

namespace puffer::exp {
namespace {

CampaignConfig shift_config() {
  fugu::TtpConfig ttp;
  ttp.hidden_layers = {32, 32};
  ttp.horizon = 2;
  fugu::TtpTrainConfig train;
  train.epochs = 2;
  train.batch_size = 128;
  train.max_examples_per_step = 4000;

  CampaignArm fugu;
  fugu.name = "fugu-daily";
  fugu.scheme = "Fugu";
  fugu.retrain = true;
  fugu.ttp = ttp;
  fugu.train = train;
  CampaignArm mpc;
  mpc.name = "mpc";
  mpc.scheme = "MPC-HM";

  CampaignConfig config;
  config.arms = {fugu, mpc};
  config.phases = {CampaignPhase{net::ScenarioSpec{"puffer"}, 3},
                   CampaignPhase{net::ScenarioSpec{"cellular"}, 3}};
  config.telemetry_sessions_per_day = 24;
  config.eval_sessions_per_day = 15;
  config.holdout_sessions_per_day = 9;
  config.seed = 5;
  config.stream.max_stream_chunks = 400;
  return config;
}

TEST(CampaignShift, LearnerTracksTheWorkloadAcrossTheShift) {
  Campaign campaign{shift_config()};
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.days.size(), 6u);
  for (int d = 0; d < 6; d++) {
    EXPECT_EQ(result.days[static_cast<size_t>(d)].scenario,
              d < 3 ? "puffer:" : "cellular:");
    const ArmDayStats& fugu = result.days[static_cast<size_t>(d)].arms[0];
    ASSERT_EQ(fugu.arm, "fugu-daily");
    EXPECT_GT(fugu.considered, 0) << "day " << d;
    EXPECT_GT(fugu.cross_entropy, 0.0) << "day " << d;
  }

  // Within the first phase the nightly loop must learn the deployment
  // world: held-out cross-entropy drops from the untrained day 0 to day 2.
  const double day0_ce = result.days[0].arms[0].cross_entropy;
  const double day2_ce = result.days[2].arms[0].cross_entropy;
  EXPECT_LT(day2_ce, day0_ce);

  // Day 3 streams the cellular world with a puffer-trained model; after
  // retraining on cellular telemetry the learner must fit the new world
  // better than it did when the shift hit (both measured on cellular
  // holdouts).
  const double shift_ce = result.days[3].arms[0].cross_entropy;
  const double adapted_ce = result.days[5].arms[0].cross_entropy;
  EXPECT_LT(adapted_ce, shift_ce);

  // The static MPC arm never carries a model.
  for (const DayStats& day : result.days) {
    EXPECT_FALSE(day.arms[1].has_model);
  }
}

}  // namespace
}  // namespace puffer::exp
