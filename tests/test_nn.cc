#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/loss.hh"
#include "nn/matrix.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"
#include "nn/serialize.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace puffer::nn {
namespace {

TEST(Matrix, ShapeAndFill) {
  Matrix m{2, 3, 1.5f};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.fill(0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, MatmulKnownValues) {
  Matrix a{2, 2};
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b{2, 2};
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Matrix c;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a{2, 3}, b{2, 3}, c;
  EXPECT_THROW(matmul(a, b, c), RequirementError);
}

TEST(Matrix, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng{11};
  Matrix a{3, 4}, b{5, 4}, bt{4, 5};
  for (size_t i = 0; i < a.size(); i++) {
    a.data()[i] = static_cast<float>(rng.normal());
  }
  for (size_t r = 0; r < b.rows(); r++) {
    for (size_t c = 0; c < b.cols(); c++) {
      b.at(r, c) = static_cast<float>(rng.normal());
      bt.at(c, r) = b.at(r, c);
    }
  }
  Matrix direct, via_bt;
  matmul(a, bt, direct);
  matmul_bt(a, b, via_bt);
  ASSERT_EQ(direct.rows(), via_bt.rows());
  for (size_t i = 0; i < direct.size(); i++) {
    EXPECT_NEAR(direct.data()[i], via_bt.data()[i], 1e-4);
  }

  // a^T * a via matmul_at vs explicit transpose.
  Matrix at{4, 3};
  for (size_t r = 0; r < a.rows(); r++) {
    for (size_t c = 0; c < a.cols(); c++) {
      at.at(c, r) = a.at(r, c);
    }
  }
  Matrix direct2, via_at;
  matmul(at, a, direct2);
  matmul_at(a, a, via_at);
  for (size_t i = 0; i < direct2.size(); i++) {
    EXPECT_NEAR(direct2.data()[i], via_at.data()[i], 1e-4);
  }
}

TEST(Matrix, AddRowBias) {
  Matrix m{2, 2, 1.0f};
  const std::vector<float> bias = {0.5f, -1.0f};
  add_row_bias(m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(Softmax, RowsSumToOne) {
  Matrix logits{2, 4};
  logits.at(0, 0) = 5.0f;
  logits.at(1, 3) = -2.0f;
  Matrix probs;
  softmax(logits, probs);
  for (size_t r = 0; r < 2; r++) {
    float total = 0.0f;
    for (size_t c = 0; c < 4; c++) {
      EXPECT_GT(probs.at(r, c), 0.0f);
      total += probs.at(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  std::vector<float> row = {1000.0f, 1000.0f, 999.0f};
  softmax_inplace(row);
  EXPECT_FALSE(std::isnan(row[0]));
  EXPECT_NEAR(row[0], row[1], 1e-6);
  EXPECT_LT(row[2], row[0]);
}

TEST(CrossEntropy, MatchesManualComputation) {
  Matrix logits{1, 2};
  logits.at(0, 0) = 0.0f;
  logits.at(0, 1) = 0.0f;
  const std::vector<int> labels = {0};
  Matrix dlogits;
  const double loss = softmax_cross_entropy(logits, labels, dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  // Gradient: probs - onehot = (0.5-1, 0.5-0).
  EXPECT_NEAR(dlogits.at(0, 0), -0.5f, 1e-5);
  EXPECT_NEAR(dlogits.at(0, 1), 0.5f, 1e-5);
}

TEST(CrossEntropy, WeightsScaleContribution) {
  Matrix logits{2, 2};
  logits.at(0, 0) = 2.0f;
  logits.at(1, 1) = 2.0f;
  const std::vector<int> labels = {0, 0};
  const std::vector<float> weights = {1.0f, 0.0f};
  Matrix dlogits;
  const double loss = softmax_cross_entropy(logits, labels, weights, dlogits);
  // Second row has zero weight: loss is that of the first row alone.
  Matrix single{1, 2};
  single.at(0, 0) = 2.0f;
  Matrix dsingle;
  const double ref = softmax_cross_entropy(single, std::vector<int>{0}, dsingle);
  EXPECT_NEAR(loss, ref, 1e-6);
  EXPECT_FLOAT_EQ(dlogits.at(1, 0), 0.0f);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Matrix logits{1, 2};
  Matrix dlogits;
  EXPECT_THROW(
      softmax_cross_entropy(logits, std::vector<int>{5}, dlogits),
      RequirementError);
}

TEST(MseLoss, ValueAndGradient) {
  Matrix pred{2, 1};
  pred.at(0, 0) = 1.0f;
  pred.at(1, 0) = 3.0f;
  const std::vector<float> targets = {0.0f, 3.0f};
  Matrix dpred;
  const double loss = mse_loss(pred, targets, dpred);
  EXPECT_NEAR(loss, 0.5, 1e-6);
  EXPECT_NEAR(dpred.at(0, 0), 1.0f, 1e-5);  // 2/N * err = 1 * 1
  EXPECT_NEAR(dpred.at(1, 0), 0.0f, 1e-5);
}

TEST(Mlp, OutputShapeAndDeterminism) {
  Mlp a{{4, 8, 3}, 42};
  Mlp b{{4, 8, 3}, 42};
  const std::vector<float> x = {0.1f, -0.2f, 0.3f, 0.4f};
  EXPECT_EQ(a.forward_one(x), b.forward_one(x));
  EXPECT_EQ(a.forward_one(x).size(), 3u);
}

TEST(Mlp, ParameterCount) {
  const Mlp net{{22, 64, 64, 21}, 1};
  EXPECT_EQ(net.parameter_count(),
            22u * 64 + 64 + 64u * 64 + 64 + 64u * 21 + 21);
}

TEST(Mlp, BatchForwardMatchesSingle) {
  const Mlp net{{5, 16, 4}, 3};
  Rng rng{8};
  Matrix batch{6, 5};
  for (size_t i = 0; i < batch.size(); i++) {
    batch.data()[i] = static_cast<float>(rng.normal());
  }
  Matrix logits;
  net.forward(batch, logits);
  for (size_t r = 0; r < 6; r++) {
    const std::vector<float> row_input{batch.row(r).begin(),
                                       batch.row(r).end()};
    const std::vector<float> single = net.forward_one(row_input);
    for (size_t c = 0; c < 4; c++) {
      EXPECT_NEAR(logits.at(r, c), single[c], 1e-5);
    }
  }
}

/// Central-difference gradient check of backprop through the full network,
/// parameterized over architectures (including a linear one).
class MlpGradientCheck
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(MlpGradientCheck, BackpropMatchesNumericalGradient) {
  const std::vector<size_t> arch = GetParam();
  Mlp net{arch, 17};
  Rng rng{23};
  const size_t batch_size = 3;
  Matrix inputs{batch_size, arch.front()};
  for (size_t i = 0; i < inputs.size(); i++) {
    inputs.data()[i] = static_cast<float>(rng.normal());
  }
  std::vector<int> labels(batch_size);
  for (auto& label : labels) {
    label = static_cast<int>(rng.uniform_int(0, static_cast<int64_t>(arch.back()) - 1));
  }

  auto loss_fn = [&]() {
    Matrix logits;
    net.forward(inputs, logits);
    Matrix scratch;
    return softmax_cross_entropy(logits, labels, scratch);
  };

  Tape tape;
  net.forward_tape(inputs, tape);
  Matrix dlogits;
  softmax_cross_entropy(tape.activations.back(), labels, dlogits);
  Gradients grads = net.make_gradients();
  net.backward(tape, dlogits, grads);

  // Spot-check a sample of weights in every layer. Each perturbation goes
  // through the mutable accessor so the packed-weight cache is invalidated
  // (the same pattern optimizers follow).
  const float eps = 1e-2f;
  auto poke = [&net](const size_t layer, const size_t idx, const float value) {
    net.weights()[layer].data()[idx] = value;
  };
  for (size_t l = 0; l < net.num_layers(); l++) {
    const size_t layer_weights = net.weights()[l].size();
    for (size_t probe = 0; probe < 5; probe++) {
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(layer_weights) - 1));
      const float original = net.weights()[l].data()[idx];
      poke(l, idx, original + eps);
      const double up = loss_fn();
      poke(l, idx, original - eps);
      const double down = loss_fn();
      poke(l, idx, original);
      const double numerical = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads.weights[l].data()[idx], numerical,
                  2e-2 * std::max(1.0, std::abs(numerical)))
          << "layer " << l << " weight " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpGradientCheck,
    ::testing::Values(std::vector<size_t>{4, 3},           // linear
                      std::vector<size_t>{6, 16, 5},       // one hidden
                      std::vector<size_t>{22, 64, 64, 21}  // the TTP shape
                      ));

TEST(Training, SgdLearnsSeparableToy) {
  // Two Gaussian blobs; a linear model should reach high accuracy.
  Rng rng{31};
  const size_t n = 400;
  Matrix inputs{n, 2};
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; i++) {
    const int label = static_cast<int>(i % 2);
    labels[i] = label;
    const double cx = label == 0 ? -2.0 : 2.0;
    inputs.at(i, 0) = static_cast<float>(rng.normal(cx, 1.0));
    inputs.at(i, 1) = static_cast<float>(rng.normal(-cx, 1.0));
  }
  Mlp net{{2, 2}, 5};
  SgdOptimizer opt{0.1, 0.9};
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 60; epoch++) {
    Tape tape;
    net.forward_tape(inputs, tape);
    Matrix dlogits;
    last_loss = softmax_cross_entropy(tape.activations.back(), labels, dlogits);
    Gradients grads = net.make_gradients();
    net.backward(tape, dlogits, grads);
    opt.step(net, grads);
  }
  EXPECT_LT(last_loss, 0.1);
}

TEST(Training, AdamLearnsXorWithHiddenLayer) {
  Matrix inputs{4, 2};
  inputs.at(0, 0) = 0;
  inputs.at(0, 1) = 0;
  inputs.at(1, 0) = 0;
  inputs.at(1, 1) = 1;
  inputs.at(2, 0) = 1;
  inputs.at(2, 1) = 0;
  inputs.at(3, 0) = 1;
  inputs.at(3, 1) = 1;
  const std::vector<int> labels = {0, 1, 1, 0};
  Mlp net{{2, 16, 2}, 77};
  AdamOptimizer opt{5e-3};
  double loss = 0.0;
  for (int epoch = 0; epoch < 2000; epoch++) {
    Tape tape;
    net.forward_tape(inputs, tape);
    Matrix dlogits;
    loss = softmax_cross_entropy(tape.activations.back(), labels, dlogits);
    Gradients grads = net.make_gradients();
    net.backward(tape, dlogits, grads);
    opt.step(net, grads);
  }
  EXPECT_LT(loss, 0.05);  // XOR is not linearly separable; depth matters
}

TEST(Optimizer, GradientClippingBoundsNorm) {
  Mlp net{{3, 4}, 1};
  Gradients grads = net.make_gradients();
  grads.weights[0].fill(10.0f);
  const double before = clip_gradient_norm(grads, 1.0);
  EXPECT_GT(before, 1.0);
  double sum_sq = 0.0;
  for (size_t i = 0; i < grads.weights[0].size(); i++) {
    sum_sq += static_cast<double>(grads.weights[0].data()[i]) *
              grads.weights[0].data()[i];
  }
  EXPECT_NEAR(std::sqrt(sum_sq), 1.0, 1e-4);
}

TEST(Serialize, RoundTripPreservesNetworkExactly) {
  const Mlp original{{7, 12, 5}, 99};
  std::stringstream buffer;
  save_mlp(original, buffer);
  const Mlp restored = load_mlp(buffer);
  EXPECT_EQ(original, restored);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "not a model";
  EXPECT_THROW(load_mlp(buffer), RequirementError);
}

TEST(Serialize, FileRoundTrip) {
  const Mlp original{{4, 6, 3}, 123};
  const std::string path = ::testing::TempDir() + "/mlp_roundtrip.bin";
  save_mlp_file(original, path);
  const Mlp restored = load_mlp_file(path);
  EXPECT_EQ(original, restored);
}

}  // namespace
}  // namespace puffer::nn
