// Learning in situ: run the paper's daily loop (section 4.3 / Figure 6) with
// the campaign engine — every day the deployment collects telemetry from
// live traffic, retrains the TTP on the accumulated window with a warm start
// from yesterday's weights, and redeploys it the next morning. This example
// is a thin client of exp::Campaign: one retraining Fugu arm, three days,
// run in memory (pass a checkpoint_dir to make it resumable).

#include <cstdio>

#include "exp/campaign.hh"
#include "exp/insitu.hh"

int main() {
  using namespace puffer;

  exp::CampaignArm fugu;
  fugu.name = "fugu-insitu";
  fugu.scheme = "Fugu";  // streams with the nightly model from day 0 on
  fugu.retrain = true;
  fugu.warm_start = true;          // cold-restart contrast: set to false
  fugu.train.epochs = 4;           // the paper's TTP: 22 -> 64 -> 64 -> 21

  exp::CampaignConfig config;
  config.arms = {fugu};
  config.phases = {exp::CampaignPhase{net::ScenarioSpec{"puffer"}, 3}};
  config.telemetry_sessions_per_day = 60;
  config.eval_sessions_per_day = 16;
  config.holdout_sessions_per_day = 12;
  config.seed = 500;
  config.stream.max_stream_chunks = 1000;

  std::printf("Day-by-day in-situ training (%d days, warm-started)\n\n",
              config.total_days());

  exp::Campaign campaign{config};
  const exp::CampaignResult result = campaign.run();

  for (const exp::DayStats& day : result.days) {
    const exp::ArmDayStats& arm = day.arms[0];
    std::printf(
        "day %d: +%5llu chunks | deployed-model SSIM %.2f dB, stall %.2f%% | "
        "held-out CE %.3f nats, top-1 %.1f%%\n",
        day.day, static_cast<unsigned long long>(day.telemetry_chunks),
        arm.ssim_mean_db, 100.0 * arm.stall_ratio, arm.cross_entropy,
        100.0 * arm.top1_accuracy);
  }

  const fugu::TtpModel* model = campaign.deployed_model("fugu-insitu");
  const std::string path = "ttp_insitu_example.bin";
  exp::save_ttp(*model, path);
  std::printf("\nSaved the trained TTP to %s\n", path.c_str());
  std::printf("(uniform baseline over 21 bins would be ln 21 = 3.04 nats; "
              "day 0 streams with untrained weights)\n");
  return 0;
}
