// Learning in situ: collect telemetry from the (simulated) deployment, then
// train Fugu's Transmission Time Predictor day by day exactly as Puffer does
// (section 4.3): 14-day sliding window, recency weighting, warm start from
// the previous day's model.

#include <cstdio>

#include "exp/insitu.hh"
#include "exp/trial.hh"
#include "fugu/ttp_trainer.hh"
#include "util/rng.hh"

int main() {
  using namespace puffer;

  const fugu::TtpConfig config;  // the paper's TTP: 22 -> 64 -> 64 -> 21
  fugu::TtpTrainConfig train_config;
  train_config.epochs = 4;

  std::printf("Day-by-day in-situ training (3 days, warm-started)\n\n");
  fugu::TtpDataset accumulated;
  fugu::TtpModel model{config, /*seed=*/1};
  Rng rng{99};

  for (int day = 0; day < 3; day++) {
    // One day of deployment telemetry (sessions served by the live mix of
    // classical schemes; Figure 6's "Data Aggregation" box).
    fugu::TtpDataset daily = exp::collect_telemetry(
        net::ScenarioSpec{"puffer"}, /*num_sessions=*/60, day,
        /*seed=*/500);
    size_t chunks = 0;
    for (auto& stream : daily) {
      chunks += stream.chunks.size();
      accumulated.push_back(std::move(stream));
    }

    // Retrain with warm start from yesterday's weights.
    fugu::TtpTrainReport report;
    model = fugu::train_ttp(config, accumulated, day, train_config, rng,
                            day == 0 ? nullptr : &model, &report);

    // Held-out check on fresh telemetry.
    const fugu::TtpDataset holdout = exp::collect_telemetry(
        net::ScenarioSpec{"puffer"}, 12, day, /*seed=*/9000 + day);
    const fugu::TtpEvaluation eval = fugu::evaluate_ttp(model, holdout);

    std::printf(
        "day %d: +%5zu chunks | train loss %.3f -> %.3f | "
        "held-out CE %.3f nats, top-1 %.1f%%, RMSE(expected) %.2f s\n",
        day, chunks, report.loss_per_epoch.front(),
        report.loss_per_epoch.back(), eval.cross_entropy,
        100.0 * eval.top1_accuracy, eval.rmse_expected_s);
  }

  const std::string path = "ttp_insitu_example.bin";
  exp::save_ttp(model, path);
  std::printf("\nSaved the trained TTP to %s\n", path.c_str());
  std::printf("(uniform baseline over 21 bins would be ln 21 = 3.04 nats)\n");
  return 0;
}
