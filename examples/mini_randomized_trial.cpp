// A miniature version of the Puffer randomized controlled trial (Figure 1):
// sessions arrive, are blindly assigned to one of five ABR schemes, stream
// over heavy-tailed paths with realistic viewer behaviour, and the analysis
// reports each scheme's stall ratio (bootstrap 95% CI), duration-weighted
// SSIM, SSIM variation, and mean time on site.
//
// Usage: mini_randomized_trial [scenario-family [trace-file]]
//                              [--trace-out PATH] [--metrics-out PATH]
//   scenario-family  any family registered in net::scenario_registry()
//                    (default "puffer"); pass "list" to enumerate them
//   trace-file       Mahimahi-style trace, for the "trace-replay" family
//
// The sessions run through the fleet engine (bit-identical to the
// session-sequential loop), so the trial comes with observability for free:
// --trace-out writes the run as Chrome trace-event JSON (virtual-time shard
// lanes + wall-clock worker lanes), --metrics-out dumps the sim-plane
// metric snapshot.
//
// The full-size experiment lives in bench/fig01_primary_table.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/fleet_trial.hh"
#include "exp/models.hh"
#include "exp/trial.hh"
#include "net/scenario.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "stats/summary.hh"
#include "util/require.hh"
#include "util/table.hh"

int main(int argc, char** argv) {
  using namespace puffer;

  std::string trace_path, metrics_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      require(i + 1 < argc,
              "mini_randomized_trial: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else {
      positional.push_back(arg);
    }
  }

  exp::FleetTrialConfig fleet_config;
  exp::TrialConfig& config = fleet_config.trial;
  config.sessions_per_scheme = 120;  // miniature; the bench uses many more
  config.seed = 20190119;
  if (!positional.empty()) {
    config.scenario.family = positional[0];
  }
  if (positional.size() > 1) {
    config.scenario.trace_path = positional[1];
  }

  const auto& registry = net::scenario_registry();
  if (config.scenario.family == "list" ||
      !registry.contains(config.scenario.family)) {
    std::printf("Registered scenario families:\n");
    for (const auto& name : registry.names()) {
      std::printf("  %-18s %s\n", name.c_str(),
                  registry.description(name).c_str());
    }
    return config.scenario.family == "list" ? 0 : 1;
  }
  try {
    // Fail fast on a bad spec (e.g. trace-replay without a readable trace
    // file) before the minutes-long artifact preparation below.
    static_cast<void>(net::make_path_generator(config.scenario));
  } catch (const std::exception& error) {
    std::printf("Cannot build scenario '%s': %s\n",
                config.scenario.family.c_str(), error.what());
    return 1;
  }

  std::printf("Preparing trained artifacts (cached after first run)...\n");
  const exp::SchemeArtifacts artifacts = exp::default_artifacts();

  std::printf("Running randomized trial: %zu schemes x %d sessions over "
              "'%s' paths...\n\n",
              config.schemes.size(), config.sessions_per_scheme,
              config.scenario.family.c_str());
  obs::TraceWriter trace_writer;
  if (!trace_path.empty()) {
    fleet_config.trace = &trace_writer;
  }
  obs::prof_reset();  // scope the wall lanes to the trial itself
  exp::FleetTrialResult fleet = exp::run_fleet_trial(fleet_config, artifacts);
  const exp::TrialResult& trial = fleet.trial;

  Rng rng{1};
  Table table{{"Algorithm", "Time stalled", "Mean SSIM", "SSIM variation",
               "Mean duration", "Streams"}};
  for (const auto& scheme : trial.schemes) {
    if (scheme.considered.empty()) {
      continue;
    }
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng);
    double mean_duration_min = 0.0;
    for (const double d : scheme.session_durations_s) {
      mean_duration_min += d / 60.0;
    }
    mean_duration_min /= static_cast<double>(scheme.session_durations_s.size());

    table.add_row({scheme.scheme,
                   format_percent(summary.stall_ratio.point, 2) + " [" +
                       format_percent(summary.stall_ratio.lower, 2) + ", " +
                       format_percent(summary.stall_ratio.upper, 2) + "]",
                   format_fixed(summary.ssim_mean_db, 2) + " dB",
                   format_fixed(summary.ssim_variation_db, 2) + " dB",
                   format_fixed(mean_duration_min, 1) + " min",
                   std::to_string(summary.num_streams)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Mind the confidence intervals: with this little data most schemes are\n"
      "statistically indistinguishable — the paper's central warning (§3.4).\n");

  if (!trace_path.empty()) {
    // The engine's virtual-time lanes are already in the writer; add the
    // deterministic concurrency counter lane, then the wall-clock lanes.
    for (const auto& point : fleet.fleet.load.export_points()) {
      trace_writer.counter(obs::kSimTracePid, "concurrency",
                           point.time_s * 1e6, point.level);
    }
    obs::prof_export_trace(trace_writer);
    trace_writer.write_file(trace_path);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                trace_writer.event_count());
  }
  if (!metrics_path.empty()) {
    std::FILE* file = std::fopen(metrics_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", metrics_path.c_str());
    } else {
      const std::string body = fleet.metrics.to_json();
      std::fwrite(body.data(), 1, body.size(), file);
      std::fclose(file);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  return 0;
}
