// Quickstart: stream one simulated session through the public API.
//
// Builds a heavy-tailed "wild Internet" path, a live VBR video source, a TCP
// connection (BBR), and an MPC-HM ABR scheme, then streams ten minutes of
// video and prints the per-stream telemetry that the Puffer study records.
//
// No trained models are needed for this example; see compare_abr.cpp and
// train_ttp_in_situ.cpp for Fugu.

#include <cstdio>
#include <memory>

#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "media/channel.hh"
#include "media/vbr_source.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "net/trace_models.hh"
#include "sim/session.hh"
#include "util/rng.hh"

int main() {
  using namespace puffer;

  // 1. Sample a network path from the deployment-like (heavy-tailed) family.
  Rng rng{2019};
  const net::PufferPathModel paths;
  const net::NetworkPath path = paths.sample_path(rng, /*duration_s=*/900.0);
  std::printf("Path: mean capacity %.2f Mbit/s, min RTT %.0f ms\n",
              path.trace.mean_rate() * 8.0 / 1e6, path.min_rtt_s * 1e3);

  // 2. Open a TCP connection (BBR, as in Puffer's primary experiment) and
  //    warm it with the player preamble.
  net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(path)};
  sim::send_preamble(sender);

  // 3. A live TV channel, encoded in ten H.264 rungs per 2.002 s chunk.
  media::VbrVideoSource video{media::default_channels()[0], /*seed=*/42};

  // 4. The ABR scheme: model-predictive control with the classical
  //    harmonic-mean throughput predictor (MPC-HM).
  abr::MpcAbr abr{"MPC-HM", std::make_unique<abr::HarmonicMeanPredictor>()};
  abr.reset_session();

  // 5. A patient viewer watching for ten minutes.
  sim::UserBehavior viewer;
  viewer.watch_intent_s = 600.0;
  viewer.stall_patience_s = 1e9;
  viewer.stall_hazard_per_s = 0.0;
  viewer.quality_hazard_per_s_db = 0.0;

  const sim::StreamOutcome outcome =
      sim::run_stream(sender, abr, video, /*first_chunk=*/0, viewer, rng);

  // 6. The per-stream figures the paper's primary analysis uses (§3.4).
  std::printf("\nStream telemetry\n");
  std::printf("  startup delay      : %.2f s\n",
              outcome.figures.startup_delay_s);
  std::printf("  watch time         : %.1f s\n", outcome.figures.watch_time_s);
  std::printf("  time stalled       : %.2f s (%.3f%%)\n",
              outcome.figures.stall_time_s,
              100.0 * outcome.figures.stall_time_s /
                  outcome.figures.watch_time_s);
  std::printf("  mean SSIM          : %.2f dB\n", outcome.figures.ssim_mean_db);
  std::printf("  SSIM variation     : %.2f dB\n",
              outcome.figures.ssim_variation_db);
  std::printf("  mean bitrate       : %.2f Mbit/s\n",
              outcome.figures.mean_bitrate_mbps);
  std::printf("  mean delivery rate : %.2f Mbit/s (%s path)\n",
              outcome.figures.mean_delivery_rate_mbps,
              outcome.figures.mean_delivery_rate_mbps < 6.0 ? "slow" : "fast");
  std::printf("  chunks played      : %d\n", outcome.chunks_played);
  return 0;
}
