// Export the three Appendix-B measurement tables (video_sent, video_acked,
// client_buffer) from a batch of instrumented streams — the same layout as
// Puffer's public daily data archive. Output lands in the current directory.

#include <cstdio>
#include <memory>

#include "abr/bba.hh"
#include "exp/open_data.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "net/trace_models.hh"
#include "sim/user_model.hh"

int main() {
  using namespace puffer;

  exp::OpenDataWriter writer;
  const net::PufferPathModel paths;
  const sim::UserModel users{5};
  Rng rng{5};
  abr::Bba bba;

  const int streams = 12;
  for (int64_t stream_id = 0; stream_id < streams; stream_id++) {
    Rng stream_rng = rng.split(static_cast<uint64_t>(stream_id));
    const net::NetworkPath path = paths.sample_path(stream_rng, 1200.0);
    net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                          net::TcpSender::default_queue_capacity(path)};
    sim::send_preamble(sender);
    bba.reset_session();

    media::VbrVideoSource video{
        media::default_channels()[static_cast<size_t>(stream_id) %
                                  media::kNumChannels],
        static_cast<uint64_t>(stream_id) * 17 + 3};
    sim::UserBehavior viewer = users.sample_stream_behavior(stream_rng);
    viewer.watch_intent_s = std::min(viewer.watch_intent_s, 600.0);

    auto recorder = writer.observer_for(stream_id, /*expt_id=*/1);
    sim::run_stream(sender, bba, video, 0, viewer, stream_rng, {}, &recorder);
  }

  writer.write_all(".", "puffer");
  std::printf("wrote puffer_video_sent.csv    (%zu rows)\n",
              writer.video_sent().size());
  std::printf("wrote puffer_video_acked.csv   (%zu rows)\n",
              writer.video_acked().size());
  std::printf("wrote puffer_client_buffer.csv (%zu rows)\n",
              writer.client_buffer().size());

  std::printf("\nFirst video_sent rows:\n");
  const std::string csv = writer.video_sent_csv();
  size_t pos = 0;
  for (int line = 0; line < 4 && pos != std::string::npos; line++) {
    const size_t next = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }

  // Re-analyze the archive the way a downstream researcher would: match
  // video_acked to video_sent for transmission times, read stalls from
  // cum_rebuf, quality from ssim_index.
  std::printf("\nPer-stream analysis recomputed from the archive alone:\n");
  std::printf("  %-8s %-7s %-10s %-10s %-10s %-12s\n", "stream", "chunks",
              "watch(s)", "stall(s)", "SSIM(dB)", "thpt(Mbit/s)");
  for (const auto& s : exp::analyze_open_data(writer.video_sent(),
                                              writer.video_acked(),
                                              writer.client_buffer())) {
    std::printf("  %-8lld %-7d %-10.1f %-10.2f %-10.2f %-12.2f\n",
                static_cast<long long>(s.stream_id), s.chunks, s.watch_time_s,
                s.stall_time_s, s.ssim_mean_db, s.mean_throughput_mbps);
  }
  return 0;
}
